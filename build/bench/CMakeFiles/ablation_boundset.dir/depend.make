# Empty dependencies file for ablation_boundset.
# This may be replaced when dependencies are built.
