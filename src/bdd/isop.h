// Irredundant sum-of-products extraction (Minato-Morreale ISOP).
//
// Computes a cube cover C with  L <= C <= U  for an interval [L, U] — for a
// completely specified f use L = U = f; for an ISF use L = on, U = on | dc,
// which yields the classic "minimize with don't cares" two-level cover.
// The cover is irredundant by construction (each cube covers some minterm of
// L no other cube covers).
//
// This is the bridge from BDD-land back to two-level formats: io::write_pla
// of synthesized or specification functions goes through here.
#pragma once

#include <vector>

#include "bdd/bdd.h"

namespace mfd::bdd {

/// One product term: (variable, phase) literals; empty = tautology cube.
struct Cube {
  std::vector<std::pair<int, bool>> literals;
};

/// Minato-Morreale ISOP of the interval [lower, upper].
/// Requires lower <= upper (as functions).
std::vector<Cube> isop(Manager& m, Edge lower, Edge upper);

/// BDD of a cube cover (disjunction of the cubes' conjunctions).
Edge cover_to_bdd(Manager& m, const std::vector<Cube>& cover);

}  // namespace mfd::bdd
