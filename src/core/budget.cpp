#include "core/budget.h"

#include "obs/obs.h"

namespace mfd {

namespace {
thread_local ResourceGovernor* tls_governor = nullptr;
std::atomic<bool> g_global_expire{false};
}  // namespace

void request_global_expire() noexcept {
  g_global_expire.store(true, std::memory_order_relaxed);
}

void clear_global_expire() noexcept {
  g_global_expire.store(false, std::memory_order_relaxed);
}

bool global_expire_requested() noexcept {
  return g_global_expire.load(std::memory_order_relaxed);
}

const char* degrade_level_name(int level) {
  switch (level) {
    case kDegradeFull: return "full";
    case kDegradeGreedyColoring: return "greedy_coloring";
    case kDegradeNoDcSteps: return "no_dc_steps";
    case kDegradeStructural: return "structural";
  }
  return "?";
}

std::int64_t ResourceGovernor::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ResourceGovernor::ResourceGovernor(const ResourceBudget& budget)
    : budget_(budget),
      start_(std::chrono::steady_clock::now()),
      op_ceiling_(budget.op_ceiling),
      node_ceiling_(budget.node_ceiling) {
  if (budget.time_ms > 0.0) {
    const auto deadline =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(budget.time_ms));
    deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
  }
}

double ResourceGovernor::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start_)
      .count();
}

bool ResourceGovernor::deadline_expired() const noexcept {
  if (suspend_.load(std::memory_order_relaxed) != 0) return false;
  if (forced_expire_.load(std::memory_order_relaxed)) return true;
  if (global_expire_requested()) return true;
  const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
  return dl != kNoDeadline && now_ns() >= dl;
}

void ResourceGovernor::check_deadline(const char* where) {
  if (suspend_.load(std::memory_order_relaxed) != 0) return;
  if (forced_expire_.load(std::memory_order_relaxed)) {
    obs::add("budget.exceeded_time");
    throw BudgetExceeded(BudgetExceeded::Resource::kTime, where,
                         "deadline forced by fault injection (elapsed " +
                             std::to_string(elapsed_ms()) + " ms)");
  }
  if (global_expire_requested()) {
    obs::add("budget.exceeded_time");
    throw BudgetExceeded(BudgetExceeded::Resource::kTime, where,
                         "terminate requested (SIGTERM wind-down, elapsed " +
                             std::to_string(elapsed_ms()) + " ms)");
  }
  const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
  if (dl == kNoDeadline || now_ns() < dl) return;
  obs::add("budget.exceeded_time");
  throw BudgetExceeded(BudgetExceeded::Resource::kTime, where,
                       "deadline of " + std::to_string(budget_.time_ms) +
                           " ms passed (elapsed " + std::to_string(elapsed_ms()) +
                           " ms)");
}

void ResourceGovernor::check_depth(int depth, const char* where) {
  if (suspend_.load(std::memory_order_relaxed) != 0 || budget_.max_depth == 0) return;
  if (depth <= budget_.max_depth) return;
  obs::add("budget.exceeded_depth");
  throw BudgetExceeded(BudgetExceeded::Resource::kDepth, where,
                       "recursion depth " + std::to_string(depth) + " exceeds budget " +
                           std::to_string(budget_.max_depth));
}

void ResourceGovernor::force_expire() noexcept {
  // A flag rather than moving deadline_ns_: budget_ stays immutable (readers
  // may hold references from other threads) and the trip message attributes
  // the expiry to fault injection instead of a fictitious 0 ms budget.
  forced_expire_.store(true, std::memory_order_relaxed);
}

void ResourceGovernor::raise_degrade(int to_level, const std::string& phase,
                                     const std::string& reason) {
  std::lock_guard<std::mutex> lock(degrade_mu_);
  if (to_level <= report_.final_level) return;
  DegradeEvent ev;
  ev.from_level = report_.final_level;
  ev.to_level = to_level;
  ev.phase = phase;
  ev.reason = reason;
  report_.events.push_back(std::move(ev));
  report_.final_level = to_level;
  degrade_level_.store(to_level, std::memory_order_relaxed);
  obs::add("budget.degrade_events");
  obs::add(std::string("budget.degrade_to_") + degrade_level_name(to_level));
  obs::gauge_max("budget.degrade_level", to_level);
}

void ResourceGovernor::overrun_ops() {
  obs::add("budget.exceeded_ops");
  throw BudgetExceeded(BudgetExceeded::Resource::kOps, "bdd.mk",
                       std::to_string(ops_used()) + " operations exceed budget " +
                           std::to_string(op_ceiling_));
}

void ResourceGovernor::overrun_nodes(std::size_t population) {
  obs::add("budget.exceeded_nodes");
  throw BudgetExceeded(BudgetExceeded::Resource::kNodes, "bdd.mk",
                       "node population " + std::to_string(population) +
                           " exceeds budget " + std::to_string(node_ceiling_));
}

ResourceGovernor::Scope::Scope(ResourceGovernor& g) : prev_(tls_governor) {
  tls_governor = &g;
}

ResourceGovernor::Scope::~Scope() { tls_governor = prev_; }

ResourceGovernor* ResourceGovernor::current() noexcept { return tls_governor; }

}  // namespace mfd
