// From-scratch ROBDD package with complement edges (the CUDD substitute of
// this reproduction).
//
// Design notes
// ------------
// * Edges are tagged pointers (`Edge`): bit 0 carries the complement
//   attribute, the remaining bits index the node arena. There is a single
//   terminal node ONE at arena index 0; the constants are `kTrue` (a regular
//   edge to ONE) and `kFalse` (a complemented edge to ONE). Negation is O(1) —
//   flip the tag — and f and !f share every node.
// * Canonical form (Brace/Rudell/Bryant): the then-edge of every stored node
//   is regular. `mk` enforces this by complementing both children and
//   returning a complemented edge whenever the then-child arrives
//   complemented, so each function keeps exactly one representation and
//   structural equality remains functional equality.
// * Nodes live in a single arena (`std::vector<Node>`) addressed by 32-bit
//   indices. One unique subtable per *variable* (not per level); dynamic
//   reordering rewrites nodes in place, so parents never need forwarding
//   pointers. The in-place swap preserves the then-regular invariant for
//   free: the (v1=1)-cofactor it feeds into `mk` is itself a stored then-edge
//   and therefore regular.
// * Reference counts (on nodes, not edges) include both external references
//   (held via the RAII `Bdd` handle) and parent edges. Dereferencing only
//   marks nodes dead; `garbage_collect()` reclaims them and clears the
//   computed table, since indices may be recycled. GC also fires reactively
//   from `mk` and operation entry once dead subgraph roots pass an absolute
//   floor and a fixed share of the node population, but only between
//   operations (never mid-recursion, never during reordering) and with the
//   immediate arguments pinned; callers that keep *unreferenced* raw results
//   alive across several public calls must hold a `Manager::AutoGcPause`.
// * The computed table is a lossy, direct-mapped cache keyed by
//   (op, f, g, h) edge bits. ITE normalizes its triple first — constant and
//   complementary arguments are rewritten to a standard representative and
//   complements are pushed to the outputs — so equivalent calls such as
//   AND(f,g)/AND(g,f)/!OR(!f,!g) share one cache line. The cache starts
//   small and doubles (up to a cap) as the node population grows.
//
// The public surface is the `Bdd` value type; `Edge`-level functions are
// exposed for the algorithmic core (decomposition enumerates cofactors in
// tight loops and manages references in bulk).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mfd {
class ResourceGovernor;
}  // namespace mfd

namespace mfd::bdd {

/// Arena index of a node (bit 0 of an Edge stripped).
using NodeIndex = std::uint32_t;

/// Tagged edge: (node index << 1) | complement bit. Value-semantic, 4 bytes.
class Edge {
 public:
  /// Default is the constant false function (complemented edge to ONE).
  constexpr Edge() = default;
  constexpr explicit Edge(std::uint32_t bits) : bits_(bits) {}
  static constexpr Edge make(NodeIndex index, bool complemented) {
    return Edge((index << 1) | (complemented ? 1u : 0u));
  }

  constexpr std::uint32_t bits() const { return bits_; }
  constexpr NodeIndex index() const { return bits_ >> 1; }
  constexpr bool is_complemented() const { return (bits_ & 1u) != 0; }
  /// The same edge with the complement bit cleared.
  constexpr Edge regular() const { return Edge(bits_ & ~1u); }

  /// O(1) negation: flip the complement bit.
  constexpr Edge operator!() const { return Edge(bits_ ^ 1u); }
  /// Conditional complement (`e ^ c` complements e iff c).
  constexpr Edge operator^(bool c) const { return Edge(bits_ ^ (c ? 1u : 0u)); }

  friend constexpr bool operator==(Edge a, Edge b) { return a.bits_ == b.bits_; }
  friend constexpr bool operator!=(Edge a, Edge b) { return a.bits_ != b.bits_; }
  // Arbitrary-but-stable order so edges can key std::map / be sorted.
  friend constexpr bool operator<(Edge a, Edge b) { return a.bits_ < b.bits_; }

 private:
  std::uint32_t bits_ = 1;
};

inline constexpr Edge kTrue{0};   // regular edge to the terminal ONE
inline constexpr Edge kFalse{1};  // complemented edge to the terminal ONE
inline constexpr Edge kInvalid{0xFFFFFFFFu};
inline constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;

class Manager;

/// RAII handle to a BDD function: keeps the root referenced for its lifetime.
class Bdd {
 public:
  Bdd() = default;
  Bdd(Manager* mgr, Edge id);  // takes one reference on id's node
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool valid() const { return mgr_ != nullptr; }
  Manager* manager() const { return mgr_; }
  Edge id() const { return id_; }

  bool is_false() const { return id_ == kFalse; }
  bool is_true() const { return id_ == kTrue; }
  bool is_constant() const { return id_.index() == 0; }

  // Structural equality is functional equality (canonicity).
  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.id_ == b.id_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;  // O(1): same nodes, complemented root edge
  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }
  Bdd& operator^=(const Bdd& o) { return *this = *this ^ o; }

  /// f & !o  (set difference of on-sets).
  Bdd diff(const Bdd& o) const { return *this & !o; }
  /// XNOR.
  Bdd iff(const Bdd& o) const { return !(*this ^ o); }
  /// Implication !f | o.
  Bdd implies(const Bdd& o) const { return (!*this) | o; }

  /// Cofactor with respect to a single variable.
  Bdd cofactor(int var, bool value) const;
  /// Number of BDD nodes reachable from this root (including the terminal).
  std::size_t size() const;

 private:
  void release();

  Manager* mgr_ = nullptr;
  Edge id_ = kFalse;
};

/// Statistics snapshot of a manager (for tests, logging, benchmarks).
struct ManagerStats {
  std::size_t live_nodes = 0;
  std::size_t dead_nodes = 0;
  std::size_t peak_nodes = 0;
  std::uint64_t unique_hits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_auto_runs = 0;  // subset of gc_runs triggered from mk()
  std::uint64_t cache_resizes = 0;
  std::uint64_t reorder_swaps = 0;
};

class Manager {
 public:
  /// Creates a manager with `num_vars` variables x0..x(n-1), initial order
  /// x0 < x1 < ... (level == var index).
  explicit Manager(int num_vars = 0);
  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Scoped suppression of reactive GC. Required around sequences of public
  /// operations whose *unreferenced* raw Edge results must stay alive from
  /// one call to the next (e.g. the ISOP recursion); handle-held roots never
  /// need it.
  class AutoGcPause {
   public:
    explicit AutoGcPause(Manager& m) : m_(m) { ++m_.gc_pause_; }
    ~AutoGcPause() { --m_.gc_pause_; }
    AutoGcPause(const AutoGcPause&) = delete;
    AutoGcPause& operator=(const AutoGcPause&) = delete;

   private:
    Manager& m_;
  };

  // ---- variables and order -------------------------------------------
  int num_vars() const { return static_cast<int>(var_to_level_.size()); }
  /// Appends a fresh variable at the bottom of the order; returns its index.
  int add_var();
  int level_of_var(int var) const { return var_to_level_[var]; }
  int var_at_level(int level) const { return level_to_var_[level]; }
  /// Current order as a list of variables, top level first.
  std::vector<int> current_order() const { return level_to_var_; }

  // ---- handles ---------------------------------------------------------
  Bdd bdd_true() { return Bdd(this, kTrue); }
  Bdd bdd_false() { return Bdd(this, kFalse); }
  Bdd constant(bool value) { return Bdd(this, value ? kTrue : kFalse); }
  /// The projection function x_var.
  Bdd var(int v);
  /// x_var or its complement.
  Bdd literal(int v, bool positive);
  /// Wraps an edge into a handle (adds a reference).
  Bdd wrap(Edge id) { return Bdd(this, id); }

  // ---- raw edge access -------------------------------------------------
  std::uint32_t node_var(Edge e) const { return nodes_[e.index()].var; }
  /// Else-cofactor of e's function (the stored edge with e's tag applied).
  Edge node_lo(Edge e) const { return nodes_[e.index()].lo ^ e.is_complemented(); }
  /// Then-cofactor of e's function.
  Edge node_hi(Edge e) const { return nodes_[e.index()].hi ^ e.is_complemented(); }
  bool is_terminal(Edge e) const { return e.index() == 0; }
  int node_level(Edge e) const {
    return is_terminal(e) ? num_vars() : var_to_level_[nodes_[e.index()].var];
  }

  /// Find-or-create the reduced node (var, lo, hi). Returns `lo` if lo==hi.
  /// Canonicalizes so the stored then-edge is regular (see header notes).
  Edge mk(int var, Edge lo, Edge hi);

  void ref(Edge e);
  void deref(Edge e);

  // ---- core operations (Edge level; results returned unreferenced) ----
  Edge ite(Edge f, Edge g, Edge h);
  Edge apply_and(Edge f, Edge g) { return ite(f, g, kFalse); }
  Edge apply_or(Edge f, Edge g) { return ite(f, kTrue, g); }
  Edge apply_xor(Edge f, Edge g);
  Edge apply_not(Edge f) { return !f; }  // O(1)
  Edge cofactor(Edge f, int var, bool value);
  /// Simultaneous cofactor by a partial assignment (var -> value).
  Edge cofactor_cube(Edge f, const std::vector<std::pair<int, bool>>& a);
  /// Existential quantification over the given variables.
  Edge exists(Edge f, const std::vector<int>& vars);
  Edge forall(Edge f, const std::vector<int>& vars);
  /// Substitute function g for variable var in f.
  Edge compose(Edge f, int var, Edge g);
  /// Coudert-Madre generalized cofactor ("restrict"): returns a function r
  /// with f & care <= r <= f | !care that tends to have a small BDD — the
  /// classic way to spend don't cares (!care) on representation size.
  /// `care` must not be constant false (throws mfd::BddError if it is).
  Edge restrict_to(Edge f, Edge care);
  /// Exchange two variables in f (functional swap, order unchanged).
  Edge swap_vars(Edge f, int va, int vb);
  /// Rename variables: f(x_perm[0], x_perm[1], ...); perm[i] = new var for old var i.
  Edge permute(Edge f, const std::vector<int>& perm);

  // ---- queries -----------------------------------------------------------
  bool eval(Edge f, const std::vector<bool>& assignment) const;
  /// Variables f genuinely depends on, ascending by index.
  std::vector<int> support(Edge f) const;
  /// Number of satisfying assignments over `nv` variables.
  double sat_count(Edge f, int nv) const;
  /// Any satisfying assignment (over all manager variables); f must not be
  /// kFalse (throws mfd::BddError if it is).
  std::vector<bool> pick_one(Edge f) const;
  std::size_t dag_size(Edge f) const;
  /// DAG size of a set of roots counted once (shared nodes not double
  /// counted; f and !f share all their nodes).
  std::size_t dag_size(const std::vector<Edge>& roots) const;

  // ---- memory ------------------------------------------------------------
  void garbage_collect();
  std::size_t live_node_count() const { return live_nodes_; }
  const ManagerStats& stats() const { return stats_; }
  /// Total nodes currently held by the unique subtables (live + dead).
  std::size_t unique_table_size() const;
  /// Current computed-table capacity in entries (grows with the node count).
  std::size_t cache_size() const { return cache_.size(); }
  /// Binds a ResourceGovernor: every subsequent `mk` charges one operation
  /// against it and may throw BudgetExceeded (see core/budget.h for the
  /// exception-safety argument). Returns the previously bound governor so
  /// callers can rebind RAII-style; pass nullptr to unbind.
  ResourceGovernor* set_governor(ResourceGovernor* g) {
    ResourceGovernor* prev = governor_;
    governor_ = g;
    return prev;
  }
  ResourceGovernor* governor() const { return governor_; }
  /// Publishes this manager's lifetime stats (live/peak nodes, unique-table
  /// size, GC runs, computed-cache size and hit rate, reorder swaps) as
  /// observability gauges under `<prefix>.*` — the flow calls this at report
  /// flush points so the counters in ManagerStats finally surface (see
  /// docs/OBSERVABILITY.md).
  void publish_stats(const char* prefix = "bdd") const;

  // ---- reordering (reorder.cpp) -------------------------------------------
  /// Swaps the variables at levels `level` and `level+1` in place.
  void swap_adjacent_levels(int level);
  /// Reorders to the exact order given (vars listed top level first).
  void set_order(const std::vector<int>& order);
  /// Rudell-style sifting over all variables; returns live node count after.
  std::size_t sift(double max_growth = 2.0);
  /// Sifting that keeps each listed group of variables adjacent (symmetric
  /// sifting in the sense of [12,15]: groups move as blocks). Variables not
  /// mentioned form singleton groups.
  std::size_t sift_symmetric(const std::vector<std::vector<int>>& groups,
                             double max_growth = 2.0);

  // ---- transfer / io (io.cpp) ---------------------------------------------
  /// Copies f from another manager into this one (matching variable indices,
  /// which must all exist here).
  Edge transfer_from(const Manager& src, Edge f);
  /// Graphviz dot dump of the DAG rooted at the given functions. Complement
  /// edges are drawn with a dot-shaped arrowhead.
  std::string to_dot(const std::vector<Edge>& roots,
                     const std::vector<std::string>& names = {}) const;

 private:
  friend class Bdd;

  struct Node {
    std::uint32_t var;
    Edge lo;            // else-edge, may be complemented
    Edge hi;            // then-edge, always regular (canonical form)
    NodeIndex next;     // unique-table chain
    std::uint32_t ref;  // parents + external handles; saturates at max
  };

  // Cache entry; op tags below.
  struct CacheEntry {
    std::uint64_t key = ~0ULL;  // packed (op, f)
    std::uint64_t key2 = 0;     // packed (g, h)
    Edge result = kInvalid;
  };

  struct Subtable {
    std::vector<NodeIndex> buckets;
    std::size_t count = 0;
  };

  enum Op : std::uint32_t {
    kOpIte = 1,
    kOpXor,
    kOpCofactor,
    kOpExists,
    kOpForall,
    kOpCompose,
    kOpPermute,
    kOpRestrict,
  };

  /// Marks a public operation in flight: reactive GC stays off until the
  /// outermost operation returns (intermediates have reference count zero).
  struct OpScope {
    explicit OpScope(Manager& m) : m_(m) { ++m_.op_depth_; }
    ~OpScope() { --m_.op_depth_; }
    Manager& m_;
  };

  NodeIndex allocate_node(std::uint32_t var, Edge lo, Edge hi);
  Subtable& table_of(std::uint32_t var) { return subtables_[var]; }
  void table_insert(Subtable& t, NodeIndex n);
  void table_remove(Subtable& t, NodeIndex n);
  void maybe_resize(Subtable& t);
  static std::size_t hash_triple(std::uint32_t var, Edge lo, Edge hi);

  /// Runs GC if dead nodes dominate and no operation/reorder/pause is active;
  /// the argument edges are pinned across the collection.
  void maybe_auto_gc(Edge a, Edge b, Edge c = kTrue);
  void maybe_grow_cache();

  Edge cache_lookup(std::uint32_t op, Edge f, Edge g, Edge h);
  void cache_insert(std::uint32_t op, Edge f, Edge g, Edge h, Edge r);

  Edge ite_rec(Edge f, Edge g, Edge h);
  Edge xor_rec(Edge f, Edge g);
  Edge cofactor_rec(Edge f, int var, bool value);
  Edge quant_var_rec(Edge f, int var, bool existential);
  Edge compose_rec(Edge f, int var, Edge g);
  Edge restrict_rec(Edge f, Edge care);
  Edge permute_rec(Edge f, const std::vector<int>& perm,
                   std::unordered_map<NodeIndex, Edge>& memo);

  // Reordering helpers (reorder.cpp).
  std::size_t block_width(const std::vector<int>& group) const;

  std::vector<Node> nodes_;
  std::vector<NodeIndex> free_list_;
  std::vector<Subtable> subtables_;  // indexed by var
  std::vector<int> var_to_level_;
  std::vector<int> level_to_var_;
  std::vector<CacheEntry> cache_;
  std::size_t live_nodes_ = 0;
  std::size_t dead_nodes_ = 0;
  int op_depth_ = 0;
  int gc_pause_ = 0;
  bool in_reorder_ = false;
  ResourceGovernor* governor_ = nullptr;
  ManagerStats stats_;
};

}  // namespace mfd::bdd

template <>
struct std::hash<mfd::bdd::Edge> {
  std::size_t operator()(mfd::bdd::Edge e) const noexcept {
    return std::hash<std::uint32_t>{}(e.bits());
  }
};
