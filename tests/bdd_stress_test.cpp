// Soak tests for the BDD substrate: long randomized operation sequences
// mirrored against a truth-table interpreter, with garbage collection and
// dynamic reordering interleaved at random points. This is the test that
// catches interactions the per-op unit tests cannot (cache invalidation
// across GC, in-place swap vs. live handles, id recycling).
#include <gtest/gtest.h>

#include <map>

#include "bdd/bdd.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;
using test::Table;

Table table_and(const Table& a, const Table& b) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] && b[i];
  return r;
}
Table table_or(const Table& a, const Table& b) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] || b[i];
  return r;
}
Table table_xor(const Table& a, const Table& b) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] != b[i];
  return r;
}
Table table_not(const Table& a) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = !a[i];
  return r;
}
Table table_ite(const Table& f, const Table& g, const Table& h) {
  Table r(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) r[i] = f[i] ? g[i] : h[i];
  return r;
}
Table table_cof(const Table& a, int v, bool val, int n) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t j =
        val ? (i | (std::size_t{1} << v)) : (i & ~(std::size_t{1} << v));
    r[i] = a[j];
  }
  (void)n;
  return r;
}
Table table_compose(const Table& f, int v, const Table& g) {
  Table r(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    const std::size_t j =
        g[i] ? (i | (std::size_t{1} << v)) : (i & ~(std::size_t{1} << v));
    r[i] = f[j];
  }
  return r;
}

class BddSoak : public ::testing::TestWithParam<int> {};

TEST_P(BddSoak, LongMixedSequenceMatchesInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 101);
  const int n = rng.range(4, 8);
  Manager m(n);

  // Parallel worlds: BDD handles and their truth tables.
  std::vector<Bdd> fns;
  std::vector<Table> tables;
  for (int v = 0; v < n; ++v) {
    fns.push_back(m.var(v));
    Table t(std::size_t{1} << n);
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = (i >> v) & 1;
    tables.push_back(std::move(t));
  }

  const int steps = 300;
  for (int step = 0; step < steps; ++step) {
    const std::size_t count = fns.size();
    auto pick = [&]() { return rng.below(count); };
    switch (rng.below(10)) {
      case 0: {  // and
        const auto a = pick(), b = pick();
        fns.push_back(fns[a] & fns[b]);
        tables.push_back(table_and(tables[a], tables[b]));
        break;
      }
      case 1: {  // or
        const auto a = pick(), b = pick();
        fns.push_back(fns[a] | fns[b]);
        tables.push_back(table_or(tables[a], tables[b]));
        break;
      }
      case 2: {  // xor
        const auto a = pick(), b = pick();
        fns.push_back(fns[a] ^ fns[b]);
        tables.push_back(table_xor(tables[a], tables[b]));
        break;
      }
      case 3: {  // not
        const auto a = pick();
        fns.push_back(!fns[a]);
        tables.push_back(table_not(tables[a]));
        break;
      }
      case 4: {  // ite
        const auto a = pick(), b = pick(), c = pick();
        fns.push_back(m.wrap(m.ite(fns[a].id(), fns[b].id(), fns[c].id())));
        tables.push_back(table_ite(tables[a], tables[b], tables[c]));
        break;
      }
      case 5: {  // cofactor
        const auto a = pick();
        const int v = rng.range(0, n - 1);
        const bool val = rng.flip();
        fns.push_back(fns[a].cofactor(v, val));
        tables.push_back(table_cof(tables[a], v, val, n));
        break;
      }
      case 6: {  // compose
        const auto a = pick(), b = pick();
        const int v = rng.range(0, n - 1);
        fns.push_back(m.wrap(m.compose(fns[a].id(), v, fns[b].id())));
        tables.push_back(table_compose(tables[a], v, tables[b]));
        break;
      }
      case 7: {  // drop some handles, then GC
        for (int d = 0; d < 5 && fns.size() > static_cast<std::size_t>(n) + 2; ++d) {
          const std::size_t victim =
              static_cast<std::size_t>(n) + rng.below(fns.size() - static_cast<std::size_t>(n));
          fns.erase(fns.begin() + static_cast<std::ptrdiff_t>(victim));
          tables.erase(tables.begin() + static_cast<std::ptrdiff_t>(victim));
        }
        m.garbage_collect();
        break;
      }
      case 8: {  // random adjacent swap burst
        for (int s = 0; s < 4; ++s) m.swap_adjacent_levels(rng.range(0, n - 2));
        break;
      }
      case 9: {  // full sift
        if (step % 3 == 0) m.sift();
        break;
      }
    }
  }

  // Final deep check of every surviving function.
  for (std::size_t i = 0; i < fns.size(); ++i)
    EXPECT_EQ(test::table_from_bdd(m, fns[i].id(), n), tables[i]) << "function " << i;
  // And the manager's bookkeeping survived: after GC, the live nodes are
  // exactly the referenced closure (dag_size additionally counts the one or
  // two reachable terminals, which are not "live" allocations).
  m.garbage_collect();
  std::vector<bdd::NodeId> roots;
  for (const Bdd& f : fns) roots.push_back(f.id());
  const std::size_t closure = m.dag_size(roots);
  const std::size_t live = m.live_node_count();
  EXPECT_GE(closure, live);
  EXPECT_LE(closure, live + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddSoak, ::testing::Range(0, 10));

TEST(BddSoak, ManagerScalesThroughGrowthAndCollapse) {
  // Build a large structure, drop it, rebuild: the free list must recycle
  // and the unique tables must not degrade.
  Manager m(16);
  const std::size_t baseline = m.live_node_count();
  for (int round = 0; round < 5; ++round) {
    {
      Rng rng(static_cast<std::uint64_t>(round));
      Bdd acc = m.bdd_false();
      for (int c = 0; c < 200; ++c) {
        Bdd cube = m.bdd_true();
        for (int v = 0; v < 16; ++v)
          if (rng.chance(1, 4)) cube &= m.literal(v, rng.flip());
        acc |= cube;
      }
      EXPECT_GT(m.live_node_count(), baseline);
    }
    m.garbage_collect();
    EXPECT_EQ(m.live_node_count(), baseline) << "round " << round;
  }
}

TEST(BddSoak, QuantifierIdentities) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.range(3, 7);
    Manager m(n);
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd g = test::bdd_from_table(m, test::random_table(rng, n), n);
    const int v = rng.range(0, n - 1);
    // De Morgan for quantifiers.
    EXPECT_EQ(m.wrap(m.exists((!f).id(), {v})), !m.wrap(m.forall(f.id(), {v})));
    // Quantifying all variables yields a constant: satisfiability.
    std::vector<int> all;
    for (int i = 0; i < n; ++i) all.push_back(i);
    EXPECT_EQ(m.exists(f.id(), all), f.is_false() ? bdd::kFalse : bdd::kTrue);
    // exists distributes over or.
    EXPECT_EQ(m.exists((f | g).id(), {v}),
              (m.wrap(m.exists(f.id(), {v})) | m.wrap(m.exists(g.id(), {v}))).id());
  }
}

TEST(BddSoak, TransferUnderHeavyReordering) {
  Rng rng(555);
  Manager src(8);
  std::vector<Bdd> fns;
  std::vector<Table> tables;
  for (int i = 0; i < 6; ++i) {
    tables.push_back(test::random_table(rng, 8));
    fns.push_back(test::bdd_from_table(src, tables.back(), 8));
  }
  src.sift();

  Manager dst(8);
  std::vector<int> order{7, 6, 5, 4, 3, 2, 1, 0};
  dst.set_order(order);
  for (int i = 0; i < 6; ++i) {
    const Bdd moved = dst.wrap(dst.transfer_from(src, fns[static_cast<std::size_t>(i)].id()));
    EXPECT_EQ(test::table_from_bdd(dst, moved.id(), 8), tables[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace mfd
