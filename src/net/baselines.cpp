#include "net/baselines.h"

#include <cassert>
#include <deque>

namespace mfd::net {

int GateBuilder::mux(int sel, int d1, int d0) {
  const int t1 = and2(sel, d1);
  const int t0 = andn2(d0, sel);  // d0 & !sel
  return or2(t1, t0);
}

std::pair<int, int> GateBuilder::full_adder(int a, int b, int cin) {
  const int axb = xor2(a, b);
  const int sum = xor2(axb, cin);
  const int c1 = and2(a, b);
  const int c2 = and2(axb, cin);
  const int carry = or2(c1, c2);
  return {sum, carry};
}

std::pair<int, int> GateBuilder::half_adder(int a, int b) {
  return {xor2(a, b), and2(a, b)};
}

LutNetwork conditional_sum_adder(int n) {
  assert(n > 0 && (n & (n - 1)) == 0 && "block doubling needs a power of two");
  LutNetwork net(2 * n);
  GateBuilder g(net);

  // A block covering bits [lo, lo+w) is represented by its sum bits and
  // carry-out under both carry-in assumptions.
  struct Block {
    std::vector<int> sum[2];  // sum[t][k]: bit lo+k assuming carry-in t
    int carry[2];             // carry out assuming carry-in t
  };

  // Leaf blocks: one bit each.
  std::vector<Block> blocks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int a = i, b = n + i;
    Block& blk = blocks[static_cast<std::size_t>(i)];
    blk.sum[0] = {g.xor2(a, b)};
    blk.carry[0] = g.and2(a, b);
    blk.sum[1] = {g.xnor2(a, b)};
    blk.carry[1] = g.or2(a, b);
  }

  // Merge pairs of equal-width blocks; the high half selects between its two
  // precomputed versions with multiplexers driven by the low half's carry.
  while (blocks.size() > 1) {
    std::vector<Block> merged;
    for (std::size_t i = 0; i < blocks.size(); i += 2) {
      const Block& lo = blocks[i];
      const Block& hi = blocks[i + 1];
      Block blk;
      for (int t = 0; t < 2; ++t) {
        blk.sum[t] = lo.sum[t];
        for (std::size_t k = 0; k < hi.sum[0].size(); ++k)
          blk.sum[t].push_back(g.mux(lo.carry[t], hi.sum[1][k], hi.sum[0][k]));
        blk.carry[t] = g.mux(lo.carry[t], hi.carry[1], hi.carry[0]);
      }
      merged.push_back(std::move(blk));
    }
    blocks = std::move(merged);
  }

  for (int s : blocks[0].sum[0]) net.add_output(s);
  net.add_output(blocks[0].carry[0]);
  net.simplify();  // the carry-in=1 top version is dead
  return net;
}

LutNetwork ripple_carry_adder(int n) {
  LutNetwork net(2 * n);
  GateBuilder g(net);
  auto [s0, c] = g.half_adder(0, n);
  net.add_output(s0);
  for (int i = 1; i < n; ++i) {
    auto [s, cn] = g.full_adder(i, n + i, c);
    net.add_output(s);
    c = cn;
  }
  net.add_output(c);
  return net;
}

LutNetwork wallace_tree_pp(int n) {
  LutNetwork net(n * n);
  GateBuilder g(net);

  // Column c holds the signals of weight c.
  std::vector<std::deque<int>> column(static_cast<std::size_t>(2 * n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      column[static_cast<std::size_t>(i + j)].push_back(i * n + j);

  // Carry-save reduction: as long as some column has three or more entries,
  // compress with full/half adders.
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::deque<int>> next(column.size());
    for (std::size_t c = 0; c < column.size(); ++c) {
      auto& col = column[c];
      while (col.size() >= 3) {
        const int a = col.front(); col.pop_front();
        const int b = col.front(); col.pop_front();
        const int d = col.front(); col.pop_front();
        auto [s, carry] = g.full_adder(a, b, d);
        next[c].push_back(s);
        if (c + 1 < column.size()) next[c + 1].push_back(carry);
        again = true;
      }
      // One compressing half adder per column and round, as in Wallace's
      // original scheme, only when it helps reach <= 2 rows.
      if (col.size() == 2 && !next[c].empty()) {
        const int a = col.front(); col.pop_front();
        const int b = col.front(); col.pop_front();
        auto [s, carry] = g.half_adder(a, b);
        next[c].push_back(s);
        if (c + 1 < column.size()) next[c + 1].push_back(carry);
        again = true;
      }
      while (!col.empty()) {
        next[c].push_back(col.front());
        col.pop_front();
      }
    }
    column = std::move(next);
    // Stop when every column has at most 2 entries.
    bool tall = false;
    for (const auto& col : column)
      if (col.size() > 2) tall = true;
    again = tall;
  }

  // Final carry-propagate addition over the two remaining rows.
  int carry = kConst0;
  for (std::size_t c = 0; c < column.size(); ++c) {
    auto& col = column[c];
    int a = col.empty() ? kConst0 : col.front();
    if (!col.empty()) col.pop_front();
    int b = col.empty() ? kConst0 : col.front();
    if (!col.empty()) col.pop_front();
    if (b == kConst0 && carry == kConst0) {
      net.add_output(a);
      continue;
    }
    if (b == kConst0) {
      auto [s, cn] = g.half_adder(a == kConst0 ? carry : a, a == kConst0 ? kConst0 : carry);
      // half_adder with a constant operand is cleaned up by simplify()
      net.add_output(s);
      carry = cn;
      continue;
    }
    auto [s, cn] = g.full_adder(a, b, carry);
    net.add_output(s);
    carry = cn;
  }
  net.simplify();
  return net;
}

}  // namespace mfd::net
