// Shared helpers for the experiment harness binaries (one per paper
// table/figure, see DESIGN.md's per-experiment index).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "circuits/circuits.h"
#include "core/synthesizer.h"

namespace mfd::bench {

struct FlowRun {
  std::string circuit;
  int inputs = 0;
  int outputs = 0;
  int luts = 0;
  int clb_greedy = 0;
  int clb_matching = 0;
  int gates = 0;
  int depth = 0;
  DecomposeStats stats;
  double seconds = 0.0;
};

/// Runs one synthesis flow on a named benchmark in a fresh manager.
inline FlowRun run_flow(const std::string& name, const SynthesisOptions& opts) {
  bdd::Manager m;
  const circuits::Benchmark bench = circuits::build(name, m);
  Synthesizer synth(opts);
  const SynthesisResult r = synth.run(bench);
  FlowRun row;
  row.circuit = name;
  row.inputs = bench.num_inputs;
  row.outputs = static_cast<int>(bench.outputs.size());
  row.luts = r.network.count_luts();
  row.clb_greedy = r.clb_greedy.num_clbs;
  row.clb_matching = r.clb_matching.num_clbs;
  row.gates = r.network.count_gates();
  row.depth = r.network.depth();
  row.stats = r.stats;
  row.seconds = r.seconds;
  return row;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mfd::bench
