#include <gtest/gtest.h>

#include "isf/isf.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;

TEST(Isf, CompletelySpecifiedBasics) {
  Manager m(3);
  const Bdd f = m.var(0) & m.var(1);
  const Isf isf = Isf::completely_specified(f);
  EXPECT_TRUE(isf.is_completely_specified());
  EXPECT_EQ(isf.on(), f);
  EXPECT_EQ(isf.off(), !f);
  EXPECT_TRUE(isf.dc().is_false());
  EXPECT_TRUE(isf.admits(f));
  EXPECT_FALSE(isf.admits(m.var(0)));
}

TEST(Isf, OnClippedToCare) {
  Manager m(2);
  // on-set reaches outside the care set; the constructor must clip it.
  const Isf isf(m.var(0), m.var(1));
  EXPECT_EQ(isf.on(), m.var(0) & m.var(1));
  EXPECT_EQ(isf.care(), m.var(1));
}

TEST(Isf, FromOnDc) {
  Manager m(2);
  const Isf isf = Isf::from_on_dc(m.var(0), m.var(1));
  EXPECT_EQ(isf.dc(), m.var(1));
  EXPECT_EQ(isf.on(), m.var(0) & !m.var(1));
}

TEST(Isf, AdmitsExactlyTheInterval) {
  Manager m(2);
  // care = x0 (two care points), on = x0 & x1.
  const Isf isf(m.var(0) & m.var(1), m.var(0));
  // Any extension must be 1 on (1,1), 0 on (1,0); free elsewhere.
  EXPECT_TRUE(isf.admits(m.var(0) & m.var(1)));
  EXPECT_TRUE(isf.admits(m.var(1)));
  EXPECT_TRUE(isf.admits(isf.extension_zero()));
  EXPECT_TRUE(isf.admits(isf.extension_one()));
  EXPECT_FALSE(isf.admits(m.var(0)));         // 1 on (1,0): conflict
  EXPECT_FALSE(isf.admits(m.bdd_false()));    // 0 on (1,1): conflict
}

TEST(Isf, VacuousAdmitsEverything) {
  Manager m(2);
  const Isf isf(m.bdd_false(), m.bdd_false());
  EXPECT_TRUE(isf.is_vacuous());
  EXPECT_TRUE(isf.admits(m.bdd_true()));
  EXPECT_TRUE(isf.admits(m.var(0) ^ m.var(1)));
}

TEST(Isf, CofactorCommutesWithExtension) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5;
    Manager m(n);
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Isf isf(on & care, care);
    const int v = rng.range(0, n - 1);
    const bool val = rng.flip();
    const Isf cof = isf.cofactor(v, val);
    EXPECT_EQ(cof.on(), isf.on().cofactor(v, val));
    EXPECT_EQ(cof.care(), isf.care().cofactor(v, val));
  }
}

TEST(Isf, CompatibilityIsCareConflictFreedom) {
  Manager m(2);
  const Bdd x0 = m.var(0);
  // a: on = x0, care = all. b: on = !x0 on care x0 only -> conflict at x0=1.
  const Isf a = Isf::completely_specified(x0);
  const Isf b(!x0, m.bdd_true());
  EXPECT_FALSE(a.compatible_with(b));
  // c cares only where x0=0 and is off there: compatible with a.
  const Isf c(m.bdd_false(), !x0);
  EXPECT_TRUE(a.compatible_with(c));
  EXPECT_TRUE(c.compatible_with(a));
  // Every ISF is compatible with itself and with the vacuous ISF.
  EXPECT_TRUE(a.compatible_with(a));
  const Isf vac(m.bdd_false(), m.bdd_false());
  EXPECT_TRUE(a.compatible_with(vac));
}

TEST(Isf, MergeUnionsInformation) {
  Manager m(2);
  const Bdd x0 = m.var(0), x1 = m.var(1);
  const Isf a(x0 & x1, x0);        // cares on x0: on iff x1
  const Isf b(m.bdd_false(), !x0); // cares on !x0: off
  ASSERT_TRUE(a.compatible_with(b));
  const Isf merged = a.merge(b);
  EXPECT_TRUE(merged.is_completely_specified());
  EXPECT_EQ(merged.on(), x0 & x1);
}

TEST(Isf, MergedExtensionAdmittedByBothParts) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4;
    Manager m(n);
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care_a = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care_b = test::bdd_from_table(m, test::random_table(rng, n), n);
    // Both ISFs restrict the same underlying function: always compatible.
    const Isf a(on & care_a, care_a);
    const Isf b(on & care_b, care_b);
    ASSERT_TRUE(a.compatible_with(b));
    const Isf merged = a.merge(b);
    EXPECT_TRUE(a.admits(merged.extension_zero()));
    EXPECT_TRUE(b.admits(merged.extension_zero()));
    EXPECT_EQ(merged.care(), care_a | care_b);
  }
}

TEST(Isf, SupportUnionsOnAndCare) {
  Manager m(4);
  const Isf isf(m.var(0) & m.var(1), m.var(1) | m.var(3));
  EXPECT_EQ(isf.support(), (std::vector<int>{0, 1, 3}));
}

TEST(Isf, ExtensionSmallIsAdmissible) {
  Rng rng(83);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.range(2, 7);
    Manager m(n);
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Isf f(on & care, care);
    EXPECT_TRUE(f.admits(f.extension_small()));
    EXPECT_TRUE(f.admits(f.extension_zero()));
    EXPECT_TRUE(f.admits(f.extension_one()));
  }
}

TEST(Isf, ExtensionSmallCanDropSupport) {
  Manager m(3);
  // Cares only where x0 = 1; there the function equals x1. Extension zero
  // keeps x0 in the support, the restrict-based extension does not.
  const Isf f(m.var(0) & m.var(1), m.var(0));
  EXPECT_EQ(f.extension_small(), m.var(1));
  EXPECT_EQ(m.support(f.extension_zero().id()).size(), 2u);
}

TEST(Isf, EqualityIsSpecificationEquality) {
  Manager m(2);
  const Isf a(m.var(0), m.var(1));
  const Isf b(m.var(0), m.var(1));
  const Isf c(m.var(0), m.bdd_true());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace mfd
