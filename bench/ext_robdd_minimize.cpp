// The [20] component experiment: ROBDD-size minimization of incompletely
// specified functions by symmetry-creating don't-care assignment + restrict.
// Sweeps the don't-care density of randomized specifications and reports the
// size of the chosen extension relative to the extension-zero baseline —
// the effect the paper's step 1 relies on.
#include "bench_common.h"
#include "sym/minimize.h"
#include "testlib_shim.h"

namespace {

struct Row {
  int dc_percent = 0;
  double avg_before = 0;
  double avg_after = 0;
  double avg_symmetries = 0;
};

std::vector<Row> g_rows;

void run_density(benchmark::State& state, int dc_percent) {
  for (auto _ : state) {
    constexpr int kTrials = 12, kVars = 10;
    Row row;
    row.dc_percent = dc_percent;
    for (int trial = 0; trial < kTrials; ++trial) {
      mfd::Rng rng(static_cast<std::uint64_t>(dc_percent) * 131 + trial);
      mfd::bdd::Manager m(kVars);
      // Random on-set; each input is a don't care with probability dc%.
      mfd::bdd::Bdd on = mfd::bench_shim::random_function(m, rng, kVars, 24);
      mfd::bdd::Bdd dc = mfd::bench_shim::random_density(m, rng, kVars, dc_percent);
      const mfd::Isf f(on & !dc, !dc);
      const mfd::MinimizeResult r = mfd::minimize_robdd_size(f);
      row.avg_before += static_cast<double>(r.size_before) / kTrials;
      row.avg_after += static_cast<double>(r.size_after) / kTrials;
      row.avg_symmetries += static_cast<double>(r.symmetries_created) / kTrials;
    }
    g_rows.push_back(row);
    state.counters["before"] = row.avg_before;
    state.counters["after"] = row.avg_after;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const int dc : {0, 10, 25, 50, 75})
    benchmark::RegisterBenchmark(("robdd_minimize/dc" + std::to_string(dc)).c_str(),
                                 [dc](benchmark::State& s) { run_density(s, dc); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n[20]-style experiment: ROBDD size of the chosen extension vs\n");
  std::printf("extension-zero, by don't-care density (10-var random specs).\n\n");
  std::printf("%5s | %10s %10s %7s | %10s\n", "dc%", "ext-zero", "minimized",
               "ratio", "symmetries");
  mfd::bench::print_rule(52);
  for (const Row& r : g_rows)
    std::printf("%4d%% | %10.1f %10.1f %6.0f%% | %10.1f\n", r.dc_percent,
                 r.avg_before, r.avg_after,
                 100.0 * r.avg_after / std::max(1.0, r.avg_before), r.avg_symmetries);
  std::printf("\nshape check: more don't cares -> smaller chosen extensions;\n");
  std::printf("the curve flattens once symmetries saturate.\n");
  mfd::bench::write_stats_json();
  return 0;
}
