// PLA and BLIF readers/writers.
#include <gtest/gtest.h>

#include "io/blif.h"
#include "io/pla.h"
#include "core/errors.h"
#include "core/synthesizer.h"
#include "net/baselines.h"
#include "net/simulate.h"
#include "testlib.h"

namespace mfd::io {
namespace {

using bdd::Bdd;
using bdd::Manager;

// ---------------------------------------------------------------------------
// PLA
// ---------------------------------------------------------------------------

constexpr const char* kSmallPla = R"(# a tiny fd-type PLA
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 11
--1 0-
.e
)";

TEST(Pla, ParseRoundTrip) {
  const PlaFile pla = parse_pla(kSmallPla);
  EXPECT_EQ(pla.num_inputs, 3);
  EXPECT_EQ(pla.num_outputs, 2);
  EXPECT_EQ(pla.input_names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(pla.cubes.size(), 3u);
  EXPECT_EQ(pla.cubes[0].first, "1-0");
  EXPECT_EQ(pla.cubes[0].second, "10");

  const PlaFile again = parse_pla(write_pla(pla));
  EXPECT_EQ(again.num_inputs, pla.num_inputs);
  EXPECT_EQ(again.cubes, pla.cubes);
}

TEST(Pla, ToIsfsSemantics) {
  Manager m;
  const PlaFile pla = parse_pla(kSmallPla);
  const std::vector<Isf> fns = pla_to_isfs(pla, m);
  ASSERT_EQ(fns.size(), 2u);
  const Bdd a = m.var(0), b = m.var(1), c = m.var(2);
  // f: on = (a & !c) | (!a & b & c); the '0' of the third cube carries no
  // information in an fd-type PLA, so f is completely specified.
  EXPECT_EQ(fns[0].on(), (a & !c) | ((!a) & b & c));
  EXPECT_TRUE(fns[0].is_completely_specified());
  EXPECT_TRUE(fns[0].admits(fns[0].extension_zero()));
  // g: on = !a & b & c; the third cube's '-' makes c=1 (minus on) don't care.
  EXPECT_EQ(fns[1].on(), (!a) & b & c);
  EXPECT_EQ(fns[1].dc(), c & !fns[1].on());
}

TEST(Pla, SingleTokenCubesAccepted) {
  const PlaFile pla = parse_pla(".i 2\n.o 1\n11 1\n");
  EXPECT_EQ(pla.cubes.size(), 1u);
  const PlaFile merged = parse_pla(".i 2\n.o 1\n111\n");
  EXPECT_EQ(merged.cubes, pla.cubes);
}

TEST(Pla, FrTypeCareIsListedPlanes) {
  Manager m;
  const PlaFile pla = parse_pla(".i 2\n.o 1\n.type fr\n11 1\n00 0\n");
  const std::vector<Isf> fns = pla_to_isfs(pla, m);
  const Bdd x0 = m.var(0), x1 = m.var(1);
  EXPECT_EQ(fns[0].on(), x0 & x1);
  EXPECT_EQ(fns[0].care(), (x0 & x1) | ((!x0) & (!x1)));
}

TEST(Pla, TwoSymbolIsDashSynonym) {
  // espresso allows '2' for '-' in both planes; the parser normalizes it so
  // downstream code only ever sees '-'.
  Manager m;
  const PlaFile pla = parse_pla(".i 3\n.o 2\n.type fd\n012 1-\n1-0 21\n");
  EXPECT_EQ(pla.cubes[0].first, "01-");
  EXPECT_EQ(pla.cubes[0].second, "1-");
  EXPECT_EQ(pla.cubes[1].second, "-1");
  const std::vector<Isf> dash =
      pla_to_isfs(parse_pla(".i 3\n.o 2\n.type fd\n01- 1-\n1-0 -1\n"), m);
  const std::vector<Isf> two = pla_to_isfs(pla, m);
  ASSERT_EQ(dash.size(), two.size());
  for (std::size_t o = 0; o < dash.size(); ++o) EXPECT_EQ(dash[o], two[o]);
}

TEST(Pla, ContinuationLinesAndMultiLineNameLists) {
  // '\' joins physical lines, and repeated .ilb/.ob directives append —
  // espresso emits both for wide PLAs.
  const PlaFile pla = parse_pla(
      ".i 3\n.o 2\n.ilb a b \\\nc\n.ob f\n.ob g\n1-0 10\n");
  EXPECT_EQ(pla.input_names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(pla.output_names, (std::vector<std::string>{"f", "g"}));
  // Name-list length must agree with .i/.o once the whole file is read.
  EXPECT_THROW(parse_pla(".i 3\n.o 1\n.ilb a b\n1-0 1\n"), mfd::ParseError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.ob f g\n10 1\n"), mfd::ParseError);
}

TEST(Pla, TypeFDashOutputCarriesNoInformation) {
  // In a .type f PLA the DC-set is empty by definition: a '-' output entry
  // has *no meaning* and must not widen the don't-care set. (It used to be
  // parsed into the DC plane, silently allowing cared-for values to change.)
  Manager m;
  const std::vector<Isf> fns =
      pla_to_isfs(parse_pla(".i 2\n.o 2\n.type f\n11 1-\n00 -1\n"), m);
  const Bdd x0 = m.var(0), x1 = m.var(1);
  for (const Isf& f : fns) EXPECT_TRUE(f.is_completely_specified());
  EXPECT_EQ(fns[0].on(), x0 & x1);
  EXPECT_EQ(fns[1].on(), (!x0) & (!x1));
}

TEST(Pla, UnknownTypeRejected) {
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.type fx\n11 1\n"), mfd::ParseError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.type\n"), mfd::ParseError);
}

TEST(Pla, ExactExportRoundTripsCareSetVerbatim) {
  // pla_from_isfs_exact writes an fr-type cover of both the on and off
  // planes; parsing it back must reproduce (on, care) bit-for-bit, including
  // for the degenerate all-DC and constant shapes.
  Manager m(4);
  mfd::Rng rng(99);
  std::vector<Isf> fns;
  const Bdd f = test::bdd_from_table(m, test::random_table(rng, 4), 4);
  const Bdd care = test::bdd_from_table(m, test::random_table(rng, 4), 4);
  fns.push_back(Isf(f & care, care));
  fns.push_back(Isf(m.constant(false), m.constant(false)));  // all-DC
  fns.push_back(Isf::completely_specified(m.constant(true)));
  const PlaFile pla = pla_from_isfs_exact(fns, 4);
  EXPECT_EQ(pla.type, "fr");
  const std::vector<Isf> back = pla_to_isfs(pla, m);
  ASSERT_EQ(back.size(), fns.size());
  for (std::size_t o = 0; o < fns.size(); ++o) EXPECT_EQ(back[o], fns[o]);
}

TEST(Pla, RejectsMalformedInput) {
  EXPECT_THROW(parse_pla("11 1\n"), std::runtime_error);            // cube before .i/.o
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n1 1\n"), std::runtime_error); // width mismatch
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n1x 1\n"), std::runtime_error);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.unknown\n"), std::runtime_error);
}

// Every malformed input must be reported as a ParseError carrying the file
// name and the 1-based line number of the offending line.
TEST(Pla, MalformedInputReportsFileAndLine) {
  struct Case {
    const char* text;
    int line;  // expected 1-based line (0 = whole-file error)
    const char* hint;
  };
  const Case corpus[] = {
      {"11 1\n", 1, "cube before"},
      {".i 2\n.o 1\n1 1\n", 3, "width mismatch"},
      {".i 2\n\n.o 1\n\n1x 1\n", 5, "bad input character"},
      {".i 2\n.o 1\n11 x\n", 3, "bad output character"},
      {".i 2\n.o 1\n.unknown\n", 3, "unsupported directive"},
      {".i 2\n.o nope\n11 1\n", 2, "non-negative count"},
      {".i -3\n.o 1\n", 1, "non-negative count"},
      {"# comment\n.i 2 2\n.o 1\n", 2, "malformed .i"},
      {".i 2\n.o 1\n.type\n", 3, "malformed .type"},
      {".i 2\n.o 1\n11 1 extra\n", 3, "malformed cube"},
      {".i 2\n", 0, "missing .i/.o"},
  };
  for (const Case& c : corpus) {
    try {
      (void)parse_pla(c.text, "test.pla");
      FAIL() << "accepted malformed input: " << c.text;
    } catch (const mfd::ParseError& e) {
      EXPECT_EQ(e.file(), "test.pla") << c.text;
      EXPECT_EQ(e.line(), c.line) << c.text;
      EXPECT_NE(std::string(e.what()).find(c.hint), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.hint << "'";
      if (c.line > 0) {
        EXPECT_NE(std::string(e.what()).find("test.pla:" + std::to_string(c.line)),
                  std::string::npos)
            << e.what();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BLIF
// ---------------------------------------------------------------------------

constexpr const char* kSmallBlif = R"(.model tiny
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names c g
0 1
.end
)";

TEST(Blif, ParseBuildsCorrectFunctions) {
  Manager m;
  const BlifModel model = parse_blif(kSmallBlif, m);
  EXPECT_EQ(model.name, "tiny");
  ASSERT_EQ(model.functions.size(), 2u);
  const Bdd a = m.var(0), b = m.var(1), c = m.var(2);
  EXPECT_EQ(model.functions[0], (a & b) | c);
  EXPECT_EQ(model.functions[1], !c);
}

TEST(Blif, ComplementedOutputPlane) {
  Manager m;
  const BlifModel model = parse_blif(
      ".model x\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n", m);
  EXPECT_EQ(model.functions[0], !(m.var(0) & m.var(1)));
}

TEST(Blif, ConstantNodes) {
  Manager m;
  const BlifModel model = parse_blif(
      ".model x\n.inputs a\n.outputs f g\n.names f\n1\n.names g\n.end\n", m);
  EXPECT_TRUE(model.functions[0].is_true());
  EXPECT_TRUE(model.functions[1].is_false());
}

TEST(Blif, RejectsUndefinedSignals) {
  Manager m;
  EXPECT_THROW(parse_blif(".model x\n.inputs a\n.outputs f\n.names q f\n1 1\n.end\n", m),
               std::runtime_error);
  EXPECT_THROW(parse_blif(".model x\n.inputs a\n.outputs f\n.end\n", m),
               std::runtime_error);
}

TEST(Blif, MalformedInputReportsFileAndLine) {
  struct Case {
    const char* text;
    int line;  // expected 1-based line (0 = whole-model error)
    const char* hint;
  };
  const Case corpus[] = {
      {".model x\n.inputs a\n.outputs f\n.names q f\n1 1\n.end\n", 4, "undefined signal"},
      {".model x\n.inputs a\n.outputs f\n.names\n.end\n", 4, "empty .names"},
      {".model x\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n", 5, "cover width mismatch"},
      {".model x\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n", 5, "bad output plane"},
      {".model x\n.inputs a\n.outputs f\n.names a f\nz 1\n.end\n", 5, "bad cover character"},
      {".model x\n.inputs a\n.outputs f\n.latch a f\n.end\n", 4, "unsupported directive"},
      {".model x\n.model y\n.end\n", 2, "multiple models"},
      {".model x\n.inputs a\nstray\n.end\n", 3, "stray line"},
      {".model x\n.inputs a\n.outputs f\n.end\n", 0, "undriven output"},
      // '\' continuation: the error points at the line that OPENED it.
      {".model x\n.inputs a\n.outputs f\n.names a \\\n  q f\n1- 1\n.end\n", 4,
       "undefined signal"},
  };
  for (const Case& c : corpus) {
    Manager m;
    try {
      (void)parse_blif(c.text, m, "test.blif");
      FAIL() << "accepted malformed input: " << c.text;
    } catch (const mfd::ParseError& e) {
      EXPECT_EQ(e.file(), "test.blif") << c.text;
      EXPECT_EQ(e.line(), c.line) << c.text;
      EXPECT_NE(std::string(e.what()).find(c.hint), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.hint << "'";
    }
  }
}

TEST(Blif, WriteParseRoundTripPreservesFunctions) {
  // Serialize a real network and parse it back: functions must match.
  net::LutNetwork net = net::ripple_carry_adder(3);
  const std::string text = write_blif(net, "rca3");

  Manager m;
  const BlifModel model = parse_blif(text, m);
  ASSERT_EQ(model.functions.size(), static_cast<std::size_t>(net.num_outputs()));

  std::vector<int> pi_vars;
  for (int i = 0; i < net.num_primary_inputs(); ++i) pi_vars.push_back(i);
  const auto direct = net::output_bdds(net, m, pi_vars);
  for (std::size_t o = 0; o < direct.size(); ++o)
    EXPECT_EQ(model.functions[o], direct[o]) << "output " << o;
}

TEST(Blif, WriteHandlesConstantsAndBuffers) {
  net::LutNetwork net(2);
  net.add_output(net::kConst1);
  net.add_output(0);  // PI passthrough
  const std::string text = write_blif(net, "consts");
  Manager m;
  const BlifModel model = parse_blif(text, m);
  EXPECT_TRUE(model.functions[0].is_true());
  EXPECT_EQ(model.functions[1], m.var(0));
}

TEST(Blif, ContinuationsAndComments) {
  Manager m;
  const BlifModel model = parse_blif(
      ".model c  # trailing comment\n"
      ".inputs a \\\n b\n"
      ".outputs f\n"
      "# full-line comment\n"
      ".names a b f\n"
      "11 1\n"
      ".end\n",
      m);
  ASSERT_EQ(model.inputs.size(), 2u);
  EXPECT_EQ(model.functions[0], m.var(0) & m.var(1));
}

TEST(Blif, OutputsListMaySpanMultipleDirectives) {
  // Repeated .inputs/.outputs directives append (many netlist writers emit
  // one directive per chunk instead of '\' continuations).
  Manager m;
  const BlifModel model = parse_blif(
      ".model c\n.inputs a\n.inputs b\n.outputs f\n.outputs g\n"
      ".names a b f\n11 1\n.names a g\n0 1\n.end\n",
      m);
  ASSERT_EQ(model.inputs.size(), 2u);
  ASSERT_EQ(model.outputs.size(), 2u);
  EXPECT_EQ(model.functions[0], m.var(0) & m.var(1));
  EXPECT_EQ(model.functions[1], !m.var(0));
}

TEST(Blif, WriterSanitizesHostileNames) {
  // Names with whitespace, comment characters, continuation backslashes,
  // leading dots, or duplicates must be rewritten into something the reader
  // accepts — and the rewritten file must still compute the same functions.
  net::LutNetwork net = net::ripple_carry_adder(2);
  const std::vector<std::string> ins = {"a b", "#x", "bad\\name", ".dot"};
  ASSERT_EQ(static_cast<int>(ins.size()), net.num_primary_inputs());
  std::vector<std::string> outs(static_cast<std::size_t>(net.num_outputs()),
                                "same");  // every output named identically
  const std::string text = write_blif(net, "hostile", ins, outs);

  Manager m;
  const BlifModel model = parse_blif(text, m);  // must not throw
  ASSERT_EQ(model.outputs.size(), static_cast<std::size_t>(net.num_outputs()));
  // Output names stay distinct after dedup.
  for (std::size_t i = 0; i < model.outputs.size(); ++i)
    for (std::size_t j = i + 1; j < model.outputs.size(); ++j)
      EXPECT_NE(model.outputs[i], model.outputs[j]);

  std::vector<int> pis;
  for (int i = 0; i < net.num_primary_inputs(); ++i) pis.push_back(i);
  const auto direct = net::output_bdds(net, m, pis);
  ASSERT_EQ(model.functions.size(), direct.size());
  for (std::size_t o = 0; o < direct.size(); ++o)
    EXPECT_EQ(model.functions[o], direct[o]) << "output " << o;
}

class IoFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IoFuzz, RandomPlaRoundTripPreservesSemantics) {
  mfd::Rng rng(static_cast<std::uint64_t>(GetParam()) * 127 + 7);
  const int n_in = rng.range(2, 6);
  const int n_out = rng.range(1, 4);
  PlaFile pla;
  pla.num_inputs = n_in;
  pla.num_outputs = n_out;
  const int cubes = rng.range(1, 10);
  for (int c = 0; c < cubes; ++c) {
    std::string in, out;
    for (int i = 0; i < n_in; ++i) in += "01-"[rng.below(3)];
    for (int o = 0; o < n_out; ++o) out += "01-"[rng.below(3)];
    pla.cubes.emplace_back(std::move(in), std::move(out));
  }

  Manager m;
  const std::vector<Isf> direct = pla_to_isfs(pla, m);
  const std::vector<Isf> reparsed = pla_to_isfs(parse_pla(write_pla(pla)), m);
  ASSERT_EQ(direct.size(), reparsed.size());
  for (std::size_t o = 0; o < direct.size(); ++o) EXPECT_EQ(direct[o], reparsed[o]);
}

TEST_P(IoFuzz, SynthesizedNetworksSurviveBlifRoundTrip) {
  mfd::Rng rng(static_cast<std::uint64_t>(GetParam()) * 51 + 13);
  const int n = rng.range(4, 7);
  Manager m(n);
  std::vector<Isf> spec;
  for (int o = 0; o < 2; ++o)
    spec.push_back(Isf::completely_specified(
        test::bdd_from_table(m, test::random_table(rng, n), n)));
  std::vector<int> pis;
  for (int i = 0; i < n; ++i) pis.push_back(i);
  const auto result = mfd::Synthesizer(mfd::preset_mulop_dc(4)).run(spec, pis);
  ASSERT_TRUE(result.verified);

  // Serialize, re-parse, and compare functions exactly.
  Manager m2;
  const BlifModel model = parse_blif(write_blif(result.network, "fuzz"), m2);
  const auto direct = net::output_bdds(result.network, m2, pis);
  ASSERT_EQ(model.functions.size(), direct.size());
  for (std::size_t o = 0; o < direct.size(); ++o)
    EXPECT_EQ(model.functions[o], direct[o]) << "output " << o;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz, ::testing::Range(0, 15));

}  // namespace
}  // namespace mfd::io
