# Empty compiler generated dependencies file for fig2_adder.
# This may be replaced when dependencies are built.
