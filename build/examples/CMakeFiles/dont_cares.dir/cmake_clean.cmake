file(REMOVE_RECURSE
  "CMakeFiles/dont_cares.dir/dont_cares.cpp.o"
  "CMakeFiles/dont_cares.dir/dont_cares.cpp.o.d"
  "dont_cares"
  "dont_cares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dont_cares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
