// Minimal zero-dependency JSON emitter.
//
// A push-style writer: begin/end object and array scopes, keys, scalar
// values. Commas and quoting are handled internally; strings are escaped per
// RFC 8259. Numbers are emitted so they round-trip: integers as-is, doubles
// with enough digits (and non-finite doubles as null, which JSON lacks).
// Used by the observability report and the bench --stats-json wrappers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfd::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next value (only valid directly inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);

  /// Splices a pre-rendered JSON document as the next value (no validation).
  JsonWriter& raw(std::string_view json);

  /// The document so far. Call after the outermost scope is closed.
  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void before_value();

  std::string out_;
  // true = a value has already been written at this nesting depth (a comma
  // is due before the next one).
  std::vector<bool> comma_due_;
};

}  // namespace mfd::obs
