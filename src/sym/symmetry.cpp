#include "sym/symmetry.h"

#include <numeric>

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;
using bdd::Edge;

/// The two cofactor patterns whose equality defines the symmetry.
struct SlotPair {
  bool a_first, b_first;   // values of (var_a, var_b) in the first cofactor
  bool a_second, b_second; // and in the second
};

SlotPair slots(SymmetryKind kind) {
  if (kind == SymmetryKind::kNonequivalence) return {false, true, true, false};
  return {false, false, true, true};
}

Edge cof2(Manager& m, Edge f, int va, bool a, int vb, bool b) {
  return m.cofactor(m.cofactor(f, va, a), vb, b);
}

}  // namespace

bool is_symmetric(Manager& m, Edge f, int var_a, int var_b, SymmetryKind kind) {
  // Both cofactor chains produce unreferenced results that must survive the
  // other chain's operations: keep reactive GC off.
  Manager::AutoGcPause pause(m);
  const SlotPair s = slots(kind);
  return cof2(m, f, var_a, s.a_first, var_b, s.b_first) ==
         cof2(m, f, var_a, s.a_second, var_b, s.b_second);
}

bool isf_is_symmetric(const Isf& f, int var_a, int var_b, SymmetryKind kind) {
  Manager& m = *f.manager();
  return is_symmetric(m, f.on().id(), var_a, var_b, kind) &&
         is_symmetric(m, f.care().id(), var_a, var_b, kind);
}

bool symmetrizable(const Isf& f, int var_a, int var_b, SymmetryKind kind) {
  Manager& m = *f.manager();
  Manager::AutoGcPause pause(m);  // on1..ca2 stay unreferenced across ops
  const SlotPair s = slots(kind);
  const Edge on1 = cof2(m, f.on().id(), var_a, s.a_first, var_b, s.b_first);
  const Edge on2 = cof2(m, f.on().id(), var_a, s.a_second, var_b, s.b_second);
  const Edge ca1 = cof2(m, f.care().id(), var_a, s.a_first, var_b, s.b_first);
  const Edge ca2 = cof2(m, f.care().id(), var_a, s.a_second, var_b, s.b_second);
  // Conflict: a point both slots care about, with different values.
  const Edge diff = m.apply_xor(on1, on2);
  const Edge conflict = m.apply_and(diff, m.apply_and(ca1, ca2));
  return conflict == bdd::kFalse;
}

Isf make_symmetric(const Isf& f, int var_a, int var_b, SymmetryKind kind) {
  Manager& m = *f.manager();
  const SlotPair s = slots(kind);

  auto quadrant = [&](const Bdd& g, bool a, bool b) {
    return m.wrap(cof2(m, g.id(), var_a, a, var_b, b));
  };
  // Merge the two symmetry slots: the union of their information.
  const Bdd on_m = quadrant(f.on(), s.a_first, s.b_first) |
                   quadrant(f.on(), s.a_second, s.b_second);
  const Bdd care_m = quadrant(f.care(), s.a_first, s.b_first) |
                     quadrant(f.care(), s.a_second, s.b_second);

  const Bdd la = m.var(var_a), lb = m.var(var_b);
  auto cube = [&](bool a, bool b) {
    return (a ? la : !la) & (b ? lb : !lb);
  };

  auto rebuild = [&](const Bdd& g, const Bdd& merged) {
    Bdd result = g.manager()->bdd_false();
    for (const bool a : {false, true}) {
      for (const bool b : {false, true}) {
        const bool in_first = (a == s.a_first && b == s.b_first);
        const bool in_second = (a == s.a_second && b == s.b_second);
        const Bdd slot_value =
            (in_first || in_second) ? merged : quadrant(g, a, b);
        result |= cube(a, b) & slot_value;
      }
    }
    return result;
  };

  return Isf(rebuild(f.on(), on_m), rebuild(f.care(), care_m));
}

std::vector<std::vector<int>> symmetry_groups(const std::vector<Isf>& fns,
                                              const std::vector<int>& vars) {
  const int k = static_cast<int>(vars.size());
  std::vector<int> parent(static_cast<std::size_t>(k));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (find(i) == find(j)) continue;
      bool all = true;
      for (const Isf& f : fns) {
        if (!isf_is_symmetric(f, vars[i], vars[j], SymmetryKind::kNonequivalence)) {
          all = false;
          break;
        }
      }
      if (all) parent[find(i)] = find(j);
    }
  }

  std::vector<std::vector<int>> groups(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) groups[static_cast<std::size_t>(find(i))].push_back(vars[i]);
  std::erase_if(groups, [](const std::vector<int>& g) { return g.empty(); });
  return groups;
}

std::vector<std::vector<int>> symmetry_groups(Manager& m,
                                              const std::vector<Edge>& fns,
                                              const std::vector<int>& vars) {
  std::vector<Isf> isfs;
  isfs.reserve(fns.size());
  for (Edge f : fns) isfs.push_back(Isf::completely_specified(m.wrap(f)));
  return symmetry_groups(isfs, vars);
}

}  // namespace mfd
