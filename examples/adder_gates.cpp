// The paper's Figure 2 experiment as a standalone example: synthesize an
// n-bit adder into two-input gates and compare with the hand-designed
// conditional-sum adder [22] and a ripple-carry adder.
//
//   ./build/examples/adder_gates [n]   (default n = 8, must be a power of 2)
#include <cstdio>
#include <cstdlib>

#include "core/synthesizer.h"
#include "net/baselines.h"

int main(int argc, char** argv) {
  using namespace mfd;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  if (n <= 0 || (n & (n - 1)) != 0) {
    std::fprintf(stderr, "n must be a power of two\n");
    return 2;
  }

  bdd::Manager m;
  const circuits::Benchmark bench = circuits::adder(m, n);

  // n_LUT = 2: every emitted LUT is a two-input gate.
  Synthesizer synth(preset_mulop_dc(2));
  const SynthesisResult r = synth.run(bench);

  const net::LutNetwork csa = net::conditional_sum_adder(n);
  const net::LutNetwork rca = net::ripple_carry_adder(n);

  std::printf("%d-bit adder as two-input gate networks\n\n", n);
  std::printf("%-22s %8s %8s\n", "", "gates", "depth");
  std::printf("%-22s %8d %8d   (verified: %s)\n", "mulop-dc (this work)",
              r.network.count_gates(), r.network.depth(), r.verified ? "yes" : "NO");
  std::printf("%-22s %8d %8d\n", "conditional-sum [22]", csa.count_gates(), csa.depth());
  std::printf("%-22s %8d %8d\n", "ripple-carry", rca.count_gates(), rca.depth());
  std::printf("\npaper's data point (n = 8): 49 gates vs 90 for conditional sum.\n");
  std::printf("decomposition stats: %d steps, %d symmetrized pairs, depth %d\n",
              r.stats.decomposition_steps, r.stats.symmetrized_pairs,
              r.stats.max_depth);
  return r.verified ? 0 : 1;
}
