# Empty compiler generated dependencies file for ablation_dc_steps.
# This may be replaced when dependencies are built.
