#include "obs/internal.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace mfd::obs {
namespace {

void write_phase(JsonWriter& w, const PhaseNode& node) {
  w.begin_object();
  w.key("name").value(std::string_view(node.name));
  w.key("calls").value(node.calls);
  w.key("seconds").value(node.seconds);
  if (!node.children.empty()) {
    w.key("children").begin_array();
    for (const PhaseNode& c : node.children) write_phase(w, c);
    w.end_array();
  }
  w.end_object();
}

}  // namespace

std::string Report::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("phases");
  write_phase(w, phases);
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.end_object();
  w.end_object();
  return w.str();
}

Report collect() {
  Report r;
  if (!enabled()) return r;
  r.phases = detail::snapshot_phases();
  detail::snapshot_scalars(&r.counters, &r.gauges);
  return r;
}

void reset() {
  detail::reset_scalars();
  detail::reset_phases();
}

}  // namespace mfd::obs
