#include "decomp/boundset.h"

#include <algorithm>
#include <map>

#include "core/budget.h"
#include "core/faultinject.h"
#include "decomp/compat.h"
#include "obs/obs.h"
#include "util/coloring.h"

namespace mfd {
namespace {

/// Class count of one output's cofactor table using a quick ISF coloring
/// (dedupe identical vertices, DSATUR, exact only for tiny graphs).
int quick_class_count(const CofactorTable& table, std::uint64_t seed) {
  // Completely specified fast path: classes = distinct cofactors.
  bool complete = true;
  for (const Isf& e : table.entries)
    if (!e.is_completely_specified()) {
      complete = false;
      break;
    }
  if (complete) {
    std::vector<bdd::Edge> ids;
    ids.reserve(table.entries.size());
    for (const Isf& e : table.entries) ids.push_back(e.on().id());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return static_cast<int>(ids.size());
  }
  // Dedupe by (on, care) identity first.
  std::vector<std::pair<bdd::Edge, bdd::Edge>> keys;
  keys.reserve(table.entries.size());
  std::vector<int> rep;
  std::vector<int> rep_vertex;
  for (std::size_t v = 0; v < table.entries.size(); ++v) {
    const auto key = std::make_pair(table.entries[v].on().id(), table.entries[v].care().id());
    int id = -1;
    for (std::size_t i = 0; i < keys.size(); ++i)
      if (keys[i] == key) { id = static_cast<int>(i); break; }
    if (id == -1) {
      id = static_cast<int>(keys.size());
      keys.push_back(key);
      rep_vertex.push_back(static_cast<int>(v));
    }
    rep.push_back(id);
  }
  Graph g(static_cast<int>(keys.size()));
  for (int a = 0; a < g.num_vertices(); ++a)
    for (int b = a + 1; b < g.num_vertices(); ++b)
      if (!vertices_compatible(table.entries[static_cast<std::size_t>(rep_vertex[static_cast<std::size_t>(a)])],
                               table.entries[static_cast<std::size_t>(rep_vertex[static_cast<std::size_t>(b)])]))
        g.add_edge(a, b);
  ColoringOptions copts;
  copts.seed = seed;
  copts.restarts = 2;
  copts.exact_vertex_limit = 14;
  return color_graph(g, copts).num_colors;
}

bool better(const BoundSetChoice& a, const BoundSetChoice& b) {
  if (a.benefit != b.benefit) return a.benefit > b.benefit;
  if (a.sharing_gap != b.sharing_gap) return a.sharing_gap > b.sharing_gap;
  return a.sum_r < b.sum_r;
}

}  // namespace

BoundSetChoice evaluate_bound_set(const std::vector<Isf>& fns,
                                  const std::vector<std::vector<int>>& supports,
                                  const std::vector<int>& bound,
                                  std::uint64_t seed) {
  BoundSetChoice choice;
  choice.vars = bound;
  choice.benefit = 0;

  std::vector<CofactorTable> tables;
  std::vector<int> with_cut;  // outputs whose support meets the bound set
  for (std::size_t i = 0; i < fns.size(); ++i) {
    int cut = 0;
    for (int v : supports[i])
      if (std::find(bound.begin(), bound.end(), v) != bound.end()) ++cut;
    if (cut == 0) {
      choice.r_per_output.push_back(0);
      continue;
    }
    CofactorTable t = cofactor_table(fns[i], bound);
    const int k = quick_class_count(t, seed);
    const int r = code_length(k);
    choice.r_per_output.push_back(r);
    choice.benefit += cut - r;
    choice.sum_r += r;
    tables.push_back(std::move(t));
    with_cut.push_back(static_cast<int>(i));
  }

  if (tables.size() > 1) {
    // Sharing potential: joint class count vs sum of individual code
    // lengths. A cheap equality-based joint count (no coloring) suffices to
    // rank candidates.
    std::map<std::vector<std::pair<bdd::Edge, bdd::Edge>>, int> joint;
    for (std::size_t v = 0; v < tables.front().entries.size(); ++v) {
      std::vector<std::pair<bdd::Edge, bdd::Edge>> key;
      for (const CofactorTable& t : tables)
        key.emplace_back(t.entries[v].on().id(), t.entries[v].care().id());
      joint.emplace(std::move(key), 0);
    }
    choice.sharing_gap =
        static_cast<int>(choice.sum_r) - code_length(static_cast<int>(joint.size()));
  }
  return choice;
}

BoundSetChoice select_bound_set(const std::vector<Isf>& fns,
                                const std::vector<int>& order, int p,
                                const BoundSetOptions& opts) {
  const int n = static_cast<int>(order.size());
  std::vector<std::vector<int>> supports;
  supports.reserve(fns.size());
  for (const Isf& f : fns) supports.push_back(f.support());

  if (fault::armed()) fault::point("decomp.boundset");

  BoundSetChoice best;
  int evaluations = 0;
  // Candidate evaluation is the search's unit of cost; under an installed
  // governor an expired deadline stops the search at the best bound set found
  // so far (possibly none, which sends the caller to the fallback path).
  ResourceGovernor* gov = ResourceGovernor::current();
  auto consider = [&](const std::vector<int>& bound) {
    if (evaluations >= opts.max_evaluations) return;
    if (gov != nullptr && gov->deadline_expired()) {
      obs::add("boundset.deadline_stops");
      evaluations = opts.max_evaluations;  // also stops the exchange passes
      return;
    }
    ++evaluations;
    BoundSetChoice c = evaluate_bound_set(fns, supports, bound, opts.seed);
    if (best.vars.empty() || better(c, best)) best = std::move(c);
  };

  // Sliding windows over the sifted order.
  for (int start = 0; start + p <= n; ++start) {
    std::vector<int> bound(order.begin() + start, order.begin() + start + p);
    consider(bound);
  }

  // Local exchange refinement: swap one bound variable against one outside
  // variable, first-improvement, a few passes.
  for (int pass = 0; pass < opts.improvement_passes; ++pass) {
    bool improved = false;
    for (std::size_t bi = 0; bi < best.vars.size() && evaluations < opts.max_evaluations; ++bi) {
      for (int v : order) {
        if (std::find(best.vars.begin(), best.vars.end(), v) != best.vars.end())
          continue;
        std::vector<int> bound = best.vars;
        bound[bi] = v;
        std::sort(bound.begin(), bound.end());
        BoundSetChoice c = evaluate_bound_set(fns, supports, bound, opts.seed);
        ++evaluations;
        if (better(c, best)) {
          best = std::move(c);
          improved = true;
          break;
        }
        if (evaluations >= opts.max_evaluations) break;
      }
    }
    if (!improved) break;
  }
  obs::add("boundset.searches");
  obs::add("boundset.candidates_evaluated", static_cast<std::uint64_t>(evaluations));
  if (!best.vars.empty()) obs::add("boundset.found");
  return best;
}

}  // namespace mfd
