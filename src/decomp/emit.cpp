// Signal emission units of the decomposition driver (see driver.h for the
// file split): single-LUT extensions, direct BDD-mux mapping, the Shannon
// fallback, and the combined structural fallback the ladder floor uses.
#include <algorithm>
#include <unordered_map>

#include "cache/cache.h"
#include "decomp/driver.h"
#include "obs/obs.h"

namespace mfd::decomp {

int Ctx::emit_alpha(net::Lut lut) {
  if (!cache::config().alpha_pool)
    return net.add_lut(std::move(lut));
  auto key = std::make_pair(lut.inputs, lut.table);
  if (const auto it = alpha_pool.find(key); it != alpha_pool.end()) {
    ++stats.alpha_pool_hits;
    obs::add("cache.alpha_pool.hits");
    return it->second;
  }
  obs::add("cache.alpha_pool.misses");
  const int sig = net.add_lut(std::move(lut));
  constexpr std::size_t kAlphaPoolCap = 100000;
  if (alpha_pool.size() < kAlphaPoolCap)
    alpha_pool.emplace(std::move(key), sig);
  return sig;
}

std::vector<int> union_of_supports(const std::vector<Isf>& fns) {
  std::vector<int> active;
  for (const Isf& f : fns) {
    std::vector<int> s = f.support();
    std::vector<int> merged;
    std::set_union(active.begin(), active.end(), s.begin(), s.end(),
                   std::back_inserter(merged));
    active = std::move(merged);
  }
  return active;
}

int emit_small(Ctx& c, const bdd::Bdd& ext) {
  bdd::Manager& m = c.m;
  const bdd::Edge g = ext.id();
  const std::vector<int> supp = m.support(g);
  if (supp.empty()) return g == bdd::kTrue ? net::kConst1 : net::kConst0;

  net::Lut lut;
  lut.inputs.reserve(supp.size());
  for (int v : supp) lut.inputs.push_back(c.signal_of(v));
  lut.table.resize(std::size_t{1} << supp.size());
  std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);
  for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
    for (std::size_t j = 0; j < supp.size(); ++j)
      assignment[static_cast<std::size_t>(supp[j])] = (idx >> j) & 1;
    lut.table[idx] = m.eval(g, assignment);
  }
  return c.net.add_lut(std::move(lut));
}

int emit_bdd_muxes(Ctx& c, const Isf& f) {
  bdd::Manager& m = c.m;
  const bdd::Bdd ext = f.extension_small();
  const bdd::Edge root = ext.id();
  std::unordered_map<bdd::Edge, int> signal;
  signal.emplace(bdd::kFalse, net::kConst0);
  signal.emplace(bdd::kTrue, net::kConst1);

  auto rec = [&](auto&& self, bdd::Edge n) -> int {
    const auto it = signal.find(n);
    if (it != signal.end()) return it->second;
    const int lo = self(self, m.node_lo(n));
    const int hi = self(self, m.node_hi(n));
    const int sel = c.signal_of(static_cast<int>(m.node_var(n)));
    int out;
    if (c.opts.lut_inputs >= 3) {
      net::Lut mux;
      mux.inputs = {sel, hi, lo};
      mux.table.resize(8);
      for (std::size_t idx = 0; idx < 8; ++idx)
        mux.table[idx] = (idx & 1) ? ((idx >> 1) & 1) : ((idx >> 2) & 1);
      out = c.net.add_lut(std::move(mux));
    } else {
      const int t1 = c.net.add_lut({{sel, hi}, {false, false, false, true}});
      const int t0 = c.net.add_lut({{lo, sel}, {false, true, false, false}});
      out = c.net.add_lut({{t1, t0}, {false, true, true, true}});
    }
    signal.emplace(n, out);
    return out;
  };
  return rec(rec, root);
}

std::vector<int> shannon_step(Ctx& c, const std::vector<Isf>& fns,
                              const std::vector<int>& ids, int depth) {
  ++c.stats.shannon_fallbacks;
  obs::add("decomp.shannon_fallbacks");
  bdd::Manager& m = c.m;

  // Split on the variable occurring in the most supports.
  std::vector<int> active = union_of_supports(fns);
  int split = active.front();
  int best_count = -1;
  for (int v : active) {
    int count = 0;
    for (const Isf& f : fns) {
      const std::vector<int> s = f.support();
      if (std::binary_search(s.begin(), s.end(), v)) ++count;
    }
    if (count > best_count) {
      best_count = count;
      split = v;
    }
  }

  std::vector<Isf> halves;
  std::vector<int> half_ids;
  halves.reserve(fns.size() * 2);
  half_ids.reserve(fns.size() * 2);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    halves.push_back(fns[i].cofactor(split, false));
    halves.push_back(fns[i].cofactor(split, true));
    half_ids.push_back(ids[i]);
    half_ids.push_back(ids[i]);
  }
  obs::ScopedPhase recurse_phase("recurse");
  const std::vector<int> sub = synth(c, std::move(halves), half_ids, depth + 1);

  const int sel = c.signal_of(split);
  std::vector<int> result(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const int s0 = sub[2 * i], s1 = sub[2 * i + 1];
    c.record_level(ids[i]);
    if (c.opts.lut_inputs >= 3) {
      // One 3-input mux LUT: inputs (sel, d1, d0).
      net::Lut mux;
      mux.inputs = {sel, s1, s0};
      mux.table.resize(8);
      for (std::size_t idx = 0; idx < 8; ++idx)
        mux.table[idx] = (idx & 1) ? ((idx >> 1) & 1) : ((idx >> 2) & 1);
      result[i] = c.net.add_lut(std::move(mux));
    } else {
      // Three 2-input gates: (sel & d1) | (d0 & !sel).
      const int t1 = c.net.add_lut({{sel, s1}, {false, false, false, true}});
      const int t0 = c.net.add_lut({{s0, sel}, {false, true, false, false}});
      result[i] = c.net.add_lut({{t1, t0}, {false, true, true, true}});
    }
  }
  m.garbage_collect();
  return result;
}

std::vector<int> fallback_emit(Ctx& c, const std::vector<Isf>& work,
                               const std::vector<int>& ids, int depth) {
  std::vector<int> sigs(work.size(), net::kConst0);
  std::vector<int> small_idx;
  std::vector<Isf> small_fns;
  std::vector<int> small_ids;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (static_cast<int>(work[i].support().size()) <= c.opts.shannon_support_limit) {
      small_idx.push_back(static_cast<int>(i));
      small_fns.push_back(work[i]);
      small_ids.push_back(ids[i]);
    } else {
      sigs[i] = emit_bdd_muxes(c, work[i]);
      c.record_level(ids[i]);
      ++c.stats.bdd_mux_fallbacks;
      obs::add("decomp.bdd_mux_fallbacks");
    }
  }
  if (!small_fns.empty()) {
    const std::vector<int> sub = shannon_step(c, small_fns, small_ids, depth);
    for (std::size_t i = 0; i < small_idx.size(); ++i)
      sigs[static_cast<std::size_t>(small_idx[i])] = sub[i];
  }
  return sigs;
}

}  // namespace mfd::decomp
