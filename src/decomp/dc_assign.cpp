#include "decomp/dc_assign.h"

#include <algorithm>
#include <map>

#include "core/faultinject.h"
#include "obs/obs.h"
#include "util/coloring.h"

namespace mfd {
namespace {

/// Vertices with identical cofactors across all listed outputs are
/// interchangeable; collapsing them first keeps the coloring graphs small
/// (frequently within the exact-coloring limit).
struct Reduced {
  std::vector<int> rep_of_vertex;       // vertex -> dense rep id
  std::vector<int> vertex_of_rep;       // rep id -> one representative vertex
};

Reduced reduce_identical(const std::vector<const CofactorTable*>& tables) {
  Reduced r;
  std::map<std::vector<std::pair<bdd::Edge, bdd::Edge>>, int> ids;
  const std::size_t n = tables.front()->entries.size();
  r.rep_of_vertex.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<std::pair<bdd::Edge, bdd::Edge>> key;
    key.reserve(tables.size());
    for (const CofactorTable* t : tables)
      key.emplace_back(t->entries[v].on().id(), t->entries[v].care().id());
    const auto [it, inserted] = ids.emplace(key, static_cast<int>(ids.size()));
    r.rep_of_vertex[v] = it->second;
    if (inserted) r.vertex_of_rep.push_back(static_cast<int>(v));
  }
  return r;
}

/// Colors the incompatibility structure of the reduced vertices;
/// `incompatible(a, b)` is queried on representative vertices.
template <typename Incompat>
std::vector<int> color_classes(const Reduced& red, Incompat&& incompatible,
                               std::uint64_t seed, int* out_num_classes) {
  const int nr = static_cast<int>(red.vertex_of_rep.size());
  Graph g(nr);
  for (int a = 0; a < nr; ++a)
    for (int b = a + 1; b < nr; ++b)
      if (incompatible(red.vertex_of_rep[static_cast<std::size_t>(a)],
                       red.vertex_of_rep[static_cast<std::size_t>(b)]))
        g.add_edge(a, b);
  ColoringOptions opts;
  opts.seed = seed;
  const Coloring coloring = color_graph(g, opts);
  *out_num_classes = coloring.num_colors;
  std::vector<int> result(red.rep_of_vertex.size());
  for (std::size_t v = 0; v < result.size(); ++v)
    result[v] = coloring.color[static_cast<std::size_t>(red.rep_of_vertex[v])];
  return result;
}

/// Applies a class partition to one table: every vertex receives the merge
/// (information union) of its whole class.
void merge_classes(CofactorTable& table, const std::vector<int>& klass, int k) {
  std::vector<Isf> merged(static_cast<std::size_t>(k));
  for (std::size_t v = 0; v < table.entries.size(); ++v) {
    Isf& slot = merged[static_cast<std::size_t>(klass[v])];
    slot = slot.valid() ? slot.merge(table.entries[v]) : table.entries[v];
  }
  for (std::size_t v = 0; v < table.entries.size(); ++v)
    table.entries[v] = merged[static_cast<std::size_t>(klass[v])];
}

}  // namespace

int num_classes(const std::vector<int>& partition) {
  int k = 0;
  for (int c : partition) k = std::max(k, c + 1);
  return k;
}

int assign_joint(std::vector<CofactorTable>& tables, std::uint64_t seed) {
  if (fault::armed()) fault::point("decomp.dc_assign");
  std::vector<const CofactorTable*> ptrs;
  ptrs.reserve(tables.size());
  for (const CofactorTable& t : tables) ptrs.push_back(&t);
  const Reduced red = reduce_identical(ptrs);

  auto incompatible = [&](int a, int b) {
    for (const CofactorTable& t : tables)
      if (!vertices_compatible(t.entries[static_cast<std::size_t>(a)],
                               t.entries[static_cast<std::size_t>(b)]))
        return true;
    return false;
  };
  int k = 0;
  const std::vector<int> klass = color_classes(red, incompatible, seed, &k);
  for (CofactorTable& t : tables) merge_classes(t, klass, k);
  // ncc delta of the paper's step 2: distinct joint cofactor vectors before
  // the merge vs joint classes after (the sharing lower bound).
  obs::add("decomp.share.calls");
  obs::add("decomp.share.ncc_before",
           static_cast<std::uint64_t>(red.vertex_of_rep.size()));
  obs::add("decomp.share.ncc_after", static_cast<std::uint64_t>(k));
  return k;
}

std::vector<std::vector<int>> assign_per_output(std::vector<CofactorTable>& tables,
                                                std::uint64_t seed) {
  if (fault::armed()) fault::point("decomp.dc_assign");
  std::vector<std::vector<int>> partitions;
  partitions.reserve(tables.size());
  for (CofactorTable& t : tables) {
    const Reduced red = reduce_identical({&t});
    auto incompatible = [&](int a, int b) {
      return !vertices_compatible(t.entries[static_cast<std::size_t>(a)],
                                  t.entries[static_cast<std::size_t>(b)]);
    };
    int k = 0;
    const std::vector<int> klass = color_classes(red, incompatible, seed, &k);
    merge_classes(t, klass, k);
    // Merging may have made distinct color classes identical; the final
    // partition is the equality partition, which is at least as coarse.
    partitions.push_back(partition_by_equality(t));
    // ncc delta of the paper's step 3, per output: distinct cofactors
    // entering the merge vs classes of the final partition.
    obs::add("decomp.per_output.calls");
    obs::add("decomp.per_output.ncc_before",
             static_cast<std::uint64_t>(red.vertex_of_rep.size()));
    obs::add("decomp.per_output.ncc_after",
             static_cast<std::uint64_t>(num_classes(partitions.back())));
  }
  return partitions;
}

}  // namespace mfd
