// Small undirected graph used for the incompatibility graphs of the
// decomposition core (vertices = bound-set vertices or compatible classes)
// and for the LUT-merge graph of the CLB mapper.
#pragma once

#include <cstdint>
#include <vector>

namespace mfd {

/// Undirected simple graph over vertices 0..n-1 with O(1) adjacency queries.
///
/// Sized for the library's workloads: incompatibility graphs have at most
/// 2^p <= 256 vertices, merge graphs at most a few thousand LUTs.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int n);

  int num_vertices() const { return n_; }
  int num_edges() const { return m_; }

  /// Adds the undirected edge {u, v}; ignores self-loops and duplicates.
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const { return adj_matrix_[idx(u, v)]; }

  const std::vector<int>& neighbors(int v) const { return adj_[v]; }

  int degree(int v) const { return static_cast<int>(adj_[v].size()); }

  /// Complement graph (no self-loops).
  Graph complement() const;

 private:
  std::size_t idx(int u, int v) const {
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v);
  }

  int n_ = 0;
  int m_ = 0;
  std::vector<bool> adj_matrix_;
  std::vector<std::vector<int>> adj_;
};

}  // namespace mfd
