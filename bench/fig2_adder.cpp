// Figure 2 of the paper: an 8-bit adder synthesized into two-input gates.
//
// The paper's tool automatically produces a conditional-sum-like structure
// with 49 two-input gates, vs 90 for the hand-designed conditional-sum
// adder [22]. We reproduce the experiment by running the full flow with
// n_LUT = 2 on adders of several widths and comparing gate counts and depth
// against structural conditional-sum and ripple-carry baselines.
//
// Shape to reproduce: synthesized gates < conditional-sum gates at n = 8,
// with comparable (logarithmic-ish) depth, and the advantage persists
// across widths.
#include "bench_common.h"
#include "net/baselines.h"

namespace {

struct AdderRow {
  int n = 0;
  int synth_gates = 0, synth_depth = 0;
  int csa_gates = 0, csa_depth = 0;
  int rca_gates = 0, rca_depth = 0;
  bool verified = false;
};

std::vector<AdderRow> g_rows;

void run_adder(benchmark::State& state, int n) {
  for (auto _ : state) {
    AdderRow row;
    row.n = n;

    mfd::bdd::Manager m;
    const auto bench = mfd::circuits::adder(m, n);
    mfd::Synthesizer synth(mfd::preset_mulop_dc(2));
    const auto r = synth.run(bench);
    row.synth_gates = r.network.count_gates();
    row.synth_depth = r.network.depth();
    row.verified = r.verified;

    const auto csa = mfd::net::conditional_sum_adder(n);
    row.csa_gates = csa.count_gates();
    row.csa_depth = csa.depth();
    const auto rca = mfd::net::ripple_carry_adder(n);
    row.rca_gates = rca.count_gates();
    row.rca_depth = rca.depth();

    g_rows.push_back(row);
    state.counters["synth_gates"] = row.synth_gates;
    state.counters["csa_gates"] = row.csa_gates;
  }
}

void print_table() {
  std::printf("\nFigure 2: n-bit adders as two-input gate networks (n_LUT = 2).\n");
  std::printf("paper's data point: 49 gates (mulop-dc) vs 90 (conditional sum) at n = 8.\n\n");
  std::printf("%3s | %12s %6s | %10s %6s | %10s %6s | %s\n", "n", "mulop-dc",
               "depth", "cond-sum", "depth", "ripple", "depth", "verified");
  mfd::bench::print_rule(78);
  for (const AdderRow& row : g_rows)
    std::printf("%3d | %12d %6d | %10d %6d | %10d %6d | %s\n", row.n,
                 row.synth_gates, row.synth_depth, row.csa_gates, row.csa_depth,
                 row.rca_gates, row.rca_depth, row.verified ? "yes" : "NO");
  std::printf("\nshape check: mulop-dc gate count < conditional-sum gate count,\n");
  std::printf("depth well below ripple's linear depth.\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const int n : {2, 4, 8, 16})
    benchmark::RegisterBenchmark(("fig2/add" + std::to_string(n)).c_str(),
                                 [n](benchmark::State& s) { run_adder(s, n); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
