// The recursive multi-output decomposition driver: the degradation-ladder
// wrapper (`synth`), the per-level orchestrator (`synth_attempt`), and the
// public `decompose()` entry. The emission units live in emit.cpp and the
// per-level decomposition step in step.cpp (see driver.h for the split).
#include "decomp/decompose.h"

#include <algorithm>
#include <cassert>
#include <new>
#include <optional>
#include <string>

#include "decomp/driver.h"
#include "obs/obs.h"

namespace mfd {
namespace decomp {
namespace {

/// Greedy clustering of outputs by support overlap: an output joins the
/// cluster it overlaps most, if the overlap covers at least half of its own
/// support; otherwise it seeds a new cluster. Returns index sets.
std::vector<std::vector<int>> cluster_by_support(
    const std::vector<std::vector<int>>& supports) {
  std::vector<int> order(supports.size());
  for (std::size_t i = 0; i < supports.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return supports[static_cast<std::size_t>(a)].size() >
           supports[static_cast<std::size_t>(b)].size();
  });

  std::vector<std::vector<int>> clusters;        // output indices
  std::vector<std::vector<int>> unions;          // sorted var unions
  for (int i : order) {
    const std::vector<int>& supp = supports[static_cast<std::size_t>(i)];
    int best = -1;
    std::size_t best_overlap = 0;
    for (std::size_t cl = 0; cl < clusters.size(); ++cl) {
      std::vector<int> inter;
      std::set_intersection(supp.begin(), supp.end(), unions[cl].begin(),
                            unions[cl].end(), std::back_inserter(inter));
      if (inter.size() > best_overlap) {
        best_overlap = inter.size();
        best = static_cast<int>(cl);
      }
    }
    if (best != -1 && best_overlap * 2 >= supp.size()) {
      clusters[static_cast<std::size_t>(best)].push_back(i);
      std::vector<int> merged;
      std::set_union(unions[static_cast<std::size_t>(best)].begin(),
                     unions[static_cast<std::size_t>(best)].end(), supp.begin(),
                     supp.end(), std::back_inserter(merged));
      unions[static_cast<std::size_t>(best)] = std::move(merged);
    } else {
      clusters.push_back({i});
      unions.push_back(supp);
    }
  }
  return clusters;
}

/// One recursion level: emit outputs whose extension fits a single LUT,
/// bottom out on the ladder floor, split mostly-disjoint output groups, and
/// hand each remaining cluster to the decomposition step.
std::vector<int> synth_attempt(Ctx& c, const std::vector<Isf>& input,
                               const std::vector<int>& ids, int depth) {
  c.stats.max_depth = std::max(c.stats.max_depth, depth);
  obs::add("decomp.levels");
  obs::gauge_max("decomp.max_depth", depth);
  bdd::Manager& m = c.m;
  const int k = c.opts.lut_inputs;
  c.gov->check_depth(depth, "decomp.synth");
  c.gov->check_deadline("decomp.synth");

  // The ladder driver retries with the same input, so leave it intact.
  std::vector<Isf> fns = input;

  // mulopII baseline: every don't care becomes 0 before anything else.
  if (!c.opts.exploit_dc)
    for (Isf& f : fns) f = Isf::completely_specified(f.extension_zero());

  std::vector<int> result(fns.size(), net::kConst0);
  std::vector<int> big;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    // Don't cares may admit an extension that fits a single LUT even when
    // the raw on-set does not (Coudert-Madre restrict).
    const bdd::Bdd ext = fns[i].extension_small();
    if (static_cast<int>(m.support(ext.id()).size()) <= k) {
      result[i] = emit_small(c, ext);
      c.record_level(ids[i]);
    } else {
      big.push_back(static_cast<int>(i));
    }
  }
  if (big.empty()) return result;

  std::vector<Isf> work;
  std::vector<int> work_ids;
  work.reserve(big.size());
  work_ids.reserve(big.size());
  for (int i : big) {
    work.push_back(fns[i]);
    work_ids.push_back(ids[static_cast<std::size_t>(i)]);
  }

  // ---- ladder floor: structural emission only --------------------------
  // At the bottom rung the bound-set machinery is bypassed entirely; Shannon
  // splits and direct BDD mux mapping are linear in the BDD sizes, so this
  // path terminates wherever the full flow would diverge.
  if (c.gov->degrade_level() >= kDegradeStructural) {
    const std::vector<int> sigs = fallback_emit(c, work, work_ids, depth);
    for (std::size_t i = 0; i < big.size(); ++i) result[big[i]] = sigs[i];
    return result;
  }

  // ---- cluster outputs by support overlap ------------------------------
  // One bound set serves one cluster; outputs with mostly disjoint supports
  // gain nothing from a common bound set and would only pay the cost of the
  // joint analysis. Decompose such groups independently.
  if (work.size() > 1) {
    std::vector<std::vector<int>> supports;
    supports.reserve(work.size());
    for (const Isf& f : work) supports.push_back(f.support());
    std::vector<std::vector<int>> clusters = cluster_by_support(supports);
    if (clusters.size() > 1) {
      for (const std::vector<int>& cluster : clusters) {
        std::vector<Isf> group;
        std::vector<int> group_ids;
        group.reserve(cluster.size());
        group_ids.reserve(cluster.size());
        for (int i : cluster) {
          group.push_back(work[static_cast<std::size_t>(i)]);
          group_ids.push_back(work_ids[static_cast<std::size_t>(i)]);
        }
        const std::vector<int> sigs = synth(c, std::move(group), group_ids, depth);
        for (std::size_t i = 0; i < cluster.size(); ++i)
          result[big[static_cast<std::size_t>(cluster[i])]] = sigs[i];
      }
      return result;
    }
  }

  const std::vector<int> sigs =
      decomposition_step(c, std::move(work), work_ids, depth);
  for (std::size_t i = 0; i < big.size(); ++i) result[big[i]] = sigs[i];
  return result;
}

}  // namespace

std::vector<int> synth(Ctx& c, std::vector<Isf> fns, const std::vector<int>& ids,
                       int depth) {
  ResourceGovernor& gov = *c.gov;
  for (;;) {
    const int level = gov.degrade_level();
    try {
      if (level >= kDegradeStructural) {
        ResourceGovernor::SuspendScope suspend(gov);
        return synth_attempt(c, fns, ids, depth);
      }
      return synth_attempt(c, fns, ids, depth);
    } catch (const BudgetExceeded& e) {
      if (level >= kDegradeStructural) throw;  // even the suspended floor failed
      gov.raise_degrade(level + 1, "decomp.synth@d=" + std::to_string(depth),
                        e.what());
      obs::add("decomp.ladder_retries");
    } catch (const std::bad_alloc&) {
      if (level >= kDegradeStructural) throw;
      gov.raise_degrade(level + 1, "decomp.synth@d=" + std::to_string(depth),
                        "allocation failure (bad_alloc)");
      obs::add("decomp.ladder_retries");
    }
    // LUTs emitted by the aborted attempt are unreferenced (outputs attach
    // only at the end of decompose) and swept by net.simplify(); BDD
    // intermediates are dead roots reclaimed by the next garbage collection.
  }
}

}  // namespace decomp

namespace {

/// RAII binding of a governor to a manager's mk hot path (restores the
/// previous binding, so nested flows over the same manager compose).
struct ManagerGovernorBinding {
  ManagerGovernorBinding(bdd::Manager& m, ResourceGovernor* g)
      : m_(m), prev_(m.set_governor(g)) {}
  ~ManagerGovernorBinding() { m_.set_governor(prev_); }
  ManagerGovernorBinding(const ManagerGovernorBinding&) = delete;
  ManagerGovernorBinding& operator=(const ManagerGovernorBinding&) = delete;

 private:
  bdd::Manager& m_;
  ResourceGovernor* prev_;
};

}  // namespace

net::LutNetwork decompose(std::vector<Isf> fns, const std::vector<int>& pi_vars,
                          const DecomposeOptions& opts, DecomposeStats* stats) {
  assert(!fns.empty());
  obs::ScopedPhase phase("decompose");
  obs::add("decomp.runs");
  bdd::Manager& m = *fns.front().manager();

  // The ladder driver needs a governor even when the caller did not install
  // one (standalone decompose in tests/benches): an unlimited local governor
  // never trips a budget but still carries the degradation state, so
  // injected faults recover through the same path.
  ResourceGovernor* gov = ResourceGovernor::current();
  std::optional<ResourceGovernor> local_gov;
  std::optional<ResourceGovernor::Scope> local_scope;
  if (gov == nullptr) {
    local_gov.emplace();
    local_scope.emplace(*local_gov);
    gov = &*local_gov;
  }
  ManagerGovernorBinding bind_mgr(m, gov);

  const std::size_t num_outputs = fns.size();
  decomp::Ctx c{m,  opts, gov, net::LutNetwork(static_cast<int>(pi_vars.size())),
                {}, {},   {},  {}};
  c.var_signal.assign(static_cast<std::size_t>(m.num_vars()), decomp::kNoSignal);
  c.out_level.assign(num_outputs, kDegradeFull);
  for (std::size_t i = 0; i < pi_vars.size(); ++i)
    c.bind(pi_vars[i], static_cast<int>(i));

  std::vector<int> ids(num_outputs);
  for (std::size_t i = 0; i < num_outputs; ++i) ids[i] = static_cast<int>(i);

  const std::vector<int> sigs = decomp::synth(c, std::move(fns), ids, 0);
  for (int s : sigs) c.net.add_output(s);
  // simplify() also sweeps any LUTs stranded by ladder-aborted attempts
  // (outputs only attach here, so such LUTs are dead by construction).
  c.net.simplify();
  c.net.collapse(opts.lut_inputs);
  c.stats.output_degrade_level = c.out_level;
  gov->set_per_output_levels(c.out_level);
  if (stats) *stats = c.stats;
  return std::move(c.net);
}

}  // namespace mfd
