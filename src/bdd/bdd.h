// From-scratch ROBDD package (the CUDD substitute of this reproduction).
//
// Design notes
// ------------
// * Nodes live in a single arena (`std::vector<Node>`) addressed by 32-bit
//   ids; ids 0/1 are the terminal constants. No complement edges: the
//   decomposition algorithms gain nothing from them and plain edges keep the
//   reduction rules and the reordering swap simple to reason about.
// * One unique subtable per *variable* (not per level); dynamic reordering
//   rewrites nodes in place, so parents never need forwarding pointers.
// * Reference counts include both external references (held via the RAII
//   `Bdd` handle) and parent edges. Dereferencing only marks nodes dead;
//   `garbage_collect()` reclaims them (and clears the computed table, since
//   ids may be recycled). GC never runs inside a recursive operation, so
//   operation intermediates with zero external references are safe.
// * The computed table is a fixed-size, lossy, direct-mapped cache keyed by
//   (op, f, g, h). In-place reordering preserves node identity==function, so
//   the cache stays valid across swaps and is only cleared by GC.
//
// The public surface is the `Bdd` value type; `NodeId`-level functions are
// exposed for the algorithmic core (decomposition enumerates cofactors in
// tight loops and manages references in bulk).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mfd::bdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;
inline constexpr NodeId kInvalid = 0xFFFFFFFFu;
inline constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;

class Manager;

/// RAII handle to a BDD function: keeps the root referenced for its lifetime.
class Bdd {
 public:
  Bdd() = default;
  Bdd(Manager* mgr, NodeId id);  // takes one reference on id
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool valid() const { return mgr_ != nullptr; }
  Manager* manager() const { return mgr_; }
  NodeId id() const { return id_; }

  bool is_false() const { return id_ == kFalse; }
  bool is_true() const { return id_ == kTrue; }
  bool is_constant() const { return id_ <= kTrue; }

  // Structural equality is functional equality (canonicity).
  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.id_ == b.id_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }
  Bdd& operator^=(const Bdd& o) { return *this = *this ^ o; }

  /// f & !o  (set difference of on-sets).
  Bdd diff(const Bdd& o) const { return *this & !o; }
  /// XNOR.
  Bdd iff(const Bdd& o) const { return !(*this ^ o); }
  /// Implication !f | o.
  Bdd implies(const Bdd& o) const { return (!*this) | o; }

  /// Cofactor with respect to a single variable.
  Bdd cofactor(int var, bool value) const;
  /// Number of BDD nodes reachable from this root (including terminals).
  std::size_t size() const;

 private:
  void release();

  Manager* mgr_ = nullptr;
  NodeId id_ = kFalse;
};

/// Statistics snapshot of a manager (for tests, logging, benchmarks).
struct ManagerStats {
  std::size_t live_nodes = 0;
  std::size_t dead_nodes = 0;
  std::size_t peak_nodes = 0;
  std::uint64_t unique_hits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t reorder_swaps = 0;
};

class Manager {
 public:
  /// Creates a manager with `num_vars` variables x0..x(n-1), initial order
  /// x0 < x1 < ... (level == var index).
  explicit Manager(int num_vars = 0);
  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- variables and order -------------------------------------------
  int num_vars() const { return static_cast<int>(var_to_level_.size()); }
  /// Appends a fresh variable at the bottom of the order; returns its index.
  int add_var();
  int level_of_var(int var) const { return var_to_level_[var]; }
  int var_at_level(int level) const { return level_to_var_[level]; }
  /// Current order as a list of variables, top level first.
  std::vector<int> current_order() const { return level_to_var_; }

  // ---- handles ---------------------------------------------------------
  Bdd bdd_true() { return Bdd(this, kTrue); }
  Bdd bdd_false() { return Bdd(this, kFalse); }
  Bdd constant(bool value) { return Bdd(this, value ? kTrue : kFalse); }
  /// The projection function x_var.
  Bdd var(int v);
  /// x_var or its complement.
  Bdd literal(int v, bool positive);
  /// Wraps a node id into a handle (adds a reference).
  Bdd wrap(NodeId id) { return Bdd(this, id); }

  // ---- raw node access -------------------------------------------------
  std::uint32_t node_var(NodeId n) const { return nodes_[n].var; }
  NodeId node_lo(NodeId n) const { return nodes_[n].lo; }
  NodeId node_hi(NodeId n) const { return nodes_[n].hi; }
  bool is_terminal(NodeId n) const { return n <= kTrue; }
  int node_level(NodeId n) const {
    return is_terminal(n) ? num_vars() : var_to_level_[nodes_[n].var];
  }

  /// Find-or-create the reduced node (var, lo, hi). Returns `lo` if lo==hi.
  NodeId mk(int var, NodeId lo, NodeId hi);

  void ref(NodeId n);
  void deref(NodeId n);

  // ---- core operations (NodeId level; results returned unreferenced) ----
  NodeId ite(NodeId f, NodeId g, NodeId h);
  NodeId apply_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  NodeId apply_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  NodeId apply_xor(NodeId f, NodeId g);
  NodeId apply_not(NodeId f) { return ite(f, kFalse, kTrue); }
  NodeId cofactor(NodeId f, int var, bool value);
  /// Simultaneous cofactor by a partial assignment (var -> value).
  NodeId cofactor_cube(NodeId f, const std::vector<std::pair<int, bool>>& a);
  /// Existential quantification over the given variables.
  NodeId exists(NodeId f, const std::vector<int>& vars);
  NodeId forall(NodeId f, const std::vector<int>& vars);
  /// Substitute function g for variable var in f.
  NodeId compose(NodeId f, int var, NodeId g);
  /// Coudert-Madre generalized cofactor ("restrict"): returns a function r
  /// with f & care <= r <= f | !care that tends to have a small BDD — the
  /// classic way to spend don't cares (!care) on representation size.
  /// `care` must not be constant false.
  NodeId restrict_to(NodeId f, NodeId care);
  /// Exchange two variables in f (functional swap, order unchanged).
  NodeId swap_vars(NodeId f, int va, int vb);
  /// Rename variables: f(x_perm[0], x_perm[1], ...); perm[i] = new var for old var i.
  NodeId permute(NodeId f, const std::vector<int>& perm);

  // ---- queries -----------------------------------------------------------
  bool eval(NodeId f, const std::vector<bool>& assignment) const;
  /// Variables f genuinely depends on, ascending by index.
  std::vector<int> support(NodeId f) const;
  /// Number of satisfying assignments over `nv` variables.
  double sat_count(NodeId f, int nv) const;
  /// Any satisfying assignment (over all manager variables); f must not be kFalse.
  std::vector<bool> pick_one(NodeId f) const;
  std::size_t dag_size(NodeId f) const;
  /// DAG size of a set of roots counted once (shared nodes not double counted).
  std::size_t dag_size(const std::vector<NodeId>& roots) const;

  // ---- memory ------------------------------------------------------------
  void garbage_collect();
  std::size_t live_node_count() const { return live_nodes_; }
  const ManagerStats& stats() const { return stats_; }
  /// Total nodes currently held by the unique subtables (live + dead).
  std::size_t unique_table_size() const;
  /// Publishes this manager's lifetime stats (live/peak nodes, unique-table
  /// size, GC runs, computed-cache hit rate, reorder swaps) as observability
  /// gauges under `<prefix>.*` — the flow calls this at report flush points
  /// so the counters in ManagerStats finally surface (see docs/OBSERVABILITY.md).
  void publish_stats(const char* prefix = "bdd") const;

  // ---- reordering (reorder.cpp) -------------------------------------------
  /// Swaps the variables at levels `level` and `level+1` in place.
  void swap_adjacent_levels(int level);
  /// Reorders to the exact order given (vars listed top level first).
  void set_order(const std::vector<int>& order);
  /// Rudell-style sifting over all variables; returns live node count after.
  std::size_t sift(double max_growth = 2.0);
  /// Sifting that keeps each listed group of variables adjacent (symmetric
  /// sifting in the sense of [12,15]: groups move as blocks). Variables not
  /// mentioned form singleton groups.
  std::size_t sift_symmetric(const std::vector<std::vector<int>>& groups,
                             double max_growth = 2.0);

  // ---- transfer / io (io.cpp) ---------------------------------------------
  /// Copies f from another manager into this one (matching variable indices,
  /// which must all exist here).
  NodeId transfer_from(const Manager& src, NodeId f);
  /// Graphviz dot dump of the DAG rooted at the given functions.
  std::string to_dot(const std::vector<NodeId>& roots,
                     const std::vector<std::string>& names = {}) const;

 private:
  friend class Bdd;

  struct Node {
    std::uint32_t var;
    NodeId lo;
    NodeId hi;
    NodeId next;        // unique-table chain
    std::uint32_t ref;  // parents + external handles; saturates at max
  };

  struct Subtable {
    std::vector<NodeId> buckets;
    std::size_t count = 0;
  };

  // Cache entry; op tags below.
  struct CacheEntry {
    std::uint64_t key = ~0ULL;  // packed (op, f)
    std::uint64_t key2 = 0;     // packed (g, h)
    NodeId result = kInvalid;
  };

  enum Op : std::uint32_t {
    kOpIte = 1,
    kOpXor,
    kOpCofactor,
    kOpExists,
    kOpForall,
    kOpCompose,
    kOpPermute,
    kOpRestrict,
  };

  NodeId allocate_node(std::uint32_t var, NodeId lo, NodeId hi);
  Subtable& table_of(std::uint32_t var) { return subtables_[var]; }
  void table_insert(Subtable& t, NodeId n);
  void table_remove(Subtable& t, NodeId n);
  void maybe_resize(Subtable& t);
  static std::size_t hash_triple(std::uint32_t var, NodeId lo, NodeId hi);

  NodeId cache_lookup(std::uint32_t op, NodeId f, NodeId g, NodeId h);
  void cache_insert(std::uint32_t op, NodeId f, NodeId g, NodeId h, NodeId r);

  NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  NodeId xor_rec(NodeId f, NodeId g);
  NodeId cofactor_rec(NodeId f, int var, bool value);
  NodeId quant_var_rec(NodeId f, int var, bool existential);
  NodeId compose_rec(NodeId f, int var, NodeId g);
  NodeId restrict_rec(NodeId f, NodeId care);
  NodeId permute_rec(NodeId f, const std::vector<int>& perm,
                     std::unordered_map<NodeId, NodeId>& memo);

  // Reordering helpers (reorder.cpp).
  std::size_t block_width(const std::vector<int>& group) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> free_list_;
  std::vector<Subtable> subtables_;  // indexed by var
  std::vector<int> var_to_level_;
  std::vector<int> level_to_var_;
  std::vector<CacheEntry> cache_;
  std::size_t live_nodes_ = 0;
  std::size_t dead_nodes_ = 0;
  bool in_reorder_ = false;
  ManagerStats stats_;
};

}  // namespace mfd::bdd
