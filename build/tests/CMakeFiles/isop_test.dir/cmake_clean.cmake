file(REMOVE_RECURSE
  "CMakeFiles/isop_test.dir/isop_test.cpp.o"
  "CMakeFiles/isop_test.dir/isop_test.cpp.o.d"
  "isop_test"
  "isop_test.pdb"
  "isop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
