// Table 1 of the paper: XC3000 CLB counts without / with don't-care
// exploitation (mulopII vs mulop-dc), n_LUT = 5, greedy (first-fit) LUT->CLB
// merge for both flows.
//
// The paper reports CLB reductions of up to 35% (alu2) and > 10% overall;
// the absolute counts here are over our benchmark stand-ins (see DESIGN.md),
// so the comparison of interest is the *ratio* per row and in total.
#include <map>

#include "bench_common.h"

namespace {

using mfd::bench::FlowRun;
using mfd::bench::run_flow;

std::map<std::string, std::pair<FlowRun, FlowRun>> g_rows;

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const FlowRun base = run_flow(name, mfd::preset_mulopII(5), "mulopII");
    const FlowRun dc = run_flow(name, mfd::preset_mulop_dc(5), "mulop-dc");
    g_rows[name] = {base, dc};
    state.counters["clb_mulopII"] = base.clb_greedy;
    state.counters["clb_mulop_dc"] = dc.clb_greedy;
  }
}

void print_table() {
  std::printf("\nTable 1: CLB counts for the XC3000 device (n_LUT = 5),\n");
  std::printf("without (mulopII: all DCs := 0) and with (mulop-dc) the 3-step\n");
  std::printf("don't-care assignment; first-fit CLB merge in both flows.\n\n");
  std::printf("%-8s %4s %4s | %9s %9s | %7s\n", "circuit", "in", "out", "mulopII",
               "mulop-dc", "ratio");
  mfd::bench::print_rule(56);
  long total_base = 0, total_dc = 0;
  for (const auto& [name, rows] : g_rows) {
    const auto& [base, dc] = rows;
    total_base += base.clb_greedy;
    total_dc += dc.clb_greedy;
    std::printf("%-8s %4d %4d | %9d %9d | %6.2f%%\n", name.c_str(), base.inputs,
                 base.outputs, base.clb_greedy, dc.clb_greedy,
                 100.0 * dc.clb_greedy / std::max(1, base.clb_greedy));
  }
  mfd::bench::print_rule(56);
  std::printf("%-8s %9s | %9ld %9ld | %6.2f%%\n", "total", "", total_base, total_dc,
               100.0 * static_cast<double>(total_dc) / static_cast<double>(std::max(1L, total_base)));
  std::printf("\npaper's headline: mulop-dc <= mulopII overall, >10%% total\n");
  std::printf("reduction, largest gains on larger circuits (DCs only arise\n");
  std::printf("during recursion for these completely specified functions).\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : mfd::circuits::table_rows())
    benchmark::RegisterBenchmark(("table1/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  // Register the whole sweep plan up front so a supervised run with
  // --sweep-jobs > 1 can overlap independent rows (no-op otherwise).
  for (const std::string& name : mfd::circuits::table_rows()) {
    mfd::bench::plan_flow(name, mfd::preset_mulopII(5), "mulopII");
    mfd::bench::plan_flow(name, mfd::preset_mulop_dc(5), "mulop-dc");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
