#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/internal.h"
#include "obs/obs.h"

namespace mfd::obs {
namespace {

using Clock = std::chrono::steady_clock;

struct OpenFrame {
  PhaseNode* node;
  Clock::time_point start;
  bool timed = true;  // placement-only frames attribute no time on close
};

// Per-thread phase tree. Owned jointly by the thread (for lock-free-ish
// access patterns in the scope hot path — the registry mutex is only taken
// to serialize against snapshot/reset) and by the global registry (so trees
// of exited threads still appear in reports).
struct ThreadPhases {
  PhaseNode root{"total", 0, 0.0, {}};
  std::vector<OpenFrame> open;

  PhaseNode* current() { return open.empty() ? &root : open.back().node; }
};

std::mutex& mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::shared_ptr<ThreadPhases>>& threads() {
  static std::vector<std::shared_ptr<ThreadPhases>> list;
  return list;
}

ThreadPhases& local() {
  thread_local std::shared_ptr<ThreadPhases> mine = [] {
    auto p = std::make_shared<ThreadPhases>();
    std::lock_guard<std::mutex> lock(mutex());
    threads().push_back(p);
    return p;
  }();
  return *mine;
}

void merge_into(PhaseNode& dst, const PhaseNode& src) {
  dst.calls += src.calls;
  dst.seconds += src.seconds;
  for (const PhaseNode& child : src.children) {
    auto it = std::find_if(dst.children.begin(), dst.children.end(),
                           [&](const PhaseNode& n) { return n.name == child.name; });
    if (it == dst.children.end()) {
      dst.children.push_back(PhaseNode{child.name, 0, 0.0, {}});
      it = std::prev(dst.children.end());
    }
    merge_into(*it, child);
  }
}

}  // namespace

const PhaseNode* PhaseNode::child(std::string_view child_name) const {
  for (const PhaseNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

const PhaseNode* PhaseNode::find(std::string_view node_name) const {
  if (name == node_name) return this;
  for (const PhaseNode& c : children)
    if (const PhaseNode* hit = c.find(node_name)) return hit;
  return nullptr;
}

double PhaseNode::child_seconds() const {
  double total = 0.0;
  for (const PhaseNode& c : children) total += c.seconds;
  return total;
}

ScopedPhase::ScopedPhase(std::string_view name, bool timed) {
  if (!enabled()) return;
  ThreadPhases& t = local();  // may self-register: resolve before locking
  std::lock_guard<std::mutex> lock(mutex());
  PhaseNode* cur = t.current();
  if (cur->name == name && !t.open.empty()) {
    // Self-nesting (e.g. the decomposition driver's recursive `recurse`
    // phase): merge into the open instance. Only the outermost scope
    // measures time, so nested wall-clock is not double counted.
    if (timed) ++cur->calls;
    return;  // active_ stays false
  }
  PhaseNode* node = nullptr;
  for (PhaseNode& c : cur->children)
    if (c.name == name) {
      node = &c;
      break;
    }
  if (node == nullptr) {
    cur->children.push_back(PhaseNode{std::string(name), 0, 0.0, {}});
    node = &cur->children.back();
  }
  if (timed) ++node->calls;
  t.open.push_back(OpenFrame{node, Clock::now(), timed});
  active_ = true;
}

std::vector<std::string> current_phase_path() {
  if (!enabled()) return {};
  ThreadPhases& t = local();
  std::lock_guard<std::mutex> lock(mutex());
  std::vector<std::string> path;
  path.reserve(t.open.size());
  for (const OpenFrame& f : t.open) path.push_back(f.node->name);
  return path;
}

ScopedPhaseChain::ScopedPhaseChain(const std::vector<std::string>& path) {
  scopes_.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const bool leaf = (i + 1 == path.size());
    scopes_.push_back(std::make_unique<ScopedPhase>(path[i], /*timed=*/leaf));
  }
}

ScopedPhaseChain::~ScopedPhaseChain() {
  while (!scopes_.empty()) scopes_.pop_back();  // innermost closes first
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  ThreadPhases& t = local();
  std::lock_guard<std::mutex> lock(mutex());
  // The stack cannot be empty here: frames are only popped by the matching
  // destructor, and reset() preserves open frames.
  const OpenFrame frame = t.open.back();
  t.open.pop_back();
  if (frame.timed)
    frame.node->seconds +=
        std::chrono::duration<double>(Clock::now() - frame.start).count();
}

namespace detail {

PhaseNode snapshot_phases() {
  PhaseNode merged{"total", 0, 0.0, {}};
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex());
  for (const auto& t : threads()) {
    // Copy, then credit in-flight phases with their elapsed-so-far time so
    // a snapshot taken inside an open phase (the normal case: Synthesizer
    // collects while its own root phase is open) is self-consistent. The
    // open frames form a chain from the root, so one walk credits them all.
    PhaseNode copy = t->root;
    PhaseNode* node = &copy;
    for (const OpenFrame& frame : t->open) {
      PhaseNode* next = nullptr;
      for (PhaseNode& c : node->children)
        if (c.name == frame.node->name) {
          next = &c;
          break;
        }
      if (next == nullptr) break;
      if (frame.timed)
        next->seconds += std::chrono::duration<double>(now - frame.start).count();
      node = next;
    }
    merge_into(merged, copy);
  }
  merged.calls = std::max<std::uint64_t>(merged.calls, 1);
  return merged;
}

void reset_phases() {
  std::lock_guard<std::mutex> lock(mutex());
  const Clock::time_point now = Clock::now();
  for (const auto& t : threads()) {
    // Preserve the chain of currently open phases as fresh nodes (their
    // scopes will keep accumulating into the new epoch); drop everything
    // else and restart the in-flight clocks.
    std::vector<std::string> open_names;
    open_names.reserve(t->open.size());
    for (const OpenFrame& f : t->open) open_names.push_back(f.node->name);
    t->root = PhaseNode{"total", 0, 0.0, {}};
    PhaseNode* cur = &t->root;
    for (std::size_t i = 0; i < t->open.size(); ++i) {
      cur->children.push_back(
          PhaseNode{open_names[i], t->open[i].timed ? 1u : 0u, 0.0, {}});
      cur = &cur->children.back();
      t->open[i].node = cur;
      t->open[i].start = now;
    }
  }
}

}  // namespace detail

}  // namespace mfd::obs
