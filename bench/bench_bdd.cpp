// Microbenchmarks of the BDD substrate: operation throughput on the
// function families the decomposition flow stresses (arithmetic words,
// symmetric functions, random tables), plus sifting.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bdd/bdd.h"
#include "bench_common.h"
#include "circuits/circuits.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace {

using mfd::bdd::Bdd;
using mfd::bdd::Manager;

void BM_BuildAdder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Manager m;
    const auto bench = mfd::circuits::adder(m, n);
    benchmark::DoNotOptimize(bench.outputs.back().id());
    state.counters["nodes"] = static_cast<double>(m.live_node_count());
  }
}
BENCHMARK(BM_BuildAdder)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildCountOnes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Manager m(n);
    std::vector<Bdd> bits;
    for (int i = 0; i < n; ++i) bits.push_back(m.var(i));
    const auto count = mfd::circuits::count_ones(m, bits);
    benchmark::DoNotOptimize(count.back().id());
  }
}
BENCHMARK(BM_BuildCountOnes)->Arg(16)->Arg(32)->Arg(64);

void BM_IteRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Manager m(n);
  mfd::Rng rng(7);
  std::vector<Bdd> fns;
  for (int i = 0; i < 32; ++i) {
    Bdd f = m.bdd_false();
    for (int c = 0; c < 12; ++c) {
      Bdd cube = m.bdd_true();
      for (int v = 0; v < n; ++v)
        if (rng.chance(1, 3)) cube &= m.literal(v, rng.flip());
      f |= cube;
    }
    fns.push_back(f);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Bdd& f = fns[i % fns.size()];
    const Bdd& g = fns[(i + 7) % fns.size()];
    const Bdd& h = fns[(i + 13) % fns.size()];
    benchmark::DoNotOptimize(m.ite(f.id(), g.id(), h.id()));
    ++i;
  }
}
BENCHMARK(BM_IteRandom)->Arg(16)->Arg(24);

void BM_CofactorEnumeration(benchmark::State& state) {
  // The inner loop of ncc computation: all 2^p cube cofactors.
  Manager m;
  const auto bench = mfd::circuits::adder(m, 8);
  const mfd::bdd::Edge f = bench.outputs[7].id();
  for (auto _ : state) {
    for (std::uint32_t v = 0; v < 32; ++v) {
      std::vector<std::pair<int, bool>> a;
      for (int k = 0; k < 5; ++k) a.emplace_back(k, (v >> k) & 1);
      benchmark::DoNotOptimize(m.cofactor_cube(f, a));
    }
  }
}
BENCHMARK(BM_CofactorEnumeration);

void BM_Sift(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Manager m(2 * n);
    // Deliberately hostile order: a-vars then b-vars.
    Bdd f = m.bdd_false();
    for (int i = 0; i < n; ++i) f |= m.var(i) & m.var(n + i);
    state.ResumeTiming();
    m.sift();
    state.counters["nodes_after"] = static_cast<double>(m.dag_size(f.id()));
  }
}
BENCHMARK(BM_Sift)->Arg(8)->Arg(12);

void BM_SymmetricSiftAdder(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Manager m;
    const auto bench = mfd::circuits::adder(m, 8);
    std::vector<std::vector<int>> groups;
    for (int i = 0; i < 8; ++i) groups.push_back({i, 8 + i});
    state.ResumeTiming();
    m.sift_symmetric(groups);
    benchmark::DoNotOptimize(m.live_node_count());
  }
}
BENCHMARK(BM_SymmetricSiftAdder);

void BM_SatCount(benchmark::State& state) {
  Manager m;
  const auto bench = mfd::circuits::multiplier(m, 6);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.sat_count(bench.outputs[8].id(), 12));
}
BENCHMARK(BM_SatCount);

// Deterministic one-shot profile of the BDD core itself, recorded as a
// --stats-json row (run_flow rows cover whole synthesis flows; this row
// isolates the substrate so CI artifacts carry its peak-node and
// cache-hit-rate trend). Negation-heavy on purpose: XNOR chains, De Morgan
// duals of previously built conjunctions, and complemented parity are the
// shapes where complement edges pay off.
void record_bdd_profile() {
  mfd::obs::reset();
  Manager m;
  const auto bench = mfd::circuits::adder(m, 16);
  const auto& outs = bench.outputs;
  Bdd chain = m.bdd_true();
  for (std::size_t i = 1; i < outs.size(); ++i) chain &= outs[i].iff(outs[i - 1]);
  Bdd prods = m.bdd_false();
  Bdd duals = m.bdd_true();
  for (std::size_t i = 1; i < outs.size(); ++i) {
    prods |= outs[i] & outs[i - 1];
    duals &= (!outs[i]) | (!outs[i - 1]);
  }
  Bdd par = m.bdd_false();
  for (const Bdd& o : outs) par ^= !o;
  benchmark::DoNotOptimize(chain.id());
  benchmark::DoNotOptimize((prods ^ duals).id());
  benchmark::DoNotOptimize(par.id());
  m.publish_stats();
  mfd::bench::FlowRun row;
  row.circuit = "bdd_profile";
  row.flow = "bdd-core";
  row.inputs = bench.num_inputs;
  row.outputs = static_cast<int>(outs.size());
  row.report = mfd::obs::collect();
  mfd::bench::record_run(row);
  std::printf("bdd_profile: peak_nodes=%.0f live_nodes=%.0f cache_hit_rate=%.4f cache_size=%.0f\n",
              mfd::obs::gauge_value("bdd.peak_nodes"), mfd::obs::gauge_value("bdd.live_nodes"),
              mfd::obs::gauge_value("bdd.cache_hit_rate"), mfd::obs::gauge_value("bdd.cache_size"));
}

}  // namespace

int main(int argc, char** argv) {
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  record_bdd_profile();
  mfd::bench::write_stats_json();
  return 0;
}
