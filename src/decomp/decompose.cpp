#include "decomp/decompose.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <climits>
#include <cstdio>
#include <map>
#include <new>
#include <optional>
#include <unordered_map>

#include "cache/cache.h"
#include "core/budget.h"
#include "decomp/compat.h"
#include "decomp/dc_assign.h"
#include "decomp/encoding.h"
#include "obs/obs.h"
#include "sym/symmetrize.h"
#include "sym/symmetry.h"

namespace mfd {
namespace {

constexpr int kNoSignal = -1000000;

/// Marker id for functions that are not primary outputs (alpha recursions);
/// their ladder level is not attributed to anyone.
constexpr int kInternalId = -1;

struct Ctx {
  bdd::Manager& m;
  const DecomposeOptions& opts;
  ResourceGovernor* gov;  // never null inside synth (decompose installs one)
  net::LutNetwork net;
  std::vector<int> var_signal;  // manager var -> network signal
  std::vector<int> out_level;   // primary output -> ladder level at emission
  DecomposeStats stats;
  /// Call-scoped alpha pool: (inputs, table) of every decomposition-function
  /// LUT emitted so far -> its signal. Reusing the signal instead of emitting
  /// a duplicate is bit-identical to the uncached flow because simplify()
  /// merges duplicates to the earliest signal and renumbers after DCE — the
  /// pool just does it before the duplicate ever exists (docs/CACHING.md).
  /// Net signals are only meaningful within one decompose call, so the pool
  /// lives here rather than in the process-wide cache layer.
  std::map<std::pair<std::vector<int>, std::vector<bool>>, int> alpha_pool;

  /// Emits a decomposition-function LUT through the pool. Entry-capped so a
  /// pathological flow cannot hold every table ever emitted.
  int emit_alpha(net::Lut lut) {
    if (!cache::config().alpha_pool)
      return net.add_lut(std::move(lut));
    auto key = std::make_pair(lut.inputs, lut.table);
    if (const auto it = alpha_pool.find(key); it != alpha_pool.end()) {
      ++stats.alpha_pool_hits;
      obs::add("cache.alpha_pool.hits");
      return it->second;
    }
    obs::add("cache.alpha_pool.misses");
    const int sig = net.add_lut(std::move(lut));
    constexpr std::size_t kAlphaPoolCap = 100000;
    if (alpha_pool.size() < kAlphaPoolCap)
      alpha_pool.emplace(std::move(key), sig);
    return sig;
  }

  /// Attributes the currently active ladder level to primary output `id`
  /// (called at every signal-emission site; internal ids are ignored).
  void record_level(int id) {
    if (id == kInternalId) return;
    int& slot = out_level[static_cast<std::size_t>(id)];
    slot = std::max(slot, gov->degrade_level());
  }

  int signal_of(int var) const {
    assert(var_signal[static_cast<std::size_t>(var)] != kNoSignal);
    return var_signal[static_cast<std::size_t>(var)];
  }
  void bind(int var, int signal) {
    if (static_cast<std::size_t>(var) >= var_signal.size())
      var_signal.resize(static_cast<std::size_t>(var) + 1, kNoSignal);
    var_signal[static_cast<std::size_t>(var)] = signal;
  }
};

/// Emits a completely specified extension as a single LUT (its support must
/// fit the fanin bound). Returns the driving signal.
int emit_small(Ctx& c, const bdd::Bdd& ext) {
  bdd::Manager& m = c.m;
  const bdd::Edge g = ext.id();
  const std::vector<int> supp = m.support(g);
  if (supp.empty()) return g == bdd::kTrue ? net::kConst1 : net::kConst0;

  net::Lut lut;
  lut.inputs.reserve(supp.size());
  for (int v : supp) lut.inputs.push_back(c.signal_of(v));
  lut.table.resize(std::size_t{1} << supp.size());
  std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);
  for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
    for (std::size_t j = 0; j < supp.size(); ++j)
      assignment[static_cast<std::size_t>(supp[j])] = (idx >> j) & 1;
    lut.table[idx] = m.eval(g, assignment);
  }
  return c.net.add_lut(std::move(lut));
}

double trace_ms() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<int> union_of_supports(const std::vector<Isf>& fns) {
  std::vector<int> active;
  for (const Isf& f : fns) {
    std::vector<int> s = f.support();
    std::vector<int> merged;
    std::set_union(active.begin(), active.end(), s.begin(), s.end(),
                   std::back_inserter(merged));
    active = std::move(merged);
  }
  return active;
}

std::vector<int> synth_attempt(Ctx& c, const std::vector<Isf>& input,
                               const std::vector<int>& ids, int depth);

/// Ladder driver wrapping synth_attempt. On BudgetExceeded / bad_alloc it
/// raises the (global, monotone) degradation level one rung and retries the
/// same subproblem; the structural floor (level 3) runs with enforcement
/// suspended, so it completes unless a fault is injected into it — only then
/// does a typed error escape to the caller. `ids[i]` is the primary-output
/// index function i computes (kInternalId for alpha recursions), used to
/// attribute the final ladder level per output.
std::vector<int> synth(Ctx& c, std::vector<Isf> fns, const std::vector<int>& ids,
                       int depth) {
  ResourceGovernor& gov = *c.gov;
  for (;;) {
    const int level = gov.degrade_level();
    try {
      if (level >= kDegradeStructural) {
        ResourceGovernor::SuspendScope suspend(gov);
        return synth_attempt(c, fns, ids, depth);
      }
      return synth_attempt(c, fns, ids, depth);
    } catch (const BudgetExceeded& e) {
      if (level >= kDegradeStructural) throw;  // even the suspended floor failed
      gov.raise_degrade(level + 1, "decomp.synth@d=" + std::to_string(depth),
                        e.what());
      obs::add("decomp.ladder_retries");
    } catch (const std::bad_alloc&) {
      if (level >= kDegradeStructural) throw;
      gov.raise_degrade(level + 1, "decomp.synth@d=" + std::to_string(depth),
                        "allocation failure (bad_alloc)");
      obs::add("decomp.ladder_retries");
    }
    // LUTs emitted by the aborted attempt are unreferenced (outputs attach
    // only at the end of decompose) and swept by net.simplify(); BDD
    // intermediates are dead roots reclaimed by the next garbage collection.
  }
}

/// Greedy clustering of outputs by support overlap: an output joins the
/// cluster it overlaps most, if the overlap covers at least half of its own
/// support; otherwise it seeds a new cluster. Returns index sets.
std::vector<std::vector<int>> cluster_by_support(
    const std::vector<std::vector<int>>& supports) {
  std::vector<int> order(supports.size());
  for (std::size_t i = 0; i < supports.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return supports[static_cast<std::size_t>(a)].size() >
           supports[static_cast<std::size_t>(b)].size();
  });

  std::vector<std::vector<int>> clusters;        // output indices
  std::vector<std::vector<int>> unions;          // sorted var unions
  for (int i : order) {
    const std::vector<int>& supp = supports[static_cast<std::size_t>(i)];
    int best = -1;
    std::size_t best_overlap = 0;
    for (std::size_t cl = 0; cl < clusters.size(); ++cl) {
      std::vector<int> inter;
      std::set_intersection(supp.begin(), supp.end(), unions[cl].begin(),
                            unions[cl].end(), std::back_inserter(inter));
      if (inter.size() > best_overlap) {
        best_overlap = inter.size();
        best = static_cast<int>(cl);
      }
    }
    if (best != -1 && best_overlap * 2 >= supp.size()) {
      clusters[static_cast<std::size_t>(best)].push_back(i);
      std::vector<int> merged;
      std::set_union(unions[static_cast<std::size_t>(best)].begin(),
                     unions[static_cast<std::size_t>(best)].end(), supp.begin(),
                     supp.end(), std::back_inserter(merged));
      unions[static_cast<std::size_t>(best)] = std::move(merged);
    } else {
      clusters.push_back({i});
      unions.push_back(supp);
    }
  }
  return clusters;
}

/// Window-seed order for the bound-set search: symmetry groups stay
/// contiguous; groups are chained greedily by support co-occurrence
/// (the group sharing the most outputs with the previously placed one goes
/// next), so windows cover variables that actually appear together.
std::vector<int> seed_order(const std::vector<Isf>& fns,
                            const std::vector<std::vector<int>>& groups) {
  const int ng = static_cast<int>(groups.size());
  // Bitmask of outputs using each group (outputs beyond 64 fold over).
  std::vector<std::uint64_t> uses(static_cast<std::size_t>(ng), 0);
  std::vector<int> freq(static_cast<std::size_t>(ng), 0);
  for (std::size_t o = 0; o < fns.size(); ++o) {
    const std::vector<int> supp = fns[o].support();
    for (int g = 0; g < ng; ++g) {
      for (int v : groups[static_cast<std::size_t>(g)]) {
        if (std::binary_search(supp.begin(), supp.end(), v)) {
          uses[static_cast<std::size_t>(g)] |= std::uint64_t{1} << (o % 64);
          ++freq[static_cast<std::size_t>(g)];
          break;
        }
      }
    }
  }
  std::vector<bool> placed(static_cast<std::size_t>(ng), false);
  std::vector<int> order;
  int last = -1;
  for (int step = 0; step < ng; ++step) {
    int best = -1;
    long best_key = -1;
    for (int g = 0; g < ng; ++g) {
      if (placed[static_cast<std::size_t>(g)]) continue;
      const long common =
          last == -1 ? 0
                     : static_cast<long>(__builtin_popcountll(
                           uses[static_cast<std::size_t>(g)] &
                           uses[static_cast<std::size_t>(last)]));
      const long key = common * 1024 + freq[static_cast<std::size_t>(g)];
      if (key > best_key) {
        best_key = key;
        best = g;
      }
    }
    placed[static_cast<std::size_t>(best)] = true;
    last = best;
    for (int v : groups[static_cast<std::size_t>(best)]) order.push_back(v);
  }
  return order;
}

/// Last-resort emission: map the extension-zero BDD of `f` node-for-node to
/// a network of multiplexers (the classic direct BDD mapping). Linear in the
/// BDD size, so it bounds the worst case when neither a profitable bound set
/// nor an affordable Shannon cascade exists.
int emit_bdd_muxes(Ctx& c, const Isf& f) {
  bdd::Manager& m = c.m;
  const bdd::Bdd ext = f.extension_small();
  const bdd::Edge root = ext.id();
  std::unordered_map<bdd::Edge, int> signal;
  signal.emplace(bdd::kFalse, net::kConst0);
  signal.emplace(bdd::kTrue, net::kConst1);

  auto rec = [&](auto&& self, bdd::Edge n) -> int {
    const auto it = signal.find(n);
    if (it != signal.end()) return it->second;
    const int lo = self(self, m.node_lo(n));
    const int hi = self(self, m.node_hi(n));
    const int sel = c.signal_of(static_cast<int>(m.node_var(n)));
    int out;
    if (c.opts.lut_inputs >= 3) {
      net::Lut mux;
      mux.inputs = {sel, hi, lo};
      mux.table.resize(8);
      for (std::size_t idx = 0; idx < 8; ++idx)
        mux.table[idx] = (idx & 1) ? ((idx >> 1) & 1) : ((idx >> 2) & 1);
      out = c.net.add_lut(std::move(mux));
    } else {
      const int t1 = c.net.add_lut({{sel, hi}, {false, false, false, true}});
      const int t0 = c.net.add_lut({{lo, sel}, {false, true, false, false}});
      out = c.net.add_lut({{t1, t0}, {false, true, true, true}});
    }
    signal.emplace(n, out);
    return out;
  };
  return rec(rec, root);
}

/// Shannon (mux) fallback: guaranteed support reduction when no bound set
/// yields one.
std::vector<int> shannon_step(Ctx& c, const std::vector<Isf>& fns,
                              const std::vector<int>& ids, int depth) {
  ++c.stats.shannon_fallbacks;
  obs::add("decomp.shannon_fallbacks");
  bdd::Manager& m = c.m;

  // Split on the variable occurring in the most supports.
  std::vector<int> active = union_of_supports(fns);
  int split = active.front();
  int best_count = -1;
  for (int v : active) {
    int count = 0;
    for (const Isf& f : fns) {
      const std::vector<int> s = f.support();
      if (std::binary_search(s.begin(), s.end(), v)) ++count;
    }
    if (count > best_count) {
      best_count = count;
      split = v;
    }
  }

  std::vector<Isf> halves;
  std::vector<int> half_ids;
  halves.reserve(fns.size() * 2);
  half_ids.reserve(fns.size() * 2);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    halves.push_back(fns[i].cofactor(split, false));
    halves.push_back(fns[i].cofactor(split, true));
    half_ids.push_back(ids[i]);
    half_ids.push_back(ids[i]);
  }
  obs::ScopedPhase recurse_phase("recurse");
  const std::vector<int> sub = synth(c, std::move(halves), half_ids, depth + 1);

  const int sel = c.signal_of(split);
  std::vector<int> result(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const int s0 = sub[2 * i], s1 = sub[2 * i + 1];
    c.record_level(ids[i]);
    if (c.opts.lut_inputs >= 3) {
      // One 3-input mux LUT: inputs (sel, d1, d0).
      net::Lut mux;
      mux.inputs = {sel, s1, s0};
      mux.table.resize(8);
      for (std::size_t idx = 0; idx < 8; ++idx)
        mux.table[idx] = (idx & 1) ? ((idx >> 1) & 1) : ((idx >> 2) & 1);
      result[i] = c.net.add_lut(std::move(mux));
    } else {
      // Three 2-input gates: (sel & d1) | (d0 & !sel).
      const int t1 = c.net.add_lut({{sel, s1}, {false, false, false, true}});
      const int t0 = c.net.add_lut({{s0, sel}, {false, true, false, false}});
      result[i] = c.net.add_lut({{t1, t0}, {false, true, true, true}});
    }
  }
  m.garbage_collect();
  return result;
}

/// Emission when no profitable bound set exists: Shannon-split outputs with
/// small support (the recursion then reconsiders the halves), map the rest
/// directly as BDD mux networks (bounded cost; a Shannon cascade over a wide
/// support could fan out exponentially).
std::vector<int> fallback_emit(Ctx& c, const std::vector<Isf>& work,
                               const std::vector<int>& ids, int depth) {
  std::vector<int> sigs(work.size(), net::kConst0);
  std::vector<int> small_idx;
  std::vector<Isf> small_fns;
  std::vector<int> small_ids;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (static_cast<int>(work[i].support().size()) <= c.opts.shannon_support_limit) {
      small_idx.push_back(static_cast<int>(i));
      small_fns.push_back(work[i]);
      small_ids.push_back(ids[i]);
    } else {
      sigs[i] = emit_bdd_muxes(c, work[i]);
      c.record_level(ids[i]);
      ++c.stats.bdd_mux_fallbacks;
      obs::add("decomp.bdd_mux_fallbacks");
    }
  }
  if (!small_fns.empty()) {
    const std::vector<int> sub = shannon_step(c, small_fns, small_ids, depth);
    for (std::size_t i = 0; i < small_idx.size(); ++i)
      sigs[static_cast<std::size_t>(small_idx[i])] = sub[i];
  }
  return sigs;
}

std::vector<int> synth_attempt(Ctx& c, const std::vector<Isf>& input,
                               const std::vector<int>& ids, int depth) {
  c.stats.max_depth = std::max(c.stats.max_depth, depth);
  obs::add("decomp.levels");
  obs::gauge_max("decomp.max_depth", depth);
  bdd::Manager& m = c.m;
  const int k = c.opts.lut_inputs;
  c.gov->check_depth(depth, "decomp.synth");
  c.gov->check_deadline("decomp.synth");

  // The ladder driver retries with the same input, so leave it intact.
  std::vector<Isf> fns = input;

  // mulopII baseline: every don't care becomes 0 before anything else.
  if (!c.opts.exploit_dc)
    for (Isf& f : fns) f = Isf::completely_specified(f.extension_zero());

  std::vector<int> result(fns.size(), net::kConst0);
  std::vector<int> big;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    // Don't cares may admit an extension that fits a single LUT even when
    // the raw on-set does not (Coudert-Madre restrict).
    const bdd::Bdd ext = fns[i].extension_small();
    if (static_cast<int>(m.support(ext.id()).size()) <= k) {
      result[i] = emit_small(c, ext);
      c.record_level(ids[i]);
    } else {
      big.push_back(static_cast<int>(i));
    }
  }
  if (big.empty()) return result;

  std::vector<Isf> work;
  std::vector<int> work_ids;
  work.reserve(big.size());
  work_ids.reserve(big.size());
  for (int i : big) {
    work.push_back(fns[i]);
    work_ids.push_back(ids[static_cast<std::size_t>(i)]);
  }

  // ---- ladder floor: structural emission only --------------------------
  // At the bottom rung the bound-set machinery is bypassed entirely; Shannon
  // splits and direct BDD mux mapping are linear in the BDD sizes, so this
  // path terminates wherever the full flow would diverge.
  if (c.gov->degrade_level() >= kDegradeStructural) {
    const std::vector<int> sigs = fallback_emit(c, work, work_ids, depth);
    for (std::size_t i = 0; i < big.size(); ++i) result[big[i]] = sigs[i];
    return result;
  }

  // ---- cluster outputs by support overlap ------------------------------
  // One bound set serves one cluster; outputs with mostly disjoint supports
  // gain nothing from a common bound set and would only pay the cost of the
  // joint analysis. Decompose such groups independently.
  if (work.size() > 1) {
    std::vector<std::vector<int>> supports;
    supports.reserve(work.size());
    for (const Isf& f : work) supports.push_back(f.support());
    std::vector<std::vector<int>> clusters = cluster_by_support(supports);
    if (clusters.size() > 1) {
      for (const std::vector<int>& cluster : clusters) {
        std::vector<Isf> group;
        std::vector<int> group_ids;
        group.reserve(cluster.size());
        group_ids.reserve(cluster.size());
        for (int i : cluster) {
          group.push_back(work[static_cast<std::size_t>(i)]);
          group_ids.push_back(work_ids[static_cast<std::size_t>(i)]);
        }
        const std::vector<int> sigs = synth(c, std::move(group), group_ids, depth);
        for (std::size_t i = 0; i < cluster.size(); ++i)
          result[big[static_cast<std::size_t>(cluster[i])]] = sigs[i];
      }
      return result;
    }
  }

  std::vector<int> active = union_of_supports(work);

  if (c.opts.trace) {
    std::fprintf(stderr, "[%8.0fms synth d=%d] %zu big, %zu active, %zu mgr vars, %zu nodes, supports:",
                 trace_ms(), depth, big.size(), active.size(),
                 static_cast<std::size_t>(m.num_vars()), m.live_node_count());
    for (const Isf& f : work)
      std::fprintf(stderr, " %zu", f.support().size());
    std::fprintf(stderr, "\n");
  }

  // ---- step 1: symmetrize --------------------------------------------
  // Skipped from ladder level 2 on: symmetrization only buys optimization
  // quality, and it is one of the two DC steps the ladder sheds.
  if (c.opts.exploit_dc && c.opts.dc_symmetrize &&
      c.gov->degrade_level() < kDegradeNoDcSteps &&
      static_cast<int>(active.size()) <= c.opts.symmetrize_max_vars) {
    obs::ScopedPhase phase("symmetrize");
    const SymmetrizeStats s = symmetrize(work, active);
    c.stats.symmetrized_pairs += s.ne_applied + s.e_applied;
  }
  if (c.opts.trace) std::fprintf(stderr, "[%8.0fms synth d=%d] symmetrized\n", trace_ms(), depth);

  // ---- variable order seed ---------------------------------------------
  // The bound-set search scans windows of this order, so what matters is
  // that symmetric variables sit together and co-occurring variables are
  // near each other. With enumeration-based ncc the BDD order itself is
  // semantically irrelevant; we still run one symmetric sifting pass at the
  // top (it shrinks the working BDDs and is the paper's seed [12,15]), but
  // deeper levels use a cheap group/co-occurrence order.
  const std::vector<std::vector<int>> groups = symmetry_groups(work, active);
  if (c.opts.trace)
    std::fprintf(stderr, "[%8.0fms synth d=%d] %zu symmetry groups\n", trace_ms(),
                 depth, groups.size());
  if (c.opts.symmetric_sift && depth == 0 &&
      m.live_node_count() <= static_cast<std::size_t>(c.opts.sift_max_live_nodes)) {
    obs::ScopedPhase phase("sift");
    obs::add("decomp.sift_runs");
    m.sift_symmetric(groups, /*max_growth=*/1.2);
  }
  if (c.opts.trace) std::fprintf(stderr, "[%8.0fms synth d=%d] sifted\n", trace_ms(), depth);
  const std::vector<int> order = seed_order(work, groups);

  // ---- bound set -----------------------------------------------------------
  BoundSetOptions bopts = c.opts.boundset;
  bopts.seed = c.opts.seed;
  // Candidate evaluation costs O(outputs * 2^p) BDD work; keep the total
  // search effort roughly constant as the output count grows.
  bopts.max_evaluations = std::max(
      24, bopts.max_evaluations / std::max<int>(1, static_cast<int>(work.size()) / 8));

  // Estimated LUTs to realize one decomposition function of q inputs.
  auto alpha_tree_luts = [&](int q) { return (q - 1 + (k - 2)) / (k - 1); };
  // Penalty-adjusted benefit: oversized bound sets pay for the extra LUTs
  // their decomposition functions need.
  auto adjusted_benefit = [&](const BoundSetChoice& ch) {
    if (ch.vars.empty()) return LONG_MIN;
    const int q = static_cast<int>(ch.vars.size());
    if (q <= k) return ch.benefit;
    int est_alphas = 0;
    for (int r : ch.r_per_output) est_alphas = std::max(est_alphas, r);
    if (c.opts.share_functions)
      est_alphas = std::max<int>(est_alphas, static_cast<int>(ch.sum_r) - ch.sharing_gap);
    else
      est_alphas = static_cast<int>(ch.sum_r);
    return ch.benefit - static_cast<long>(est_alphas) * (alpha_tree_luts(q) - 1);
  };

  const int base_p = std::min(k, static_cast<int>(active.size()) - 1);
  const int max_p = std::min(k + std::max(0, c.opts.max_bound_extra),
                             static_cast<int>(active.size()) - 1);
  BoundSetChoice choice;
  if (base_p >= 2) {
    obs::ScopedPhase boundset_phase("boundset");
    choice = select_bound_set(work, order, base_p, bopts);
    // An oversized bound set recurses on its decomposition functions, whose
    // real cost the estimate below can only bound loosely — require it to beat the in-budget bound set before accepting one. The
    // Synthesizer-level portfolio (see core/synthesizer.cpp) protects
    // against the cases where even that is too optimistic.
    for (int p = base_p + 1; p <= max_p; ++p) {
      BoundSetChoice cand = select_bound_set(work, order, p, bopts);
      const long cur = std::max(0L, adjusted_benefit(choice));
      if (choice.vars.empty() || adjusted_benefit(cand) > cur)
        choice = std::move(cand);
    }
  }
  if (c.opts.trace)
    std::fprintf(stderr, "[%8.0fms synth d=%d] sifted+bound set, p=%zu benefit=%ld\n",
                 trace_ms(), depth, choice.vars.size(), choice.benefit);

  if (choice.vars.empty() || adjusted_benefit(choice) <= 0) {
    const std::vector<int> sigs = fallback_emit(c, work, work_ids, depth);
    for (std::size_t i = 0; i < big.size(); ++i) result[big[i]] = sigs[i];
    return result;
  }
  const std::vector<int>& bound = choice.vars;

  // ---- steps 2 + 3: don't-care assignment over the bound set -----------
  std::vector<CofactorTable> tables;
  tables.reserve(work.size());
  for (const Isf& f : work) tables.push_back(cofactor_table(f, bound));

  if (c.opts.exploit_dc && c.opts.dc_joint) {
    obs::ScopedPhase phase("share");
    assign_joint(tables, c.opts.seed);
  }

  std::vector<std::vector<int>> partitions;
  if (c.opts.total_minimal_code) {
    // [10]-style: one joint partition for every output. Vertices with
    // identical cofactors across all outputs share a class; the shared code
    // of that partition is trivially strict for every output.
    if (c.opts.exploit_dc && c.opts.dc_per_output &&
        c.gov->degrade_level() < kDegradeNoDcSteps)
      assign_per_output(tables, c.opts.seed);
    std::map<std::vector<std::pair<bdd::Edge, bdd::Edge>>, int> classes;
    std::vector<int> joint(tables.front().entries.size());
    for (std::size_t v = 0; v < joint.size(); ++v) {
      std::vector<std::pair<bdd::Edge, bdd::Edge>> key;
      key.reserve(tables.size());
      for (const CofactorTable& t : tables)
        key.emplace_back(t.entries[v].on().id(), t.entries[v].care().id());
      joint[v] = classes.emplace(std::move(key), static_cast<int>(classes.size()))
                     .first->second;
    }
    partitions.assign(tables.size(), joint);
  } else if (c.opts.exploit_dc && c.opts.dc_per_output &&
             c.gov->degrade_level() < kDegradeNoDcSteps) {
    // Step 3 is the other DC step shed at ladder level 2.
    obs::ScopedPhase phase("per_output");
    partitions = assign_per_output(tables, c.opts.seed);
  } else {
    partitions.reserve(tables.size());
    for (const CofactorTable& t : tables) partitions.push_back(partition_by_equality(t));
  }

  if (c.opts.trace) std::fprintf(stderr, "[%8.0fms synth d=%d] dc steps done\n", trace_ms(), depth);

  // ---- encode the decomposition functions ---------------------------------
  const Encoding enc = [&] {
    obs::ScopedPhase phase("encode");
    return encode_shared(partitions, static_cast<int>(bound.size()),
                         c.opts.share_functions);
  }();
  assert(encoding_is_valid(enc, partitions));

  // Re-check actual progress: the joint assignment optimizes sharing and may
  // cost individual outputs classes relative to the search's quick estimate,
  // and an oversized bound set must still pay for its alpha trees.
  {
    long actual_benefit = 0;
    std::vector<std::vector<int>> supports;
    for (const Isf& f : work) supports.push_back(f.support());
    for (std::size_t i = 0; i < work.size(); ++i) {
      int cut = 0;
      for (int v : supports[i])
        if (std::find(bound.begin(), bound.end(), v) != bound.end()) ++cut;
      actual_benefit += cut - code_length(num_classes(partitions[i]));
    }
    if (static_cast<int>(bound.size()) > k)
      actual_benefit -= static_cast<long>(enc.total_functions()) *
                        (alpha_tree_luts(static_cast<int>(bound.size())) - 1);
    if (actual_benefit <= 0) {
      const std::vector<int> sigs = fallback_emit(c, work, work_ids, depth);
      for (std::size_t i = 0; i < big.size(); ++i) result[big[i]] = sigs[i];
      return result;
    }
  }
  ++c.stats.decomposition_steps;
  c.stats.total_decomposition_functions += enc.total_functions();
  c.stats.encoding_pool_hits += enc.pool_hits;
  for (std::size_t i = 0; i < work.size(); ++i) c.stats.sum_r += enc.r(static_cast<int>(i));
  obs::add("decomp.steps");
  obs::add("decomp.functions_emitted", static_cast<std::uint64_t>(enc.total_functions()));

  std::vector<int> code_vars(static_cast<std::size_t>(enc.total_functions()));
  if (static_cast<int>(bound.size()) <= k) {
    // Every decomposition function fits one LUT. Emission goes through the
    // alpha pool: the same (inputs, table) — possibly from another output or
    // an earlier step over the same bound signals — reuses the existing LUT.
    for (int j = 0; j < enc.total_functions(); ++j) {
      net::Lut lut;
      for (int v : bound) lut.inputs.push_back(c.signal_of(v));
      lut.table = enc.functions[static_cast<std::size_t>(j)];
      const int sig = c.emit_alpha(std::move(lut));
      const int var = m.add_var();
      c.bind(var, sig);
      code_vars[static_cast<std::size_t>(j)] = var;
    }
  } else {
    // Oversized bound set: rebuild each alpha as a BDD over the bound
    // variables and decompose it recursively (Section 2: "decomposition has
    // to be applied recursively to alpha and g").
    std::vector<Isf> alpha_fns;
    alpha_fns.reserve(static_cast<std::size_t>(enc.total_functions()));
    for (int j = 0; j < enc.total_functions(); ++j) {
      bdd::Bdd alpha = m.bdd_false();
      const auto& fn = enc.functions[static_cast<std::size_t>(j)];
      for (std::size_t v = 0; v < fn.size(); ++v) {
        if (!fn[v]) continue;
        bdd::Bdd minterm = m.bdd_true();
        for (std::size_t bIdx = 0; bIdx < bound.size(); ++bIdx)
          minterm &= m.literal(bound[bIdx], (v >> bIdx) & 1);
        alpha |= minterm;
      }
      alpha_fns.push_back(Isf::completely_specified(alpha));
    }
    const std::vector<int> alpha_ids(alpha_fns.size(), kInternalId);
    obs::ScopedPhase recurse_phase("recurse");
    const std::vector<int> alpha_sigs =
        synth(c, std::move(alpha_fns), alpha_ids, depth + 1);
    for (int j = 0; j < enc.total_functions(); ++j) {
      const int var = m.add_var();
      c.bind(var, alpha_sigs[static_cast<std::size_t>(j)]);
      code_vars[static_cast<std::size_t>(j)] = var;
    }
  }

  // ---- build the composition functions ------------------------------------
  std::vector<Isf> g_fns;
  g_fns.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    const auto& used = enc.used[i];
    bdd::Bdd g_on = m.bdd_false();
    bdd::Bdd g_care = m.bdd_false();
    for (std::size_t v = 0; v < tables[i].entries.size(); ++v) {
      const std::uint32_t code = enc.code_of(static_cast<int>(i), static_cast<int>(v));
      bdd::Bdd cube = m.bdd_true();
      for (std::size_t j = 0; j < used.size(); ++j)
        cube &= m.literal(code_vars[static_cast<std::size_t>(used[j])], (code >> j) & 1);
      g_on |= cube & tables[i].entries[v].on();
      g_care |= cube & tables[i].entries[v].care();
    }
    g_fns.emplace_back(g_on, g_care);
  }

  tables.clear();
  work.clear();
  m.garbage_collect();

  obs::ScopedPhase recurse_phase("recurse");
  const std::vector<int> sigs = synth(c, std::move(g_fns), work_ids, depth + 1);
  for (std::size_t i = 0; i < big.size(); ++i) result[big[i]] = sigs[i];
  return result;
}

}  // namespace

namespace {

/// RAII binding of a governor to a manager's mk hot path (restores the
/// previous binding, so nested flows over the same manager compose).
struct ManagerGovernorBinding {
  ManagerGovernorBinding(bdd::Manager& m, ResourceGovernor* g)
      : m_(m), prev_(m.set_governor(g)) {}
  ~ManagerGovernorBinding() { m_.set_governor(prev_); }
  ManagerGovernorBinding(const ManagerGovernorBinding&) = delete;
  ManagerGovernorBinding& operator=(const ManagerGovernorBinding&) = delete;

 private:
  bdd::Manager& m_;
  ResourceGovernor* prev_;
};

}  // namespace

net::LutNetwork decompose(std::vector<Isf> fns, const std::vector<int>& pi_vars,
                          const DecomposeOptions& opts, DecomposeStats* stats) {
  assert(!fns.empty());
  obs::ScopedPhase phase("decompose");
  obs::add("decomp.runs");
  bdd::Manager& m = *fns.front().manager();

  // The ladder driver needs a governor even when the caller did not install
  // one (standalone decompose in tests/benches): an unlimited local governor
  // never trips a budget but still carries the degradation state, so
  // injected faults recover through the same path.
  ResourceGovernor* gov = ResourceGovernor::current();
  std::optional<ResourceGovernor> local_gov;
  std::optional<ResourceGovernor::Scope> local_scope;
  if (gov == nullptr) {
    local_gov.emplace();
    local_scope.emplace(*local_gov);
    gov = &*local_gov;
  }
  ManagerGovernorBinding bind_mgr(m, gov);

  const std::size_t num_outputs = fns.size();
  Ctx c{m, opts, gov, net::LutNetwork(static_cast<int>(pi_vars.size())), {}, {}, {}, {}};
  c.var_signal.assign(static_cast<std::size_t>(m.num_vars()), kNoSignal);
  c.out_level.assign(num_outputs, kDegradeFull);
  for (std::size_t i = 0; i < pi_vars.size(); ++i)
    c.bind(pi_vars[i], static_cast<int>(i));

  std::vector<int> ids(num_outputs);
  for (std::size_t i = 0; i < num_outputs; ++i) ids[i] = static_cast<int>(i);

  const std::vector<int> sigs = synth(c, std::move(fns), ids, 0);
  for (int s : sigs) c.net.add_output(s);
  // simplify() also sweeps any LUTs stranded by ladder-aborted attempts
  // (outputs only attach here, so such LUTs are dead by construction).
  c.net.simplify();
  c.net.collapse(opts.lut_inputs);
  c.stats.output_degrade_level = c.out_level;
  gov->set_per_output_levels(c.out_level);
  if (stats) *stats = c.stats;
  return std::move(c.net);
}

}  // namespace mfd
