#include "verify/specgen.h"

#include <sstream>

#include "circuits/circuits.h"
#include "util/rng.h"

namespace mfd::verify {
namespace {

/// Density modes for one output's don't-care plane (percent of minterms
/// that are don't-care). The skew is intentional: parser and assignment
/// bugs live at the extremes, not at 30%.
enum class DcMode { kComplete, kSparse, kBalanced, kHeavy, kAllDc };

DcMode pick_dc_mode(Rng& rng) {
  switch (rng.below(10)) {
    case 0:
    case 1: return DcMode::kComplete;
    case 2:
    case 3: return DcMode::kSparse;    // ~5% DC
    case 4:
    case 5: return DcMode::kBalanced;  // ~35% DC
    case 6:
    case 7:
    case 8: return DcMode::kHeavy;     // ~80% DC
    default: return DcMode::kAllDc;
  }
}

bool draw_dc(Rng& rng, DcMode mode) {
  switch (mode) {
    case DcMode::kComplete: return false;
    case DcMode::kSparse: return rng.chance(1, 20);
    case DcMode::kBalanced: return rng.chance(7, 20);
    case DcMode::kHeavy: return rng.chance(4, 5);
    case DcMode::kAllDc: return true;
  }
  return false;
}

}  // namespace

TableSpec generate_spec(std::uint64_t seed, const SpecGenOptions& opts) {
  Rng rng(seed ^ 0xF02ED1A5u);
  TableSpec spec;
  // Skew input counts small: minimal reproducers and fast oracle runs both
  // live there, and a bug reachable at n=7 is almost always reachable at
  // n<=5. Draw twice and keep the min.
  const int lo_in = opts.min_inputs, hi_in = opts.max_inputs;
  spec.num_inputs = std::min(rng.range(lo_in, hi_in), rng.range(lo_in, hi_in));
  const int num_outputs =
      std::min(rng.range(opts.min_outputs, opts.max_outputs),
               rng.range(opts.min_outputs, opts.max_outputs));
  const std::size_t size = spec.table_size();

  for (int o = 0; o < num_outputs; ++o) {
    TableSpec::Output out;
    out.on.assign(size, 0);
    out.care.assign(size, 0);

    // Special shapes first: duplicate an earlier output (shared support is
    // where encoding-sharing code can confuse outputs), or a constant.
    if (o > 0 && rng.chance(1, 8)) {
      out = spec.outputs[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(o)))];
      if (rng.flip())  // complemented duplicate: same care plane, on flipped
        for (std::size_t m = 0; m < size; ++m)
          out.on[m] = static_cast<std::uint8_t>(out.care[m] && !out.on[m]);
      spec.outputs.push_back(std::move(out));
      continue;
    }
    if (rng.chance(1, 10)) {
      const std::uint8_t value = rng.flip() ? 1 : 0;
      for (std::size_t m = 0; m < size; ++m) {
        out.care[m] = 1;
        out.on[m] = value;
      }
      spec.outputs.push_back(std::move(out));
      continue;
    }

    // Optionally restrict this output's support to a strict subset of the
    // inputs: minterms that differ only in masked-out variables get the
    // same (on, care) entry.
    std::uint64_t support_mask = (std::uint64_t{1} << spec.num_inputs) - 1;
    if (spec.num_inputs >= 2 && rng.chance(1, 5)) {
      const int keep = rng.range(1, spec.num_inputs - 1);
      std::vector<int> vars(static_cast<std::size_t>(spec.num_inputs));
      for (int v = 0; v < spec.num_inputs; ++v) vars[static_cast<std::size_t>(v)] = v;
      rng.shuffle(vars);
      support_mask = 0;
      for (int i = 0; i < keep; ++i)
        support_mask |= std::uint64_t{1} << vars[static_cast<std::size_t>(i)];
    }

    const DcMode mode = pick_dc_mode(rng);
    // On-plane skew: near-constant on-sets stress isop/cover corner cases.
    const std::uint32_t on_num = static_cast<std::uint32_t>(rng.range(1, 19));
    for (std::size_t m = 0; m < size; ++m) {
      const std::size_t rep = m & support_mask;
      if (rep != m) {  // not the support representative: copy its entry
        out.on[m] = out.on[rep];
        out.care[m] = out.care[rep];
        continue;
      }
      if (draw_dc(rng, mode)) continue;  // don't-care: on=0, care=0
      out.care[m] = 1;
      out.on[m] = rng.chance(on_num, 20) ? 1 : 0;
    }
    spec.outputs.push_back(std::move(out));
  }
  return spec;
}

std::vector<Isf> to_isfs(const TableSpec& spec, bdd::Manager& m) {
  circuits::ensure_vars(m, spec.num_inputs);
  std::vector<Isf> result;
  result.reserve(spec.outputs.size());
  for (const TableSpec::Output& out : spec.outputs) {
    bdd::Bdd on = m.bdd_false();
    bdd::Bdd care = m.bdd_false();
    for (std::size_t mt = 0; mt < spec.table_size(); ++mt) {
      if (!out.care[mt]) continue;
      bdd::Bdd minterm = m.bdd_true();
      for (int v = 0; v < spec.num_inputs; ++v)
        minterm &= m.literal(v, ((mt >> v) & 1) != 0);
      care |= minterm;
      if (out.on[mt]) on |= minterm;
    }
    result.emplace_back(on, care);
  }
  return result;
}

TableSpec from_isfs(const std::vector<Isf>& fns, int num_inputs) {
  TableSpec spec;
  spec.num_inputs = num_inputs;
  for (const Isf& f : fns) {
    bdd::Manager& m = *f.manager();
    TableSpec::Output out;
    out.on.assign(spec.table_size(), 0);
    out.care.assign(spec.table_size(), 0);
    std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);
    for (std::size_t mt = 0; mt < spec.table_size(); ++mt) {
      for (int v = 0; v < num_inputs; ++v)
        assignment[static_cast<std::size_t>(v)] = ((mt >> v) & 1) != 0;
      out.care[mt] = m.eval(f.care().id(), assignment) ? 1 : 0;
      if (out.care[mt]) out.on[mt] = m.eval(f.on().id(), assignment) ? 1 : 0;
    }
    spec.outputs.push_back(std::move(out));
  }
  return spec;
}

bool same_spec(const TableSpec& a, const TableSpec& b) {
  if (a.num_inputs != b.num_inputs || a.outputs.size() != b.outputs.size())
    return false;
  for (std::size_t o = 0; o < a.outputs.size(); ++o)
    if (a.outputs[o].on != b.outputs[o].on || a.outputs[o].care != b.outputs[o].care)
      return false;
  return true;
}

std::string describe(const TableSpec& spec) {
  std::size_t cells = 0, dc = 0;
  for (const TableSpec::Output& out : spec.outputs)
    for (std::size_t m = 0; m < spec.table_size(); ++m) {
      ++cells;
      if (!out.care[m]) ++dc;
    }
  std::ostringstream os;
  os << spec.num_inputs << "i/" << spec.outputs.size() << "o dc="
     << (cells == 0 ? 0 : (100 * dc) / cells) << "%";
  return os.str();
}

}  // namespace mfd::verify
