// Top-level synthesis API: the paper's complete flow in one call.
//
// The flow is a *pass pipeline* over the LUT-network IR (net/passmgr.h);
// the default pipeline is
//
//   spec (multi-output ISF or Benchmark)
//     -> decompose    recursive decomposition portfolio with 3-step
//                     don't-care assignment (mulop-dc)
//     -> simplify     structural cleanup + single-fanout repacking
//     -> odc_resubst  network-level ODC/SDC feedback: per-LUT windowed
//                     don't cares, re-minimized with the ISF machinery
//     -> pack         XC3000 CLB packing, greedy + matching (analysis)
//
// followed by exact verification against the spec (BDD containment), which
// is a flow invariant rather than a pass. `SynthesisOptions::passes`
// ("--passes" in the benches) rebuilds the pipeline from a spec string;
// "decompose,simplify,pack" reproduces the pre-pipeline flow bit-exactly.
//
// The option presets at the bottom configure the flows compared in the
// paper's tables: mulopII (no DC exploitation), mulop-dc, and the ablations.
#pragma once

#include <cstdint>
#include <string>

#include "circuits/circuits.h"
#include "core/budget.h"
#include "decomp/decompose.h"
#include "isf/isf.h"
#include "map/clb.h"
#include "net/lutnet.h"
#include "net/odc_resubst.h"
#include "net/passmgr.h"
#include "obs/obs.h"

namespace mfd {

struct SynthesisOptions {
  DecomposeOptions decomp;
  map::ClbOptions clb;
  /// Exact BDD check of the network against the spec after synthesis.
  bool verify = true;
  /// When decomp.max_bound_extra > 0, also run the flow with in-budget
  /// bound sets only and keep the better network. Oversized bound sets help
  /// dramatically on mux-structured functions and can hurt badly on others;
  /// no static estimate separates the two reliably, so we measure.
  bool portfolio_bound_extra = true;
  /// Resource budget for the whole run (zero fields = unlimited). Tripping
  /// it never fails the run: the decomposition walks the degradation ladder
  /// (core/budget.h) and the result records how far it fell.
  ResourceBudget budget;
  /// Pass pipeline spec, e.g. "decompose,simplify,odc_resubst,pack". Empty
  /// selects the default pipeline (core/passes.h); unknown names throw
  /// mfd::Error at run().
  std::string passes;
  /// Options of the odc_resubst pass (its lut_inputs is overridden with
  /// decomp.lut_inputs when the pipeline is built).
  net::OdcOptions odc;
  /// When non-empty, write "<dump_net>.<index>-<pass>.blif" and ".dot"
  /// after every executed pipeline pass (pass-by-pass network states).
  std::string dump_net;
};

struct SynthesisResult {
  net::LutNetwork network;
  DecomposeStats stats;
  map::ClbResult clb_greedy;    ///< mulop-dc packing
  map::ClbResult clb_matching;  ///< mulop-dcII packing
  bool verified = false;        ///< true iff verification ran and passed
  /// Which degradation-ladder rung the run finished on, every downgrade
  /// event, and the rung each primary output was synthesized at.
  DegradationReport degradation;
  /// Pass-by-pass trail of the pipeline (skipped passes carry a
  /// skip_reason: "cached" on a flow-cache hit, "degraded" for optional
  /// passes dropped by the ladder).
  std::vector<net::PassStats> passes;
  double seconds = 0.0;
  /// Phase tree + counters + gauges of this run (see docs/OBSERVABILITY.md).
  /// `run` resets the process-wide registry at entry, so the report covers
  /// exactly this synthesis; BDD gauges are manager-lifetime totals.
  obs::Report report;
};

class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions opts = {}) : opts_(opts) {}

  const SynthesisOptions& options() const { return opts_; }

  /// Synthesizes a multi-output ISF; `pi_vars[i]` is the manager variable of
  /// primary input i. `circuit` names the run in errors and reports (a
  /// VerifyError from a long table sweep is attributable to its circuit).
  SynthesisResult run(std::vector<Isf> spec, const std::vector<int>& pi_vars,
                      const std::string& circuit = {}) const;

  /// Synthesizes a completely specified benchmark function.
  SynthesisResult run(const circuits::Benchmark& bench) const;

 private:
  SynthesisOptions opts_;
};

/// The paper's flows as option presets.
SynthesisOptions preset_mulop_dc(int lut_inputs = 5);   ///< full DC exploitation
SynthesisOptions preset_mulopII(int lut_inputs = 5);    ///< all DCs assigned 0
SynthesisOptions preset_noshare_nodc(int lut_inputs = 5);  ///< per-output, no DC

}  // namespace mfd
