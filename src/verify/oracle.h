// The differential oracle of the fuzz harness (docs/FUZZING.md).
//
// Given a generated TableSpec and a seed, the oracle derives a set of
// *option points* — full-flow configurations varying LUT size, bound-set
// seed, portfolio, pass set, jobs, cache on/off, and (occasionally) a node
// budget — runs the synthesizer at every point, and checks each emitted
// network independently of the flow's own verifier:
//   * exact admissibility on the care set (net::check_exact),
//   * simulation agreement (net::check_by_simulation, exhaustive at fuzz
//     sizes),
//   * BLIF export → re-parse → BDD equivalence (io round-trip),
// plus, once per spec, PLA round-trip idempotence (pla_from_isfs_exact must
// reproduce (on, care) verbatim; the lossy fd writer must stay admissible).
//
// Option points that promise determinism (same flow options; jobs and cache
// state vary) carry the same group tag and are cross-checked for bit-identical
// networks — the differential part: a miscompare is a bug even when both
// networks are admissible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/synthesizer.h"
#include "verify/specgen.h"

namespace mfd::verify {

/// One flow configuration the oracle runs.
struct OptionPoint {
  std::string label;
  SynthesisOptions opts;  // verify=false: the oracle checks independently
  bool cache_on = true;
  /// Points sharing a non-empty group promise bit-identical networks.
  std::string group;
};

struct OracleOptions {
  /// When >= 0, overrides boundset jobs at every point (the regression
  /// corpus replays at fixed jobs values).
  int jobs_override = -1;
  /// Run the PLA/BLIF round-trip checks (on by default).
  bool round_trip = true;
};

struct OracleResult {
  bool ok = true;
  std::string failure;        ///< empty when ok; else what went wrong
  std::string failing_point;  ///< label of the point that failed, if any
  int points_run = 0;
  int checks_run = 0;
};

/// Derives the option points for `seed` (deterministic; exposed so the
/// reproducer format can name them).
std::vector<OptionPoint> derive_option_points(std::uint64_t seed);

/// Runs every option point against `spec` and cross-checks determinism
/// groups. Reconfigures the process-wide cache per point and restores the
/// default configuration before returning. Never throws for spec-induced
/// failures — they come back in the result.
OracleResult run_oracle(const TableSpec& spec, std::uint64_t seed,
                        const OracleOptions& opts = {});

}  // namespace mfd::verify
