#include "net/lutnet.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

#include "core/errors.h"

namespace mfd::net {

LutNetwork::LutNetwork(int num_primary_inputs) : num_pi_(num_primary_inputs) {}

int LutNetwork::add_lut(Lut lut) {
  assert(lut.table.size() == (std::size_t{1} << lut.inputs.size()));
  const int signal = lut_signal(num_luts());
  for ([[maybe_unused]] int in : lut.inputs)
    assert(is_constant(in) || (in >= 0 && in < signal));
  luts_.push_back(std::move(lut));
  return signal;
}

void LutNetwork::add_output(int signal) {
  if (!is_valid_signal(signal))
    throw Error("LutNetwork::add_output: signal " + std::to_string(signal) +
                " is not a constant, primary input, or existing LUT (" +
                std::to_string(num_pi_) + " PIs, " + std::to_string(num_luts()) +
                " LUTs)");
  outputs_.push_back(signal);
}

void LutNetwork::replace_lut(int index, Lut lut) {
  if (index < 0 || index >= num_luts())
    throw Error("LutNetwork::replace_lut: LUT index " + std::to_string(index) +
                " out of range (" + std::to_string(num_luts()) + " LUTs)");
  if (lut.table.size() != (std::size_t{1} << lut.inputs.size()))
    throw Error("LutNetwork::replace_lut: table size " +
                std::to_string(lut.table.size()) + " does not match " +
                std::to_string(lut.inputs.size()) + " inputs");
  const int signal = lut_signal(index);
  for (int in : lut.inputs)
    if (!is_constant(in) && !(in >= 0 && in < signal))
      throw Error("LutNetwork::replace_lut: fanin " + std::to_string(in) +
                  " of LUT " + std::to_string(index) +
                  " is not a constant or a strictly earlier signal");
  luts_[static_cast<std::size_t>(index)] = std::move(lut);
}

void LutNetwork::set_output(int index, int signal) {
  if (index < 0 || index >= num_outputs())
    throw Error("LutNetwork::set_output: output index " + std::to_string(index) +
                " out of range (" + std::to_string(num_outputs()) + " outputs)");
  if (!is_valid_signal(signal))
    throw Error("LutNetwork::set_output: signal " + std::to_string(signal) +
                " is not a constant, primary input, or existing LUT (" +
                std::to_string(num_pi_) + " PIs, " + std::to_string(num_luts()) +
                " LUTs)");
  outputs_[static_cast<std::size_t>(index)] = signal;
}

std::vector<bool> LutNetwork::evaluate(const std::vector<bool>& pi_values) const {
  assert(static_cast<int>(pi_values.size()) == num_pi_);
  std::vector<bool> value(static_cast<std::size_t>(num_pi_ + num_luts()));
  for (int i = 0; i < num_pi_; ++i) value[i] = pi_values[i];

  auto signal_value = [&](int s) {
    if (s == kConst0) return false;
    if (s == kConst1) return true;
    return static_cast<bool>(value[s]);
  };

  for (int i = 0; i < num_luts(); ++i) {
    const Lut& lut = luts_[static_cast<std::size_t>(i)];
    std::size_t idx = 0;
    for (std::size_t j = 0; j < lut.inputs.size(); ++j)
      if (signal_value(lut.inputs[j])) idx |= std::size_t{1} << j;
    value[static_cast<std::size_t>(lut_signal(i))] = lut.table[idx];
  }

  std::vector<bool> out(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i) out[i] = signal_value(outputs_[i]);
  return out;
}

std::vector<bool> LutNetwork::live_luts() const {
  std::vector<bool> live(static_cast<std::size_t>(num_luts()), false);
  std::vector<int> stack;
  for (int s : outputs_)
    if (!is_constant(s) && !is_primary_input(s)) stack.push_back(s);
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    const int idx = lut_index(s);
    if (live[static_cast<std::size_t>(idx)]) continue;
    live[static_cast<std::size_t>(idx)] = true;
    for (int in : luts_[static_cast<std::size_t>(idx)].inputs)
      if (!is_constant(in) && !is_primary_input(in)) stack.push_back(in);
  }
  return live;
}

int LutNetwork::count_luts(int min_inputs) const {
  const auto live = live_luts();
  int count = 0;
  for (int i = 0; i < num_luts(); ++i)
    if (live[static_cast<std::size_t>(i)] &&
        static_cast<int>(luts_[static_cast<std::size_t>(i)].inputs.size()) >= min_inputs)
      ++count;
  return count;
}

int LutNetwork::count_gates() const {
  const auto live = live_luts();
  int count = 0;
  for (int i = 0; i < num_luts(); ++i) {
    if (!live[static_cast<std::size_t>(i)]) continue;
    const LutKind kind = classify(luts_[static_cast<std::size_t>(i)]);
    if (kind == LutKind::kGeneral) ++count;
  }
  return count;
}

int LutNetwork::depth() const {
  const auto live = live_luts();
  std::vector<int> level(static_cast<std::size_t>(num_pi_ + num_luts()), 0);
  int result = 0;
  for (int i = 0; i < num_luts(); ++i) {
    if (!live[static_cast<std::size_t>(i)]) continue;
    int d = 0;
    for (int in : luts_[static_cast<std::size_t>(i)].inputs)
      if (!is_constant(in)) d = std::max(d, level[static_cast<std::size_t>(in)]);
    level[static_cast<std::size_t>(lut_signal(i))] = d + 1;
    result = std::max(result, d + 1);
  }
  return result;
}

int LutNetwork::max_fanin() const {
  const auto live = live_luts();
  int result = 0;
  for (int i = 0; i < num_luts(); ++i)
    if (live[static_cast<std::size_t>(i)])
      result = std::max(result,
                        static_cast<int>(luts_[static_cast<std::size_t>(i)].inputs.size()));
  return result;
}

namespace {

/// Collapses repeated input signals: entries where the duplicated bits
/// disagree are unreachable, so the table restricts to the diagonal.
Lut collapse_duplicate_inputs(Lut lut) {
  for (std::size_t j = 0; j < lut.inputs.size(); ++j) {
    for (std::size_t k = j + 1; k < lut.inputs.size();) {
      if (lut.inputs[k] != lut.inputs[j]) {
        ++k;
        continue;
      }
      const std::size_t bit_k = std::size_t{1} << k;
      std::vector<bool> table(lut.table.size() / 2);
      for (std::size_t idx = 0; idx < table.size(); ++idx) {
        const std::size_t low = idx & (bit_k - 1);
        const std::size_t high = (idx & ~(bit_k - 1)) << 1;
        const std::size_t source = high | low;
        // Take the entry where bit k mirrors bit j.
        const bool bj = (source >> j) & 1;
        table[idx] = lut.table[source | (bj ? bit_k : 0)];
      }
      lut.table = std::move(table);
      lut.inputs.erase(lut.inputs.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  return lut;
}

}  // namespace

Lut LutNetwork::prune_inputs(Lut lut) {
  for (std::size_t j = 0; j < lut.inputs.size();) {
    const std::size_t bit = std::size_t{1} << j;
    bool essential = false;
    for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
      if ((idx & bit) == 0 && lut.table[idx] != lut.table[idx | bit]) {
        essential = true;
        break;
      }
    }
    if (essential) {
      ++j;
      continue;
    }
    // Remove input j: keep entries with bit j = 0, compacting the index.
    std::vector<bool> table(lut.table.size() / 2);
    for (std::size_t idx = 0; idx < table.size(); ++idx) {
      const std::size_t low = idx & (bit - 1);
      const std::size_t high = (idx & ~(bit - 1)) << 1;
      table[idx] = lut.table[high | low];
    }
    lut.table = std::move(table);
    lut.inputs.erase(lut.inputs.begin() + static_cast<std::ptrdiff_t>(j));
  }
  return lut;
}

LutKind LutNetwork::classify(const Lut& raw) {
  const Lut lut = prune_inputs(raw);
  if (lut.inputs.empty()) return LutKind::kConstant;
  if (lut.inputs.size() == 1) return lut.table[1] ? LutKind::kBuffer : LutKind::kInverter;
  return LutKind::kGeneral;
}

int LutNetwork::simplify() {
  const int before = num_luts();
  // Each round: one rewrite pass in topological order, then dead-code
  // elimination. DCE inside the loop is what guarantees termination:
  // replaced LUTs are physically removed, so they cannot re-trigger the
  // change flag in the next round.
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    // repl maps every signal to its canonical replacement (earlier signal or
    // constant). Processed in topological order, so one hop is transitive.
    std::vector<int> repl(static_cast<std::size_t>(num_pi_ + num_luts()));
    for (std::size_t s = 0; s < repl.size(); ++s) repl[s] = static_cast<int>(s);
    auto mapped = [&](int s) { return is_constant(s) ? s : repl[static_cast<std::size_t>(s)]; };

    std::map<std::pair<std::vector<int>, std::vector<bool>>, int> canonical;

    for (int i = 0; i < num_luts(); ++i) {
      Lut lut = luts_[static_cast<std::size_t>(i)];
      for (int& in : lut.inputs) in = mapped(in);

      // Absorb inverter fanins: flip the table axis and use the source.
      for (std::size_t j = 0; j < lut.inputs.size(); ++j) {
        const int in = lut.inputs[j];
        if (is_constant(in) || is_primary_input(in)) continue;
        const Lut& driver = luts_[static_cast<std::size_t>(lut_index(in))];
        if (driver.inputs.size() == 1 && !driver.table[1] && driver.table[0]) {
          lut.inputs[j] = driver.inputs[0];
          const std::size_t bit = std::size_t{1} << j;
          std::vector<bool> flipped(lut.table.size());
          for (std::size_t idx = 0; idx < lut.table.size(); ++idx)
            flipped[idx] = lut.table[idx ^ bit];
          lut.table = std::move(flipped);
          changed = true;
        }
      }

      // Fold constant inputs into the table.
      for (std::size_t j = 0; j < lut.inputs.size();) {
        if (!is_constant(lut.inputs[j])) {
          ++j;
          continue;
        }
        const bool v = lut.inputs[j] == kConst1;
        const std::size_t bit = std::size_t{1} << j;
        std::vector<bool> table(lut.table.size() / 2);
        for (std::size_t idx = 0; idx < table.size(); ++idx) {
          const std::size_t low = idx & (bit - 1);
          const std::size_t high = (idx & ~(bit - 1)) << 1;
          table[idx] = lut.table[high | low | (v ? bit : 0)];
        }
        lut.table = std::move(table);
        lut.inputs.erase(lut.inputs.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
      }

      lut = prune_inputs(collapse_duplicate_inputs(std::move(lut)));
      const int sig = lut_signal(i);

      if (lut.inputs.empty()) {
        repl[static_cast<std::size_t>(sig)] = lut.table[0] ? kConst1 : kConst0;
        changed = true;
        continue;
      }
      if (lut.inputs.size() == 1 && lut.table[1] && !lut.table[0]) {
        repl[static_cast<std::size_t>(sig)] = lut.inputs[0];  // buffer
        changed = true;
        continue;
      }
      const auto key = std::make_pair(lut.inputs, lut.table);
      auto [it, inserted] = canonical.emplace(key, sig);
      if (!inserted) {
        repl[static_cast<std::size_t>(sig)] = it->second;
        changed = true;
        continue;
      }
      if (lut.inputs != luts_[static_cast<std::size_t>(i)].inputs ||
          lut.table != luts_[static_cast<std::size_t>(i)].table)
        changed = true;
      luts_[static_cast<std::size_t>(i)] = std::move(lut);
    }
    for (int& s : outputs_) s = mapped(s);

    // Dead-code elimination with renumbering.
    const auto live = live_luts();
    std::vector<int> new_signal(static_cast<std::size_t>(num_pi_ + num_luts()), kConst0);
    for (int i = 0; i < num_pi_; ++i) new_signal[static_cast<std::size_t>(i)] = i;
    std::vector<Lut> kept;
    for (int i = 0; i < num_luts(); ++i) {
      if (!live[static_cast<std::size_t>(i)]) continue;
      Lut lut = luts_[static_cast<std::size_t>(i)];
      for (int& in : lut.inputs)
        if (!is_constant(in)) in = new_signal[static_cast<std::size_t>(in)];
      new_signal[static_cast<std::size_t>(lut_signal(i))] =
          num_pi_ + static_cast<int>(kept.size());
      kept.push_back(std::move(lut));
    }
    for (int& s : outputs_)
      if (!is_constant(s)) s = new_signal[static_cast<std::size_t>(s)];
    changed |= kept.size() != luts_.size();
    luts_ = std::move(kept);
    if (!changed) break;
  }
  return before - num_luts();
}

int LutNetwork::collapse(int max_inputs) {
  const int before = num_luts();
  for (int round = 0; round < 16; ++round) {
    // Fanout over LUT-driven signals (outputs count as extra fanout: the
    // feeder's value is observable, so it cannot disappear into a consumer).
    std::vector<int> fanout(static_cast<std::size_t>(num_luts()), 0);
    for (const Lut& lut : luts_)
      for (int in : lut.inputs)
        if (!is_constant(in) && !is_primary_input(in))
          ++fanout[static_cast<std::size_t>(lut_index(in))];
    for (int s : outputs_)
      if (!is_constant(s) && !is_primary_input(s))
        ++fanout[static_cast<std::size_t>(lut_index(s))];

    bool changed = false;
    for (int i = 0; i < num_luts(); ++i) {
      Lut& consumer = luts_[static_cast<std::size_t>(i)];
      for (std::size_t j = 0; j < consumer.inputs.size(); ++j) {
        const int in = consumer.inputs[j];
        if (is_constant(in) || is_primary_input(in)) continue;
        const int fi = lut_index(in);
        if (fanout[static_cast<std::size_t>(fi)] != 1) continue;
        const Lut& feeder = luts_[static_cast<std::size_t>(fi)];

        // Combined input set: consumer inputs minus the feeder signal, plus
        // the feeder's inputs.
        std::vector<int> merged;
        for (std::size_t jj = 0; jj < consumer.inputs.size(); ++jj)
          if (jj != j && std::find(merged.begin(), merged.end(), consumer.inputs[jj]) == merged.end())
            merged.push_back(consumer.inputs[jj]);
        for (int fin : feeder.inputs)
          if (std::find(merged.begin(), merged.end(), fin) == merged.end())
            merged.push_back(fin);
        if (static_cast<int>(merged.size()) > max_inputs) continue;

        // Rebuild the consumer's table over the merged inputs by evaluating
        // feeder-then-consumer for every assignment.
        Lut packed;
        packed.inputs = merged;
        packed.table.resize(std::size_t{1} << merged.size());
        for (std::size_t idx = 0; idx < packed.table.size(); ++idx) {
          auto value_of = [&](int signal) {
            if (signal == kConst0) return false;
            if (signal == kConst1) return true;
            for (std::size_t mi = 0; mi < merged.size(); ++mi)
              if (merged[mi] == signal) return static_cast<bool>((idx >> mi) & 1);
            return false;  // unreachable: all signals are in `merged`
          };
          std::size_t fidx = 0;
          for (std::size_t fj = 0; fj < feeder.inputs.size(); ++fj)
            if (value_of(feeder.inputs[fj])) fidx |= std::size_t{1} << fj;
          const bool fval = feeder.table[fidx];
          std::size_t cidx = 0;
          for (std::size_t cj = 0; cj < consumer.inputs.size(); ++cj) {
            const bool bit = cj == j ? fval : value_of(consumer.inputs[cj]);
            if (bit) cidx |= std::size_t{1} << cj;
          }
          packed.table[idx] = consumer.table[cidx];
        }
        consumer = std::move(packed);
        changed = true;
        break;  // consumer rebuilt; revisit it next round
      }
    }
    simplify();  // drop the absorbed feeders, fold constants, renumber
    if (!changed) break;
  }
  return before - num_luts();
}

std::string LutNetwork::to_string() const {
  std::ostringstream os;
  os << "LutNetwork: " << num_pi_ << " inputs, " << num_outputs() << " outputs, "
     << num_luts() << " LUTs (depth " << depth() << ", max fanin " << max_fanin()
     << ", " << count_gates() << " gates)";
  return os.str();
}

}  // namespace mfd::net
