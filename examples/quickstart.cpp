// Quickstart: decompose a small multi-output function into 5-input LUTs,
// verify the result exactly, pack it into XC3000 CLBs, and dump BLIF.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/synthesizer.h"
#include "io/blif.h"

int main() {
  using namespace mfd;

  // A 7-input, 3-output specification built directly from BDDs:
  // majority-of-five, a parity slice, and an interval detector.
  bdd::Manager m(7);
  std::vector<bdd::Bdd> bits;
  for (int i = 0; i < 7; ++i) bits.push_back(m.var(i));

  const circuits::Word count = circuits::count_ones(m, {bits.begin(), bits.begin() + 5});
  const bdd::Bdd majority5 = count[2] | (count[1] & count[0] & !count[2]);  // >= 3 of 5
  const bdd::Bdd parity = bits[2] ^ bits[3] ^ bits[4] ^ bits[5] ^ bits[6];
  const bdd::Bdd window = (bits[0] | bits[1]) & !(bits[5] & bits[6]);

  std::vector<Isf> spec{
      Isf::completely_specified(majority5),
      Isf::completely_specified(parity),
      Isf::completely_specified(window),
  };
  std::vector<int> pi_vars{0, 1, 2, 3, 4, 5, 6};

  // The full paper flow: 3-step don't-care assignment, shared decomposition
  // functions, recursive decomposition into 5-input LUTs.
  Synthesizer synth(preset_mulop_dc(5));
  const SynthesisResult result = synth.run(spec, pi_vars);

  std::printf("synthesized: %s\n", result.network.to_string().c_str());
  std::printf("verified against spec: %s\n", result.verified ? "yes" : "NO");
  std::printf("XC3000 CLBs: %d (greedy merge), %d (matching merge)\n",
              result.clb_greedy.num_clbs, result.clb_matching.num_clbs);
  std::printf("decomposition steps: %d, functions emitted: %ld (sum r_i = %ld)\n",
              result.stats.decomposition_steps,
              result.stats.total_decomposition_functions, result.stats.sum_r);
  // Sharing inside this run: decomposition functions reused across outputs
  // by the encoder pool and the alpha pool (docs/CACHING.md). A second
  // identical run() in this process would hit the flow-result cache — see
  // result.report counters cache.flow.hits / cache.multiplicity.hits.
  std::printf("encoder pool reuses: %ld, alpha pool reuses: %ld\n",
              result.stats.encoding_pool_hits, result.stats.alpha_pool_hits);

  std::printf("\nBLIF netlist:\n%s", io::write_blif(result.network, "quickstart").c_str());
  return result.verified ? 0 : 1;
}
