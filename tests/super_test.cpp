// Sweep-supervisor suite: crash-isolated child execution (super/proc.h), the
// journaled checkpoint/resume store (super/journal.h), retry planning
// (super/retry.h), and the supervisor that ties them together
// (super/supervisor.h). docs/ROBUSTNESS.md §"Sweep supervision" states the
// contracts under test:
//
//   * a child crash / hang / OOM costs one attempt, never the process;
//   * once append() returns, the outcome survives SIGKILL — recovery drops
//     at most the single torn trailing record and refuses anything worse;
//   * a resumed sweep replays journaled rows byte-identically and does not
//     re-run them;
//   * fault rules stay one-shot across the sweep even though each forked
//     child counts hits from zero.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/budget.h"
#include "core/errors.h"
#include "core/faultinject.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "super/journal.h"
#include "super/jsonv.h"
#include "super/proc.h"
#include "super/retry.h"
#include "super/scheduler.h"
#include "super/supervisor.h"

namespace mfd::super {
namespace {

// Unique scratch path per test, removed on scope exit (and pre-emptively on
// entry, in case a previous killed run left one behind).
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& tag)
      : path_("super_test." + tag + "." + std::to_string(::getpid()) + ".tmp") {
    std::remove(path_.c_str());
  }
  ~ScratchFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".fault-fired").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// CRC32 and the JSON reader
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckVector) {
  // The canonical CRC-32 check value (zlib, IEEE 802.3).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(JsonReader, ParsesScalarsObjectsAndArrays) {
  const JsonValue v = parse_json(
      R"({"s":"aA\n","i":-42,"d":2.5,"b":true,"n":null,"a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("s"), "aA\n");
  EXPECT_EQ(v.int_or("i"), -42);
  EXPECT_DOUBLE_EQ(v.double_or("d"), 2.5);
  EXPECT_TRUE(v.bool_or("b"));
  ASSERT_NE(v.find("a"), nullptr);
  ASSERT_EQ(v.find("a")->elements.size(), 3u);
  EXPECT_EQ(v.find("a")->elements[1].as_int(), 2);
  EXPECT_EQ(v.find("o")->string_or("k"), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, DecodesSurrogatePairs) {
  const JsonValue v = parse_json(R"({"smile":"😀"})");
  EXPECT_EQ(v.string_or("smile"), "\xF0\x9F\x98\x80");
}

TEST(JsonReader, AsIntRejectsValuesOutsideIntRange) {
  // as_int() used to cast as_int64() with silent truncation, so a journaled
  // 64-bit count could come back as garbage. Out-of-range now throws the
  // parser's typed error; in-range extremes still round-trip.
  const JsonValue v = parse_json(
      R"({"big":3000000000,"neg":-3000000000,"max":2147483647,"min":-2147483648})");
  EXPECT_THROW(v.find("big")->as_int(), Error);
  EXPECT_THROW(v.find("neg")->as_int(), Error);
  EXPECT_EQ(v.find("max")->as_int(), 2147483647);
  EXPECT_EQ(v.find("min")->as_int(), -2147483647 - 1);
  // The 64-bit accessor is untouched: the value itself is fine.
  EXPECT_EQ(v.find("big")->as_int64(), 3000000000LL);
}

TEST(JsonReader, RejectsTrailingGarbageAndTypeMismatch) {
  EXPECT_THROW(parse_json("{} x"), Error);
  EXPECT_THROW(parse_json("{\"a\":}"), Error);
  EXPECT_THROW(parse_json(""), Error);
  const JsonValue v = parse_json(R"({"i":1})");
  EXPECT_THROW(v.find("i")->as_string(), Error);
}

TEST(JsonReader, RoundTripsAnEscapedEmbeddedDocument) {
  // The journal stores each run document as an escaped JSON *string* field;
  // resume must get the exact bytes back.
  const std::string inner = R"({"circuit":"alu2","luts":22,"err":"a\"b\\c"})";
  obs::JsonWriter w;
  w.begin_object();
  w.key("row");
  w.value(inner);
  w.end_object();
  const JsonValue v = parse_json(w.str());
  EXPECT_EQ(v.string_or("row"), inner);
}

// ---------------------------------------------------------------------------
// Journal: durability + recovery
// ---------------------------------------------------------------------------

JournalRecord make_record(const std::string& key, const std::string& row_json) {
  JournalRecord rec;
  rec.key = key;
  rec.status = "ok";
  rec.attempts = 1;
  rec.outcome = "ok";
  rec.row_json = row_json;
  return rec;
}

TEST(Journal, RoundTripsRecordsThroughCreateAppendOpen) {
  ScratchFile f("roundtrip");
  {
    Journal j = Journal::create(f.path(), "super_test");
    j.append(make_record("alu2/mulop-dc", R"({"luts":22})"));
    JournalRecord failed;
    failed.key = "b9/mulopII";
    failed.status = "failed";
    failed.attempts = 3;
    failed.outcome = "crash";
    failed.reason = "child killed by SIGABRT (after 3 attempts)";
    j.append(failed);
  }
  RecoveryInfo info;
  Journal j = Journal::open(f.path(), &info);
  EXPECT_EQ(info.records, 2u);
  EXPECT_FALSE(info.dropped_torn_tail);
  ASSERT_NE(j.find("alu2/mulop-dc"), nullptr);
  EXPECT_EQ(j.find("alu2/mulop-dc")->row_json, R"({"luts":22})");
  ASSERT_NE(j.find("b9/mulopII"), nullptr);
  EXPECT_EQ(j.find("b9/mulopII")->status, "failed");
  EXPECT_EQ(j.find("b9/mulopII")->attempts, 3);
  EXPECT_EQ(j.find("b9/mulopII")->reason, "child killed by SIGABRT (after 3 attempts)");
  EXPECT_EQ(j.find("nope"), nullptr);
}

TEST(Journal, DuplicateKeysKeepTheFirstRecord) {
  ScratchFile f("dup");
  {
    Journal j = Journal::create(f.path());
    j.append(make_record("k", R"({"v":1})"));
    j.append(make_record("k", R"({"v":2})"));
  }
  Journal j = Journal::open(f.path());
  ASSERT_NE(j.find("k"), nullptr);
  EXPECT_EQ(j.find("k")->row_json, R"({"v":1})");
}

TEST(Journal, DropsATornTrailingRecordAndRecommitsTheFile) {
  ScratchFile f("torn");
  {
    Journal j = Journal::create(f.path());
    j.append(make_record("done", R"({"v":1})"));
  }
  // Simulate a child dying mid-append: half a line, no newline.
  const std::string intact = read_file(f.path());
  write_file(f.path(), intact + "deadbeef {\"type\":\"row\",\"key\":\"torn");
  RecoveryInfo info;
  {
    Journal j = Journal::open(f.path(), &info);
    EXPECT_TRUE(info.dropped_torn_tail);
    EXPECT_EQ(info.records, 1u);
    ASSERT_NE(j.find("done"), nullptr);
    EXPECT_EQ(j.find("done")->row_json, R"({"v":1})");
  }
  // Recovery recommitted the cleaned file: reopening again finds no damage.
  EXPECT_EQ(read_file(f.path()), intact);
  RecoveryInfo again;
  Journal::open(f.path(), &again);
  EXPECT_FALSE(again.dropped_torn_tail);
}

TEST(Journal, DropsATrailingRecordWithABadCrc) {
  ScratchFile f("badcrc-tail");
  {
    Journal j = Journal::create(f.path());
    j.append(make_record("done", R"({"v":1})"));
  }
  const std::string intact = read_file(f.path());
  // A complete line whose CRC does not match its payload (bits rotted in
  // flight): still only the tail, still recoverable.
  write_file(f.path(),
             intact + "00000000 {\"type\":\"row\",\"key\":\"x\",\"status\":\"ok\"}\n");
  RecoveryInfo info;
  Journal j = Journal::open(f.path(), &info);
  EXPECT_TRUE(info.dropped_torn_tail);
  EXPECT_EQ(info.records, 1u);
  EXPECT_EQ(j.find("x"), nullptr);
}

TEST(Journal, RejectsInteriorCorruption) {
  ScratchFile f("interior");
  {
    Journal j = Journal::create(f.path());
    j.append(make_record("a", R"({"v":1})"));
    j.append(make_record("b", R"({"v":2})"));
  }
  // Flip one byte inside the FIRST row record (not the tail): a torn append
  // cannot explain that, so recovery must refuse rather than guess.
  std::string bytes = read_file(f.path());
  const std::size_t pos = bytes.find("\"a\"");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 1] = 'z';
  write_file(f.path(), bytes);
  EXPECT_THROW(Journal::open(f.path()), Error);
}

TEST(Journal, RefusesAVersionMismatch) {
  ScratchFile f("version");
  // Craft a journal whose header is intact (valid CRC) but from the future.
  const std::string header =
      R"({"type":"header","format":"mfd-sweep-journal","version":2,"binary":"x"})";
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", crc32(header));
  write_file(f.path(), std::string(crc) + " " + header + "\n");
  EXPECT_THROW(Journal::open(f.path()), Error);

  const std::string alien = R"({"type":"header","format":"other-journal","version":1})";
  std::snprintf(crc, sizeof crc, "%08x", crc32(alien));
  write_file(f.path(), std::string(crc) + " " + alien + "\n");
  EXPECT_THROW(Journal::open(f.path()), Error);
}

// ---------------------------------------------------------------------------
// Child process runner: the exit-status taxonomy
// ---------------------------------------------------------------------------

TEST(ChildRunner, DeliversTheResultRecordVerbatim) {
  const std::string payload = "bytes \x01 with \"quotes\" and \n newlines";
  const ChildOutcome out = run_in_child([&] { return payload; }, {});
  EXPECT_EQ(out.status, ChildStatus::kOk);
  EXPECT_EQ(out.payload, payload);
  EXPECT_FALSE(out.soft_timeout);
  EXPECT_EQ(out.exit_code, 0);
}

TEST(ChildRunner, ClassifiesATypedErrorWithoutRetryableStatus) {
  const ChildOutcome out = run_in_child(
      []() -> std::string { throw Error("deterministic verdict"); }, {});
  EXPECT_EQ(out.status, ChildStatus::kError);
  EXPECT_NE(out.payload.find("deterministic verdict"), std::string::npos);
}

TEST(ChildRunner, ClassifiesAnAbortAsCrash) {
  const ChildOutcome out =
      run_in_child([]() -> std::string { std::abort(); }, {});
  EXPECT_EQ(out.status, ChildStatus::kCrash);
  EXPECT_EQ(out.term_signal, SIGABRT);
}

TEST(ChildRunner, ClassifiesBadAllocAsOom) {
  const ChildOutcome out =
      run_in_child([]() -> std::string { throw std::bad_alloc(); }, {});
  EXPECT_EQ(out.status, ChildStatus::kOom);
}

TEST(ChildRunner, EscalatesTheWatchdogToSigkillOnAHardHang) {
  ChildLimits limits;
  limits.watchdog_ms = 200.0;
  limits.grace_ms = 200.0;
  const ChildOutcome out = run_in_child(
      []() -> std::string {
        // Ignore the SIGTERM wind-down entirely: only SIGKILL ends this.
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(20));
      },
      limits);
  EXPECT_EQ(out.status, ChildStatus::kTimeout);
}

TEST(ChildRunner, SigtermWindDownStillDeliversAsSoftTimeout) {
  ChildLimits limits;
  limits.watchdog_ms = 150.0;
  limits.grace_ms = 5000.0;
  const ChildOutcome out = run_in_child(
      []() -> std::string {
        // A cooperative row: poll the same flag the degradation ladder
        // consults (the child's SIGTERM handler sets it) and finish early.
        while (!global_expire_requested())
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return "degraded-but-done";
      },
      limits);
  EXPECT_EQ(out.status, ChildStatus::kOk);
  EXPECT_TRUE(out.soft_timeout);
  EXPECT_EQ(out.payload, "degraded-but-done");
}

// ---------------------------------------------------------------------------
// SIGTERM wind-down plumbing (core/budget.h)
// ---------------------------------------------------------------------------

TEST(GlobalExpire, TripsEveryGovernorUntilCleared) {
  ResourceBudget b;  // no deadline at all
  ResourceGovernor gov(b);
  EXPECT_FALSE(gov.deadline_expired());
  request_global_expire();
  EXPECT_TRUE(gov.deadline_expired());
  EXPECT_THROW(gov.check_deadline("super_test"), BudgetExceeded);
  // Governors created after the request observe it too (the handler cannot
  // know which governor is live).
  ResourceGovernor late(b);
  EXPECT_TRUE(late.deadline_expired());
  clear_global_expire();
  EXPECT_FALSE(gov.deadline_expired());
  EXPECT_NO_THROW(gov.check_deadline("super_test"));
}

// ---------------------------------------------------------------------------
// Retry planning
// ---------------------------------------------------------------------------

TEST(RetryPlan, RetriesOnlyAbnormalDeaths) {
  RetryPolicy p;
  EXPECT_FALSE(plan_retry(p, ChildStatus::kOk, 1).retry);
  EXPECT_FALSE(plan_retry(p, ChildStatus::kError, 1).retry);
  EXPECT_TRUE(plan_retry(p, ChildStatus::kCrash, 1).retry);
  EXPECT_TRUE(plan_retry(p, ChildStatus::kTimeout, 1).retry);
  EXPECT_TRUE(plan_retry(p, ChildStatus::kOom, 1).retry);
}

TEST(RetryPlan, ExhaustsAfterMaxRetriesWithExponentialBackoff) {
  RetryPolicy p;  // max_retries = 2
  const RetryDecision d1 = plan_retry(p, ChildStatus::kCrash, 1);
  ASSERT_TRUE(d1.retry);
  EXPECT_DOUBLE_EQ(d1.delay_ms, 250.0);
  const RetryDecision d2 = plan_retry(p, ChildStatus::kCrash, 2);
  ASSERT_TRUE(d2.retry);
  EXPECT_DOUBLE_EQ(d2.delay_ms, 1000.0);
  EXPECT_FALSE(plan_retry(p, ChildStatus::kCrash, 3).retry);
}

TEST(RetryPlan, FirstRetryKeepsFullEffortThenTightens) {
  RetryPolicy p;
  const RetryDecision d1 = plan_retry(p, ChildStatus::kCrash, 1);
  // Full effort: a latched crash fault or transient OOM must reproduce the
  // original result bit-identically.
  EXPECT_DOUBLE_EQ(d1.rung.time_budget_ms, 0.0);
  EXPECT_EQ(d1.rung.node_budget, 0u);
  const RetryDecision d2 = plan_retry(p, ChildStatus::kCrash, 2);
  EXPECT_GT(d2.rung.time_budget_ms, 0.0);
  EXPECT_GT(d2.rung.node_budget, 0u);
}

// ---------------------------------------------------------------------------
// Supervisor: journaled resume + one-shot faults across children
// ---------------------------------------------------------------------------

SupervisorOptions fast_options(const std::string& journal_path) {
  SupervisorOptions o;
  o.journal_path = journal_path;
  o.binary = "super_test";
  o.retry.backoff_ms = 1.0;  // keep the suite fast
  o.retry.backoff_max_ms = 1.0;
  return o;
}

TEST(Supervisor, RequiresAJournalPath) {
  EXPECT_THROW(Supervisor(SupervisorOptions{}), Error);
}

TEST(Supervisor, ReplaysJournaledRowsInsteadOfReRunningThem) {
  ScratchFile f("resume");
  const std::string doc = R"({"circuit":"alu2","luts":22})";
  int runs = 0;
  {
    Supervisor sup(fast_options(f.path()));
    const RowOutcome out = sup.run_row("alu2/mulop-dc", [&](const RetryRung&) {
      ++runs;
      return doc;
    });
    EXPECT_TRUE(out.ok());
    EXPECT_FALSE(out.from_journal);
    // runs stays 0 in THIS process: the callback executed in the fork.
    EXPECT_EQ(runs, 0);
    EXPECT_EQ(out.payload, doc);
  }
  // A new supervisor with --resume (after, say, a SIGKILL) replays the row
  // byte-identically and never forks for it.
  SupervisorOptions o = fast_options(f.path());
  o.resume = true;
  Supervisor sup(o);
  const std::uint64_t resumed_before = obs::counter_value("super.resumed_rows");
  const RowOutcome out = sup.run_row("alu2/mulop-dc", [&](const RetryRung&) {
    ++runs;
    return std::string("never");
  });
  EXPECT_EQ(runs, 0);
  EXPECT_TRUE(out.from_journal);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.payload, doc);
  EXPECT_EQ(obs::counter_value("super.resumed_rows"), resumed_before + 1);
}

TEST(Supervisor, JournalsATypedErrorAsFailedWithoutRetrying) {
  ScratchFile f("typed");
  Supervisor sup(fast_options(f.path()));
  const RowOutcome out = sup.run_row("bad/row", [](const RetryRung&) -> std::string {
    throw Error("no such circuit");
  });
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.attempts, 1);  // deterministic: retrying would not help
  EXPECT_NE(out.reason.find("no such circuit"), std::string::npos);
  ASSERT_NE(sup.journal().find("bad/row"), nullptr);
  EXPECT_EQ(sup.journal().find("bad/row")->status, "failed");
}

TEST(Supervisor, CrashFaultFiresExactlyOnceAcrossTheSweep) {
  ScratchFile f("crash-once");
  // Arm a crash at the first hit of a real instrumented site, then hit that
  // site from the row callback. Attempt 1 aborts in its child; the child's
  // firing report must latch the rule in the parent so attempt 2 (and every
  // later row) runs clean.
  fault::configure("decomp.boundset@1:crash");
  const std::uint64_t crashes_before = obs::counter_value("super.crashes");
  const std::uint64_t retries_before = obs::counter_value("super.retries");
  {
    Supervisor sup(fast_options(f.path()));
    const RowOutcome out = sup.run_row("row/one", [](const RetryRung&) {
      fault::point("decomp.boundset");
      return std::string(R"({"v":1})");
    });
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.attempts, 2);
    EXPECT_EQ(out.payload, R"({"v":1})");
    const RowOutcome next = sup.run_row("row/two", [](const RetryRung&) {
      fault::point("decomp.boundset");  // hit 1 again in a fresh child
      return std::string(R"({"v":2})");
    });
    EXPECT_TRUE(next.ok());
    EXPECT_EQ(next.attempts, 1);  // the latched rule did not re-fire
  }
  fault::clear();
  EXPECT_EQ(obs::counter_value("super.crashes"), crashes_before + 1);
  EXPECT_EQ(obs::counter_value("super.retries"), retries_before + 1);
}

TEST(Supervisor, HangFaultIsCaughtByTheWatchdogExactlyOnce) {
  ScratchFile f("hang-once");
  fault::configure("decomp.boundset@1:hang");
  const std::uint64_t timeouts_before = obs::counter_value("super.timeouts");
  {
    SupervisorOptions o = fast_options(f.path());
    o.limits.watchdog_ms = 200.0;
    o.limits.grace_ms = 200.0;
    Supervisor sup(o);
    const RowOutcome out = sup.run_row("row/hang", [](const RetryRung&) {
      fault::point("decomp.boundset");
      return std::string(R"({"v":1})");
    });
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.attempts, 2);
  }
  fault::clear();
  EXPECT_EQ(obs::counter_value("super.timeouts"), timeouts_before + 1);
}

TEST(Supervisor, ExhaustedRetriesJournalAFailedRowThatResumeReplays) {
  ScratchFile f("exhaust");
  SupervisorOptions o = fast_options(f.path());
  o.retry.max_retries = 1;
  const std::uint64_t failed_before = obs::counter_value("super.failed_rows");
  {
    Supervisor sup(o);
    const RowOutcome out = sup.run_row(
        "always/crashes", [](const RetryRung&) -> std::string { std::abort(); });
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.attempts, 2);
    EXPECT_EQ(out.last_status, ChildStatus::kCrash);
  }
  EXPECT_EQ(obs::counter_value("super.failed_rows"), failed_before + 1);
  // The verdict is durable: a resume does not retry the poisoned row.
  o.resume = true;
  Supervisor sup(o);
  const RowOutcome replay = sup.run_row(
      "always/crashes", [](const RetryRung&) -> std::string { std::abort(); });
  EXPECT_TRUE(replay.from_journal);
  EXPECT_FALSE(replay.ok());
}

TEST(Supervisor, LaterRetriesTightenTheBudgetRung) {
  ScratchFile f("rungs");
  SupervisorOptions o = fast_options(f.path());
  o.retry.max_retries = 2;
  Supervisor sup(o);
  // The child reports the rung it was handed; crash unless it got clamps.
  const RowOutcome out = sup.run_row("tighten/me", [](const RetryRung& rung) {
    if (rung.node_budget == 0) std::abort();  // attempts 1 and 2 die
    return std::to_string(rung.node_budget);
  });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.payload, std::to_string(RetryPolicy().rungs[1].node_budget));
}

TEST(Supervisor, DoesNotClobberTheCallersFaultFiredFileEnv) {
  ScratchFile f("env");
  // A user (or an outer supervisor) may own MFD_FAULT_FIRED_FILE; the
  // supervisor must neither overwrite it in the parent nor unset it on
  // destruction. Children still get their own private file, set inside the
  // fork only.
  ::setenv("MFD_FAULT_FIRED_FILE", "user-owned.fired", 1);
  std::string child_env;
  {
    Supervisor sup(fast_options(f.path()));
    const char* during = std::getenv("MFD_FAULT_FIRED_FILE");
    ASSERT_NE(during, nullptr);
    EXPECT_STREQ(during, "user-owned.fired");
    const RowOutcome out = sup.run_row("env/probe", [](const RetryRung&) {
      const char* v = std::getenv("MFD_FAULT_FIRED_FILE");
      return std::string(v != nullptr ? v : "(unset)");
    });
    ASSERT_TRUE(out.ok());
    child_env = out.payload;
  }
  const char* after = std::getenv("MFD_FAULT_FIRED_FILE");
  ASSERT_NE(after, nullptr);
  EXPECT_STREQ(after, "user-owned.fired");
  ::unsetenv("MFD_FAULT_FIRED_FILE");
  // The child saw its per-child report file, not the user's.
  EXPECT_NE(child_env.find(".fault-fired."), std::string::npos);
  EXPECT_EQ(child_env.find("user-owned"), std::string::npos);
}

TEST(Supervisor, WarnsWhenResumeFindsNoJournal) {
  ScratchFile f("fresh-resume");  // guaranteed absent: ScratchFile removes it
  SupervisorOptions o = fast_options(f.path());
  o.resume = true;
  Supervisor sup(o);
  // The fresh-despite-resume condition is surfaced (the ctor also printed a
  // loud stderr warning naming the path), and the sweep starts from zero.
  EXPECT_TRUE(sup.recovery().fresh_despite_resume);
  EXPECT_EQ(sup.recovery().records, 0u);
  const RowOutcome out =
      sup.run_row("fresh/row", [](const RetryRung&) { return std::string("ran"); });
  EXPECT_FALSE(out.from_journal);
  EXPECT_TRUE(out.ok());

  // A genuine resume of the journal we just wrote does not warn.
  Supervisor again(o);
  EXPECT_FALSE(again.recovery().fresh_despite_resume);
  EXPECT_EQ(again.recovery().records, 1u);
}

TEST(Supervisor, LatchesAFiringReportedWithAVeryLongLine) {
  ScratchFile f("long-line");
  // A site name far beyond the old 512-byte fgets buffer: the firing report
  // line must be read whole, or the latch misses it and the one-shot rule
  // crashes the retry (and every later row) too.
  const std::string site = "decomp." + std::string(700, 'x');
  fault::configure(site + "@1:crash");
  {
    Supervisor sup(fast_options(f.path()));
    const RowOutcome out = sup.run_row("long/one", [&site](const RetryRung&) {
      fault::point(site.c_str());
      return std::string(R"({"v":1})");
    });
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.attempts, 2);  // crashed once, retried clean
    const RowOutcome next = sup.run_row("long/two", [&site](const RetryRung&) {
      fault::point(site.c_str());
      return std::string(R"({"v":2})");
    });
    EXPECT_TRUE(next.ok());
    EXPECT_EQ(next.attempts, 1);  // the latched rule did not re-fire
  }
  fault::clear();
}

// ---------------------------------------------------------------------------
// Scheduler: concurrent supervised rows (super/scheduler.h)
// ---------------------------------------------------------------------------

SchedulerOptions fast_scheduler_options(int jobs) {
  SchedulerOptions o;
  o.jobs = jobs;
  o.retry.backoff_ms = 1.0;  // keep the suite fast
  o.retry.backoff_max_ms = 1.0;
  return o;
}

TEST(Scheduler, ConcurrentSweepMatchesSequentialBitForBit) {
  const int kRows = 8;
  auto sweep = [&](int jobs) {
    Scheduler sched(fast_scheduler_options(jobs), nullptr);
    for (int i = 0; i < kRows; ++i) {
      const std::string key = "row/" + std::to_string(i);
      sched.enqueue(key, [key](const RetryRung&) {
        // Long enough that 4 children genuinely overlap.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return std::string(R"({"key":")") + key + R"("})";
      });
    }
    std::vector<RowOutcome> outs;
    for (int i = 0; i < kRows; ++i)
      outs.push_back(sched.wait("row/" + std::to_string(i)));
    return outs;
  };
  const std::vector<RowOutcome> seq = sweep(1);
  const std::vector<RowOutcome> con = sweep(4);
  ASSERT_EQ(seq.size(), con.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].key, con[i].key);
    EXPECT_EQ(seq[i].status, con[i].status);
    EXPECT_EQ(seq[i].attempts, con[i].attempts);
    EXPECT_EQ(seq[i].payload, con[i].payload);  // bit-identical documents
  }
  // The 4-job sweep really ran children concurrently.
  EXPECT_GE(obs::gauge_value("super.concurrent_peak"), 2.0);
}

TEST(Scheduler, RetryReentersTheQueueWhileOtherRowsRun) {
  ScratchFile f("sched-retry");
  fault::configure("decomp.boundset@1:crash");
  SchedulerOptions o = fast_scheduler_options(4);
  o.fired_file_base = f.path() + ".fault-fired";
  {
    Scheduler sched(o, nullptr);
    for (int i = 0; i < 4; ++i) {
      const std::string key = "row/" + std::to_string(i);
      sched.enqueue(key, [i](const RetryRung&) {
        if (i == 0) fault::point("decomp.boundset");  // crashes attempt 1
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return std::string(R"({"i":)") + std::to_string(i) + "}";
      });
    }
    sched.drain();
    const RowOutcome crashed = sched.wait("row/0");
    EXPECT_TRUE(crashed.ok());
    EXPECT_EQ(crashed.attempts, 2);  // died, re-entered the queue, re-ran
    EXPECT_EQ(crashed.payload, R"({"i":0})");
    for (int i = 1; i < 4; ++i) {
      const RowOutcome out = sched.wait("row/" + std::to_string(i));
      EXPECT_TRUE(out.ok());
      EXPECT_EQ(out.attempts, 1);  // untouched by row/0's crash and retry
    }
  }
  fault::clear();
}

TEST(Scheduler, AdmissionCapDefersSpawnsButCompletes) {
  // A 50 KiB cap is below any live child's resident set (even a fresh COW
  // fork reports a few hundred KB), so after the first spawn every further
  // admission is deferred until a slot drains — the sweep degrades to
  // sequential instead of deadlocking or thrashing.
  SchedulerOptions o = fast_scheduler_options(4);
  o.rss_cap_mb = 0.05;
  const std::uint64_t waits_before = obs::counter_value("super.admission_waits");
  Scheduler sched(o, nullptr);
  for (int i = 0; i < 4; ++i) {
    const std::string key = "row/" + std::to_string(i);
    sched.enqueue(key, [](const RetryRung&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return std::string("done");
    });
  }
  sched.drain();
  for (int i = 0; i < 4; ++i) {
    const RowOutcome out = sched.wait("row/" + std::to_string(i));
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.payload, "done");
  }
  EXPECT_GT(obs::counter_value("super.admission_waits"), waits_before);
}

TEST(Supervisor, ResumeReplaysJournaledRowsAndRunsTheRestConcurrently) {
  ScratchFile f("resume-concurrent");
  // First run: two rows complete, then the supervisor "dies" (goes out of
  // scope — a SIGKILL would leave the same journal, fsync'd per row).
  {
    Supervisor sup(fast_options(f.path()));
    for (int i = 0; i < 2; ++i) {
      const std::string key = "row/" + std::to_string(i);
      const RowOutcome out = sup.run_row(key, [key](const RetryRung&) {
        return std::string(R"({"key":")") + key + R"("})";
      });
      ASSERT_TRUE(out.ok());
    }
  }
  // Resume at 4 jobs with a 4-row plan: the journaled half replays without
  // forking, the rest runs concurrently.
  SupervisorOptions o = fast_options(f.path());
  o.resume = true;
  o.sweep_jobs = 4;
  Supervisor sup(o);
  EXPECT_EQ(sup.recovery().records, 2u);
  for (int i = 0; i < 4; ++i) {
    const std::string key = "row/" + std::to_string(i);
    sup.plan_row(key, [key](const RetryRung&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return std::string(R"({"key":")") + key + R"("})";
    });
  }
  for (int i = 0; i < 4; ++i) {
    const std::string key = "row/" + std::to_string(i);
    const RowOutcome out = sup.run_row(key, [key](const RetryRung&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return std::string(R"({"key":")") + key + R"("})";
    });
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.from_journal, i < 2);  // old rows replay, new rows run
    EXPECT_EQ(out.payload, std::string(R"({"key":")") + key + R"("})");
  }
}

}  // namespace
}  // namespace mfd::super
