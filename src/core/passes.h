// Concrete flow passes and the pipeline builder.
//
// The pass *interface* lives in net/passmgr.h with the IR; this header holds
// the passes that need the upper layers (decomposition, CLB packing) plus
// the registry that turns a `--passes` spec into a runnable PassPipeline.
#pragma once

#include <string>

#include "net/passmgr.h"

namespace mfd {

struct SynthesisOptions;

/// Runs the recursive decomposition portfolio and replaces the network with
/// the winning result. Requires ctx.spec, ctx.pi_vars, ctx.options and
/// ctx.governor; fills ctx.stats with the winner's statistics.
class DecomposePass final : public net::Pass {
 public:
  const char* name() const override { return "decompose"; }
  bool run(net::LutNetwork& net, net::PassContext& ctx) override;
};

/// XC3000 CLB packing, greedy and matching. Analysis-only: it fills
/// ctx.clb_greedy / ctx.clb_matching and never rewrites the network, so it
/// also runs when the network came out of the flow-result cache.
class PackPass final : public net::Pass {
 public:
  const char* name() const override { return "pack"; }
  bool mutates_network() const override { return false; }
  bool run(net::LutNetwork& net, net::PassContext& ctx) override;
};

/// The default pipeline: "decompose,simplify,odc_resubst,pack".
std::string default_pipeline_spec();

/// Builds a pipeline from `spec` (empty string = default pipeline),
/// resolving each name against the pass registry (decompose, simplify,
/// odc_resubst, pack). Throws mfd::Error on an unknown pass name or a
/// malformed spec.
net::PassPipeline build_pipeline(const std::string& spec,
                                 const SynthesisOptions& opts);

}  // namespace mfd
