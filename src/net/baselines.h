// Structural reference circuits from the paper's evaluation:
//  * the conditional-sum adder of Sklansky [22] — the hand-designed
//    comparison point of Figure 2 (90 two-input gates for 8 bits in the
//    paper's counting),
//  * the Wallace-tree multiplier [23] — the comparison point of Figure 3
//    (~10n^2 - 20n gates),
//  * a ripple-carry adder as a simple correctness anchor.
// All are built from two-input LUTs ("gates"); use LutNetwork::count_gates()
// for the gate counts reported in EXPERIMENTS.md.
#pragma once

#include "net/lutnet.h"

namespace mfd::net {

/// Small convenience layer for building gate-level networks.
class GateBuilder {
 public:
  explicit GateBuilder(LutNetwork& net) : net_(net) {}

  int and2(int a, int b) { return gate(a, b, {false, false, false, true}); }
  int or2(int a, int b) { return gate(a, b, {false, true, true, true}); }
  int xor2(int a, int b) { return gate(a, b, {false, true, true, false}); }
  int xnor2(int a, int b) { return gate(a, b, {true, false, false, true}); }
  int nand2(int a, int b) { return gate(a, b, {true, true, true, false}); }
  int nor2(int a, int b) { return gate(a, b, {true, false, false, false}); }
  int andn2(int a, int b) { return gate(a, b, {false, true, false, false}); }  // a & !b
  int inv(int a) { return net_.add_lut({{a}, {true, false}}); }
  /// sel ? d1 : d0, expanded into three two-input gates.
  int mux(int sel, int d1, int d0);
  /// Full adder; returns {sum, carry} (5 gates).
  std::pair<int, int> full_adder(int a, int b, int cin);
  /// Half adder; returns {sum, carry} (2 gates).
  std::pair<int, int> half_adder(int a, int b);

 private:
  int gate(int a, int b, std::vector<bool> table) {
    return net_.add_lut({{a, b}, std::move(table)});
  }
  LutNetwork& net_;
};

/// n-bit conditional-sum adder. Primary inputs: a0..a(n-1), b0..b(n-1)
/// (PI index i = a_i, n + i = b_i). Outputs: sum bits s0..s(n-1), carry out.
/// n must be a power of two (the classic block-doubling scheme).
LutNetwork conditional_sum_adder(int n);

/// n-bit ripple-carry adder with the same interface.
LutNetwork ripple_carry_adder(int n);

/// Wallace-tree reduction over the n*n partial-product *inputs* p(i,j)
/// (PI index i*n + j, weight i+j), i.e. the pm_n "partial multiplier" of the
/// paper's Section 6.1. Outputs the 2n product bits.
LutNetwork wallace_tree_pp(int n);

}  // namespace mfd::net
