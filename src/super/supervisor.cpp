#include "super/supervisor.h"

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/errors.h"
#include "obs/obs.h"

namespace mfd::super {
namespace {

bool file_exists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

Journal make_journal(const SupervisorOptions& opts, RecoveryInfo* info) {
  if (opts.journal_path.empty())
    throw Error("supervisor: a journal path is required (--journal)");
  if (opts.resume) {
    if (file_exists(opts.journal_path))
      return Journal::open(opts.journal_path, info);
    // A missing journal under --resume is more likely a typo'd path than a
    // deliberate first run: proceed, but make it impossible to miss.
    std::fprintf(stderr,
                 "supervisor: WARNING: --resume requested but no journal "
                 "exists at %s; starting a FRESH sweep (every row will "
                 "re-run). Check the --journal path if you expected to "
                 "resume.\n",
                 opts.journal_path.c_str());
    info->fresh_despite_resume = true;
  }
  return Journal::create(opts.journal_path, opts.binary);
}

SchedulerOptions make_scheduler_options(const SupervisorOptions& opts) {
  SchedulerOptions s;
  s.jobs = opts.sweep_jobs;
  s.rss_cap_mb = opts.rss_cap_mb;
  s.limits = opts.limits;
  s.retry = opts.retry;
  // Per-child fault-firing report files. The parent pid keeps a resumed
  // sweep's files distinct from a SIGKILLed predecessor's leftovers.
  s.fired_file_base =
      opts.journal_path + ".fault-fired." + std::to_string(::getpid());
  return s;
}

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& opts)
    : opts_(opts),
      journal_(make_journal(opts, &recovery_)),
      scheduler_(make_scheduler_options(opts), &journal_) {
  if (recovery_.dropped_torn_tail)
    std::fprintf(stderr,
                 "supervisor: journal %s had a torn last record (dropped; that "
                 "row will re-run)\n",
                 journal_.path().c_str());
}

Supervisor::~Supervisor() = default;

void Supervisor::plan_row(const std::string& key, RowFn fn) {
  if (journal_.find(key) != nullptr) return;  // run_row will replay it
  scheduler_.enqueue(key, std::move(fn));
}

RowOutcome Supervisor::run_row(const std::string& key, const RowFn& fn) {
  // A key the scheduler knows was planned (or run) in THIS process — its
  // outcome comes from wait(), even though it is already journaled by the
  // time we harvest it (completion-order appends can run ahead of harvest
  // order under --sweep-jobs). Only keys journaled by a *previous* process
  // count as resumed.
  if (!scheduler_.known(key)) {
    if (const JournalRecord* rec = journal_.find(key)) {
      obs::add("super.resumed_rows");
      RowOutcome out;
      out.key = key;
      out.from_journal = true;
      out.status = rec->status;
      out.attempts = rec->attempts;
      out.payload = rec->row_json;
      out.reason = rec->reason;
      return out;
    }
    scheduler_.enqueue(key, fn);
  }
  return scheduler_.wait(key);
}

}  // namespace mfd::super
