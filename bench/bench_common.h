// Shared helpers for the experiment harness binaries (one per paper
// table/figure, see DESIGN.md's per-experiment index).
//
// Every binary supports `--stats-json <path>` (or `--stats-json=<path>`):
// each run_flow() call is recorded with its full observability report and
// the collected records are written as one JSON document at exit. Call
// init_stats() before benchmark::Initialize (it strips the flag from argv)
// and write_stats_json() before returning from main.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuits/circuits.h"
#include "core/synthesizer.h"
#include "obs/json.h"

namespace mfd::bench {

struct FlowRun {
  std::string circuit;
  std::string flow;  ///< preset label ("mulop-dc", "mulopII", ...), may be empty
  int inputs = 0;
  int outputs = 0;
  int luts = 0;
  int clb_greedy = 0;
  int clb_matching = 0;
  int gates = 0;
  int depth = 0;
  DecomposeStats stats;
  double seconds = 0.0;
  obs::Report report;  ///< phase tree + counters + gauges of this run
};

namespace detail {

struct StatsSink {
  std::string path;    // empty until --stats-json is seen
  std::string binary;  // argv[0] basename
  std::vector<std::string> rows;  // pre-serialized FlowRun objects
};

inline StatsSink& sink() {
  static StatsSink s;
  return s;
}

inline std::string flow_run_json(const FlowRun& row) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("circuit").value(row.circuit);
  w.key("flow").value(row.flow);
  w.key("inputs").value(row.inputs);
  w.key("outputs").value(row.outputs);
  w.key("luts").value(row.luts);
  w.key("clb_greedy").value(row.clb_greedy);
  w.key("clb_matching").value(row.clb_matching);
  w.key("gates").value(row.gates);
  w.key("depth").value(row.depth);
  w.key("seconds").value(row.seconds);
  w.key("decompose").begin_object();
  w.key("steps").value(row.stats.decomposition_steps);
  w.key("shannon_fallbacks").value(row.stats.shannon_fallbacks);
  w.key("functions").value(static_cast<std::int64_t>(row.stats.total_decomposition_functions));
  w.key("sum_r").value(static_cast<std::int64_t>(row.stats.sum_r));
  w.key("symmetrized_pairs").value(row.stats.symmetrized_pairs);
  w.key("max_depth").value(row.stats.max_depth);
  w.key("bdd_mux_fallbacks").value(row.stats.bdd_mux_fallbacks);
  w.end_object();
  w.key("report").raw(row.report.to_json());
  w.end_object();
  return w.str();
}

}  // namespace detail

/// Strips `--stats-json <path>` / `--stats-json=<path>` from argv (so the
/// flag never reaches benchmark::Initialize) and remembers the output path.
inline void init_stats(int* argc, char** argv) {
  detail::StatsSink& s = detail::sink();
  if (*argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    s.binary = slash != nullptr ? slash + 1 : argv[0];
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stats-json") == 0 && i + 1 < *argc) {
      s.path = argv[++i];
    } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
      s.path = arg + 13;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Records a completed flow run for --stats-json output (no-op when the flag
/// was not given). run_flow() calls this automatically.
inline void record_run(const FlowRun& row) {
  detail::StatsSink& s = detail::sink();
  if (s.path.empty()) return;
  s.rows.push_back(detail::flow_run_json(row));
}

/// Writes the collected records to the --stats-json path, if one was given.
/// Safe to call unconditionally at the end of main.
inline void write_stats_json() {
  const detail::StatsSink& s = detail::sink();
  if (s.path.empty()) return;
  obs::JsonWriter w;
  w.begin_object();
  w.key("binary").value(s.binary);
  w.key("runs").begin_array();
  for (const std::string& row : s.rows) w.raw(row);
  w.end_array();
  w.end_object();
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", s.path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("stats written to %s (%zu runs)\n", s.path.c_str(), s.rows.size());
}

/// Runs one synthesis flow on a named benchmark in a fresh manager.
inline FlowRun run_flow(const std::string& name, const SynthesisOptions& opts,
                        const std::string& flow = "") {
  bdd::Manager m;
  const circuits::Benchmark bench = circuits::build(name, m);
  Synthesizer synth(opts);
  const SynthesisResult r = synth.run(bench);
  FlowRun row;
  row.circuit = name;
  row.flow = flow;
  row.inputs = bench.num_inputs;
  row.outputs = static_cast<int>(bench.outputs.size());
  row.luts = r.network.count_luts();
  row.clb_greedy = r.clb_greedy.num_clbs;
  row.clb_matching = r.clb_matching.num_clbs;
  row.gates = r.network.count_gates();
  row.depth = r.network.depth();
  row.stats = r.stats;
  row.seconds = r.seconds;
  row.report = r.report;
  record_run(row);
  return row;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mfd::bench
