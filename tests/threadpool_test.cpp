// Unit tests of the worker pool: index coverage, slot discipline, inline
// fallbacks, exception semantics (lowest-index rethrow, cooperative
// cancellation), and the governor integration the bound-set evaluator relies
// on — a BudgetExceeded tripped mid-evaluation by one worker must drain the
// pool and resurface on the caller, leaving the pool reusable.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "circuits/circuits.h"
#include "core/budget.h"
#include "core/errors.h"
#include "decomp/boundset.h"
#include "isf/isf.h"
#include "util/threadpool.h"

namespace mfd {
namespace {

using util::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool;
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each(kN, 8, [&](std::size_t i, int) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SlotsAreWithinBoundsAndStable) {
  ThreadPool pool;
  constexpr int kPar = 4;
  std::vector<std::atomic<int>> slot_hits(kPar);
  pool.for_each(200, kPar, [&](std::size_t, int slot) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, kPar);
    slot_hits[static_cast<std::size_t>(slot)].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (const auto& s : slot_hits) total += s.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPool, SerialParallelismRunsInlineInOrder) {
  ThreadPool pool;
  const std::thread::id me = std::this_thread::get_id();
  std::vector<std::size_t> seen;
  pool.for_each(10, 1, [&](std::size_t i, int slot) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    EXPECT_EQ(slot, 0);
    seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPool, NestedForEachRunsInlineOnTheTaskThread) {
  ThreadPool pool;
  std::atomic<int> inner_total{0};
  pool.for_each(4, 4, [&](std::size_t, int) {
    const std::thread::id outer = std::this_thread::get_id();
    // A nested call must not wait on workers that may all be busy in the
    // enclosing call — it runs inline on this task's thread.
    pool.for_each(8, 4, [&](std::size_t, int slot) {
      EXPECT_EQ(std::this_thread::get_id(), outer);
      EXPECT_EQ(slot, 0);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool;
  bool ran = false;
  pool.for_each(0, 8, [&](std::size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, LowestIndexExceptionIsRethrown) {
  ThreadPool pool;
  // Every task throws its own index; index 0 is always claimed first, so the
  // lowest-index rule makes the surviving exception deterministic.
  try {
    pool.for_each(64, 4, [](std::size_t i, int) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "no exception propagated";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPool, UsableAfterAnException) {
  ThreadPool pool;
  EXPECT_THROW(pool.for_each(16, 4,
                             [](std::size_t i, int) {
                               if (i == 0) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.for_each(32, 4, [&](std::size_t, int) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, CancellationSkipsTasksAfterAnEarlyThrow) {
  ThreadPool pool;
  // Serial inline path gives exact semantics: the throw at index 3 must
  // prevent indices 4.. from ever running.
  std::vector<std::size_t> seen;
  EXPECT_THROW(pool.for_each(100, 1,
                             [&](std::size_t i, int) {
                               if (i == 3) throw std::runtime_error("stop");
                               seen.push_back(i);
                             }),
               std::runtime_error);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, SharedGovernorTripsOnceAndCancelsThePool) {
  ThreadPool pool;
  ResourceBudget b;
  b.op_ceiling = 1000;
  ResourceGovernor gov(b);
  // All workers draw from the one atomic op budget; whichever crosses the
  // ceiling throws, the pool drains cooperatively, and exactly one
  // BudgetExceeded reaches the caller.
  std::atomic<int> trips{0};
  try {
    pool.for_each(64, 4, [&](std::size_t, int) {
      try {
        for (int k = 0; k < 100; ++k) gov.charge_mk(1);
      } catch (const BudgetExceeded&) {
        trips.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
    });
    FAIL() << "op budget never tripped";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kOps);
  }
  EXPECT_GE(trips.load(), 1);
  EXPECT_GT(gov.ops_used(), 1000u);
}

// The ISSUE's cancellation-mid-evaluation scenario: a parallel bound-set
// search under a node budget so tight that candidate evaluation cannot
// finish. The BudgetExceeded raised inside a worker's private manager must
// surface from select_bound_set exactly like the serial trip, and both the
// pool and an unbudgeted search must work afterwards.
TEST(ThreadPool, BoundSetSearchCancelsMidEvaluationUnderTightNodeBudget) {
  bdd::Manager m(8);
  const circuits::Benchmark bench = circuits::adder(m, 4);
  std::vector<Isf> fns;
  for (const bdd::Bdd& f : bench.outputs) fns.push_back(Isf::completely_specified(f));
  const std::vector<int> order{0, 1, 2, 3, 4, 5, 6, 7};

  BoundSetOptions opts;
  opts.jobs = 4;
  {
    ResourceBudget tight;
    tight.node_ceiling = 40;  // the adder spec alone is bigger than this
    ResourceGovernor gov(tight);
    ResourceGovernor::Scope scope(gov);
    bdd::Manager* mp = &m;
    ResourceGovernor* prev = mp->set_governor(&gov);
    EXPECT_THROW(select_bound_set(fns, order, 4, opts), BudgetExceeded);
    mp->set_governor(prev);
  }
  // No governor: the same parallel search completes and finds a bound set.
  const BoundSetChoice c = select_bound_set(fns, order, 4, opts);
  EXPECT_FALSE(c.vars.empty());
  // And the global pool is still healthy after the cancelled run.
  std::atomic<int> count{0};
  ThreadPool::global().for_each(16, 4, [&](std::size_t, int) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace mfd
