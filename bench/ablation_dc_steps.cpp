// Ablation A (DESIGN.md): contribution of each don't-care assignment step.
//
// The paper argues the three steps are *compatible* (later steps never undo
// earlier ones) and each contributes: symmetries (step 1) shrink
// decomposition-function counts recursively, the joint assignment (step 2)
// enables sharing, and the per-output assignment (step 3) minimizes each
// ncc. We toggle each step independently on a representative subset.
#include <map>

#include "bench_common.h"

namespace {

using mfd::bench::run_flow;

const std::vector<std::string> kCircuits{"5xp1", "rd84", "alu2", "clip",
                                         "misex1", "z4ml", "sao2", "f51m"};

struct Config {
  const char* label;
  bool s1, s2, s3;
};

const Config kConfigs[] = {
    {"none", false, false, false},  // DCs still propagated, never assigned
    {"s1", true, false, false},
    {"s2", false, true, false},
    {"s3", false, false, true},
    {"s2+s3", false, true, true},
    {"all", true, true, true},
};

std::map<std::string, std::map<std::string, int>> g_rows;  // circuit -> label -> clbs

mfd::SynthesisOptions config_options(const Config& cfg) {
  mfd::SynthesisOptions opts = mfd::preset_mulop_dc(5);
  opts.decomp.dc_symmetrize = cfg.s1;
  opts.decomp.dc_joint = cfg.s2;
  opts.decomp.dc_per_output = cfg.s3;
  return opts;
}

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    for (const Config& cfg : kConfigs) {
      const auto row = run_flow(name, config_options(cfg), cfg.label);
      g_rows[name][cfg.label] = row.clb_greedy;
      state.counters[cfg.label] = row.clb_greedy;
    }
  }
}

void print_table() {
  std::printf("\nAblation A: CLB counts with individual DC-assignment steps\n");
  std::printf("(s1 = symmetrization, s2 = joint/sharing, s3 = per-output).\n");
  std::printf("'none' still *propagates* DCs but never assigns them.\n\n");
  std::printf("%-8s |", "circuit");
  for (const Config& cfg : kConfigs) std::printf(" %6s", cfg.label);
  std::printf("\n");
  mfd::bench::print_rule(56);
  std::map<std::string, long> totals;
  for (const auto& [name, cols] : g_rows) {
    std::printf("%-8s |", name.c_str());
    for (const Config& cfg : kConfigs) {
      std::printf(" %6d", cols.at(cfg.label));
      totals[cfg.label] += cols.at(cfg.label);
    }
    std::printf("\n");
  }
  mfd::bench::print_rule(56);
  std::printf("%-8s |", "total");
  for (const Config& cfg : kConfigs) std::printf(" %6ld", totals[cfg.label]);
  std::printf("\n\nshape check: 'all' <= each single step <= 'none' (approximately;\n");
  std::printf("individual steps may interact on small circuits).\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : kCircuits)
    benchmark::RegisterBenchmark(("ablationA/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
