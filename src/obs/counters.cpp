#include "obs/obs.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace mfd::obs {
namespace {

// MFD_OBS_DISABLED=1 turns the whole layer into a no-op from the
// environment (the overhead A/B knob; set_enabled can still flip it back).
std::atomic<bool> g_enabled{std::getenv("MFD_OBS_DISABLED") == nullptr};

// Transparent comparison so string_view lookups never allocate.
using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
using GaugeMap = std::map<std::string, double, std::less<>>;

std::mutex& mutex() {
  static std::mutex mu;
  return mu;
}

CounterMap& counters() {
  static CounterMap m;
  return m;
}

GaugeMap& gauges() {
  static GaugeMap m;
  return m;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex());
  CounterMap& m = counters();
  const auto it = m.find(name);
  if (it == m.end())
    m.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex());
  GaugeMap& m = gauges();
  const auto it = m.find(name);
  if (it == m.end())
    m.emplace(std::string(name), value);
  else
    it->second = value;
}

void gauge_max(std::string_view name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex());
  GaugeMap& m = gauges();
  const auto it = m.find(name);
  if (it == m.end())
    m.emplace(std::string(name), value);
  else if (value > it->second)
    it->second = value;
}

std::uint64_t counter_value(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex());
  const CounterMap& m = counters();
  const auto it = m.find(name);
  return it == m.end() ? 0 : it->second;
}

double gauge_value(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex());
  const GaugeMap& m = gauges();
  const auto it = m.find(name);
  return it == m.end() ? 0.0 : it->second;
}

namespace detail {

// Internal: snapshot / reset of the scalar tables (used by report.cpp).
void snapshot_scalars(std::map<std::string, std::uint64_t>* out_counters,
                      std::map<std::string, double>* out_gauges) {
  std::lock_guard<std::mutex> lock(mutex());
  out_counters->clear();
  out_gauges->clear();
  for (const auto& [k, v] : counters()) out_counters->emplace(k, v);
  for (const auto& [k, v] : gauges()) out_gauges->emplace(k, v);
}

void reset_scalars() {
  std::lock_guard<std::mutex> lock(mutex());
  counters().clear();
  gauges().clear();
}

}  // namespace detail

}  // namespace mfd::obs
