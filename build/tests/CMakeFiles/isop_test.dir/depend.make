# Empty dependencies file for isop_test.
# This may be replaced when dependencies are built.
