// Small random-function builders for the benchmark harness (kept separate
// from tests/testlib.h so bench binaries do not depend on the test tree).
#pragma once

#include <cmath>

#include "bdd/bdd.h"
#include "util/rng.h"

namespace mfd::bench_shim {

/// Random cube-union function over n variables.
inline bdd::Bdd random_function(bdd::Manager& m, Rng& rng, int n, int cubes) {
  bdd::Bdd f = m.bdd_false();
  for (int c = 0; c < cubes; ++c) {
    bdd::Bdd cube = m.bdd_true();
    for (int v = 0; v < n; ++v)
      if (rng.chance(1, 3)) cube &= m.literal(v, rng.flip());
    f |= cube;
  }
  return f;
}

/// A set covering roughly `percent` of the input space, built from cubes so
/// it has structure a DC-assignment heuristic can exploit.
inline bdd::Bdd random_density(bdd::Manager& m, Rng& rng, int n, int percent) {
  if (percent <= 0) return m.bdd_false();
  bdd::Bdd set = m.bdd_false();
  // Each literal halves a cube's density; aim cubes at ~6% each and add
  // until the target is reached.
  while (m.sat_count(set.id(), n) * 100.0 < percent * std::ldexp(1.0, n)) {
    bdd::Bdd cube = m.bdd_true();
    for (int lit = 0; lit < 4; ++lit) cube &= m.literal(rng.range(0, n - 1), rng.flip());
    set |= cube;
  }
  return set;
}

}  // namespace mfd::bench_shim
