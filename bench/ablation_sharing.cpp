// Ablation B (DESIGN.md): common decomposition functions across outputs
// ([21], Section 3) on vs off, and what sharing saves in emitted
// decomposition functions and CLBs.
#include <map>

#include "bench_common.h"

namespace {

using mfd::bench::FlowRun;
using mfd::bench::run_flow;

const std::vector<std::string> kCircuits{"5xp1", "rd73", "rd84", "z4ml",
                                         "alu2", "count", "misex1", "f51m"};

std::map<std::string, std::pair<FlowRun, FlowRun>> g_rows;

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    mfd::SynthesisOptions share = mfd::preset_mulop_dc(5);
    mfd::SynthesisOptions noshare = share;
    noshare.decomp.share_functions = false;
    const FlowRun with = run_flow(name, share, "share");
    const FlowRun without = run_flow(name, noshare, "noshare");
    g_rows[name] = {with, without};
    state.counters["clb_share"] = with.clb_greedy;
    state.counters["clb_noshare"] = without.clb_greedy;
  }
}

void print_table() {
  std::printf("\nAblation B: shared vs per-output decomposition functions.\n");
  std::printf("'alpha' = decomposition functions emitted; 'saved' = sum r_i - alpha\n");
  std::printf("(what the common-function computation shares).\n\n");
  std::printf("%-8s | %5s %5s %5s | %5s %5s | %6s\n", "circuit", "clbS", "clbN",
               "ratio", "alpha", "saved", "sum_r");
  mfd::bench::print_rule(60);
  long tot_s = 0, tot_n = 0;
  for (const auto& [name, rows] : g_rows) {
    const auto& [with, without] = rows;
    tot_s += with.clb_greedy;
    tot_n += without.clb_greedy;
    std::printf("%-8s | %5d %5d %4.0f%% | %5ld %5ld | %6ld\n", name.c_str(),
                 with.clb_greedy, without.clb_greedy,
                 100.0 * with.clb_greedy / std::max(1, without.clb_greedy),
                 with.stats.total_decomposition_functions,
                 with.stats.sum_r - with.stats.total_decomposition_functions,
                 with.stats.sum_r);
  }
  mfd::bench::print_rule(60);
  std::printf("%-8s | %5ld %5ld\n", "total", tot_s, tot_n);
  std::printf("\nshape check: sharing never hurts, helps most on multi-output\n");
  std::printf("circuits with correlated outputs (adders, counters).\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : kCircuits)
    benchmark::RegisterBenchmark(("ablationB/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
