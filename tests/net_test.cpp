// LUT network IR: evaluation, analysis, structural simplification, and the
// structural baseline generators (conditional-sum adder, Wallace tree).
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "core/budget.h"
#include "core/errors.h"
#include "core/passes.h"
#include "core/synthesizer.h"
#include "io/blif.h"
#include "net/baselines.h"
#include "net/lutnet.h"
#include "net/odc_resubst.h"
#include "net/passmgr.h"
#include "net/simulate.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd::net {
namespace {

Lut and2(int a, int b) { return {{a, b}, {false, false, false, true}}; }
Lut or2(int a, int b) { return {{a, b}, {false, true, true, true}}; }
Lut xor2(int a, int b) { return {{a, b}, {false, true, true, false}}; }
Lut inv(int a) { return {{a}, {true, false}}; }
Lut buf(int a) { return {{a}, {false, true}}; }

/// A random LUT network over `n` primary inputs with `gates` LUTs of fanin
/// 1..3 and `num_outputs` outputs drawn from arbitrary signals (shared by
/// the simplify/collapse/odc behaviour-preservation tests).
LutNetwork random_network(Rng& rng, int n, int gates, int num_outputs) {
  LutNetwork net(n);
  std::vector<int> signals;
  for (int i = 0; i < n; ++i) signals.push_back(i);
  signals.push_back(kConst0);
  signals.push_back(kConst1);
  for (int g = 0; g < gates; ++g) {
    const int k = rng.range(1, 3);
    Lut lut;
    for (int j = 0; j < k; ++j)
      lut.inputs.push_back(signals[static_cast<std::size_t>(rng.below(signals.size()))]);
    lut.table.resize(std::size_t{1} << k);
    for (auto&& bit : lut.table) bit = rng.flip();
    signals.push_back(net.add_lut(std::move(lut)));
  }
  for (int o = 0; o < num_outputs; ++o)
    net.add_output(signals[static_cast<std::size_t>(rng.below(signals.size()))]);
  return net;
}

/// Exhaustive truth table of every output (n must be small).
std::vector<std::vector<bool>> exhaustive(const LutNetwork& net, int n) {
  std::vector<std::vector<bool>> rows;
  std::vector<bool> pis(static_cast<std::size_t>(n));
  for (std::uint32_t v = 0; v < (1u << n); ++v) {
    for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = (v >> i) & 1;
    rows.push_back(net.evaluate(pis));
  }
  return rows;
}

TEST(LutNetwork, EvaluateSmallNetwork) {
  LutNetwork net(2);
  const int x = net.add_lut(xor2(0, 1));
  const int a = net.add_lut(and2(0, 1));
  net.add_output(x);
  net.add_output(a);
  EXPECT_EQ(net.evaluate({false, true}), (std::vector<bool>{true, false}));
  EXPECT_EQ(net.evaluate({true, true}), (std::vector<bool>{false, true}));
}

TEST(LutNetwork, ConstantsAsInputsAndOutputs) {
  LutNetwork net(1);
  const int g = net.add_lut(and2(0, kConst1));
  net.add_output(g);
  net.add_output(kConst0);
  EXPECT_EQ(net.evaluate({true}), (std::vector<bool>{true, false}));
  EXPECT_EQ(net.evaluate({false}), (std::vector<bool>{false, false}));
}

TEST(LutNetwork, DepthAndFanin) {
  LutNetwork net(3);
  const int a = net.add_lut(and2(0, 1));
  const int b = net.add_lut(and2(a, 2));
  const int c = net.add_lut(and2(a, b));
  net.add_output(c);
  EXPECT_EQ(net.depth(), 3);
  EXPECT_EQ(net.max_fanin(), 2);
  EXPECT_EQ(net.count_luts(), 3);
}

TEST(LutNetwork, DeadLutsNotCounted) {
  LutNetwork net(2);
  net.add_lut(and2(0, 1));  // dead
  const int x = net.add_lut(xor2(0, 1));
  net.add_output(x);
  EXPECT_EQ(net.count_luts(), 1);
  EXPECT_EQ(net.count_gates(), 1);
}

TEST(LutNetwork, ClassifyKinds) {
  EXPECT_EQ(LutNetwork::classify({{}, {true}}), LutKind::kConstant);
  EXPECT_EQ(LutNetwork::classify(buf(0)), LutKind::kBuffer);
  EXPECT_EQ(LutNetwork::classify(inv(0)), LutKind::kInverter);
  EXPECT_EQ(LutNetwork::classify(and2(0, 1)), LutKind::kGeneral);
  // A 2-input LUT that ignores one input is a buffer/inverter after pruning.
  EXPECT_EQ(LutNetwork::classify({{0, 1}, {false, true, false, true}}), LutKind::kBuffer);
  EXPECT_EQ(LutNetwork::classify({{0, 1}, {true, false, true, false}}), LutKind::kInverter);
  EXPECT_EQ(LutNetwork::classify({{0, 1}, {true, true, true, true}}), LutKind::kConstant);
}

TEST(Simplify, RemovesBuffersAndDeadLogic) {
  LutNetwork net(2);
  const int b1 = net.add_lut(buf(0));
  const int b2 = net.add_lut(buf(b1));
  const int g = net.add_lut(and2(b2, 1));
  net.add_lut(xor2(0, 1));  // dead
  net.add_output(g);
  net.simplify();
  EXPECT_EQ(net.count_luts(), 1);
  EXPECT_EQ(net.evaluate({true, true}), (std::vector<bool>{true}));
  EXPECT_EQ(net.evaluate({true, false}), (std::vector<bool>{false}));
}

TEST(Simplify, FoldsConstants) {
  LutNetwork net(1);
  const int c1 = net.add_lut({{}, {true}});     // constant 1
  const int g = net.add_lut(and2(0, c1));        // x & 1 = x -> buffer -> wire
  const int h = net.add_lut(and2(g, kConst0));   // & 0 = 0
  net.add_output(h);
  net.add_output(g);
  net.simplify();
  EXPECT_EQ(net.count_luts(), 0);
  EXPECT_EQ(net.outputs()[0], kConst0);
  EXPECT_EQ(net.outputs()[1], 0);  // the primary input itself
}

TEST(Simplify, AbsorbsInverters) {
  LutNetwork net(2);
  const int n0 = net.add_lut(inv(0));
  const int g = net.add_lut(and2(n0, 1));  // !x0 & x1
  net.add_output(g);
  net.simplify();
  // The inverter is folded into the AND's table.
  EXPECT_EQ(net.count_luts(), 1);
  EXPECT_EQ(net.evaluate({false, true}), (std::vector<bool>{true}));
  EXPECT_EQ(net.evaluate({true, true}), (std::vector<bool>{false}));
}

TEST(Simplify, SharesDuplicateLuts) {
  LutNetwork net(2);
  const int a = net.add_lut(xor2(0, 1));
  const int b = net.add_lut(xor2(0, 1));
  const int g = net.add_lut(and2(a, b));  // x & x = buffer after dedup
  net.add_output(g);
  net.simplify();
  EXPECT_EQ(net.count_luts(), 1);  // single xor remains
}

TEST(Simplify, PreservesBehaviorOnRandomNetworks) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.range(2, 5);
    LutNetwork net(n);
    std::vector<int> signals;
    for (int i = 0; i < n; ++i) signals.push_back(i);
    signals.push_back(kConst0);
    signals.push_back(kConst1);
    for (int g = 0; g < 12; ++g) {
      const int k = rng.range(1, 3);
      Lut lut;
      for (int j = 0; j < k; ++j)
        lut.inputs.push_back(signals[static_cast<std::size_t>(rng.below(signals.size()))]);
      lut.table.resize(std::size_t{1} << k);
      for (auto&& bit : lut.table) bit = rng.flip();
      signals.push_back(net.add_lut(std::move(lut)));
    }
    for (int o = 0; o < 3; ++o)
      net.add_output(signals[static_cast<std::size_t>(rng.below(signals.size()))]);

    // Record behavior, simplify, compare exhaustively.
    std::vector<std::vector<bool>> before;
    std::vector<bool> pis(static_cast<std::size_t>(n));
    for (std::uint32_t v = 0; v < (1u << n); ++v) {
      for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = (v >> i) & 1;
      before.push_back(net.evaluate(pis));
    }
    net.simplify();
    for (std::uint32_t v = 0; v < (1u << n); ++v) {
      for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = (v >> i) & 1;
      EXPECT_EQ(net.evaluate(pis), before[v]) << "trial " << trial << " vector " << v;
    }
  }
}

TEST(Collapse, MergesSingleFanoutChains) {
  // and(and(a,b), c) collapses into one 3-input LUT when k >= 3.
  LutNetwork net(3);
  const int t = net.add_lut(and2(0, 1));
  const int g = net.add_lut(and2(t, 2));
  net.add_output(g);
  EXPECT_EQ(net.collapse(3), 1);
  EXPECT_EQ(net.count_luts(), 1);
  EXPECT_EQ(net.evaluate({true, true, true}), (std::vector<bool>{true}));
  EXPECT_EQ(net.evaluate({true, false, true}), (std::vector<bool>{false}));
}

TEST(Collapse, RespectsFaninBound) {
  LutNetwork net(4);
  const int t = net.add_lut(and2(0, 1));
  const int g = net.add_lut({{t, 2, 3}, {false, false, false, false, false, false, false, true}});
  net.add_output(g);
  EXPECT_EQ(net.collapse(3), 0);  // merged support would be 4
  EXPECT_EQ(net.count_luts(), 2);
  EXPECT_EQ(net.collapse(4), 1);
  EXPECT_EQ(net.count_luts(), 1);
}

TEST(Collapse, LeavesSharedFeedersAlone) {
  LutNetwork net(2);
  const int t = net.add_lut(xor2(0, 1));
  const int g1 = net.add_lut(and2(t, 0));
  const int g2 = net.add_lut(and2(t, 1));
  net.add_output(g1);
  net.add_output(g2);
  EXPECT_EQ(net.collapse(3), 0);  // t has fanout 2
}

TEST(Collapse, FeederDrivingAnOutputStays) {
  LutNetwork net(3);
  const int t = net.add_lut(and2(0, 1));
  const int g = net.add_lut(and2(t, 2));
  net.add_output(g);
  net.add_output(t);  // observable
  EXPECT_EQ(net.collapse(3), 0);
}

TEST(Collapse, PreservesBehaviorOnRandomNetworks) {
  Rng rng(881);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.range(3, 5);
    LutNetwork net(n);
    std::vector<int> signals;
    for (int i = 0; i < n; ++i) signals.push_back(i);
    for (int g = 0; g < 15; ++g) {
      const int k = rng.range(1, 3);
      Lut lut;
      for (int j = 0; j < k; ++j)
        lut.inputs.push_back(signals[static_cast<std::size_t>(rng.below(signals.size()))]);
      lut.table.resize(std::size_t{1} << k);
      for (auto&& bit : lut.table) bit = rng.flip();
      signals.push_back(net.add_lut(std::move(lut)));
    }
    for (int o = 0; o < 3; ++o)
      net.add_output(signals[static_cast<std::size_t>(rng.below(signals.size()))]);

    std::vector<std::vector<bool>> before;
    std::vector<bool> pis(static_cast<std::size_t>(n));
    for (std::uint32_t v = 0; v < (1u << n); ++v) {
      for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = (v >> i) & 1;
      before.push_back(net.evaluate(pis));
    }
    net.collapse(4);
    EXPECT_LE(net.max_fanin(), 4);
    for (std::uint32_t v = 0; v < (1u << n); ++v) {
      for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = (v >> i) & 1;
      EXPECT_EQ(net.evaluate(pis), before[v]) << "trial " << trial << " v " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Output BDDs / checks
// ---------------------------------------------------------------------------

TEST(Simulate, OutputBddsMatchEvaluation) {
  Rng rng(88);
  bdd::Manager m(4);
  LutNetwork net(4);
  const int a = net.add_lut(xor2(0, 1));
  const int b = net.add_lut(and2(2, 3));
  const int g = net.add_lut({{a, b, 0}, {false, true, true, false, true, false, false, true}});
  net.add_output(g);
  const auto outs = output_bdds(net, m, {0, 1, 2, 3});
  ASSERT_EQ(outs.size(), 1u);
  std::vector<bool> pis(4), assignment(4);
  for (std::uint32_t v = 0; v < 16; ++v) {
    for (int i = 0; i < 4; ++i) pis[static_cast<std::size_t>(i)] = assignment[static_cast<std::size_t>(i)] = (v >> i) & 1;
    EXPECT_EQ(net.evaluate(pis)[0], m.eval(outs[0].id(), assignment));
  }
}

TEST(Simulate, CheckExactCatchesWrongNetwork) {
  bdd::Manager m(2);
  LutNetwork net(2);
  net.add_output(net.add_lut(and2(0, 1)));
  std::vector<Isf> good{Isf::completely_specified(m.var(0) & m.var(1))};
  std::vector<Isf> bad{Isf::completely_specified(m.var(0) | m.var(1))};
  std::string error;
  EXPECT_TRUE(check_exact(net, good, {0, 1}, &error));
  EXPECT_FALSE(check_exact(net, bad, {0, 1}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(check_by_simulation(net, bad, {0, 1}));
  EXPECT_TRUE(check_by_simulation(net, good, {0, 1}));
}

TEST(Simulate, DontCaresAreNotChecked) {
  bdd::Manager m(2);
  LutNetwork net(2);
  net.add_output(net.add_lut(and2(0, 1)));
  // Spec says OR, but only cares where x0 = x1 — there AND == OR... no:
  // (1,1) -> both 1; (0,0) -> both 0. So the AND network is admissible.
  const bdd::Bdd care = !(m.var(0) ^ m.var(1));
  std::vector<Isf> spec{Isf((m.var(0) | m.var(1)) & care, care)};
  EXPECT_TRUE(check_exact(net, spec, {0, 1}));
  EXPECT_TRUE(check_by_simulation(net, spec, {0, 1}));
}

// ---------------------------------------------------------------------------
// Structural baselines
// ---------------------------------------------------------------------------

TEST(Baselines, RippleCarryAddsCorrectly) {
  for (const int n : {1, 2, 4}) {
    LutNetwork net = ripple_carry_adder(n);
    std::vector<bool> pis(static_cast<std::size_t>(2 * n));
    for (std::uint32_t a = 0; a < (1u << n); ++a) {
      for (std::uint32_t b = 0; b < (1u << n); ++b) {
        for (int i = 0; i < n; ++i) {
          pis[static_cast<std::size_t>(i)] = (a >> i) & 1;
          pis[static_cast<std::size_t>(n + i)] = (b >> i) & 1;
        }
        const auto out = net.evaluate(pis);
        std::uint32_t sum = 0;
        for (int i = 0; i <= n; ++i) sum |= static_cast<std::uint32_t>(out[static_cast<std::size_t>(i)]) << i;
        EXPECT_EQ(sum, a + b) << "n=" << n;
      }
    }
  }
}

TEST(Baselines, ConditionalSumAddsCorrectly) {
  for (const int n : {2, 4, 8}) {
    LutNetwork net = conditional_sum_adder(n);
    EXPECT_LE(net.max_fanin(), 2);
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
      const std::uint32_t a = static_cast<std::uint32_t>(rng.below(1u << n));
      const std::uint32_t b = static_cast<std::uint32_t>(rng.below(1u << n));
      std::vector<bool> pis(static_cast<std::size_t>(2 * n));
      for (int i = 0; i < n; ++i) {
        pis[static_cast<std::size_t>(i)] = (a >> i) & 1;
        pis[static_cast<std::size_t>(n + i)] = (b >> i) & 1;
      }
      const auto out = net.evaluate(pis);
      std::uint32_t sum = 0;
      for (int i = 0; i <= n; ++i) sum |= static_cast<std::uint32_t>(out[static_cast<std::size_t>(i)]) << i;
      EXPECT_EQ(sum, a + b) << "n=" << n;
    }
  }
}

TEST(Baselines, ConditionalSumFasterButBigger) {
  // The classic trade: CSA-8 has logarithmic depth but far more gates than
  // ripple (the paper quotes 90 two-input gates in its counting).
  LutNetwork csa = conditional_sum_adder(8);
  LutNetwork rca = ripple_carry_adder(8);
  EXPECT_LT(csa.depth(), rca.depth());
  EXPECT_GT(csa.count_gates(), rca.count_gates());
  EXPECT_GE(csa.count_gates(), 60);  // sanity: within the expected ballpark
  EXPECT_LE(csa.count_gates(), 120);
}

TEST(Baselines, WallaceTreeMultipliesPartialProducts) {
  for (const int n : {2, 3, 4}) {
    LutNetwork net = wallace_tree_pp(n);
    EXPECT_LE(net.max_fanin(), 2);
    Rng rng(9);
    for (int trial = 0; trial < 100; ++trial) {
      // Drive the partial-product inputs from two random operands so the
      // expected output is a * b.
      const std::uint32_t a = static_cast<std::uint32_t>(rng.below(1u << n));
      const std::uint32_t b = static_cast<std::uint32_t>(rng.below(1u << n));
      std::vector<bool> pis(static_cast<std::size_t>(n * n));
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
          pis[static_cast<std::size_t>(i * n + j)] = ((a >> i) & 1) && ((b >> j) & 1);
      const auto out = net.evaluate(pis);
      std::uint32_t product = 0;
      for (int i = 0; i < 2 * n; ++i)
        product |= static_cast<std::uint32_t>(out[static_cast<std::size_t>(i)]) << i;
      EXPECT_EQ(product, a * b) << "n=" << n;
    }
  }
}

TEST(Baselines, WallaceGateCountNearTheFormula)  {
  // [23] / paper Section 6.1: Wallace-tree multiplier ~ 10n^2 - 20n gates
  // counting operand ANDs; ours starts from partial products, so compare
  // against the formula minus the n^2 AND gates, loosely.
  LutNetwork net = wallace_tree_pp(4);
  const int gates = net.count_gates();
  EXPECT_GT(gates, 40);
  EXPECT_LT(gates, 10 * 16 - 20 * 4);
}

// ---------------------------------------------------------------------------
// Bounds-checked mutators
// ---------------------------------------------------------------------------

TEST(LutNetwork, AddOutputRejectsInvalidSignals) {
  LutNetwork net(2);
  const int g = net.add_lut(and2(0, 1));
  net.add_output(g);          // LUT signal: fine
  net.add_output(1);          // primary input: fine
  net.add_output(kConst1);    // constant: fine
  EXPECT_THROW(net.add_output(g + 1), Error);  // not added yet
  EXPECT_THROW(net.add_output(-3), Error);     // below the constants
  EXPECT_EQ(net.num_outputs(), 3);
}

TEST(LutNetwork, SetOutputRedirectsAndBoundsChecks) {
  LutNetwork net(2);
  const int a = net.add_lut(and2(0, 1));
  const int x = net.add_lut(xor2(0, 1));
  net.add_output(a);
  net.set_output(0, x);
  EXPECT_EQ(net.evaluate({true, false}), (std::vector<bool>{true}));
  EXPECT_THROW(net.set_output(1, a), Error);   // no output 1
  EXPECT_THROW(net.set_output(-1, a), Error);
  EXPECT_THROW(net.set_output(0, 99), Error);  // invalid signal
  EXPECT_EQ(net.outputs()[0], x);              // failed calls change nothing
}

TEST(LutNetwork, ReplaceLutPreservesTopologicalOrder) {
  LutNetwork net(2);
  const int a = net.add_lut(and2(0, 1));
  const int g = net.add_lut(or2(a, 0));
  net.add_output(g);
  // In-place rewrite keeps the signal id and downstream wiring.
  net.replace_lut(net.lut_index(a), xor2(0, 1));
  EXPECT_EQ(net.evaluate({true, false}), (std::vector<bool>{true}));
  // A fanin at or above the replaced signal would create a cycle.
  EXPECT_THROW(net.replace_lut(net.lut_index(a), buf(a)), Error);
  EXPECT_THROW(net.replace_lut(net.lut_index(a), buf(g)), Error);
  // Table size must match 2^fanin; index must name an existing LUT.
  EXPECT_THROW(net.replace_lut(net.lut_index(a), Lut{{0}, {true}}), Error);
  EXPECT_THROW(net.replace_lut(5, buf(0)), Error);
  // Constants are always legal fanins.
  net.replace_lut(net.lut_index(a), and2(0, kConst1));
  EXPECT_EQ(net.evaluate({true, false}), (std::vector<bool>{true}));
}

// ---------------------------------------------------------------------------
// Export (BLIF / dot)
// ---------------------------------------------------------------------------

TEST(Export, BlifRoundTripsThroughTheParser) {
  // to_blif() output must mean what the network computes: parse it back with
  // the io reader and compare output BDDs function by function.
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = rng.range(2, 5);
    LutNetwork net = random_network(rng, n, 10, 3);
    bdd::Manager m(n);
    std::vector<int> pis(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = i;
    const auto direct = output_bdds(net, m, pis);
    const io::BlifModel parsed = io::parse_blif(net.to_blif("roundtrip"), m);
    EXPECT_EQ(parsed.name, "roundtrip");
    ASSERT_EQ(parsed.inputs.size(), static_cast<std::size_t>(n));
    ASSERT_EQ(parsed.functions.size(), direct.size());
    for (std::size_t o = 0; o < direct.size(); ++o)
      EXPECT_EQ(parsed.functions[o], direct[o]) << "trial " << trial << " output " << o;
  }
}

TEST(Export, BlifEmitsConstantsOnlyWhenReferenced) {
  LutNetwork net(1);
  net.add_output(net.add_lut(buf(0)));
  const std::string plain = net.to_blif();
  EXPECT_EQ(plain.find("const"), std::string::npos);
  net.add_output(kConst1);
  const std::string with_const = net.to_blif();
  EXPECT_NE(with_const.find("const1"), std::string::npos);
  EXPECT_EQ(with_const.find("const0"), std::string::npos);
  // The constant output still parses back to the constant function.
  bdd::Manager m(1);
  const io::BlifModel parsed = io::parse_blif(with_const, m);
  ASSERT_EQ(parsed.functions.size(), 2u);
  EXPECT_EQ(parsed.functions[1], m.bdd_true());
}

TEST(Export, DotDescribesLiveStructure) {
  LutNetwork net(2);
  const int g = net.add_lut(and2(0, 1));
  net.add_lut(xor2(0, 1));  // dead: must not be drawn
  net.add_output(g);
  const std::string dot = net.to_dot("toy");
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("toy"), std::string::npos);
  EXPECT_NE(dot.find("pi0"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);   // the live AND
  EXPECT_EQ(dot.find("n1"), std::string::npos);   // the dead XOR
  EXPECT_NE(dot.find("po0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass pipeline
// ---------------------------------------------------------------------------

TEST(PassMgr, ParsePipelineSpecTrimsAndValidates) {
  EXPECT_EQ(parse_pipeline_spec(" decompose , simplify,pack "),
            (std::vector<std::string>{"decompose", "simplify", "pack"}));
  EXPECT_THROW(parse_pipeline_spec(""), Error);
  EXPECT_THROW(parse_pipeline_spec("decompose,,pack"), Error);
  EXPECT_THROW(parse_pipeline_spec(" , "), Error);
  // Name validity is the builder's job: unknown passes throw there.
  SynthesisOptions opts;
  EXPECT_THROW(build_pipeline("decompose,frobnicate", opts), Error);
  EXPECT_EQ(build_pipeline("", opts).spec(), default_pipeline_spec());
}

TEST(Pipeline, EveryStageLeavesAnAdmissibleNetwork) {
  // Randomized ISF specs through the full default pipeline; after *every*
  // executed pass the network must still be an admissible extension of the
  // spec (the per-pass contract in net/passmgr.h), checked both exactly and
  // by simulation via the dump hook.
  Rng rng(20260807);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = rng.range(4, 6);
    bdd::Manager m(n);
    auto random_fn = [&] {
      bdd::Bdd f = m.constant(rng.flip());
      for (int i = 0; i < 8; ++i) {
        const bdd::Bdd lit = m.literal(rng.range(0, n - 1), rng.flip());
        switch (rng.range(0, 2)) {
          case 0: f = f & lit; break;
          case 1: f = f | lit; break;
          default: f = f ^ lit; break;
        }
      }
      return f;
    };
    std::vector<Isf> spec;
    for (int o = 0; o < 3; ++o) {
      bdd::Bdd care = random_fn() | random_fn();
      if (care == m.bdd_false()) care = m.bdd_true();
      spec.push_back(Isf(random_fn() & care, care));
    }
    std::vector<int> pis(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = i;

    SynthesisOptions opts = preset_mulop_dc(4);
    ResourceGovernor gov(opts.budget);
    ResourceGovernor::Scope gov_scope(gov);
    PassPipeline pipeline = build_pipeline("", opts);
    int stages_checked = 0;
    pipeline.set_dump_hook([&](const LutNetwork& net, const Pass& pass, int) {
      std::string error;
      EXPECT_TRUE(check_exact(net, spec, pis, &error))
          << "trial " << trial << " after pass " << pass.name() << ": " << error;
      EXPECT_TRUE(check_by_simulation(net, spec, pis))
          << "trial " << trial << " after pass " << pass.name();
      ++stages_checked;
    });

    PassContext ctx;
    ctx.manager = &m;
    ctx.spec = &spec;
    ctx.pi_vars = &pis;
    ctx.options = &opts;
    ctx.governor = &gov;
    LutNetwork net;
    const std::vector<PassStats> trail = pipeline.run(net, ctx);
    EXPECT_EQ(stages_checked, 4) << "trial " << trial;
    ASSERT_EQ(trail.size(), 4u);
    for (const PassStats& s : trail) EXPECT_TRUE(s.ran) << s.name;
    EXPECT_LE(net.max_fanin(), 4);
  }
}

// ---------------------------------------------------------------------------
// ODC resubstitution
// ---------------------------------------------------------------------------

TEST(OdcResubst, PreservesNetworkOutputsExactly) {
  // The pass exploits observability don't cares *inside* the network, so the
  // network's own output functions must survive bit-for-bit — not just an
  // admissible extension of some spec.
  Rng rng(1717);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.range(3, 5);
    LutNetwork net = random_network(rng, n, 14, 3);
    const auto before_rows = exhaustive(net, n);
    const int before_luts = net.count_luts();

    bdd::Manager m(n);
    std::vector<int> pis(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = i;
    OdcOptions odc;
    odc.lut_inputs = 4;
    OdcResubstPass pass(odc);
    PassContext ctx;
    ctx.manager = &m;
    ctx.pi_vars = &pis;
    pass.run(net, ctx);

    EXPECT_LE(net.count_luts(), before_luts) << "trial " << trial;
    EXPECT_EQ(exhaustive(net, n), before_rows) << "trial " << trial;
  }
}

TEST(OdcResubst, RemovesLogicMaskedByItsFanout) {
  // g = (x0 & x1) | x0 absorbs to x0: under x0 = 0 the AND's output is the
  // constant 0 and under x0 = 1 it is unobservable, so its care set forces
  // it to a constant and the whole LUT dissolves. Structural simplify alone
  // cannot see this — it needs the windowed ODC computation.
  LutNetwork net(2);
  const int t = net.add_lut(and2(0, 1));
  const int g = net.add_lut(or2(t, 0));
  net.add_output(g);

  bdd::Manager m(2);
  std::vector<int> pis{0, 1};
  OdcResubstPass pass{OdcOptions{}};
  PassContext ctx;
  ctx.manager = &m;
  ctx.pi_vars = &pis;
  EXPECT_TRUE(pass.run(net, ctx));
  EXPECT_EQ(net.count_luts(), 0);
  EXPECT_EQ(net.outputs()[0], 0);  // the wire x0
  EXPECT_EQ(net.evaluate({true, false}), (std::vector<bool>{true}));
  EXPECT_EQ(net.evaluate({false, true}), (std::vector<bool>{false}));
}

TEST(OdcResubst, IsANoOpWithoutAManager) {
  LutNetwork net(2);
  net.add_output(net.add_lut(and2(0, 1)));
  OdcResubstPass pass{OdcOptions{}};
  PassContext ctx;  // no manager, no pi_vars
  EXPECT_FALSE(pass.run(net, ctx));
  EXPECT_EQ(net.count_luts(), 1);
}

}  // namespace
}  // namespace mfd::net
