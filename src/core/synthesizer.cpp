#include "core/synthesizer.h"

#include <chrono>
#include <new>

#include "core/errors.h"
#include "net/simulate.h"

namespace mfd {

SynthesisResult Synthesizer::run(std::vector<Isf> spec,
                                 const std::vector<int>& pi_vars,
                                 const std::string& circuit) const {
  const auto start = std::chrono::steady_clock::now();
  // One run == one observability epoch: the report in the result covers
  // exactly this synthesis (including both portfolio entries).
  obs::reset();
  obs::ScopedPhase phase("synthesize");
  SynthesisResult result;

  // One governor covers the whole run (both portfolio entries, verification,
  // packing); decompose() binds it to the BDD manager itself.
  ResourceGovernor gov(opts_.budget);
  ResourceGovernor::Scope gov_scope(gov);

  bdd::Manager* mgr = spec.empty() ? nullptr : spec.front().manager();
  const std::vector<Isf> original = spec;  // keep for verification
  try {
    result.network = decompose(spec, pi_vars, opts_.decomp, &result.stats);

    // The portfolio's second entry is pure optimization: skip it when the
    // budget already forced degradation or the deadline has passed — it
    // would only walk the ladder again and discard the work.
    if (opts_.decomp.max_bound_extra > 0 && opts_.portfolio_bound_extra &&
        !gov.report().degraded() && !gov.deadline_expired()) {
      DecomposeOptions conservative = opts_.decomp;
      conservative.max_bound_extra = 0;
      DecomposeStats alt_stats;
      net::LutNetwork alt = decompose(spec, pi_vars, conservative, &alt_stats);
      obs::add("synth.portfolio_runs");
      if (alt.count_luts() < result.network.count_luts()) {
        result.network = std::move(alt);
        result.stats = alt_stats;
        obs::add("synth.portfolio_conservative_won");
      }
    } else if (opts_.decomp.max_bound_extra > 0 && opts_.portfolio_bound_extra) {
      obs::add("synth.portfolio_skipped_budget");
    }
  } catch (const std::bad_alloc&) {
    // Only an allocation fault injected into the ladder's suspended floor
    // can reach here; surface it typed so callers never see a raw bad_alloc.
    throw BddError("allocation failure escaped the degradation ladder" +
                   (circuit.empty() ? std::string() : " (circuit=" + circuit + ")"));
  }
  spec.clear();

  // The per-output levels of the *winning* network (the governor's snapshot
  // tracks the most recent decompose call, which may be the discarded one).
  gov.set_per_output_levels(result.stats.output_degrade_level);

  if (opts_.verify) {
    // Verification is exactness, not optimization: it runs with budget
    // enforcement suspended so a tight deadline can never abort it.
    ResourceGovernor::SuspendScope suspend(gov);
    obs::ScopedPhase verify_phase("verify");
    std::string error;
    if (!net::check_exact(result.network, original, pi_vars, &error))
      throw VerifyError(circuit, "verify", gov.degrade_level(), error);
    result.verified = true;
  }

  {
    obs::ScopedPhase pack_phase("pack");
    result.clb_greedy = map::pack_greedy(result.network, opts_.clb);
    result.clb_matching = map::pack_matching(result.network, opts_.clb);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.degradation = gov.report();

  obs::gauge_set("net.luts", result.network.count_luts());
  obs::gauge_set("net.gates", result.network.count_gates());
  obs::gauge_set("net.depth", result.network.depth());
  obs::gauge_set("synth.seconds", result.seconds);
  if (mgr != nullptr) mgr->publish_stats();
  result.report = obs::collect();
  return result;
}

SynthesisResult Synthesizer::run(const circuits::Benchmark& bench) const {
  std::vector<Isf> spec;
  spec.reserve(bench.outputs.size());
  for (const bdd::Bdd& f : bench.outputs) spec.push_back(Isf::completely_specified(f));
  std::vector<int> pi_vars(static_cast<std::size_t>(bench.num_inputs));
  for (int i = 0; i < bench.num_inputs; ++i) pi_vars[static_cast<std::size_t>(i)] = i;
  return run(std::move(spec), pi_vars, bench.name);
}

SynthesisOptions preset_mulop_dc(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  return opts;
}

SynthesisOptions preset_mulopII(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  opts.decomp.exploit_dc = false;
  return opts;
}

SynthesisOptions preset_noshare_nodc(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  opts.decomp.exploit_dc = false;
  opts.decomp.share_functions = false;
  return opts;
}

}  // namespace mfd
