// Per-row retry policy of the sweep supervisor: exponential backoff plus
// budget-tightening rungs (docs/ROBUSTNESS.md §"Sweep supervision").
//
// Only *abnormal* outcomes retry — crash, timeout, oom. A typed error is a
// deterministic verdict (the same inputs fail the same way), so retrying it
// would only triple the sweep's wall clock; it is journaled as failed at
// once.
//
// The rungs mirror the in-process degradation ladder (core/budget.h) one
// level up: the first retry re-runs at full effort (the latched fault or
// transient OOM may simply not recur), and later retries clamp the child's
// --node-budget / --time-budget-ms so the flow degrades internally instead
// of dying the same death — a row that keeps crashing at full effort is
// still recorded with a result (possibly degraded, always verified) before
// the supervisor ever gives up on it.
#pragma once

#include <cstddef>
#include <vector>

#include "super/proc.h"

namespace mfd::super {

/// Budget clamps one retry attempt applies to the child's flow. Zero fields
/// leave the row's own budget untouched; nonzero fields are *floors* — they
/// take the minimum with any budget the row already had.
struct RetryRung {
  double time_budget_ms = 0.0;
  std::size_t node_budget = 0;
};

struct RetryPolicy {
  /// Extra attempts after the first (0 = never retry).
  int max_retries = 2;
  /// Deterministic exponential backoff: delay before retry k (1-based) is
  /// min(backoff_ms * backoff_factor^(k-1), backoff_max_ms).
  double backoff_ms = 250.0;
  double backoff_factor = 4.0;
  double backoff_max_ms = 10000.0;
  /// Tightening ladder: retry k runs under rungs[min(k-1, size-1)]. The
  /// defaults keep the first retry at full effort, then clamp toward the
  /// floors CI's tight-budget sweeps prove survivable.
  std::vector<RetryRung> rungs = default_rungs();

  static std::vector<RetryRung> default_rungs();
};

struct RetryDecision {
  bool retry = false;
  double delay_ms = 0.0;
  RetryRung rung;  ///< budget clamps for the next attempt
};

/// Plans the response to attempt `attempt` (1-based) finishing with `last`.
RetryDecision plan_retry(const RetryPolicy& policy, ChildStatus last, int attempt);

}  // namespace mfd::super
