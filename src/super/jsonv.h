// Minimal zero-dependency JSON *reader* — the counterpart of obs::JsonWriter.
//
// The supervisor needs to read JSON back: journal records are JSONL
// (super/journal.h) and a resumed sweep reconstructs bench rows from the
// journaled run documents. The parser accepts exactly RFC 8259 documents
// (which is what JsonWriter emits) into a simple tree value. Object members
// keep insertion order; duplicate keys keep the last value (find returns it).
//
// Errors throw mfd::Error with a byte offset, so a corrupt journal line is
// attributable. This is a strict parser: trailing garbage after the document
// is an error (parse_json consumes the whole string).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/errors.h"

namespace mfd::super {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  /// Numbers keep both views: `number` always holds the value as a double;
  /// `integer` is exact when the literal had no fraction/exponent.
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup (objects only); nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Checked accessors: throw mfd::Error on a type mismatch so a malformed
  // journal surfaces as a typed error, never as garbage values.
  const std::string& as_string() const;
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int64() const;
  int as_int() const;

  // Convenience: member value with a default when the key is missing.
  std::string string_or(std::string_view key, std::string fallback = {}) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback = 0) const;
  double double_or(std::string_view key, double fallback = 0.0) const;
  bool bool_or(std::string_view key, bool fallback = false) const;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed,
/// anything else after the value is an error). Throws mfd::Error.
JsonValue parse_json(std::string_view text);

}  // namespace mfd::super
