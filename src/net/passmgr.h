// Pass manager over the LUT-network IR.
//
// The synthesis flow is an ordered sequence of *passes*, each transforming
// (or analyzing) one `net::LutNetwork` in place. `core/synthesizer.cpp`
// drives the default pipeline
//
//   decompose -> simplify -> odc_resubst -> pack
//
// and rebuilds it from a user spec ("--passes decompose,simplify,pack").
// The contract every pass obeys:
//
//  * run(net, ctx) transforms `net` and returns true iff the network (or a
//    context output slot, for analysis passes) changed. A pass must leave
//    the network I/O-equivalent to its input *with respect to the
//    specification ISFs in the context* — exact verification runs after the
//    whole pipeline and a pass that breaks admissibility fails the flow.
//  * mutates_network() says whether the pass rewrites the IR. Non-mutating
//    passes (packing, analysis) also run when the mutated network came out
//    of the flow-result cache; mutating passes are skipped on a hit because
//    the cached network already includes their effect (docs/CACHING.md).
//  * optional() passes are *droppable*: the pipeline skips them once the
//    degradation ladder has moved off the full level or the deadline has
//    expired — they buy quality, never correctness (docs/ROBUSTNESS.md).
//  * Every pass runs under an obs phase named `pass.<name>` and its
//    before/after LUT statistics are recorded in the PassStats trail the
//    pipeline returns (surfaced as `--stats-json` "passes" rows).
//
// Invalidation: the IR carries no analysis caches — every pass recomputes
// what it needs from the network itself (live sets, fanout, signal BDDs),
// so there is nothing to invalidate between passes beyond the network.
// Passes that keep derived state internally must treat every run() call as
// operating on an unknown network.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mfd {
class Isf;
class ResourceGovernor;
struct DecomposeStats;
struct SynthesisOptions;
namespace bdd {
class Manager;
}
namespace map {
struct ClbResult;
}
}  // namespace mfd

namespace mfd::net {

class LutNetwork;
class Pass;

/// Everything a pass may read or write besides the network itself. The
/// Synthesizer owns the pointed-to objects; output slots (stats, clb_*) are
/// filled by the passes that produce them. All pointers except `governor`
/// and `manager` may be null when a pipeline runs outside the full flow
/// (tests driving a single pass) — passes must check what they use.
struct PassContext {
  bdd::Manager* manager = nullptr;
  /// The specification the network must remain an admissible extension of.
  const std::vector<Isf>* spec = nullptr;
  /// pi_vars[i] = manager variable standing for network primary input i.
  const std::vector<int>* pi_vars = nullptr;
  const SynthesisOptions* options = nullptr;
  /// Never null while the Synthesizer drives the pipeline (it installs one
  /// even for unbudgeted runs); may be null in tests.
  ResourceGovernor* governor = nullptr;
  std::string circuit;  ///< run name for errors and dumps (may be empty)

  // ---- output slots ------------------------------------------------------
  DecomposeStats* stats = nullptr;       ///< filled by the decompose pass
  map::ClbResult* clb_greedy = nullptr;  ///< filled by the pack pass
  map::ClbResult* clb_matching = nullptr;
};

/// One pipeline stage over the LUT-network IR (contract in the header
/// comment above).
class Pass {
 public:
  virtual ~Pass() = default;
  /// Stable identifier; also the spec token that names this pass.
  virtual const char* name() const = 0;
  /// Transforms/analyzes `net`; returns true iff anything changed.
  virtual bool run(LutNetwork& net, PassContext& ctx) = 0;
  /// Droppable by the degradation ladder (quality-only passes).
  virtual bool optional() const { return false; }
  /// False for analysis/packing passes that never rewrite the IR.
  virtual bool mutates_network() const { return true; }
};

/// Per-pass record of one pipeline execution.
struct PassStats {
  std::string name;
  bool ran = false;        ///< false when skipped (see `skip_reason`)
  bool changed = false;    ///< run() return value
  std::string skip_reason; ///< "degraded" | "cached" when !ran
  int luts_before = 0;     ///< live LUTs entering the pass
  int luts_after = 0;      ///< live LUTs leaving the pass
  double seconds = 0.0;
};

/// An ordered, owned sequence of passes.
class PassPipeline {
 public:
  PassPipeline() = default;
  PassPipeline(PassPipeline&&) = default;
  PassPipeline& operator=(PassPipeline&&) = default;

  void add(std::unique_ptr<Pass> pass);
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }
  /// Comma-joined pass names (the canonical spec of this pipeline; feeds
  /// the flow-result cache fingerprint).
  std::string spec() const;

  /// Called after every executed pass with the network, the pass, and its
  /// pipeline position — the `--dump-net` hook.
  using DumpHook = std::function<void(const LutNetwork&, const Pass&, int index)>;
  void set_dump_hook(DumpHook hook) { dump_ = std::move(hook); }

  /// Runs every pass in order. `skip_mutating = true` replays only the
  /// non-mutating passes (the flow-result-cache hit path: the network
  /// already carries the mutating passes' effect). Optional passes are
  /// skipped once ctx.governor reports degradation or an expired deadline.
  /// Each executed pass runs under an obs phase `pass.<name>`.
  std::vector<PassStats> run(LutNetwork& net, PassContext& ctx,
                             bool skip_mutating = false) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  DumpHook dump_;
};

/// Splits a `--passes` spec ("decompose,simplify,pack") into trimmed,
/// non-empty pass names. Throws mfd::Error on an empty spec or empty name;
/// name *validity* is checked by the pipeline builder (core/passes.h),
/// which knows the registry.
std::vector<std::string> parse_pipeline_spec(const std::string& spec);

/// A pass wrapping LutNetwork::simplify() + collapse(k): structural
/// cleanup + single-fanout repacking. Lives here (not core/passes) because
/// it needs nothing beyond the IR; k comes from the synthesis options when
/// present, else `default_lut_inputs`.
class SimplifyPass final : public Pass {
 public:
  explicit SimplifyPass(int default_lut_inputs = 5)
      : default_lut_inputs_(default_lut_inputs) {}
  const char* name() const override { return "simplify"; }
  bool run(LutNetwork& net, PassContext& ctx) override;

 private:
  int default_lut_inputs_;
};

}  // namespace mfd::net
