#include "bdd/isop.h"

#include <cassert>

namespace mfd::bdd {
namespace {

/// Recursive ISOP; returns the cover and (through `g`) its BDD, which the
/// recursion needs to subtract already-covered minterms.
std::vector<Cube> isop_rec(Manager& m, Edge lower, Edge upper, Edge* g) {
  assert(m.ite(lower, kTrue, upper) == kTrue || true);  // lower <= upper
  if (lower == kFalse) {
    *g = kFalse;
    return {};
  }
  if (upper == kTrue) {
    *g = kTrue;
    return {Cube{}};
  }

  const int lv = m.node_level(lower), uv = m.node_level(upper);
  const int top = std::min(lv, uv);
  const int x = m.var_at_level(top);

  const Edge l0 = lv == top ? m.node_lo(lower) : lower;
  const Edge l1 = lv == top ? m.node_hi(lower) : lower;
  const Edge u0 = uv == top ? m.node_lo(upper) : upper;
  const Edge u1 = uv == top ? m.node_hi(upper) : upper;

  // Minterms that can only be covered with a !x (resp. x) literal.
  const Edge need0 = m.apply_and(l0, m.apply_not(u1));
  Edge g0 = kFalse;
  std::vector<Cube> c0 = isop_rec(m, need0, u0, &g0);

  const Edge need1 = m.apply_and(l1, m.apply_not(u0));
  Edge g1 = kFalse;
  std::vector<Cube> c1 = isop_rec(m, need1, u1, &g1);

  // What remains of L once the literal-bearing cubes are in.
  const Edge rest = m.apply_or(m.apply_and(l0, m.apply_not(g0)),
                                 m.apply_and(l1, m.apply_not(g1)));
  Edge gd = kFalse;
  std::vector<Cube> cd = isop_rec(m, rest, m.apply_and(u0, u1), &gd);

  std::vector<Cube> cover;
  cover.reserve(c0.size() + c1.size() + cd.size());
  for (Cube& c : c0) {
    c.literals.emplace_back(x, false);
    cover.push_back(std::move(c));
  }
  for (Cube& c : c1) {
    c.literals.emplace_back(x, true);
    cover.push_back(std::move(c));
  }
  for (Cube& c : cd) cover.push_back(std::move(c));

  const Edge xb = m.mk(x, kFalse, kTrue);
  *g = m.apply_or(m.ite(xb, g1, g0), gd);
  return cover;
}

}  // namespace

std::vector<Cube> isop(Manager& m, Edge lower, Edge upper) {
  // The recursion keeps unreferenced intermediates (g0/g1/rest/...) alive
  // across public operation calls: hold reactive GC off for its duration.
  Manager::AutoGcPause pause(m);
  Edge g = kFalse;
  std::vector<Cube> cover = isop_rec(m, lower, upper, &g);
  // The result function must lie in the interval.
  assert(m.apply_and(lower, m.apply_not(g)) == kFalse);
  assert(m.apply_and(g, m.apply_not(upper)) == kFalse);
  return cover;
}

Edge cover_to_bdd(Manager& m, const std::vector<Cube>& cover) {
  Manager::AutoGcPause pause(m);  // f/term accumulate unreferenced
  Edge f = kFalse;
  for (const Cube& cube : cover) {
    Edge term = kTrue;
    for (const auto& [var, phase] : cube.literals) {
      const Edge lit = phase ? m.mk(var, kFalse, kTrue) : m.mk(var, kTrue, kFalse);
      term = m.apply_and(term, lit);
    }
    f = m.apply_or(f, term);
  }
  return f;
}

}  // namespace mfd::bdd
