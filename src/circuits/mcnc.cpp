// Named benchmark registry for the paper's Table 1 / Table 2 rows.
//
// Rows with a public functional definition are generated exactly; PLA-born
// rows are deterministic synthetic stand-ins with matching I/O counts (see
// circuits.h and DESIGN.md). Three rows are *reduced-size* structural
// stand-ins, marked below, to keep the full table run laptop-scale:
// C499 (single-error-correcting core), C880 (datapath/ALU mix), rot
// (barrel rotator).
#include <cassert>
#include <functional>
#include <map>

#include "circuits/circuits.h"
#include "util/rng.h"

namespace mfd::circuits {
namespace {

using bdd::Bdd;
using bdd::Manager;

// ---- exact generators -------------------------------------------------

Benchmark make_rd(Manager& m, int n, int out_bits) {
  ensure_vars(m, n);
  Benchmark b;
  b.name = "rd" + std::to_string(n) + std::to_string(out_bits);
  b.num_inputs = n;
  std::vector<Bdd> bits;
  for (int i = 0; i < n; ++i) bits.push_back(m.var(i));
  Word count = count_ones(m, bits);
  count.resize(static_cast<std::size_t>(out_bits), m.bdd_false());
  b.outputs = std::move(count);
  return b;
}

Benchmark make_9sym(Manager& m) {
  ensure_vars(m, 9);
  Benchmark b;
  b.name = "9sym";
  b.num_inputs = 9;
  std::vector<Bdd> bits;
  for (int i = 0; i < 9; ++i) bits.push_back(m.var(i));
  const Word count = count_ones(m, bits);
  Bdd in_range = m.bdd_false();
  for (std::uint64_t v = 3; v <= 6; ++v) in_range |= word_equals(count, v);
  b.outputs = {in_range};
  return b;
}

Benchmark make_z4ml(Manager& m) {
  // Two 3-bit operands plus carry-in: 7 inputs, 4 sum bits.
  ensure_vars(m, 7);
  Benchmark b;
  b.name = "z4ml";
  b.num_inputs = 7;
  b.outputs = add_words(input_word(m, 0, 3), input_word(m, 3, 3), m.var(6));
  return b;
}

Benchmark make_clip(Manager& m) {
  // 9-bit two's-complement input saturated into 5 bits.
  ensure_vars(m, 9);
  Benchmark b;
  b.name = "clip";
  b.num_inputs = 9;
  const Word x = input_word(m, 0, 9);
  const Bdd sign = x[8];
  // Representable in 5 bits iff bits 4..8 are all equal (sign extension).
  Bdd in_range = m.bdd_true();
  for (int i = 4; i < 8; ++i) in_range &= !(x[static_cast<std::size_t>(i)] ^ sign);
  for (int i = 0; i < 4; ++i) {
    // Saturation values: +15 = 01111, -16 = 10000.
    const Bdd sat = !sign;  // low bits of +15 are 1, of -16 are 0
    b.outputs.push_back((in_range & x[static_cast<std::size_t>(i)]) | ((!in_range) & sat));
  }
  b.outputs.push_back((in_range & x[4]) | ((!in_range) & sign));
  return b;
}

Benchmark make_5xp1(Manager& m) {
  // Synthetic stand-in with matching I/O: Y = 5*X + 1 over a 7-bit X
  // (10 output bits), an arithmetic profile comparable to the original.
  ensure_vars(m, 7);
  Benchmark b;
  b.name = "5xp1";
  b.num_inputs = 7;
  const Word x = input_word(m, 0, 7);
  Word x4 = x;  // X << 2
  x4.insert(x4.begin(), 2, m.bdd_false());
  Word y = add_words(x4, x);           // 5*X
  Word one{m.bdd_true()};
  y = add_words(y, one);               // +1
  y.resize(10, m.bdd_false());
  b.outputs = std::move(y);
  return b;
}

Benchmark make_f51m(Manager& m) {
  // Stand-in: 4x4 multiplier (8 inputs, 8 outputs).
  Benchmark b = multiplier(m, 4);
  b.name = "f51m";
  return b;
}

Benchmark make_alu(Manager& m, const std::string& name, int w, int first_sel) {
  // Operands a, b of width w; 2 select bits; ops add, sub, and, xor.
  // Outputs: w result bits, carry/borrow, zero flag.
  ensure_vars(m, first_sel + 2);
  {
    std::vector<int> a_ops, b_ops;
    for (int i = 0; i < w; ++i) a_ops.push_back(i), b_ops.push_back(w + i);
    interleave_order(m, {{first_sel, first_sel + 1}, a_ops, b_ops});
  }
  Benchmark b;
  b.name = name;
  b.num_inputs = first_sel + 2;
  const Word a = input_word(m, 0, w);
  const Word bw = input_word(m, w, w);
  const Bdd s0 = m.var(first_sel), s1 = m.var(first_sel + 1);

  Word nb;
  for (const Bdd& bit : bw) nb.push_back(!bit);
  const Word sum = add_words(a, bw);
  const Word dif = add_words(a, nb, m.bdd_true());  // a - b

  Word res;
  Bdd carry = m.bdd_false();
  for (int i = 0; i < w; ++i) {
    const Bdd andb = a[static_cast<std::size_t>(i)] & bw[static_cast<std::size_t>(i)];
    const Bdd xorb = a[static_cast<std::size_t>(i)] ^ bw[static_cast<std::size_t>(i)];
    // 00: add, 01: sub, 10: and, 11: xor
    const Bdd arith = ((!s0) & sum[static_cast<std::size_t>(i)]) | (s0 & dif[static_cast<std::size_t>(i)]);
    const Bdd logic = ((!s0) & andb) | (s0 & xorb);
    res.push_back(((!s1) & arith) | (s1 & logic));
  }
  carry = ((!s1) & (((!s0) & sum[static_cast<std::size_t>(w)]) |
                    (s0 & dif[static_cast<std::size_t>(w)])));
  Bdd zero = m.bdd_true();
  for (const Bdd& bit : res) zero &= !bit;

  b.outputs = std::move(res);
  b.outputs.push_back(carry);
  b.outputs.push_back(zero);
  return b;
}

Benchmark make_count(Manager& m) {
  // 16-bit two-operand unit: a(16), b(16), 2 mode bits, carry-in = 35 inputs;
  // 16 outputs. Modes: 00 add, 01 and, 10 or, 11 xor.
  ensure_vars(m, 35);
  {
    std::vector<int> a16, b16;
    for (int i = 0; i < 16; ++i) a16.push_back(i), b16.push_back(16 + i);
    interleave_order(m, {{32, 33, 34}, a16, b16});
  }
  Benchmark b;
  b.name = "count";
  b.num_inputs = 35;
  const Word a = input_word(m, 0, 16);
  const Word bw = input_word(m, 16, 16);
  const Bdd c0 = m.var(32), c1 = m.var(33), cin = m.var(34);
  const Word sum = add_words(a, bw, cin);
  for (int i = 0; i < 16; ++i) {
    const Bdd ai = a[static_cast<std::size_t>(i)], bi = bw[static_cast<std::size_t>(i)];
    // 00: add, 01: and, 10: or, 11: xor.
    const Bdd pick = ((!c1) & (((!c0) & sum[static_cast<std::size_t>(i)]) | (c0 & (ai & bi)))) |
                     (c1 & (((!c0) & (ai | bi)) | (c0 & (ai ^ bi))));
    b.outputs.push_back(pick);
  }
  return b;
}

Benchmark make_e64(Manager& m) {
  // Priority one-hot chain: out_i = !x_0 & ... & !x_(i-1) & x_i.
  constexpr int kN = 65;
  ensure_vars(m, kN);
  Benchmark b;
  b.name = "e64";
  b.num_inputs = kN;
  Bdd none_before = m.bdd_true();
  for (int i = 0; i < kN; ++i) {
    b.outputs.push_back(none_before & m.var(i));
    none_before &= !m.var(i);
  }
  return b;
}

Benchmark make_rot(Manager& m) {
  // Reduced stand-in: 16-bit barrel rotator, 4 select bits (20 in, 16 out).
  constexpr int kW = 16, kS = 4;
  ensure_vars(m, kW + kS);
  interleave_order(m, {{kW, kW + 1, kW + 2, kW + 3}});
  Benchmark b;
  b.name = "rot";
  b.num_inputs = kW + kS;
  const Word sel = input_word(m, kW, kS);
  for (int i = 0; i < kW; ++i) {
    Bdd out = m.bdd_false();
    for (int s = 0; s < kW; ++s)
      out |= word_equals(sel, static_cast<std::uint64_t>(s)) & m.var((i + s) % kW);
    b.outputs.push_back(out);
  }
  return b;
}

Benchmark make_c499(Manager& m) {
  // Reduced single-error-correcting core: 16 data bits, 5 check bits, one
  // global enable (22 in); outputs the corrected data (16 out). Preserves
  // the XOR-dominated structure of C499.
  constexpr int kD = 16, kK = 5;
  ensure_vars(m, kD + kK + 1);
  Benchmark b;
  b.name = "C499";
  b.num_inputs = kD + kK + 1;
  const Bdd enable = m.var(kD + kK);
  // Data bit i carries the i-th value >= 3 that is not a power of two, so
  // patterns are pairwise distinct and distinct from single-check syndromes.
  auto pat = [](int i) {
    int v = 2;
    for (int remaining = i + 1; remaining > 0;) {
      ++v;
      if ((v & (v - 1)) != 0) --remaining;
    }
    return v;
  };
  Word syndrome;
  for (int j = 0; j < kK; ++j) {
    Bdd s = m.var(kD + j);
    for (int i = 0; i < kD; ++i)
      if ((pat(i) >> j) & 1) s ^= m.var(i);
    syndrome.push_back(s);
  }
  for (int i = 0; i < kD; ++i) {
    const Bdd flip = word_equals(syndrome, static_cast<std::uint64_t>(pat(i)));
    b.outputs.push_back(m.var(i) ^ (flip & enable));
  }
  return b;
}

Benchmark make_c880(Manager& m) {
  // Reduced datapath stand-in for C880 (8-bit ALU): a(8), b(8), c(8),
  // sel(4), pad(2) unused-in-easy-ways = 30 in; 14 out
  // (8 result + carry + zero + 4 group parities).
  ensure_vars(m, 30);
  {
    std::vector<int> a8, b8, c8;
    for (int i = 0; i < 8; ++i) a8.push_back(i), b8.push_back(8 + i), c8.push_back(16 + i);
    interleave_order(m, {{24, 25, 26, 27, 28, 29}, a8, b8, c8});
  }
  Benchmark b;
  b.name = "C880";
  b.num_inputs = 30;
  const Word a = input_word(m, 0, 8);
  const Word bw = input_word(m, 8, 8);
  const Word c = input_word(m, 16, 8);
  const Bdd s0 = m.var(24), s1 = m.var(25), s2 = m.var(26), s3 = m.var(27);
  const Bdd p0 = m.var(28), p1 = m.var(29);

  const Word sum = add_words(a, bw, s3);
  Word res;
  for (int i = 0; i < 8; ++i) {
    const Bdd ai = a[static_cast<std::size_t>(i)], bi = bw[static_cast<std::size_t>(i)],
              ci = c[static_cast<std::size_t>(i)];
    const Bdd arith = sum[static_cast<std::size_t>(i)];
    const Bdd logic = ((!s0) & (ai & bi)) | (s0 & (ai | ci));
    // s2 selects a third-operand bypass (mux network, no cross-bit XOR).
    res.push_back((s2 & ci) | ((!s2) & (((!s1) & arith) | (s1 & logic))));
  }
  Bdd zero = m.bdd_true();
  for (const Bdd& bit : res) zero &= !bit;
  b.outputs = res;
  b.outputs.push_back(sum[8] & !s1);
  b.outputs.push_back(zero);
  // Group comparators over input slices (local support).
  for (int g = 0; g < 4; ++g) {
    const std::size_t i0 = static_cast<std::size_t>(2 * g), i1 = i0 + 1;
    const Bdd eq = (a[i0].iff(bw[i0])) & (a[i1].iff(bw[i1]));
    b.outputs.push_back(eq & ((g % 2 == 0) ? p0 : p1));
  }
  return b;
}

Benchmark make_comparator(Manager& m, int w) {
  // Two w-bit operands; outputs (a < b, a == b, a > b).
  ensure_vars(m, 2 * w);
  {
    std::vector<int> av, bv;
    for (int i = 0; i < w; ++i) av.push_back(i), bv.push_back(w + i);
    interleave_order(m, {av, bv});
  }
  Benchmark b;
  b.name = "cmp" + std::to_string(w);
  b.num_inputs = 2 * w;
  Bdd lt = m.bdd_false(), eq = m.bdd_true();
  for (int i = w - 1; i >= 0; --i) {  // msb first
    const Bdd ai = m.var(i), bi = m.var(w + i);
    lt = lt | (eq & (!ai) & bi);
    eq = eq & !(ai ^ bi);
  }
  b.outputs = {lt, eq, !(lt | eq)};
  return b;
}

Benchmark make_gray(Manager& m, int w) {
  // Binary-to-Gray followed by a +1 on the binary side folded in:
  // out = gray(x + 1); mixes the XOR structure of Gray coding with a carry
  // chain (a compact multi-structure benchmark).
  ensure_vars(m, w);
  Benchmark b;
  b.name = "gray" + std::to_string(w);
  b.num_inputs = w;
  Word one{m.bdd_true()};
  Word inc = add_words(input_word(m, 0, w), one);
  inc.resize(static_cast<std::size_t>(w), m.bdd_false());
  for (int i = 0; i < w; ++i) {
    const Bdd hi = i + 1 < w ? inc[static_cast<std::size_t>(i + 1)] : m.bdd_false();
    b.outputs.push_back(inc[static_cast<std::size_t>(i)] ^ hi);
  }
  return b;
}

Benchmark make_majority(Manager& m, int n) {
  ensure_vars(m, n);
  Benchmark b;
  b.name = "maj" + std::to_string(n);
  b.num_inputs = n;
  std::vector<Bdd> bits;
  for (int i = 0; i < n; ++i) bits.push_back(m.var(i));
  const Word count = count_ones(m, bits);
  Bdd maj = m.bdd_false();
  for (std::uint64_t v = static_cast<std::uint64_t>(n) / 2 + 1;
       v <= static_cast<std::uint64_t>(n); ++v)
    maj |= word_equals(count, v);
  b.outputs = {maj};
  return b;
}

// ---- synthetic PLA-like generators ------------------------------------

/// Deterministic multi-output cube function mirroring the structure of
/// two-level MCNC benchmarks: cubes draw their literals from overlapping
/// *windows* of the input space (real PLA functions have local structure;
/// uniformly random cubes would be information-dense and essentially
/// undecomposable), a shared cube pool creates inter-output sharing, and
/// each output ORs cubes from a couple of windows.
Benchmark make_cubes(Manager& m, const std::string& name, int n_in, int n_out,
                     int pool_size, int cubes_per_output, int min_lits,
                     int max_lits, std::uint64_t seed) {
  ensure_vars(m, n_in);
  Benchmark b;
  b.name = name;
  b.num_inputs = n_in;
  Rng rng(seed);

  // Overlapping variable windows; each cube lives in one window.
  const int window = std::min(n_in, std::max(max_lits + 2, 8));
  const int stride = std::max(1, window / 2);
  std::vector<int> window_starts;
  for (int s = 0; s + window <= n_in; s += stride) window_starts.push_back(s);
  if (window_starts.empty()) window_starts.push_back(0);

  std::vector<Bdd> pool;
  std::vector<int> pool_window;
  pool.reserve(static_cast<std::size_t>(pool_size));
  for (int cIdx = 0; cIdx < pool_size; ++cIdx) {
    const int w = static_cast<int>(rng.below(window_starts.size()));
    const int start = window_starts[static_cast<std::size_t>(w)];
    const int lits = rng.range(min_lits, std::min(max_lits, window));
    std::vector<int> vars(static_cast<std::size_t>(window));
    for (int v = 0; v < window; ++v) vars[static_cast<std::size_t>(v)] = start + v;
    rng.shuffle(vars);
    Bdd cube = m.bdd_true();
    for (int l = 0; l < lits; ++l)
      cube &= m.literal(vars[static_cast<std::size_t>(l)], rng.flip());
    pool.push_back(cube);
    pool_window.push_back(w);
  }

  for (int o = 0; o < n_out; ++o) {
    // Each output draws from two adjacent windows.
    const int w0 = static_cast<int>(rng.below(window_starts.size()));
    const int w1 = std::min(static_cast<int>(window_starts.size()) - 1, w0 + 1);
    Bdd f = m.bdd_false();
    int taken = 0;
    for (int attempt = 0; attempt < 8 * cubes_per_output && taken < cubes_per_output;
         ++attempt) {
      const std::size_t cIdx = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(pool_size)));
      if (pool_window[cIdx] != w0 && pool_window[cIdx] != w1) continue;
      f |= pool[cIdx];
      ++taken;
    }
    b.outputs.push_back(f);
  }
  return b;
}

}  // namespace

Benchmark build(const std::string& name, Manager& m) {
  static const std::map<std::string, std::function<Benchmark(Manager&)>> registry = {
      {"5xp1", [](Manager& mm) { return make_5xp1(mm); }},
      {"9sym", [](Manager& mm) { return make_9sym(mm); }},
      {"alu2", [](Manager& mm) { return make_alu(mm, "alu2", 4, 8); }},
      {"alu4", [](Manager& mm) { return make_alu(mm, "alu4", 6, 12); }},
      {"apex7", [](Manager& mm) {
         return make_cubes(mm, "apex7", 49, 37, 70, 7, 3, 6, 0xA9E871);
       }},
      {"b9", [](Manager& mm) {
         return make_cubes(mm, "b9", 41, 21, 48, 7, 3, 6, 0xB90001);
       }},
      {"C499", [](Manager& mm) { return make_c499(mm); }},
      {"C880", [](Manager& mm) { return make_c880(mm); }},
      {"clip", [](Manager& mm) { return make_clip(mm); }},
      {"count", [](Manager& mm) { return make_count(mm); }},
      {"duke2", [](Manager& mm) {
         return make_cubes(mm, "duke2", 22, 29, 60, 7, 3, 6, 0xD0CE2);
       }},
      {"e64", [](Manager& mm) { return make_e64(mm); }},
      {"f51m", [](Manager& mm) { return make_f51m(mm); }},
      {"misex1", [](Manager& mm) {
         return make_cubes(mm, "misex1", 8, 7, 20, 5, 2, 5, 0x315E1);
       }},
      {"misex2", [](Manager& mm) {
         return make_cubes(mm, "misex2", 25, 18, 44, 6, 3, 6, 0x315E2);
       }},
      {"rd53", [](Manager& mm) { return make_rd(mm, 5, 3); }},
      {"rd73", [](Manager& mm) { return make_rd(mm, 7, 3); }},
      {"rd84", [](Manager& mm) { return make_rd(mm, 8, 4); }},
      {"rot", [](Manager& mm) { return make_rot(mm); }},
      {"sao2", [](Manager& mm) {
         return make_cubes(mm, "sao2", 10, 4, 16, 6, 3, 6, 0x5A02);
       }},
      {"vg2", [](Manager& mm) {
         return make_cubes(mm, "vg2", 25, 8, 30, 6, 3, 6, 0x0062);
       }},
      {"z4ml", [](Manager& mm) { return make_z4ml(mm); }},
      // Convenience rows for the CLI and the figure experiments.
      {"add4", [](Manager& mm) { return adder(mm, 4); }},
      {"add8", [](Manager& mm) { return adder(mm, 8); }},
      {"add16", [](Manager& mm) { return adder(mm, 16); }},
      {"mult4", [](Manager& mm) { return multiplier(mm, 4); }},
      {"mult6", [](Manager& mm) { return multiplier(mm, 6); }},
      {"pm3", [](Manager& mm) { return partial_multiplier(mm, 3); }},
      {"pm4", [](Manager& mm) { return partial_multiplier(mm, 4); }},
      {"cmp8", [](Manager& mm) { return make_comparator(mm, 8); }},
      {"cmp16", [](Manager& mm) { return make_comparator(mm, 16); }},
      {"gray8", [](Manager& mm) { return make_gray(mm, 8); }},
      {"maj11", [](Manager& mm) { return make_majority(mm, 11); }},
  };
  const auto it = registry.find(name);
  assert(it != registry.end() && "unknown benchmark name");
  return it->second(m);
}

std::vector<std::string> table_rows() {
  return {"5xp1", "9sym",   "alu2",   "apex7", "b9",   "C499", "C880",
          "clip", "count",  "duke2",  "e64",   "f51m", "misex1",
          "misex2", "rd73", "rd84",   "rot",   "sao2", "vg2",  "z4ml"};
}

}  // namespace mfd::circuits
