// Crash-isolated child execution: one row of a sweep runs in a forked child
// under a wall-clock watchdog, and its result record comes back over a pipe
// (docs/ROBUSTNESS.md §"Sweep supervision").
//
// Why fork (not threads): the failure modes the supervisor must survive —
// std::bad_alloc deep in a BDD apply, an OS OOM kill, a pathological row
// that never terminates, an outright abort — all take the whole process
// down. A child process turns each of them into a waitpid status the parent
// can classify, journal, and retry.
//
// Exit-status taxonomy (ChildStatus):
//   ok       complete result record received (even if it arrived only after
//            a SIGTERM wind-down — outcome.soft_timeout says so)
//   error    the row callback threw a typed error; the message is the payload
//   crash    the child died by signal (SIGABRT, SIGSEGV, ...) or exited
//            without delivering a record
//   timeout  the watchdog fired and the child never delivered: SIGTERM (the
//            child may wind down through the degradation ladder, see
//            core/budget.h request_global_expire) then, after a grace
//            period, SIGKILL
//   oom      killed by a SIGKILL the watchdog did not send (the kernel OOM
//            killer) or the callback died on std::bad_alloc
//
// The pipe protocol is length-prefixed and CRC-guarded, so a child that dies
// mid-write is detected as "no record" rather than a half-parsed one.
//
// The surface is split into separable primitives so a scheduler can
// multiplex many children at once (super/scheduler.h):
//
//   spawn_child()        fork + pipe; returns a Child handle
//   Child::fd()          the read end, non-blocking — poll() it for POLLIN
//   Child::pump()        drain available record bytes (call on POLLIN/HUP)
//   Child::poke_watchdog()  fire any due SIGTERM/SIGKILL escalation
//   Child::next_deadline_ms()  ms until the next watchdog action
//   Child::reap()        waitpid + classify into a ChildOutcome
//   Child::rss_bytes()   the child's current resident set (admission caps)
//
// run_in_child() remains the one-shot convenience wrapper (spawn → poll/pump
// to EOF → reap) with exactly the pre-scheduler semantics.
//
// Fork-safety contract: spawn from a single-threaded parent (the bench
// harness qualifies: the scheduler runs on the main thread). The child never
// returns — it runs the callback, writes the record, and _exit()s, skipping
// atexit handlers and static destructors.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

namespace mfd::super {

enum class ChildStatus { kOk, kError, kCrash, kTimeout, kOom };

const char* child_status_name(ChildStatus s);

struct ChildLimits {
  /// Wall-clock watchdog per attempt; 0 disables it.
  double watchdog_ms = 0.0;
  /// SIGTERM -> SIGKILL escalation gap: how long a winding-down child gets
  /// to finish its degraded emission and verification.
  double grace_ms = 5000.0;
};

struct ChildOutcome {
  ChildStatus status = ChildStatus::kCrash;
  /// The child's result record (status ok) or error message (status error/oom).
  std::string payload;
  /// Human-readable classification detail (signal name, exit code, ...).
  std::string detail;
  /// The watchdog fired but the record still arrived before the SIGKILL
  /// escalation (the SIGTERM wind-down path worked).
  bool soft_timeout = false;
  double seconds = 0.0;
  int exit_code = -1;    ///< valid when the child exited
  int term_signal = 0;   ///< valid when the child was killed by a signal
};

/// One live forked row child. Move-only; the destructor SIGKILLs and reaps
/// a child that was never reaped, so a scheduler bailing out on an
/// exception cannot leak a process or an fd.
class Child {
 public:
  Child() = default;
  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  ~Child();

  pid_t pid() const { return pid_; }
  /// Read end of the result pipe (non-blocking). -1 after reap.
  int fd() const { return fd_; }
  /// True once the pipe reached EOF (or the post-SIGKILL read window
  /// closed): the child delivered everything it ever will; reap() it.
  bool eof() const { return eof_; }
  bool reaped() const { return reaped_; }
  double elapsed_ms() const;

  /// Milliseconds until the next watchdog action is due (SIGTERM, the
  /// SIGKILL escalation, or giving up on a SIGKILLed child's pipe), or a
  /// negative value when no deadline is pending (no watchdog armed).
  double next_deadline_ms() const;

  /// Fires whichever watchdog action is due, if any: SIGTERM at
  /// watchdog_ms, SIGKILL at watchdog_ms + grace_ms, and after a further
  /// fixed window it stops waiting for the pipe of a SIGKILLed child.
  void poke_watchdog();

  /// Drains whatever the pipe has ready (call after poll() reports the fd
  /// readable). Sets eof() when the child closed its end.
  void pump();

  /// waitpid (blocking) + classify everything the pipe delivered into a
  /// ChildOutcome. Call once, after eof() — or early to force the issue
  /// after a SIGKILL. Closes the fd.
  ChildOutcome reap();

  /// Current resident set size of the child in bytes (via /proc; 0 when
  /// unreadable or on platforms without /proc). Admission-cap input.
  std::size_t rss_bytes() const;

  /// The per-child fault-firing report file this child was given (empty
  /// when none): the parent latches and removes it at reap time.
  const std::string& fired_file() const { return fired_file_; }

 private:
  friend Child spawn_child(const std::function<std::string()>&,
                           const ChildLimits&, const std::string&);

  pid_t pid_ = -1;
  int fd_ = -1;
  std::chrono::steady_clock::time_point start_;
  ChildLimits limits_;
  std::string fired_file_;
  std::string buf_;
  bool sigterm_sent_ = false;
  bool sigkill_sent_ = false;
  double sigkill_at_ms_ = 0.0;
  bool eof_ = false;
  bool reaped_ = false;
};

/// Forks `fn` into a watchdogged child and returns its handle. The string
/// `fn` returns is piped back verbatim as the reaped outcome's payload. The
/// child installs a SIGTERM handler that requests a global budget wind-down
/// (request_global_expire) before running `fn`. When `fired_file` is
/// non-empty the child reports fault-rule firings there (it overrides
/// MFD_FAULT_FIRED_FILE in the child only — the parent's environment is
/// never touched), so concurrent children never interleave reports in one
/// file. Throws mfd::Error when the fork/pipe machinery itself fails (not
/// when the child does).
Child spawn_child(const std::function<std::string()>& fn,
                  const ChildLimits& limits, const std::string& fired_file = {});

/// Runs `fn` in a forked child to completion and returns its classified
/// outcome: spawn_child + poll/pump under the watchdog + reap in one call.
ChildOutcome run_in_child(const std::function<std::string()>& fn,
                          const ChildLimits& limits);

}  // namespace mfd::super
