// XC3000 CLB packing: mergeability rule, greedy vs matching packers.
#include <gtest/gtest.h>

#include "core/synthesizer.h"
#include "map/clb.h"
#include "net/baselines.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd::map {
namespace {

using net::Lut;
using net::LutNetwork;

Lut lut_on(std::vector<int> inputs) {
  Lut l;
  l.inputs = std::move(inputs);
  l.table.assign(std::size_t{1} << l.inputs.size(), false);
  l.table.back() = true;  // AND of all inputs
  return l;
}

TEST(Clb, MergeRule) {
  const ClbOptions opts;
  // 4+4 inputs with 3 shared -> 5 distinct: mergeable.
  EXPECT_TRUE(mergeable(lut_on({0, 1, 2, 3}), lut_on({1, 2, 3, 4}), opts));
  // 4+4 with 2 shared -> 6 distinct: not mergeable.
  EXPECT_FALSE(mergeable(lut_on({0, 1, 2, 3}), lut_on({2, 3, 4, 5}), opts));
  // A 5-input LUT can never pair.
  EXPECT_FALSE(mergeable(lut_on({0, 1, 2, 3, 4}), lut_on({0}), opts));
  // Two small LUTs always pair when unioned inputs fit.
  EXPECT_TRUE(mergeable(lut_on({0}), lut_on({1, 2}), opts));
}

TEST(Clb, PackSimpleNetwork) {
  LutNetwork net(6);
  const int a = net.add_lut(lut_on({0, 1, 2, 3}));  // pairs with b
  const int b = net.add_lut(lut_on({1, 2, 3, 4}));
  const int c = net.add_lut(lut_on({0, 1, 2, 3, 4}));  // 5 inputs: alone
  net.add_output(a);
  net.add_output(b);
  net.add_output(c);
  const ClbResult greedy = pack_greedy(net);
  const ClbResult matching = pack_matching(net);
  EXPECT_EQ(greedy.num_luts, 3);
  EXPECT_EQ(matching.merged_pairs, 1);
  EXPECT_EQ(matching.num_clbs, 2);
  EXPECT_LE(matching.num_clbs, greedy.num_clbs);
}

TEST(Clb, MatchingBeatsGreedyOnAdversarialCase) {
  // Chain a-b-c-d where greedy pairs (a,b) leaving c,d unpairable would tie,
  // so build a star-ish case: greedy pairs the first feasible, matching
  // finds the perfect pairing.
  LutNetwork net(8);
  // a:{0,1,2,3} pairs with b:{0,1,2,4} and c:{1,2,3,0};
  // d:{4,5,6,7} pairs ONLY with b (via... construct directly):
  const int a = net.add_lut(lut_on({0, 1, 2, 3}));
  const int b = net.add_lut(lut_on({0, 1, 2, 4}));
  const int c = net.add_lut(lut_on({0, 1, 2, 3}));  // duplicate inputs, distinct LUT
  const int d = net.add_lut(lut_on({4, 5, 6, 7}));
  net.add_output(a);
  net.add_output(b);
  net.add_output(c);
  net.add_output(d);
  // Pairs: a-b, a-c, b-c share >= 3 inputs; d pairs with nobody (4 distinct
  // + at best 1 shared with b = 7 > 5). Max matching = 2 pairs? a-b and c-?
  // c pairs with a or b only; so best is (a,c)(b alone)(d alone) or (a,b)(c)(d):
  // both give 1 pair. Just verify consistency between the two packers.
  const ClbResult greedy = pack_greedy(net);
  const ClbResult matching = pack_matching(net);
  EXPECT_EQ(matching.merged_pairs, 1);
  EXPECT_LE(matching.num_clbs, greedy.num_clbs);
}

TEST(Clb, PackRealNetworks) {
  for (const int n : {4, 8}) {
    LutNetwork net = net::conditional_sum_adder(n);
    const ClbResult greedy = pack_greedy(net);
    const ClbResult matching = pack_matching(net);
    EXPECT_EQ(greedy.num_luts, matching.num_luts);
    EXPECT_LE(matching.num_clbs, greedy.num_clbs);  // matching is optimal
    EXPECT_GE(matching.merged_pairs, 1);
    EXPECT_EQ(matching.num_clbs + matching.merged_pairs, matching.num_luts);
  }
}

TEST(Clb, MatchingOptimalOnRandomMergeGraphs) {
  // The matching packer must equal the brute-force maximum pairing.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int luts = rng.range(2, 8);
    LutNetwork net(6);
    for (int i = 0; i < luts; ++i) {
      std::vector<int> ins;
      const int k = rng.range(1, 4);
      for (int j = 0; j < k; ++j) {
        const int cand = rng.range(0, 5);
        if (std::find(ins.begin(), ins.end(), cand) == ins.end()) ins.push_back(cand);
      }
      net.add_output(net.add_lut(lut_on(ins)));
    }
    const ClbOptions opts;
    const Graph g = merge_graph(net, opts);
    const ClbResult matching = pack_matching(net, opts);
    EXPECT_EQ(matching.merged_pairs, test::brute_force_max_matching(g));
  }
}

// ---------------------------------------------------------------------------
// XC4000 packing
// ---------------------------------------------------------------------------

TEST(Xc4000, AbsorbsHTriples) {
  // f(0..3) and g(4..7) feed a 2-input combiner: one CLB.
  LutNetwork net(8);
  const int f = net.add_lut(lut_on({0, 1, 2, 3}));
  const int g = net.add_lut(lut_on({4, 5, 6, 7}));
  const int h = net.add_lut(lut_on({f, g}));
  net.add_output(h);
  const Xc4000Result r = pack_xc4000(net);
  EXPECT_EQ(r.num_luts, 3);
  EXPECT_EQ(r.h_triples, 1);
  EXPECT_EQ(r.num_clbs, 1);
}

TEST(Xc4000, NoAbsorptionAcrossFanout) {
  // The feeder also drives a primary output: it cannot vanish inside H.
  LutNetwork net(8);
  const int f = net.add_lut(lut_on({0, 1, 2, 3}));
  const int g = net.add_lut(lut_on({4, 5, 6, 7}));
  const int h = net.add_lut(lut_on({f, g}));
  net.add_output(h);
  net.add_output(f);  // extra fanout via output
  const Xc4000Result r = pack_xc4000(net);
  EXPECT_EQ(r.h_triples, 0);
  EXPECT_EQ(r.num_clbs, 2);  // three LUTs -> pair + single
}

TEST(Xc4000, WideCombinerNotAbsorbed) {
  LutNetwork net(10);
  const int f = net.add_lut(lut_on({0, 1, 2, 3}));
  const int g = net.add_lut(lut_on({4, 5, 6, 7}));
  const int h = net.add_lut(lut_on({f, g, 8, 9}));  // 4 inputs: H has only 3
  net.add_output(h);
  const Xc4000Result r = pack_xc4000(net);
  EXPECT_EQ(r.h_triples, 0);
  EXPECT_EQ(r.num_clbs, 2);
}

TEST(Xc4000, PairsAreUnconstrained) {
  // Unlike the XC3000, two 4-input LUTs with disjoint supports still share
  // a CLB (independent F and G generators).
  LutNetwork net(8);
  net.add_output(net.add_lut(lut_on({0, 1, 2, 3})));
  net.add_output(net.add_lut(lut_on({4, 5, 6, 7})));
  const Xc4000Result r = pack_xc4000(net);
  EXPECT_EQ(r.pairs, 1);
  EXPECT_EQ(r.num_clbs, 1);
  const ClbResult xc3000 = pack_matching(net);
  EXPECT_EQ(xc3000.num_clbs, 2);  // the XC3000 rule rejects this pair
}

TEST(Xc4000, FullFlowOnBenchmarks) {
  for (const char* name : {"rd84", "z4ml", "misex1"}) {
    bdd::Manager m;
    const auto bench = mfd::circuits::build(name, m);
    const auto result = mfd::Synthesizer(mfd::preset_mulop_dc(4)).run(bench);
    ASSERT_TRUE(result.verified);
    ASSERT_LE(result.network.max_fanin(), 4);
    const Xc4000Result r = pack_xc4000(result.network);
    EXPECT_EQ(r.num_luts, result.network.count_luts());
    EXPECT_GE(r.num_clbs, (r.num_luts + 1) / 3);  // can't beat all-triples
    EXPECT_LE(r.num_clbs, r.num_luts);
    EXPECT_EQ(r.h_triples * 3 + r.pairs * 2 + r.singles, r.num_luts);
  }
}

}  // namespace
}  // namespace mfd::map
