# Empty dependencies file for ext_xc4000.
# This may be replaced when dependencies are built.
