// Deterministic fault injection for the robustness suite and field debugging.
//
// A *fault spec* arms one or more rules, each firing exactly once at the
// k-th execution of a named call site:
//
//   spec  :=  rule (',' rule)*
//   rule  :=  site '@' k [':' kind]
//   site  :=  dotted identifier of an instrumented call site (see below)
//   k     :=  1-based hit count at which the rule fires
//   kind  :=  'budget'  (default) throw BudgetExceeded(kInjected)
//           | 'alloc'             throw std::bad_alloc (allocation failure)
//           | 'timeout'           force the installed ResourceGovernor's
//                                 deadline into the past (induced timeout);
//                                 throws BudgetExceeded if no governor is
//                                 installed
//           | 'crash'             std::abort() — an unrecoverable in-process
//                                 death, survivable only under the sweep
//                                 supervisor (src/super)
//           | 'hang'              sleep far past any watchdog — exercises
//                                 the supervisor's SIGTERM -> SIGKILL
//                                 escalation
//
// Example: "bdd.mk@500:budget,util.coloring@2:timeout".
//
// Instrumented sites: bdd.mk, bdd.alloc, bdd.ite, util.coloring,
// sym.symmetrize, decomp.boundset, decomp.dc_assign (`registered_sites()`
// returns this list; the bench binaries print it via --list-fault-sites).
//
// Configuration comes from `configure()` (the bench binaries' --fault-inject
// flag) or the MFD_FAULT_INJECT environment variable (read once, lazily).
// The harness is process-wide and costs a single relaxed atomic load per
// call site while disarmed, so it stays compiled into release builds.
//
// Supervised sweeps: each forked row child inherits the armed spec but
// counts hits from zero, so `site@k` is *per row* under supervision. To keep
// rules one-shot across the whole sweep anyway, a firing rule appends
// "site@ordinal:kind" to the file named by $MFD_FAULT_FIRED_FILE (when set)
// before it throws/aborts/hangs, and the supervisor latches it in the parent
// via `latch_fired` so no later child re-fires it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mfd::fault {

/// Parses and arms a fault spec (replacing any previous one). An empty spec
/// disarms. Throws ParseError (file "<fault-spec>", 1-based rule index as
/// the line) on malformed input, leaving the previous spec armed.
void configure(const std::string& spec);

/// Disarms all rules and resets every site counter.
void clear();

/// Marks the armed rule `site@at` as already fired (one-shot latch), so it
/// will not fire again in this process or in any child forked afterwards.
/// Unknown site/ordinal pairs are ignored. Used by the sweep supervisor to
/// keep rules one-shot across row children (see the header comment).
void latch_fired(const std::string& site, std::uint64_t at);

/// The instrumented call sites, in documentation order (--list-fault-sites).
std::vector<std::string> registered_sites();

/// The parseable fault kinds, default first.
std::vector<std::string> kind_names();

namespace detail {
extern std::atomic<bool> g_armed;
void point_slow(const char* site);
void init_from_env_once();
}  // namespace detail

/// True when at least one rule is armed (after lazily consulting
/// MFD_FAULT_INJECT on the first call).
inline bool armed() {
  detail::init_from_env_once();
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Marks one execution of `site`; fires (throws / expires the governor) when
/// an armed rule matches this hit. Call as `if (fault::armed()) fault::point(...)`
/// so disarmed runs pay only the atomic load.
inline void point(const char* site) {
  if (armed()) detail::point_slow(site);
}

}  // namespace mfd::fault
