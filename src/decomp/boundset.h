// Bound-set selection (Section 5, step 1 context).
//
// Candidates are windows over the symmetric-sifting variable order — the
// paper's "starting point of our search for good candidates" — refined by a
// local exchange search that swaps bound against free variables (whole
// symmetry groups are kept on one side by construction of the order).
//
// A candidate is scored by the support reduction it buys:
//   benefit = sum_i (|supp(f_i) /\ B| - r_i),
// with r_i the per-output code length after an (inexpensive) ISF coloring of
// the candidate's cofactor table; ties prefer larger sharing potential
// (sum r_i - r_joint, the gap the paper's step 2 exploits), then fewer
// total functions, then the earliest-generated candidate. Generation
// position is a canonical, manager-independent key (window start, then move
// index), so the winner never depends on allocation order, completion
// order, or thread count.
//
// With `jobs > 1` the search runs generate -> parallel-evaluate ->
// deterministic reduce: each batch of candidates is scored on a worker pool
// where every worker owns a private bdd::Manager populated once via
// `transfer_from` (workers never touch the caller's manager), and the
// reduction scans results in candidate order. A candidate's score is pure
// scalar data derived from function identity, not from node layout, so
// per-worker managers yield bit-identical scores and the chosen bound set is
// invariant under `jobs` (see docs/PARALLELISM.md).
#pragma once

#include <cstdint>
#include <vector>

#include "isf/isf.h"

namespace mfd::cache {
class SignatureComputer;
}  // namespace mfd::cache

namespace mfd {

struct BoundSetOptions {
  int improvement_passes = 2;
  /// Cap on evaluated candidates (windows + exchange moves).
  int max_evaluations = 200;
  std::uint64_t seed = 1;
  /// Worker threads (caller included) used to score candidates; 1 = serial.
  /// Any value yields the same chosen bound set.
  int jobs = 1;
};

struct BoundSetChoice {
  std::vector<int> vars;          // empty = no profitable bound set found
  long benefit = -1;              // sum_i (cut_i - r_i)
  int sharing_gap = 0;            // sum_i r_i - r_joint
  long sum_r = 0;                 // sum_i r_i
  std::vector<int> r_per_output;  // r_i for each output
};

/// Evaluates one candidate bound set. `sig` (a signature computer over the
/// functions' manager) routes the whole evaluation through the multiplicity
/// cache (docs/CACHING.md) — a hit skips the cofactor-table construction and
/// ISF colorings; nullptr evaluates uncached. Either way the returned scores
/// are identical — the cache is an optimization only, never part of the
/// result.
BoundSetChoice evaluate_bound_set(const std::vector<Isf>& fns,
                                  const std::vector<std::vector<int>>& supports,
                                  const std::vector<int>& bound,
                                  std::uint64_t seed,
                                  cache::SignatureComputer* sig = nullptr);

/// Searches for the best bound set of size p among the variables of
/// `order` (the active variables, most significant level first).
BoundSetChoice select_bound_set(const std::vector<Isf>& fns,
                                const std::vector<int>& order, int p,
                                const BoundSetOptions& opts = {});

}  // namespace mfd
