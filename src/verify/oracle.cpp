#include "verify/oracle.h"

#include <exception>
#include <sstream>

#include "cache/cache.h"
#include "io/blif.h"
#include "io/pla.h"
#include "net/simulate.h"
#include "util/rng.h"

namespace mfd::verify {
namespace {

/// PLA round-trip checks, independent of the flow: the exact fr writer must
/// reproduce (on, care) verbatim; the lossy fd writer spends DCs but must
/// stay admissible and completely specified.
bool check_pla_round_trip(const TableSpec& spec, std::string* failure) {
  bdd::Manager m;
  const std::vector<Isf> fns = to_isfs(spec, m);

  {
    const io::PlaFile pla = io::pla_from_isfs_exact(fns, spec.num_inputs);
    const std::string text = io::write_pla(pla);
    const io::PlaFile back = io::parse_pla(text, "<round-trip>");
    const std::vector<Isf> fns2 = io::pla_to_isfs(back, m);
    if (fns2.size() != fns.size()) {
      *failure = "pla exact round-trip changed the output count";
      return false;
    }
    for (std::size_t o = 0; o < fns.size(); ++o)
      if (fns2[o] != fns[o]) {
        *failure = "pla exact round-trip altered (on, care) of output " +
                   std::to_string(o);
        return false;
      }
  }
  {
    const io::PlaFile pla = io::pla_from_isfs(fns, spec.num_inputs);
    const std::string text = io::write_pla(pla);
    const io::PlaFile back = io::parse_pla(text, "<round-trip>");
    const std::vector<Isf> fns2 = io::pla_to_isfs(back, m);
    for (std::size_t o = 0; o < fns.size(); ++o) {
      if (!fns2[o].is_completely_specified()) {
        *failure = "pla fd round-trip left output " + std::to_string(o) +
                   " incompletely specified";
        return false;
      }
      if (!fns[o].admits(fns2[o].on())) {
        *failure = "pla fd round-trip picked an inadmissible extension for output " +
                   std::to_string(o);
        return false;
      }
    }
  }
  return true;
}

/// BLIF export → re-parse → BDD equivalence against the network itself.
bool check_blif_round_trip(const net::LutNetwork& network, bdd::Manager& m,
                           const std::vector<int>& pi_vars, std::string* failure) {
  const std::string text = io::write_blif(network, "fuzz");
  io::BlifModel model;
  try {
    model = io::parse_blif(text, m, "<round-trip>");
  } catch (const std::exception& e) {
    *failure = std::string("blif round-trip: emitted text failed to re-parse: ") +
               e.what();
    return false;
  }
  const std::vector<bdd::Bdd> direct = net::output_bdds(network, m, pi_vars);
  if (model.functions.size() != direct.size()) {
    *failure = "blif round-trip changed the output count";
    return false;
  }
  for (std::size_t o = 0; o < direct.size(); ++o)
    if (model.functions[o] != direct[o]) {
      *failure = "blif round-trip altered the function of output " + std::to_string(o);
      return false;
    }
  return true;
}

}  // namespace

std::vector<OptionPoint> derive_option_points(std::uint64_t seed) {
  Rng rng(seed ^ 0x0A0C1Eull);
  std::vector<OptionPoint> points;

  // The base configuration: full DC exploitation at a randomized LUT size
  // and bound-set seed. Three points share it across the determinism axes —
  // jobs and cache state must not change the network (docs/PARALLELISM.md,
  // docs/CACHING.md).
  SynthesisOptions base = preset_mulop_dc(rng.range(3, 5));
  base.verify = false;
  base.portfolio_bound_extra = rng.flip();
  base.decomp.seed = rng.below(1 << 20) + 1;
  base.decomp.boundset.seed = base.decomp.seed;

  auto with_jobs = [](SynthesisOptions o, int jobs) {
    o.decomp.boundset.jobs = jobs;
    return o;
  };
  points.push_back({"base/jobs1/nocache", with_jobs(base, 1), false, "base"});
  points.push_back({"base/jobs4/nocache", with_jobs(base, 4), false, "base"});
  points.push_back({"base/jobs1/cache", with_jobs(base, 1), true, "base"});

  // A variant configuration exercising a different preset / pass set: checked
  // for correctness only (its network may legitimately differ from base).
  SynthesisOptions variant;
  switch (rng.below(3)) {
    case 0: variant = preset_mulop_dc(rng.range(3, 5)); break;
    case 1: variant = preset_mulopII(rng.range(3, 5)); break;
    default: variant = preset_noshare_nodc(rng.range(3, 5)); break;
  }
  variant.verify = false;
  variant.decomp.seed = rng.below(1 << 20) + 1;
  variant.decomp.boundset.seed = variant.decomp.seed;
  if (rng.chance(1, 2)) variant.passes = "decompose,simplify,pack";
  variant.decomp.boundset.jobs = rng.flip() ? 4 : 1;
  points.push_back({"variant", variant, true, ""});

  // Occasionally a budgeted point: the degradation ladder must still land on
  // an admissible network. Budgets make results timing-class dependent, so
  // it never joins a determinism group.
  if (rng.chance(1, 4)) {
    SynthesisOptions tight = base;
    tight.budget.node_ceiling = 2000;
    points.push_back({"base/node-budget", with_jobs(tight, 1), false, ""});
  }
  return points;
}

OracleResult run_oracle(const TableSpec& spec, std::uint64_t seed,
                        const OracleOptions& oracle_opts) {
  OracleResult result;
  const std::vector<OptionPoint> points = derive_option_points(seed);

  if (oracle_opts.round_trip) {
    ++result.checks_run;
    std::string failure;
    if (!check_pla_round_trip(spec, &failure)) {
      result.ok = false;
      result.failure = failure;
      result.failing_point = "pla-round-trip";
      return result;
    }
  }

  struct GroupRun {
    std::string point;
    std::string network;
  };
  std::vector<std::pair<std::string, GroupRun>> group_runs;

  for (const OptionPoint& point : points) {
    SynthesisOptions opts = point.opts;
    if (oracle_opts.jobs_override >= 0)
      opts.decomp.boundset.jobs = oracle_opts.jobs_override;
    cache::configure(point.cache_on ? cache::CacheConfig{}
                                    : cache::CacheConfig::disabled());

    bdd::Manager m;  // fresh per point: no variable-order leakage
    const std::vector<Isf> fns = to_isfs(spec, m);
    std::vector<int> pi_vars(static_cast<std::size_t>(spec.num_inputs));
    for (int v = 0; v < spec.num_inputs; ++v) pi_vars[static_cast<std::size_t>(v)] = v;

    SynthesisResult synth;
    try {
      synth = Synthesizer(opts).run(fns, pi_vars, "fuzz/" + point.label);
    } catch (const std::exception& e) {
      result.ok = false;
      result.failure = std::string("flow raised: ") + e.what();
      result.failing_point = point.label;
      break;
    }
    ++result.points_run;

    std::string error;
    ++result.checks_run;
    if (!net::check_exact(synth.network, fns, pi_vars, &error)) {
      result.ok = false;
      result.failure = "care-set violation (exact): " + error;
      result.failing_point = point.label;
      break;
    }
    ++result.checks_run;
    if (!net::check_by_simulation(synth.network, fns, pi_vars, /*exhaustive_limit=*/12,
                                  /*samples=*/2000, /*seed=*/seed ^ 0x51Cull, &error)) {
      result.ok = false;
      result.failure = "care-set violation (simulation): " + error;
      result.failing_point = point.label;
      break;
    }
    if (oracle_opts.round_trip) {
      ++result.checks_run;
      std::string failure;
      if (!check_blif_round_trip(synth.network, m, pi_vars, &failure)) {
        result.ok = false;
        result.failure = failure;
        result.failing_point = point.label;
        break;
      }
    }
    if (!point.group.empty())
      group_runs.emplace_back(point.group,
                              GroupRun{point.label, synth.network.to_string()});
  }

  // Determinism cross-check: every pair within a group must match exactly.
  if (result.ok) {
    for (std::size_t i = 0; i < group_runs.size(); ++i)
      for (std::size_t j = i + 1; j < group_runs.size(); ++j) {
        if (group_runs[i].first != group_runs[j].first) continue;
        ++result.checks_run;
        if (group_runs[i].second.network != group_runs[j].second.network) {
          result.ok = false;
          result.failure = "determinism violation: networks of '" +
                           group_runs[i].second.point + "' and '" +
                           group_runs[j].second.point + "' differ";
          result.failing_point = group_runs[j].second.point;
          break;
        }
      }
  }

  cache::configure(cache::CacheConfig{});  // restore defaults for the caller
  return result;
}

}  // namespace mfd::verify
