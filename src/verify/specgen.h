// Seeded random ISF specification generator for the differential fuzz
// harness (tools/mfd_fuzz, docs/FUZZING.md).
//
// Specs are generated as explicit truth tables (TableSpec) rather than BDDs:
// a table is manager-independent, trivially serializable, and regenerable
// bit-exactly from its seed, which is what the delta-debugging shrinker and
// the reproducer format need. Conversion to the flow's Isf representation is
// a separate, deterministic step (to_isfs).
//
// The generator deliberately skews toward the shapes that break DC-handling
// code: extreme don't-care densities (including all-DC outputs), constant
// outputs, duplicated outputs, and outputs restricted to a shared subset of
// the inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "isf/isf.h"

namespace mfd::verify {

/// One multi-output incompletely specified function as explicit truth
/// tables: bit m of outputs[o] describes minterm m (inputs read LSB-first:
/// bit i of m is the value of input i).
struct TableSpec {
  int num_inputs = 0;
  struct Output {
    /// 2^num_inputs entries each; on[m] is meaningful only where care[m]=1
    /// (the invariant on <= care is maintained everywhere).
    std::vector<std::uint8_t> on;
    std::vector<std::uint8_t> care;
  };
  std::vector<Output> outputs;

  std::size_t table_size() const { return std::size_t{1} << num_inputs; }
};

struct SpecGenOptions {
  int min_inputs = 1;
  int max_inputs = 7;
  int min_outputs = 1;
  int max_outputs = 4;
};

/// Deterministically generates a spec from `seed`: same seed, same tables,
/// on every platform. Input/output counts are drawn skewed toward small;
/// each output independently picks a don't-care density mode (complete,
/// sparse, balanced, heavy, all-DC), with extra modes for constants,
/// duplicates of earlier outputs, and reduced-support functions.
TableSpec generate_spec(std::uint64_t seed, const SpecGenOptions& opts = {});

/// Builds the spec's ISFs in `m` over manager variables 0..num_inputs-1
/// (growing the manager as needed). Deterministic given the spec.
std::vector<Isf> to_isfs(const TableSpec& spec, bdd::Manager& m);

/// Reads ISFs back into table form by evaluating every minterm; `fns` must
/// depend only on manager variables 0..num_inputs-1.
TableSpec from_isfs(const std::vector<Isf>& fns, int num_inputs);

/// True iff the two specs have identical (on, care) planes everywhere.
bool same_spec(const TableSpec& a, const TableSpec& b);

/// Human-oriented one-line shape summary, e.g. "4i/2o dc=37%".
std::string describe(const TableSpec& spec);

}  // namespace mfd::verify
