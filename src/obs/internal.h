// Cross-TU plumbing of the observability subsystem (not part of the public
// surface; include obs/obs.h instead).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/obs.h"

namespace mfd::obs::detail {

void snapshot_scalars(std::map<std::string, std::uint64_t>* out_counters,
                      std::map<std::string, double>* out_gauges);
void reset_scalars();

/// Merged copy of every thread's phase tree (root "total"); open phases
/// contribute partially elapsed time.
PhaseNode snapshot_phases();
void reset_phases();

}  // namespace mfd::obs::detail
