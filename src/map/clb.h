// LUT -> CLB packing for the Xilinx XC3000 target of the paper's tables.
//
// An XC3000 CLB realizes either one function of up to 5 inputs or two
// functions of up to 4 inputs each sharing at most 5 distinct inputs.
// mulop-dc packs greedily (first fit); mulop-dcII formulates the pairing as
// maximum-cardinality matching on the "mergeable" graph and solves it with
// the blossom algorithm, as proposed by Murgai et al. [13] — the only
// difference between the paper's Table 1 and Table 2 flows.
#pragma once

#include "net/lutnet.h"
#include "util/graph.h"

namespace mfd::map {

struct ClbOptions {
  int lut_inputs = 5;        ///< single-LUT CLB capacity
  int pair_max_inputs = 4;   ///< per-LUT fanin cap when pairing
  int pair_total_inputs = 5; ///< distinct inputs of a paired CLB
};

struct ClbResult {
  int num_luts = 0;      ///< live LUTs packed
  int merged_pairs = 0;  ///< CLBs holding two LUTs
  int num_clbs = 0;      ///< num_luts - merged_pairs
};

/// True iff two LUTs fit one CLB together.
bool mergeable(const net::Lut& a, const net::Lut& b, const ClbOptions& opts);

/// The pairing graph over live LUTs (vertex i = i-th live LUT).
Graph merge_graph(const net::LutNetwork& net, const ClbOptions& opts);

/// mulop-dcII packing: maximum-cardinality matching.
ClbResult pack_matching(const net::LutNetwork& net, const ClbOptions& opts = {});

/// mulop-dc packing: greedy first-fit pairing in topological order.
ClbResult pack_greedy(const net::LutNetwork& net, const ClbOptions& opts = {});

// ---------------------------------------------------------------------------
// XC4000 (extension beyond the paper's XC3000 target)
// ---------------------------------------------------------------------------

struct Xc4000Result {
  int num_luts = 0;      ///< live LUTs packed (each must have <= 4 inputs)
  int h_triples = 0;     ///< CLBs realizing h(f(..), g(..), x) — 3 LUTs each
  int pairs = 0;         ///< CLBs holding two independent LUTs
  int singles = 0;       ///< CLBs holding one LUT
  int num_clbs = 0;
};

/// Packs a 4-feasible LUT network into XC4000 CLBs: two independent 4-input
/// function generators F and G plus a 3-input combiner H(F, G, direct).
/// Greedy H-absorption first (a <=3-input LUT whose single-fanout feeders
/// both fit F/G collapses three LUTs into one CLB), then unconstrained
/// pairing of the rest. Synthesize with lut_inputs = 4 to use this target.
Xc4000Result pack_xc4000(const net::LutNetwork& net);

}  // namespace mfd::map
