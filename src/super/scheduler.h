// Multi-process row scheduler: runs up to `jobs` watchdogged row children
// concurrently, multiplexing their CRC-framed result pipes with poll()
// (docs/PARALLELISM.md §"Process-level parallelism").
//
// The scheduler is the concurrency engine under the sweep supervisor
// (super/supervisor.h). Rows are enqueued ahead of time (the bench harness
// registers its whole sweep plan up front) and harvested in *call* order:
// `wait(key)` pumps the event loop — spawning, draining pipes, escalating
// watchdogs, reaping, retrying — until that key is terminal, while every
// other in-flight row keeps making progress in the background. Completed
// rows are journaled in completion order; replay stays keyed, so resume
// semantics are unchanged (super/journal.h).
//
// Invariants kept from the sequential supervisor (PR 8):
//   * every terminal outcome is journaled with fsync before wait() returns
//     it — the durability frontier is per row, not per sweep;
//   * abnormal deaths re-enter the ready queue with their retry rung and a
//     deterministic backoff deadline (super/retry.h) — the scheduler never
//     sleeps, it just refuses to spawn the row earlier;
//   * each child reports fault-rule firings to its own private file,
//     latched in the parent at reap time (fault::latch_fired), so sibling
//     children never interleave reports. Children forked *before* a firing
//     child is reaped still carry the unlatched rule — under concurrency a
//     one-shot rule is one-shot per reap wave, not per sweep (each extra
//     firing costs one more clean retry, results are unchanged);
//   * results are bit-identical for every `jobs` value: each row runs in a
//     fresh process either way, and callers harvest in call order.
//
// Memory-aware admission: with rss_cap_mb > 0, a spawn is deferred while
// the summed resident set of the running children exceeds the cap — except
// that one child may always run (progress is never blocked outright).
// Deferral episodes are counted in super.admission_waits; the high-water
// child count lands in the super.concurrent_peak gauge.
//
// Single-threaded by design: everything runs on the caller's thread inside
// wait()/drain(), so the journal, counters, and fault latching need no
// locks, and fork() stays safe (no other threads in the parent).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "super/journal.h"
#include "super/proc.h"
#include "super/retry.h"

namespace mfd::super {

/// The terminal outcome of one row, whether run or replayed.
struct RowOutcome {
  std::string key;
  bool from_journal = false;  ///< replayed: the row callback never ran
  std::string status;         ///< "ok" | "failed"
  ChildStatus last_status = ChildStatus::kOk;
  int attempts = 0;
  std::string payload;  ///< the row's result record (empty when failed)
  std::string reason;   ///< failure detail when status == "failed"

  bool ok() const { return status == "ok"; }
};

/// A row callback: receives the attempt's budget-tightening rung ({} for
/// the first attempt) and returns the row's serialized result record.
using RowFn = std::function<std::string(const RetryRung&)>;

struct SchedulerOptions {
  /// Row children allowed to run concurrently (>= 1).
  int jobs = 1;
  /// Summed-RSS admission cap over the running children in MiB; 0 = off.
  double rss_cap_mb = 0.0;
  ChildLimits limits;
  RetryPolicy retry;
  /// Per-child fault-firing report files are named <base>.<spawn-seq>;
  /// empty disables firing reports entirely.
  std::string fired_file_base;
};

class Scheduler {
 public:
  /// `journal` must outlive the scheduler; completed rows are appended to
  /// it (journal == nullptr skips journaling, for tests).
  Scheduler(const SchedulerOptions& opts, Journal* journal);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Adds a row to the ready queue. Duplicate keys are ignored (the first
  /// enqueue wins — mirroring the journal's duplicate-key rule).
  void enqueue(const std::string& key, RowFn fn);

  /// True when `key` was ever enqueued (ready, running, or finished).
  bool known(const std::string& key) const;

  /// Pumps the event loop until `key` is terminal and returns its outcome.
  /// Other enqueued rows keep running concurrently while waiting. Throws
  /// mfd::Error for a key that was never enqueued.
  RowOutcome wait(const std::string& key);

  /// Runs every enqueued row to completion.
  void drain();

  std::size_t running_count() const { return running_.size(); }

 private:
  struct Task {
    std::string key;
    RowFn fn;
    int attempts = 0;  ///< child runs completed so far
    RetryRung rung;    ///< budget clamps for the next attempt
    /// Earliest spawn time (retry backoff); default = immediately.
    std::chrono::steady_clock::time_point not_before;
    bool counted_admission_wait = false;
  };
  struct Running {
    Task task;
    Child child;
  };

  void pump();
  /// Spawns ready tasks into free slots (respecting backoff deadlines and
  /// the RSS admission cap). Returns true if anything was spawned.
  bool spawn_ready();
  bool admission_allows(Task& task);
  void finish(Running&& r);

  SchedulerOptions opts_;
  Journal* journal_;
  std::deque<Task> ready_;
  std::deque<Running> running_;
  std::map<std::string, RowOutcome> done_;
  std::map<std::string, bool> known_;  // every key ever enqueued
  std::uint64_t spawn_seq_ = 0;
  /// A spawn was deferred by the RSS cap in the current pump cycle, so the
  /// next poll timeout is bounded by the admission recheck interval.
  bool admission_deferred_ = false;
};

}  // namespace mfd::super
