// Textual exporters for the LUT-network IR: Berkeley BLIF (consumable by
// SIS/ABC-style tools and by our own io/blif reader) and Graphviz dot for
// eyeballing pass-by-pass network states (--dump-net).
#include <sstream>
#include <string>

#include "net/lutnet.h"

namespace mfd::net {
namespace {

std::string signal_name(const LutNetwork& net, int s) {
  if (s == kConst0) return "const0";
  if (s == kConst1) return "const1";
  if (net.is_primary_input(s)) return "pi" + std::to_string(s);
  return "n" + std::to_string(net.lut_index(s));
}

}  // namespace

std::string LutNetwork::to_blif(const std::string& model) const {
  const std::vector<bool> live = live_luts();
  bool uses_const0 = false, uses_const1 = false;
  auto note_const = [&](int s) {
    uses_const0 |= (s == kConst0);
    uses_const1 |= (s == kConst1);
  };
  for (int i = 0; i < num_luts(); ++i) {
    if (!live[static_cast<std::size_t>(i)]) continue;
    for (int in : luts_[static_cast<std::size_t>(i)].inputs) note_const(in);
  }
  for (int s : outputs_) note_const(s);

  std::ostringstream os;
  os << ".model " << model << "\n.inputs";
  for (int i = 0; i < num_pi_; ++i) os << " pi" << i;
  os << "\n.outputs";
  for (int i = 0; i < num_outputs(); ++i) os << " po" << i;
  os << "\n";
  if (uses_const0) os << ".names const0\n";  // empty cover: constant 0
  if (uses_const1) os << ".names const1\n1\n";

  for (int i = 0; i < num_luts(); ++i) {
    if (!live[static_cast<std::size_t>(i)]) continue;
    const Lut& lut = luts_[static_cast<std::size_t>(i)];
    os << ".names";
    for (int in : lut.inputs) os << ' ' << signal_name(*this, in);
    os << ' ' << signal_name(*this, lut_signal(i)) << "\n";
    for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
      if (!lut.table[idx]) continue;
      for (std::size_t j = 0; j < lut.inputs.size(); ++j)
        os << (((idx >> j) & 1) ? '1' : '0');
      os << (lut.inputs.empty() ? "1" : " 1") << "\n";
    }
  }

  // Output buffers: BLIF output names are fixed, so alias each po to its
  // driving signal (identity cover; empty cover for a const-0 output).
  for (int i = 0; i < num_outputs(); ++i) {
    const int s = outputs_[static_cast<std::size_t>(i)];
    os << ".names " << signal_name(*this, s) << " po" << i << "\n1 1\n";
  }
  os << ".end\n";
  return os.str();
}

std::string LutNetwork::to_dot(const std::string& name) const {
  const std::vector<bool> live = live_luts();
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n  rankdir=LR;\n";
  for (int i = 0; i < num_pi_; ++i)
    os << "  pi" << i << " [shape=box];\n";
  bool uses_const0 = false, uses_const1 = false;
  for (int i = 0; i < num_luts(); ++i) {
    if (!live[static_cast<std::size_t>(i)]) continue;
    const Lut& lut = luts_[static_cast<std::size_t>(i)];
    os << "  n" << i << " [shape=ellipse, label=\"n" << i << "\\nk="
       << lut.inputs.size() << "\"];\n";
    for (int in : lut.inputs) {
      uses_const0 |= (in == kConst0);
      uses_const1 |= (in == kConst1);
      os << "  " << signal_name(*this, in) << " -> n" << i << ";\n";
    }
  }
  for (int i = 0; i < num_outputs(); ++i) {
    const int s = outputs_[static_cast<std::size_t>(i)];
    uses_const0 |= (s == kConst0);
    uses_const1 |= (s == kConst1);
    os << "  po" << i << " [shape=doublecircle];\n  "
       << signal_name(*this, s) << " -> po" << i << ";\n";
  }
  if (uses_const0) os << "  const0 [shape=diamond];\n";
  if (uses_const1) os << "  const1 [shape=diamond];\n";
  os << "}\n";
  return os.str();
}

}  // namespace mfd::net
