// Shared helpers for the test suite: a truth-table oracle for BDD
// verification and small combinatorial brute-force references.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "util/graph.h"
#include "util/rng.h"

namespace mfd::test {

/// Truth table over n variables; entry index bit v is the value of x_v.
using Table = std::vector<bool>;

inline Table random_table(Rng& rng, int n) {
  Table t(std::size_t{1} << n);
  for (auto&& bit : t) bit = rng.flip();
  return t;
}

/// Builds the BDD of a truth table as a disjunction of minterms.
inline bdd::Bdd bdd_from_table(bdd::Manager& m, const Table& t, int n) {
  bdd::Bdd f = m.bdd_false();
  for (std::size_t idx = 0; idx < t.size(); ++idx) {
    if (!t[idx]) continue;
    bdd::Bdd minterm = m.bdd_true();
    for (int v = 0; v < n; ++v) minterm &= m.literal(v, (idx >> v) & 1);
    f |= minterm;
  }
  return f;
}

/// Reads back a BDD as a truth table over variables 0..n-1.
inline Table table_from_bdd(const bdd::Manager& m, bdd::Edge f, int n) {
  Table t(std::size_t{1} << n);
  std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);
  for (std::size_t idx = 0; idx < t.size(); ++idx) {
    for (int v = 0; v < n; ++v) assignment[v] = (idx >> v) & 1;
    t[idx] = m.eval(f, assignment);
  }
  return t;
}

/// Exhaustive maximum matching (reference for the blossom implementation).
/// Only usable for small graphs.
inline int brute_force_max_matching(const Graph& g) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < g.num_vertices(); ++u)
    for (int v : g.neighbors(u))
      if (v > u) edges.emplace_back(u, v);
  std::vector<bool> used(static_cast<std::size_t>(g.num_vertices()), false);
  auto rec = [&](auto&& self, std::size_t i) -> int {
    if (i == edges.size()) return 0;
    int best = self(self, i + 1);
    const auto [u, v] = edges[i];
    if (!used[u] && !used[v]) {
      used[u] = used[v] = true;
      best = std::max(best, 1 + self(self, i + 1));
      used[u] = used[v] = false;
    }
    return best;
  };
  return rec(rec, 0);
}

/// Exhaustive chromatic number (reference for the coloring heuristic).
inline int brute_force_chromatic_number(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return 0;
  for (int k = 1; k <= n; ++k) {
    std::vector<int> color(static_cast<std::size_t>(n), -1);
    auto rec = [&](auto&& self, int v) -> bool {
      if (v == n) return true;
      for (int c = 0; c < k; ++c) {
        bool ok = true;
        for (int u : g.neighbors(v))
          if (color[u] == c) ok = false;
        if (!ok) continue;
        color[v] = c;
        if (self(self, v + 1)) return true;
        color[v] = -1;
      }
      return false;
    };
    if (rec(rec, 0)) return k;
  }
  return n;
}

}  // namespace mfd::test
