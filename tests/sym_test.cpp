#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "sym/minimize.h"
#include "sym/sifting.h"
#include "sym/symmetrize.h"
#include "sym/symmetry.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;

// ---------------------------------------------------------------------------
// Detection on completely specified functions
// ---------------------------------------------------------------------------

TEST(Symmetry, TotallySymmetricFunction) {
  Manager m(4);
  std::vector<Bdd> bits;
  for (int i = 0; i < 4; ++i) bits.push_back(m.var(i));
  const circuits::Word count = circuits::count_ones(m, bits);
  for (const Bdd& out : count)
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j)
        EXPECT_TRUE(is_symmetric(m, out.id(), i, j, SymmetryKind::kNonequivalence));
}

TEST(Symmetry, AsymmetricPairDetected) {
  Manager m(3);
  const Bdd f = m.var(0) & !m.var(1);  // exchange flips the function
  EXPECT_FALSE(is_symmetric(m, f.id(), 0, 1, SymmetryKind::kNonequivalence));
  // But f IS equivalence-symmetric in (0,1): f(0,0,.) = f(1,1,.) = 0.
  EXPECT_TRUE(is_symmetric(m, f.id(), 0, 1, SymmetryKind::kEquivalence));
}

TEST(Symmetry, XorIsBothNeAndESymmetric) {
  Manager m(2);
  const Bdd f = m.var(0) ^ m.var(1);
  EXPECT_TRUE(is_symmetric(m, f.id(), 0, 1, SymmetryKind::kNonequivalence));
  // E-symmetry: f(0,0) = 0 = f(1,1).
  EXPECT_TRUE(is_symmetric(m, f.id(), 0, 1, SymmetryKind::kEquivalence));
}

TEST(Symmetry, ExhaustiveAgainstTableDefinition) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.range(2, 5);
    Manager m(n);
    const auto t = test::random_table(rng, n);
    const Bdd f = test::bdd_from_table(m, t, n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        // NE: swapping bits i and j never changes the value.
        bool ne = true, e = true;
        for (std::size_t idx = 0; idx < t.size(); ++idx) {
          const bool bi = (idx >> i) & 1, bj = (idx >> j) & 1;
          std::size_t swapped = idx & ~((std::size_t{1} << i) | (std::size_t{1} << j));
          if (bi) swapped |= std::size_t{1} << j;
          if (bj) swapped |= std::size_t{1} << i;
          if (t[idx] != t[swapped]) ne = false;
          // E: complementing both bits never changes the value.
          const std::size_t flipped = idx ^ (std::size_t{1} << i) ^ (std::size_t{1} << j);
          if (bi == bj && t[idx] != t[flipped]) e = false;
        }
        EXPECT_EQ(is_symmetric(m, f.id(), i, j, SymmetryKind::kNonequivalence), ne);
        EXPECT_EQ(is_symmetric(m, f.id(), i, j, SymmetryKind::kEquivalence), e);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Symmetrizability and make_symmetric on ISFs
// ---------------------------------------------------------------------------

TEST(Symmetrize, CompleteFunctionOnlyIfAlreadySymmetric) {
  Manager m(3);
  const Isf sym = Isf::completely_specified(m.var(0) ^ m.var(1));
  const Isf asym = Isf::completely_specified(m.var(0) & !m.var(1));
  EXPECT_TRUE(symmetrizable(sym, 0, 1, SymmetryKind::kNonequivalence));
  EXPECT_FALSE(symmetrizable(asym, 0, 1, SymmetryKind::kNonequivalence));
}

TEST(Symmetrize, MakeSymmetricProducesSymmetricExtension) {
  Rng rng(43);
  int made = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4;
    Manager m(n);
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Isf f(on & care, care);
    for (const auto kind : {SymmetryKind::kNonequivalence, SymmetryKind::kEquivalence}) {
      if (!symmetrizable(f, 0, 1, kind)) continue;
      ++made;
      const Isf g = make_symmetric(f, 0, 1, kind);
      EXPECT_TRUE(isf_is_symmetric(g, 0, 1, kind));
      // Only adds information: g extends f.
      EXPECT_TRUE((f.care() & !g.care()).is_false());
      EXPECT_TRUE(f.admits(g.extension_zero()) || !g.is_completely_specified());
      // Wherever f cared, g agrees.
      EXPECT_TRUE(((f.on() ^ g.on()) & f.care()).is_false());
    }
  }
  EXPECT_GT(made, 10);  // the loop must actually exercise the path
}

TEST(Symmetrize, GreedyLoopCreatesSymmetries) {
  // A function with assignable don't cares: on = x0 & !x1 outside care,
  // care misses exactly the conflicting points.
  Manager m(3);
  const Bdd x0 = m.var(0), x1 = m.var(1), x2 = m.var(2);
  // f cares only where x0 == x1; there it equals x2. Any pair symmetry in
  // (x0, x1) is achievable.
  std::vector<Isf> fns{Isf(x2 & !(x0 ^ x1), !(x0 ^ x1))};
  const SymmetrizeStats stats = symmetrize(fns, {0, 1, 2});
  EXPECT_GT(stats.ne_applied + stats.e_applied, 0);
  EXPECT_TRUE(isf_is_symmetric(fns[0], 0, 1, SymmetryKind::kNonequivalence));
}

TEST(Symmetrize, RespectsDisabledKinds) {
  Manager m(3);
  const Bdd x0 = m.var(0), x1 = m.var(1), x2 = m.var(2);
  std::vector<Isf> fns{Isf(x2 & !(x0 ^ x1), !(x0 ^ x1))};
  SymmetrizeOptions opts;
  opts.enable_nonequivalence = false;
  opts.enable_equivalence = false;
  const SymmetrizeStats stats = symmetrize(fns, {0, 1, 2}, opts);
  EXPECT_EQ(stats.ne_applied + stats.e_applied, 0);
}

TEST(Symmetrize, AssignmentPreservesCare) {
  // Property over random ISFs: after the full greedy loop, every output
  // still agrees with the original wherever the original cared.
  Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5;
    Manager m(n);
    std::vector<Isf> fns;
    std::vector<Isf> originals;
    for (int o = 0; o < 2; ++o) {
      const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
      const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
      fns.emplace_back(on & care, care);
      originals.push_back(fns.back());
    }
    symmetrize(fns, {0, 1, 2, 3, 4});
    for (int o = 0; o < 2; ++o) {
      EXPECT_TRUE(((originals[o].on() ^ fns[o].on()) & originals[o].care()).is_false());
      EXPECT_TRUE((originals[o].care() & !fns[o].care()).is_false());
    }
  }
}

// ---------------------------------------------------------------------------
// Symmetry groups
// ---------------------------------------------------------------------------

TEST(SymmetryGroups, TotallySymmetricGivesOneGroup) {
  Manager m(5);
  std::vector<Bdd> bits;
  for (int i = 0; i < 5; ++i) bits.push_back(m.var(i));
  circuits::Word count = circuits::count_ones(m, bits);
  std::vector<Isf> fns;
  for (const Bdd& f : count) fns.push_back(Isf::completely_specified(f));
  const auto groups = symmetry_groups(fns, {0, 1, 2, 3, 4});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 5u);
}

TEST(SymmetryGroups, AdderGroupsOperandPairs) {
  // s = a + b: every output is symmetric in (a_i, b_i) but not across weights.
  Manager m(6);
  const circuits::Benchmark bench = circuits::adder(m, 3);
  std::vector<Isf> fns;
  for (const Bdd& f : bench.outputs) fns.push_back(Isf::completely_specified(f));
  const auto groups = symmetry_groups(fns, {0, 1, 2, 3, 4, 5});
  // Groups must be exactly {a_i, b_i} for i = 0, 1, 2 (a_i is var i, b_i is var 3+i).
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0] % 3, g[1] % 3);
  }
}

TEST(SymmetryGroups, MultiOutputIntersectsSymmetries) {
  Manager m(3);
  // f0 symmetric in all pairs, f1 only in (0,1).
  const Bdd f0 = m.var(0) ^ m.var(1) ^ m.var(2);
  const Bdd f1 = (m.var(0) ^ m.var(1)) & m.var(2);
  const auto groups = symmetry_groups(m, {f0.id(), f1.id()}, {0, 1, 2});
  ASSERT_EQ(groups.size(), 2u);  // {0,1} and {2}
}

TEST(SymmetricSift, GroupsAdjacentAndFunctionPreserved) {
  Rng rng(53);
  Manager m(8);
  std::vector<Bdd> bits;
  for (int i : {1, 3, 6}) bits.push_back(m.var(i));
  const circuits::Word count = circuits::count_ones(m, bits);
  const Bdd noise = test::bdd_from_table(m, test::random_table(rng, 8), 8);
  std::vector<Isf> fns{Isf::completely_specified(count[0] & noise)};
  const auto t_before = test::table_from_bdd(m, fns[0].on().id(), 8);
  const auto groups = symmetric_sift(m, fns, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(test::table_from_bdd(m, fns[0].on().id(), 8), t_before);
  for (const auto& g : groups) {
    int lo = 8, hi = -1;
    for (int v : g) {
      lo = std::min(lo, m.level_of_var(v));
      hi = std::max(hi, m.level_of_var(v));
    }
    EXPECT_EQ(hi - lo + 1, static_cast<int>(g.size()));
  }
}

TEST(MinimizeRobdd, ShrinksSymmetrizableFunctions) {
  // f cares only where x0 == x1 and there equals a function of the rest:
  // symmetrization + restrict should beat extension-zero decisively.
  Manager m(6);
  const Bdd eq = !(m.var(0) ^ m.var(1));
  Rng rng(59);
  const Bdd core = test::bdd_from_table(m, test::random_table(rng, 6), 6);
  const Isf f(core & eq, eq);
  const MinimizeResult r = minimize_robdd_size(f);
  EXPECT_TRUE(f.admits(r.function));
  EXPECT_LE(r.size_after, r.size_before);
}

TEST(MinimizeRobdd, CompletelySpecifiedIsAFixpoint) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) ^ m.var(3);
  const MinimizeResult r = minimize_robdd_size(Isf::completely_specified(f));
  EXPECT_EQ(r.function, f);
  EXPECT_EQ(r.symmetries_created, 0);
}

TEST(MinimizeRobdd, AlwaysAdmissible) {
  Rng rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.range(3, 7);
    Manager m(n);
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Isf f(on & care, care);
    const MinimizeResult r = minimize_robdd_size(f);
    EXPECT_TRUE(f.admits(r.function)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mfd
