#include "super/supervisor.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/errors.h"
#include "core/faultinject.h"
#include "obs/obs.h"

namespace mfd::super {
namespace {

bool file_exists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

Journal make_journal(const SupervisorOptions& opts, RecoveryInfo* info) {
  if (opts.journal_path.empty())
    throw Error("supervisor: a journal path is required (--journal)");
  if (opts.resume && file_exists(opts.journal_path))
    return Journal::open(opts.journal_path, info);
  return Journal::create(opts.journal_path, opts.binary);
}

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& opts)
    : opts_(opts), journal_(make_journal(opts, &recovery_)) {
  if (recovery_.dropped_torn_tail)
    std::fprintf(stderr,
                 "supervisor: journal %s had a torn last record (dropped; that "
                 "row will re-run)\n",
                 journal_.path().c_str());
  // Children report fault-rule firings here so the parent can latch them
  // (one-shot semantics across the sweep, not per child).
  fired_file_ = opts_.journal_path + ".fault-fired";
  ::setenv("MFD_FAULT_FIRED_FILE", fired_file_.c_str(), 1);
  std::remove(fired_file_.c_str());
}

Supervisor::~Supervisor() {
  ::unsetenv("MFD_FAULT_FIRED_FILE");
  std::remove(fired_file_.c_str());
}

void Supervisor::latch_child_fault_firings() {
  std::FILE* f = std::fopen(fired_file_.c_str(), "r");
  if (f == nullptr) return;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    // Format (core/faultinject.cpp): site@ordinal:kind
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    const std::size_t at = s.find('@');
    if (at == std::string::npos) continue;
    std::size_t colon = s.find(':', at);
    if (colon == std::string::npos) colon = s.size();
    const std::string site = s.substr(0, at);
    const std::uint64_t ordinal =
        std::strtoull(s.substr(at + 1, colon - at - 1).c_str(), nullptr, 10);
    if (ordinal != 0) fault::latch_fired(site, ordinal);
  }
  std::fclose(f);
  std::remove(fired_file_.c_str());
}

RowOutcome Supervisor::run_row(
    const std::string& key, const std::function<std::string(const RetryRung&)>& fn) {
  RowOutcome out;
  out.key = key;

  if (const JournalRecord* rec = journal_.find(key)) {
    obs::add("super.resumed_rows");
    out.from_journal = true;
    out.status = rec->status;
    out.attempts = rec->attempts;
    out.payload = rec->row_json;
    out.reason = rec->reason;
    return out;
  }

  RetryRung rung;  // first attempt: the row's own budget, untouched
  for (int attempt = 1;; ++attempt) {
    obs::add("super.spawned");
    const ChildOutcome child =
        run_in_child([&fn, &rung] { return fn(rung); }, opts_.limits);
    latch_child_fault_firings();
    out.attempts = attempt;
    out.last_status = child.status;
    if (child.soft_timeout && child.status == ChildStatus::kOk)
      obs::add("super.soft_timeouts");

    if (child.status == ChildStatus::kOk) {
      out.status = "ok";
      out.payload = child.payload;
      break;
    }
    if (child.status == ChildStatus::kError) {
      // Deterministic typed failure: journal it, don't burn retries on it.
      out.status = "failed";
      out.reason = child.payload.empty() ? child.detail : child.payload;
      obs::add("super.failed_rows");
      break;
    }

    switch (child.status) {
      case ChildStatus::kCrash: obs::add("super.crashes"); break;
      case ChildStatus::kTimeout: obs::add("super.timeouts"); break;
      case ChildStatus::kOom: obs::add("super.oom_kills"); break;
      default: break;
    }
    std::fprintf(stderr, "supervisor: %s attempt %d died (%s: %s)\n", key.c_str(),
                 attempt, child_status_name(child.status), child.detail.c_str());

    const RetryDecision d = plan_retry(opts_.retry, child.status, attempt);
    if (!d.retry) {
      out.status = "failed";
      out.reason = std::string(child_status_name(child.status)) + ": " + child.detail +
                   " (after " + std::to_string(attempt) + " attempts)";
      obs::add("super.failed_rows");
      break;
    }
    obs::add("super.retries");
    if (d.delay_ms > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(d.delay_ms));
    rung = d.rung;
  }

  JournalRecord rec;
  rec.key = key;
  rec.status = out.status;
  rec.attempts = out.attempts;
  rec.outcome = child_status_name(out.last_status);
  rec.reason = out.reason;
  rec.row_json = out.payload;
  journal_.append(rec);
  return out;
}

}  // namespace mfd::super
