#include "verify/shrink.h"

#include <algorithm>

namespace mfd::verify {
namespace {

/// Spec with output `o` removed.
TableSpec drop_output(const TableSpec& spec, std::size_t o) {
  TableSpec reduced = spec;
  reduced.outputs.erase(reduced.outputs.begin() + static_cast<std::ptrdiff_t>(o));
  return reduced;
}

/// Spec cofactored at input `var` = 0: every output table keeps only the
/// entries whose var-bit is clear, and the remaining inputs renumber down.
TableSpec drop_variable(const TableSpec& spec, int var) {
  TableSpec reduced;
  reduced.num_inputs = spec.num_inputs - 1;
  const std::uint64_t low_mask = (std::uint64_t{1} << var) - 1;
  for (const TableSpec::Output& out : spec.outputs) {
    TableSpec::Output r;
    r.on.assign(reduced.table_size(), 0);
    r.care.assign(reduced.table_size(), 0);
    for (std::size_t mt = 0; mt < reduced.table_size(); ++mt) {
      const std::size_t full = (mt & low_mask) | ((mt & ~low_mask) << 1);
      r.on[mt] = out.on[full];
      r.care[mt] = out.care[full];
    }
    reduced.outputs.push_back(std::move(r));
  }
  return reduced;
}

}  // namespace

ShrinkResult shrink_spec(const TableSpec& failing, const FailPredicate& still_fails,
                         const ShrinkOptions& opts) {
  ShrinkResult result;
  result.spec = failing;

  auto check = [&](const TableSpec& candidate) {
    if (result.checks_run >= opts.max_checks) return false;
    ++result.checks_run;
    return still_fails(candidate);
  };

  bool progress = true;
  while (progress && result.checks_run < opts.max_checks) {
    progress = false;
    ++result.rounds;

    // Stage 1: drop outputs, last first (later outputs are more often the
    // generator's duplicates).
    for (std::size_t o = result.spec.outputs.size(); o-- > 0;) {
      if (result.spec.outputs.size() <= 1) break;
      const TableSpec candidate = drop_output(result.spec, o);
      if (check(candidate)) {
        result.spec = candidate;
        progress = true;
      }
    }

    // Stage 2: drop variables (cofactor at 0).
    for (int v = result.spec.num_inputs; v-- > 0;) {
      if (result.spec.num_inputs <= 1) break;
      const TableSpec candidate = drop_variable(result.spec, v);
      if (check(candidate)) {
        result.spec = candidate;
        progress = true;
      }
    }

    // Stage 3: flip DC cells to cares, chunked ddmin-style. A DC flipped to
    // a care constrains the flow *more*; if the failure survives, the
    // reproducer depends on one fewer degree of freedom. Try care=0 first
    // (off), then care=1.
    for (std::size_t o = 0; o < result.spec.outputs.size(); ++o) {
      std::vector<std::size_t> dc_cells;
      for (std::size_t mt = 0; mt < result.spec.table_size(); ++mt)
        if (!result.spec.outputs[o].care[mt]) dc_cells.push_back(mt);
      std::size_t chunk = (dc_cells.size() + 1) / 2;
      while (chunk >= 1 && result.checks_run < opts.max_checks) {
        bool flipped_any = false;
        for (std::size_t start = 0; start < dc_cells.size(); start += chunk) {
          const std::size_t end = std::min(start + chunk, dc_cells.size());
          for (std::uint8_t value : {std::uint8_t{0}, std::uint8_t{1}}) {
            TableSpec candidate = result.spec;
            bool any = false;
            for (std::size_t i = start; i < end; ++i) {
              const std::size_t mt = dc_cells[i];
              if (candidate.outputs[o].care[mt]) continue;  // flipped earlier
              candidate.outputs[o].care[mt] = 1;
              candidate.outputs[o].on[mt] = value;
              any = true;
            }
            if (!any) break;
            if (check(candidate)) {
              result.spec = candidate;
              progress = true;
              flipped_any = true;
              break;
            }
          }
        }
        if (chunk == 1) break;
        // Recurse to smaller chunks only while cells remain DC; once a whole
        // pass at this size flipped nothing, halve.
        chunk = flipped_any ? chunk : chunk / 2;
        if (flipped_any) {
          dc_cells.clear();
          for (std::size_t mt = 0; mt < result.spec.table_size(); ++mt)
            if (!result.spec.outputs[o].care[mt]) dc_cells.push_back(mt);
          chunk = std::min(chunk, (dc_cells.size() + 1) / 2);
          if (dc_cells.empty()) break;
        }
      }
    }
  }
  return result;
}

}  // namespace mfd::verify
