#include <gtest/gtest.h>

#include <cmath>

#include "bdd/bdd.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;
using test::Table;

// ---------------------------------------------------------------------------
// Basics
// ---------------------------------------------------------------------------

TEST(BddBasics, Constants) {
  Manager m(2);
  EXPECT_TRUE(m.bdd_true().is_true());
  EXPECT_TRUE(m.bdd_false().is_false());
  EXPECT_EQ(m.constant(true), m.bdd_true());
  EXPECT_NE(m.bdd_true(), m.bdd_false());
}

TEST(BddBasics, VariablesAreDistinctAndCanonical) {
  Manager m(3);
  EXPECT_EQ(m.var(0), m.var(0));  // canonicity: same node
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_EQ(m.literal(1, true), m.var(1));
  EXPECT_EQ(m.literal(1, false), !m.var(1));
}

TEST(BddBasics, BooleanAlgebraIdentities) {
  Manager m(3);
  const Bdd a = m.var(0), b = m.var(1), c = m.var(2);
  EXPECT_EQ(a & !a, m.bdd_false());
  EXPECT_EQ(a | !a, m.bdd_true());
  EXPECT_EQ(a ^ a, m.bdd_false());
  EXPECT_EQ((a & b) | (a & c), a & (b | c));
  EXPECT_EQ(!(a & b), (!a) | (!b));               // De Morgan
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));        // associativity
  EXPECT_EQ(a.implies(b), (!a) | b);
  EXPECT_EQ(a.iff(b), !(a ^ b));
  EXPECT_EQ(a.diff(b), a & !b);
}

TEST(BddBasics, CanonicityAcrossConstructions) {
  Manager m(3);
  const Bdd a = m.var(0), b = m.var(1);
  // a XOR b built three different ways must be the same node.
  const Bdd x1 = a ^ b;
  const Bdd x2 = (a & (!b)) | ((!a) & b);
  const Bdd x3 = (a | b) & !(a & b);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(x2, x3);
}

TEST(BddBasics, IteSemantics) {
  Manager m(3);
  const Bdd f = m.var(0), g = m.var(1), h = m.var(2);
  const Bdd r = m.wrap(m.ite(f.id(), g.id(), h.id()));
  EXPECT_EQ(r, (f & g) | ((!f) & h));
  EXPECT_EQ(m.wrap(m.ite(f.id(), bdd::kTrue, bdd::kFalse)), f);
  EXPECT_EQ(m.wrap(m.ite(f.id(), bdd::kFalse, bdd::kTrue)), !f);
}

TEST(BddBasics, EvalWalksCorrectly) {
  Manager m(3);
  const Bdd maj = (m.var(0) & m.var(1)) | (m.var(1) & m.var(2)) | (m.var(0) & m.var(2));
  EXPECT_FALSE(m.eval(maj.id(), {false, false, true}));
  EXPECT_TRUE(m.eval(maj.id(), {true, false, true}));
  EXPECT_TRUE(m.eval(maj.id(), {true, true, true}));
}

// ---------------------------------------------------------------------------
// Truth-table oracle (property tests)
// ---------------------------------------------------------------------------

class BddRandomOps : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomOps, BinaryOpsMatchTables) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const int n = rng.range(1, 8);
  Manager m(n);
  const Table ta = test::random_table(rng, n);
  const Table tb = test::random_table(rng, n);
  const Bdd a = test::bdd_from_table(m, ta, n);
  const Bdd b = test::bdd_from_table(m, tb, n);

  const Table got_and = test::table_from_bdd(m, (a & b).id(), n);
  const Table got_or = test::table_from_bdd(m, (a | b).id(), n);
  const Table got_xor = test::table_from_bdd(m, (a ^ b).id(), n);
  const Table got_not = test::table_from_bdd(m, (!a).id(), n);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(got_and[i], ta[i] && tb[i]);
    EXPECT_EQ(got_or[i], ta[i] || tb[i]);
    EXPECT_EQ(got_xor[i], ta[i] != tb[i]);
    EXPECT_EQ(got_not[i], !ta[i]);
  }
}

TEST_P(BddRandomOps, RoundTripThroughTable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  const int n = rng.range(1, 9);
  Manager m(n);
  const Table t = test::random_table(rng, n);
  const Bdd f = test::bdd_from_table(m, t, n);
  EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t);
}

TEST_P(BddRandomOps, CofactorMatchesTable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const int n = rng.range(2, 8);
  Manager m(n);
  const Table t = test::random_table(rng, n);
  const Bdd f = test::bdd_from_table(m, t, n);
  const int v = rng.range(0, n - 1);
  const bool val = rng.flip();
  const Table got = test::table_from_bdd(m, f.cofactor(v, val).id(), n);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::size_t j = val ? (i | (std::size_t{1} << v)) : (i & ~(std::size_t{1} << v));
    EXPECT_EQ(got[i], static_cast<bool>(t[j]));
  }
}

TEST_P(BddRandomOps, QuantificationMatchesTable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const int n = rng.range(2, 7);
  Manager m(n);
  const Table t = test::random_table(rng, n);
  const Bdd f = test::bdd_from_table(m, t, n);
  const int v = rng.range(0, n - 1);
  const Bdd ex = m.wrap(m.exists(f.id(), {v}));
  const Bdd fa = m.wrap(m.forall(f.id(), {v}));
  EXPECT_EQ(ex, f.cofactor(v, false) | f.cofactor(v, true));
  EXPECT_EQ(fa, f.cofactor(v, false) & f.cofactor(v, true));
}

TEST_P(BddRandomOps, ComposeMatchesShannon) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 11);
  const int n = rng.range(2, 7);
  Manager m(n);
  const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
  const Bdd g = test::bdd_from_table(m, test::random_table(rng, n), n);
  const int v = rng.range(0, n - 1);
  const Bdd composed = m.wrap(m.compose(f.id(), v, g.id()));
  // f[v <- g] == (g & f|v=1) | (!g & f|v=0)
  const Bdd expect = (g & f.cofactor(v, true)) | ((!g) & f.cofactor(v, false));
  EXPECT_EQ(composed, expect);
}

TEST_P(BddRandomOps, SwapVarsInvolution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 2);
  const int n = rng.range(2, 7);
  Manager m(n);
  const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
  const int a = rng.range(0, n - 1);
  int b = rng.range(0, n - 1);
  if (b == a) b = (b + 1) % n;
  const Bdd swapped = m.wrap(m.swap_vars(f.id(), a, b));
  const Bdd back = m.wrap(m.swap_vars(swapped.id(), a, b));
  EXPECT_EQ(back, f);
  // Table check: swapping bits a and b of the index.
  const Table t = test::table_from_bdd(m, f.id(), n);
  const Table ts = test::table_from_bdd(m, swapped.id(), n);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool ba = (i >> a) & 1, bb = (i >> b) & 1;
    std::size_t j = i & ~((std::size_t{1} << a) | (std::size_t{1} << b));
    if (ba) j |= std::size_t{1} << b;
    if (bb) j |= std::size_t{1} << a;
    EXPECT_EQ(ts[i], static_cast<bool>(t[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomOps, ::testing::Range(0, 25));

TEST(BddExhaustive, AllThreeVarFunctionPairs) {
  // Exhaustive ground truth over every pair of 3-variable functions:
  // 256 x 256 combinations for and/or/xor, plus not for each function.
  Manager m(3);
  std::vector<Bdd> fns;
  std::vector<std::uint8_t> tts;
  for (int tt = 0; tt < 256; ++tt) {
    test::Table t(8);
    for (int i = 0; i < 8; ++i) t[static_cast<std::size_t>(i)] = (tt >> i) & 1;
    fns.push_back(test::bdd_from_table(m, t, 3));
    tts.push_back(static_cast<std::uint8_t>(tt));
  }
  // Canonicity: all 256 functions are distinct nodes.
  for (int a = 0; a < 256; ++a)
    for (int b = a + 1; b < 256; ++b) ASSERT_NE(fns[a].id(), fns[b].id());

  auto tt_of = [&](const Bdd& f) {
    int tt = 0;
    std::vector<bool> assignment(3);
    for (int i = 0; i < 8; ++i) {
      for (int v = 0; v < 3; ++v) assignment[static_cast<std::size_t>(v)] = (i >> v) & 1;
      if (m.eval(f.id(), assignment)) tt |= 1 << i;
    }
    return tt;
  };

  for (int a = 0; a < 256; ++a) {
    ASSERT_EQ(tt_of(!fns[a]), (~tts[a]) & 0xFF);
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(tt_of(fns[a] & fns[b]), tts[a] & tts[b]);
      ASSERT_EQ(tt_of(fns[a] | fns[b]), tts[a] | tts[b]);
      ASSERT_EQ(tt_of(fns[a] ^ fns[b]), tts[a] ^ tts[b]);
    }
  }
}

TEST(BddExhaustive, AllTwoVarIteTriples) {
  // ite over every (f, g, h) triple of 2-variable functions: 16^3 = 4096.
  Manager m(2);
  std::vector<Bdd> fns;
  for (int tt = 0; tt < 16; ++tt) {
    test::Table t(4);
    for (int i = 0; i < 4; ++i) t[static_cast<std::size_t>(i)] = (tt >> i) & 1;
    fns.push_back(test::bdd_from_table(m, t, 2));
  }
  auto tt_of = [&](bdd::Edge f) {
    int tt = 0;
    std::vector<bool> assignment(2);
    for (int i = 0; i < 4; ++i) {
      assignment[0] = i & 1;
      assignment[1] = (i >> 1) & 1;
      if (m.eval(f, assignment)) tt |= 1 << i;
    }
    return tt;
  };
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      for (int c = 0; c < 16; ++c)
        ASSERT_EQ(tt_of(m.ite(fns[a].id(), fns[b].id(), fns[c].id())),
                  (a & b) | ((~a & 0xF) & c))
            << a << " " << b << " " << c;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

TEST(BddQueries, SupportFindsExactDependencies) {
  Manager m(5);
  const Bdd f = (m.var(0) & m.var(3)) ^ m.var(4);
  EXPECT_EQ(m.support(f.id()), (std::vector<int>{0, 3, 4}));
  EXPECT_TRUE(m.support(bdd::kTrue).empty());
  // x1 & !x1 cancels: no support.
  const Bdd g = (m.var(1) | m.var(2)) & ((!m.var(1)) | m.var(2));
  EXPECT_EQ(m.support(g.id()), (std::vector<int>{2}));
}

TEST(BddQueries, SatCount) {
  Manager m(4);
  EXPECT_DOUBLE_EQ(m.sat_count(bdd::kTrue, 4), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(bdd::kFalse, 4), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0).id(), 4), 8.0);
  const Bdd f = m.var(0) & m.var(1);
  EXPECT_DOUBLE_EQ(m.sat_count(f.id(), 4), 4.0);
  EXPECT_DOUBLE_EQ(m.sat_count(f.id(), 2), 1.0);
  const Bdd x = m.var(0) ^ m.var(1) ^ m.var(2) ^ m.var(3);
  EXPECT_DOUBLE_EQ(m.sat_count(x.id(), 4), 8.0);
}

TEST(BddQueries, PickOneSatisfies) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.range(1, 8);
    Manager m(n);
    Table t = test::random_table(rng, n);
    t[rng.below(t.size())] = true;  // ensure satisfiable
    const Bdd f = test::bdd_from_table(m, t, n);
    const auto a = m.pick_one(f.id());
    EXPECT_TRUE(m.eval(f.id(), a));
  }
}

TEST(BddQueries, DagSizeCountsSharedOnce) {
  Manager m(4);
  const Bdd x = m.var(0) ^ m.var(1) ^ m.var(2) ^ m.var(3);
  // Parity over 4 vars with complement edges: one node per level (parity and
  // its complement share nodes) + the terminal = 4 + 1 = 5.
  EXPECT_EQ(m.dag_size(x.id()), 5u);
  // Negation is free: !x shares every node with x.
  EXPECT_EQ(m.dag_size({x.id(), (!x).id()}), m.dag_size(x.id()));
  // Shared roots counted once.
  const Bdd y = x ^ m.var(3);  // parity of first three vars
  const std::size_t both = m.dag_size({x.id(), y.id()});
  EXPECT_LT(both, m.dag_size(x.id()) + m.dag_size(y.id()));
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

TEST(BddMemory, GcReclaimsDroppedFunctions) {
  Manager m(10);
  const std::size_t base = m.live_node_count();
  {
    Bdd acc = m.bdd_false();
    Rng rng(5);
    for (int i = 0; i < 30; ++i) {
      Bdd cube = m.bdd_true();
      for (int v = 0; v < 10; ++v)
        if (rng.chance(1, 3)) cube &= m.literal(v, rng.flip());
      acc |= cube;
    }
    EXPECT_GT(m.live_node_count(), base);
  }
  // All handles dropped: everything the loop built is dead.
  m.garbage_collect();
  EXPECT_EQ(m.live_node_count(), base);
}

TEST(BddMemory, LiveFunctionSurvivesGc) {
  Manager m(6);
  Rng rng(17);
  const Table t = test::random_table(rng, 6);
  const Bdd f = test::bdd_from_table(m, t, 6);
  m.garbage_collect();
  EXPECT_EQ(test::table_from_bdd(m, f.id(), 6), t);
  // Recreating the function after GC yields the identical node.
  const Bdd f2 = test::bdd_from_table(m, t, 6);
  EXPECT_EQ(f, f2);
}

TEST(BddMemory, OpsCorrectAfterGcRecycling) {
  Manager m(8);
  Rng rng(23);
  for (int round = 0; round < 5; ++round) {
    const Table ta = test::random_table(rng, 8);
    const Table tb = test::random_table(rng, 8);
    const Bdd a = test::bdd_from_table(m, ta, 8);
    const Bdd b = test::bdd_from_table(m, tb, 8);
    const Table got = test::table_from_bdd(m, (a & b).id(), 8);
    for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(got[i], ta[i] && tb[i]);
    m.garbage_collect();  // recycle ids; computed table must be invalidated
  }
}

TEST(BddMemory, HandleCopySemantics) {
  Manager m(3);
  Bdd a = m.var(0) & m.var(1);
  Bdd b = a;  // copy
  Bdd c = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b, c);
  b = b;  // self-assignment
  EXPECT_EQ(b, c);
  m.garbage_collect();
  EXPECT_EQ(b & m.bdd_true(), c);
}

// ---------------------------------------------------------------------------
// Dynamic variable creation and transfer
// ---------------------------------------------------------------------------

TEST(BddVars, AddVarGrowsManager) {
  Manager m(2);
  const Bdd f = m.var(0) & m.var(1);
  const int v = m.add_var();
  EXPECT_EQ(v, 2);
  EXPECT_EQ(m.num_vars(), 3);
  const Bdd g = f & m.var(v);
  EXPECT_EQ(m.support(g.id()), (std::vector<int>{0, 1, 2}));
}

TEST(BddVars, TransferBetweenManagers) {
  Manager src(6);
  Rng rng(3);
  const Table t = test::random_table(rng, 6);
  const Bdd f = test::bdd_from_table(src, t, 6);

  Manager dst(6);
  // Different order in the destination.
  dst.set_order({5, 3, 1, 0, 2, 4});
  const Bdd g = dst.wrap(dst.transfer_from(src, f.id()));
  EXPECT_EQ(test::table_from_bdd(dst, g.id(), 6), t);
}

// ---------------------------------------------------------------------------
// Generalized cofactor (restrict)
// ---------------------------------------------------------------------------

TEST(BddRestrict, IdentityOnFullCare) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) ^ m.var(3);
  EXPECT_EQ(m.restrict_to(f.id(), bdd::kTrue), f.id());
}

TEST(BddRestrict, DropsVariablesOutsideCare) {
  Manager m(3);
  // care = x0: within the care set, f = x1; restrict should lose x0.
  const Bdd f = m.var(0) & m.var(1);
  const Bdd r = m.wrap(m.restrict_to(f.id(), m.var(0).id()));
  EXPECT_EQ(r, m.var(1));
}

TEST(BddRestrict, StaysInsideTheInterval) {
  Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = rng.range(2, 8);
    Manager m(n);
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
    Table ct = test::random_table(rng, n);
    ct[rng.below(ct.size())] = true;  // care must be satisfiable
    const Bdd care = test::bdd_from_table(m, ct, n);
    const Bdd r = m.wrap(m.restrict_to(f.id(), care.id()));
    // f & care <= r <= f | !care
    EXPECT_TRUE(((f & care) & !r).is_false());
    EXPECT_TRUE((r & !(f | !care)).is_false());
  }
}

TEST(BddRestrict, TendsToShrink) {
  // The motivating case: a complicated function that is simple on the care set.
  Manager m(8);
  Bdd f = m.bdd_false();
  Rng rng(73);
  for (int c = 0; c < 20; ++c) {
    Bdd cube = m.bdd_true();
    for (int v = 0; v < 8; ++v)
      if (rng.chance(1, 2)) cube &= m.literal(v, rng.flip());
    f |= cube;
  }
  const Bdd care = m.var(0) & m.var(1) & m.var(2);  // tiny care region
  const Bdd r = m.wrap(m.restrict_to(f.id(), care.id()));
  EXPECT_LE(m.dag_size(r.id()), m.dag_size(f.id()));
  EXPECT_TRUE((((f ^ r) & care)).is_false());  // agrees where it matters
}

TEST(BddVars, ToDotMentionsAllNodes) {
  Manager m(3);
  const Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  const std::string dot = m.to_dot({f.id()}, {"f"});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x2"), std::string::npos);
}

}  // namespace
}  // namespace mfd
