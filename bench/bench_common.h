// Shared helpers for the experiment harness binaries (one per paper
// table/figure, see DESIGN.md's per-experiment index).
//
// Every binary supports `--stats-json <path>` (or `--stats-json=<path>`):
// each run_flow() call is recorded with its full observability report and
// the collected records are written as one JSON document at exit. Call
// init_stats() before benchmark::Initialize (it strips the flag from argv)
// and write_stats_json() before returning from main.
//
// Robustness flags (also stripped by init_stats, applied by run_flow):
//   --time-budget-ms <n>   wall-clock budget per synthesis run
//   --node-budget <n>      BDD node ceiling per synthesis run
//   --fault-inject <spec>  fault-injection rules (see core/faultinject.h)
//   --jobs <n>             threads for bound-set candidate evaluation
//                          (1 = serial; any value gives identical results,
//                          see docs/PARALLELISM.md)
//   --cache-mb <n>         byte budget of the memoization caches (default
//                          64; 0 keeps them enabled but evicting eagerly)
//   --no-cache             disable all memoization (docs/CACHING.md);
//                          results are bit-identical either way
//
// Pipeline flags (docs/PASSES.md):
//   --passes <spec>        pass pipeline, e.g. decompose,simplify,pack
//                          (default: the full pipeline with odc_resubst)
//   --no-odc               drop the odc_resubst pass from the pipeline;
//                          with the default pipeline this reproduces the
//                          pre-pipeline flow bit-identically
//   --dump-net <path>      write <path>.<i>-<pass>.blif/.dot after every
//                          executed pass (pass-by-pass network states)
//
// Sweep supervision (docs/ROBUSTNESS.md §"Sweep supervision"): each run
// forks into a watchdogged child, outcomes are journaled durably, and a
// rerun with --resume skips completed rows bit-identically:
//   --supervise            run each circuit in a crash-isolated child
//   --journal <path>       journal file (default <binary>.journal)
//   --resume               replay an existing journal; implies --supervise
//   --max-retries <n>      extra attempts after an abnormal child death
//   --watchdog-ms <n>      per-attempt wall-clock watchdog (SIGTERM ->
//                          SIGKILL escalation; default 300000)
//   --sweep-jobs <n>       supervised row children run concurrently
//                          (default 1; output is bit-identical for any
//                          value, see docs/PARALLELISM.md)
//   --sweep-rss-mb <n>     defer spawns while the children's summed RSS
//                          exceeds this many MiB (0 = no cap)
//   --list-fault-sites     print the fault-injection sites/kinds and exit
//   --repro <file>         replay a fuzz reproducer (docs/FUZZING.md) and
//                          exit 0 iff its failure no longer reproduces
// Budget overruns do not crash: the flow degrades (see docs/ROBUSTNESS.md)
// and the --stats-json record carries the DegradationReport. With
// --stats-json the document is also recommitted (temp + rename) after every
// run, so a mid-sweep crash keeps all completed records.
#pragma once

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "circuits/circuits.h"
#include "core/budget.h"
#include "core/faultinject.h"
#include "core/passes.h"
#include "core/synthesizer.h"
#include "obs/json.h"
#include "super/jsonv.h"
#include "super/supervisor.h"
#include "verify/repro.h"

namespace mfd::bench {

struct FlowRun {
  std::string circuit;
  std::string flow;  ///< preset label ("mulop-dc", "mulopII", ...), may be empty
  int inputs = 0;
  int outputs = 0;
  int luts = 0;
  int clb_greedy = 0;
  int clb_matching = 0;
  int gates = 0;
  int depth = 0;
  DecomposeStats stats;
  double seconds = 0.0;
  int jobs = 1;  ///< bound-set evaluation threads this run used
  bool verified = false;
  DegradationReport degradation;  ///< which ladder levels this run hit
  /// Non-empty when the run died on a typed error (e.g. a fault injected
  /// outside the degradation ladder); the sweep continues past it.
  std::string error;
  std::vector<net::PassStats> passes;  ///< pipeline trail of this run
  obs::Report report;  ///< phase tree + counters + gauges of this run
};

namespace detail {

struct StatsSink {
  std::string path;    // empty until --stats-json is seen
  std::string binary;  // argv[0] basename
  std::vector<std::string> rows;  // pre-serialized FlowRun objects
  ResourceBudget budget;  // from --time-budget-ms / --node-budget
  int jobs = 1;           // from --jobs
  long cache_mb = -1;     // from --cache-mb (-1 = default)
  bool no_cache = false;  // from --no-cache
  std::string passes;     // from --passes (empty = default pipeline)
  bool no_odc = false;    // from --no-odc
  std::string dump_net;   // from --dump-net (empty = no dumps)
  bool supervise = false;     // from --supervise / --resume
  bool resume = false;        // from --resume
  std::string journal;        // from --journal (empty = <binary>.journal)
  long max_retries = -1;      // from --max-retries (-1 = policy default)
  double watchdog_ms = 0.0;   // from --watchdog-ms (0 = default 300000)
  long sweep_jobs = 1;        // from --sweep-jobs (concurrent row children)
  long sweep_rss_mb = 0;      // from --sweep-rss-mb (0 = no admission cap)
};

inline StatsSink& sink() {
  static StatsSink s;
  return s;
}

inline std::string flow_run_json(const FlowRun& row) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("circuit").value(row.circuit);
  w.key("flow").value(row.flow);
  w.key("inputs").value(row.inputs);
  w.key("outputs").value(row.outputs);
  w.key("luts").value(row.luts);
  w.key("clb_greedy").value(row.clb_greedy);
  w.key("clb_matching").value(row.clb_matching);
  w.key("gates").value(row.gates);
  w.key("depth").value(row.depth);
  w.key("seconds").value(row.seconds);
  w.key("jobs").value(row.jobs);
  w.key("decompose").begin_object();
  w.key("steps").value(row.stats.decomposition_steps);
  w.key("shannon_fallbacks").value(row.stats.shannon_fallbacks);
  w.key("functions").value(static_cast<std::int64_t>(row.stats.total_decomposition_functions));
  w.key("sum_r").value(static_cast<std::int64_t>(row.stats.sum_r));
  w.key("symmetrized_pairs").value(row.stats.symmetrized_pairs);
  w.key("max_depth").value(row.stats.max_depth);
  w.key("bdd_mux_fallbacks").value(row.stats.bdd_mux_fallbacks);
  w.key("encoding_pool_hits").value(static_cast<std::int64_t>(row.stats.encoding_pool_hits));
  w.key("alpha_pool_hits").value(static_cast<std::int64_t>(row.stats.alpha_pool_hits));
  w.end_object();
  w.key("verified").value(row.verified);
  w.key("error").value(row.error);
  w.key("passes").begin_array();
  for (const net::PassStats& p : row.passes) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("ran").value(p.ran);
    w.key("changed").value(p.changed);
    w.key("skip_reason").value(p.skip_reason);
    w.key("luts_before").value(p.luts_before);
    w.key("luts_after").value(p.luts_after);
    w.key("seconds").value(p.seconds);
    w.end_object();
  }
  w.end_array();
  w.key("degradation").begin_object();
  w.key("final_level").value(row.degradation.final_level);
  w.key("final_level_name").value(degrade_level_name(row.degradation.final_level));
  w.key("suspended_sections")
      .value(static_cast<std::int64_t>(row.degradation.suspended_sections));
  w.key("per_output_level").begin_array();
  for (int level : row.degradation.per_output_level) w.value(level);
  w.end_array();
  w.key("events").begin_array();
  for (const DegradeEvent& e : row.degradation.events) {
    w.begin_object();
    w.key("from").value(e.from_level);
    w.key("to").value(e.to_level);
    w.key("phase").value(e.phase);
    w.key("reason").value(e.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("report").raw(row.report.to_json());
  w.end_object();
  return w.str();
}

/// strtol with a hard exit on garbage: these are operator-facing CLI flags,
/// and silently running an *unbudgeted* sweep would defeat their purpose.
inline long parse_flag_count(const char* flag, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace detail

/// Strips the harness flags from argv (so they never reach
/// benchmark::Initialize) and remembers their values:
///   --stats-json <path>      record runs, write one JSON document at exit
///   --time-budget-ms <n>     per-run wall-clock budget (0 = unlimited)
///   --node-budget <n>        per-run BDD node ceiling (0 = unlimited)
///   --fault-inject <spec>    arm fault-injection rules (core/faultinject.h)
///   --jobs <n>               bound-set evaluation threads (default 1)
///   --cache-mb <n>           memoization cache byte budget in MiB
///   --no-cache               disable all memoization (docs/CACHING.md)
/// All flags also accept the --flag=value spelling. A malformed fault spec
/// or count exits with status 2 rather than running unprotected.
inline void init_stats(int* argc, char** argv) {
  detail::StatsSink& s = detail::sink();
  if (*argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    s.binary = slash != nullptr ? slash + 1 : argv[0];
  }
  auto apply = [&s](const char* flag, const char* value) {
    if (std::strcmp(flag, "--stats-json") == 0) {
      s.path = value;
    } else if (std::strcmp(flag, "--time-budget-ms") == 0) {
      s.budget.time_ms = static_cast<double>(detail::parse_flag_count(flag, value));
    } else if (std::strcmp(flag, "--node-budget") == 0) {
      s.budget.node_ceiling =
          static_cast<std::size_t>(detail::parse_flag_count(flag, value));
    } else if (std::strcmp(flag, "--jobs") == 0) {
      s.jobs = std::max(1, static_cast<int>(detail::parse_flag_count(flag, value)));
    } else if (std::strcmp(flag, "--cache-mb") == 0) {
      s.cache_mb = detail::parse_flag_count(flag, value);
    } else if (std::strcmp(flag, "--passes") == 0) {
      s.passes = value;
    } else if (std::strcmp(flag, "--dump-net") == 0) {
      s.dump_net = value;
    } else if (std::strcmp(flag, "--journal") == 0) {
      s.journal = value;
    } else if (std::strcmp(flag, "--max-retries") == 0) {
      s.max_retries = detail::parse_flag_count(flag, value);
    } else if (std::strcmp(flag, "--watchdog-ms") == 0) {
      s.watchdog_ms = static_cast<double>(detail::parse_flag_count(flag, value));
    } else if (std::strcmp(flag, "--sweep-jobs") == 0) {
      s.sweep_jobs = std::max(1L, detail::parse_flag_count(flag, value));
    } else if (std::strcmp(flag, "--sweep-rss-mb") == 0) {
      s.sweep_rss_mb = detail::parse_flag_count(flag, value);
    } else {  // --fault-inject
      try {
        fault::configure(value);
      } catch (const ParseError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    }
  };
  static constexpr const char* kFlags[] = {"--stats-json", "--time-budget-ms",
                                           "--node-budget", "--fault-inject",
                                           "--jobs", "--cache-mb",
                                           "--passes", "--dump-net",
                                           "--journal", "--max-retries",
                                           "--watchdog-ms", "--sweep-jobs",
                                           "--sweep-rss-mb"};
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    bool consumed = false;
    if (std::strcmp(arg, "--no-cache") == 0) {  // valueless flag
      s.no_cache = true;
      continue;
    }
    if (std::strcmp(arg, "--no-odc") == 0) {  // valueless flag
      s.no_odc = true;
      continue;
    }
    if (std::strcmp(arg, "--supervise") == 0) {  // valueless flag
      s.supervise = true;
      continue;
    }
    if (std::strcmp(arg, "--resume") == 0) {  // valueless flag; needs a journal
      s.supervise = true;
      s.resume = true;
      continue;
    }
    if (std::strcmp(arg, "--repro") == 0 && i + 1 < *argc) {
      // Replay a fuzz reproducer (docs/FUZZING.md) instead of benchmarking:
      // exit 0 iff the recorded failure no longer reproduces.
      const char* path = argv[i + 1];
      try {
        const verify::OracleResult r = verify::replay_repro_file(path);
        if (r.ok) {
          std::printf("repro %s: PASS (%d points, %d checks)\n", path,
                      r.points_run, r.checks_run);
          std::exit(0);
        }
        std::printf("repro %s: FAIL at %s: %s\n", path, r.failing_point.c_str(),
                    r.failure.c_str());
        std::exit(1);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--repro: %s\n", e.what());
        std::exit(2);
      }
    }
    if (std::strcmp(arg, "--list-fault-sites") == 0) {
      std::printf("instrumented fault sites (arm with --fault-inject "
                  "'site@k[:kind]', see docs/ROBUSTNESS.md):\n");
      for (const std::string& site : fault::registered_sites())
        std::printf("  %s\n", site.c_str());
      std::printf("kinds:");
      bool first = true;
      for (const std::string& kind : fault::kind_names()) {
        std::printf("%s %s%s", first ? "" : ",", kind.c_str(),
                    first ? " (default)" : "");
        first = false;
      }
      std::printf("\n");
      std::exit(0);
    }
    for (const char* flag : kFlags) {
      const std::size_t n = std::strlen(flag);
      if (std::strcmp(arg, flag) == 0 && i + 1 < *argc) {
        apply(flag, argv[++i]);
        consumed = true;
        break;
      }
      if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') {
        apply(flag, arg + n + 1);
        consumed = true;
        break;
      }
    }
    if (!consumed) argv[out++] = argv[i];
  }
  *argc = out;
  if (s.no_cache) {
    cache::configure(cache::CacheConfig::disabled());
  } else if (s.cache_mb >= 0) {
    cache::CacheConfig cfg;
    cfg.max_bytes = static_cast<std::size_t>(s.cache_mb) << 20;
    cache::configure(cfg);
  }
}

/// The budget requested on the command line ({} when none was given).
inline const ResourceBudget& cli_budget() { return detail::sink().budget; }

/// The --jobs value from the command line (1 when not given).
inline int cli_jobs() { return detail::sink().jobs; }

/// The effective pipeline spec from --passes / --no-odc ("" = default
/// pipeline). --no-odc filters odc_resubst out of whatever pipeline was
/// chosen, so it composes with an explicit --passes.
inline std::string cli_passes() {
  const detail::StatsSink& s = detail::sink();
  if (!s.no_odc) return s.passes;
  const std::string base = s.passes.empty() ? default_pipeline_spec() : s.passes;
  std::string out;
  for (const std::string& name : net::parse_pipeline_spec(base)) {
    if (name == "odc_resubst") continue;
    if (!out.empty()) out += ',';
    out += name;
  }
  return out;
}

namespace detail {

/// Commits the stats document so far to the --stats-json path via temp +
/// fsync + rename: a reader (or a crash) never sees a torn document, and a
/// mid-sweep death keeps every completed record.
inline void flush_stats_json() {
  const StatsSink& s = sink();
  if (s.path.empty()) return;
  obs::JsonWriter w;
  w.begin_object();
  w.key("binary").value(s.binary);
  if (s.supervise) {
    // Parent-process supervisor counters (docs/OBSERVABILITY.md).
    w.key("supervisor").begin_object();
    for (const char* name : {"spawned", "retries", "crashes", "timeouts",
                             "soft_timeouts", "oom_kills", "resumed_rows",
                             "failed_rows", "admission_waits"})
      w.key(name).value(obs::counter_value(std::string("super.") + name));
    w.key("concurrent_peak")
        .value(static_cast<std::int64_t>(obs::gauge_value("super.concurrent_peak")));
    w.end_object();
  }
  w.key("runs").begin_array();
  for (const std::string& row : s.rows) w.raw(row);
  w.end_array();
  w.end_object();
  const std::string tmp = s.path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", tmp.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (std::rename(tmp.c_str(), s.path.c_str()) != 0)
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(), s.path.c_str());
}

/// Records a pre-serialized run document and recommits the stats file.
inline void record_run_json(const std::string& row_json) {
  StatsSink& s = sink();
  if (s.path.empty()) return;
  s.rows.push_back(row_json);
  flush_stats_json();
}

}  // namespace detail

/// Records a completed flow run for --stats-json output (no-op when the flag
/// was not given) and incrementally recommits the stats document, so a
/// mid-sweep crash loses at most the in-flight run. run_flow() calls this
/// automatically.
inline void record_run(const FlowRun& row) {
  if (detail::sink().path.empty()) return;
  detail::record_run_json(detail::flow_run_json(row));
}

/// Final commit of the collected records plus the console summary. Safe to
/// call unconditionally at the end of main.
inline void write_stats_json() {
  const detail::StatsSink& s = detail::sink();
  if (s.path.empty()) return;
  detail::flush_stats_json();
  std::printf("stats written to %s (%zu runs)\n", s.path.c_str(), s.rows.size());
}

namespace detail {

/// The in-process flow run (the pre-supervisor run_flow body). `rung`
/// carries the supervisor's retry budget clamps ({} = none): nonzero fields
/// take the minimum with whatever budget the run already had, so a retried
/// row degrades through the normal ladder instead of re-dying.
inline FlowRun run_flow_local(const std::string& name, const SynthesisOptions& opts,
                              const std::string& flow, const super::RetryRung& rung) {
  FlowRun row;
  row.circuit = name;
  row.flow = flow;
  try {
    bdd::Manager m;
    const circuits::Benchmark bench = circuits::build(name, m);
    SynthesisOptions governed = opts;
    const ResourceBudget& cli = cli_budget();
    if (cli.time_ms > 0.0) governed.budget.time_ms = cli.time_ms;
    if (cli.node_ceiling != 0) governed.budget.node_ceiling = cli.node_ceiling;
    if (rung.time_budget_ms > 0.0)
      governed.budget.time_ms = governed.budget.time_ms > 0.0
                                    ? std::min(governed.budget.time_ms,
                                               rung.time_budget_ms)
                                    : rung.time_budget_ms;
    if (rung.node_budget != 0)
      governed.budget.node_ceiling =
          governed.budget.node_ceiling != 0
              ? std::min(governed.budget.node_ceiling, rung.node_budget)
              : rung.node_budget;
    governed.decomp.boundset.jobs = cli_jobs();
    if (const std::string p = cli_passes(); !p.empty()) governed.passes = p;
    if (!sink().dump_net.empty())
      governed.dump_net =
          sink().dump_net + "." + name + (flow.empty() ? "" : "." + flow);
    row.jobs = cli_jobs();
    Synthesizer synth(governed);
    const SynthesisResult r = synth.run(bench);
    row.inputs = bench.num_inputs;
    row.outputs = static_cast<int>(bench.outputs.size());
    row.luts = r.network.count_luts();
    row.clb_greedy = r.clb_greedy.num_clbs;
    row.clb_matching = r.clb_matching.num_clbs;
    row.gates = r.network.count_gates();
    row.depth = r.network.depth();
    row.stats = r.stats;
    row.seconds = r.seconds;
    row.verified = r.verified;
    row.degradation = r.degradation;
    row.passes = r.passes;
    row.report = r.report;
  } catch (const Error& e) {
    row.error = e.what();
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
  } catch (const std::bad_alloc&) {
    row.error = "allocation failure (bad_alloc)";
    std::fprintf(stderr, "%s: %s\n", name.c_str(), row.error.c_str());
  }
  return row;
}

/// Rebuilds a FlowRun from its serialized run document (flow_run_json) —
/// how supervised/resumed rows reach the printed tables. The obs report is
/// not reconstructed (the raw document, which still carries it, is what
/// --stats-json republishes).
inline FlowRun flow_run_from_json(const std::string& row_json) {
  const super::JsonValue v = super::parse_json(row_json);
  FlowRun row;
  row.circuit = v.string_or("circuit");
  row.flow = v.string_or("flow");
  row.inputs = static_cast<int>(v.int_or("inputs"));
  row.outputs = static_cast<int>(v.int_or("outputs"));
  row.luts = static_cast<int>(v.int_or("luts"));
  row.clb_greedy = static_cast<int>(v.int_or("clb_greedy"));
  row.clb_matching = static_cast<int>(v.int_or("clb_matching"));
  row.gates = static_cast<int>(v.int_or("gates"));
  row.depth = static_cast<int>(v.int_or("depth"));
  row.seconds = v.double_or("seconds");
  row.jobs = static_cast<int>(v.int_or("jobs", 1));
  row.verified = v.bool_or("verified");
  row.error = v.string_or("error");
  if (const super::JsonValue* d = v.find("decompose")) {
    row.stats.decomposition_steps = static_cast<int>(d->int_or("steps"));
    row.stats.shannon_fallbacks = static_cast<int>(d->int_or("shannon_fallbacks"));
    row.stats.total_decomposition_functions = d->int_or("functions");
    row.stats.sum_r = d->int_or("sum_r");
    row.stats.symmetrized_pairs = static_cast<int>(d->int_or("symmetrized_pairs"));
    row.stats.max_depth = static_cast<int>(d->int_or("max_depth"));
    row.stats.bdd_mux_fallbacks = static_cast<int>(d->int_or("bdd_mux_fallbacks"));
    row.stats.encoding_pool_hits = d->int_or("encoding_pool_hits");
    row.stats.alpha_pool_hits = d->int_or("alpha_pool_hits");
  }
  if (const super::JsonValue* p = v.find("passes"); p != nullptr && p->is_array()) {
    for (const super::JsonValue& e : p->elements) {
      net::PassStats ps;
      ps.name = e.string_or("name");
      ps.ran = e.bool_or("ran");
      ps.changed = e.bool_or("changed");
      ps.skip_reason = e.string_or("skip_reason");
      ps.luts_before = static_cast<int>(e.int_or("luts_before"));
      ps.luts_after = static_cast<int>(e.int_or("luts_after"));
      ps.seconds = e.double_or("seconds");
      row.passes.push_back(std::move(ps));
    }
  }
  if (const super::JsonValue* d = v.find("degradation")) {
    row.degradation.final_level = static_cast<int>(d->int_or("final_level"));
    row.degradation.suspended_sections =
        static_cast<std::uint64_t>(d->int_or("suspended_sections"));
    if (const super::JsonValue* lv = d->find("per_output_level");
        lv != nullptr && lv->is_array())
      for (const super::JsonValue& e : lv->elements)
        row.degradation.per_output_level.push_back(e.as_int());
    if (const super::JsonValue* ev = d->find("events");
        ev != nullptr && ev->is_array())
      for (const super::JsonValue& e : ev->elements) {
        DegradeEvent de;
        de.from_level = static_cast<int>(e.int_or("from"));
        de.to_level = static_cast<int>(e.int_or("to"));
        de.phase = e.string_or("phase");
        de.reason = e.string_or("reason");
        row.degradation.events.push_back(std::move(de));
      }
  }
  return row;
}

/// The sweep supervisor of this process (--supervise), built lazily from
/// the command-line flags. Intentionally leaked: its journal fd must stay
/// valid for any run_flow call, whatever the static destruction order.
inline super::Supervisor& supervisor() {
  static super::Supervisor* s = [] {
    const StatsSink& snk = sink();
    super::SupervisorOptions o;
    o.journal_path = !snk.journal.empty() ? snk.journal : snk.binary + ".journal";
    o.resume = snk.resume;
    o.binary = snk.binary;
    if (snk.max_retries >= 0) o.retry.max_retries = static_cast<int>(snk.max_retries);
    o.limits.watchdog_ms = snk.watchdog_ms > 0.0 ? snk.watchdog_ms : 300000.0;
    o.sweep_jobs = static_cast<int>(snk.sweep_jobs);
    o.rss_cap_mb = static_cast<double>(snk.sweep_rss_mb);
    return new super::Supervisor(o);
  }();
  return *s;
}

}  // namespace detail

/// Runs one synthesis flow on a named benchmark in a fresh manager. Any
/// --time-budget-ms / --node-budget from the command line overrides the
/// options' budget fields (only the ones actually given).
///
/// A typed error (a fault injected outside the degradation ladder, or a
/// budget trip even degradation could not absorb) does NOT kill the sweep:
/// the row is recorded with `error` set and all-zero metrics, and the next
/// circuit runs.
///
/// Under --supervise the run happens in a forked, watchdogged child
/// (docs/ROBUSTNESS.md §"Sweep supervision"): a crash, OOM kill, or hang
/// costs only this row's attempt, the outcome lands durably in the journal,
/// and a --resume rerun replays completed rows instead of re-running them.
inline FlowRun run_flow(const std::string& name, const SynthesisOptions& opts,
                        const std::string& flow = "") {
  if (!detail::sink().supervise) {
    FlowRun row = detail::run_flow_local(name, opts, flow, {});
    record_run(row);
    return row;
  }
  const std::string key = flow.empty() ? name : name + "/" + flow;
  const super::RowOutcome out = detail::supervisor().run_row(
      key, [&name, &opts, &flow](const super::RetryRung& rung) {
        return detail::flow_run_json(detail::run_flow_local(name, opts, flow, rung));
      });
  if (out.ok()) {
    // Republish the child's (or the journal's) document verbatim so
    // supervised, resumed, and unsupervised stats stay bit-identical.
    detail::record_run_json(out.payload);
    try {
      return detail::flow_run_from_json(out.payload);
    } catch (const Error& e) {
      std::fprintf(stderr, "%s: unreadable run document (%s)\n", key.c_str(),
                   e.what());
    }
  }
  FlowRun row;
  row.circuit = name;
  row.flow = flow;
  if (!out.ok()) {
    row.error = "supervisor: " + out.reason;
    std::fprintf(stderr, "%s: %s\n", key.c_str(), row.error.c_str());
    record_run(row);
  }
  return row;
}

/// Registers a flow for background execution ahead of its run_flow call, so
/// --sweep-jobs children can overlap independent rows. No-op unless
/// supervised (sequential binaries need no plan). Call once per upcoming
/// run_flow, in any order — results still come back in run_flow call order,
/// so tables and --stats-json stay bit-identical to an unplanned sweep.
inline void plan_flow(const std::string& name, const SynthesisOptions& opts,
                      const std::string& flow = "") {
  if (!detail::sink().supervise) return;
  const std::string key = flow.empty() ? name : name + "/" + flow;
  detail::supervisor().plan_row(
      key, [name, opts, flow](const super::RetryRung& rung) {
        return detail::flow_run_json(detail::run_flow_local(name, opts, flow, rung));
      });
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mfd::bench
