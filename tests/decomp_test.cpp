// Unit tests for the decomposition core: compatible classes, don't-care
// assignment steps, shared encodings, and bound-set selection.
#include <gtest/gtest.h>

#include <set>

#include "circuits/circuits.h"
#include "decomp/boundset.h"
#include "decomp/compat.h"
#include "decomp/dc_assign.h"
#include "decomp/encoding.h"
#include "sym/symmetry.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;

// ---------------------------------------------------------------------------
// Compatible classes (ncc)
// ---------------------------------------------------------------------------

TEST(Compat, CodeLength) {
  EXPECT_EQ(code_length(1), 0);
  EXPECT_EQ(code_length(2), 1);
  EXPECT_EQ(code_length(3), 2);
  EXPECT_EQ(code_length(4), 2);
  EXPECT_EQ(code_length(5), 3);
  EXPECT_EQ(code_length(8), 3);
  EXPECT_EQ(code_length(9), 4);
}

TEST(Compat, NccOfSymmetricFunctionIsAtMostPPlusOne) {
  // Section 4: a function symmetric in the bound set has ncc <= p + 1.
  Manager m(8);
  std::vector<Bdd> bits;
  for (int i = 0; i < 8; ++i) bits.push_back(m.var(i));
  const circuits::Word count = circuits::count_ones(m, bits);
  const Bdd f = count[1];  // depends on all 8 vars, totally symmetric
  for (int p = 2; p <= 5; ++p) {
    std::vector<int> bound;
    for (int i = 0; i < p; ++i) bound.push_back(i);
    EXPECT_LE(ncc_complete(m, f.id(), bound), p + 1) << "p=" << p;
    EXPECT_GE(ncc_complete(m, f.id(), bound), 2);
  }
}

TEST(Compat, NccMatchesBruteForceOnRandomFunctions) {
  Rng rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.range(4, 7);
    const int p = rng.range(2, 3);
    Manager m(n);
    const auto t = test::random_table(rng, n);
    const Bdd f = test::bdd_from_table(m, t, n);
    std::vector<int> bound;
    for (int i = 0; i < p; ++i) bound.push_back(i);
    // Brute force: group bound vertices by their full cofactor rows.
    std::set<std::vector<bool>> rows;
    for (std::size_t v = 0; v < (std::size_t{1} << p); ++v) {
      std::vector<bool> row;
      for (std::size_t rest = 0; rest < (std::size_t{1} << (n - p)); ++rest)
        row.push_back(t[v | (rest << p)]);
      rows.insert(row);
    }
    EXPECT_EQ(ncc_complete(m, f.id(), bound), static_cast<int>(rows.size()));
  }
}

TEST(Compat, DecomposableFunctionHasSmallNcc) {
  // f = (x0 xor x1 xor x2) & x3 | ... : the bound {x0,x1,x2} communicates
  // only the parity -> 2 classes.
  Manager m(5);
  const Bdd parity = m.var(0) ^ m.var(1) ^ m.var(2);
  const Bdd f = (parity & m.var(3)) | ((!parity) & m.var(4));
  EXPECT_EQ(ncc_complete(m, f.id(), {0, 1, 2}), 2);
}

TEST(Compat, CofactorTableMatchesManualCofactors) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(2)) ^ (m.var(1) | m.var(3));
  const Isf isf = Isf::completely_specified(f);
  const CofactorTable table = cofactor_table(isf, {1, 3});
  ASSERT_EQ(table.entries.size(), 4u);
  EXPECT_EQ(table.num_bound_vars(), 2);
  // vertex 0b01: x1 = 1, x3 = 0.
  const Bdd expect = f.cofactor(1, true).cofactor(3, false);
  EXPECT_EQ(table.entries[1].on(), expect);
  EXPECT_TRUE(table.entries[1].is_completely_specified());
}

TEST(Compat, IncompatibilityGraphCompleteSpecified) {
  Manager m(3);
  const Bdd f = m.var(0) & m.var(1) & m.var(2);
  const CofactorTable t = cofactor_table(Isf::completely_specified(f), {0, 1});
  const Graph g = incompatibility_graph(t);
  // Cofactors: 0,0,0,x2 -> vertices 0,1,2 mutually compatible, 3 conflicts.
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Compat, IsfCompatibilityIsNotTransitive) {
  // The canonical example: a (on), b (dc), c (off) at the same point.
  Manager m(2);  // bound var x0, free var x1
  const Bdd x0 = m.var(0), x1 = m.var(1);
  // One output over (x0, x1): vertex x0=0 ON at x1=1, vertex x0=1 DC.
  const Isf f(x1 & !x0, (!x0) | (!x1));  // care everywhere except (x0=1, x1=1)
  const CofactorTable t = cofactor_table(f, {0});
  EXPECT_TRUE(vertices_compatible(t.entries[0], t.entries[1]));
}

TEST(Compat, PartitionByEquality) {
  Manager m(3);
  const Bdd f = m.var(0) ^ m.var(1);  // cofactors repeat diagonally
  const CofactorTable t = cofactor_table(Isf::completely_specified(f), {0, 1});
  const std::vector<int> part = partition_by_equality(t);
  EXPECT_EQ(part[0], part[3]);
  EXPECT_EQ(part[1], part[2]);
  EXPECT_NE(part[0], part[1]);
  EXPECT_EQ(num_classes(part), 2);
}

// ---------------------------------------------------------------------------
// Don't-care assignment (steps 2 and 3)
// ---------------------------------------------------------------------------

/// Builds random ISF cofactor tables and checks the class invariants.
class DcAssignRandom : public ::testing::TestWithParam<int> {};

TEST_P(DcAssignRandom, PerOutputAssignmentIsSoundAndMinimalish) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 127 + 3);
  const int n = 6;
  Manager m(n);
  const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
  const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
  const Isf f(on & care, care);
  std::vector<CofactorTable> tables{cofactor_table(f, {0, 1, 2})};
  const CofactorTable original = tables[0];

  const auto partitions = assign_per_output(tables, 1);
  ASSERT_EQ(partitions.size(), 1u);
  const auto& part = partitions[0];
  const int k = num_classes(part);

  // Soundness: each merged vertex still admits what the original required.
  for (std::size_t v = 0; v < original.entries.size(); ++v) {
    const Isf& before = original.entries[v];
    const Isf& after = tables[0].entries[v];
    EXPECT_TRUE(((before.on() ^ after.on()) & before.care()).is_false());
    EXPECT_TRUE((before.care() & !after.care()).is_false());
  }
  // Vertices in one class are identical after merging.
  for (std::size_t a = 0; a < part.size(); ++a)
    for (std::size_t b = a + 1; b < part.size(); ++b)
      if (part[a] == part[b]) { EXPECT_EQ(tables[0].entries[a], tables[0].entries[b]); }
  // The class count is at most the completely specified (dc->0) count.
  std::set<bdd::Edge> zero_ext;
  for (const Isf& e : original.entries) zero_ext.insert(e.extension_zero().id());
  EXPECT_LE(k, static_cast<int>(zero_ext.size()));
  EXPECT_GE(k, 1);
}

TEST_P(DcAssignRandom, JointAssignmentBoundsSharing) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 9);
  const int n = 6, p = 3;
  Manager m(n);
  std::vector<CofactorTable> tables;
  std::vector<CofactorTable> originals;
  for (int o = 0; o < 3; ++o) {
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Isf f(on & care, care);
    tables.push_back(cofactor_table(f, {0, 1, 2}));
    originals.push_back(tables.back());
  }
  const int joint = assign_joint(tables, 1);
  EXPECT_GE(joint, 1);
  EXPECT_LE(joint, 1 << p);

  // Soundness per output.
  for (std::size_t o = 0; o < tables.size(); ++o) {
    for (std::size_t v = 0; v < originals[o].entries.size(); ++v) {
      const Isf& before = originals[o].entries[v];
      const Isf& after = tables[o].entries[v];
      EXPECT_TRUE(((before.on() ^ after.on()) & before.care()).is_false());
    }
  }
  // Step 3 after step 2: per-output class count >= would-be joint bound's
  // log cannot be checked directly, but code_length(joint) must lower-bound
  // the total distinct functions needed; verified via the encoder below.
  const auto partitions = assign_per_output(tables, 1);
  Encoding enc = encode_shared(partitions, p, true);
  EXPECT_GE(enc.total_functions(), code_length(joint));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcAssignRandom, ::testing::Range(0, 15));

TEST(DcAssign, JointMergeMakesClassesIdenticalAcrossOutputs) {
  Manager m(4);
  // Two outputs with complementary care: jointly mergeable.
  const Bdd x0 = m.var(0), x1 = m.var(1);
  std::vector<CofactorTable> tables{
      cofactor_table(Isf(m.var(2) & x0, x0), {0, 1}),
      cofactor_table(Isf(m.var(3) & !x0, !x0), {0, 1}),
  };
  const int joint = assign_joint(tables, 1);
  EXPECT_LE(joint, 2);  // x1 is irrelevant: vertices differing only in x1 merge
}

// ---------------------------------------------------------------------------
// Shared encodings
// ---------------------------------------------------------------------------

TEST(Encoding, SingleOutputUsesExactlyCeilLog2) {
  // 5 classes over p=3 -> r = 3.
  const std::vector<std::vector<int>> partitions{{0, 1, 2, 3, 4, 0, 1, 2}};
  const Encoding enc = encode_shared(partitions, 3, true);
  EXPECT_TRUE(encoding_is_valid(enc, partitions));
  EXPECT_EQ(enc.r(0), 3);
  EXPECT_EQ(enc.total_functions(), 3);
}

TEST(Encoding, IdenticalOutputsShareEverything) {
  const std::vector<int> part{0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<std::vector<int>> partitions{part, part, part};
  const Encoding enc = encode_shared(partitions, 3, true);
  EXPECT_TRUE(encoding_is_valid(enc, partitions));
  EXPECT_EQ(enc.total_functions(), 2);  // r_i = 2 each, fully shared
  for (int o = 0; o < 3; ++o) EXPECT_EQ(enc.r(o), 2);
}

TEST(Encoding, NoSharingBaselineDuplicates) {
  const std::vector<int> part{0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<std::vector<int>> partitions{part, part};
  const Encoding enc = encode_shared(partitions, 3, false);
  EXPECT_TRUE(encoding_is_valid(enc, partitions));
  EXPECT_EQ(enc.total_functions(), 4);  // 2 + 2, nothing shared
}

TEST(Encoding, CoarserPartitionReusesRefinementFunctions) {
  // Output 0 distinguishes 4 classes; output 1 only needs a coarsening
  // (pairs of 0's classes). A strict function for 1 must be constant on its
  // classes; at least one of 0's functions qualifies here.
  const std::vector<std::vector<int>> partitions{
      {0, 1, 2, 3},   // p = 2, fine partition
      {0, 0, 1, 1}};  // coarse: split only by vertex high bit
  const Encoding enc = encode_shared(partitions, 2, true);
  EXPECT_TRUE(encoding_is_valid(enc, partitions));
  EXPECT_EQ(enc.r(0), 2);
  EXPECT_EQ(enc.r(1), 1);
  EXPECT_EQ(enc.total_functions(), 2);  // output 1 reuses one of output 0's
}

TEST(Encoding, ConstantOutputNeedsNoFunctions) {
  const std::vector<std::vector<int>> partitions{{0, 0, 0, 0}};
  const Encoding enc = encode_shared(partitions, 2, true);
  EXPECT_TRUE(encoding_is_valid(enc, partitions));
  EXPECT_EQ(enc.r(0), 0);
  EXPECT_EQ(enc.total_functions(), 0);
}

class EncodingRandom : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRandom, RandomPartitionsAlwaysValidAndMinimalPerOutput) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
  const int p = rng.range(2, 5);
  const int m_out = rng.range(1, 5);
  std::vector<std::vector<int>> partitions;
  for (int o = 0; o < m_out; ++o) {
    const int k = rng.range(1, 1 << p);
    std::vector<int> part(std::size_t{1} << p);
    // Ensure every class id below k occurs at least once.
    for (std::size_t v = 0; v < part.size(); ++v)
      part[v] = v < static_cast<std::size_t>(k) ? static_cast<int>(v)
                                                : rng.range(0, k - 1);
    partitions.push_back(std::move(part));
  }
  for (const bool share : {true, false}) {
    const Encoding enc = encode_shared(partitions, p, share);
    EXPECT_TRUE(encoding_is_valid(enc, partitions));
    long sum_r = 0;
    for (int o = 0; o < m_out; ++o) {
      EXPECT_EQ(enc.r(o), code_length(num_classes(partitions[static_cast<std::size_t>(o)])));
      sum_r += enc.r(o);
    }
    EXPECT_LE(enc.total_functions(), sum_r);
    if (!share) { EXPECT_EQ(enc.total_functions(), sum_r); }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRandom, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
// Section 4 theorem: strict decomposition functions inherit symmetries
// ---------------------------------------------------------------------------

TEST(Strictness, DecompositionFunctionsInheritBoundSetSymmetries) {
  // Build functions symmetric in a pair inside the bound set; every emitted
  // decomposition function (strict by construction: constant on compatible
  // classes) must be symmetric in that pair as well.
  Rng rng(103);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 6;
    Manager m(n);
    // f = h(x0 + x1, x2, ..): symmetric in (x0, x1) by construction.
    const Bdd sum1 = m.var(0) ^ m.var(1);
    const Bdd both = m.var(0) & m.var(1);
    const Bdd g0 = test::bdd_from_table(m, test::random_table(rng, n), n)
                       .cofactor(0, false)
                       .cofactor(1, false);
    const Bdd g1 = test::bdd_from_table(m, test::random_table(rng, n), n)
                       .cofactor(0, false)
                       .cofactor(1, false);
    const Bdd g2 = test::bdd_from_table(m, test::random_table(rng, n), n)
                       .cofactor(0, false)
                       .cofactor(1, false);
    const Bdd f = ((!sum1) & (!both) & g0) | (sum1 & g1) | (both & g2);
    ASSERT_TRUE(is_symmetric(m, f.id(), 0, 1, SymmetryKind::kNonequivalence));

    const std::vector<int> bound{0, 1, 2};
    std::vector<CofactorTable> tables{
        cofactor_table(Isf::completely_specified(f), bound)};
    const auto partitions = assign_per_output(tables, 1);
    const Encoding enc = encode_shared(partitions, 3, true);
    ASSERT_TRUE(encoding_is_valid(enc, partitions));

    // Swapping bound bits 0 and 1 of a vertex must not change any function.
    for (const auto& fn : enc.functions) {
      for (std::size_t v = 0; v < fn.size(); ++v) {
        const bool b0 = v & 1, b1 = (v >> 1) & 1;
        std::size_t swapped = v & ~std::size_t{3};
        if (b0) swapped |= 2;
        if (b1) swapped |= 1;
        EXPECT_EQ(fn[v], fn[swapped]) << "alpha not symmetric in the bound pair";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bound-set selection
// ---------------------------------------------------------------------------

TEST(BoundSet, FindsTheCommunicationMinimalCut) {
  // f = parity(x0,x1,x2) ? g(x3,x4) : h(x3,x4): the bound {0,1,2} has
  // ncc = 2 -> benefit 3-1 = 2; any mixed bound is worse.
  Manager m(5);
  const Bdd parity = m.var(0) ^ m.var(1) ^ m.var(2);
  const Bdd f = (parity & (m.var(3) & m.var(4))) | ((!parity) & (m.var(3) ^ m.var(4)));
  std::vector<Isf> fns{Isf::completely_specified(f)};
  const BoundSetChoice c = select_bound_set(fns, {0, 1, 2, 3, 4}, 3);
  EXPECT_EQ(c.vars, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.benefit, 2);
  EXPECT_EQ(c.r_per_output, (std::vector<int>{1}));
}

TEST(BoundSet, ZeroCutOutputContributesNothing) {
  Manager m(6);
  const Bdd f0 = m.var(0) ^ m.var(1) ^ m.var(2) ^ m.var(3);
  const Bdd f1 = m.var(4) & m.var(5);
  std::vector<Isf> fns{Isf::completely_specified(f0), Isf::completely_specified(f1)};
  std::vector<std::vector<int>> supports{{0, 1, 2, 3}, {4, 5}};
  const BoundSetChoice c = evaluate_bound_set(fns, supports, {0, 1, 2}, 1);
  EXPECT_EQ(c.r_per_output[1], 0);
  EXPECT_EQ(c.benefit, 2);  // 3 - 1 from f0 alone
}

TEST(BoundSet, SharingGapDetected) {
  // Two outputs with the same communication: joint classes == per-output
  // classes, so the gap r0 + r1 - r_joint is positive.
  Manager m(5);
  const Bdd parity = m.var(0) ^ m.var(1) ^ m.var(2);
  std::vector<Isf> fns{Isf::completely_specified(parity & m.var(3)),
                       Isf::completely_specified(parity | m.var(4))};
  std::vector<std::vector<int>> supports{{0, 1, 2, 3}, {0, 1, 2, 4}};
  const BoundSetChoice c = evaluate_bound_set(fns, supports, {0, 1, 2}, 1);
  EXPECT_EQ(c.sum_r, 2);
  EXPECT_EQ(c.sharing_gap, 1);  // joint ncc = 2 -> r_joint = 1
}

TEST(BoundSet, RespectsEvaluationBudget) {
  Manager m(8);
  const circuits::Benchmark bench = circuits::adder(m, 4);
  std::vector<Isf> fns;
  for (const Bdd& f : bench.outputs) fns.push_back(Isf::completely_specified(f));
  BoundSetOptions opts;
  opts.max_evaluations = 3;
  const BoundSetChoice c = select_bound_set(fns, {0, 1, 2, 3, 4, 5, 6, 7}, 4, opts);
  EXPECT_FALSE(c.vars.empty());
}

}  // namespace
}  // namespace mfd
