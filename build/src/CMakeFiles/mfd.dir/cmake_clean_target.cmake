file(REMOVE_RECURSE
  "libmfd.a"
)
