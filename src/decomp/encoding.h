// Shared strict decomposition functions for multi-output decomposition
// (Scholl & Molitor [21], Section 3 of the paper).
//
// A decomposition function is *strict* for f_i iff it is constant on every
// compatible class of f_i. Strict functions are the ones that can be shared:
// a single alpha serves every output on whose partition it is constant, and
// strictness also preserves the symmetries of f_i (Section 4).
//
// The encoder keeps the paper's hard constraint r_i = ceil(log2 k_i) for
// every output and heuristically minimizes the pool of distinct functions:
// outputs are processed by decreasing class count; each reuses every pool
// function that is (a) strict for it, (b) separates something, and (c) keeps
// the encodability invariant "every code cell holds at most 2^(r_i - t)
// classes after t functions"; the remaining distinctions come from fresh
// balanced splitter functions that are added to the pool for later outputs.
#pragma once

#include <cstdint>
#include <vector>

namespace mfd {

struct Encoding {
  /// Each decomposition function as its value on every bound vertex, in
  /// canonical polarity (value false on bound vertex 0) — see encode_shared.
  std::vector<std::vector<bool>> functions;
  /// Per output: indices into `functions`, size r_i.
  std::vector<std::vector<int>> used;
  /// Pool reuses / fresh splitters of *this* call. Per-call attribution for
  /// DecomposeStats; the matching obs counters (encoding.pool_hits,
  /// encoding.fresh_splitters) keep accumulating across the whole flow.
  int pool_hits = 0;
  int fresh_splitters = 0;

  int r(int output) const { return static_cast<int>(used[static_cast<std::size_t>(output)].size()); }
  int total_functions() const { return static_cast<int>(functions.size()); }
  /// Code word of a bound vertex for one output (bit j = used[output][j]).
  std::uint32_t code_of(int output, int vertex) const;
};

/// Encodes the per-output class partitions over 2^p bound vertices.
/// With `share` = false every output receives private functions (the
/// no-sharing baseline).
///
/// Every returned function is flipped into *canonical polarity* (value false
/// on bound vertex 0) as a final pass. Complementing a strict function
/// preserves strictness and the separation its code bit provides (code words
/// flip that bit uniformly, via code_of), so validity is untouched — but two
/// functions that separate the same classes with opposite polarity become
/// bit-identical tables, which is what lets the decomposition driver's alpha
/// pool (and LutNetwork::simplify's duplicate sharing) merge "equal or
/// complemented" decomposition functions into one LUT (docs/CACHING.md).
Encoding encode_shared(const std::vector<std::vector<int>>& partitions, int p,
                       bool share = true);

/// True iff, for every output, the code words separate all classes and are
/// constant within each class (validity of an encoding).
bool encoding_is_valid(const Encoding& enc,
                       const std::vector<std::vector<int>>& partitions);

}  // namespace mfd
