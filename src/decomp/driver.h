// Internal header of the decomposition driver: the shared context and the
// pass-sized units the recursive flow composes from.
//
// The driver is split across three translation units so each piece stays
// reviewable and reusable on its own (the network-level passes reuse the
// same machinery):
//
//   decompose.cpp  — the ladder driver (`synth`), the per-level orchestrator
//                    (`synth_attempt`: small-function emission, clustering,
//                    structural floor), and the public `decompose()` entry;
//   emit.cpp       — signal emission: single-LUT extensions, direct BDD-mux
//                    mapping, the Shannon fallback, and the combined
//                    structural fallback;
//   step.cpp       — one full decomposition step: symmetrize, order seeding,
//                    bound-set search, the DC assignment steps, encoding,
//                    alpha emission, and the composition recursion.
//
// Everything here is internal to src/decomp — include only from its .cpp
// files.
#pragma once

#include <cassert>
#include <map>
#include <utility>
#include <vector>

#include "core/budget.h"
#include "decomp/decompose.h"
#include "isf/isf.h"
#include "net/lutnet.h"

namespace mfd::decomp {

constexpr int kNoSignal = -1000000;

/// Marker id for functions that are not primary outputs (alpha recursions);
/// their ladder level is not attributed to anyone.
constexpr int kInternalId = -1;

/// Mutable state of one decompose() call, threaded through the recursion.
struct Ctx {
  bdd::Manager& m;
  const DecomposeOptions& opts;
  ResourceGovernor* gov;  // never null inside synth (decompose installs one)
  net::LutNetwork net;
  std::vector<int> var_signal;  // manager var -> network signal
  std::vector<int> out_level;   // primary output -> ladder level at emission
  DecomposeStats stats;
  /// Call-scoped alpha pool: (inputs, table) of every decomposition-function
  /// LUT emitted so far -> its signal. Reusing the signal instead of emitting
  /// a duplicate is bit-identical to the uncached flow because simplify()
  /// merges duplicates to the earliest signal and renumbers after DCE — the
  /// pool just does it before the duplicate ever exists (docs/CACHING.md).
  /// Net signals are only meaningful within one decompose call, so the pool
  /// lives here rather than in the process-wide cache layer.
  std::map<std::pair<std::vector<int>, std::vector<bool>>, int> alpha_pool;

  /// Emits a decomposition-function LUT through the pool. Entry-capped so a
  /// pathological flow cannot hold every table ever emitted. (emit.cpp)
  int emit_alpha(net::Lut lut);

  /// Attributes the currently active ladder level to primary output `id`
  /// (called at every signal-emission site; internal ids are ignored).
  void record_level(int id) {
    if (id == kInternalId) return;
    int& slot = out_level[static_cast<std::size_t>(id)];
    slot = std::max(slot, gov->degrade_level());
  }

  int signal_of(int var) const {
    assert(var_signal[static_cast<std::size_t>(var)] != kNoSignal);
    return var_signal[static_cast<std::size_t>(var)];
  }
  void bind(int var, int signal) {
    if (static_cast<std::size_t>(var) >= var_signal.size())
      var_signal.resize(static_cast<std::size_t>(var) + 1, kNoSignal);
    var_signal[static_cast<std::size_t>(var)] = signal;
  }
};

// ---- emission units (emit.cpp) ------------------------------------------

/// Emits a completely specified extension as a single LUT (its support must
/// fit the fanin bound). Returns the driving signal.
int emit_small(Ctx& c, const bdd::Bdd& ext);

/// Last-resort emission: map the extension-zero BDD of `f` node-for-node to
/// a network of multiplexers (the classic direct BDD mapping). Linear in the
/// BDD size, so it bounds the worst case when neither a profitable bound set
/// nor an affordable Shannon cascade exists.
int emit_bdd_muxes(Ctx& c, const Isf& f);

/// Shannon (mux) fallback: guaranteed support reduction when no bound set
/// yields one.
std::vector<int> shannon_step(Ctx& c, const std::vector<Isf>& fns,
                              const std::vector<int>& ids, int depth);

/// Emission when no profitable bound set exists: Shannon-split outputs with
/// small support (the recursion then reconsiders the halves), map the rest
/// directly as BDD mux networks (bounded cost; a Shannon cascade over a wide
/// support could fan out exponentially).
std::vector<int> fallback_emit(Ctx& c, const std::vector<Isf>& work,
                               const std::vector<int>& ids, int depth);

/// Union of the functions' supports, ascending.
std::vector<int> union_of_supports(const std::vector<Isf>& fns);

// ---- one decomposition step (step.cpp) ----------------------------------

/// One full decomposition level over an already-clustered group whose
/// members all exceed the fanin bound: symmetrize, seed the order, search
/// for a bound set, run the DC assignment steps, encode and emit the
/// decomposition functions, then recurse on the composition functions.
/// Falls back to `fallback_emit` internally when no bound set is
/// profitable. Returns one signal per entry of `work`.
std::vector<int> decomposition_step(Ctx& c, std::vector<Isf> work,
                                    const std::vector<int>& work_ids, int depth);

// ---- ladder driver (decompose.cpp) --------------------------------------

/// Ladder driver wrapping one recursion level. On BudgetExceeded / bad_alloc
/// it raises the (global, monotone) degradation level one rung and retries
/// the same subproblem; the structural floor (level 3) runs with enforcement
/// suspended, so it completes unless a fault is injected into it — only then
/// does a typed error escape to the caller. `ids[i]` is the primary-output
/// index function i computes (kInternalId for alpha recursions), used to
/// attribute the final ladder level per output.
std::vector<int> synth(Ctx& c, std::vector<Isf> fns, const std::vector<int>& ids,
                       int depth);

}  // namespace mfd::decomp
