# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_reorder_test[1]_include.cmake")
include("/root/repo/build/tests/isop_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_stress_test[1]_include.cmake")
include("/root/repo/build/tests/isf_test[1]_include.cmake")
include("/root/repo/build/tests/sym_test[1]_include.cmake")
include("/root/repo/build/tests/decomp_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/map_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
