// Minato-Morreale ISOP: interval containment, irredundancy, exactness for
// completely specified functions, and the PLA export built on it.
#include <gtest/gtest.h>

#include "bdd/isop.h"
#include "io/pla.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Cube;
using bdd::Manager;

TEST(Isop, Constants) {
  Manager m(3);
  EXPECT_TRUE(bdd::isop(m, bdd::kFalse, bdd::kFalse).empty());
  const auto taut = bdd::isop(m, bdd::kTrue, bdd::kTrue);
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_TRUE(taut[0].literals.empty());
}

TEST(Isop, SingleCubeFunctions) {
  Manager m(4);
  const Bdd f = m.var(0) & !m.var(2) & m.var(3);
  const auto cover = bdd::isop(m, f.id(), f.id());
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literals.size(), 3u);
  EXPECT_EQ(bdd::cover_to_bdd(m, cover), f.id());
}

TEST(Isop, XorNeedsTwoCubes) {
  Manager m(2);
  const Bdd f = m.var(0) ^ m.var(1);
  const auto cover = bdd::isop(m, f.id(), f.id());
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_EQ(bdd::cover_to_bdd(m, cover), f.id());
}

TEST(Isop, ExactForCompletelySpecified) {
  Rng rng(91);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.range(1, 8);
    Manager m(n);
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
    const auto cover = bdd::isop(m, f.id(), f.id());
    EXPECT_EQ(bdd::cover_to_bdd(m, cover), f.id()) << "n=" << n;
  }
}

TEST(Isop, StaysInsideTheInterval) {
  Rng rng(93);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.range(2, 7);
    Manager m(n);
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd dc = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd lower = on & !dc;
    const Bdd upper = on | dc;
    const auto cover = bdd::isop(m, lower.id(), upper.id());
    const Bdd g = m.wrap(bdd::cover_to_bdd(m, cover));
    EXPECT_TRUE((lower & !g).is_false());
    EXPECT_TRUE((g & !upper).is_false());
  }
}

TEST(Isop, DontCaresShrinkCovers) {
  // Parity is the worst case for SOP (2^(n-1) cubes); a generous don't-care
  // set must reduce the cover dramatically.
  Manager m(6);
  Bdd parity = m.bdd_false();
  for (int i = 0; i < 6; ++i) parity ^= m.var(i);
  const auto exact = bdd::isop(m, parity.id(), parity.id());
  EXPECT_EQ(exact.size(), 32u);  // 2^5 minterm-ish cubes
  // Care only about inputs where x0 = 1.
  const Bdd lower = parity & m.var(0);
  const Bdd upper = parity | !m.var(0);
  const auto relaxed = bdd::isop(m, lower.id(), upper.id());
  EXPECT_LT(relaxed.size(), exact.size());
}

TEST(Isop, IrredundantCover) {
  Rng rng(97);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.range(2, 6);
    Manager m(n);
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
    const auto cover = bdd::isop(m, f.id(), f.id());
    // Dropping any single cube must lose some minterm of f.
    for (std::size_t skip = 0; skip < cover.size(); ++skip) {
      std::vector<Cube> reduced;
      for (std::size_t i = 0; i < cover.size(); ++i)
        if (i != skip) reduced.push_back(cover[i]);
      EXPECT_NE(bdd::cover_to_bdd(m, reduced), f.id()) << "cube " << skip << " redundant";
    }
  }
}

// ---------------------------------------------------------------------------
// PLA export via ISOP
// ---------------------------------------------------------------------------

TEST(PlaExport, RoundTripCompletelySpecified) {
  Rng rng(101);
  Manager m(5);
  std::vector<Isf> fns;
  for (int o = 0; o < 3; ++o)
    fns.push_back(Isf::completely_specified(
        test::bdd_from_table(m, test::random_table(rng, 5), 5)));
  const io::PlaFile pla = io::pla_from_isfs(fns, 5, {}, {"a", "b", "c"});
  EXPECT_EQ(pla.num_inputs, 5);
  EXPECT_EQ(pla.num_outputs, 3);

  const std::vector<Isf> back = io::pla_to_isfs(io::parse_pla(io::write_pla(pla)), m);
  ASSERT_EQ(back.size(), 3u);
  for (int o = 0; o < 3; ++o) {
    EXPECT_TRUE(back[static_cast<std::size_t>(o)].is_completely_specified());
    EXPECT_EQ(back[static_cast<std::size_t>(o)].on(), fns[static_cast<std::size_t>(o)].on()) << o;
  }
}

TEST(PlaExport, DontCaresAreSpentNotPreserved) {
  Manager m(3);
  // care = x0; on = x0 & x1. The exported cover picks *an* extension.
  const Isf f(m.var(0) & m.var(1), m.var(0));
  const io::PlaFile pla = io::pla_from_isfs({f});
  const std::vector<Isf> back = io::pla_to_isfs(io::parse_pla(io::write_pla(pla)), m);
  EXPECT_TRUE(f.admits(back[0].on()));
}

TEST(PlaExport, RejectsOutOfRangeSupport) {
  Manager m(4);
  const Isf f = Isf::completely_specified(m.var(3));
  EXPECT_THROW(io::pla_from_isfs({f}, 2), std::runtime_error);
}

}  // namespace
}  // namespace mfd
