// Inter-manager transfer and debug output.
#include <sstream>
#include <unordered_map>

#include "bdd/bdd.h"

namespace mfd::bdd {

Edge Manager::transfer_from(const Manager& src, Edge f) {
  maybe_auto_gc(kTrue, kTrue);
  OpScope scope(*this);
  // Memoize per source *node*; the complement tags transfer unchanged (both
  // managers use the same edge encoding).
  std::unordered_map<NodeIndex, Edge> memo;
  auto rec = [&](auto&& self, Edge e) -> Edge {
    if (src.is_terminal(e)) return e;  // terminal edges coincide by construction
    const bool c = e.is_complemented();
    const NodeIndex n = e.index();
    auto it = memo.find(n);
    if (it != memo.end()) return it->second ^ c;
    const Edge lo = self(self, src.nodes_[n].lo);
    const Edge hi = self(self, src.nodes_[n].hi);
    // The destination order may differ, so rebuild with ITE.
    const Edge xv = mk(static_cast<int>(src.nodes_[n].var), kFalse, kTrue);
    const Edge r = ite_rec(xv, hi, lo);
    memo.emplace(n, r);
    return r ^ c;
  };
  return rec(rec, f);
}

std::string Manager::to_dot(const std::vector<Edge>& roots,
                            const std::vector<std::string>& names) const {
  // Complemented edges carry a dot-shaped arrowhead (the usual convention);
  // else-edges are dashed. The single terminal is the ONE box.
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  n0 [label=\"1\", shape=box];\n";
  const auto edge_attrs = [](Edge e, bool dashed) {
    std::string attrs;
    if (dashed) attrs = "style=dashed";
    if (e.is_complemented()) {
      if (!attrs.empty()) attrs += ", ";
      attrs += "arrowhead=odot";
    }
    return attrs.empty() ? std::string() : " [" + attrs + "]";
  };
  std::unordered_map<NodeIndex, bool> seen;
  std::vector<NodeIndex> stack;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const std::string name = i < names.size() ? names[i] : "f" + std::to_string(i);
    os << "  r" << i << " [label=\"" << name << "\", shape=plaintext];\n";
    os << "  r" << i << " -> n" << roots[i].index() << edge_attrs(roots[i], false)
       << ";\n";
    stack.push_back(roots[i].index());
  }
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n == 0 || seen[n]) continue;
    seen[n] = true;
    const Node& node = nodes_[n];
    os << "  n" << n << " [label=\"x" << node.var << "\"];\n";
    os << "  n" << n << " -> n" << node.lo.index() << edge_attrs(node.lo, true) << ";\n";
    os << "  n" << n << " -> n" << node.hi.index() << edge_attrs(node.hi, false) << ";\n";
    stack.push_back(node.lo.index());
    stack.push_back(node.hi.index());
  }
  os << "}\n";
  return os.str();
}

}  // namespace mfd::bdd
