// Ablation C (DESIGN.md): bound-set search quality.
//
// The paper seeds the search with symmetric sifting and explores exchanges
// of symmetric variable groups. We compare: (a) the full search (symmetric
// sifting seed + window scan + exchange refinement), (b) no sifting seed,
// (c) windows only (no exchange refinement), (d) a crippled search seeing
// only the first window.
#include <map>

#include "bench_common.h"

namespace {

using mfd::bench::run_flow;

const std::vector<std::string> kCircuits{"5xp1", "rd84", "9sym", "clip",
                                         "z4ml", "alu2", "misex1", "sao2"};

struct Config {
  const char* label;
  bool sift;
  int improvement_passes;
  int max_evaluations;
};

const Config kConfigs[] = {
    {"full", true, 2, 200},
    {"nosift", false, 2, 200},
    {"windows", true, 0, 200},
    {"first", false, 0, 1},
};

std::map<std::string, std::map<std::string, int>> g_rows;

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    for (const Config& cfg : kConfigs) {
      mfd::SynthesisOptions opts = mfd::preset_mulop_dc(5);
      opts.decomp.symmetric_sift = cfg.sift;
      opts.decomp.boundset.improvement_passes = cfg.improvement_passes;
      opts.decomp.boundset.max_evaluations = cfg.max_evaluations;
      const auto row = run_flow(name, opts, cfg.label);
      g_rows[name][cfg.label] = row.clb_greedy;
      state.counters[cfg.label] = row.clb_greedy;
    }
  }
}

void print_table() {
  std::printf("\nAblation C: bound-set search (CLB counts, n_LUT = 5).\n\n");
  std::printf("%-8s |", "circuit");
  for (const Config& cfg : kConfigs) std::printf(" %8s", cfg.label);
  std::printf("\n");
  mfd::bench::print_rule(48);
  std::map<std::string, long> totals;
  for (const auto& [name, cols] : g_rows) {
    std::printf("%-8s |", name.c_str());
    for (const Config& cfg : kConfigs) {
      std::printf(" %8d", cols.at(cfg.label));
      totals[cfg.label] += cols.at(cfg.label);
    }
    std::printf("\n");
  }
  mfd::bench::print_rule(48);
  std::printf("%-8s |", "total");
  for (const Config& cfg : kConfigs) std::printf(" %8ld", totals[cfg.label]);
  std::printf("\n\nshape check: full <= windows <= first; the search matters.\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : kCircuits)
    benchmark::RegisterBenchmark(("ablationC/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
