#include "bdd/bdd.h"

#include <cassert>

#include "core/budget.h"
#include "core/faultinject.h"
#include "obs/obs.h"

namespace mfd::bdd {

namespace {
constexpr std::size_t kCacheInitSize = std::size_t{1} << 16;  // entries
constexpr std::size_t kCacheMaxSize = std::size_t{1} << 22;
constexpr std::size_t kAutoGcMinDead = 4096;       // dead roots, absolute floor
constexpr std::size_t kAutoGcPopulationRatio = 32;  // sweep:free amortization cap
constexpr std::uint32_t kRefSaturated = 0xFFFFFFFFu;
constexpr NodeIndex kNilIndex = 0xFFFFFFFFu;  // end of a unique-table chain
}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* mgr, Edge id) : mgr_(mgr), id_(id) {
  if (mgr_) mgr_->ref(id_);
}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), id_(other.id_) {
  if (mgr_) mgr_->ref(id_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
  other.id_ = kFalse;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.mgr_) other.mgr_->ref(other.id_);
  release();
  mgr_ = other.mgr_;
  id_ = other.id_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  release();
  mgr_ = other.mgr_;
  id_ = other.id_;
  other.mgr_ = nullptr;
  other.id_ = kFalse;
  return *this;
}

Bdd::~Bdd() { release(); }

void Bdd::release() {
  if (mgr_) mgr_->deref(id_);
  mgr_ = nullptr;
  id_ = kFalse;
}

// ---------------------------------------------------------------------------
// Manager: construction, variables
// ---------------------------------------------------------------------------

Manager::Manager(int num_vars) {
  nodes_.reserve(1024);
  // The single terminal ONE occupies index 0; immortal (saturated refs).
  // Its lo/hi fields are never followed.
  nodes_.push_back(Node{kTerminalVar, kTrue, kTrue, kNilIndex, kRefSaturated});
  cache_.resize(kCacheInitSize);
  for (int i = 0; i < num_vars; ++i) add_var();
}

Manager::~Manager() = default;

int Manager::add_var() {
  const int v = num_vars();
  var_to_level_.push_back(v);
  level_to_var_.push_back(v);
  Subtable t;
  t.buckets.assign(16, kNilIndex);
  subtables_.push_back(std::move(t));
  return v;
}

Bdd Manager::var(int v) { return wrap(mk(v, kFalse, kTrue)); }

Bdd Manager::literal(int v, bool positive) {
  return positive ? wrap(mk(v, kFalse, kTrue)) : wrap(mk(v, kTrue, kFalse));
}

// ---------------------------------------------------------------------------
// Unique table
// ---------------------------------------------------------------------------

std::size_t Manager::hash_triple(std::uint32_t var, Edge lo, Edge hi) {
  std::uint64_t h = var;
  h = h * 0x9e3779b97f4a7c15ULL + lo.bits();
  h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL + hi.bits();
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

void Manager::table_insert(Subtable& t, NodeIndex n) {
  const Node& node = nodes_[n];
  const std::size_t b = hash_triple(node.var, node.lo, node.hi) & (t.buckets.size() - 1);
  nodes_[n].next = t.buckets[b];
  t.buckets[b] = n;
  ++t.count;
  maybe_resize(t);
}

void Manager::table_remove(Subtable& t, NodeIndex n) {
  const Node& node = nodes_[n];
  const std::size_t b = hash_triple(node.var, node.lo, node.hi) & (t.buckets.size() - 1);
  NodeIndex cur = t.buckets[b];
  if (cur == n) {
    t.buckets[b] = node.next;
  } else {
    while (nodes_[cur].next != n) {
      cur = nodes_[cur].next;
      assert(cur != kNilIndex && "node not found in its subtable");
    }
    nodes_[cur].next = node.next;
  }
  --t.count;
}

void Manager::maybe_resize(Subtable& t) {
  if (t.count <= t.buckets.size() * 2) return;
  std::vector<NodeIndex> old = std::move(t.buckets);
  t.buckets.assign(old.size() * 4, kNilIndex);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kNilIndex;) {
      const NodeIndex next = nodes_[n].next;
      const std::size_t b =
          hash_triple(nodes_[n].var, nodes_[n].lo, nodes_[n].hi) & (t.buckets.size() - 1);
      nodes_[n].next = t.buckets[b];
      t.buckets[b] = n;
      n = next;
    }
  }
}

NodeIndex Manager::allocate_node(std::uint32_t var, Edge lo, Edge hi) {
  if (fault::armed()) fault::point("bdd.alloc");
  NodeIndex n;
  if (!free_list_.empty()) {
    n = free_list_.back();
    free_list_.pop_back();
    nodes_[n] = Node{var, lo, hi, kNilIndex, 0};
  } else {
    n = static_cast<NodeIndex>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi, kNilIndex, 0});
  }
  ++live_nodes_;
  if (live_nodes_ > stats_.peak_nodes) stats_.peak_nodes = live_nodes_;
  return n;
}

Edge Manager::mk(int var, Edge lo, Edge hi) {
  if (lo == hi) return lo;
  // Budget charge. Skipped during reordering: a throw mid-swap would leave
  // the unique tables inconsistent, and reordering is bounded elsewhere.
  // Throwing here is safe otherwise — intermediates of an aborted operation
  // are ref-0 dead roots that the next GC reclaims (OpScope unwinds via RAII).
  if (governor_ != nullptr && !in_reorder_) governor_->charge_mk(live_nodes_ + dead_nodes_);
  if (fault::armed()) fault::point("bdd.mk");
  assert(node_level(lo) > var_to_level_[var] && node_level(hi) > var_to_level_[var] &&
         "children must be strictly below the node's level");
  // Canonical form: the stored then-edge is regular. If the then-child is
  // complemented, store the complemented node and tag the returned edge.
  const bool out_c = hi.is_complemented();
  if (out_c) {
    lo = !lo;
    hi = !hi;
  }
  if (op_depth_ == 0) maybe_auto_gc(lo, hi);
  Subtable& t = subtables_[var];
  const std::size_t b =
      hash_triple(static_cast<std::uint32_t>(var), lo, hi) & (t.buckets.size() - 1);
  for (NodeIndex n = t.buckets[b]; n != kNilIndex; n = nodes_[n].next) {
    const Node& node = nodes_[n];
    if (node.lo == lo && node.hi == hi) {
      ++stats_.unique_hits;
      return Edge::make(n, out_c);
    }
  }
  const NodeIndex n = allocate_node(static_cast<std::uint32_t>(var), lo, hi);
  ref(lo);
  ref(hi);
  // allocate_node counted the new node as live, but it has ref 0 until a
  // parent or handle claims it; track it as dead so GC accounting balances.
  --live_nodes_;
  ++dead_nodes_;
  table_insert(t, n);
  return Edge::make(n, out_c);
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

void Manager::ref(Edge e) {
  Node& node = nodes_[e.index()];
  if (node.ref == kRefSaturated) return;
  if (node.ref == 0) {
    ++live_nodes_;
    --dead_nodes_;
  }
  ++node.ref;
}

void Manager::deref(Edge e) {
  Node& node = nodes_[e.index()];
  if (node.ref == kRefSaturated) return;
  assert(node.ref > 0 && "deref of unreferenced node");
  --node.ref;
  if (node.ref == 0) {
    --live_nodes_;
    ++dead_nodes_;
  }
}

void Manager::garbage_collect() {
  assert(!in_reorder_);
  ++stats_.gc_runs;
  // Process levels top-down: every parent sits at a strictly smaller level
  // than its children, so by the time we scan a level all of its dead parents
  // have already released their edges and one pass suffices.
  for (int level = 0; level < num_vars(); ++level) {
    Subtable& t = subtables_[level_to_var_[level]];
    for (auto& head : t.buckets) {
      NodeIndex* link = &head;
      while (*link != kNilIndex) {
        const NodeIndex n = *link;
        Node& node = nodes_[n];
        if (node.ref == 0) {
          *link = node.next;
          --t.count;
          deref(node.lo);
          deref(node.hi);
          node.var = kTerminalVar;
          node.lo = node.hi = kInvalid;
          free_list_.push_back(n);
          --dead_nodes_;
        } else {
          link = &node.next;
        }
      }
    }
  }
  // Node indices may now be recycled: drop every cached operation result.
  for (auto& e : cache_) e = CacheEntry{};
}

void Manager::maybe_auto_gc(Edge a, Edge b, Edge c) {
  if (op_depth_ != 0 || gc_pause_ != 0 || in_reorder_) return;
  // Derefs are deferred, so dead_nodes_ counts only the *roots* of dead
  // subgraphs — their interiors stay nominally live until the collection
  // cascade reaches them. Fire once the dead roots pass an absolute floor
  // and a slice of the whole population: collection always frees at least
  // the roots, so the O(population) sweep is amortized against them (at
  // most ~kAutoGcPopulationRatio swept nodes per freed node).
  if (dead_nodes_ <= kAutoGcMinDead ||
      dead_nodes_ * kAutoGcPopulationRatio <= live_nodes_ + dead_nodes_)
    return;
  // Pin the immediate arguments: they may themselves be unreferenced fresh
  // results the caller is about to combine.
  ref(a);
  ref(b);
  ref(c);
  garbage_collect();
  deref(a);
  deref(b);
  deref(c);
  ++stats_.gc_auto_runs;
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

std::size_t Manager::unique_table_size() const {
  std::size_t total = 0;
  for (const Subtable& t : subtables_) total += t.count;
  return total;
}

void Manager::publish_stats(const char* prefix) const {
  if (!obs::enabled()) return;
  const std::string p(prefix);
  obs::gauge_set(p + ".live_nodes", static_cast<double>(live_nodes_));
  obs::gauge_set(p + ".dead_nodes", static_cast<double>(dead_nodes_));
  obs::gauge_set(p + ".peak_nodes", static_cast<double>(stats_.peak_nodes));
  obs::gauge_set(p + ".unique_table_size", static_cast<double>(unique_table_size()));
  obs::gauge_set(p + ".num_vars", static_cast<double>(num_vars()));
  obs::gauge_set(p + ".unique_hits", static_cast<double>(stats_.unique_hits));
  obs::gauge_set(p + ".cache_hits", static_cast<double>(stats_.cache_hits));
  obs::gauge_set(p + ".cache_lookups", static_cast<double>(stats_.cache_lookups));
  obs::gauge_set(p + ".cache_hit_rate",
                 stats_.cache_lookups == 0
                     ? 0.0
                     : static_cast<double>(stats_.cache_hits) /
                           static_cast<double>(stats_.cache_lookups));
  obs::gauge_set(p + ".cache_size", static_cast<double>(cache_.size()));
  obs::gauge_set(p + ".cache_resizes", static_cast<double>(stats_.cache_resizes));
  obs::gauge_set(p + ".gc_runs", static_cast<double>(stats_.gc_runs));
  obs::gauge_set(p + ".gc_auto_runs", static_cast<double>(stats_.gc_auto_runs));
  obs::gauge_set(p + ".reorder_swaps", static_cast<double>(stats_.reorder_swaps));
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

void Manager::maybe_grow_cache() {
  if (cache_.size() >= kCacheMaxSize || live_nodes_ * 2 <= cache_.size()) return;
  // Lossy by design: growing discards the current entries (a resize cannot
  // rehash a direct-mapped table in place, and memo loss only costs time).
  std::size_t next = cache_.size();
  while (next < kCacheMaxSize && live_nodes_ * 2 > next) next *= 2;
  cache_.assign(next, CacheEntry{});
  ++stats_.cache_resizes;
}

Edge Manager::cache_lookup(std::uint32_t op, Edge f, Edge g, Edge h) {
  ++stats_.cache_lookups;
  const std::uint64_t k1 = (static_cast<std::uint64_t>(op) << 32) | f.bits();
  const std::uint64_t k2 = (static_cast<std::uint64_t>(g.bits()) << 32) | h.bits();
  std::uint64_t idx = k1 * 0x9e3779b97f4a7c15ULL ^ k2 * 0xc2b2ae3d27d4eb4fULL;
  idx ^= idx >> 29;
  const CacheEntry& e = cache_[idx & (cache_.size() - 1)];
  if (e.key == k1 && e.key2 == k2) {
    ++stats_.cache_hits;
    return e.result;
  }
  return kInvalid;
}

void Manager::cache_insert(std::uint32_t op, Edge f, Edge g, Edge h, Edge r) {
  maybe_grow_cache();
  const std::uint64_t k1 = (static_cast<std::uint64_t>(op) << 32) | f.bits();
  const std::uint64_t k2 = (static_cast<std::uint64_t>(g.bits()) << 32) | h.bits();
  std::uint64_t idx = k1 * 0x9e3779b97f4a7c15ULL ^ k2 * 0xc2b2ae3d27d4eb4fULL;
  idx ^= idx >> 29;
  cache_[idx & (cache_.size() - 1)] = CacheEntry{k1, k2, r};
}

}  // namespace mfd::bdd
