file(REMOVE_RECURSE
  "CMakeFiles/ablation_dc_steps.dir/ablation_dc_steps.cpp.o"
  "CMakeFiles/ablation_dc_steps.dir/ablation_dc_steps.cpp.o.d"
  "ablation_dc_steps"
  "ablation_dc_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dc_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
