# Empty dependencies file for fig3_multiplier.
# This may be replaced when dependencies are built.
