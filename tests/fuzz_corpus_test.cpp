// Regression corpus: every reproducer under tests/fuzz_corpus/ is a shrunk
// fuzz failure from a bug that has since been fixed (or a hand-written spec
// exercising a fixed parser defect). Each file replays through the full
// flow + differential oracle at jobs 1 and jobs 4; a regression flips the
// replay back to FAIL. MFD_FUZZ_CORPUS_DIR is provided by the build
// (tests/CMakeLists.txt) and points at the source-tree corpus directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <vector>

#include "verify/repro.h"

namespace mfd::verify {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir = MFD_FUZZ_CORPUS_DIR;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".repro")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

class FuzzCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpus, ReplaysCleanAtJobs1) {
  OracleOptions opts;
  opts.jobs_override = 1;
  const OracleResult r = replay_repro_file(GetParam(), opts);
  EXPECT_TRUE(r.ok) << GetParam() << " regressed at " << r.failing_point << ": "
                    << r.failure;
  EXPECT_GT(r.points_run, 0);
}

TEST_P(FuzzCorpus, ReplaysCleanAtJobs4) {
  OracleOptions opts;
  opts.jobs_override = 4;
  const OracleResult r = replay_repro_file(GetParam(), opts);
  EXPECT_TRUE(r.ok) << GetParam() << " regressed at " << r.failing_point << ": "
                    << r.failure;
}

std::string corpus_test_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = std::filesystem::path(info.param).stem().string();
  for (char& ch : name)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(All, FuzzCorpus, ::testing::ValuesIn(corpus_files()),
                         corpus_test_name);

// The corpus must never be empty: an accidentally-wrong MFD_FUZZ_CORPUS_DIR
// would otherwise silently skip every replay.
TEST(FuzzCorpusMeta, CorpusIsNonEmpty) { EXPECT_FALSE(corpus_files().empty()); }

}  // namespace
}  // namespace mfd::verify
