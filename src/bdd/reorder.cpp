// Dynamic variable reordering.
//
// The primitive is the classic in-place adjacent-level swap: every node of
// the upper variable that depends on the lower one is rewritten in place to
// carry the lower variable, so parent edges stay valid and node identity
// keeps meaning "this function". With complement edges the four cofactors
// are read through the stored edges' tags (the else-edge may be
// complemented); the rewritten then-edge comes out regular automatically,
// because the (v1=1)-cofactor fed to `mk` is itself a stored then-edge and
// therefore regular — so the swap preserves the canonical form without a
// normalization pass. Sifting (Rudell) and symmetric/group sifting [12,15]
// are built on top of a block-transposition layer: plain sifting is group
// sifting with singleton blocks.
#include <algorithm>
#include <cassert>
#include <numeric>
#include <cstdio>
#include <cstdlib>

#include "bdd/bdd.h"

namespace mfd::bdd {

void Manager::swap_adjacent_levels(int level) {
  assert(level >= 0 && level + 1 < num_vars());
  ++stats_.reorder_swaps;
  in_reorder_ = true;
  const int v0 = level_to_var_[level];
  const int v1 = level_to_var_[level + 1];
  constexpr NodeIndex kNil = 0xFFFFFFFFu;

  // Nodes of v0 whose function depends on v1 must be rewritten; the others
  // simply sink one level, which requires no structural change.
  Subtable& t0 = subtables_[v0];
  std::vector<NodeIndex> dependent;
  for (NodeIndex head : t0.buckets) {
    for (NodeIndex n = head; n != kNil; n = nodes_[n].next) {
      const Edge lo = nodes_[n].lo, hi = nodes_[n].hi;
      const bool dep =
          (!is_terminal(lo) && nodes_[lo.index()].var == static_cast<std::uint32_t>(v1)) ||
          (!is_terminal(hi) && nodes_[hi.index()].var == static_cast<std::uint32_t>(v1));
      if (dep) dependent.push_back(n);
    }
  }
  for (NodeIndex n : dependent) table_remove(t0, n);

  // Update the order before creating nodes so mk()'s level invariant holds.
  level_to_var_[level] = v1;
  level_to_var_[level + 1] = v0;
  var_to_level_[v0] = level + 1;
  var_to_level_[v1] = level;

  for (NodeIndex n : dependent) {
    const Edge lo = nodes_[n].lo, hi = nodes_[n].hi;
    const bool lo_dep =
        !is_terminal(lo) && nodes_[lo.index()].var == static_cast<std::uint32_t>(v1);
    const bool hi_dep =
        !is_terminal(hi) && nodes_[hi.index()].var == static_cast<std::uint32_t>(v1);
    // Cofactors of the node's (regular) function; the else-edge's complement
    // tag distributes onto its children, the then-edge is regular.
    const Edge f00 = lo_dep ? node_lo(lo) : lo;  // f | v0=0, v1=0
    const Edge f01 = lo_dep ? node_hi(lo) : lo;  // f | v0=0, v1=1
    const Edge f10 = hi_dep ? node_lo(hi) : hi;  // f | v0=1, v1=0
    const Edge f11 = hi_dep ? node_hi(hi) : hi;  // f | v0=1, v1=1

    const Edge a = mk(v0, f00, f10);  // f | v1=0
    const Edge b = mk(v0, f01, f11);  // f | v1=1
    // A dependent node cannot collapse: a == b would mean f ignores v1.
    assert(a != b);
    // f11 is a then-cofactor and thus regular, so mk never complements b and
    // the rewritten node keeps the then-regular invariant.
    assert(!b.is_complemented());
    ref(a);
    ref(b);
    deref(lo);
    deref(hi);
    nodes_[n].var = static_cast<std::uint32_t>(v1);
    nodes_[n].lo = a;
    nodes_[n].hi = b;
    table_insert(subtables_[v1], n);
  }
  in_reorder_ = false;
}

void Manager::set_order(const std::vector<int>& order) {
  assert(static_cast<int>(order.size()) == num_vars());
  for (int target = 0; target < num_vars(); ++target) {
    const int v = order[target];
    for (int cur = var_to_level_[v]; cur > target; --cur)
      swap_adjacent_levels(cur - 1);
  }
}

std::size_t Manager::block_width(const std::vector<int>& group) const {
  std::size_t w = 0;
  for (int v : group) w += subtables_[v].count;
  return w;
}

namespace {

/// Transposes two level-adjacent blocks of variables by bubbling each
/// variable of the lower block up through the upper block.
/// `upper` occupies levels [a, a+|upper|), `lower` directly below.
void transpose_blocks(Manager& m, int a, int upper_size, int lower_size) {
  for (int i = 0; i < lower_size; ++i) {
    // The topmost not-yet-moved variable of the lower block sits at level
    // a + upper_size + i - i = a + upper_size (the block above it grew by the
    // i already-moved variables). Bubble it up to level a + i.
    for (int lev = a + upper_size + i - 1; lev >= a + i; --lev)
      m.swap_adjacent_levels(lev);
  }
}

}  // namespace

std::size_t Manager::sift_symmetric(const std::vector<std::vector<int>>& groups,
                                    double max_growth) {
  garbage_collect();
  const int n = num_vars();
  if (n <= 1) return live_node_count();

  // Build the block partition: listed groups plus singletons for the rest.
  std::vector<int> group_of(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<int>> blocks;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    blocks.push_back(g);
    for (int v : g) {
      assert(group_of[v] == -1 && "variable listed in two groups");
      group_of[v] = static_cast<int>(blocks.size()) - 1;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (group_of[v] == -1) {
      blocks.push_back({v});
      group_of[v] = static_cast<int>(blocks.size()) - 1;
    }
  }

  // Make every block contiguous, anchored at its topmost member, preserving
  // the relative order of blocks.
  {
    std::vector<int> new_order;
    std::vector<bool> emitted(blocks.size(), false);
    for (int lev = 0; lev < n; ++lev) {
      const int b = group_of[level_to_var_[lev]];
      if (emitted[b]) continue;
      emitted[b] = true;
      // Emit the block's members in their current relative order.
      std::vector<int> members = blocks[b];
      std::sort(members.begin(), members.end(),
                [&](int x, int y) { return var_to_level_[x] < var_to_level_[y]; });
      blocks[b] = members;
      for (int v : members) new_order.push_back(v);
    }
    set_order(new_order);
  }

  // Level-ordered sequence of block indices.
  std::vector<int> seq;
  for (int lev = 0; lev < n;) {
    const int b = group_of[level_to_var_[lev]];
    seq.push_back(b);
    lev += static_cast<int>(blocks[b].size());
  }
  const int nb = static_cast<int>(seq.size());

  auto pos_in_seq = [&](int b) {
    for (int i = 0; i < nb; ++i)
      if (seq[i] == b) return i;
    return -1;
  };
  auto level_of_pos = [&](int pos) {
    int lev = 0;
    for (int i = 0; i < pos; ++i) lev += static_cast<int>(blocks[seq[i]].size());
    return lev;
  };
  auto transpose_at = [&](int pos) {  // swap seq[pos] and seq[pos+1]
    const int a = level_of_pos(pos);
    transpose_blocks(*this, a, static_cast<int>(blocks[seq[pos]].size()),
                     static_cast<int>(blocks[seq[pos + 1]].size()));
    std::swap(seq[pos], seq[pos + 1]);
    // Swaps strand dead nodes in the subtables; worse, rewriting a dead node
    // allocates children that are counted live (reference counts include
    // dead parents), so garbage silently accumulates as "live" growth and
    // later swaps keep paying for it. Reclaim early and often.
    if (dead_nodes_ > 256 && dead_nodes_ * 4 > live_nodes_) garbage_collect();
  };

  // Sift blocks in decreasing width order.
  std::vector<int> by_width(blocks.size());
  std::iota(by_width.begin(), by_width.end(), 0);
  std::sort(by_width.begin(), by_width.end(), [&](int x, int y) {
    return block_width(blocks[x]) > block_width(blocks[y]);
  });

  const bool sift_trace = std::getenv("MFD_SIFT_TRACE") != nullptr;
  for (int b : by_width) {
    // Start every block from a garbage-free heap so the growth limit below
    // measures real function size, not strandings of the previous block.
    if (dead_nodes_ > 0) garbage_collect();
    const std::size_t start_count = live_node_count();
    if (sift_trace)
      std::fprintf(stderr, "sift block %d: start live=%zu dead=%zu\n", b, live_nodes_, dead_nodes_);
    const std::size_t limit =
        static_cast<std::size_t>(static_cast<double>(start_count) * max_growth) + 16;
    int pos = pos_in_seq(b);
    int best_pos = pos;
    std::size_t best_count = start_count;

    // Down, then up, then settle at the best position seen.
    int lowest = pos;
    while (lowest + 1 < nb && live_node_count() <= limit) {
      transpose_at(lowest);
      ++lowest;
      if (live_node_count() < best_count) {
        best_count = live_node_count();
        best_pos = lowest;
      }
    }
    int cur = lowest;
    while (cur > 0 && live_node_count() <= limit) {
      transpose_at(cur - 1);
      --cur;
      if (live_node_count() < best_count ||
          (live_node_count() == best_count && cur == pos)) {
        best_count = live_node_count();
        best_pos = cur;
      }
    }
    while (cur < best_pos) {
      transpose_at(cur);
      ++cur;
    }
    while (cur > best_pos) {
      transpose_at(cur - 1);
      --cur;
    }
    if (sift_trace)
      std::fprintf(stderr, "  block %d: pos %d -> %d, best_count=%zu, end live=%zu\n",
                   b, pos, best_pos, best_count, live_nodes_);
  }
  garbage_collect();
  return live_node_count();
}

std::size_t Manager::sift(double max_growth) {
  return sift_symmetric({}, max_growth);
}

}  // namespace mfd::bdd
