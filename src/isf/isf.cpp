#include "isf/isf.h"

#include <algorithm>

namespace mfd {

Isf::Isf(bdd::Bdd on, bdd::Bdd care) : on_(on & care), care_(std::move(care)) {}

Isf Isf::completely_specified(bdd::Bdd f) {
  bdd::Manager* m = f.manager();
  return Isf(std::move(f), m->bdd_true());
}

Isf Isf::from_on_dc(const bdd::Bdd& on, const bdd::Bdd& dc) {
  return Isf(on, !dc);
}

Isf Isf::cofactor(int var, bool value) const {
  Isf r;
  r.on_ = on_.cofactor(var, value);
  r.care_ = care_.cofactor(var, value);
  return r;
}

bool Isf::admits(const bdd::Bdd& f) const {
  // on <= f and (f & care) <= on, i.e. f matches on exactly within care.
  return (on_ & !f).is_false() && (f & care_ & !on_).is_false();
}

bool Isf::compatible_with(const Isf& other) const {
  // Completely specified fast path: canonicity makes equality O(1).
  if (care_.is_true() && other.care_.is_true()) return on_ == other.on_;
  // Conflict iff some input is cared for by both with opposite values.
  return ((on_ ^ other.on_) & care_ & other.care_).is_false();
}

Isf Isf::merge(const Isf& other) const {
  Isf r;
  r.on_ = on_ | other.on_;
  r.care_ = care_ | other.care_;
  return r;
}

bdd::Bdd Isf::extension_small() const {
  if (care_.is_true() || care_.is_false()) return on_;
  bdd::Manager& m = *manager();
  const bdd::Bdd restricted = m.wrap(m.restrict_to(on_.id(), care_.id()));
  const std::size_t supp_r = m.support(restricted.id()).size();
  const std::size_t supp_z = m.support(on_.id()).size();
  if (supp_r != supp_z) return supp_r < supp_z ? restricted : on_;
  return restricted.size() <= on_.size() ? restricted : on_;
}

std::vector<int> Isf::support() const {
  bdd::Manager* m = manager();
  std::vector<int> a = m->support(on_.id());
  std::vector<int> b = m->support(care_.id());
  std::vector<int> result;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(result));
  return result;
}

}  // namespace mfd
