#include "sym/sifting.h"

#include <algorithm>

#include "sym/symmetry.h"

namespace mfd {

std::vector<std::vector<int>> symmetric_sift(bdd::Manager& m,
                                             const std::vector<Isf>& fns,
                                             const std::vector<int>& vars) {
  std::vector<std::vector<int>> groups = symmetry_groups(fns, vars);
  m.sift_symmetric(groups);
  for (auto& g : groups)
    std::sort(g.begin(), g.end(),
              [&](int a, int b) { return m.level_of_var(a) < m.level_of_var(b); });
  return groups;
}

}  // namespace mfd
