// Soak tests for the BDD substrate: long randomized operation sequences
// mirrored against a truth-table interpreter, with garbage collection and
// dynamic reordering interleaved at random points. This is the test that
// catches interactions the per-op unit tests cannot (cache invalidation
// across GC, in-place swap vs. live handles, id recycling).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "bdd/bdd.h"
#include "core/errors.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;
using test::Table;

Table table_and(const Table& a, const Table& b) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] && b[i];
  return r;
}
Table table_or(const Table& a, const Table& b) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] || b[i];
  return r;
}
Table table_xor(const Table& a, const Table& b) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] != b[i];
  return r;
}
Table table_not(const Table& a) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = !a[i];
  return r;
}
Table table_ite(const Table& f, const Table& g, const Table& h) {
  Table r(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) r[i] = f[i] ? g[i] : h[i];
  return r;
}
Table table_cof(const Table& a, int v, bool val, int n) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t j =
        val ? (i | (std::size_t{1} << v)) : (i & ~(std::size_t{1} << v));
    r[i] = a[j];
  }
  (void)n;
  return r;
}
Table table_compose(const Table& f, int v, const Table& g) {
  Table r(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    const std::size_t j =
        g[i] ? (i | (std::size_t{1} << v)) : (i & ~(std::size_t{1} << v));
    r[i] = f[j];
  }
  return r;
}

class BddSoak : public ::testing::TestWithParam<int> {};

TEST_P(BddSoak, LongMixedSequenceMatchesInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 101);
  const int n = rng.range(4, 8);
  Manager m(n);

  // Parallel worlds: BDD handles and their truth tables.
  std::vector<Bdd> fns;
  std::vector<Table> tables;
  for (int v = 0; v < n; ++v) {
    fns.push_back(m.var(v));
    Table t(std::size_t{1} << n);
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = (i >> v) & 1;
    tables.push_back(std::move(t));
  }

  const int steps = 300;
  for (int step = 0; step < steps; ++step) {
    const std::size_t count = fns.size();
    auto pick = [&]() { return rng.below(count); };
    switch (rng.below(10)) {
      case 0: {  // and
        const auto a = pick(), b = pick();
        fns.push_back(fns[a] & fns[b]);
        tables.push_back(table_and(tables[a], tables[b]));
        break;
      }
      case 1: {  // or
        const auto a = pick(), b = pick();
        fns.push_back(fns[a] | fns[b]);
        tables.push_back(table_or(tables[a], tables[b]));
        break;
      }
      case 2: {  // xor
        const auto a = pick(), b = pick();
        fns.push_back(fns[a] ^ fns[b]);
        tables.push_back(table_xor(tables[a], tables[b]));
        break;
      }
      case 3: {  // not
        const auto a = pick();
        fns.push_back(!fns[a]);
        tables.push_back(table_not(tables[a]));
        break;
      }
      case 4: {  // ite
        const auto a = pick(), b = pick(), c = pick();
        fns.push_back(m.wrap(m.ite(fns[a].id(), fns[b].id(), fns[c].id())));
        tables.push_back(table_ite(tables[a], tables[b], tables[c]));
        break;
      }
      case 5: {  // cofactor
        const auto a = pick();
        const int v = rng.range(0, n - 1);
        const bool val = rng.flip();
        fns.push_back(fns[a].cofactor(v, val));
        tables.push_back(table_cof(tables[a], v, val, n));
        break;
      }
      case 6: {  // compose
        const auto a = pick(), b = pick();
        const int v = rng.range(0, n - 1);
        fns.push_back(m.wrap(m.compose(fns[a].id(), v, fns[b].id())));
        tables.push_back(table_compose(tables[a], v, tables[b]));
        break;
      }
      case 7: {  // drop some handles, then GC
        for (int d = 0; d < 5 && fns.size() > static_cast<std::size_t>(n) + 2; ++d) {
          const std::size_t victim =
              static_cast<std::size_t>(n) + rng.below(fns.size() - static_cast<std::size_t>(n));
          fns.erase(fns.begin() + static_cast<std::ptrdiff_t>(victim));
          tables.erase(tables.begin() + static_cast<std::ptrdiff_t>(victim));
        }
        m.garbage_collect();
        break;
      }
      case 8: {  // random adjacent swap burst
        for (int s = 0; s < 4; ++s) m.swap_adjacent_levels(rng.range(0, n - 2));
        break;
      }
      case 9: {  // full sift
        if (step % 3 == 0) m.sift();
        break;
      }
    }
  }

  // Final deep check of every surviving function.
  for (std::size_t i = 0; i < fns.size(); ++i)
    EXPECT_EQ(test::table_from_bdd(m, fns[i].id(), n), tables[i]) << "function " << i;
  // And the manager's bookkeeping survived: after GC, the live nodes are
  // exactly the referenced closure (dag_size additionally counts the shared
  // terminal, which is not a "live" allocation).
  m.garbage_collect();
  std::vector<bdd::Edge> roots;
  for (const Bdd& f : fns) roots.push_back(f.id());
  const std::size_t closure = m.dag_size(roots);
  const std::size_t live = m.live_node_count();
  EXPECT_GE(closure, live);
  EXPECT_LE(closure, live + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddSoak, ::testing::Range(0, 10));

TEST(BddSoak, ManagerScalesThroughGrowthAndCollapse) {
  // Build a large structure, drop it, rebuild: the free list must recycle
  // and the unique tables must not degrade.
  Manager m(16);
  const std::size_t baseline = m.live_node_count();
  for (int round = 0; round < 5; ++round) {
    {
      Rng rng(static_cast<std::uint64_t>(round));
      Bdd acc = m.bdd_false();
      for (int c = 0; c < 200; ++c) {
        Bdd cube = m.bdd_true();
        for (int v = 0; v < 16; ++v)
          if (rng.chance(1, 4)) cube &= m.literal(v, rng.flip());
        acc |= cube;
      }
      EXPECT_GT(m.live_node_count(), baseline);
    }
    m.garbage_collect();
    EXPECT_EQ(m.live_node_count(), baseline) << "round " << round;
  }
}

TEST(BddSoak, QuantifierIdentities) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.range(3, 7);
    Manager m(n);
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd g = test::bdd_from_table(m, test::random_table(rng, n), n);
    const int v = rng.range(0, n - 1);
    // De Morgan for quantifiers.
    EXPECT_EQ(m.wrap(m.exists((!f).id(), {v})), !m.wrap(m.forall(f.id(), {v})));
    // Quantifying all variables yields a constant: satisfiability.
    std::vector<int> all;
    for (int i = 0; i < n; ++i) all.push_back(i);
    EXPECT_EQ(m.exists(f.id(), all), f.is_false() ? bdd::kFalse : bdd::kTrue);
    // exists distributes over or.
    EXPECT_EQ(m.exists((f | g).id(), {v}),
              (m.wrap(m.exists(f.id(), {v})) | m.wrap(m.exists(g.id(), {v}))).id());
  }
}

// ---------------------------------------------------------------------------
// Full-surface differential stress: every public operation — including O(1)
// negation, reordering, and inter-manager transfer — mirrored against the
// truth-table interpreter, on up to 10 variables. Complement edges touch
// every code path, so this is the canonicity gauntlet for the tagged-edge
// representation.
// ---------------------------------------------------------------------------

Table table_quant(const Table& a, int v, bool existential) {
  Table r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool lo = a[i & ~(std::size_t{1} << v)];
    const bool hi = a[i | (std::size_t{1} << v)];
    r[i] = existential ? (lo || hi) : (lo && hi);
  }
  return r;
}

Table table_permute(const Table& a, const std::vector<int>& perm, int n) {
  // g = permute(f, perm) renames var i of f to perm[i]:
  // g(y) = f(x) with x_i = y_perm[i].
  Table r(a.size());
  for (std::size_t j = 0; j < r.size(); ++j) {
    std::size_t i = 0;
    for (int v = 0; v < n; ++v)
      if ((j >> perm[static_cast<std::size_t>(v)]) & 1) i |= std::size_t{1} << v;
    r[j] = a[i];
  }
  return r;
}

std::size_t table_count(const Table& a) {
  std::size_t c = 0;
  for (const bool b : a) c += b ? 1 : 0;
  return c;
}

class BddDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BddDifferential, EveryPublicOpMatchesInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int n = rng.range(5, 10);
  Manager m(n);

  std::vector<Bdd> fns;
  std::vector<Table> tables;
  for (int v = 0; v < n; ++v) {
    fns.push_back(m.var(v));
    Table t(std::size_t{1} << n);
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = (i >> v) & 1;
    tables.push_back(std::move(t));
  }
  auto push = [&](Bdd f, Table t) {
    fns.push_back(std::move(f));
    tables.push_back(std::move(t));
  };

  const int steps = 250;
  for (int step = 0; step < steps; ++step) {
    const std::size_t count = fns.size();
    auto pick = [&]() { return rng.below(count); };
    switch (rng.below(14)) {
      case 0: {  // and / or
        const auto a = pick(), b = pick();
        if (rng.flip())
          push(fns[a] & fns[b], table_and(tables[a], tables[b]));
        else
          push(fns[a] | fns[b], table_or(tables[a], tables[b]));
        break;
      }
      case 1: {  // xor
        const auto a = pick(), b = pick();
        push(fns[a] ^ fns[b], table_xor(tables[a], tables[b]));
        break;
      }
      case 2: {  // negation: O(1), allocation-free, node-sharing
        const auto a = pick();
        const std::size_t live_before = m.live_node_count();
        Bdd g = !fns[a];
        EXPECT_EQ(m.live_node_count(), live_before) << "apply_not allocated";
        EXPECT_EQ(g.id(), !fns[a].id());
        EXPECT_EQ(m.dag_size({fns[a].id(), g.id()}), m.dag_size(fns[a].id()))
            << "f and !f must share every node";
        push(std::move(g), table_not(tables[a]));
        break;
      }
      case 3: {  // ite
        const auto a = pick(), b = pick(), c = pick();
        push(m.wrap(m.ite(fns[a].id(), fns[b].id(), fns[c].id())),
             table_ite(tables[a], tables[b], tables[c]));
        break;
      }
      case 4: {  // cofactor / cofactor_cube
        const auto a = pick();
        if (rng.flip()) {
          const int v = rng.range(0, n - 1);
          const bool val = rng.flip();
          push(fns[a].cofactor(v, val), table_cof(tables[a], v, val, n));
        } else {
          std::vector<std::pair<int, bool>> cube;
          Table t = tables[a];
          for (int v = 0; v < n; ++v)
            if (rng.chance(1, 4)) {
              const bool val = rng.flip();
              cube.emplace_back(v, val);
              t = table_cof(t, v, val, n);
            }
          push(m.wrap(m.cofactor_cube(fns[a].id(), cube)), std::move(t));
        }
        break;
      }
      case 5: {  // compose
        const auto a = pick(), b = pick();
        const int v = rng.range(0, n - 1);
        push(m.wrap(m.compose(fns[a].id(), v, fns[b].id())),
             table_compose(tables[a], v, tables[b]));
        break;
      }
      case 6: {  // exists / forall over one or two variables
        const auto a = pick();
        const bool ex = rng.flip();
        std::vector<int> vars{rng.range(0, n - 1)};
        if (rng.flip()) vars.push_back(rng.range(0, n - 1));
        Table t = tables[a];
        for (std::size_t k = 0; k < vars.size(); ++k) {
          // Quantifying the same variable twice is idempotent, matching the
          // manager's one-variable-at-a-time loop.
          t = table_quant(t, vars[k], ex);
        }
        push(m.wrap(ex ? m.exists(fns[a].id(), vars) : m.forall(fns[a].id(), vars)),
             std::move(t));
        break;
      }
      case 7: {  // restrict: r must agree with f on the care set
        const auto a = pick(), c = pick();
        if (fns[c].is_false()) break;
        const Bdd r = m.wrap(m.restrict_to(fns[a].id(), fns[c].id()));
        const Table rt = test::table_from_bdd(m, r.id(), n);
        for (std::size_t i = 0; i < rt.size(); ++i)
          ASSERT_EQ(rt[i] && tables[c][i], tables[a][i] && tables[c][i])
              << "restrict left the interval at minterm " << i;
        push(r, rt);  // exact table: don't-care points are pinned now
        break;
      }
      case 8: {  // permute / swap_vars
        const auto a = pick();
        if (rng.flip()) {
          std::vector<int> perm(static_cast<std::size_t>(n));
          std::iota(perm.begin(), perm.end(), 0);
          for (int v = n - 1; v > 0; --v)
            std::swap(perm[static_cast<std::size_t>(v)], perm[rng.below(static_cast<std::size_t>(v) + 1)]);
          push(m.wrap(m.permute(fns[a].id(), perm)), table_permute(tables[a], perm, n));
        } else {
          const int va = rng.range(0, n - 1), vb = rng.range(0, n - 1);
          std::vector<int> perm(static_cast<std::size_t>(n));
          std::iota(perm.begin(), perm.end(), 0);
          perm[static_cast<std::size_t>(va)] = vb;
          perm[static_cast<std::size_t>(vb)] = va;
          push(m.wrap(m.swap_vars(fns[a].id(), va, vb)),
               table_permute(tables[a], perm, n));
        }
        break;
      }
      case 9: {  // queries: eval, sat_count, support, pick_one
        const auto a = pick();
        for (int trial = 0; trial < 4; ++trial) {
          std::size_t idx = 0;
          std::vector<bool> assignment(static_cast<std::size_t>(n));
          for (int v = 0; v < n; ++v) {
            assignment[static_cast<std::size_t>(v)] = rng.flip();
            if (assignment[static_cast<std::size_t>(v)]) idx |= std::size_t{1} << v;
          }
          ASSERT_EQ(m.eval(fns[a].id(), assignment), tables[a][idx]);
        }
        ASSERT_EQ(m.sat_count(fns[a].id(), n),
                  static_cast<double>(table_count(tables[a])));
        const std::vector<int> supp = m.support(fns[a].id());
        for (int v = 0; v < n; ++v) {
          bool depends = false;
          for (std::size_t i = 0; i < tables[a].size() && !depends; ++i)
            depends = tables[a][i] != tables[a][i ^ (std::size_t{1} << v)];
          ASSERT_EQ(std::binary_search(supp.begin(), supp.end(), v), depends)
              << "support mismatch on x" << v;
        }
        if (!fns[a].is_false()) {
          const std::vector<bool> sat = m.pick_one(fns[a].id());
          std::size_t idx = 0;
          for (int v = 0; v < n; ++v)
            if (sat[static_cast<std::size_t>(v)]) idx |= std::size_t{1} << v;
          ASSERT_TRUE(tables[a][idx]) << "pick_one returned a non-minterm";
        }
        break;
      }
      case 10: {  // drop handles, GC
        for (int d = 0; d < 6 && fns.size() > static_cast<std::size_t>(n) + 2; ++d) {
          const std::size_t victim =
              static_cast<std::size_t>(n) + rng.below(fns.size() - static_cast<std::size_t>(n));
          fns.erase(fns.begin() + static_cast<std::ptrdiff_t>(victim));
          tables.erase(tables.begin() + static_cast<std::ptrdiff_t>(victim));
        }
        if (rng.flip()) m.garbage_collect();
        break;
      }
      case 11: {  // adjacent swaps
        for (int s = 0; s < 4; ++s) m.swap_adjacent_levels(rng.range(0, n - 2));
        break;
      }
      case 12: {  // set_order to a random permutation / sift
        if (step % 5 == 0) {
          std::vector<int> order(static_cast<std::size_t>(n));
          std::iota(order.begin(), order.end(), 0);
          for (int v = n - 1; v > 0; --v)
            std::swap(order[static_cast<std::size_t>(v)], order[rng.below(static_cast<std::size_t>(v) + 1)]);
          m.set_order(order);
        } else if (step % 7 == 0) {
          m.sift();
        }
        break;
      }
      case 13: {  // transfer round-trip through a second manager
        if (step % 4 != 0) break;
        const auto a = pick();
        Manager dst(n);
        std::vector<int> order(static_cast<std::size_t>(n));
        std::iota(order.begin(), order.end(), 0);
        for (int v = n - 1; v > 0; --v)
          std::swap(order[static_cast<std::size_t>(v)], order[rng.below(static_cast<std::size_t>(v) + 1)]);
        dst.set_order(order);
        const Bdd moved = dst.wrap(dst.transfer_from(m, fns[a].id()));
        ASSERT_EQ(test::table_from_bdd(dst, moved.id(), n), tables[a]);
        push(m.wrap(m.transfer_from(dst, moved.id())), tables[a]);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < fns.size(); ++i)
    EXPECT_EQ(test::table_from_bdd(m, fns[i].id(), n), tables[i]) << "function " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddDifferential, ::testing::Range(0, 8));

TEST(BddComplementEdges, ReactiveGcFiresUnderChurn) {
  // Build and drop large disjunctions without ever calling garbage_collect:
  // once the dead population passes the threshold, mk/op entry must reclaim.
  Manager m(16);
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    Bdd acc = m.bdd_false();
    for (int c = 0; c < 120; ++c) {
      Bdd cube = m.bdd_true();
      for (int v = 0; v < 16; ++v)
        if (rng.chance(1, 3)) cube &= m.literal(v, rng.flip());
      acc |= cube;
    }
    // acc and its intermediates die here.
  }
  EXPECT_GT(m.stats().gc_auto_runs, 0u) << "reactive GC never fired";
  // Reactive GC must not have corrupted anything a full check would catch.
  const Bdd probe = m.var(3) ^ m.var(7);
  EXPECT_EQ(m.sat_count(probe.id(), 16), std::ldexp(1.0, 15));
}

TEST(BddPreconditions, RestrictWithFalseCareThrowsTypedError) {
  Manager m(3);
  const Bdd f = m.var(0);
  try {
    (void)m.restrict_to(f.id(), bdd::kFalse);
    FAIL() << "restrict_to(care=0) did not throw";
  } catch (const mfd::BddError& e) {
    EXPECT_NE(std::string(e.what()).find("care set is constant false"), std::string::npos);
  }
  // The manager must remain fully usable after the throw.
  const Bdd g = m.var(1) & f;
  EXPECT_EQ(m.restrict_to(g.id(), m.bdd_true().id()), g.id());
  EXPECT_EQ(m.sat_count(g.id(), 3), 2.0);
}

TEST(BddPreconditions, PickOneOnFalseThrowsTypedError) {
  Manager m(3);
  EXPECT_THROW((void)m.pick_one(bdd::kFalse), mfd::BddError);
  // Post-throw probe: pick_one still works on satisfiable functions.
  const Bdd f = m.var(0) ^ m.var(2);
  const std::vector<bool> one = m.pick_one(f.id());
  ASSERT_EQ(one.size(), 3u);
  EXPECT_NE(one[0], one[2]);
}

TEST(BddSoak, TransferUnderHeavyReordering) {
  Rng rng(555);
  Manager src(8);
  std::vector<Bdd> fns;
  std::vector<Table> tables;
  for (int i = 0; i < 6; ++i) {
    tables.push_back(test::random_table(rng, 8));
    fns.push_back(test::bdd_from_table(src, tables.back(), 8));
  }
  src.sift();

  Manager dst(8);
  std::vector<int> order{7, 6, 5, 4, 3, 2, 1, 0};
  dst.set_order(order);
  for (int i = 0; i < 6; ++i) {
    const Bdd moved = dst.wrap(dst.transfer_from(src, fns[static_cast<std::size_t>(i)].id()));
    EXPECT_EQ(test::table_from_bdd(dst, moved.id(), 8), tables[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace mfd
