// Berkeley PLA (espresso) format reader/writer.
//
// This is the on-ramp for users who have the real MCNC two-level benchmark
// files: parse_pla + pla_to_isfs yields exactly the multi-output ISF the
// synthesizer consumes, including the explicit don't-care information of
// type-fd/fr PLAs.
#pragma once

#include <string>
#include <vector>

#include "isf/isf.h"

namespace mfd::io {

/// Raw contents of a PLA file.
struct PlaFile {
  int num_inputs = 0;
  int num_outputs = 0;
  /// "f", "fd" (default), "fr", or "fdr": which planes the 0/-/~ entries mean.
  std::string type = "fd";
  std::vector<std::string> input_names;   // may be empty
  std::vector<std::string> output_names;  // may be empty
  /// Cubes as (input part, output part) strings, characters {0,1,-} and
  /// {0,1,-,~} respectively ('2' is normalized to '-' during parsing).
  std::vector<std::pair<std::string, std::string>> cubes;
};

/// Parses PLA text. Throws mfd::ParseError — carrying `filename` and the
/// 1-based line number of the offending line — on malformed input.
PlaFile parse_pla(const std::string& text, const std::string& filename = "<pla>");

/// Serializes back to PLA text.
std::string write_pla(const PlaFile& pla);

/// Builds a PLA from multi-output ISFs: each output's cube list is the
/// Minato-Morreale irredundant cover of [on, on | dc] over the first
/// `num_inputs` manager variables (default: all). The result is an fd-type
/// PLA whose dc information has been *spent* on cover minimization.
PlaFile pla_from_isfs(const std::vector<Isf>& fns, int num_inputs = -1,
                      const std::vector<std::string>& input_names = {},
                      const std::vector<std::string>& output_names = {});

/// Builds a PLA that preserves each output's care set *exactly*: an fr-type
/// file listing irredundant covers of both the on-set ('1' entries) and the
/// off-set ('0' entries), with '~' (no information) everywhere else. Unlike
/// pla_from_isfs, a PLA → ISF → PLA → ISF round trip through this writer is
/// the identity on (on, care) — the fuzz harness depends on that.
PlaFile pla_from_isfs_exact(const std::vector<Isf>& fns, int num_inputs = -1,
                            const std::vector<std::string>& input_names = {},
                            const std::vector<std::string>& output_names = {});

/// Interprets the cubes as multi-output ISFs over manager variables
/// 0..num_inputs-1 (the manager is grown as needed). Espresso semantics per
/// type:
///   '1'      adds the cube to the output's on-set (all types),
///   '-'/'2'  adds it to the don't-care set for fd/fdr; no meaning for f/fr,
///   '0'      adds it to the off-set for fr/fdr; no meaning for f/fd,
///   '~'      no meaning at all.
/// The unlisted plane is the complement of the listed ones: f/fd treat
/// inputs covered by no cube as off; fr/fdr treat them as don't-care.
std::vector<Isf> pla_to_isfs(const PlaFile& pla, bdd::Manager& m);

}  // namespace mfd::io
