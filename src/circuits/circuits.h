// Benchmark function generators.
//
// The paper evaluates on MCNC/ISCAS benchmarks, whose PLA/BLIF files are not
// shipped in this offline environment. Two kinds of stand-ins (see
// DESIGN.md, "Substitutions"):
//  * exact generators for rows with a public functional definition
//    (rd53/rd73/rd84, 9sym, z4ml, count-class arithmetic, C499-class
//    error correction, adders, partial multipliers);
//  * deterministic synthetic functions with the same I/O counts and
//    PLA-like cube structure for rows that exist only as PLA files
//    (misex*, duke2, sao2, vg2, b9, apex7, e64-class, C880-class, rot-class).
// A user with the real MCNC files can load them through mfd::io instead.
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace mfd::circuits {

/// A multi-output completely specified benchmark function.
struct Benchmark {
  std::string name;
  int num_inputs = 0;
  std::vector<bdd::Bdd> outputs;  ///< over manager variables 0..num_inputs-1
};

/// Ensures the manager has at least n variables.
void ensure_vars(bdd::Manager& m, int n);

/// Sets a variable order that round-robins across the given groups (classic
/// operand interleaving: without it, word-level functions like adders have
/// exponential BDDs). Variables of the manager not mentioned keep their
/// relative order below the interleaved block. Cheap when called before any
/// nodes exist, which is how the generators use it.
void interleave_order(bdd::Manager& m, const std::vector<std::vector<int>>& groups);

// ---- word-level helpers (BDD vectors, little endian) -------------------
using Word = std::vector<bdd::Bdd>;

/// The w variables starting at `first` as a word.
Word input_word(bdd::Manager& m, int first, int w);
/// a + b (+cin), result has max(|a|,|b|)+1 bits.
Word add_words(const Word& a, const Word& b, bdd::Bdd cin = {});
/// One's-counter: binary count of the given bits.
Word count_ones(bdd::Manager& m, const std::vector<bdd::Bdd>& bits);
/// a * b (schoolbook), result |a|+|b| bits.
Word multiply_words(const Word& a, const Word& b);
/// Word equal to a constant.
bdd::Bdd word_equals(const Word& a, std::uint64_t value);

// ---- named generators ----------------------------------------------------

/// n-bit adder: inputs a0..a(n-1), b0..b(n-1); outputs n sum bits + carry.
Benchmark adder(bdd::Manager& m, int n);

/// Partial multiplier pm_n of Section 6.1: the n*n partial products are the
/// *inputs* p(i,j) (variable i*n+j, weight i+j); outputs the 2n product bits.
Benchmark partial_multiplier(bdd::Manager& m, int n);

/// n x n multiplier (operands as inputs).
Benchmark multiplier(bdd::Manager& m, int n);

/// Builds a named benchmark of the paper's tables; aborts on unknown names.
Benchmark build(const std::string& name, bdd::Manager& m);

/// Names of all Table-1/Table-2 rows available from build().
std::vector<std::string> table_rows();

}  // namespace mfd::circuits
