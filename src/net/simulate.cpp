#include "net/simulate.h"

#include <sstream>

#include "util/rng.h"

namespace mfd::net {

std::vector<bdd::Bdd> output_bdds(const LutNetwork& net, bdd::Manager& m,
                                  const std::vector<int>& pi_vars) {
  std::vector<bdd::Bdd> signal(static_cast<std::size_t>(net.num_primary_inputs() + net.num_luts()));
  for (int i = 0; i < net.num_primary_inputs(); ++i)
    signal[static_cast<std::size_t>(i)] = m.var(pi_vars[static_cast<std::size_t>(i)]);

  auto signal_bdd = [&](int s) {
    if (s == kConst0) return m.bdd_false();
    if (s == kConst1) return m.bdd_true();
    return signal[static_cast<std::size_t>(s)];
  };

  for (int i = 0; i < net.num_luts(); ++i) {
    const Lut& lut = net.lut(i);
    bdd::Bdd f = m.bdd_false();
    for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
      if (!lut.table[idx]) continue;
      bdd::Bdd minterm = m.bdd_true();
      for (std::size_t j = 0; j < lut.inputs.size(); ++j) {
        const bdd::Bdd in = signal_bdd(lut.inputs[j]);
        minterm &= ((idx >> j) & 1) ? in : !in;
      }
      f |= minterm;
    }
    signal[static_cast<std::size_t>(net.lut_signal(i))] = f;
  }

  std::vector<bdd::Bdd> result;
  result.reserve(net.outputs().size());
  for (int s : net.outputs()) result.push_back(signal_bdd(s));
  return result;
}

bool check_exact(const LutNetwork& net, const std::vector<Isf>& spec,
                 const std::vector<int>& pi_vars, std::string* error) {
  if (spec.size() != static_cast<std::size_t>(net.num_outputs())) {
    if (error) *error = "output count mismatch";
    return false;
  }
  bdd::Manager& m = *spec.front().manager();
  const std::vector<bdd::Bdd> outs = output_bdds(net, m, pi_vars);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (spec[i].admits(outs[i])) continue;
    if (error) {
      const bdd::Bdd bad = (spec[i].on() ^ outs[i]) & spec[i].care();
      const auto witness = m.pick_one(bad.id());
      std::ostringstream os;
      os << "output " << i << " disagrees with spec on care set; witness:";
      for (std::size_t v = 0; v < witness.size(); ++v)
        if (witness[v]) os << " x" << v;
      *error = os.str();
    }
    return false;
  }
  return true;
}

bool check_by_simulation(const LutNetwork& net, const std::vector<Isf>& spec,
                         const std::vector<int>& pi_vars, int exhaustive_limit,
                         int samples, std::uint64_t seed, std::string* error) {
  if (spec.size() != static_cast<std::size_t>(net.num_outputs())) {
    if (error) *error = "output count mismatch";
    return false;
  }
  bdd::Manager& m = *spec.front().manager();
  const int n = net.num_primary_inputs();
  std::vector<bool> pi(static_cast<std::size_t>(n));
  std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);

  auto run_vector = [&]() {
    for (int i = 0; i < n; ++i) assignment[static_cast<std::size_t>(pi_vars[static_cast<std::size_t>(i)])] = pi[static_cast<std::size_t>(i)];
    const std::vector<bool> got = net.evaluate(pi);
    for (std::size_t o = 0; o < spec.size(); ++o) {
      if (!m.eval(spec[o].care().id(), assignment)) continue;  // don't care
      if (got[o] != m.eval(spec[o].on().id(), assignment)) {
        if (error) {
          std::ostringstream os;
          os << "output " << o << " wrong under vector";
          for (int i = 0; i < n; ++i) os << (pi[static_cast<std::size_t>(i)] ? '1' : '0');
          *error = os.str();
        }
        return false;
      }
    }
    return true;
  };

  if (n <= exhaustive_limit) {
    for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
      for (int i = 0; i < n; ++i) pi[static_cast<std::size_t>(i)] = (v >> i) & 1;
      if (!run_vector()) return false;
    }
    return true;
  }
  Rng rng(seed);
  for (int s = 0; s < samples; ++s) {
    for (int i = 0; i < n; ++i) pi[static_cast<std::size_t>(i)] = rng.flip();
    if (!run_vector()) return false;
  }
  return true;
}

}  // namespace mfd::net
