// The sweep supervisor: crash isolation (super/proc.h) + durable journaling
// (super/journal.h) + retry-with-backoff (super/retry.h) + concurrent row
// scheduling (super/scheduler.h) for long many-row sweeps.
// docs/ROBUSTNESS.md §"Sweep supervision" is the handbook.
//
// One Supervisor instance drives one sweep. Each row is a keyed callback
// returning its serialized result record; run_row
//
//   1. replays the journaled outcome when resuming and the key is already
//      terminal (the row is NOT re-run — completed work survives a SIGKILL
//      of the supervisor itself),
//   2. otherwise forks the row under the watchdog, retrying abnormal deaths
//      per the policy (backoff + budget-tightening rungs),
//   3. journals the terminal outcome with fsync before returning, so the
//      sweep's progress frontier is always durable.
//
// Concurrency: with sweep_jobs > 1 the supervisor runs that many row
// children at once. Rows registered ahead of time with plan_row make
// progress in the background while run_row blocks on its own key; results
// still come back in run_row call order, so printed tables and --stats-json
// are bit-identical to a sequential sweep (see super/scheduler.h for the
// determinism and fault-latching contract under concurrency).
//
// Fault-injection bookkeeping: children inherit the armed fault spec but
// count site hits from zero (hit counts are per row under supervision — see
// core/faultinject.h). To keep `site@k` rules one-shot across the *sweep*,
// every firing child reports through its own private fired file (set via
// MFD_FAULT_FIRED_FILE in the forked child only — the parent's environment
// is never modified) and the parent latches the fired rules at reap time.
//
// Observability (parent-process counters, surfaced in --stats-json):
//   super.spawned          children forked
//   super.retries          re-runs after an abnormal death
//   super.crashes          child deaths classified crash
//   super.timeouts         watchdog SIGTERM/SIGKILL escalations (no record)
//   super.soft_timeouts    rows that delivered after the SIGTERM wind-down
//   super.oom_kills        child deaths classified oom
//   super.resumed_rows     rows replayed from the journal instead of re-run
//   super.failed_rows      rows journaled as failed (typed error, or retries
//                          exhausted)
//   super.admission_waits  spawns deferred by the --sweep-rss-mb cap
//   super.concurrent_peak  (gauge) most row children alive at once
#pragma once

#include <string>

#include "super/journal.h"
#include "super/proc.h"
#include "super/retry.h"
#include "super/scheduler.h"

namespace mfd::super {

struct SupervisorOptions {
  /// Journal file. Required: every outcome is journaled.
  std::string journal_path;
  /// Replay an existing journal instead of truncating it. When the file does
  /// not exist yet, a fresh journal is created (so one command line serves
  /// both the first run and every rerun) — with a loud stderr warning, and
  /// recovery().fresh_despite_resume set, so a typo'd path is visible.
  bool resume = false;
  /// Recorded in the journal header (diagnostics only).
  std::string binary;
  RetryPolicy retry;
  ChildLimits limits;
  /// Row children allowed to run concurrently (--sweep-jobs, >= 1).
  int sweep_jobs = 1;
  /// Summed-RSS admission cap in MiB (--sweep-rss-mb); 0 = off.
  double rss_cap_mb = 0.0;
};

class Supervisor {
 public:
  /// Creates or (resume) recovers the journal. Throws mfd::Error on an
  /// unusable journal (interior corruption, version mismatch, I/O failure).
  explicit Supervisor(const SupervisorOptions& opts);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Registers a row for background execution ahead of its run_row call, so
  /// sweep_jobs children can overlap. Journaled keys are skipped (run_row
  /// will replay them); duplicate registrations are ignored. Planning is
  /// optional — an unplanned run_row key is enqueued on the spot.
  void plan_row(const std::string& key, RowFn fn);

  /// Returns `key`'s terminal outcome: replayed from the journal when
  /// resuming, otherwise run in a supervised child (retrying per the
  /// policy), pumping every other planned row meanwhile. `fn` receives the
  /// attempt's budget-tightening rung ({} for the first attempt) and
  /// returns the row's serialized record.
  RowOutcome run_row(const std::string& key, const RowFn& fn);

  /// What journal recovery had to do (torn-tail diagnostics).
  const RecoveryInfo& recovery() const { return recovery_; }
  const Journal& journal() const { return journal_; }

 private:
  SupervisorOptions opts_;
  RecoveryInfo recovery_;
  Journal journal_;
  Scheduler scheduler_;
};

}  // namespace mfd::super
