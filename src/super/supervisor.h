// The sweep supervisor: crash isolation (super/proc.h) + durable journaling
// (super/journal.h) + retry-with-backoff (super/retry.h) for long many-row
// sweeps. docs/ROBUSTNESS.md §"Sweep supervision" is the handbook.
//
// One Supervisor instance drives one sweep. Each row is a keyed callback
// returning its serialized result record; run_row
//
//   1. replays the journaled outcome when resuming and the key is already
//      terminal (the row is NOT re-run — completed work survives a SIGKILL
//      of the supervisor itself),
//   2. otherwise forks the row under the watchdog, retrying abnormal deaths
//      per the policy (backoff + budget-tightening rungs),
//   3. journals the terminal outcome with fsync before returning, so the
//      sweep's progress frontier is always durable.
//
// Fault-injection bookkeeping: children inherit the armed fault spec but
// count site hits from zero (hit counts are per row under supervision — see
// core/faultinject.h). To keep `site@k` rules one-shot across the *sweep*,
// every firing child reports through MFD_FAULT_FIRED_FILE and the parent
// latches the fired rule before the next fork, so a crash-kind fault takes
// down exactly one child and the retry runs clean.
//
// Observability (parent-process counters, surfaced in --stats-json):
//   super.spawned        children forked
//   super.retries        re-runs after an abnormal death
//   super.crashes        child deaths classified crash
//   super.timeouts       watchdog SIGTERM/SIGKILL escalations (no record)
//   super.soft_timeouts  rows that delivered after the SIGTERM wind-down
//   super.oom_kills      child deaths classified oom
//   super.resumed_rows   rows replayed from the journal instead of re-run
//   super.failed_rows    rows journaled as failed (typed error, or retries
//                        exhausted)
#pragma once

#include <functional>
#include <string>

#include "super/journal.h"
#include "super/proc.h"
#include "super/retry.h"

namespace mfd::super {

struct SupervisorOptions {
  /// Journal file. Required: every outcome is journaled.
  std::string journal_path;
  /// Replay an existing journal instead of truncating it. When the file does
  /// not exist yet, a fresh journal is created (so one command line serves
  /// both the first run and every rerun).
  bool resume = false;
  /// Recorded in the journal header (diagnostics only).
  std::string binary;
  RetryPolicy retry;
  ChildLimits limits;
};

/// The terminal outcome of one row, whether run or replayed.
struct RowOutcome {
  std::string key;
  bool from_journal = false;  ///< replayed: the row callback never ran
  std::string status;         ///< "ok" | "failed"
  ChildStatus last_status = ChildStatus::kOk;
  int attempts = 0;
  std::string payload;  ///< the row's result record (empty when failed)
  std::string reason;   ///< failure detail when status == "failed"

  bool ok() const { return status == "ok"; }
};

class Supervisor {
 public:
  /// Creates or (resume) recovers the journal. Throws mfd::Error on an
  /// unusable journal (interior corruption, version mismatch, I/O failure).
  explicit Supervisor(const SupervisorOptions& opts);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Runs `fn` in a supervised child (unless journaled), retrying per the
  /// policy. `fn` receives the attempt's budget-tightening rung ({} for the
  /// first attempt) and returns the row's serialized record.
  RowOutcome run_row(const std::string& key,
                     const std::function<std::string(const RetryRung&)>& fn);

  /// What journal recovery had to do (torn-tail diagnostics).
  const RecoveryInfo& recovery() const { return recovery_; }
  const Journal& journal() const { return journal_; }

 private:
  void latch_child_fault_firings();

  SupervisorOptions opts_;
  RecoveryInfo recovery_;
  Journal journal_;
  std::string fired_file_;
};

}  // namespace mfd::super
