// mfd_synth: command-line front end for the full synthesis flow.
//
//   mfd_synth [options] <input.{pla,blif}|benchmark-name>
//
//   --lut <k>        LUT fanin bound (default 5; 2 = two-input gates)
//   --flow <name>    mulop-dc (default) | mulopII | noshare-nodc
//   --out <file>     write the synthesized network as BLIF (default: stdout
//                    summary only)
//   --out-pla <file> write the *specification* as a two-level PLA (ISOP
//                    cover; don't cares are spent on cover minimization)
//   --dot <file>     write the specification BDDs as graphviz
//   --no-verify      skip the exact post-synthesis check
//   --seed <n>       heuristic tie-breaking seed
//
// Inputs: a Berkeley PLA file (don't cares honored), a combinational BLIF
// model, or the name of one of the built-in benchmark generators
// (e.g. rd84, alu2 — see circuits::table_rows()).
//
// Every run carries a full observability report (docs/OBSERVABILITY.md):
// r.report has the phase tree, the cache.* hit/miss counters of the
// memoization layer (docs/CACHING.md), and r.degradation records any
// budget-driven ladder downgrades (docs/ROBUSTNESS.md). The bench binaries
// expose the same data as JSON via --stats-json and control the caches via
// --cache-mb / --no-cache.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/synthesizer.h"
#include "io/blif.h"
#include "io/pla.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: mfd_synth [--lut k] [--flow mulop-dc|mulopII|noshare-nodc]\n"
               "                 [--out file.blif] [--dot file.dot] [--no-verify]\n"
               "                 [--seed n] <input.{pla,blif}|benchmark-name>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfd;

  int lut = 5;
  std::string flow = "mulop-dc";
  std::string out_path, out_pla_path, dot_path, input;
  bool verify = true;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--lut") lut = std::atoi(next());
      else if (arg == "--flow") flow = next();
      else if (arg == "--out") out_path = next();
      else if (arg == "--out-pla") out_pla_path = next();
      else if (arg == "--dot") dot_path = next();
      else if (arg == "--no-verify") verify = false;
      else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next()));
      else if (arg == "--help" || arg == "-h") return usage();
      else if (!arg.empty() && arg[0] == '-') return usage();
      else input = arg;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return usage();
    }
  }
  if (input.empty() || lut < 2) return usage();

  SynthesisOptions opts;
  if (flow == "mulop-dc") opts = preset_mulop_dc(lut);
  else if (flow == "mulopII") opts = preset_mulopII(lut);
  else if (flow == "noshare-nodc") opts = preset_noshare_nodc(lut);
  else return usage();
  opts.verify = verify;
  opts.decomp.seed = seed;

  try {
    bdd::Manager m;
    std::vector<Isf> spec;
    std::vector<std::string> in_names, out_names;
    std::string model_name = input;

    if (ends_with(input, ".pla")) {
      const io::PlaFile pla = io::parse_pla(read_file(input), input);
      spec = io::pla_to_isfs(pla, m);
      in_names = pla.input_names;
      out_names = pla.output_names;
    } else if (ends_with(input, ".blif")) {
      const io::BlifModel model = io::parse_blif(read_file(input), m, input);
      for (const bdd::Bdd& f : model.functions)
        spec.push_back(Isf::completely_specified(f));
      in_names = model.inputs;
      out_names = model.outputs;
      if (!model.name.empty()) model_name = model.name;
    } else {
      const circuits::Benchmark bench = circuits::build(input, m);
      for (const bdd::Bdd& f : bench.outputs)
        spec.push_back(Isf::completely_specified(f));
    }

    const int n_in = m.num_vars();
    std::vector<int> pi_vars(static_cast<std::size_t>(n_in));
    for (int i = 0; i < n_in; ++i) pi_vars[static_cast<std::size_t>(i)] = i;

    if (!out_pla_path.empty()) {
      std::ofstream(out_pla_path)
          << io::write_pla(io::pla_from_isfs(spec, n_in, in_names, out_names));
      std::printf("wrote %s (ISOP cover of the specification)\n", out_pla_path.c_str());
    }

    if (!dot_path.empty()) {
      std::vector<bdd::Edge> roots;
      for (const Isf& f : spec) roots.push_back(f.on().id());
      std::ofstream(dot_path) << m.to_dot(roots, out_names);
    }

    Synthesizer synth(opts);
    const SynthesisResult r = synth.run(spec, pi_vars);

    std::printf("%s: %d inputs, %zu outputs -> %s\n", model_name.c_str(), n_in,
                spec.size(), r.network.to_string().c_str());
    std::printf("flow %s (n_LUT=%d): CLBs greedy=%d matching=%d, %.2fs%s\n",
                flow.c_str(), lut, r.clb_greedy.num_clbs, r.clb_matching.num_clbs,
                r.seconds,
                verify ? (r.verified ? ", verified" : ", VERIFICATION FAILED")
                       : " (unverified)");
    std::printf("decomposition: %d steps, %ld functions (sum r_i %ld), "
                "%d shannon / %d mux fallbacks, depth %d\n",
                r.stats.decomposition_steps, r.stats.total_decomposition_functions,
                r.stats.sum_r, r.stats.shannon_fallbacks, r.stats.bdd_mux_fallbacks,
                r.stats.max_depth);
    std::printf("sharing: %ld encoder-pool reuses, %ld alpha-pool reuses\n",
                r.stats.encoding_pool_hits, r.stats.alpha_pool_hits);
    if (r.degradation.final_level != kDegradeFull)
      std::printf("note: degraded to ladder level %d (%s)\n",
                  r.degradation.final_level,
                  degrade_level_name(r.degradation.final_level));

    if (!out_path.empty()) {
      std::ofstream(out_path) << io::write_blif(r.network, model_name, in_names, out_names);
      std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
