file(REMOVE_RECURSE
  "CMakeFiles/ext_xc4000.dir/ext_xc4000.cpp.o"
  "CMakeFiles/ext_xc4000.dir/ext_xc4000.cpp.o.d"
  "ext_xc4000"
  "ext_xc4000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_xc4000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
