// Maximum-cardinality matching in general graphs (Edmonds' blossom
// algorithm).
//
// The mulop-dcII flow merges pairs of LUTs into XC3000 CLBs; [13] formulates
// the merge as maximum-cardinality matching on the "mergeable" graph. The
// graph is general (not bipartite), so augmenting-path search must shrink
// odd cycles (blossoms). This is the classic O(V^3) implementation.
#pragma once

#include <vector>

#include "util/graph.h"

namespace mfd {

/// Returns mate[v] = matched partner of v, or -1 if v is unmatched.
/// The returned matching has maximum cardinality.
std::vector<int> maximum_matching(const Graph& g);

/// Number of matched pairs in a mate[] array.
int matching_size(const std::vector<int>& mate);

/// True iff mate[] is a valid matching of g (symmetric, edges exist).
bool matching_is_valid(const Graph& g, const std::vector<int>& mate);

}  // namespace mfd
