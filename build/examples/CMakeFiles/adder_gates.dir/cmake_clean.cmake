file(REMOVE_RECURSE
  "CMakeFiles/adder_gates.dir/adder_gates.cpp.o"
  "CMakeFiles/adder_gates.dir/adder_gates.cpp.o.d"
  "adder_gates"
  "adder_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
