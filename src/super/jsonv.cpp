#include "super/jsonv.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace mfd::super {
namespace {

[[noreturn]] void fail(std::size_t at, const std::string& message) {
  throw Error("json parse error at byte " + std::to_string(at) + ": " + message);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail(pos_, "nesting deeper than 256");
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return v;  // kNull
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.elements.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  /// \uXXXX, with surrogate pairs, encoded back to UTF-8. JsonWriter only
  /// emits \u00XX control escapes, but journals may outlive the writer.
  std::string parse_unicode_escape() {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (!consume_literal("\\u")) fail(pos_, "lone high surrogate");
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_, "bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail(pos_, "lone low surrogate");
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail(pos_, "truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail(pos_ - 1, "bad hex digit in \\u escape");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string lit(text_.substr(start, pos_ - start));
    if (lit.empty() || lit == "-") fail(start, "bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    v.number = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size()) fail(start, "bad number '" + lit + "'");
    if (integral) {
      errno = 0;
      const long long i = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end == lit.c_str() + lit.size()) {
        v.integer = i;
        v.is_integer = true;
      }
    }
    return v;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

[[noreturn]] void type_fail(const char* want, JsonValue::Type got) {
  throw Error(std::string("json type mismatch: wanted ") + want + ", got kind " +
              std::to_string(static_cast<int>(got)));
}

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : members)
    if (k == key) found = &v;  // last duplicate wins, like most readers
  return found;
}

const std::string& JsonValue::as_string() const {
  if (type != Type::kString) type_fail("string", type);
  return string;
}

bool JsonValue::as_bool() const {
  if (type != Type::kBool) type_fail("bool", type);
  return boolean;
}

double JsonValue::as_double() const {
  if (type != Type::kNumber) type_fail("number", type);
  return number;
}

std::int64_t JsonValue::as_int64() const {
  if (type != Type::kNumber) type_fail("number", type);
  return is_integer ? integer : static_cast<std::int64_t>(std::llround(number));
}

int JsonValue::as_int() const {
  const std::int64_t v = as_int64();
  if (v < static_cast<std::int64_t>(std::numeric_limits<int>::min()) ||
      v > static_cast<std::int64_t>(std::numeric_limits<int>::max()))
    throw Error("json number " + std::to_string(v) + " does not fit in int");
  return static_cast<int>(v);
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->type == Type::kString ? v->string : std::move(fallback);
}

std::int64_t JsonValue::int_or(std::string_view key, std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->type == Type::kNumber ? v->as_int64() : fallback;
}

double JsonValue::double_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->type == Type::kBool ? v->boolean : fallback;
}

}  // namespace mfd::super
