#include "super/proc.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>

#include "core/budget.h"
#include "core/errors.h"
#include "super/journal.h"  // crc32

namespace mfd::super {
namespace {

// Pipe frame: tag byte ('R' result | 'E' error message), u32 LE payload
// length, u32 LE CRC32 of the payload, payload bytes.
constexpr std::size_t kFrameHeader = 1 + 4 + 4;
constexpr std::size_t kMaxPayload = 256u << 20;  // sanity bound, not a quota

// Child exit codes (distinct from anything the flow uses).
constexpr int kExitOk = 0;
constexpr int kExitTypedError = 61;
constexpr int kExitBadAlloc = 62;

extern "C" void sigterm_wind_down(int) {
  // Async-signal-safe by design: one relaxed atomic store (core/budget.cpp).
  request_global_expire();
}

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

/// Child side: frame + write + _exit. Uses only write(2); no stdio buffers
/// are involved, so nothing is lost to _exit.
[[noreturn]] void child_send_and_exit(int fd, char tag, std::string_view payload,
                                      int exit_code) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  frame += tag;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.append(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(kExitTypedError);  // parent sees a torn/missing frame => crash
    }
    off += static_cast<std::size_t>(n);
  }
  ::_exit(exit_code);
}

[[noreturn]] void child_main(int fd, const std::function<std::string()>& fn) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = sigterm_wind_down;
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  try {
    const std::string payload = fn();
    child_send_and_exit(fd, 'R', payload, kExitOk);
  } catch (const std::bad_alloc&) {
    child_send_and_exit(fd, 'E', "allocation failure (std::bad_alloc)",
                        kExitBadAlloc);
  } catch (const std::exception& e) {
    child_send_and_exit(fd, 'E', e.what(), kExitTypedError);
  } catch (...) {
    child_send_and_exit(fd, 'E', "unknown exception", kExitTypedError);
  }
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

/// Parses the frame out of everything the pipe delivered. Returns false on a
/// missing, torn, or CRC-damaged frame.
bool parse_frame(const std::string& buf, char* tag, std::string* payload) {
  if (buf.size() < kFrameHeader) return false;
  const std::uint32_t len = get_u32(buf.data() + 1);
  const std::uint32_t want = get_u32(buf.data() + 5);
  if (len > kMaxPayload || buf.size() != kFrameHeader + len) return false;
  const std::string_view body(buf.data() + kFrameHeader, len);
  if (crc32(body) != want) return false;
  *tag = buf[0];
  *payload = std::string(body);
  return *tag == 'R' || *tag == 'E';
}

}  // namespace

const char* child_status_name(ChildStatus s) {
  switch (s) {
    case ChildStatus::kOk: return "ok";
    case ChildStatus::kError: return "error";
    case ChildStatus::kCrash: return "crash";
    case ChildStatus::kTimeout: return "timeout";
    case ChildStatus::kOom: return "oom";
  }
  return "?";
}

ChildOutcome run_in_child(const std::function<std::string()>& fn,
                          const ChildLimits& limits) {
  int fds[2];
  if (::pipe(fds) != 0)
    throw Error(std::string("supervisor: pipe failed: ") + std::strerror(errno));

  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw Error(std::string("supervisor: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(fds[1], fn);  // never returns
  }
  ::close(fds[1]);

  // Read the child's record under the watchdog, escalating SIGTERM ->
  // SIGKILL when it fires. The loop keeps draining the pipe after signals so
  // a winding-down child can still deliver.
  std::string buf;
  bool sigterm_sent = false;
  bool sigkill_sent = false;
  bool eof = false;
  while (!eof) {
    double wait_ms = -1;  // block
    const double elapsed = ms_since(start);
    if (sigkill_sent) {
      wait_ms = 1000;  // the child is dying; don't block forever on a quirk
    } else if (sigterm_sent) {
      wait_ms = limits.watchdog_ms + limits.grace_ms - elapsed;
    } else if (limits.watchdog_ms > 0) {
      wait_ms = limits.watchdog_ms - elapsed;
    }
    struct pollfd pfd{fds[0], POLLIN, 0};
    const int timeout =
        wait_ms < 0 ? -1 : static_cast<int>(wait_ms < 1 ? 1 : wait_ms + 0.5);
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {  // a deadline passed
      if (!sigterm_sent) {
        ::kill(pid, SIGTERM);
        sigterm_sent = true;
      } else if (!sigkill_sent) {
        ::kill(pid, SIGKILL);
        sigkill_sent = true;
      } else {
        break;  // SIGKILLed a second ago and still no EOF: stop reading
      }
      continue;
    }
    char chunk[1 << 16];
    const ssize_t n = ::read(fds[0], chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);

  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }

  ChildOutcome out;
  out.seconds = ms_since(start) / 1000.0;
  out.soft_timeout = sigterm_sent;
  if (WIFEXITED(wstatus)) out.exit_code = WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) out.term_signal = WTERMSIG(wstatus);

  char tag = 0;
  std::string payload;
  if (parse_frame(buf, &tag, &payload)) {
    out.payload = std::move(payload);
    if (tag == 'R') {
      out.status = ChildStatus::kOk;
      out.detail = sigterm_sent ? "completed after SIGTERM wind-down" : "completed";
    } else {
      out.status =
          out.exit_code == kExitBadAlloc ? ChildStatus::kOom : ChildStatus::kError;
      out.detail = out.status == ChildStatus::kOom ? "child ran out of memory"
                                                   : "child raised a typed error";
    }
    return out;
  }
  if (sigterm_sent) {
    out.status = ChildStatus::kTimeout;
    out.detail = "watchdog fired after " + std::to_string(limits.watchdog_ms) +
                 " ms" + (sigkill_sent ? " (SIGKILL escalation)" : "");
    return out;
  }
  if (out.term_signal != 0) {
    // A SIGKILL we did not send is almost always the kernel OOM killer.
    out.status =
        out.term_signal == SIGKILL ? ChildStatus::kOom : ChildStatus::kCrash;
    out.detail = std::string("child killed by ") + signal_name(out.term_signal);
    return out;
  }
  out.status = ChildStatus::kCrash;
  out.detail = out.exit_code == 0
                   ? "child exited without a result record"
                   : "child exited with code " + std::to_string(out.exit_code) +
                         " without a result record";
  return out;
}

}  // namespace mfd::super
