file(REMOVE_RECURSE
  "CMakeFiles/ablation_total_code.dir/ablation_total_code.cpp.o"
  "CMakeFiles/ablation_total_code.dir/ablation_total_code.cpp.o.d"
  "ablation_total_code"
  "ablation_total_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_total_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
