// End-to-end tests of the full synthesis flow: decompose -> LUT network ->
// exact BDD verification + simulation, across presets, LUT sizes, and specs
// with genuine don't cares.
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "core/synthesizer.h"
#include "net/simulate.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;

std::vector<int> identity_pis(int n) {
  std::vector<int> pis(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pis[static_cast<std::size_t>(i)] = i;
  return pis;
}

void expect_flow_ok(const circuits::Benchmark& bench, const SynthesisOptions& opts,
                    int max_fanin) {
  Synthesizer synth(opts);
  const SynthesisResult result = synth.run(bench);
  EXPECT_TRUE(result.verified);
  EXPECT_LE(result.network.max_fanin(), max_fanin);
  // Independent path: simulate the network against the spec.
  std::vector<Isf> spec;
  for (const Bdd& f : bench.outputs) spec.push_back(Isf::completely_specified(f));
  std::string error;
  EXPECT_TRUE(net::check_by_simulation(result.network, spec, identity_pis(bench.num_inputs),
                                       12, 500, 3, &error))
      << error;
}

TEST(Flow, Adder4Lut5) {
  Manager m(8);
  expect_flow_ok(circuits::adder(m, 4), preset_mulop_dc(5), 5);
}

TEST(Flow, Adder4Gates) {
  Manager m(8);
  expect_flow_ok(circuits::adder(m, 4), preset_mulop_dc(2), 2);
}

TEST(Flow, Adder4MulopII) {
  Manager m(8);
  expect_flow_ok(circuits::adder(m, 4), preset_mulopII(5), 5);
}

TEST(Flow, Rd53) {
  Manager m(5);
  expect_flow_ok(circuits::build("rd53", m), preset_mulop_dc(5), 5);
}

TEST(Flow, Z4ml) {
  Manager m(7);
  expect_flow_ok(circuits::build("z4ml", m), preset_mulop_dc(5), 5);
}

TEST(Flow, Misex1AllPresets) {
  for (const auto& opts :
       {preset_mulop_dc(5), preset_mulopII(5), preset_noshare_nodc(5)}) {
    Manager m(8);
    expect_flow_ok(circuits::build("misex1", m), opts, 5);
  }
}

TEST(Flow, PartialMultiplier3Gates) {
  Manager m(9);
  expect_flow_ok(circuits::partial_multiplier(m, 3), preset_mulop_dc(2), 2);
}

TEST(Flow, SpecWithDontCares) {
  // A genuinely incompletely specified spec: care only where x0^x1^x2 = 1.
  Manager m(6);
  const Bdd care = m.var(0) ^ m.var(1) ^ m.var(2);
  const Bdd on = (m.var(3) & m.var(4)) ^ (m.var(5) & m.var(0)) ^ m.var(1);
  std::vector<Isf> spec{Isf(on & care, care),
                        Isf((m.var(2) | m.var(4)) & care, care)};
  Synthesizer synth(preset_mulop_dc(3));
  const SynthesisResult result = synth.run(spec, identity_pis(6));
  EXPECT_TRUE(result.verified);
  EXPECT_LE(result.network.max_fanin(), 3);
}

TEST(Flow, StatsArePopulated) {
  Manager m(10);
  Synthesizer synth(preset_mulop_dc(4));
  const SynthesisResult r = synth.run(circuits::adder(m, 5));
  EXPECT_GE(r.stats.decomposition_steps + r.stats.shannon_fallbacks, 1);
  EXPECT_GE(r.stats.total_decomposition_functions, 0);
  EXPECT_LE(r.stats.total_decomposition_functions, r.stats.sum_r);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(r.clb_matching.num_clbs, 1);
  EXPECT_LE(r.clb_matching.num_clbs, r.clb_greedy.num_clbs);
}

TEST(Flow, ExtendedBoundSetsHelpMuxStructures) {
  // A 16:1 selector tree profits from bound sets wider than the LUT fanin
  // (the paper's "decompose alpha recursively" case).
  Manager m;
  const circuits::Benchmark bench = circuits::build("rot", m);
  SynthesisOptions with = preset_mulop_dc(5);
  SynthesisOptions without = preset_mulop_dc(5);
  without.decomp.max_bound_extra = 0;
  const auto r_with = Synthesizer(with).run(bench);
  const auto r_without = Synthesizer(without).run(bench);
  EXPECT_TRUE(r_with.verified);
  EXPECT_TRUE(r_without.verified);
  EXPECT_LT(r_with.network.count_luts(), r_without.network.count_luts());
  EXPECT_LE(r_with.network.max_fanin(), 5);
}

TEST(Flow, PortfolioNeverWorseThanConservative) {
  for (const char* name : {"rd84", "misex1", "C880"}) {
    Manager m1, m2;
    SynthesisOptions conservative = preset_mulop_dc(5);
    conservative.decomp.max_bound_extra = 0;
    const auto base = Synthesizer(conservative).run(circuits::build(name, m1));
    const auto full = Synthesizer(preset_mulop_dc(5)).run(circuits::build(name, m2));
    EXPECT_TRUE(full.verified);
    EXPECT_LE(full.network.count_luts(), base.network.count_luts()) << name;
  }
}

TEST(Flow, BddMuxFallbackProducesCorrectNetworks) {
  // Force the direct BDD mapping path by forbidding Shannon splits.
  Manager m;
  const circuits::Benchmark bench = circuits::build("misex1", m);
  SynthesisOptions opts = preset_mulop_dc(5);
  opts.decomp.shannon_support_limit = 0;
  opts.decomp.boundset.max_evaluations = 1;  // starve the search
  opts.decomp.max_bound_extra = 0;
  opts.portfolio_bound_extra = false;
  const auto r = Synthesizer(opts).run(bench);
  EXPECT_TRUE(r.verified);
}

TEST(Flow, GateModeNeverEmitsWideLuts) {
  for (const char* name : {"z4ml", "rd73", "misex1"}) {
    Manager m;
    const auto r = Synthesizer(preset_mulop_dc(2)).run(circuits::build(name, m));
    EXPECT_TRUE(r.verified);
    EXPECT_LE(r.network.max_fanin(), 2) << name;
  }
}

TEST(Flow, TotalMinimalCodeModeIsCorrect) {
  // The [10]-style joint encoding must still synthesize correct networks.
  for (const char* name : {"rd84", "misex1", "z4ml"}) {
    Manager m;
    SynthesisOptions opts = preset_mulop_dc(5);
    opts.decomp.total_minimal_code = true;
    const auto r = Synthesizer(opts).run(circuits::build(name, m));
    EXPECT_TRUE(r.verified) << name;
    EXPECT_LE(r.network.max_fanin(), 5) << name;
  }
}

TEST(Flow, DeterministicAcrossRuns) {
  Manager m1, m2;
  const auto a = Synthesizer(preset_mulop_dc(5)).run(circuits::build("5xp1", m1));
  const auto b = Synthesizer(preset_mulop_dc(5)).run(circuits::build("5xp1", m2));
  EXPECT_EQ(a.network.count_luts(), b.network.count_luts());
  EXPECT_EQ(a.clb_matching.num_clbs, b.clb_matching.num_clbs);
  EXPECT_EQ(a.stats.decomposition_steps, b.stats.decomposition_steps);
}

class FlowRandom : public ::testing::TestWithParam<int> {};

TEST_P(FlowRandom, RandomMultiOutputFunctions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 17);
  const int n = rng.range(6, 9);
  const int outs = rng.range(1, 4);
  Manager m(n);
  std::vector<Isf> spec;
  std::vector<Bdd> keep;
  for (int o = 0; o < outs; ++o) {
    const auto t = test::random_table(rng, n);
    keep.push_back(test::bdd_from_table(m, t, n));
    spec.push_back(Isf::completely_specified(keep.back()));
  }
  Synthesizer synth(preset_mulop_dc(rng.range(3, 5)));
  const SynthesisResult result = synth.run(spec, identity_pis(n));
  EXPECT_TRUE(result.verified);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowRandom, ::testing::Range(0, 12));

TEST_P(FlowRandom, RandomIncompletelySpecified) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 331 + 29);
  const int n = rng.range(6, 8);
  Manager m(n);
  std::vector<Isf> spec;
  for (int o = 0; o < 2; ++o) {
    const Bdd on = test::bdd_from_table(m, test::random_table(rng, n), n);
    const Bdd care = test::bdd_from_table(m, test::random_table(rng, n), n) |
                     test::bdd_from_table(m, test::random_table(rng, n), n);
    spec.emplace_back(on & care, care);
  }
  Synthesizer synth(preset_mulop_dc(4));
  const SynthesisResult result = synth.run(spec, identity_pis(n));
  EXPECT_TRUE(result.verified);
  std::string error;
  EXPECT_TRUE(net::check_by_simulation(result.network, spec, identity_pis(n), 10, 200, 5,
                                       &error))
      << error;
}

TEST(Flow, SingleVariableAndConstantOutputs) {
  Manager m(3);
  std::vector<Isf> spec{
      Isf::completely_specified(m.bdd_false()),
      Isf::completely_specified(m.bdd_true()),
      Isf::completely_specified(m.var(1)),
      Isf::completely_specified(!m.var(2)),
  };
  const auto r = Synthesizer(preset_mulop_dc(5)).run(spec, identity_pis(3));
  EXPECT_TRUE(r.verified);
  EXPECT_LE(r.network.count_luts(), 1);  // only the inverter can remain
}

TEST(Flow, VacuousSpecSynthesizesSomething) {
  // Every extension is admissible: any network verifies.
  Manager m(4);
  std::vector<Isf> spec{Isf(m.bdd_false(), m.bdd_false())};
  const auto r = Synthesizer(preset_mulop_dc(3)).run(spec, identity_pis(4));
  EXPECT_TRUE(r.verified);
}

TEST(Flow, DuplicateOutputsShareLogic) {
  Manager m(8);
  const Bdd f = (m.var(0) & m.var(1)) ^ (m.var(2) | m.var(5)) ^ m.var(7);
  std::vector<Isf> spec{Isf::completely_specified(f), Isf::completely_specified(f),
                        Isf::completely_specified(f)};
  const auto r = Synthesizer(preset_mulop_dc(4)).run(spec, identity_pis(8));
  EXPECT_TRUE(r.verified);
  // All three outputs must resolve to the same signal after dedup.
  EXPECT_EQ(r.network.outputs()[0], r.network.outputs()[1]);
  EXPECT_EQ(r.network.outputs()[1], r.network.outputs()[2]);
}

TEST(Flow, ComplementOutputsStayCheap) {
  Manager m(6);
  const Bdd f = (m.var(0) ^ m.var(1)) & (m.var(2) | m.var(3)) & m.var(5);
  std::vector<Isf> spec{Isf::completely_specified(f), Isf::completely_specified(!f)};
  const auto r = Synthesizer(preset_mulop_dc(4)).run(spec, identity_pis(6));
  EXPECT_TRUE(r.verified);
}

TEST(Flow, WideLutEqualsSingleTable) {
  // When n <= n_LUT the flow must emit exactly one LUT per output.
  Manager m(5);
  Rng rng(77);
  std::vector<Isf> spec;
  for (int o = 0; o < 3; ++o)
    spec.push_back(Isf::completely_specified(
        test::bdd_from_table(m, test::random_table(rng, 5), 5)));
  const auto r = Synthesizer(preset_mulop_dc(5)).run(spec, identity_pis(5));
  EXPECT_TRUE(r.verified);
  EXPECT_LE(r.network.count_luts(), 3);
  EXPECT_EQ(r.network.depth(), 1);
}

}  // namespace
}  // namespace mfd
