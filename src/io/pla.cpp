#include "io/pla.h"

#include <sstream>
#include <stdexcept>

#include "bdd/isop.h"
#include "circuits/circuits.h"
#include "core/errors.h"

namespace mfd::io {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// std::stoi with a ParseError instead of std::invalid_argument/out_of_range.
int parse_count(const std::string& token, const std::string& file, int line,
                const char* directive) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(token, &used);
    if (used != token.size() || value < 0)
      throw std::invalid_argument(token);
    return value;
  } catch (const std::logic_error&) {
    throw ParseError(file, line, std::string("pla: ") + directive +
                                     " expects a non-negative count, got '" + token + "'");
  }
}

}  // namespace

PlaFile parse_pla(const std::string& text, const std::string& filename) {
  PlaFile pla;
  bool saw_i = false, saw_o = false;
  std::istringstream is(text);
  std::string raw, joined;
  int physical_line = 0;
  int line_no = 0;  // first physical line of the current logical line
  // Espresso allows '\' at end of line to continue a directive (commonly used
  // for long .ilb/.ob name lists); comments run from '#' to end of line.
  while (std::getline(is, raw)) {
    ++physical_line;
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    const bool cont = !raw.empty() && raw.back() == '\\';
    if (cont) raw.pop_back();
    if (joined.empty()) line_no = physical_line;
    joined += raw + " ";
    if (cont) continue;
    const std::vector<std::string> tokens = tokenize(joined);
    const std::string line = std::move(joined);
    joined.clear();
    if (tokens.empty()) continue;
    const std::string& head = tokens.front();
    if (head == ".i") {
      if (tokens.size() != 2) throw ParseError(filename, line_no, "pla: malformed .i");
      pla.num_inputs = parse_count(tokens[1], filename, line_no, ".i");
      saw_i = true;
    } else if (head == ".o") {
      if (tokens.size() != 2) throw ParseError(filename, line_no, "pla: malformed .o");
      pla.num_outputs = parse_count(tokens[1], filename, line_no, ".o");
      saw_o = true;
    } else if (head == ".p") {
      // informational; ignored
    } else if (head == ".type") {
      if (tokens.size() != 2)
        throw ParseError(filename, line_no, "pla: malformed .type");
      // An unknown type must not be accepted silently: every plane symbol's
      // meaning depends on it, and guessing turns don't-cares into cares.
      if (tokens[1] != "f" && tokens[1] != "fd" && tokens[1] != "fr" &&
          tokens[1] != "fdr")
        throw ParseError(filename, line_no,
                         "pla: unsupported .type " + tokens[1] +
                             " (expected f|fd|fr|fdr)");
      pla.type = tokens[1];
    } else if (head == ".ilb") {
      // Append: espresso permits the name list to span several .ilb lines.
      pla.input_names.insert(pla.input_names.end(), tokens.begin() + 1, tokens.end());
    } else if (head == ".ob") {
      pla.output_names.insert(pla.output_names.end(), tokens.begin() + 1, tokens.end());
    } else if (head == ".e" || head == ".end") {
      break;
    } else if (head[0] == '.') {
      throw ParseError(filename, line_no, "pla: unsupported directive " + head);
    } else {
      if (!saw_i || !saw_o)
        throw ParseError(filename, line_no, "pla: cube before .i/.o");
      std::string in, out;
      if (tokens.size() == 2) {
        in = tokens[0];
        out = tokens[1];
      } else if (tokens.size() == 1 &&
                 static_cast<int>(tokens[0].size()) == pla.num_inputs + pla.num_outputs) {
        in = tokens[0].substr(0, static_cast<std::size_t>(pla.num_inputs));
        out = tokens[0].substr(static_cast<std::size_t>(pla.num_inputs));
      } else {
        throw ParseError(filename, line_no, "pla: malformed cube line: " + line);
      }
      if (static_cast<int>(in.size()) != pla.num_inputs ||
          static_cast<int>(out.size()) != pla.num_outputs)
        throw ParseError(filename, line_no, "pla: cube width mismatch: " + line);
      for (char& ch : in) {
        if (ch == '2') ch = '-';  // espresso: '2' is a synonym for '-'
        if (ch != '0' && ch != '1' && ch != '-')
          throw ParseError(filename, line_no, "pla: bad input character in: " + line);
      }
      for (char& ch : out) {
        if (ch == '2') ch = '-';
        if (ch != '0' && ch != '1' && ch != '-' && ch != '~')
          throw ParseError(filename, line_no, "pla: bad output character in: " + line);
      }
      pla.cubes.emplace_back(std::move(in), std::move(out));
    }
  }
  // Line 0: the input as a whole is missing its mandatory header.
  if (!saw_i || !saw_o) throw ParseError(filename, 0, "pla: missing .i/.o");
  if (!pla.input_names.empty() &&
      static_cast<int>(pla.input_names.size()) != pla.num_inputs)
    throw ParseError(filename, 0, "pla: .ilb names " +
                                      std::to_string(pla.input_names.size()) +
                                      " inputs but .i says " +
                                      std::to_string(pla.num_inputs));
  if (!pla.output_names.empty() &&
      static_cast<int>(pla.output_names.size()) != pla.num_outputs)
    throw ParseError(filename, 0, "pla: .ob names " +
                                      std::to_string(pla.output_names.size()) +
                                      " outputs but .o says " +
                                      std::to_string(pla.num_outputs));
  return pla;
}

std::string write_pla(const PlaFile& pla) {
  std::ostringstream os;
  os << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n";
  if (!pla.input_names.empty()) {
    os << ".ilb";
    for (const auto& n : pla.input_names) os << ' ' << n;
    os << "\n";
  }
  if (!pla.output_names.empty()) {
    os << ".ob";
    for (const auto& n : pla.output_names) os << ' ' << n;
    os << "\n";
  }
  if (pla.type != "fd") os << ".type " << pla.type << "\n";
  os << ".p " << pla.cubes.size() << "\n";
  for (const auto& [in, out] : pla.cubes) os << in << ' ' << out << "\n";
  os << ".e\n";
  return os.str();
}

PlaFile pla_from_isfs(const std::vector<Isf>& fns, int num_inputs,
                      const std::vector<std::string>& input_names,
                      const std::vector<std::string>& output_names) {
  if (fns.empty()) throw std::runtime_error("pla_from_isfs: no outputs");
  bdd::Manager& m = *fns.front().manager();
  PlaFile pla;
  pla.num_inputs = num_inputs >= 0 ? num_inputs : m.num_vars();
  pla.num_outputs = static_cast<int>(fns.size());
  pla.input_names = input_names;
  pla.output_names = output_names;

  for (int o = 0; o < pla.num_outputs; ++o) {
    const Isf& f = fns[static_cast<std::size_t>(o)];
    const std::vector<bdd::Cube> cover =
        bdd::isop(m, f.on().id(), (f.on() | f.dc()).id());
    for (const bdd::Cube& cube : cover) {
      std::string in(static_cast<std::size_t>(pla.num_inputs), '-');
      for (const auto& [var, phase] : cube.literals) {
        if (var >= pla.num_inputs)
          throw std::runtime_error("pla_from_isfs: function exceeds input count");
        in[static_cast<std::size_t>(var)] = phase ? '1' : '0';
      }
      std::string out(static_cast<std::size_t>(pla.num_outputs), '0');
      out[static_cast<std::size_t>(o)] = '1';
      pla.cubes.emplace_back(std::move(in), std::move(out));
    }
  }
  return pla;
}

PlaFile pla_from_isfs_exact(const std::vector<Isf>& fns, int num_inputs,
                            const std::vector<std::string>& input_names,
                            const std::vector<std::string>& output_names) {
  if (fns.empty()) throw std::runtime_error("pla_from_isfs_exact: no outputs");
  bdd::Manager& m = *fns.front().manager();
  PlaFile pla;
  pla.num_inputs = num_inputs >= 0 ? num_inputs : m.num_vars();
  pla.num_outputs = static_cast<int>(fns.size());
  pla.type = "fr";
  pla.input_names = input_names;
  pla.output_names = output_names;

  // fr semantics reconstruct care = on | off per output, so emitting exact
  // covers of both planes (and '~' elsewhere) round-trips (on, care)
  // verbatim — no complement-of-the-listed-planes guessing involved.
  auto emit_plane = [&](int o, const bdd::Bdd& plane, char symbol) {
    const std::vector<bdd::Cube> cover = bdd::isop(m, plane.id(), plane.id());
    for (const bdd::Cube& cube : cover) {
      std::string in(static_cast<std::size_t>(pla.num_inputs), '-');
      for (const auto& [var, phase] : cube.literals) {
        if (var >= pla.num_inputs)
          throw std::runtime_error("pla_from_isfs_exact: function exceeds input count");
        in[static_cast<std::size_t>(var)] = phase ? '1' : '0';
      }
      std::string out(static_cast<std::size_t>(pla.num_outputs), '~');
      out[static_cast<std::size_t>(o)] = symbol;
      pla.cubes.emplace_back(std::move(in), std::move(out));
    }
  };
  for (int o = 0; o < pla.num_outputs; ++o) {
    const Isf& f = fns[static_cast<std::size_t>(o)];
    emit_plane(o, f.on(), '1');
    emit_plane(o, f.off(), '0');
  }
  return pla;
}

std::vector<Isf> pla_to_isfs(const PlaFile& pla, bdd::Manager& m) {
  circuits::ensure_vars(m, pla.num_inputs);
  const bool has_r = pla.type == "fr" || pla.type == "fdr";
  // Type f carries only an on-plane: its DC-set is empty by definition, so a
  // '-' output entry has *no meaning* there (treating it as DC — as this code
  // once did — silently widens the care set's complement and lets the
  // synthesizer change cared-for values).
  const bool has_d = pla.type == "fd" || pla.type == "fdr";

  std::vector<bdd::Bdd> on(static_cast<std::size_t>(pla.num_outputs), m.bdd_false());
  std::vector<bdd::Bdd> dc(static_cast<std::size_t>(pla.num_outputs), m.bdd_false());
  std::vector<bdd::Bdd> off(static_cast<std::size_t>(pla.num_outputs), m.bdd_false());

  for (const auto& [in, out] : pla.cubes) {
    bdd::Bdd cube = m.bdd_true();
    for (int v = 0; v < pla.num_inputs; ++v) {
      const char ch = in[static_cast<std::size_t>(v)];
      if (ch == '-') continue;
      cube &= m.literal(v, ch == '1');
    }
    for (int o = 0; o < pla.num_outputs; ++o) {
      switch (out[static_cast<std::size_t>(o)]) {
        case '1': on[static_cast<std::size_t>(o)] |= cube; break;
        case '-': if (has_d) dc[static_cast<std::size_t>(o)] |= cube; break;
        case '0': if (has_r) off[static_cast<std::size_t>(o)] |= cube; break;
        default: break;  // '~': no information
      }
    }
  }

  std::vector<Isf> result;
  result.reserve(static_cast<std::size_t>(pla.num_outputs));
  for (int o = 0; o < pla.num_outputs; ++o) {
    // f/fd: everything not covered by a dc cube is cared for (uncovered
    // inputs are off); on beats dc on overlap. fr/fdr: only the listed on-
    // and off-planes are cared for.
    const bdd::Bdd care = has_r ? (on[static_cast<std::size_t>(o)] | off[static_cast<std::size_t>(o)])
                                : !(dc[static_cast<std::size_t>(o)] & !on[static_cast<std::size_t>(o)]);
    result.emplace_back(on[static_cast<std::size_t>(o)], care);
  }
  return result;
}

}  // namespace mfd::io
