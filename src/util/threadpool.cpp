#include "util/threadpool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace mfd::util {
namespace {

/// True while the current thread is executing a pool task: nested for_each
/// calls run inline instead of waiting on workers that may all be busy in
/// the enclosing call.
thread_local bool tls_in_pool_task = false;

}  // namespace

struct ThreadPool::Impl {
  /// One for_each invocation. Claimed indices and the cancel flag are
  /// lock-free (the per-task hot path); error capture and participant
  /// accounting go through the pool mutex (once per thread per call).
  struct Job {
    std::size_t n = 0;
    const Task* fn = nullptr;
    int max_slots = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    int slots_taken = 1;     // slot 0 = submitting thread; guarded by pool mutex
    int workers_active = 0;  // guarded by pool mutex
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::mutex error_mu;
  };

  std::mutex mu;                // worker handshake + job lifecycle
  std::condition_variable wake;  // workers wait here for a job
  std::condition_variable done;  // the caller waits here for the drain
  std::vector<std::thread> threads;
  Job* job = nullptr;
  std::uint64_t generation = 0;
  bool stop = false;

  /// Serializes concurrent for_each callers (one job at a time).
  std::mutex submit_mu;

  static void run_tasks(Job& job, int slot) {
    for (;;) {
      if (job.cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.fn)(i, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (i < job.error_index) {
          job.error_index = i;
          job.error = std::current_exception();
        }
        job.cancelled.store(true, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() {
    tls_in_pool_task = true;  // nested for_each from a task runs inline
    std::uint64_t seen = 0;
    for (;;) {
      Job* my_job = nullptr;
      int slot = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        wake.wait(lock, [&] { return stop || (job != nullptr && generation != seen); });
        if (stop) return;
        seen = generation;
        if (job->slots_taken >= job->max_slots) continue;  // call is fully staffed
        my_job = job;
        slot = my_job->slots_taken++;
        ++my_job->workers_active;
      }
      run_tasks(*my_job, slot);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--my_job->workers_active == 0) done.notify_all();
      }
    }
  }

  void ensure_threads(int want) {
    // Caller holds no pool locks. Growing is rare (first call per size).
    std::lock_guard<std::mutex> lock(mu);
    while (static_cast<int>(threads.size()) < want)
      threads.emplace_back([this] { worker_loop(); });
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<int>(impl_->threads.size());
}

void ThreadPool::for_each(std::size_t n, int parallelism, const Task& fn) {
  if (n == 0) return;
  if (parallelism <= 1 || n == 1 || tls_in_pool_task) {
    // Inline serial path: bit-identical task order, same exception
    // semantics (first throw propagates, later indices never run).
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mu);
  impl_->ensure_threads(parallelism - 1);

  Impl::Job job;
  job.n = n;
  job.fn = &fn;
  job.max_slots = parallelism;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->wake.notify_all();
  // The submitting thread participates as slot 0. It must look like a pool
  // task while doing so: a nested for_each from one of its tasks would
  // otherwise re-enter the parallel path and self-deadlock on submit_mu.
  tls_in_pool_task = true;
  Impl::run_tasks(job, /*slot=*/0);  // noexcept: errors land in job.error
  tls_in_pool_task = false;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->job = nullptr;  // no further workers may join this job
    impl_->done.wait(lock, [&] { return job.workers_active == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mfd::util
