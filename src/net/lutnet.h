// LUT network intermediate representation.
//
// The decomposition flow emits a DAG of k-input lookup tables; with k = 5
// this is the XC3000 mapping target, with k = 2 it is a two-input gate
// netlist (the paper's Figures 2 and 3). Signals are integers: primary
// inputs first, then one signal per LUT, in topological order by
// construction. Constants are the dedicated signals kConst0/kConst1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mfd::net {

inline constexpr int kConst0 = -1;
inline constexpr int kConst1 = -2;

struct Lut {
  std::vector<int> inputs;  ///< signal ids, fanin order = truth-table bit order
  std::vector<bool> table;  ///< size 2^inputs.size(); bit j of the index is inputs[j]
};

/// Classification of a LUT's function after structural simplification.
enum class LutKind { kConstant, kBuffer, kInverter, kGeneral };

class LutNetwork {
 public:
  LutNetwork() = default;
  explicit LutNetwork(int num_primary_inputs);

  int num_primary_inputs() const { return num_pi_; }
  int num_luts() const { return static_cast<int>(luts_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  const std::vector<int>& outputs() const { return outputs_; }
  const Lut& lut(int index) const { return luts_[static_cast<std::size_t>(index)]; }

  bool is_primary_input(int signal) const { return signal >= 0 && signal < num_pi_; }
  bool is_constant(int signal) const { return signal == kConst0 || signal == kConst1; }
  /// Index into luts() for a LUT-driven signal.
  int lut_index(int signal) const { return signal - num_pi_; }
  int lut_signal(int index) const { return num_pi_ + index; }

  /// True for constants, primary inputs, and already-added LUT signals.
  bool is_valid_signal(int signal) const {
    return is_constant(signal) || (signal >= 0 && signal < num_pi_ + num_luts());
  }

  /// Appends a LUT; all inputs must be existing signals. Returns its signal.
  int add_lut(Lut lut);
  /// Registers `signal` as the next primary output. Throws mfd::Error when
  /// `signal` names neither a constant, a primary input, nor an added LUT.
  void add_output(int signal);
  /// Redirects primary output `index` to `signal`. Throws mfd::Error on an
  /// out-of-range output index or an invalid signal (passes rewiring the
  /// network must not be able to corrupt it silently).
  void set_output(int index, int signal);
  /// Replaces the LUT driving lut_signal(index) in place, keeping its signal
  /// id. The new fanins must be constants or signals strictly below it, so
  /// topological order is preserved; throws mfd::Error otherwise.
  void replace_lut(int index, Lut lut);

  // ---- analysis ---------------------------------------------------------
  /// Evaluates the whole network; `pi_values` has one entry per primary input.
  std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;
  /// LUTs reachable from the outputs (alive), by LUT index.
  std::vector<bool> live_luts() const;
  /// Number of live LUTs with at least `min_inputs` inputs.
  int count_luts(int min_inputs = 0) const;
  /// Number of live LUTs whose function genuinely depends on >= 2 inputs
  /// (the "two-input gate count" of the paper's Figures 2/3; inverters and
  /// buffers are wiring, not gates).
  int count_gates() const;
  /// Longest PI-to-output path in live LUT levels.
  int depth() const;
  /// Maximum fanin over live LUTs.
  int max_fanin() const;

  // ---- transformations ----------------------------------------------------
  /// Structural cleanup: constant folding, buffer/inverter absorption where
  /// possible, duplicate-LUT sharing, dead-LUT removal. Preserves I/O
  /// behaviour; returns the number of LUTs removed.
  int simplify();

  /// Collapses single-fanout LUTs into their consumer when the combined
  /// input set still fits `max_inputs` (classic LUT packing). Runs simplify
  /// afterwards; preserves I/O behaviour; returns the number of LUTs
  /// removed.
  int collapse(int max_inputs);

  /// Classifies a LUT after removing non-essential inputs.
  static LutKind classify(const Lut& lut);

  std::string to_string() const;

  // ---- export -------------------------------------------------------------
  /// Berkeley BLIF text of the live network (one .names per live LUT,
  /// constants as single-line covers). `model` names the .model; inputs are
  /// pi0..., outputs po0..., internal signals n<index>.
  std::string to_blif(const std::string& model = "lutnet") const;
  /// Graphviz dot text of the live network (PIs as boxes, LUTs as ellipses
  /// labelled with fanin count, POs as double circles).
  std::string to_dot(const std::string& name = "lutnet") const;

 private:
  /// Drops inputs the table does not depend on; canonicalizes constants.
  static Lut prune_inputs(Lut lut);

  int num_pi_ = 0;
  std::vector<Lut> luts_;
  std::vector<int> outputs_;
};

}  // namespace mfd::net
