// Robustness suite: the resource governor, the typed error taxonomy, the
// degradation ladder, and the fault-injection harness (docs/ROBUSTNESS.md).
//
// The contract under test: every budget trip and every injected fault either
// (a) recovers through the degradation ladder — the flow still returns a
// *verified* LUT network and reports which rung it finished on — or
// (b) surfaces a typed mfd::Error, with the BDD manager and the obs registry
// left in a usable state. Nothing may crash or abort.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "circuits/circuits.h"
#include "core/budget.h"
#include "core/errors.h"
#include "core/faultinject.h"
#include "core/synthesizer.h"
#include "obs/obs.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;

// ---------------------------------------------------------------------------
// ResourceGovernor unit tests
// ---------------------------------------------------------------------------

TEST(ResourceGovernor, OpCeilingTripsWithTypedError) {
  ResourceBudget b;
  b.op_ceiling = 100;
  ResourceGovernor gov(b);
  try {
    for (int i = 0; i < 200; ++i) gov.charge_mk(0);
    FAIL() << "op ceiling never tripped";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kOps);
    EXPECT_EQ(e.where(), "bdd.mk");
  }
}

TEST(ResourceGovernor, NodeCeilingTripsWithTypedError) {
  ResourceBudget b;
  b.node_ceiling = 50;
  ResourceGovernor gov(b);
  gov.charge_mk(50);  // at the ceiling: fine
  try {
    gov.charge_mk(51);
    FAIL() << "node ceiling never tripped";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kNodes);
  }
}

TEST(ResourceGovernor, DepthBudget) {
  ResourceBudget b;
  b.max_depth = 4;
  ResourceGovernor gov(b);
  gov.check_depth(4, "test");  // at the bound: fine
  try {
    gov.check_depth(5, "test");
    FAIL() << "depth budget never tripped";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kDepth);
    EXPECT_EQ(e.where(), "test");
  }
}

TEST(ResourceGovernor, ForceExpireFiresDeadlineChecks) {
  ResourceGovernor gov;  // unlimited budget
  EXPECT_FALSE(gov.deadline_expired());
  gov.check_deadline("test");  // no deadline: no-op
  gov.force_expire();
  EXPECT_TRUE(gov.deadline_expired());
  try {
    gov.check_deadline("test");
    FAIL() << "expired deadline did not fire";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kTime);
  }
}

TEST(ResourceGovernor, SuspendScopeDisablesEveryCheck) {
  ResourceBudget b;
  b.op_ceiling = 1;
  b.node_ceiling = 1;
  b.max_depth = 1;
  ResourceGovernor gov(b);
  gov.force_expire();
  {
    ResourceGovernor::SuspendScope suspend(gov);
    EXPECT_TRUE(gov.suspended());
    EXPECT_FALSE(gov.deadline_expired());
    for (int i = 0; i < 100; ++i) gov.charge_mk(1000);  // would trip everything
    gov.check_deadline("test");
    gov.check_depth(100, "test");
  }
  EXPECT_FALSE(gov.suspended());
  EXPECT_EQ(gov.report().suspended_sections, 1u);
  EXPECT_THROW(gov.check_deadline("test"), BudgetExceeded);
}

TEST(ResourceGovernor, DegradeLadderIsMonotoneAndRecorded) {
  ResourceGovernor gov;
  EXPECT_EQ(gov.degrade_level(), kDegradeFull);
  gov.raise_degrade(kDegradeNoDcSteps, "test.phase", "because");
  gov.raise_degrade(kDegradeGreedyColoring, "test.phase", "ignored downgrade");
  EXPECT_EQ(gov.degrade_level(), kDegradeNoDcSteps);
  ASSERT_EQ(gov.report().events.size(), 1u);
  EXPECT_EQ(gov.report().events[0].from_level, kDegradeFull);
  EXPECT_EQ(gov.report().events[0].to_level, kDegradeNoDcSteps);
  EXPECT_EQ(gov.report().events[0].phase, "test.phase");
  EXPECT_TRUE(gov.report().degraded());
}

TEST(ResourceGovernor, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(ResourceGovernor::current(), nullptr);
  ResourceGovernor outer;
  {
    ResourceGovernor::Scope s1(outer);
    EXPECT_EQ(ResourceGovernor::current(), &outer);
    ResourceGovernor inner;
    {
      ResourceGovernor::Scope s2(inner);
      EXPECT_EQ(ResourceGovernor::current(), &inner);
    }
    EXPECT_EQ(ResourceGovernor::current(), &outer);
  }
  EXPECT_EQ(ResourceGovernor::current(), nullptr);
}

TEST(ResourceGovernor, ManagerTripsNodeCeilingAndSurvives) {
  Manager m;
  ResourceBudget b;
  b.node_ceiling = 64;
  ResourceGovernor gov(b);
  m.set_governor(&gov);
  try {
    (void)circuits::build("mult4", m);  // far more than 64 nodes
    FAIL() << "node ceiling never tripped";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kNodes);
  }
  m.set_governor(nullptr);
  // The manager must be fully usable after the mid-operation throw: the
  // aborted operation's intermediates are dead roots for the next GC.
  m.garbage_collect();
  const Bdd parity = m.var(0) ^ m.var(1) ^ m.var(2) ^ m.var(3);
  EXPECT_EQ(m.sat_count(parity.id(), 4), 8.0);
}

// ---------------------------------------------------------------------------
// Fault-injection harness
// ---------------------------------------------------------------------------

class FaultInjection : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

TEST_F(FaultInjection, MalformedSpecsThrowParseErrorAndKeepPreviousSpec) {
  fault::configure("bdd.mk@1000");
  EXPECT_TRUE(fault::armed());
  const char* bad[] = {"bdd.mk",          // missing @k
                       "bdd.mk@0",        // k must be >= 1
                       "bdd.mk@x",        // k not a number
                       "@3",              // empty site
                       "bdd.mk@1:weird"}; // unknown kind
  for (const char* spec : bad) {
    try {
      fault::configure(spec);
      FAIL() << "accepted malformed spec: " << spec;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.file(), "<fault-spec>") << spec;
      EXPECT_GE(e.line(), 1) << spec;
    }
    EXPECT_TRUE(fault::armed()) << "previous spec lost after: " << spec;
  }
  fault::clear();
  EXPECT_FALSE(fault::armed());
}

TEST_F(FaultInjection, FiresAtTheKthHitExactlyOnce) {
  fault::configure("bdd.mk@3:budget");
  Manager m(4);
  int threw_at = 0;
  for (int i = 1; i <= 8 && threw_at == 0; ++i) {
    try {
      (void)(m.var(i % 4) & m.var((i + 1) % 4));  // at least one mk each
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kInjected);
      threw_at = i;
    }
  }
  EXPECT_GT(threw_at, 0) << "rule never fired";
  // One-shot: subsequent operations run clean, manager intact.
  const Bdd f = m.var(0) & m.var(1) & m.var(2);
  EXPECT_EQ(m.sat_count(f.id(), 4), 2.0);
}

TEST_F(FaultInjection, TimeoutKindWithoutGovernorThrowsTyped) {
  fault::configure("bdd.mk@1:timeout");
  Manager m(3);
  EXPECT_THROW((void)(m.var(0) | m.var(1)), BudgetExceeded);
  // Disarmed after firing; the manager still works.
  EXPECT_EQ((m.var(0) | m.var(1)).is_false(), false);
}

TEST_F(FaultInjection, AllocKindThrowsBadAlloc) {
  fault::configure("bdd.alloc@1:alloc");
  Manager m(3);
  EXPECT_THROW((void)(m.var(0) ^ m.var(2)), std::bad_alloc);
  EXPECT_EQ(m.sat_count((m.var(0) ^ m.var(2)).id(), 3), 4.0);
}

// ---------------------------------------------------------------------------
// End-to-end: injected faults recover through the degradation ladder
// ---------------------------------------------------------------------------

SynthesisResult run_circuit(const std::string& name, const ResourceBudget& budget = {},
                            const std::string& spec = {}) {
  bdd::Manager m;
  const circuits::Benchmark bench = circuits::build(name, m);
  if (!spec.empty()) fault::configure(spec);
  SynthesisOptions opts = preset_mulop_dc(5);
  opts.budget = budget;
  return Synthesizer(opts).run(bench);
}

// Every instrumented site, hit early with the default (budget) fault: the
// ladder must absorb it and still deliver a verified network.
TEST_F(FaultInjection, EverySiteRecoversThroughTheLadder) {
  const char* specs[] = {
      "bdd.mk@1:budget",         "bdd.mk@5000:budget", "bdd.alloc@10:alloc",
      "bdd.ite@500:budget",      "util.coloring@1:budget",
      "util.coloring@1:timeout", "sym.symmetrize@1:budget",
      "decomp.boundset@1:budget", "decomp.boundset@2:timeout",
      "decomp.dc_assign@1:budget",
  };
  for (const char* spec : specs) {
    fault::clear();
    const SynthesisResult r = run_circuit("rd73", {}, spec);
    EXPECT_TRUE(r.verified) << spec;
    EXPECT_GT(r.network.count_luts(), 0) << spec;
    EXPECT_EQ(r.degradation.per_output_level.size(), 3u) << spec;
    if (r.report.counters.count("fault.fired") != 0u) {
      // The fault fired in-flow, so the ladder must have moved (budget/alloc
      // kinds) or the deadline cut optimization short (timeout kind).
      EXPECT_GE(r.report.counters.at("fault.fired"), 1u) << spec;
    }
  }
  fault::clear();
  // Flow state intact: a clean run right after the fault storm is pristine.
  const SynthesisResult clean = run_circuit("rd73");
  EXPECT_TRUE(clean.verified);
  EXPECT_FALSE(clean.degradation.degraded());
  EXPECT_TRUE(clean.degradation.events.empty());
}

// A fault firing *before* the ladder exists (here: during the benchmark's
// ISF conversion, ahead of decompose) cannot recover — but it must surface
// as a typed error, never a crash, and leave the flow reusable.
TEST_F(FaultInjection, FaultOutsideTheLadderSurfacesTypedError) {
  try {
    (void)run_circuit("rd73", {}, "bdd.ite@1:budget");
    // Acceptable: the first ite happened inside the ladder and recovered.
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.resource(), BudgetExceeded::Resource::kInjected);
  }
  fault::clear();
  const SynthesisResult clean = run_circuit("rd73");
  EXPECT_TRUE(clean.verified);
}

TEST_F(FaultInjection, InjectedBudgetFaultIsAttributedInTheReport) {
  const SynthesisResult r = run_circuit("rd73", {}, "bdd.mk@100:budget");
  ASSERT_TRUE(r.verified);
  ASSERT_TRUE(r.degradation.degraded());
  ASSERT_FALSE(r.degradation.events.empty());
  EXPECT_EQ(r.degradation.events[0].from_level, kDegradeFull);
  EXPECT_NE(r.degradation.events[0].reason.find("injected"), std::string::npos);
  EXPECT_GE(r.report.counters.at("fault.fired"), 1u);
}

// ---------------------------------------------------------------------------
// Tight budgets: degrade, never crash
// ---------------------------------------------------------------------------

TEST(TightBudget, NodeCeilingStillYieldsVerifiedNetwork) {
  ResourceBudget b;
  b.node_ceiling = 2000;
  const SynthesisResult r = run_circuit("rd84", b);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.network.count_luts(), 0);
  EXPECT_EQ(r.degradation.per_output_level.size(), 4u);
  for (int level : r.degradation.per_output_level) {
    EXPECT_GE(level, kDegradeFull);
    EXPECT_LE(level, kDegradeStructural);
  }
}

TEST(TightBudget, TimeBudgetStillYieldsVerifiedNetwork) {
  ResourceBudget b;
  b.time_ms = 1.0;  // brutally tight: forces the ladder to its floor
  const SynthesisResult r = run_circuit("rd84", b);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.network.count_luts(), 0);
}

TEST(TightBudget, DepthBudgetStillYieldsVerifiedNetwork) {
  ResourceBudget b;
  b.max_depth = 1;
  const SynthesisResult r = run_circuit("rd73", b);
  EXPECT_TRUE(r.verified);
}

TEST(TightBudget, UnlimitedBudgetDoesNotDegrade) {
  const SynthesisResult r = run_circuit("rd73");
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.degradation.degraded());
  EXPECT_EQ(r.degradation.final_level, kDegradeFull);
  for (int level : r.degradation.per_output_level) EXPECT_EQ(level, kDegradeFull);
}

// Standalone decompose() (no synthesizer, no explicit governor) installs its
// own unlimited governor, so injected faults recover through the same ladder.
TEST_F(FaultInjection, StandaloneDecomposeRecovers) {
  bdd::Manager m;
  const circuits::Benchmark bench = circuits::build("rd73", m);
  std::vector<Isf> spec;
  for (const Bdd& f : bench.outputs) spec.push_back(Isf::completely_specified(f));
  std::vector<int> pis;
  for (int i = 0; i < bench.num_inputs; ++i) pis.push_back(i);
  fault::configure("decomp.boundset@1:budget");
  DecomposeStats stats;
  const net::LutNetwork net = decompose(spec, pis, preset_mulop_dc(5).decomp, &stats);
  EXPECT_GT(net.count_luts(), 0);
  EXPECT_EQ(stats.output_degrade_level.size(), spec.size());
}

}  // namespace
}  // namespace mfd
