// FPGA mapping flow on benchmark functions: compare mulopII (no don't-care
// exploitation) with mulop-dc (the paper's 3-step assignment) on any of the
// built-in benchmark rows.
//
//   ./build/examples/fpga_flow [circuit...]      (default: a small selection)
#include <cstdio>
#include <string>
#include <vector>

#include "core/synthesizer.h"

int main(int argc, char** argv) {
  using namespace mfd;

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"rd84", "z4ml", "5xp1", "clip", "alu2", "misex1"};

  std::printf("%-8s %5s %5s | %8s | %8s %8s | %6s\n", "circuit", "in", "out",
              "mulopII", "mulop-dc", "dcII", "time");
  std::printf("--------------------------------------------------------------\n");
  for (const std::string& name : names) {
    bdd::Manager m_base, m_dc;
    const auto bench_base = circuits::build(name, m_base);
    const auto bench_dc = circuits::build(name, m_dc);

    const auto base = Synthesizer(preset_mulopII(5)).run(bench_base);
    const auto dc = Synthesizer(preset_mulop_dc(5)).run(bench_dc);

    std::printf("%-8s %5d %5zu | %8d | %8d %8d | %5.2fs%s\n", name.c_str(),
                bench_dc.num_inputs, bench_dc.outputs.size(), base.clb_greedy.num_clbs,
                dc.clb_greedy.num_clbs, dc.clb_matching.num_clbs,
                base.seconds + dc.seconds,
                base.verified && dc.verified ? "" : "  UNVERIFIED!");
  }
  std::printf("\ncolumns: mulopII = DCs forced to 0; mulop-dc = 3-step DC\n");
  std::printf("assignment, first-fit CLB merge; dcII = matching-based merge.\n");
  return 0;
}
