# Empty compiler generated dependencies file for ablation_total_code.
# This may be replaced when dependencies are built.
