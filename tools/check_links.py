#!/usr/bin/env python3
"""Check that every relative markdown link in the repo resolves.

Scans all tracked *.md files, extracts [text](target) links, and verifies
that each non-URL target exists on disk relative to the linking file
(anchors are stripped; pure-anchor links are checked against the headings
of the file itself). Exits non-zero listing every broken link.

Zero dependencies; run from anywhere inside the repo:
    python3 tools/check_links.py
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (good enough for ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def repo_root() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def markdown_files(root: str):
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            capture_output=True, text=True, check=True, cwd=root,
        )
        files = [f for f in out.stdout.splitlines() if f]
        if files:
            return files
    except (subprocess.CalledProcessError, FileNotFoundError):
        pass
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in (".git", "build")]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(found)


def anchors_of(path: str):
    with open(path, encoding="utf-8") as fh:
        return {slugify(h) for h in HEADING_RE.findall(fh.read())}


def main() -> int:
    root = repo_root()
    broken = []
    for rel in markdown_files(root):
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            target, _, anchor = target.partition("#")
            if not target:  # same-file anchor
                if anchor and slugify(anchor) not in anchors_of(path):
                    broken.append(f"{rel}: missing anchor #{anchor}")
                continue
            dest = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(dest):
                broken.append(f"{rel}: missing target {target}")
            elif anchor and dest.endswith(".md"):
                # §-style anchors ("algorithms.md#8") aren't headings; only
                # verify anchors that look like heading slugs.
                slug = slugify(anchor)
                if re.search(r"[a-z]", slug) and slug not in anchors_of(dest):
                    broken.append(f"{rel}: missing anchor {target}#{anchor}")
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"all markdown links resolve across {len(markdown_files(root))} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
