#include "cache/signature.h"

namespace mfd::cache {
namespace {

/// The Mersenne prime 2^61 - 1.
constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

/// a * b mod p for a, b < p, via the Mersenne folding identity
/// (x mod 2^61-1 == (x & p) + (x >> 61), applied until x < 2^61).
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
  std::uint64_t r = static_cast<std::uint64_t>(t & kP) +
                    static_cast<std::uint64_t>(t >> 61);
  r = (r & kP) + (r >> 61);
  if (r >= kP) r -= kP;
  return r;
}

std::uint64_t addmod(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = a + b;  // both < p < 2^61, no overflow
  if (r >= kP) r -= kP;
  return r;
}

/// 1 - h mod p (the signature of the complemented function).
std::uint64_t complement(std::uint64_t h) { return addmod(1, kP - h); }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Fixed evaluation point: the value substituted for variable `var` under
/// `salt`. Deterministic across processes (pure arithmetic in constants) and
/// kept away from the degenerate values 0 and 1.
std::uint64_t point_of(std::uint32_t var, std::uint64_t salt) {
  return 2 + splitmix64(salt ^ (std::uint64_t{var} * 0xD1B54A32D192ED03ull)) %
                 (kP - 2);
}

constexpr std::uint64_t kSalt0 = 0x5CA1AB1ECAFEF00Dull;
constexpr std::uint64_t kSalt1 = 0x0DDBA11DEADBEA7Full;

}  // namespace

void SignatureComputer::refresh_epoch() {
  const std::uint64_t gc = m_->stats().gc_runs;
  if (gc != seen_gc_runs_) {
    // GC may have recycled node indices; every memo entry is suspect.
    memo_.clear();
    seen_gc_runs_ = gc;
  }
}

std::pair<std::uint64_t, std::uint64_t> SignatureComputer::hash_regular(
    bdd::Edge regular) {
  if (m_->is_terminal(regular)) return {1, 1};  // the constant ONE
  const auto it = memo_.find(regular.bits());
  if (it != memo_.end()) return it->second;

  // Recursion depth is bounded by the number of BDD levels, which is small
  // (tens to low hundreds of variables) — no explicit stack needed.
  const std::uint32_t var = m_->node_var(regular);
  const bdd::Edge lo = m_->node_lo(regular);
  const bdd::Edge hi = m_->node_hi(regular);  // stored then-edge: regular
  const auto lo_h = hash_regular(lo.regular());
  const auto hi_h = hash_regular(hi.regular());
  const std::uint64_t lo0 = lo.is_complemented() ? complement(lo_h.first) : lo_h.first;
  const std::uint64_t lo1 = lo.is_complemented() ? complement(lo_h.second) : lo_h.second;

  const std::uint64_t r0 = point_of(var, kSalt0);
  const std::uint64_t r1 = point_of(var, kSalt1);
  // H = r * H(hi) + (1 - r) * H(lo), the Shannon expansion of the
  // multilinear extension at the evaluation point.
  const std::pair<std::uint64_t, std::uint64_t> h = {
      addmod(mulmod(r0, hi_h.first), mulmod(complement(r0), lo0)),
      addmod(mulmod(r1, hi_h.second), mulmod(complement(r1), lo1))};
  memo_.emplace(regular.bits(), h);
  return h;
}

FunctionSignature SignatureComputer::of(bdd::Edge e) {
  refresh_epoch();
  const auto h = hash_regular(e.regular());
  if (e.is_complemented())
    return FunctionSignature{complement(h.first), complement(h.second)};
  return FunctionSignature{h.first, h.second};
}

FunctionSignature SignatureComputer::of_normalized(bdd::Edge e, bool* flipped) {
  const FunctionSignature pos = of(e);
  const FunctionSignature neg{complement(pos.w0), complement(pos.w1)};
  const bool flip = neg < pos;
  if (flipped != nullptr) *flipped = flip;
  return flip ? neg : pos;
}

}  // namespace mfd::cache
