#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testlib.h"
#include "util/coloring.h"
#include "util/graph.h"
#include "util/matching.h"
#include "util/rng.h"

namespace mfd {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

TEST(Graph, EdgesAndDegrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 2);  // duplicate ignored
  g.add_edge(3, 3);  // self loop ignored
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 0);
}

TEST(Graph, Complement) {
  Graph g(4);
  g.add_edge(0, 1);
  const Graph c = g.complement();
  EXPECT_FALSE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(0, 2));
  EXPECT_EQ(c.num_edges(), 4 * 3 / 2 - 1);
}

// ---------------------------------------------------------------------------
// Coloring
// ---------------------------------------------------------------------------

TEST(Coloring, EmptyGraphOneColor) {
  Graph g(5);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 1);
}

TEST(Coloring, CompleteGraphNeedsN) {
  Graph g(6);
  for (int u = 0; u < 6; ++u)
    for (int v = u + 1; v < 6; ++v) g.add_edge(u, v);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 6);
}

TEST(Coloring, OddCycleNeedsThree) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 3);
}

TEST(Coloring, BipartiteNeedsTwo) {
  Graph g(8);
  for (int u = 0; u < 4; ++u)
    for (int v = 4; v < 8; ++v) g.add_edge(u, v);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 2);
}

class ColoringRandom : public ::testing::TestWithParam<int> {};

TEST_P(ColoringRandom, MatchesBruteForceOnSmallGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = rng.range(1, 9);
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.chance(2, 5)) g.add_edge(u, v);
  const Coloring c = color_graph(g);
  ASSERT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, test::brute_force_chromatic_number(g))
      << "graph with " << n << " vertices, seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringRandom, ::testing::Range(0, 40));

TEST(Coloring, LargeGraphStillProper) {
  Rng rng(123);
  Graph g(120);
  for (int u = 0; u < 120; ++u)
    for (int v = u + 1; v < 120; ++v)
      if (rng.chance(1, 10)) g.add_edge(u, v);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_GE(c.num_colors, 2);
}

// ---------------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------------

TEST(Matching, PathGraph) {
  Graph g(4);  // path 0-1-2-3: perfect matching {01, 23}
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto mate = maximum_matching(g);
  EXPECT_TRUE(matching_is_valid(g, mate));
  EXPECT_EQ(matching_size(mate), 2);
}

TEST(Matching, OddCycleLeavesOneExposed) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  const auto mate = maximum_matching(g);
  EXPECT_TRUE(matching_is_valid(g, mate));
  EXPECT_EQ(matching_size(mate), 2);
}

TEST(Matching, BlossomRequired) {
  // Classic case: triangle with a pendant path; greedy matching on the
  // triangle first would block the augmenting path through the blossom.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // blossom
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto mate = maximum_matching(g);
  EXPECT_TRUE(matching_is_valid(g, mate));
  EXPECT_EQ(matching_size(mate), 3);
}

TEST(Matching, Petersen) {
  // The Petersen graph has a perfect matching (5 pairs) and plenty of odd
  // cycles to exercise blossom contraction.
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);          // outer cycle
    g.add_edge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    g.add_edge(i, 5 + i);                // spokes
  }
  const auto mate = maximum_matching(g);
  EXPECT_TRUE(matching_is_valid(g, mate));
  EXPECT_EQ(matching_size(mate), 5);
}

class MatchingRandom : public ::testing::TestWithParam<int> {};

TEST_P(MatchingRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const int n = rng.range(2, 9);
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.chance(1, 2)) g.add_edge(u, v);
  const auto mate = maximum_matching(g);
  ASSERT_TRUE(matching_is_valid(g, mate));
  EXPECT_EQ(matching_size(mate), test::brute_force_max_matching(g))
      << "seed " << GetParam() << ", n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingRandom, ::testing::Range(0, 60));

TEST(Matching, EmptyAndSingletonGraphs) {
  EXPECT_EQ(matching_size(maximum_matching(Graph(0))), 0);
  EXPECT_EQ(matching_size(maximum_matching(Graph(1))), 0);
  Graph g(3);  // no edges
  const auto mate = maximum_matching(g);
  EXPECT_TRUE(matching_is_valid(g, mate));
  EXPECT_EQ(matching_size(mate), 0);
}

TEST(Matching, CompleteGraphsPairEveryone) {
  for (const int n : {2, 4, 6, 7}) {
    Graph g(n);
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
    const auto mate = maximum_matching(g);
    EXPECT_TRUE(matching_is_valid(g, mate));
    EXPECT_EQ(matching_size(mate), n / 2);
  }
}

TEST(Coloring, SingleVertex) {
  Graph g(1);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 1);
}

TEST(Coloring, CrownGraphNeedsExactSearch) {
  // Crown graph S_3^0 (K3,3 minus a perfect matching) is 2-chromatic but
  // greedy orders can use 3 colors; the exact refinement must find 2.
  Graph g(6);
  for (int u = 0; u < 3; ++u)
    for (int v = 0; v < 3; ++v)
      if (u != v) g.add_edge(u, 3 + v);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 2);
}

}  // namespace
}  // namespace mfd
