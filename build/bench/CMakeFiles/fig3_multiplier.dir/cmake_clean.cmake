file(REMOVE_RECURSE
  "CMakeFiles/fig3_multiplier.dir/fig3_multiplier.cpp.o"
  "CMakeFiles/fig3_multiplier.dir/fig3_multiplier.cpp.o.d"
  "fig3_multiplier"
  "fig3_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
