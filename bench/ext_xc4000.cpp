// Extension experiment (beyond the paper): the same mulop-dc flow targeting
// the Xilinx XC4000 (two independent 4-input generators + 3-input combiner
// per CLB), synthesized with n_LUT = 4. Reported next to the XC3000 numbers
// so the target comparison is apples-to-apples per circuit.
#include <map>

#include "bench_common.h"
#include "map/clb.h"

namespace {

struct Row {
  int xc3000 = 0;       // n_LUT = 5, matching merge
  int xc4000 = 0;       // n_LUT = 4, H-absorption + pairing
  int xc4000_luts = 0;
  int h_triples = 0;
};

std::map<std::string, Row> g_rows;

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    Row row;
    row.xc3000 = mfd::bench::run_flow(name, mfd::preset_mulop_dc(5), "mulop-dc").clb_matching;

    mfd::bdd::Manager m;
    const auto bench = mfd::circuits::build(name, m);
    const auto r4 = mfd::Synthesizer(mfd::preset_mulop_dc(4)).run(bench);
    const mfd::map::Xc4000Result packed = mfd::map::pack_xc4000(r4.network);
    row.xc4000 = packed.num_clbs;
    row.xc4000_luts = packed.num_luts;
    row.h_triples = packed.h_triples;
    g_rows[name] = row;
    state.counters["xc3000"] = row.xc3000;
    state.counters["xc4000"] = row.xc4000;
  }
}

void print_table() {
  std::printf("\nExtension: XC4000 target (n_LUT = 4, H-block absorption)\n");
  std::printf("vs the paper's XC3000 target (n_LUT = 5, matching merge).\n\n");
  std::printf("%-8s | %7s | %7s %6s %8s\n", "circuit", "XC3000", "XC4000", "LUTs",
               "Htriples");
  mfd::bench::print_rule(48);
  long t3 = 0, t4 = 0;
  for (const auto& [name, row] : g_rows) {
    t3 += row.xc3000;
    t4 += row.xc4000;
    std::printf("%-8s | %7d | %7d %6d %8d\n", name.c_str(), row.xc3000, row.xc4000,
                 row.xc4000_luts, row.h_triples);
  }
  mfd::bench::print_rule(48);
  std::printf("%-8s | %7ld | %7ld\n", "total", t3, t4);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> circuits{"5xp1", "9sym", "alu2",   "clip",  "count",
                                          "f51m", "misex1", "rd73", "rd84",  "sao2",
                                          "vg2",  "z4ml"};
  for (const std::string& name : circuits)
    benchmark::RegisterBenchmark(("xc4000/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
