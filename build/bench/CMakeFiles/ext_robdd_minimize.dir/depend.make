# Empty dependencies file for ext_robdd_minimize.
# This may be replaced when dependencies are built.
