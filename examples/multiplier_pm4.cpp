// The paper's Figure 3 experiment as a standalone example: the partial
// multiplier pm_n (partial products as inputs) synthesized into two-input
// gates, with and without don't-care exploitation, against the Wallace-tree
// reduction [23]. The paper: without the DC assignment concept, pm_4 needs
// ~75% more gates.
//
//   ./build/examples/multiplier_pm4 [n]   (default n = 4)
#include <cstdio>
#include <cstdlib>

#include "core/synthesizer.h"
#include "net/baselines.h"

int main(int argc, char** argv) {
  using namespace mfd;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  if (n < 2) {
    std::fprintf(stderr, "n must be >= 2\n");
    return 2;
  }

  SynthesisResult with_dc, without_dc;
  {
    bdd::Manager m;
    with_dc = Synthesizer(preset_mulop_dc(2)).run(circuits::partial_multiplier(m, n));
  }
  {
    bdd::Manager m;
    without_dc = Synthesizer(preset_mulopII(2)).run(circuits::partial_multiplier(m, n));
  }
  const net::LutNetwork wallace = net::wallace_tree_pp(n);

  std::printf("pm_%d (the %d partial products are inputs; %d product bits out)\n\n",
              n, n * n, 2 * n);
  std::printf("%-26s %8s %8s\n", "", "gates", "depth");
  std::printf("%-26s %8d %8d   (verified: %s)\n", "mulop-dc",
              with_dc.network.count_gates(), with_dc.network.depth(),
              with_dc.verified ? "yes" : "NO");
  std::printf("%-26s %8d %8d   (verified: %s)\n", "mulop-dc, DCs := 0",
              without_dc.network.count_gates(), without_dc.network.depth(),
              without_dc.verified ? "yes" : "NO");
  std::printf("%-26s %8d %8d\n", "Wallace-tree reduction", wallace.count_gates(),
              wallace.depth());
  const double overhead =
      100.0 * (without_dc.network.count_gates() - with_dc.network.count_gates()) /
      std::max(1, with_dc.network.count_gates());
  std::printf("\nno-DC overhead: %+.0f%% gates (paper: ~+75%% at n = 4)\n", overhead);
  return with_dc.verified && without_dc.verified ? 0 : 1;
}
