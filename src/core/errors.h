// Typed error taxonomy of the synthesis flow.
//
// Every error the library throws derives from `mfd::Error` (itself a
// `std::runtime_error`, so legacy catch sites keep working):
//
//   Error
//    +- ParseError       malformed PLA/BLIF input (carries file + 1-based line)
//    +- BddError         violated BDD-level precondition or induced allocation
//    |                   failure (e.g. restrict_to with an empty care set)
//    +- BudgetExceeded   a ResourceGovernor budget tripped (carries which
//    |                   resource and where); recoverable by design — the
//    |                   decomposition driver catches it and walks the
//    |                   degradation ladder (see docs/ROBUSTNESS.md)
//    +- VerifyError      the synthesized network failed exact verification
//                        (carries circuit, phase, and active degradation
//                        level so table runs are attributable)
//
// This header is dependency-free (standard library only) so every layer —
// bdd, util, sym, io, decomp — can throw typed errors without cycles.
#pragma once

#include <stdexcept>
#include <string>

namespace mfd {

/// Root of the typed error taxonomy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed PLA/BLIF (or fault-injection spec) input. Always carries the
/// source name and the 1-based line number of the offending line (line 0 =
/// whole-input error, e.g. a missing mandatory header).
class ParseError : public Error {
 public:
  ParseError(std::string file, int line, const std::string& message)
      : Error(file + ":" + std::to_string(line) + ": " + message),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_ = 0;
};

/// Violated precondition or induced failure inside the BDD substrate.
class BddError : public Error {
 public:
  using Error::Error;
};

/// A resource budget tripped. The decomposition driver treats this (and
/// std::bad_alloc) as the signal to degrade; anything escaping to the caller
/// means even degradation could not absorb the fault.
class BudgetExceeded : public Error {
 public:
  enum class Resource { kTime, kNodes, kOps, kDepth, kInjected };

  static const char* resource_name(Resource r) {
    switch (r) {
      case Resource::kTime: return "time";
      case Resource::kNodes: return "nodes";
      case Resource::kOps: return "ops";
      case Resource::kDepth: return "depth";
      case Resource::kInjected: return "injected";
    }
    return "?";
  }

  BudgetExceeded(Resource resource, std::string where, const std::string& detail)
      : Error(std::string("budget exceeded [") + resource_name(resource) + "] at " +
              where + ": " + detail),
        resource_(resource),
        where_(std::move(where)) {}

  Resource resource() const { return resource_; }
  /// The subsystem/phase that tripped the budget (e.g. "bdd.mk").
  const std::string& where() const { return where_; }

 private:
  Resource resource_;
  std::string where_;
};

/// Exact verification of a synthesized network failed. Carries the circuit
/// name, the phase, and the degradation-ladder level that was active, so a
/// failure in a long table1/table2 sweep is attributable to its run.
class VerifyError : public Error {
 public:
  VerifyError(std::string circuit, std::string phase, int degrade_level,
              const std::string& detail)
      : Error("verification failed [circuit=" + (circuit.empty() ? "?" : circuit) +
              " phase=" + phase + " degrade_level=" + std::to_string(degrade_level) +
              "]: " + detail),
        circuit_(std::move(circuit)),
        phase_(std::move(phase)),
        degrade_level_(degrade_level) {}

  const std::string& circuit() const { return circuit_; }
  const std::string& phase() const { return phase_; }
  int degrade_level() const { return degrade_level_; }

 private:
  std::string circuit_;
  std::string phase_;
  int degrade_level_ = 0;
};

}  // namespace mfd
