#include "sym/minimize.h"

#include "sym/symmetrize.h"
#include "sym/symmetry.h"

namespace mfd {

MinimizeResult minimize_robdd_size(const Isf& f, std::vector<int> vars) {
  bdd::Manager& m = *f.manager();
  if (vars.empty()) vars = f.support();

  MinimizeResult result;
  result.size_before = m.dag_size(f.extension_zero().id());

  std::vector<Isf> fns{f};
  const SymmetrizeStats stats = symmetrize(fns, vars);
  result.symmetries_created = stats.ne_applied + stats.e_applied;

  // Candidates: the symmetrized extension (spending remaining DCs via
  // restrict), and the two direct extensions of the original — creating a
  // symmetry is not always worth its care commitments, so keep the best.
  bdd::Manager& m2 = *f.manager();
  const bdd::Bdd candidates[] = {
      fns[0].is_completely_specified() ? fns[0].on() : fns[0].extension_small(),
      f.extension_small(),
      f.extension_zero(),
  };
  result.function = candidates[0];
  for (const bdd::Bdd& cand : candidates)
    if (m2.dag_size(cand.id()) < m2.dag_size(result.function.id()))
      result.function = cand;

  // Order the result well: symmetric groups sifted as blocks.
  if (!vars.empty() && m.live_node_count() < 200000) {
    const std::vector<Isf> done{Isf::completely_specified(result.function)};
    m.sift_symmetric(symmetry_groups(done, vars));
  }
  result.size_after = m.dag_size(result.function.id());
  return result;
}

}  // namespace mfd
