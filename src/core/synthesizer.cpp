#include "core/synthesizer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "core/errors.h"
#include "net/simulate.h"

namespace mfd {
namespace {

/// Value stored in the flow-result cache: the winning network of the whole
/// decompose portfolio plus its stats. Verification and CLB packing are
/// re-run live on a hit — they are cheap relative to decomposition and keep
/// the `verified` flag honest.
struct FlowValue {
  net::LutNetwork network;
  DecomposeStats stats;
};

std::size_t flow_value_bytes(const FlowValue& v) {
  std::size_t bytes = sizeof(FlowValue);
  for (int i = 0; i < v.network.num_luts(); ++i) {
    const net::Lut& lut = v.network.lut(i);
    bytes += sizeof(net::Lut) + lut.inputs.size() * sizeof(int) +
             lut.table.size() / 8 + 1;
  }
  bytes += v.stats.output_degrade_level.size() * sizeof(int);
  return bytes;
}

void append_u64(std::vector<std::uint64_t>& key, std::uint64_t w) {
  key.push_back(w);
}

/// Key of one whole-flow decompose result: spec signatures (on and care per
/// output, complement kept distinct — f and !f have different networks),
/// primary-input variables, the manager's current variable order (the search
/// is seeded from it), and a fingerprint of every option that can change the
/// winning network. --jobs and trace are deliberately excluded: the flow is
/// invariant under both (docs/PARALLELISM.md), so runs at different thread
/// counts share entries.
std::vector<std::uint64_t> flow_key(cache::SignatureComputer& sig,
                                    const std::vector<Isf>& spec,
                                    const std::vector<int>& pi_vars,
                                    const bdd::Manager& m,
                                    const SynthesisOptions& opts) {
  std::vector<std::uint64_t> key;
  key.reserve(4 + spec.size() * 4 + pi_vars.size() + 24);
  append_u64(key, 3);  // key-space tag: flow results
  append_u64(key, spec.size());
  for (const Isf& f : spec) {
    const cache::FunctionSignature on = sig.of(f.on().id());
    const cache::FunctionSignature care = sig.of(f.care().id());
    append_u64(key, on.w0);
    append_u64(key, on.w1);
    append_u64(key, care.w0);
    append_u64(key, care.w1);
  }
  append_u64(key, pi_vars.size());
  for (int v : pi_vars) append_u64(key, static_cast<std::uint64_t>(v));
  append_u64(key, static_cast<std::uint64_t>(m.num_vars()));
  for (int v : m.current_order()) append_u64(key, static_cast<std::uint64_t>(v));
  const DecomposeOptions& d = opts.decomp;
  append_u64(key, static_cast<std::uint64_t>(d.lut_inputs));
  std::uint64_t flags = 0;
  flags |= d.exploit_dc ? 1u : 0u;
  flags |= d.dc_symmetrize ? 2u : 0u;
  flags |= d.dc_joint ? 4u : 0u;
  flags |= d.dc_per_output ? 8u : 0u;
  flags |= d.share_functions ? 16u : 0u;
  flags |= d.total_minimal_code ? 32u : 0u;
  flags |= d.symmetric_sift ? 64u : 0u;
  flags |= opts.portfolio_bound_extra ? 128u : 0u;
  append_u64(key, flags);
  append_u64(key, static_cast<std::uint64_t>(d.max_bound_extra));
  append_u64(key, static_cast<std::uint64_t>(d.boundset.improvement_passes));
  append_u64(key, static_cast<std::uint64_t>(d.boundset.max_evaluations));
  append_u64(key, d.boundset.seed);
  append_u64(key, d.seed);
  append_u64(key, static_cast<std::uint64_t>(d.symmetrize_max_vars));
  append_u64(key, static_cast<std::uint64_t>(d.sift_max_live_nodes));
  append_u64(key, static_cast<std::uint64_t>(d.shannon_support_limit));
  return key;
}

}  // namespace

SynthesisResult Synthesizer::run(std::vector<Isf> spec,
                                 const std::vector<int>& pi_vars,
                                 const std::string& circuit) const {
  const auto start = std::chrono::steady_clock::now();
  // One run == one observability epoch: the report in the result covers
  // exactly this synthesis (including both portfolio entries).
  obs::reset();
  obs::ScopedPhase phase("synthesize");
  SynthesisResult result;

  // One governor covers the whole run (both portfolio entries, verification,
  // packing); decompose() binds it to the BDD manager itself.
  ResourceGovernor gov(opts_.budget);
  ResourceGovernor::Scope gov_scope(gov);

  bdd::Manager* mgr = spec.empty() ? nullptr : spec.front().manager();
  const std::vector<Isf> original = spec;  // keep for verification

  // Runs the decompose portfolio (the expensive part of the flow) and
  // returns the winning network + stats. Factored out so the flow-result
  // cache (docs/CACHING.md) can recompute it for the debug cross-check.
  const auto run_portfolio = [&]() {
    FlowValue out;
    out.network = decompose(spec, pi_vars, opts_.decomp, &out.stats);

    // The portfolio's second entry is pure optimization: skip it when the
    // budget already forced degradation or the deadline has passed — it
    // would only walk the ladder again and discard the work.
    if (opts_.decomp.max_bound_extra > 0 && opts_.portfolio_bound_extra &&
        !gov.report().degraded() && !gov.deadline_expired()) {
      DecomposeOptions conservative = opts_.decomp;
      conservative.max_bound_extra = 0;
      DecomposeStats alt_stats;
      net::LutNetwork alt = decompose(spec, pi_vars, conservative, &alt_stats);
      obs::add("synth.portfolio_runs");
      if (alt.count_luts() < out.network.count_luts()) {
        out.network = std::move(alt);
        out.stats = alt_stats;
        obs::add("synth.portfolio_conservative_won");
      }
    } else if (opts_.decomp.max_bound_extra > 0 && opts_.portfolio_bound_extra) {
      obs::add("synth.portfolio_skipped_budget");
    }
    return out;
  };

  // Flow-result cache: a repeat synthesis of the same spec under the same
  // options returns the memoized winning network. memo_safe() keeps the cache
  // out of budgeted/degraded runs (rule 2 of the determinism contract); a hit
  // leaves the manager untouched (no auxiliary variables are added — see
  // docs/CACHING.md for the caveat), while verification and packing below run
  // live either way.
  const bool flow_memo =
      mgr != nullptr && cache::config().flow_results && cache::memo_safe(&gov);
  std::vector<std::uint64_t> key;
  std::shared_ptr<const FlowValue> hit;
  if (flow_memo) {
    cache::SignatureComputer sig(*mgr);
    key = flow_key(sig, spec, pi_vars, *mgr, opts_);
    hit = std::static_pointer_cast<const FlowValue>(cache::flow_cache().lookup(key));
  }

  try {
    if (hit != nullptr) {
      if (cache::config().cross_check) {
        const FlowValue live = run_portfolio();
        if (live.network.to_string() != hit->network.to_string()) {
          std::fprintf(stderr,
                       "mfd: cache cross-check FAILED: flow-result hit differs "
                       "from recomputation (circuit=%s)\n",
                       circuit.c_str());
          std::abort();
        }
      }
      result.network = hit->network;
      result.stats = hit->stats;
    } else {
      FlowValue live = run_portfolio();
      // Store only clean results: a degraded or deadline-expired run is
      // timing-dependent and must never be served to a later lookup.
      if (flow_memo && !gov.report().degraded() && !gov.deadline_expired()) {
        auto value = std::make_shared<const FlowValue>(live);
        cache::flow_cache().insert(key, value, flow_value_bytes(*value));
      }
      result.network = std::move(live.network);
      result.stats = std::move(live.stats);
    }
  } catch (const std::bad_alloc&) {
    // Only an allocation fault injected into the ladder's suspended floor
    // can reach here; surface it typed so callers never see a raw bad_alloc.
    throw BddError("allocation failure escaped the degradation ladder" +
                   (circuit.empty() ? std::string() : " (circuit=" + circuit + ")"));
  }
  spec.clear();

  // The per-output levels of the *winning* network (the governor's snapshot
  // tracks the most recent decompose call, which may be the discarded one).
  gov.set_per_output_levels(result.stats.output_degrade_level);

  if (opts_.verify) {
    // Verification is exactness, not optimization: it runs with budget
    // enforcement suspended so a tight deadline can never abort it.
    ResourceGovernor::SuspendScope suspend(gov);
    obs::ScopedPhase verify_phase("verify");
    std::string error;
    if (!net::check_exact(result.network, original, pi_vars, &error))
      throw VerifyError(circuit, "verify", gov.degrade_level(), error);
    result.verified = true;
  }

  {
    obs::ScopedPhase pack_phase("pack");
    result.clb_greedy = map::pack_greedy(result.network, opts_.clb);
    result.clb_matching = map::pack_matching(result.network, opts_.clb);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.degradation = gov.report();

  obs::gauge_set("net.luts", result.network.count_luts());
  obs::gauge_set("net.gates", result.network.count_gates());
  obs::gauge_set("net.depth", result.network.depth());
  obs::gauge_set("synth.seconds", result.seconds);
  if (mgr != nullptr) mgr->publish_stats();
  cache::publish_stats();
  obs::gauge_set("cache.governor_bytes", static_cast<double>(gov.cache_bytes_charged()));
  result.report = obs::collect();
  return result;
}

SynthesisResult Synthesizer::run(const circuits::Benchmark& bench) const {
  std::vector<Isf> spec;
  spec.reserve(bench.outputs.size());
  for (const bdd::Bdd& f : bench.outputs) spec.push_back(Isf::completely_specified(f));
  std::vector<int> pi_vars(static_cast<std::size_t>(bench.num_inputs));
  for (int i = 0; i < bench.num_inputs; ++i) pi_vars[static_cast<std::size_t>(i)] = i;
  return run(std::move(spec), pi_vars, bench.name);
}

SynthesisOptions preset_mulop_dc(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  return opts;
}

SynthesisOptions preset_mulopII(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  opts.decomp.exploit_dc = false;
  return opts;
}

SynthesisOptions preset_noshare_nodc(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  opts.decomp.exploit_dc = false;
  opts.decomp.share_functions = false;
  return opts;
}

}  // namespace mfd
