// Self-contained reproducer files for fuzz failures (docs/FUZZING.md).
//
// A reproducer is a PLA file (type fr: exact care-set preservation, see
// io::pla_from_isfs_exact) with three harness directives prepended:
//
//   .mfdrepro 1          # format version
//   .seed 18446744073709551615   # the oracle option-point seed
//   .note <free text>    # optional triage note (one line)
//
// Everything after the directives is standard espresso PLA, so the spec part
// of a reproducer opens in any PLA tool. Replaying = parse, rebuild the
// TableSpec, re-run the oracle at the recorded seed. Reproducers are loaded
// by `mfd_fuzz --repro`, by every bench binary's `--repro` flag, and by the
// regression corpus test over tests/fuzz_corpus/.
#pragma once

#include <cstdint>
#include <string>

#include "verify/oracle.h"
#include "verify/specgen.h"

namespace mfd::verify {

struct Repro {
  TableSpec spec;
  std::uint64_t oracle_seed = 0;
  std::string note;  // single line, informational
};

/// Serializes to reproducer text (directives + exact-care PLA).
std::string write_repro(const Repro& repro);

/// Parses reproducer text. Throws mfd::ParseError on malformed input
/// (missing .mfdrepro/.seed, unsupported version, bad PLA body).
Repro parse_repro(const std::string& text, const std::string& filename = "<repro>");

/// Re-runs the oracle on the reproducer's spec at its recorded seed.
/// Returns the oracle verdict: ok == true means the failure no longer
/// reproduces (i.e. the bug is fixed — what the regression corpus asserts).
OracleResult replay_repro(const Repro& repro, const OracleOptions& opts = {});

/// Reads `path` and replays it. Throws mfd::Error if the file cannot be
/// read, mfd::ParseError if it is malformed.
OracleResult replay_repro_file(const std::string& path, const OracleOptions& opts = {});

}  // namespace mfd::verify
