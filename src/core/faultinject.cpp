#include "core/faultinject.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "core/budget.h"
#include "core/errors.h"
#include "obs/obs.h"

namespace mfd::fault {
namespace {

enum class Kind { kBudget, kAlloc, kTimeout, kCrash, kHang };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kBudget: return "budget";
    case Kind::kAlloc: return "alloc";
    case Kind::kTimeout: return "timeout";
    case Kind::kCrash: return "crash";
    case Kind::kHang: return "hang";
  }
  return "?";
}

struct Rule {
  std::string site;
  std::uint64_t at = 0;  // 1-based hit count
  Kind kind = Kind::kBudget;
};

// One instrumented site of the active configuration. Hit counting and the
// one-shot latches are atomics: when a site fires from several pool workers
// at once, fetch_add hands every hit a unique ordinal, so exactly one thread
// sees `ordinal == rule.at` and the rule trips exactly once — `site@k` stays
// deterministic regardless of interleaving. (`fired` is a belt-and-braces
// latch; the ordinal alone already guarantees uniqueness.)
struct Site {
  std::string name;
  std::atomic<std::uint64_t> hits{0};
  struct Armed {
    std::uint64_t at = 0;
    Kind kind = Kind::kBudget;
    std::atomic<bool> fired{false};
  };
  std::vector<std::unique_ptr<Armed>> rules;  // immutable after configure
};

// The active configuration, replaced wholesale by configure()/clear(). The
// mutex guards only the pointer swap; point_slow copies the shared_ptr and
// then counts lock-free, so a reconfigure can never free state under a
// running worker.
struct Config {
  std::vector<std::unique_ptr<Site>> sites;
};
std::mutex g_mutex;
std::shared_ptr<const Config> g_config;

std::shared_ptr<const Config> config_snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_config;
}

Kind parse_kind(const std::string& s, int rule_index) {
  if (s == "budget") return Kind::kBudget;
  if (s == "alloc") return Kind::kAlloc;
  if (s == "timeout") return Kind::kTimeout;
  if (s == "crash") return Kind::kCrash;
  if (s == "hang") return Kind::kHang;
  throw ParseError("<fault-spec>", rule_index,
                   "unknown fault kind '" + s +
                       "' (expected budget|alloc|timeout|crash|hang)");
}

/// Reports a firing to $MFD_FAULT_FIRED_FILE so the sweep supervisor can
/// latch the rule in the parent process (one-shot across forked children).
/// Raw O_APPEND write — it must still land when the very next statement is
/// std::abort(). No-op when the variable is unset (unsupervised runs).
void report_fired(const char* site, std::uint64_t ordinal, Kind kind) {
  const char* path = std::getenv("MFD_FAULT_FIRED_FILE");
  if (path == nullptr || path[0] == '\0') return;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;
  // Build the whole line, however long the site name is: a record truncated
  // here would be misparsed (or dropped) by the supervisor's latch pass and
  // the one-shot rule would fire again in the next child.
  std::string line;
  line.reserve(std::char_traits<char>::length(site) + 32);
  line += site;
  line += '@';
  line += std::to_string(static_cast<unsigned long long>(ordinal));
  line += ':';
  line += kind_name(kind);
  line += '\n';
  // Retry EINTR and short writes: a record dropped here un-latches a
  // one-shot rule (the supervisor would let it fire again in the next
  // child), so the write must be pushed to completion.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

std::vector<Rule> parse_spec(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  int index = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) {
      if (comma == spec.size()) break;
      continue;
    }
    ++index;
    const std::size_t at = part.find('@');
    if (at == std::string::npos || at == 0)
      throw ParseError("<fault-spec>", index,
                       "rule '" + part + "' is missing 'site@k' (e.g. bdd.mk@10)");
    Rule r;
    r.site = part.substr(0, at);
    std::string rest = part.substr(at + 1);
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      r.kind = parse_kind(rest.substr(colon + 1), index);
      rest.resize(colon);
    }
    if (rest.empty() || rest.find_first_not_of("0123456789") != std::string::npos)
      throw ParseError("<fault-spec>", index,
                       "rule '" + part + "' has a non-numeric hit count '" + rest + "'");
    r.at = std::strtoull(rest.c_str(), nullptr, 10);
    if (r.at == 0)
      throw ParseError("<fault-spec>", index,
                       "rule '" + part + "' has hit count 0 (counts are 1-based)");
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void init_from_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("MFD_FAULT_INJECT");
    if (env == nullptr || env[0] == '\0') return;
    // The env path must never throw: armed() is consulted from BDD hot
    // paths, and a malformed variable should not take the process down.
    try {
      configure(env);
    } catch (const ParseError& e) {
      std::fprintf(stderr, "MFD_FAULT_INJECT ignored: %s\n", e.what());
    }
  });
}

void point_slow(const char* site) {
  const std::shared_ptr<const Config> config = config_snapshot();
  if (config == nullptr) return;
  Site* found = nullptr;
  for (const std::unique_ptr<Site>& s : config->sites)
    if (s->name == site) {
      found = s.get();
      break;
    }
  if (found == nullptr) return;  // no rule mentions this site: don't count it
  const std::uint64_t ordinal = found->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  Kind fire = Kind::kBudget;
  bool fired = false;
  for (const auto& r : found->rules) {
    if (r->at != ordinal) continue;
    if (r->fired.exchange(true, std::memory_order_relaxed)) continue;
    fire = r->kind;
    fired = true;
    break;
  }
  if (!fired) return;
  obs::add("fault.fired");
  obs::add(std::string("fault.fired.") + site);
  report_fired(site, ordinal, fire);
  switch (fire) {
    case Kind::kBudget:
      throw BudgetExceeded(BudgetExceeded::Resource::kInjected, site,
                           "fault injection (kind=budget)");
    case Kind::kAlloc:
      throw std::bad_alloc();
    case Kind::kTimeout:
      if (ResourceGovernor* g = ResourceGovernor::current()) {
        g->force_expire();
        return;  // the next deadline check fires; this site continues
      }
      throw BudgetExceeded(BudgetExceeded::Resource::kInjected, site,
                           "fault injection (kind=timeout, no governor installed)");
    case Kind::kCrash:
      std::fprintf(stderr, "fault injection: crash at %s (hit %llu)\n", site,
                   static_cast<unsigned long long>(ordinal));
      std::abort();
    case Kind::kHang:
      std::fprintf(stderr, "fault injection: hang at %s (hit %llu)\n", site,
                   static_cast<unsigned long long>(ordinal));
      // Sleep far past any plausible watchdog, in short slices (a signal may
      // cut one nanosleep short; the loop keeps the hang honest until the
      // supervisor's SIGKILL escalation lands).
      for (int i = 0; i < 3600 * 20; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return;
  }
}

}  // namespace detail

void configure(const std::string& spec) {
  std::vector<Rule> rules = parse_spec(spec);  // may throw; old spec stays armed
  auto config = std::make_shared<Config>();
  for (Rule& r : rules) {
    Site* site = nullptr;
    for (const std::unique_ptr<Site>& s : config->sites)
      if (s->name == r.site) {
        site = s.get();
        break;
      }
    if (site == nullptr) {
      config->sites.push_back(std::make_unique<Site>());
      site = config->sites.back().get();
      site->name = r.site;
    }
    auto armed = std::make_unique<Site::Armed>();
    armed->at = r.at;
    armed->kind = r.kind;
    site->rules.push_back(std::move(armed));
  }
  const bool any = !config->sites.empty();
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = std::move(config);
  detail::g_armed.store(any, std::memory_order_relaxed);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = nullptr;
  detail::g_armed.store(false, std::memory_order_relaxed);
}

void latch_fired(const std::string& site, std::uint64_t at) {
  const std::shared_ptr<const Config> config = config_snapshot();
  if (config == nullptr) return;
  for (const std::unique_ptr<Site>& s : config->sites) {
    if (s->name != site) continue;
    for (const auto& r : s->rules)
      if (r->at == at) r->fired.store(true, std::memory_order_relaxed);
    return;
  }
}

std::vector<std::string> registered_sites() {
  return {"bdd.mk",         "bdd.alloc",       "bdd.ite",
          "util.coloring",  "sym.symmetrize",  "decomp.boundset",
          "decomp.dc_assign"};
}

std::vector<std::string> kind_names() {
  return {"budget", "alloc", "timeout", "crash", "hang"};
}

}  // namespace mfd::fault
