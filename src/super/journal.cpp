#include "super/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/errors.h"
#include "obs/json.h"
#include "super/jsonv.h"

namespace mfd::super {
namespace {

constexpr const char* kFormat = "mfd-sweep-journal";

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw Error("journal " + path + ": " + what + ": " + std::strerror(errno));
}

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail(path, "write failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Commits `content` to `path` atomically: temp file + fsync + rename +
/// directory fsync. A crash at any point leaves either the old file or the
/// new one, never a mix.
void commit_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail(tmp, "cannot create");
  write_all(fd, content, tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_fail(tmp, "fsync failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) io_fail(path, "rename failed");
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {  // best effort: some filesystems refuse directory fsync
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::string format_line(std::string_view payload) {
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", crc32(payload));
  std::string line = crc;
  line += ' ';
  line += payload;
  line += '\n';
  return line;
}

std::string record_payload(const JournalRecord& rec) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("row");
  w.key("key").value(rec.key);
  w.key("status").value(rec.status);
  w.key("attempts").value(rec.attempts);
  w.key("outcome").value(rec.outcome);
  w.key("reason").value(rec.reason);
  // The run document goes in *as a string*: escape/unescape round-trips the
  // exact bytes, so a resumed sweep republishes rows bit-identically.
  w.key("row").value(rec.row_json);
  w.end_object();
  return w.str();
}

/// Validates one journal line; returns false (with a reason) on any damage.
bool parse_line(std::string_view line, JsonValue* out, std::string* why) {
  if (line.size() < 10 || line[8] != ' ') {
    *why = "malformed line framing";
    return false;
  }
  std::uint32_t want = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[static_cast<std::size_t>(i)];
    want <<= 4;
    if (c >= '0' && c <= '9') want |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') want |= static_cast<std::uint32_t>(c - 'a' + 10);
    else {
      *why = "malformed CRC field";
      return false;
    }
  }
  const std::string_view payload = line.substr(9);
  if (crc32(payload) != want) {
    *why = "CRC mismatch";
    return false;
  }
  try {
    *out = parse_json(payload);
  } catch (const Error& e) {
    *why = e.what();
    return false;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Journal Journal::create(const std::string& path, const std::string& binary) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("header");
  w.key("format").value(kFormat);
  w.key("version").value(kVersion);
  w.key("binary").value(binary);
  w.end_object();
  commit_file(path, format_line(w.str()));
  Journal j;
  j.path_ = path;
  j.open_for_append();
  return j;
}

Journal Journal::open(const std::string& path, RecoveryInfo* info) {
  std::string content;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) io_fail(path, "cannot open for resume");
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
    if (std::ferror(f) != 0) {
      std::fclose(f);
      io_fail(path, "read failed");
    }
    std::fclose(f);
  }

  // Split into lines; a trailing chunk without '\n' is torn by definition
  // (append writes whole lines).
  struct Line {
    std::string_view text;
    bool complete;
  };
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back({std::string_view(content).substr(pos), false});
      break;
    }
    lines.push_back({std::string_view(content).substr(pos, nl - pos), true});
    pos = nl + 1;
  }
  if (lines.empty()) throw Error("journal " + path + ": empty file (no header)");

  // Header: created atomically, so any damage here is real corruption.
  JsonValue header;
  std::string why;
  if (!lines[0].complete || !parse_line(lines[0].text, &header, &why))
    throw Error("journal " + path + ": corrupt header (" +
                (lines[0].complete ? why : "torn line") + ")");
  if (header.string_or("type") != "header" || header.string_or("format") != kFormat)
    throw Error("journal " + path + ": not a " + kFormat + " file");
  if (header.int_or("version", -1) != kVersion)
    throw Error("journal " + path + ": version " +
                std::to_string(header.int_or("version", -1)) +
                " is not the supported version " + std::to_string(kVersion));

  Journal j;
  j.path_ = path;
  bool dropped = false;
  std::string dropped_line;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    JsonValue rec;
    const bool ok = lines[i].complete && parse_line(lines[i].text, &rec, &why);
    if (!ok) {
      if (i + 1 == lines.size()) {  // torn tail: at most one record is lost
        dropped = true;
        dropped_line = std::string(lines[i].text);
        break;
      }
      throw Error("journal " + path + ": corrupt record at line " +
                  std::to_string(i + 1) + " (" +
                  (lines[i].complete ? why : "torn line") +
                  ") before intact records — refusing to resume");
    }
    if (rec.string_or("type") != "row")
      throw Error("journal " + path + ": unknown record type '" +
                  rec.string_or("type") + "' at line " + std::to_string(i + 1));
    JournalRecord r;
    r.key = rec.string_or("key");
    r.status = rec.string_or("status");
    r.attempts = static_cast<int>(rec.int_or("attempts", 1));
    r.outcome = rec.string_or("outcome");
    r.reason = rec.string_or("reason");
    r.row_json = rec.string_or("row");
    j.by_key_.emplace(r.key, j.records_.size());
    j.records_.push_back(std::move(r));
  }

  if (dropped) {
    // Recommit the cleaned journal atomically before anything is appended.
    std::string clean;
    pos = 0;
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
      clean.append(lines[i].text);
      clean += '\n';
    }
    commit_file(path, clean);
  }
  if (info != nullptr) {
    info->records = j.records_.size();
    info->dropped_torn_tail = dropped;
    info->torn_tail = dropped_line;
  }
  j.open_for_append();
  return j;
}

void Journal::open_for_append() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) io_fail(path_, "cannot open for append");
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      records_(std::move(other.records_)),
      by_key_(std::move(other.by_key_)) {
  other.fd_ = -1;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const JournalRecord& rec) {
  const std::string line = format_line(record_payload(rec));
  write_all(fd_, line, path_);
  if (::fsync(fd_) != 0) io_fail(path_, "fsync failed");
  by_key_.emplace(rec.key, records_.size());
  records_.push_back(rec);
}

const JournalRecord* Journal::find(const std::string& key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &records_[it->second];
}

}  // namespace mfd::super
