// Flow-wide memoization: sharded, mutex-striped, LRU-bounded caches keyed by
// canonical function signatures (cache/signature.h). Full design, key
// schemes, and the determinism contract live in docs/CACHING.md.
//
// Three caches ride on this layer:
//   * the multiplicity cache — whole bound-set candidate evaluations
//     (class counts, benefit, sharing gap) per (function signatures, bound
//     set, seed); a hit skips the candidate's cofactor-table construction
//     and ISF colorings outright. Shared across the flow thread, all pool
//     workers, and both portfolio entries (signatures are manager and order
//     independent), so the second portfolio run re-scores its candidate
//     windows from the cache;
//   * the flow-result cache — whole Synthesizer decompose results per
//     (spec signatures, primary inputs, variable order, options fingerprint),
//     hit by repeated synthesis of the same spec (benchmark iterations,
//     repeated sweeps in one process);
//   * the alpha pool — per-decompose-call reuse of emitted decomposition
//     function LUTs; it lives in the decomposition driver's context (net
//     signals are only meaningful within one call), not here, but reports
//     through the same cache.* counters.
//
// Determinism contract (docs/CACHING.md): a cache lookup is an optimization
// only. A hit must return exactly what recomputation would return, so cached
// and --no-cache runs are bit-identical at any --jobs value. Three rules
// enforce this:
//   1. values are pure functions of their keys (signatures + seeds + option
//      fingerprints — never wall-clock, never node layout);
//   2. no cache is consulted while results could be timing-dependent:
//      memo_safe() fails under an armed resource budget, after any
//      degradation, or past a (fault-injected) deadline;
//   3. the debug cross-check mode (CacheConfig.cross_check, or environment
//      MFD_CACHE_CHECK=1) recomputes every hit and aborts on a mismatch.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/signature.h"
#include "core/budget.h"
#include "core/faultinject.h"

namespace mfd::cache {

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

struct CacheConfig {
  bool multiplicity = true;  ///< bound-set class-count memo
  bool alpha_pool = true;    ///< decomposition-function LUT reuse
  bool flow_results = true;  ///< whole-decompose result memo
  /// Total byte budget across the shared caches (the alpha pool is
  /// call-scoped and entry-capped instead, see docs/CACHING.md). Split
  /// between the multiplicity cache and the flow cache; eviction is LRU.
  std::size_t max_bytes = std::size_t{64} << 20;
  /// Recompute every hit and abort on mismatch (debug). Also armed by the
  /// environment variable MFD_CACHE_CHECK=1 at first configure()/config().
  bool cross_check = false;

  static CacheConfig disabled() {
    CacheConfig c;
    c.multiplicity = c.alpha_pool = c.flow_results = false;
    return c;
  }
};

/// Replaces the process-wide configuration and clears every cache (entries
/// inserted under one capacity/mode must not leak into the next).
void configure(const CacheConfig& config);

/// The active configuration (defaults applied on first use).
const CacheConfig& config();

/// Empties all caches; configuration is untouched.
void clear();

/// True when it is safe to serve or store memoized results under `gov`:
/// fault injection disarmed, and either no governor or an unlimited budget
/// at ladder level 0 with a live deadline. Under a real budget (or injected
/// faults) the flow's answers depend on *when* something trips, so
/// memoization could change results across runs — rule 2 of the determinism
/// contract. In particular a memo hit would skip the very code a fault is
/// aimed at, silently un-testing the recovery path.
inline bool memo_safe(const ResourceGovernor* gov) {
  if (fault::armed()) return false;
  return gov == nullptr ||
         (gov->budget().unlimited() && gov->degrade_level() == kDegradeFull &&
          !gov->deadline_expired());
}

// ---------------------------------------------------------------------------
// The shared LRU store
// ---------------------------------------------------------------------------

/// Sharded, mutex-striped LRU map from u64-vector keys to type-erased
/// values. Lookups verify the full key (the digest only routes), so distinct
/// keys never alias. Thread safe; safe for concurrent pool workers because
/// every value is immutable once inserted and equals recomputation.
class LruCache {
 public:
  /// `counter_prefix` names the obs counters ("<prefix>.hits" etc.).
  explicit LruCache(std::string counter_prefix, int shards = 8);

  /// Byte budget; evicts LRU entries (per shard) until within budget.
  void set_capacity(std::size_t bytes);

  /// The stored value, or nullptr. A hit refreshes LRU recency and bumps
  /// "<prefix>.hits"; a miss bumps "<prefix>.misses".
  std::shared_ptr<const void> lookup(const std::vector<std::uint64_t>& key);

  /// Inserts (or replaces) the value; evicts from the tail until the shard
  /// fits its budget share, bumping "<prefix>.evictions". `value_bytes` is
  /// the caller's estimate of the value's footprint (key words are added).
  void insert(const std::vector<std::uint64_t>& key,
              std::shared_ptr<const void> value, std::size_t value_bytes);

  void clear_all();
  std::size_t bytes() const;
  std::size_t entries() const;

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::vector<std::uint64_t> key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  Shard& shard_of(std::uint64_t digest) {
    return *shards_[digest % shards_.size()];
  }
  void evict_to_fit(Shard& s);

  std::string prefix_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_per_shard_ = 0;
};

/// The process-wide multiplicity cache ("cache.multiplicity.*").
LruCache& multiplicity_cache();
/// The process-wide flow-result cache ("cache.flow.*").
LruCache& flow_cache();

// ---------------------------------------------------------------------------
// Typed helpers
// ---------------------------------------------------------------------------

/// Key of one bound-set candidate evaluation: the (on, care) edge of every
/// function under consideration, the bound variables (in candidate order),
/// and the coloring seed. Completely specified functions (care == 1) are
/// complement-normalized per function: the cofactors of !f are the
/// element-wise complements of the cofactors of f, a bijection that leaves
/// every class count, code length, and the joint sharing count unchanged —
/// so f and !f share an entry. ISF functions keep raw polarity (an ISF
/// complement is off = care & !on, not an edge flip) and keep the seed
/// relevant (coloring restarts consult it).
std::vector<std::uint64_t> multiplicity_key(
    SignatureComputer& sig,
    const std::vector<std::pair<bdd::Edge, bdd::Edge>>& fns,
    const std::vector<int>& bound, std::uint64_t seed);

/// Publishes cache.bytes / cache.entries gauges from the current totals
/// (counters accumulate live; call this at report flush points).
void publish_stats();

}  // namespace mfd::cache
