#include "net/passmgr.h"

#include <chrono>
#include <utility>

#include "core/budget.h"
#include "core/errors.h"
#include "core/synthesizer.h"
#include "net/lutnet.h"
#include "obs/obs.h"

namespace mfd::net {

void PassPipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::string PassPipeline::spec() const {
  std::string s;
  for (const auto& p : passes_) {
    if (!s.empty()) s += ',';
    s += p->name();
  }
  return s;
}

std::vector<PassStats> PassPipeline::run(LutNetwork& net, PassContext& ctx,
                                         bool skip_mutating) const {
  std::vector<PassStats> trail;
  trail.reserve(passes_.size());
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    Pass& pass = *passes_[i];
    PassStats st;
    st.name = pass.name();
    st.luts_before = st.luts_after = net.count_luts();

    if (skip_mutating && pass.mutates_network()) {
      st.skip_reason = "cached";
      obs::add("passmgr.cached_skips");
      trail.push_back(std::move(st));
      continue;
    }
    if (pass.optional() && ctx.governor != nullptr &&
        (ctx.governor->report().degraded() || ctx.governor->deadline_expired())) {
      // Droppable quality pass under a stressed run: the ladder already
      // traded optimization for completion, so don't spend more effort.
      st.skip_reason = "degraded";
      obs::add("passmgr.optional_dropped");
      trail.push_back(std::move(st));
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    {
      obs::ScopedPhase phase(std::string("pass.") + pass.name());
      st.changed = pass.run(net, ctx);
    }
    st.ran = true;
    st.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    st.luts_after = net.count_luts();
    obs::add("passmgr.passes_run");
    if (dump_) dump_(net, pass, static_cast<int>(i));
    trail.push_back(std::move(st));
  }
  return trail;
}

std::vector<std::string> parse_pipeline_spec(const std::string& spec) {
  std::vector<std::string> names;
  std::string cur;
  auto flush = [&] {
    // Trim surrounding whitespace.
    std::size_t b = 0, e = cur.size();
    while (b < e && (cur[b] == ' ' || cur[b] == '\t')) ++b;
    while (e > b && (cur[e - 1] == ' ' || cur[e - 1] == '\t')) --e;
    if (b == e)
      throw Error("pipeline spec '" + spec + "': empty pass name");
    names.push_back(cur.substr(b, e - b));
    cur.clear();
  };
  for (char c : spec) {
    if (c == ',') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();  // also rejects a trailing comma / empty spec
  return names;
}

bool SimplifyPass::run(LutNetwork& net, PassContext& ctx) {
  int k = default_lut_inputs_;
  if (ctx.options != nullptr) k = ctx.options->decomp.lut_inputs;
  int removed = net.simplify();
  removed += net.collapse(k);
  obs::add("pass.simplify.luts_removed", static_cast<std::uint64_t>(
                                             removed > 0 ? removed : 0));
  return removed != 0;
}

}  // namespace mfd::net
