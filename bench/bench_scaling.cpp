// Scaling study: synthesis time and result size as the instance grows
// (adders and multipliers by operand width). No direct paper counterpart —
// this tracks that the implementation stays laptop-scale, which is the
// regime the paper's experiments ran in.
#include "bench_common.h"

namespace {

struct Row {
  std::string name;
  int inputs = 0;
  int luts = 0;
  int clbs = 0;
  double seconds = 0;
};

std::vector<Row> g_rows;

void run_one(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const auto r = mfd::bench::run_flow(name, mfd::preset_mulop_dc(5), "mulop-dc");
    g_rows.push_back({name, r.inputs, r.luts, r.clb_matching, r.seconds});
    state.counters["luts"] = r.luts;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"add4", "add8", "add16", "mult4", "mult6", "pm3", "pm4",
                           "rd73", "rd84", "alu2", "alu4"})
    benchmark::RegisterBenchmark((std::string("scaling/") + name).c_str(),
                                 [name](benchmark::State& s) { run_one(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nScaling (mulop-dc, n_LUT = 5, matching CLB merge):\n\n");
  std::printf("%-8s %6s %6s %6s %8s\n", "circuit", "in", "LUTs", "CLBs", "time");
  mfd::bench::print_rule(40);
  for (const Row& r : g_rows)
    std::printf("%-8s %6d %6d %6d %7.2fs\n", r.name.c_str(), r.inputs, r.luts,
                 r.clbs, r.seconds);
  mfd::bench::write_stats_json();
  return 0;
}
