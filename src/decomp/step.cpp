// One full decomposition step (see driver.h for the file split): DC step 1
// (symmetrization), variable-order seeding, the bound-set search, DC steps
// 2 and 3 over the chosen bound set, encoding, decomposition-function
// emission (single LUTs or an alpha recursion), and the composition-function
// recursion. Falls back to structural emission when no bound set pays.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <climits>
#include <cstdio>
#include <map>

#include "decomp/compat.h"
#include "decomp/dc_assign.h"
#include "decomp/driver.h"
#include "decomp/encoding.h"
#include "obs/obs.h"
#include "sym/symmetrize.h"
#include "sym/symmetry.h"

namespace mfd::decomp {
namespace {

double trace_ms() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Window-seed order for the bound-set search: symmetry groups stay
/// contiguous; groups are chained greedily by support co-occurrence
/// (the group sharing the most outputs with the previously placed one goes
/// next), so windows cover variables that actually appear together.
std::vector<int> seed_order(const std::vector<Isf>& fns,
                            const std::vector<std::vector<int>>& groups) {
  const int ng = static_cast<int>(groups.size());
  // Bitmask of outputs using each group (outputs beyond 64 fold over).
  std::vector<std::uint64_t> uses(static_cast<std::size_t>(ng), 0);
  std::vector<int> freq(static_cast<std::size_t>(ng), 0);
  for (std::size_t o = 0; o < fns.size(); ++o) {
    const std::vector<int> supp = fns[o].support();
    for (int g = 0; g < ng; ++g) {
      for (int v : groups[static_cast<std::size_t>(g)]) {
        if (std::binary_search(supp.begin(), supp.end(), v)) {
          uses[static_cast<std::size_t>(g)] |= std::uint64_t{1} << (o % 64);
          ++freq[static_cast<std::size_t>(g)];
          break;
        }
      }
    }
  }
  std::vector<bool> placed(static_cast<std::size_t>(ng), false);
  std::vector<int> order;
  int last = -1;
  for (int step = 0; step < ng; ++step) {
    int best = -1;
    long best_key = -1;
    for (int g = 0; g < ng; ++g) {
      if (placed[static_cast<std::size_t>(g)]) continue;
      const long common =
          last == -1 ? 0
                     : static_cast<long>(__builtin_popcountll(
                           uses[static_cast<std::size_t>(g)] &
                           uses[static_cast<std::size_t>(last)]));
      const long key = common * 1024 + freq[static_cast<std::size_t>(g)];
      if (key > best_key) {
        best_key = key;
        best = g;
      }
    }
    placed[static_cast<std::size_t>(best)] = true;
    last = best;
    for (int v : groups[static_cast<std::size_t>(best)]) order.push_back(v);
  }
  return order;
}

}  // namespace

std::vector<int> decomposition_step(Ctx& c, std::vector<Isf> work,
                                    const std::vector<int>& work_ids, int depth) {
  bdd::Manager& m = c.m;
  const int k = c.opts.lut_inputs;
  std::vector<int> active = union_of_supports(work);

  if (c.opts.trace) {
    std::fprintf(stderr, "[%8.0fms synth d=%d] %zu big, %zu active, %zu mgr vars, %zu nodes, supports:",
                 trace_ms(), depth, work.size(), active.size(),
                 static_cast<std::size_t>(m.num_vars()), m.live_node_count());
    for (const Isf& f : work)
      std::fprintf(stderr, " %zu", f.support().size());
    std::fprintf(stderr, "\n");
  }

  // ---- step 1: symmetrize --------------------------------------------
  // Skipped from ladder level 2 on: symmetrization only buys optimization
  // quality, and it is one of the two DC steps the ladder sheds.
  if (c.opts.exploit_dc && c.opts.dc_symmetrize &&
      c.gov->degrade_level() < kDegradeNoDcSteps &&
      static_cast<int>(active.size()) <= c.opts.symmetrize_max_vars) {
    obs::ScopedPhase phase("symmetrize");
    const SymmetrizeStats s = symmetrize(work, active);
    c.stats.symmetrized_pairs += s.ne_applied + s.e_applied;
  }
  if (c.opts.trace) std::fprintf(stderr, "[%8.0fms synth d=%d] symmetrized\n", trace_ms(), depth);

  // ---- variable order seed ---------------------------------------------
  // The bound-set search scans windows of this order, so what matters is
  // that symmetric variables sit together and co-occurring variables are
  // near each other. With enumeration-based ncc the BDD order itself is
  // semantically irrelevant; we still run one symmetric sifting pass at the
  // top (it shrinks the working BDDs and is the paper's seed [12,15]), but
  // deeper levels use a cheap group/co-occurrence order.
  const std::vector<std::vector<int>> groups = symmetry_groups(work, active);
  if (c.opts.trace)
    std::fprintf(stderr, "[%8.0fms synth d=%d] %zu symmetry groups\n", trace_ms(),
                 depth, groups.size());
  if (c.opts.symmetric_sift && depth == 0 &&
      m.live_node_count() <= static_cast<std::size_t>(c.opts.sift_max_live_nodes)) {
    obs::ScopedPhase phase("sift");
    obs::add("decomp.sift_runs");
    m.sift_symmetric(groups, /*max_growth=*/1.2);
  }
  if (c.opts.trace) std::fprintf(stderr, "[%8.0fms synth d=%d] sifted\n", trace_ms(), depth);
  const std::vector<int> order = seed_order(work, groups);

  // ---- bound set -----------------------------------------------------------
  BoundSetOptions bopts = c.opts.boundset;
  bopts.seed = c.opts.seed;
  // Candidate evaluation costs O(outputs * 2^p) BDD work; keep the total
  // search effort roughly constant as the output count grows.
  bopts.max_evaluations = std::max(
      24, bopts.max_evaluations / std::max<int>(1, static_cast<int>(work.size()) / 8));

  // Estimated LUTs to realize one decomposition function of q inputs.
  auto alpha_tree_luts = [&](int q) { return (q - 1 + (k - 2)) / (k - 1); };
  // Penalty-adjusted benefit: oversized bound sets pay for the extra LUTs
  // their decomposition functions need.
  auto adjusted_benefit = [&](const BoundSetChoice& ch) {
    if (ch.vars.empty()) return LONG_MIN;
    const int q = static_cast<int>(ch.vars.size());
    if (q <= k) return ch.benefit;
    int est_alphas = 0;
    for (int r : ch.r_per_output) est_alphas = std::max(est_alphas, r);
    if (c.opts.share_functions)
      est_alphas = std::max<int>(est_alphas, static_cast<int>(ch.sum_r) - ch.sharing_gap);
    else
      est_alphas = static_cast<int>(ch.sum_r);
    return ch.benefit - static_cast<long>(est_alphas) * (alpha_tree_luts(q) - 1);
  };

  const int base_p = std::min(k, static_cast<int>(active.size()) - 1);
  const int max_p = std::min(k + std::max(0, c.opts.max_bound_extra),
                             static_cast<int>(active.size()) - 1);
  BoundSetChoice choice;
  if (base_p >= 2) {
    obs::ScopedPhase boundset_phase("boundset");
    choice = select_bound_set(work, order, base_p, bopts);
    // An oversized bound set recurses on its decomposition functions, whose
    // real cost the estimate below can only bound loosely — require it to beat the in-budget bound set before accepting one. The
    // Synthesizer-level portfolio (see core/synthesizer.cpp) protects
    // against the cases where even that is too optimistic.
    for (int p = base_p + 1; p <= max_p; ++p) {
      BoundSetChoice cand = select_bound_set(work, order, p, bopts);
      const long cur = std::max(0L, adjusted_benefit(choice));
      if (choice.vars.empty() || adjusted_benefit(cand) > cur)
        choice = std::move(cand);
    }
  }
  if (c.opts.trace)
    std::fprintf(stderr, "[%8.0fms synth d=%d] sifted+bound set, p=%zu benefit=%ld\n",
                 trace_ms(), depth, choice.vars.size(), choice.benefit);

  if (choice.vars.empty() || adjusted_benefit(choice) <= 0)
    return fallback_emit(c, work, work_ids, depth);
  const std::vector<int>& bound = choice.vars;

  // ---- steps 2 + 3: don't-care assignment over the bound set -----------
  std::vector<CofactorTable> tables;
  tables.reserve(work.size());
  for (const Isf& f : work) tables.push_back(cofactor_table(f, bound));

  if (c.opts.exploit_dc && c.opts.dc_joint) {
    obs::ScopedPhase phase("share");
    assign_joint(tables, c.opts.seed);
  }

  std::vector<std::vector<int>> partitions;
  if (c.opts.total_minimal_code) {
    // [10]-style: one joint partition for every output. Vertices with
    // identical cofactors across all outputs share a class; the shared code
    // of that partition is trivially strict for every output.
    if (c.opts.exploit_dc && c.opts.dc_per_output &&
        c.gov->degrade_level() < kDegradeNoDcSteps)
      assign_per_output(tables, c.opts.seed);
    std::map<std::vector<std::pair<bdd::Edge, bdd::Edge>>, int> classes;
    std::vector<int> joint(tables.front().entries.size());
    for (std::size_t v = 0; v < joint.size(); ++v) {
      std::vector<std::pair<bdd::Edge, bdd::Edge>> key;
      key.reserve(tables.size());
      for (const CofactorTable& t : tables)
        key.emplace_back(t.entries[v].on().id(), t.entries[v].care().id());
      joint[v] = classes.emplace(std::move(key), static_cast<int>(classes.size()))
                     .first->second;
    }
    partitions.assign(tables.size(), joint);
  } else if (c.opts.exploit_dc && c.opts.dc_per_output &&
             c.gov->degrade_level() < kDegradeNoDcSteps) {
    // Step 3 is the other DC step shed at ladder level 2.
    obs::ScopedPhase phase("per_output");
    partitions = assign_per_output(tables, c.opts.seed);
  } else {
    partitions.reserve(tables.size());
    for (const CofactorTable& t : tables) partitions.push_back(partition_by_equality(t));
  }

  if (c.opts.trace) std::fprintf(stderr, "[%8.0fms synth d=%d] dc steps done\n", trace_ms(), depth);

  // ---- encode the decomposition functions ---------------------------------
  const Encoding enc = [&] {
    obs::ScopedPhase phase("encode");
    return encode_shared(partitions, static_cast<int>(bound.size()),
                         c.opts.share_functions);
  }();
  assert(encoding_is_valid(enc, partitions));

  // Re-check actual progress: the joint assignment optimizes sharing and may
  // cost individual outputs classes relative to the search's quick estimate,
  // and an oversized bound set must still pay for its alpha trees.
  {
    long actual_benefit = 0;
    std::vector<std::vector<int>> supports;
    for (const Isf& f : work) supports.push_back(f.support());
    for (std::size_t i = 0; i < work.size(); ++i) {
      int cut = 0;
      for (int v : supports[i])
        if (std::find(bound.begin(), bound.end(), v) != bound.end()) ++cut;
      actual_benefit += cut - code_length(num_classes(partitions[i]));
    }
    if (static_cast<int>(bound.size()) > k)
      actual_benefit -= static_cast<long>(enc.total_functions()) *
                        (alpha_tree_luts(static_cast<int>(bound.size())) - 1);
    if (actual_benefit <= 0)
      return fallback_emit(c, work, work_ids, depth);
  }
  ++c.stats.decomposition_steps;
  c.stats.total_decomposition_functions += enc.total_functions();
  c.stats.encoding_pool_hits += enc.pool_hits;
  for (std::size_t i = 0; i < work.size(); ++i) c.stats.sum_r += enc.r(static_cast<int>(i));
  obs::add("decomp.steps");
  obs::add("decomp.functions_emitted", static_cast<std::uint64_t>(enc.total_functions()));

  std::vector<int> code_vars(static_cast<std::size_t>(enc.total_functions()));
  if (static_cast<int>(bound.size()) <= k) {
    // Every decomposition function fits one LUT. Emission goes through the
    // alpha pool: the same (inputs, table) — possibly from another output or
    // an earlier step over the same bound signals — reuses the existing LUT.
    for (int j = 0; j < enc.total_functions(); ++j) {
      net::Lut lut;
      for (int v : bound) lut.inputs.push_back(c.signal_of(v));
      lut.table = enc.functions[static_cast<std::size_t>(j)];
      const int sig = c.emit_alpha(std::move(lut));
      const int var = m.add_var();
      c.bind(var, sig);
      code_vars[static_cast<std::size_t>(j)] = var;
    }
  } else {
    // Oversized bound set: rebuild each alpha as a BDD over the bound
    // variables and decompose it recursively (Section 2: "decomposition has
    // to be applied recursively to alpha and g").
    std::vector<Isf> alpha_fns;
    alpha_fns.reserve(static_cast<std::size_t>(enc.total_functions()));
    for (int j = 0; j < enc.total_functions(); ++j) {
      bdd::Bdd alpha = m.bdd_false();
      const auto& fn = enc.functions[static_cast<std::size_t>(j)];
      for (std::size_t v = 0; v < fn.size(); ++v) {
        if (!fn[v]) continue;
        bdd::Bdd minterm = m.bdd_true();
        for (std::size_t bIdx = 0; bIdx < bound.size(); ++bIdx)
          minterm &= m.literal(bound[bIdx], (v >> bIdx) & 1);
        alpha |= minterm;
      }
      alpha_fns.push_back(Isf::completely_specified(alpha));
    }
    const std::vector<int> alpha_ids(alpha_fns.size(), kInternalId);
    obs::ScopedPhase recurse_phase("recurse");
    const std::vector<int> alpha_sigs =
        synth(c, std::move(alpha_fns), alpha_ids, depth + 1);
    for (int j = 0; j < enc.total_functions(); ++j) {
      const int var = m.add_var();
      c.bind(var, alpha_sigs[static_cast<std::size_t>(j)]);
      code_vars[static_cast<std::size_t>(j)] = var;
    }
  }

  // ---- build the composition functions ------------------------------------
  std::vector<Isf> g_fns;
  g_fns.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    const auto& used = enc.used[i];
    bdd::Bdd g_on = m.bdd_false();
    bdd::Bdd g_care = m.bdd_false();
    for (std::size_t v = 0; v < tables[i].entries.size(); ++v) {
      const std::uint32_t code = enc.code_of(static_cast<int>(i), static_cast<int>(v));
      bdd::Bdd cube = m.bdd_true();
      for (std::size_t j = 0; j < used.size(); ++j)
        cube &= m.literal(code_vars[static_cast<std::size_t>(used[j])], (code >> j) & 1);
      g_on |= cube & tables[i].entries[v].on();
      g_care |= cube & tables[i].entries[v].care();
    }
    g_fns.emplace_back(g_on, g_care);
  }

  tables.clear();
  work.clear();
  m.garbage_collect();

  obs::ScopedPhase recurse_phase("recurse");
  return synth(c, std::move(g_fns), work_ids, depth + 1);
}

}  // namespace mfd::decomp
