// Recursive BDD operations over complement edges. Every recursion strips the
// complement attribute of its arguments at the earliest point where an
// identity allows it (cofactor(!f) = !cofactor(f), exists(!f) = !forall(f),
// parity folds out of XOR, ITE pushes complements to the output), so the
// computed table only ever sees canonical argument triples. None of these
// run garbage collection mid-recursion: reactive GC is gated on `op_depth_`,
// so intermediate results (reference count zero) are safe until the caller
// anchors the final result in a handle.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "bdd/bdd.h"
#include "core/errors.h"
#include "core/faultinject.h"

namespace mfd::bdd {

// ---------------------------------------------------------------------------
// Bdd handle operators
// ---------------------------------------------------------------------------

Bdd Bdd::operator&(const Bdd& o) const { return mgr_->wrap(mgr_->apply_and(id_, o.id_)); }
Bdd Bdd::operator|(const Bdd& o) const { return mgr_->wrap(mgr_->apply_or(id_, o.id_)); }
Bdd Bdd::operator^(const Bdd& o) const { return mgr_->wrap(mgr_->apply_xor(id_, o.id_)); }
Bdd Bdd::operator!() const { return mgr_->wrap(!id_); }

Bdd Bdd::cofactor(int var, bool value) const {
  return mgr_->wrap(mgr_->cofactor(id_, var, value));
}

std::size_t Bdd::size() const { return mgr_->dag_size(id_); }

// ---------------------------------------------------------------------------
// ITE
// ---------------------------------------------------------------------------

Edge Manager::ite(Edge f, Edge g, Edge h) {
  if (fault::armed()) fault::point("bdd.ite");
  maybe_auto_gc(f, g, h);
  OpScope scope(*this);
  return ite_rec(f, g, h);
}

Edge Manager::ite_rec(Edge f, Edge g, Edge h) {
  // Terminal and trivial cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (f == g) g = kTrue;         // ite(f, f, h)  == ite(f, 1, h)
  else if (f == !g) g = kFalse;  // ite(f, !f, h) == ite(f, 0, h)
  if (f == h) h = kFalse;        // ite(f, g, f)  == ite(f, g, 0)
  else if (f == !h) h = kTrue;   // ite(f, g, !f) == ite(f, g, 1)
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return !f;

  // Standard triples: with one constant branch (or h == !g) the triple is
  // symmetric in two of its arguments; pick the representative whose first
  // argument is smallest by (level, bits) so equivalent calls share a cache
  // line. Complements move with the swapped arguments so the function is
  // unchanged.
  const auto precedes = [this](Edge a, Edge b) {
    const int la = node_level(a), lb = node_level(b);
    return la != lb ? la < lb : a.bits() < b.bits();
  };
  if (g == kTrue) {  // OR: ite(f, 1, h) == ite(h, 1, f)
    if (precedes(h, f)) std::swap(f, h);
  } else if (h == kFalse) {  // AND: ite(f, g, 0) == ite(g, f, 0)
    if (precedes(g, f)) std::swap(f, g);
  } else if (g == kFalse) {  // ite(f, 0, h) == ite(!h, 0, !f)
    if (precedes(h, f)) {
      const Edge t = f;
      f = !h;
      h = !t;
    }
  } else if (h == kTrue) {  // ite(f, g, 1) == ite(!g, !f, 1)
    if (precedes(g, f)) {
      const Edge t = f;
      f = !g;
      g = !t;
    }
  } else if (h == !g) {  // XNOR: ite(f, g, !g) == ite(g, f, !f)
    if (precedes(g, f)) {
      const Edge t = f;
      f = g;
      g = t;
      h = !t;
    }
  }

  // Push complements to the output: a regular first argument (else swap the
  // branches), then a regular then-branch (else complement the whole call).
  if (f.is_complemented()) {
    f = !f;
    std::swap(g, h);
  }
  bool out_c = false;
  if (g.is_complemented()) {
    out_c = true;
    g = !g;
    h = !h;
  }

  Edge r = cache_lookup(kOpIte, f, g, h);
  if (r != kInvalid) return r ^ out_c;

  const int lf = node_level(f), lg = node_level(g), lh = node_level(h);
  const int top = std::min(lf, std::min(lg, lh));
  const int v = level_to_var_[top];

  const Edge f0 = lf == top ? node_lo(f) : f;
  const Edge f1 = lf == top ? node_hi(f) : f;
  const Edge g0 = lg == top ? node_lo(g) : g;
  const Edge g1 = lg == top ? node_hi(g) : g;
  const Edge h0 = lh == top ? node_lo(h) : h;
  const Edge h1 = lh == top ? node_hi(h) : h;

  const Edge r0 = ite_rec(f0, g0, h0);
  const Edge r1 = ite_rec(f1, g1, h1);
  r = mk(v, r0, r1);
  cache_insert(kOpIte, f, g, h, r);
  return r ^ out_c;
}

Edge Manager::apply_xor(Edge f, Edge g) {
  maybe_auto_gc(f, g);
  OpScope scope(*this);
  return xor_rec(f, g);
}

Edge Manager::xor_rec(Edge f, Edge g) {
  // Complement parity folds straight out of XOR.
  const bool out_c = f.is_complemented() != g.is_complemented();
  f = f.regular();
  g = g.regular();
  if (f == g) return kFalse ^ out_c;
  if (f == kTrue) return !g ^ out_c;
  if (g == kTrue) return !f ^ out_c;
  if (g < f) std::swap(f, g);  // commutative: canonicalize for the cache

  Edge r = cache_lookup(kOpXor, f, g, kTrue);
  if (r != kInvalid) return r ^ out_c;

  const int lf = node_level(f), lg = node_level(g);
  const int top = std::min(lf, lg);
  const int v = level_to_var_[top];
  const Edge f0 = lf == top ? node_lo(f) : f;
  const Edge f1 = lf == top ? node_hi(f) : f;
  const Edge g0 = lg == top ? node_lo(g) : g;
  const Edge g1 = lg == top ? node_hi(g) : g;

  r = mk(v, xor_rec(f0, g0), xor_rec(f1, g1));
  cache_insert(kOpXor, f, g, kTrue, r);
  return r ^ out_c;
}

// ---------------------------------------------------------------------------
// Cofactors and quantification
// ---------------------------------------------------------------------------

Edge Manager::cofactor(Edge f, int var, bool value) {
  maybe_auto_gc(f, f);
  OpScope scope(*this);
  return cofactor_rec(f, var, value);
}

Edge Manager::cofactor_rec(Edge f, int var, bool value) {
  const bool out_c = f.is_complemented();  // cofactor(!f) == !cofactor(f)
  f = f.regular();
  if (is_terminal(f)) return f ^ out_c;
  const int lv = var_to_level_[var];
  const int lf = node_level(f);
  if (lf > lv) return f ^ out_c;  // var sits above f's top: f does not depend on it
  if (lf == lv) return (value ? node_hi(f) : node_lo(f)) ^ out_c;

  const Edge tag = Edge(static_cast<std::uint32_t>(var) * 2 + (value ? 1 : 0));
  Edge r = cache_lookup(kOpCofactor, f, tag, kTrue);
  if (r == kInvalid) {
    r = mk(static_cast<int>(node_var(f)), cofactor_rec(node_lo(f), var, value),
           cofactor_rec(node_hi(f), var, value));
    cache_insert(kOpCofactor, f, tag, kTrue, r);
  }
  return r ^ out_c;
}

Edge Manager::cofactor_cube(Edge f, const std::vector<std::pair<int, bool>>& a) {
  maybe_auto_gc(f, f);
  OpScope scope(*this);
  Edge r = f;
  for (const auto& [v, val] : a) r = cofactor_rec(r, v, val);
  return r;
}

Edge Manager::quant_var_rec(Edge f, int var, bool existential) {
  // exists(!f) == !forall(f): strip the complement, flip the quantifier.
  const bool out_c = f.is_complemented();
  if (out_c) {
    f = !f;
    existential = !existential;
  }
  if (is_terminal(f)) return f ^ out_c;
  const int lv = var_to_level_[var];
  const int lf = node_level(f);
  if (lf > lv) return f ^ out_c;
  if (lf == lv) {
    const Edge r = existential ? ite_rec(node_lo(f), kTrue, node_hi(f))
                               : ite_rec(node_lo(f), node_hi(f), kFalse);
    return r ^ out_c;
  }

  const std::uint32_t op = existential ? kOpExists : kOpForall;
  Edge r = cache_lookup(op, f, Edge(static_cast<std::uint32_t>(var)), kTrue);
  if (r == kInvalid) {
    r = mk(static_cast<int>(node_var(f)), quant_var_rec(node_lo(f), var, existential),
           quant_var_rec(node_hi(f), var, existential));
    cache_insert(op, f, Edge(static_cast<std::uint32_t>(var)), kTrue, r);
  }
  return r ^ out_c;
}

Edge Manager::exists(Edge f, const std::vector<int>& vars) {
  maybe_auto_gc(f, f);
  OpScope scope(*this);
  Edge r = f;
  for (int v : vars) r = quant_var_rec(r, v, /*existential=*/true);
  return r;
}

Edge Manager::forall(Edge f, const std::vector<int>& vars) {
  maybe_auto_gc(f, f);
  OpScope scope(*this);
  Edge r = f;
  for (int v : vars) r = quant_var_rec(r, v, /*existential=*/false);
  return r;
}

// ---------------------------------------------------------------------------
// Composition, permutation
// ---------------------------------------------------------------------------

Edge Manager::compose_rec(Edge f, int var, Edge g) {
  const bool out_c = f.is_complemented();  // compose distributes over complement
  f = f.regular();
  if (is_terminal(f)) return f ^ out_c;
  const int lv = var_to_level_[var];
  const int lf = node_level(f);
  if (lf > lv) return f ^ out_c;
  if (lf == lv) {
    // f = (var, lo, hi): substitute g for var.
    return ite_rec(g, node_hi(f), node_lo(f)) ^ out_c;
  }
  Edge r = cache_lookup(kOpCompose, f, g, Edge(static_cast<std::uint32_t>(var)));
  if (r == kInvalid) {
    const Edge r0 = compose_rec(node_lo(f), var, g);
    const Edge r1 = compose_rec(node_hi(f), var, g);
    // g's support may reach above f's variable, so rebuild with ITE rather
    // than mk.
    const Edge xv = mk(static_cast<int>(node_var(f)), kFalse, kTrue);
    r = ite_rec(xv, r1, r0);
    cache_insert(kOpCompose, f, g, Edge(static_cast<std::uint32_t>(var)), r);
  }
  return r ^ out_c;
}

Edge Manager::compose(Edge f, int var, Edge g) {
  maybe_auto_gc(f, g);
  OpScope scope(*this);
  return compose_rec(f, var, g);
}

Edge Manager::restrict_to(Edge f, Edge care) {
  if (care == kFalse)
    throw BddError(
        "restrict_to: care set is constant false (the generalized cofactor "
        "is undefined; guard the call site)");
  maybe_auto_gc(f, care);
  OpScope scope(*this);
  return restrict_rec(f, care);
}

Edge Manager::restrict_rec(Edge f, Edge care) {
  // The interval f & care <= r <= f | !care complements to
  // !f & care <= !r <= !f | !care, so restrict distributes over complement.
  const bool out_c = f.is_complemented();
  f = f.regular();
  if (care == kTrue || is_terminal(f)) return f ^ out_c;
  Edge r = cache_lookup(kOpRestrict, f, care, kTrue);
  if (r != kInvalid) return r ^ out_c;

  const int lf = node_level(f), lc = node_level(care);
  if (lc < lf) {
    // The care set constrains a variable above f's support: merge its two
    // halves (the classic or-abstraction step) and continue.
    r = restrict_rec(f, ite_rec(node_lo(care), kTrue, node_hi(care)));
  } else {
    const int top = std::min(lf, lc);
    const int v = level_to_var_[top];
    const Edge f0 = lf == top ? node_lo(f) : f;
    const Edge f1 = lf == top ? node_hi(f) : f;
    const Edge c0 = lc == top ? node_lo(care) : care;
    const Edge c1 = lc == top ? node_hi(care) : care;
    if (c0 == kFalse) {
      // Every v=0 input is a don't care: substitute the sibling entirely.
      r = restrict_rec(f1, c1);
    } else if (c1 == kFalse) {
      r = restrict_rec(f0, c0);
    } else {
      r = mk(v, restrict_rec(f0, c0), restrict_rec(f1, c1));
    }
  }
  cache_insert(kOpRestrict, f, care, kTrue, r);
  return r ^ out_c;
}

Edge Manager::permute_rec(Edge f, const std::vector<int>& perm,
                          std::unordered_map<NodeIndex, Edge>& memo) {
  const bool out_c = f.is_complemented();  // memoize on the regular node
  f = f.regular();
  if (is_terminal(f)) return f ^ out_c;
  auto it = memo.find(f.index());
  if (it != memo.end()) return it->second ^ out_c;
  const Edge r0 = permute_rec(node_lo(f), perm, memo);
  const Edge r1 = permute_rec(node_hi(f), perm, memo);
  const Edge xv = mk(perm[node_var(f)], kFalse, kTrue);
  const Edge r = ite_rec(xv, r1, r0);
  memo.emplace(f.index(), r);
  return r ^ out_c;
}

Edge Manager::permute(Edge f, const std::vector<int>& perm) {
  assert(static_cast<int>(perm.size()) == num_vars());
  maybe_auto_gc(f, f);
  OpScope scope(*this);
  std::unordered_map<NodeIndex, Edge> memo;
  return permute_rec(f, perm, memo);
}

Edge Manager::swap_vars(Edge f, int va, int vb) {
  std::vector<int> perm(static_cast<std::size_t>(num_vars()));
  for (int i = 0; i < num_vars(); ++i) perm[i] = i;
  perm[va] = vb;
  perm[vb] = va;
  return permute(f, perm);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool Manager::eval(Edge f, const std::vector<bool>& assignment) const {
  bool parity = false;
  while (!is_terminal(f)) {
    parity ^= f.is_complemented();
    const Node& n = nodes_[f.index()];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  // The terminal is ONE: the value is true iff the total parity is even.
  return !(parity ^ f.is_complemented());
}

std::vector<int> Manager::support(Edge f) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<bool> in_support(static_cast<std::size_t>(num_vars()), false);
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n == 0 || seen[n]) continue;  // terminal or visited
    seen[n] = true;
    in_support[nodes_[n].var] = true;
    stack.push_back(nodes_[n].lo.index());
    stack.push_back(nodes_[n].hi.index());
  }
  std::vector<int> result;
  for (int v = 0; v < num_vars(); ++v)
    if (in_support[v]) result.push_back(v);
  return result;
}

double Manager::sat_count(Edge f, int nv) const {
  const int total_levels = num_vars();
  std::unordered_map<NodeIndex, double> memo;
  // rec(n) = satisfying assignments of the *regular* function rooted at node
  // n over the variables at levels [level(n), total_levels); a complemented
  // edge counts the complement within the same window.
  auto rec = [&](auto&& self, NodeIndex n) -> double {
    if (n == 0) return 1.0;  // ONE over zero remaining variables
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node& node = nodes_[n];
    const int level = var_to_level_[node.var];
    const auto count_edge = [&](Edge e) {
      const int le = node_level(e);
      const double reg = self(self, e.index());
      const double val = e.is_complemented() ? std::ldexp(1.0, total_levels - le) - reg : reg;
      return val * std::ldexp(1.0, le - level - 1);
    };
    const double c = count_edge(node.lo) + count_edge(node.hi);
    memo.emplace(n, c);
    return c;
  };
  const int lf = node_level(f);
  const double reg = rec(rec, f.index());
  const double over_window =
      f.is_complemented() ? std::ldexp(1.0, total_levels - lf) - reg : reg;
  const double over_all = over_window * std::ldexp(1.0, lf);
  return over_all * std::ldexp(1.0, nv - total_levels);
}

std::vector<bool> Manager::pick_one(Edge f) const {
  if (f == kFalse)
    throw BddError(
        "pick_one: function is constant false (no satisfying assignment "
        "exists; guard the call site)");
  std::vector<bool> assignment(static_cast<std::size_t>(num_vars()), false);
  while (!is_terminal(f)) {
    // Every non-false edge is satisfiable (canonicity): follow a non-false
    // cofactor, which the node must have since its children differ.
    const Edge lo = node_lo(f);
    const std::uint32_t var = node_var(f);
    if (lo != kFalse) {
      assignment[var] = false;
      f = lo;
    } else {
      assignment[var] = true;
      f = node_hi(f);
    }
  }
  return assignment;
}

std::size_t Manager::dag_size(Edge f) const { return dag_size(std::vector<Edge>{f}); }

std::size_t Manager::dag_size(const std::vector<Edge>& roots) const {
  // Complement tags live on edges, not nodes: count distinct node indices.
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t count = 0;
  std::vector<NodeIndex> stack;
  stack.reserve(roots.size());
  for (Edge r : roots) stack.push_back(r.index());
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (seen[n]) continue;
    seen[n] = true;
    ++count;
    if (n != 0) {
      stack.push_back(nodes_[n].lo.index());
      stack.push_back(nodes_[n].hi.index());
    }
  }
  return count;
}

}  // namespace mfd::bdd
