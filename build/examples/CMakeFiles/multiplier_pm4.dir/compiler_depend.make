# Empty compiler generated dependencies file for multiplier_pm4.
# This may be replaced when dependencies are built.
