// Walkthrough of the paper's core idea on an explicitly incompletely
// specified function: the same specification synthesized with and without
// don't-care exploitation, plus the [20]-style ROBDD-size view.
//
//   ./build/examples/dont_cares
#include <cmath>
#include <cstdio>

#include "core/synthesizer.h"
#include "io/pla.h"
#include "sym/minimize.h"

int main() {
  using namespace mfd;

  // A 9-input, 3-output controller-style PLA with a generous don't-care
  // plane: outputs are specified only on "legal" opcode patterns.
  const char* pla_text =
      ".i 9\n.o 3\n"
      "# op[2:0] data[5:0] -> f g h; ops 101/110/111 never occur\n"
      "000------ 1-0\n"
      "001--11-- -11\n"
      "0101----- 10-\n"
      "010-0---- 0-1\n"
      "011---1-1 111\n"
      "100-----1 01-\n"
      "101------ ---\n"
      "110------ ---\n"
      "111------ ---\n"
      ".e\n";

  bdd::Manager m;
  const io::PlaFile pla = io::parse_pla(pla_text);
  const std::vector<Isf> spec = io::pla_to_isfs(pla, m);
  std::vector<int> pis;
  for (int i = 0; i < pla.num_inputs; ++i) pis.push_back(i);

  std::printf("specification: %d inputs, %d outputs\n", pla.num_inputs,
              pla.num_outputs);
  for (std::size_t o = 0; o < spec.size(); ++o)
    std::printf("  output %zu: %.1f%% of the input space is don't care\n", o,
                100.0 * m.sat_count(spec[o].dc().id(), pla.num_inputs) /
                    std::ldexp(1.0, pla.num_inputs));

  // [20]: what the don't cares are worth for representation size alone.
  for (std::size_t o = 0; o < spec.size(); ++o) {
    const MinimizeResult r = minimize_robdd_size(spec[o]);
    std::printf("  output %zu ROBDD: %zu nodes (ext-zero) -> %zu (minimized, %d syms)\n",
                o, r.size_before, r.size_after, r.symmetries_created);
  }

  // The flow comparison the paper's tables make.
  const auto with_dc = Synthesizer(preset_mulop_dc(5)).run(spec, pis);
  const auto without = Synthesizer(preset_mulopII(5)).run(spec, pis);
  std::printf("\nmulop-dc : %3d LUTs, %3d CLBs (matching merge)%s\n",
              with_dc.network.count_luts(), with_dc.clb_matching.num_clbs,
              with_dc.verified ? "" : "  UNVERIFIED");
  std::printf("mulopII  : %3d LUTs, %3d CLBs (DCs forced to 0)%s\n",
              without.network.count_luts(), without.clb_matching.num_clbs,
              without.verified ? "" : "  UNVERIFIED");
  std::printf("\nboth networks are verified admissible extensions of the PLA;\n");
  std::printf("they generally realize *different* completely specified functions.\n");
  return with_dc.verified && without.verified ? 0 : 1;
}
