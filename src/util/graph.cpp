#include "util/graph.h"

namespace mfd {

Graph::Graph(int n)
    : n_(n),
      adj_matrix_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), false),
      adj_(static_cast<std::size_t>(n)) {}

void Graph::add_edge(int u, int v) {
  if (u == v || adj_matrix_[idx(u, v)]) return;
  adj_matrix_[idx(u, v)] = true;
  adj_matrix_[idx(v, u)] = true;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++m_;
}

Graph Graph::complement() const {
  Graph g(n_);
  for (int u = 0; u < n_; ++u)
    for (int v = u + 1; v < n_; ++v)
      if (!has_edge(u, v)) g.add_edge(u, v);
  return g;
}

}  // namespace mfd
