#include "super/proc.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <new>
#include <utility>

#include "core/budget.h"
#include "core/errors.h"
#include "super/journal.h"  // crc32

namespace mfd::super {
namespace {

// Pipe frame: tag byte ('R' result | 'E' error message), u32 LE payload
// length, u32 LE CRC32 of the payload, payload bytes.
constexpr std::size_t kFrameHeader = 1 + 4 + 4;
constexpr std::size_t kMaxPayload = 256u << 20;  // sanity bound, not a quota

// How long to keep draining the pipe of a child that was already SIGKILLed
// before declaring it silent (a quirky kernel may deliver EOF late).
constexpr double kPostKillDrainMs = 1000.0;

// Child exit codes (distinct from anything the flow uses).
constexpr int kExitOk = 0;
constexpr int kExitTypedError = 61;
constexpr int kExitBadAlloc = 62;

extern "C" void sigterm_wind_down(int) {
  // Async-signal-safe by design: one relaxed atomic store (core/budget.cpp).
  request_global_expire();
}

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

/// Child side: frame + write + _exit. Uses only write(2); no stdio buffers
/// are involved, so nothing is lost to _exit.
[[noreturn]] void child_send_and_exit(int fd, char tag, std::string_view payload,
                                      int exit_code) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  frame += tag;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.append(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(kExitTypedError);  // parent sees a torn/missing frame => crash
    }
    off += static_cast<std::size_t>(n);
  }
  ::_exit(exit_code);
}

[[noreturn]] void child_main(int fd, const std::function<std::string()>& fn,
                             const std::string& fired_file) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = sigterm_wind_down;
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  // Route this child's fault-firing reports into its private file so the
  // parent can latch them at reap time without racing sibling children.
  // The override lives only in the forked child; the parent's environment
  // (possibly user-owned) is never modified.
  if (!fired_file.empty())
    ::setenv("MFD_FAULT_FIRED_FILE", fired_file.c_str(), 1);
  try {
    const std::string payload = fn();
    child_send_and_exit(fd, 'R', payload, kExitOk);
  } catch (const std::bad_alloc&) {
    child_send_and_exit(fd, 'E', "allocation failure (std::bad_alloc)",
                        kExitBadAlloc);
  } catch (const std::exception& e) {
    child_send_and_exit(fd, 'E', e.what(), kExitTypedError);
  } catch (...) {
    child_send_and_exit(fd, 'E', "unknown exception", kExitTypedError);
  }
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

/// Parses the frame out of everything the pipe delivered. Returns false on a
/// missing, torn, or CRC-damaged frame.
bool parse_frame(const std::string& buf, char* tag, std::string* payload) {
  if (buf.size() < kFrameHeader) return false;
  const std::uint32_t len = get_u32(buf.data() + 1);
  const std::uint32_t want = get_u32(buf.data() + 5);
  if (len > kMaxPayload || buf.size() != kFrameHeader + len) return false;
  const std::string_view body(buf.data() + kFrameHeader, len);
  if (crc32(body) != want) return false;
  *tag = buf[0];
  *payload = std::string(body);
  return *tag == 'R' || *tag == 'E';
}

}  // namespace

const char* child_status_name(ChildStatus s) {
  switch (s) {
    case ChildStatus::kOk: return "ok";
    case ChildStatus::kError: return "error";
    case ChildStatus::kCrash: return "crash";
    case ChildStatus::kTimeout: return "timeout";
    case ChildStatus::kOom: return "oom";
  }
  return "?";
}

Child::Child(Child&& other) noexcept { *this = std::move(other); }

Child& Child::operator=(Child&& other) noexcept {
  if (this == &other) return *this;
  if (pid_ > 0 && !reaped_) {  // dropping a live child: don't leak a process
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
  }
  if (fd_ >= 0) ::close(fd_);
  pid_ = other.pid_;
  fd_ = other.fd_;
  start_ = other.start_;
  limits_ = other.limits_;
  fired_file_ = std::move(other.fired_file_);
  buf_ = std::move(other.buf_);
  sigterm_sent_ = other.sigterm_sent_;
  sigkill_sent_ = other.sigkill_sent_;
  sigkill_at_ms_ = other.sigkill_at_ms_;
  eof_ = other.eof_;
  reaped_ = other.reaped_;
  other.pid_ = -1;
  other.fd_ = -1;
  other.reaped_ = true;
  return *this;
}

Child::~Child() {
  if (pid_ > 0 && !reaped_) {
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

double Child::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Child::next_deadline_ms() const {
  if (eof_) return -1.0;  // nothing left to wait for: reap at will
  const double elapsed = elapsed_ms();
  if (sigkill_sent_)
    return sigkill_at_ms_ + kPostKillDrainMs - elapsed;
  if (sigterm_sent_)
    return limits_.watchdog_ms + limits_.grace_ms - elapsed;
  if (limits_.watchdog_ms > 0)
    return limits_.watchdog_ms - elapsed;
  return -1.0;
}

void Child::poke_watchdog() {
  if (eof_ || reaped_) return;
  const double elapsed = elapsed_ms();
  if (!sigterm_sent_) {
    if (limits_.watchdog_ms > 0 && elapsed >= limits_.watchdog_ms) {
      ::kill(pid_, SIGTERM);
      sigterm_sent_ = true;
    }
  } else if (!sigkill_sent_) {
    if (elapsed >= limits_.watchdog_ms + limits_.grace_ms) {
      ::kill(pid_, SIGKILL);
      sigkill_sent_ = true;
      sigkill_at_ms_ = elapsed;
    }
  } else if (elapsed >= sigkill_at_ms_ + kPostKillDrainMs) {
    eof_ = true;  // SIGKILLed a while ago and still no EOF: stop reading
  }
}

void Child::pump() {
  if (eof_ || fd_ < 0) return;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained for now
    eof_ = true;  // unexpected pipe error: treat as end of delivery
    return;
  }
}

ChildOutcome Child::reap() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  int wstatus = 0;
  while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  reaped_ = true;

  ChildOutcome out;
  out.seconds = elapsed_ms() / 1000.0;
  out.soft_timeout = sigterm_sent_;
  if (WIFEXITED(wstatus)) out.exit_code = WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) out.term_signal = WTERMSIG(wstatus);

  char tag = 0;
  std::string payload;
  if (parse_frame(buf_, &tag, &payload)) {
    out.payload = std::move(payload);
    if (tag == 'R') {
      out.status = ChildStatus::kOk;
      out.detail = sigterm_sent_ ? "completed after SIGTERM wind-down" : "completed";
    } else {
      out.status =
          out.exit_code == kExitBadAlloc ? ChildStatus::kOom : ChildStatus::kError;
      out.detail = out.status == ChildStatus::kOom ? "child ran out of memory"
                                                   : "child raised a typed error";
    }
    return out;
  }
  if (sigterm_sent_) {
    out.status = ChildStatus::kTimeout;
    out.detail = "watchdog fired after " + std::to_string(limits_.watchdog_ms) +
                 " ms" + (sigkill_sent_ ? " (SIGKILL escalation)" : "");
    return out;
  }
  if (out.term_signal != 0) {
    // A SIGKILL we did not send is almost always the kernel OOM killer.
    out.status =
        out.term_signal == SIGKILL ? ChildStatus::kOom : ChildStatus::kCrash;
    out.detail = std::string("child killed by ") + signal_name(out.term_signal);
    return out;
  }
  out.status = ChildStatus::kCrash;
  out.detail = out.exit_code == 0
                   ? "child exited without a result record"
                   : "child exited with code " + std::to_string(out.exit_code) +
                         " without a result record";
  return out;
}

std::size_t Child::rss_bytes() const {
#ifdef __linux__
  if (pid_ <= 0 || reaped_) return 0;
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%d/statm", static_cast<int>(pid_));
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  unsigned long size = 0, resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  static const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

Child spawn_child(const std::function<std::string()>& fn,
                  const ChildLimits& limits, const std::string& fired_file) {
  int fds[2];
  if (::pipe(fds) != 0)
    throw Error(std::string("supervisor: pipe failed: ") + std::strerror(errno));

  Child c;
  c.start_ = std::chrono::steady_clock::now();
  c.limits_ = limits;
  c.fired_file_ = fired_file;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw Error(std::string("supervisor: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(fds[1], fn, fired_file);  // never returns
  }
  ::close(fds[1]);
  // Non-blocking read end: a scheduler pumps many children from one poll()
  // loop and must never block on a half-delivered frame.
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, (flags < 0 ? 0 : flags) | O_NONBLOCK);
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  c.pid_ = pid;
  c.fd_ = fds[0];
  return c;
}

ChildOutcome run_in_child(const std::function<std::string()>& fn,
                          const ChildLimits& limits) {
  Child c = spawn_child(fn, limits);
  int poll_failures = 0;
  while (!c.eof()) {
    const double wait_ms = c.next_deadline_ms();
    struct pollfd pfd{c.fd(), POLLIN, 0};
    const int timeout =
        wait_ms < 0 ? -1 : static_cast<int>(wait_ms < 1 ? 1 : wait_ms + 0.5);
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: retry, never misclassify
      // Transient failures (e.g. ENOMEM) get bounded retries with the
      // watchdog still advancing; only a persistently broken poll abandons
      // the wait (and reap() then reports whatever the child managed to send).
      if (++poll_failures > 100) break;
      c.poke_watchdog();
      struct timespec ts{0, 10 * 1000 * 1000};  // 10 ms
      ::nanosleep(&ts, nullptr);
      continue;
    }
    poll_failures = 0;
    if (rc == 0) {  // a deadline passed
      c.poke_watchdog();
      continue;
    }
    c.pump();
  }
  return c.reap();
}

}  // namespace mfd::super
