// Network-level don't-care resubstitution over the LUT IR.
//
// For each live LUT t the pass computes, BDD-exactly over a bounded fanout
// window, the input patterns under which t's value is irrelevant:
//
//  * satisfiability don't cares — fanin patterns no primary-input assignment
//    can produce (the fanins are correlated functions, not free variables);
//  * observability don't cares — patterns whose producing assignments flip
//    no window observable (a window boundary signal or a primary output)
//    regardless of t's value.
//
// Both are exact with respect to the network: every window-boundary signal
// is treated as directly observable, so a rewrite can never change any
// signal leaving the window, and SDC patterns never occur at all. The
// network's output *functions* are therefore preserved bit-exactly — the
// pass cannot weaken admissibility against the specification ISFs.
//
// The don't cares turn t's truth table back into an ISF, which is
// re-minimized with the same machinery the decomposition flow uses: fanins
// whose cofactor halves are compatible are dropped, and the surviving table
// is completed by the Coudert-Madre restrict (Isf::extension_small) on a
// throwaway local manager. A rewrite is applied only when it strictly
// removes fanins (or collapses the LUT to a constant); each sweep ends with
// simplify()+collapse(k) and sweeps iterate to a fixpoint.
//
// The pass is *optional* in the pipeline sense: it buys LUTs, never
// correctness, so the pipeline drops it once the degradation ladder is off
// the full level. While running it charges the governor through the
// manager's mk hot path and stops gracefully (keeping the valid network it
// has) when a budget trips mid-sweep.
#pragma once

#include "net/passmgr.h"

namespace mfd::net {

struct OdcOptions {
  /// Fanout-cone BFS depth defining the observability window. Larger windows
  /// find more don't cares but cost more BDD work per node.
  int window_depth = 3;
  /// Nodes whose window holds more LUTs than this are skipped (the exact
  /// window computation is quadratic-ish in cone size).
  int max_cone_luts = 64;
  /// Sweep fixpoint bound (each sweep visits every live LUT once).
  int max_iters = 4;
  /// Fanin bound for the post-sweep collapse (the flow's LUT size).
  int lut_inputs = 5;
};

class OdcResubstPass final : public Pass {
 public:
  explicit OdcResubstPass(OdcOptions opts = {}) : opts_(opts) {}
  const char* name() const override { return "odc_resubst"; }
  bool optional() const override { return true; }
  bool run(LutNetwork& net, PassContext& ctx) override;

 private:
  OdcOptions opts_;
};

}  // namespace mfd::net
