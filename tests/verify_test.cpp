// Tests of the differential fuzz harness itself (src/verify): generator
// determinism and invariants, oracle checks (including that it *catches*
// planted bugs), shrinker minimality, and reproducer round-trips.
#include <gtest/gtest.h>

#include "core/errors.h"
#include "net/simulate.h"
#include "verify/oracle.h"
#include "verify/repro.h"
#include "verify/shrink.h"
#include "verify/specgen.h"

namespace mfd::verify {
namespace {

TEST(SpecGen, DeterministicAcrossCalls) {
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const TableSpec a = generate_spec(seed);
    const TableSpec b = generate_spec(seed);
    EXPECT_TRUE(same_spec(a, b)) << "seed " << seed;
  }
  EXPECT_FALSE(same_spec(generate_spec(1), generate_spec(2)));
}

TEST(SpecGen, RespectsBoundsAndInvariant) {
  SpecGenOptions opts;
  opts.min_inputs = 2;
  opts.max_inputs = 5;
  opts.max_outputs = 3;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const TableSpec spec = generate_spec(seed, opts);
    ASSERT_GE(spec.num_inputs, 2);
    ASSERT_LE(spec.num_inputs, 5);
    ASSERT_GE(spec.outputs.size(), 1u);
    ASSERT_LE(spec.outputs.size(), 3u);
    for (const TableSpec::Output& out : spec.outputs) {
      ASSERT_EQ(out.on.size(), spec.table_size());
      ASSERT_EQ(out.care.size(), spec.table_size());
      for (std::size_t m = 0; m < spec.table_size(); ++m)
        ASSERT_LE(out.on[m], out.care[m]) << "on set outside care set";
    }
  }
}

TEST(SpecGen, IsfConversionRoundTrips) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const TableSpec spec = generate_spec(seed);
    bdd::Manager m;
    const std::vector<Isf> fns = to_isfs(spec, m);
    ASSERT_EQ(fns.size(), spec.outputs.size());
    const TableSpec back = from_isfs(fns, spec.num_inputs);
    EXPECT_TRUE(same_spec(spec, back)) << "seed " << seed;
  }
}

TEST(SpecGen, CoversDegenerateShapes) {
  // The generator must actually emit the shapes the harness exists to test:
  // all-DC outputs, complete outputs, and (at >=2 outputs) duplicates.
  bool saw_all_dc = false, saw_complete = false, saw_dup = false;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const TableSpec spec = generate_spec(seed);
    for (std::size_t o = 0; o < spec.outputs.size(); ++o) {
      const TableSpec::Output& out = spec.outputs[o];
      bool any_care = false, all_care = true;
      for (std::size_t m = 0; m < spec.table_size(); ++m) {
        any_care |= out.care[m] != 0;
        all_care &= out.care[m] != 0;
      }
      saw_all_dc |= !any_care;
      saw_complete |= all_care;
      for (std::size_t p = 0; p < o; ++p)
        saw_dup |= spec.outputs[p].on == out.on && spec.outputs[p].care == out.care;
    }
  }
  EXPECT_TRUE(saw_all_dc);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_dup);
}

TEST(Oracle, PassesOnHealthyFlow) {
  const TableSpec spec = generate_spec(11);
  const OracleResult r = run_oracle(spec, 11);
  EXPECT_TRUE(r.ok) << r.failing_point << ": " << r.failure;
  EXPECT_GT(r.points_run, 0);
  EXPECT_GT(r.checks_run, r.points_run);
}

TEST(Oracle, OptionPointsAreDeterministic) {
  const auto a = derive_option_points(99);
  const auto b = derive_option_points(99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].group, b[i].group);
    EXPECT_EQ(a[i].cache_on, b[i].cache_on);
  }
  // The determinism cross-check needs at least two points in one group.
  int base_group = 0;
  for (const OptionPoint& p : a) base_group += p.group == "base" ? 1 : 0;
  EXPECT_GE(base_group, 2);
}

TEST(Oracle, CatchesCareSetViolation) {
  // Plant a bug downstream of the flow: claim the synthesized network of a
  // *different* spec satisfies this one. The oracle must refuse.
  const TableSpec spec = generate_spec(5);
  bdd::Manager m;
  const std::vector<Isf> fns = to_isfs(spec, m);
  std::vector<int> pi_vars(static_cast<std::size_t>(spec.num_inputs));
  for (int v = 0; v < spec.num_inputs; ++v) pi_vars[static_cast<std::size_t>(v)] = v;

  // A network computing constant 0 for every output. Unless every output's
  // on-set is empty, check_exact must flag it.
  net::LutNetwork zero(spec.num_inputs);
  for (std::size_t o = 0; o < fns.size(); ++o) zero.add_output(net::kConst0);
  bool any_on = false;
  for (const TableSpec::Output& out : spec.outputs)
    for (std::size_t mt = 0; mt < spec.table_size(); ++mt) any_on |= out.on[mt] != 0;
  ASSERT_TRUE(any_on) << "seed 5 should have a nonempty on-set";
  std::string error;
  EXPECT_FALSE(net::check_exact(zero, fns, pi_vars, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Shrink, MinimizesToPlantedCore) {
  // Failure predicate: "output 0 still cares about minterm 0 and maps it to
  // 1". The shrinker should strip everything else: one output, one variable
  // (or zero DCs), tiny tables.
  SpecGenOptions opts;
  opts.min_inputs = 4;
  opts.max_inputs = 4;
  opts.min_outputs = 3;
  opts.max_outputs = 3;
  TableSpec spec = generate_spec(17, opts);
  spec.outputs[0].care[0] = 1;
  spec.outputs[0].on[0] = 1;

  const auto still_fails = [](const TableSpec& s) {
    return !s.outputs.empty() && s.outputs[0].care[0] != 0 && s.outputs[0].on[0] != 0;
  };
  const ShrinkResult r = shrink_spec(spec, still_fails);
  EXPECT_TRUE(still_fails(r.spec));
  EXPECT_EQ(r.spec.outputs.size(), 1u);
  EXPECT_EQ(r.spec.num_inputs, 1);
  // Stage 3 must have eliminated every don't-care cell.
  for (std::size_t m = 0; m < r.spec.table_size(); ++m)
    EXPECT_TRUE(r.spec.outputs[0].care[m]) << "DC cell survived shrinking";
  EXPECT_GT(r.checks_run, 0);
  EXPECT_LE(r.checks_run, ShrinkOptions{}.max_checks);
}

TEST(Shrink, RespectsCheckBudget) {
  SpecGenOptions opts;
  opts.min_inputs = 6;
  opts.max_inputs = 6;
  TableSpec spec = generate_spec(23, opts);
  ShrinkOptions sh;
  sh.max_checks = 10;
  int calls = 0;
  const ShrinkResult r = shrink_spec(spec, [&](const TableSpec&) {
    ++calls;
    return true;  // everything "fails": worst case for the budget
  }, sh);
  EXPECT_LE(calls, 10);
  EXPECT_EQ(r.checks_run, calls);
}

TEST(Repro, WriteParseRoundTrip) {
  for (std::uint64_t seed : {3ull, 14ull, 77ull}) {
    const TableSpec spec = generate_spec(seed);
    Repro repro;
    repro.spec = spec;
    repro.oracle_seed = seed * 1000 + 1;
    repro.note = "round-trip test";
    const std::string text = write_repro(repro);
    const Repro back = parse_repro(text);
    EXPECT_EQ(back.oracle_seed, repro.oracle_seed);
    EXPECT_EQ(back.note, repro.note);
    EXPECT_TRUE(same_spec(back.spec, spec)) << "seed " << seed;
  }
}

TEST(Repro, RejectsMalformedInput) {
  EXPECT_THROW(parse_repro(".seed 1\n.i 1\n.o 1\n.e\n"), ParseError);  // no version
  EXPECT_THROW(parse_repro(".mfdrepro 1\n.i 1\n.o 1\n.e\n"), ParseError);  // no seed
  EXPECT_THROW(parse_repro(".mfdrepro 99\n.seed 1\n.i 1\n.o 1\n.e\n"), ParseError);
  EXPECT_THROW(replay_repro_file("/nonexistent/path.repro"), Error);
}

TEST(Repro, ReplayRunsOracle) {
  Repro repro;
  repro.spec = generate_spec(31);
  repro.oracle_seed = 31;
  const OracleResult r = replay_repro(repro);
  EXPECT_TRUE(r.ok) << r.failing_point << ": " << r.failure;

  OracleOptions opts;
  opts.jobs_override = 4;
  const OracleResult r4 = replay_repro(repro, opts);
  EXPECT_TRUE(r4.ok) << r4.failing_point << ": " << r4.failure;
}

}  // namespace
}  // namespace mfd::verify
