#include "decomp/encoding.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "decomp/compat.h"
#include "decomp/dc_assign.h"
#include "obs/obs.h"

namespace mfd {
namespace {

/// Value of a candidate function on each class of a partition, or empty if
/// the function is not constant on some class (not strict).
std::vector<int> class_values(const std::vector<bool>& fn,
                              const std::vector<int>& partition, int k) {
  std::vector<int> value(static_cast<std::size_t>(k), -1);
  for (std::size_t v = 0; v < partition.size(); ++v) {
    const int c = partition[v];
    const int bit = fn[v] ? 1 : 0;
    if (value[static_cast<std::size_t>(c)] == -1) {
      value[static_cast<std::size_t>(c)] = bit;
    } else if (value[static_cast<std::size_t>(c)] != bit) {
      return {};  // not strict
    }
  }
  return value;
}

}  // namespace

std::uint32_t Encoding::code_of(int output, int vertex) const {
  std::uint32_t code = 0;
  const auto& idx = used[static_cast<std::size_t>(output)];
  for (std::size_t j = 0; j < idx.size(); ++j)
    if (functions[static_cast<std::size_t>(idx[j])][static_cast<std::size_t>(vertex)])
      code |= std::uint32_t{1} << j;
  return code;
}

Encoding encode_shared(const std::vector<std::vector<int>>& partitions, int p,
                       bool share) {
  const std::size_t num_vertices = std::size_t{1} << p;
  const int m = static_cast<int>(partitions.size());
  Encoding enc;
  enc.used.resize(static_cast<std::size_t>(m));

  // Outputs by decreasing class count: the hardest to encode goes first and
  // seeds the pool with the most reusable functions.
  std::vector<int> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int ka = num_classes(partitions[static_cast<std::size_t>(a)]);
    const int kb = num_classes(partitions[static_cast<std::size_t>(b)]);
    if (ka != kb) return ka > kb;
    return a < b;  // explicit tie-break: unstable sort must not pick the order
  });

  for (const int out : order) {
    const std::vector<int>& part = partitions[static_cast<std::size_t>(out)];
    assert(part.size() == num_vertices);
    const int k = num_classes(part);
    const int r = code_length(k);

    // cell[c] = current code cell of class c; classes in the same cell are
    // not yet separated.
    std::vector<int> cell(static_cast<std::size_t>(k), 0);
    int num_cells = 1;
    auto cell_sizes = [&]() {
      std::vector<int> size(static_cast<std::size_t>(num_cells), 0);
      for (int c : cell) ++size[static_cast<std::size_t>(c)];
      return size;
    };
    auto apply_split = [&](const std::vector<int>& cls_value) {
      // New cell id = old * 2 + bit, re-densified.
      std::vector<int> remap(static_cast<std::size_t>(num_cells) * 2, -1);
      int next = 0;
      for (std::size_t c = 0; c < cell.size(); ++c) {
        const std::size_t key = static_cast<std::size_t>(cell[c]) * 2 +
                                static_cast<std::size_t>(cls_value[c]);
        if (remap[key] == -1) remap[key] = next++;
        cell[c] = remap[key];
      }
      num_cells = next;
    };

    std::vector<int>& selected = enc.used[static_cast<std::size_t>(out)];
    while (static_cast<int>(selected.size()) < r) {
      const int remaining = r - static_cast<int>(selected.size());
      int best_fn = -1;
      long best_gain = 0;
      std::vector<int> best_values;
      if (share) {
        for (int fi = 0; fi < enc.total_functions(); ++fi) {
          if (std::find(selected.begin(), selected.end(), fi) != selected.end())
            continue;
          const std::vector<int> values =
              class_values(enc.functions[static_cast<std::size_t>(fi)], part, k);
          if (values.empty()) continue;  // not strict for this output
          // Tentative split: check the encodability invariant and the gain.
          std::vector<int> zeros(static_cast<std::size_t>(num_cells), 0);
          std::vector<int> ones(static_cast<std::size_t>(num_cells), 0);
          for (std::size_t c = 0; c < cell.size(); ++c)
            ++(values[c] ? ones : zeros)[static_cast<std::size_t>(cell[c])];
          bool safe = true;
          long gain = 0;
          for (int ci = 0; ci < num_cells; ++ci) {
            const int z = zeros[static_cast<std::size_t>(ci)];
            const int o = ones[static_cast<std::size_t>(ci)];
            if (std::max(z, o) > (1 << (remaining - 1))) safe = false;
            gain += std::min(z, o);
          }
          if (!safe || gain == 0) continue;
          if (gain > best_gain) {
            best_gain = gain;
            best_fn = fi;
            best_values = values;
          }
        }
      }

      std::vector<int> values;
      if (best_fn != -1) {
        values = std::move(best_values);
        selected.push_back(best_fn);
        ++enc.pool_hits;
        obs::add("encoding.pool_hits");
      } else {
        // Fresh balanced splitter: in every cell, the first half of the
        // classes gets 0, the rest 1. ceil(s/2) <= 2^(remaining-1) holds by
        // the invariant, so the split is always safe.
        values.assign(static_cast<std::size_t>(k), 0);
        std::vector<int> seen(static_cast<std::size_t>(num_cells), 0);
        const std::vector<int> size = cell_sizes();
        for (int c = 0; c < k; ++c) {
          const int ci = cell[static_cast<std::size_t>(c)];
          const int rank = seen[static_cast<std::size_t>(ci)]++;
          values[static_cast<std::size_t>(c)] =
              rank >= (size[static_cast<std::size_t>(ci)] + 1) / 2 ? 1 : 0;
        }
        std::vector<bool> fn(num_vertices);
        for (std::size_t v = 0; v < num_vertices; ++v)
          fn[v] = values[static_cast<std::size_t>(part[v])] != 0;
        enc.functions.push_back(std::move(fn));
        selected.push_back(enc.total_functions() - 1);
        ++enc.fresh_splitters;
        obs::add("encoding.fresh_splitters");
      }
      apply_split(values);
    }
    assert(num_cells == k && "classes must be fully separated by r functions");
  }
  // Canonical polarity: value false on bound vertex 0. Complementing a
  // strict function keeps it strict and keeps every separation (each code
  // word flips the same bit, via code_of), so the encoding stays valid —
  // while functions that differ only in polarity become identical tables
  // the alpha pool can merge (see the header comment).
  for (auto& fn : enc.functions)
    if (fn[0]) fn.flip();
  obs::add("encoding.outputs_encoded", static_cast<std::uint64_t>(m));
  return enc;
}

bool encoding_is_valid(const Encoding& enc,
                       const std::vector<std::vector<int>>& partitions) {
  for (std::size_t out = 0; out < partitions.size(); ++out) {
    const std::vector<int>& part = partitions[out];
    const int k = num_classes(part);
    std::vector<std::int64_t> code(static_cast<std::size_t>(k), -1);
    for (std::size_t v = 0; v < part.size(); ++v) {
      const std::int64_t c = enc.code_of(static_cast<int>(out), static_cast<int>(v));
      auto& slot = code[static_cast<std::size_t>(part[v])];
      if (slot == -1)
        slot = c;
      else if (slot != c)
        return false;  // not constant within a class
    }
    std::sort(code.begin(), code.end());
    if (std::adjacent_find(code.begin(), code.end()) != code.end())
      return false;  // two classes share a code
  }
  return true;
}

}  // namespace mfd
