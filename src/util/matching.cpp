#include "util/matching.h"

#include <algorithm>
#include <queue>

namespace mfd {
namespace {

/// Edmonds' blossom algorithm, standard formulation: BFS from each free
/// vertex, contracting blossoms via the base[] array, augmenting when an
/// exposed even vertex is reached.
class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g), n_(g.num_vertices()), mate_(n_, -1), parent_(n_), base_(n_) {}

  std::vector<int> run() {
    for (int v = 0; v < n_; ++v)
      if (mate_[v] == -1) find_augmenting_path(v);
    return mate_;
  }

 private:
  int lowest_common_ancestor(int a, int b) {
    std::vector<bool> used(n_, false);
    // Walk up from a marking bases, then walk up from b until a mark is hit.
    for (int v = a;;) {
      v = base_[v];
      used[v] = true;
      if (mate_[v] == -1) break;
      v = parent_[mate_[v]];
    }
    for (int v = b;;) {
      v = base_[v];
      if (used[v]) return v;
      v = parent_[mate_[v]];
    }
  }

  void mark_path(int v, int b, int child, std::vector<bool>& blossom) {
    while (base_[v] != b) {
      blossom[base_[v]] = true;
      blossom[base_[mate_[v]]] = true;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  void contract(int u, int v, std::queue<int>& q, std::vector<bool>& in_queue) {
    const int b = lowest_common_ancestor(u, v);
    std::vector<bool> blossom(n_, false);
    mark_path(u, b, v, blossom);
    mark_path(v, b, u, blossom);
    for (int i = 0; i < n_; ++i) {
      if (!blossom[base_[i]]) continue;
      base_[i] = b;
      if (!in_queue[i]) {
        in_queue[i] = true;
        q.push(i);
      }
    }
  }

  void find_augmenting_path(int root) {
    std::fill(parent_.begin(), parent_.end(), -1);
    for (int v = 0; v < n_; ++v) base_[v] = v;
    std::vector<bool> in_queue(n_, false);
    std::queue<int> q;
    q.push(root);
    in_queue[root] = true;

    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int w : g_.neighbors(u)) {
        if (base_[u] == base_[w] || mate_[u] == w) continue;
        if (w == root || (mate_[w] != -1 && parent_[mate_[w]] != -1)) {
          // w is an even vertex in the forest: odd cycle -> blossom.
          contract(u, w, q, in_queue);
        } else if (parent_[w] == -1) {
          parent_[w] = u;
          if (mate_[w] == -1) {
            augment(w);
            return;
          }
          if (!in_queue[mate_[w]]) {
            in_queue[mate_[w]] = true;
            q.push(mate_[w]);
          }
        }
      }
    }
  }

  void augment(int v) {
    while (v != -1) {
      const int pv = parent_[v];
      const int ppv = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  int n_;
  std::vector<int> mate_;
  std::vector<int> parent_;
  std::vector<int> base_;
};

}  // namespace

std::vector<int> maximum_matching(const Graph& g) {
  return Blossom(g).run();
}

int matching_size(const std::vector<int>& mate) {
  int matched = 0;
  for (int v = 0; v < static_cast<int>(mate.size()); ++v)
    if (mate[v] > v) ++matched;
  return matched;
}

bool matching_is_valid(const Graph& g, const std::vector<int>& mate) {
  const int n = g.num_vertices();
  if (static_cast<int>(mate.size()) != n) return false;
  for (int v = 0; v < n; ++v) {
    const int m = mate[v];
    if (m == -1) continue;
    if (m < 0 || m >= n || mate[m] != v || !g.has_edge(v, m)) return false;
  }
  return true;
}

}  // namespace mfd
