// Crash-safe sweep journal: the durability layer of the sweep supervisor
// (super/supervisor.h, docs/ROBUSTNESS.md §"Sweep supervision").
//
// One journal records one sweep. The file is append-only JSONL with a
// per-line CRC32 guard:
//
//   <crc32 hex8> <json document>\n
//
// where the CRC covers exactly the JSON payload bytes. The first line is a
// versioned header ({"type":"header","format":"mfd-sweep-journal",
// "version":1,...}); every following line is one row outcome. Durability
// contract:
//
//   * `create` commits the header via write-temp + fsync + rename, so a
//     crash during creation never leaves a half-written journal behind.
//   * `append` writes the full line with one write(2) and fsyncs before
//     returning — once append returns, the outcome survives SIGKILL.
//   * `open` (resume) replays and CRC-verifies every line. A damaged *last*
//     line — torn write, missing newline, bad CRC — is a torn tail: it is
//     dropped (at most one record is lost, and the caller is told), and the
//     cleaned file is recommitted via temp + fsync + rename before any new
//     append. Damage anywhere *before* the last line cannot be explained by
//     a torn append, so it is rejected with a typed mfd::Error, as is a
//     header with the wrong format or version.
//
// Keys are caller-chosen row identities (the bench harness uses
// "circuit/flow"). Replaying is idempotent: `find` returns the journaled
// outcome so a resumed sweep skips completed rows bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mfd::super {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`.
std::uint32_t crc32(std::string_view data);

/// One journaled row outcome.
struct JournalRecord {
  std::string key;       ///< row identity, e.g. "alu2/mulop-dc"
  std::string status;    ///< "ok" | "failed"
  int attempts = 1;      ///< child runs this outcome took (retries included)
  std::string outcome;   ///< final child status name ("ok","crash","timeout",...)
  std::string reason;    ///< failure detail when status == "failed"
  std::string row_json;  ///< the child's run document ("" when failed)
};

/// What `open` had to do to recover the journal.
struct RecoveryInfo {
  std::size_t records = 0;         ///< valid row records replayed
  bool dropped_torn_tail = false;  ///< a damaged last line was discarded
  std::string torn_tail;           ///< the dropped raw line (diagnostics)
  /// --resume was requested but no journal existed at the path, so a fresh
  /// one was created and every row will re-run (supervisor warns loudly:
  /// a typo'd --journal must not masquerade as a clean resume).
  bool fresh_despite_resume = false;
};

class Journal {
 public:
  static constexpr int kVersion = 1;

  /// Creates a fresh journal at `path` (replacing any existing file) with an
  /// atomically committed header. Throws mfd::Error on I/O failure.
  static Journal create(const std::string& path, const std::string& binary = {});

  /// Opens an existing journal for resume. Validates header + per-record
  /// CRCs, drops at most one torn trailing record (reported via `info`),
  /// throws mfd::Error on interior corruption or a format/version mismatch.
  static Journal open(const std::string& path, RecoveryInfo* info = nullptr);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Appends one outcome and fsyncs. Throws mfd::Error on I/O failure.
  void append(const JournalRecord& rec);

  /// The journaled outcome for `key`, or nullptr. Records appended in this
  /// process are visible too; duplicate keys keep the first record (the one
  /// a resumed sweep replays).
  const JournalRecord* find(const std::string& key) const;

  const std::vector<JournalRecord>& records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  Journal() = default;

  void open_for_append();

  std::string path_;
  int fd_ = -1;
  std::vector<JournalRecord> records_;
  std::map<std::string, std::size_t> by_key_;  // key -> index of first record
};

}  // namespace mfd::super
