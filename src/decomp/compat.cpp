#include "decomp/compat.h"

#include <cassert>
#include <map>
#include <utility>

namespace mfd {

int CofactorTable::num_bound_vars() const {
  int p = 0;
  while ((std::size_t{1} << p) < entries.size()) ++p;
  return p;
}

CofactorTable cofactor_table(const Isf& f, const std::vector<int>& bound) {
  const int p = static_cast<int>(bound.size());
  CofactorTable table;
  table.entries.reserve(std::size_t{1} << p);
  bdd::Manager& m = *f.manager();
  std::vector<std::pair<int, bool>> assignment(bound.size());
  for (std::uint32_t v = 0; v < (std::uint32_t{1} << p); ++v) {
    for (int k = 0; k < p; ++k) assignment[static_cast<std::size_t>(k)] = {bound[static_cast<std::size_t>(k)], (v >> k) & 1};
    const bdd::Bdd on = m.wrap(m.cofactor_cube(f.on().id(), assignment));
    const bdd::Bdd care = m.wrap(m.cofactor_cube(f.care().id(), assignment));
    table.entries.emplace_back(on, care);
  }
  return table;
}

bool vertices_compatible(const Isf& a, const Isf& b) { return a.compatible_with(b); }

int ncc_complete(bdd::Manager& m, bdd::Edge f, const std::vector<int>& bound) {
  const int p = static_cast<int>(bound.size());
  // The map keys are unreferenced cofactor results that must stay distinct
  // edges until the loop ends: hold reactive GC off.
  bdd::Manager::AutoGcPause pause(m);
  std::map<bdd::Edge, int> distinct;
  std::vector<std::pair<int, bool>> assignment(bound.size());
  for (std::uint32_t v = 0; v < (std::uint32_t{1} << p); ++v) {
    for (int k = 0; k < p; ++k) assignment[static_cast<std::size_t>(k)] = {bound[static_cast<std::size_t>(k)], (v >> k) & 1};
    distinct.emplace(m.cofactor_cube(f, assignment), 1);
  }
  return static_cast<int>(distinct.size());
}

Graph incompatibility_graph(const CofactorTable& table) {
  const int n = static_cast<int>(table.entries.size());
  Graph g(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (!vertices_compatible(table.entries[static_cast<std::size_t>(a)],
                               table.entries[static_cast<std::size_t>(b)]))
        g.add_edge(a, b);
  return g;
}

Graph joint_incompatibility_graph(const std::vector<CofactorTable>& tables) {
  assert(!tables.empty());
  const int n = static_cast<int>(tables.front().entries.size());
  Graph g(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (const CofactorTable& t : tables) {
        if (!vertices_compatible(t.entries[static_cast<std::size_t>(a)],
                                 t.entries[static_cast<std::size_t>(b)])) {
          g.add_edge(a, b);
          break;
        }
      }
    }
  }
  return g;
}

std::vector<int> partition_by_equality(const CofactorTable& table) {
  std::map<std::pair<bdd::Edge, bdd::Edge>, int> classes;
  std::vector<int> result;
  result.reserve(table.entries.size());
  for (const Isf& e : table.entries) {
    const auto key = std::make_pair(e.on().id(), e.care().id());
    const auto [it, inserted] = classes.emplace(key, static_cast<int>(classes.size()));
    result.push_back(it->second);
  }
  return result;
}

int code_length(int k) {
  assert(k >= 1);
  int r = 0;
  while ((1 << r) < k) ++r;
  return r;
}

}  // namespace mfd
