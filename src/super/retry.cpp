#include "super/retry.h"

#include <algorithm>

namespace mfd::super {

std::vector<RetryRung> RetryPolicy::default_rungs() {
  // Rung 0 (first retry): full effort — a latched one-shot fault or a
  // transient OOM will not recur, and an unchanged rerun keeps results
  // bit-identical to an undisturbed sweep.
  // Rung 1: clamp hard enough that the flow degrades instead of re-dying.
  // Rung 2: the floors CI's tight-budget sweeps run at — every table-1
  // circuit still emits a verified (structural, if need be) network there.
  return {{0.0, 0}, {30000.0, 200000}, {2000.0, 2000}};
}

RetryDecision plan_retry(const RetryPolicy& policy, ChildStatus last, int attempt) {
  RetryDecision d;
  const bool abnormal = last == ChildStatus::kCrash || last == ChildStatus::kTimeout ||
                        last == ChildStatus::kOom;
  if (!abnormal || attempt > policy.max_retries) return d;
  d.retry = true;
  double delay = policy.backoff_ms;
  for (int i = 1; i < attempt; ++i) delay *= policy.backoff_factor;
  d.delay_ms = std::min(delay, policy.backoff_max_ms);
  if (!policy.rungs.empty()) {
    const std::size_t idx =
        std::min(static_cast<std::size_t>(attempt - 1), policy.rungs.size() - 1);
    d.rung = policy.rungs[idx];
  }
  return d;
}

}  // namespace mfd::super
