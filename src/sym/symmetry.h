// Symmetry detection for (incompletely specified) Boolean functions.
//
// Symmetries matter twice in the decomposition flow (Section 4 of the paper):
//  * a function symmetric in its whole bound set of size p needs at most
//    ceil(log2(p+1)) decomposition functions, and
//  * strict decomposition functions inherit the symmetries of the function
//    they decompose, so symmetry gains persist through the recursion.
//
// We handle the two classic pair symmetries of [5]:
//   nonequivalence (NE):  f|x_i=0,x_j=1 == f|x_i=1,x_j=0   (exchange x_i,x_j)
//   equivalence (E):      f|x_i=0,x_j=0 == f|x_i=1,x_j=1
// Both are instances of the G-symmetries of [6] (combinations of exchanges
// and negations).
#pragma once

#include <vector>

#include "isf/isf.h"

namespace mfd {

enum class SymmetryKind { kNonequivalence, kEquivalence };

/// True iff the completely specified function `f` is NE/E-symmetric in
/// (var_a, var_b).
bool is_symmetric(bdd::Manager& m, bdd::Edge f, int var_a, int var_b,
                  SymmetryKind kind);

/// True iff the ISF is symmetric *as a specification*: both the on-set and
/// the care-set are invariant (don't cares treated as a third value).
bool isf_is_symmetric(const Isf& f, int var_a, int var_b, SymmetryKind kind);

/// True iff the don't cares of `f` can be assigned so that the result is
/// NE/E-symmetric in (var_a, var_b): no input pattern where the two relevant
/// cofactors are cared for with conflicting values.
bool symmetrizable(const Isf& f, int var_a, int var_b, SymmetryKind kind);

/// Assigns don't cares of `f` to make it NE/E-symmetric in (var_a, var_b).
/// Precondition: symmetrizable(...). The assignment is minimal: only points
/// forced by the mirror cofactor become cared for.
Isf make_symmetric(const Isf& f, int var_a, int var_b, SymmetryKind kind);

/// Partition of `vars` into maximal classes such that every listed function
/// is NE-symmetric (as a specification) in every pair within a class.
/// Exchange symmetry is transitive, so the classes are well defined.
/// Singleton classes are included.
std::vector<std::vector<int>> symmetry_groups(const std::vector<Isf>& fns,
                                              const std::vector<int>& vars);

/// Convenience overload for completely specified functions.
std::vector<std::vector<int>> symmetry_groups(bdd::Manager& m,
                                              const std::vector<bdd::Edge>& fns,
                                              const std::vector<int>& vars);

}  // namespace mfd
