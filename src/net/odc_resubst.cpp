// Windowed ODC/SDC resubstitution (contract and algorithm sketch in the
// header). The exactness argument lives here, next to the code that has to
// uphold it: a LUT t may change its value only on primary-input assignments
// where every window observable o satisfies S0_o(x) == S1_o(x) — o's value
// at x does not depend on t's value at x — so *any* new function for t
// leaves every observable, and hence every network output, bit-identical.
// Sensitivity is pointwise in x, which is what makes simultaneous flips at
// many assignments sound.
#include "net/odc_resubst.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/budget.h"
#include "isf/isf.h"
#include "net/lutnet.h"
#include "obs/obs.h"

namespace mfd::net {
namespace {

/// Per-sweep view of the network: global signal BDDs, liveness, fanouts.
struct SweepState {
  std::vector<bdd::Bdd> signal;     // signal id -> BDD over pi_vars
  std::vector<bool> live;           // by LUT index
  std::vector<std::vector<int>> fanouts;  // signal id -> consumer LUT indices
  std::vector<bool> is_po;          // signal id -> drives a primary output

  bdd::Bdd signal_bdd(const bdd::Manager& m, int s) const {
    if (s == kConst0) return const_cast<bdd::Manager&>(m).bdd_false();
    if (s == kConst1) return const_cast<bdd::Manager&>(m).bdd_true();
    return signal[static_cast<std::size_t>(s)];
  }

  void refresh(const LutNetwork& net, bdd::Manager& m,
               const std::vector<int>& pi_vars) {
    const std::size_t num_signals =
        static_cast<std::size_t>(net.num_primary_inputs() + net.num_luts());
    signal.assign(num_signals, bdd::Bdd());
    for (int i = 0; i < net.num_primary_inputs(); ++i)
      signal[static_cast<std::size_t>(i)] =
          m.var(pi_vars[static_cast<std::size_t>(i)]);
    for (int i = 0; i < net.num_luts(); ++i)
      signal[static_cast<std::size_t>(net.lut_signal(i))] =
          lut_bdd(net.lut(i), m, [&](int s) { return signal_bdd(m, s); });

    live = net.live_luts();
    fanouts.assign(num_signals, {});
    for (int i = 0; i < net.num_luts(); ++i) {
      if (!live[static_cast<std::size_t>(i)]) continue;
      for (int in : net.lut(i).inputs)
        if (!net.is_constant(in))
          fanouts[static_cast<std::size_t>(in)].push_back(i);
    }
    is_po.assign(num_signals, false);
    for (int s : net.outputs())
      if (!net.is_constant(s)) is_po[static_cast<std::size_t>(s)] = true;
  }

  /// BDD of one LUT given a fanin-BDD lookup (sum of on-set minterms, the
  /// same construction output_bdds uses).
  template <typename FaninBdd>
  static bdd::Bdd lut_bdd(const Lut& lut, bdd::Manager& m, FaninBdd fanin) {
    bdd::Bdd f = m.bdd_false();
    for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
      if (!lut.table[idx]) continue;
      bdd::Bdd minterm = m.bdd_true();
      for (std::size_t j = 0; j < lut.inputs.size(); ++j) {
        const bdd::Bdd in = fanin(lut.inputs[j]);
        minterm &= ((idx >> j) & 1) ? in : !in;
      }
      f |= minterm;
    }
    return f;
  }
};

/// The fanout window of LUT t: members by BFS level (min distance from t,
/// capped at `depth`), in ascending LUT-index order per level set.
struct Window {
  std::vector<int> members;  // cone LUT indices, ascending (topo order)
  std::vector<int> level;    // parallel to members
  bool too_big = false;
};

Window build_window(const LutNetwork& net, const SweepState& st, int t_idx,
                    int depth, int max_luts) {
  Window w;
  std::vector<int> dist(static_cast<std::size_t>(net.num_luts()), -1);
  std::vector<int> frontier = {t_idx};
  dist[static_cast<std::size_t>(t_idx)] = 0;
  for (int d = 1; d <= depth && !frontier.empty(); ++d) {
    std::vector<int> next;
    for (int u : frontier) {
      for (int v : st.fanouts[static_cast<std::size_t>(net.lut_signal(u))]) {
        if (dist[static_cast<std::size_t>(v)] != -1) continue;
        dist[static_cast<std::size_t>(v)] = d;
        next.push_back(v);
        if (static_cast<int>(w.members.size()) + static_cast<int>(next.size()) >
            max_luts) {
          w.too_big = true;
          return w;
        }
      }
    }
    for (int v : next) w.members.push_back(v);
    frontier = std::move(next);
  }
  std::sort(w.members.begin(), w.members.end());
  w.level.reserve(w.members.size());
  for (int u : w.members) w.level.push_back(dist[static_cast<std::size_t>(u)]);
  return w;
}

/// Care set of LUT t over primary-input assignments: assignments where some
/// window observable is sensitive to t's value. Observables are cone members
/// that drive a primary output or sit on the window frontier (their
/// consumers were not explored); t itself being a PO makes everything care.
bdd::Bdd compute_care(const LutNetwork& net, const SweepState& st,
                      bdd::Manager& m, int t_idx, const Window& w, int depth) {
  const int t_sig = net.lut_signal(t_idx);
  if (st.is_po[static_cast<std::size_t>(t_sig)]) return m.bdd_true();

  // S0/S1: each cone signal as a function of the primary inputs with t's
  // signal forced to 0 / 1. Members are in ascending (= topological) order.
  std::vector<bdd::Bdd> s0(w.members.size()), s1(w.members.size());
  auto cone_pos = [&](int lut_idx) {
    const auto it =
        std::lower_bound(w.members.begin(), w.members.end(), lut_idx);
    if (it == w.members.end() || *it != lut_idx) return -1;
    return static_cast<int>(it - w.members.begin());
  };
  for (std::size_t i = 0; i < w.members.size(); ++i) {
    const Lut& lut = net.lut(w.members[i]);
    for (int value = 0; value < 2; ++value) {
      auto fanin = [&](int s) -> bdd::Bdd {
        if (s == t_sig) return value ? m.bdd_true() : m.bdd_false();
        if (!net.is_constant(s) && !net.is_primary_input(s)) {
          const int p = cone_pos(net.lut_index(s));
          if (p != -1) return value ? s1[static_cast<std::size_t>(p)]
                                    : s0[static_cast<std::size_t>(p)];
        }
        return st.signal_bdd(m, s);
      };
      (value ? s1[i] : s0[i]) = SweepState::lut_bdd(lut, m, fanin);
    }
  }

  bdd::Bdd care = m.bdd_false();
  for (std::size_t i = 0; i < w.members.size(); ++i) {
    const int u = w.members[i];
    const bool frontier = w.level[i] == depth;
    const bool po = st.is_po[static_cast<std::size_t>(net.lut_signal(u))];
    if (!frontier && !po) continue;
    care |= s0[i] ^ s1[i];
    if (care.is_true()) break;
  }
  return care;
}

/// Truth-table ISF of one LUT: care bit per fanin pattern, false when no
/// primary-input assignment both produces the pattern (SDC) and lands in
/// the ODC care set. Returns false when the table has no don't cares.
bool table_isf(const LutNetwork& net, const SweepState& st, bdd::Manager& m,
               int t_idx, const bdd::Bdd& care_set, std::vector<bool>* on,
               std::vector<bool>* care) {
  const Lut& lut = net.lut(t_idx);
  const std::size_t size = lut.table.size();
  on->assign(size, false);
  care->assign(size, false);
  bool any_dc = false;
  for (std::size_t idx = 0; idx < size; ++idx) {
    bdd::Bdd producible = care_set;
    for (std::size_t j = 0; j < lut.inputs.size() && !producible.is_false();
         ++j) {
      const bdd::Bdd in = st.signal_bdd(m, lut.inputs[j]);
      producible &= ((idx >> j) & 1) ? in : !in;
    }
    const bool cared = !producible.is_false();
    (*care)[idx] = cared;
    (*on)[idx] = cared && lut.table[idx];
    any_dc |= !cared;
  }
  return any_dc;
}

/// Greedy compatible-fanin elimination on a truth-table ISF: drop dimension
/// r when the two halves agree wherever both care; merge on/care. Repeats
/// until no dimension is removable. `rem` receives the surviving positions
/// (indices into the original fanin list), ascending.
void remove_compatible_inputs(std::vector<bool>* on, std::vector<bool>* care,
                              std::vector<int>* rem) {
  bool removed = true;
  while (removed && !rem->empty()) {
    removed = false;
    for (std::size_t r = 0; r < rem->size(); ++r) {
      const std::size_t k = rem->size();
      const std::size_t half = std::size_t{1} << (k - 1);
      const std::size_t lo_bits = (std::size_t{1} << r) - 1;
      auto expand = [&](std::size_t idx, bool bit) {
        return (idx & lo_bits) | (bit ? (std::size_t{1} << r) : 0) |
               ((idx & ~lo_bits) << 1);
      };
      bool compatible = true;
      for (std::size_t idx = 0; idx < half && compatible; ++idx) {
        const std::size_t a = expand(idx, false), b = expand(idx, true);
        if ((*care)[a] && (*care)[b] && (*on)[a] != (*on)[b]) compatible = false;
      }
      if (!compatible) continue;
      std::vector<bool> non(half), ncare(half);
      for (std::size_t idx = 0; idx < half; ++idx) {
        const std::size_t a = expand(idx, false), b = expand(idx, true);
        non[idx] = ((*care)[a] && (*on)[a]) || ((*care)[b] && (*on)[b]);
        ncare[idx] = (*care)[a] || (*care)[b];
      }
      *on = std::move(non);
      *care = std::move(ncare);
      rem->erase(rem->begin() + static_cast<std::ptrdiff_t>(r));
      removed = true;
      break;  // dimensions shifted; restart the scan
    }
  }
}

/// Completes the remaining don't cares, preferring a small representation:
/// Coudert-Madre restrict of the on-set w.r.t. the care set on a throwaway
/// local manager (one variable per surviving fanin), then drops fanins the
/// chosen extension turned inessential.
Lut fill_extension(const Lut& old, const std::vector<bool>& on,
                   const std::vector<bool>& care, std::vector<int> rem) {
  Lut out;
  if (rem.empty()) {
    out.table = {care[0] && on[0]};
    return out;
  }
  const std::size_t k = rem.size();
  bdd::Manager lm(static_cast<int>(k));
  bdd::Bdd on_b = lm.bdd_false(), care_b = lm.bdd_false();
  for (std::size_t idx = 0; idx < (std::size_t{1} << k); ++idx) {
    if (!care[idx]) continue;
    bdd::Bdd minterm = lm.bdd_true();
    for (std::size_t j = 0; j < k; ++j) {
      const bdd::Bdd v = lm.var(static_cast<int>(j));
      minterm &= ((idx >> j) & 1) ? v : !v;
    }
    care_b |= minterm;
    if (on[idx]) on_b |= minterm;
  }
  const bdd::Bdd ext = Isf(on_b, care_b).extension_small();

  std::vector<bool> table(std::size_t{1} << k);
  std::vector<bool> assignment(k, false);
  for (std::size_t idx = 0; idx < table.size(); ++idx) {
    for (std::size_t j = 0; j < k; ++j) assignment[j] = (idx >> j) & 1;
    table[idx] = lm.eval(ext.id(), assignment);
  }

  // The extension may not depend on every surviving fanin — drop the ones
  // whose cofactor halves became equal.
  for (std::size_t r = rem.size(); r-- > 0;) {
    const std::size_t cur = rem.size();
    const std::size_t half = std::size_t{1} << (cur - 1);
    const std::size_t lo_bits = (std::size_t{1} << r) - 1;
    auto expand = [&](std::size_t idx, bool bit) {
      return (idx & lo_bits) | (bit ? (std::size_t{1} << r) : 0) |
             ((idx & ~lo_bits) << 1);
    };
    bool essential = false;
    for (std::size_t idx = 0; idx < half && !essential; ++idx)
      essential = table[expand(idx, false)] != table[expand(idx, true)];
    if (essential) continue;
    std::vector<bool> shrunk(half);
    for (std::size_t idx = 0; idx < half; ++idx)
      shrunk[idx] = table[expand(idx, false)];
    table = std::move(shrunk);
    rem.erase(rem.begin() + static_cast<std::ptrdiff_t>(r));
  }

  out.inputs.reserve(rem.size());
  for (int r : rem) out.inputs.push_back(old.inputs[static_cast<std::size_t>(r)]);
  out.table = std::move(table);
  return out;
}

/// RAII governor binding so the pass's BDD work charges the run's budget
/// through the manager mk hot path (same mechanism the decompose flow uses).
struct GovernorBinding {
  GovernorBinding(bdd::Manager& m, ResourceGovernor* g)
      : m_(m), prev_(m.set_governor(g)) {}
  ~GovernorBinding() { m_.set_governor(prev_); }
  GovernorBinding(const GovernorBinding&) = delete;
  GovernorBinding& operator=(const GovernorBinding&) = delete;

 private:
  bdd::Manager& m_;
  ResourceGovernor* prev_;
};

}  // namespace

bool OdcResubstPass::run(LutNetwork& net, PassContext& ctx) {
  if (ctx.manager == nullptr || ctx.pi_vars == nullptr) return false;
  bdd::Manager& m = *ctx.manager;
  GovernorBinding bind(m, ctx.governor);

  bool any = false;
  try {
    SweepState st;
    for (int iter = 0; iter < opts_.max_iters; ++iter) {
      obs::add("pass.odc.sweeps");
      st.refresh(net, m, *ctx.pi_vars);
      bool changed = false;
      for (int t = 0; t < net.num_luts(); ++t) {
        if (!st.live[static_cast<std::size_t>(t)]) continue;
        if (ctx.governor != nullptr) ctx.governor->check_deadline("pass.odc");
        obs::add("pass.odc.nodes_scanned");

        const Window w = build_window(net, st, t, opts_.window_depth,
                                      opts_.max_cone_luts);
        if (w.too_big) {
          obs::add("pass.odc.cone_skips");
          continue;
        }
        const bdd::Bdd care_set =
            compute_care(net, st, m, t, w, opts_.window_depth);

        std::vector<bool> on, care;
        if (!table_isf(net, st, m, t, care_set, &on, &care)) continue;

        const Lut& old = net.lut(t);
        std::vector<int> rem(old.inputs.size());
        for (std::size_t j = 0; j < rem.size(); ++j)
          rem[j] = static_cast<int>(j);
        remove_compatible_inputs(&on, &care, &rem);
        if (rem.size() == old.inputs.size()) continue;  // nothing strictly won

        Lut repl = fill_extension(old, on, care, std::move(rem));
        const int saved =
            static_cast<int>(old.inputs.size() - repl.inputs.size());
        net.replace_lut(t, std::move(repl));
        obs::add("pass.odc.rewrites");
        obs::add("pass.odc.fanins_removed", static_cast<std::uint64_t>(saved));
        changed = true;
        // Downstream signal functions changed (on don't-care assignments
        // only, but changed): refresh before judging the next node.
        st.refresh(net, m, *ctx.pi_vars);
      }
      if (!changed) break;
      any = true;
      net.simplify();
      net.collapse(opts_.lut_inputs);
      m.garbage_collect();
    }
  } catch (const BudgetExceeded&) {
    // Optional quality pass: keep the (always-valid) network we have and let
    // the rest of the pipeline proceed rather than re-entering the ladder.
    obs::add("pass.odc.budget_aborts");
  }
  return any;
}

}  // namespace mfd::net
