// Recursive BDD operations. None of these run garbage collection, so
// intermediate results (reference count zero) are safe until the caller
// anchors the final result in a handle.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "bdd/bdd.h"

namespace mfd::bdd {

// ---------------------------------------------------------------------------
// Bdd handle operators
// ---------------------------------------------------------------------------

Bdd Bdd::operator&(const Bdd& o) const { return mgr_->wrap(mgr_->apply_and(id_, o.id_)); }
Bdd Bdd::operator|(const Bdd& o) const { return mgr_->wrap(mgr_->apply_or(id_, o.id_)); }
Bdd Bdd::operator^(const Bdd& o) const { return mgr_->wrap(mgr_->apply_xor(id_, o.id_)); }
Bdd Bdd::operator!() const { return mgr_->wrap(mgr_->apply_not(id_)); }

Bdd Bdd::cofactor(int var, bool value) const {
  return mgr_->wrap(mgr_->cofactor(id_, var, value));
}

std::size_t Bdd::size() const { return mgr_->dag_size(id_); }

// ---------------------------------------------------------------------------
// ITE
// ---------------------------------------------------------------------------

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) { return ite_rec(f, g, h); }

NodeId Manager::ite_rec(NodeId f, NodeId g, NodeId h) {
  // Terminal and trivial cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (f == g) g = kTrue;   // ite(f, f, h) == ite(f, 1, h)
  if (f == h) h = kFalse;  // ite(f, g, f) == ite(f, g, 0)
  if (g == kTrue && h == kFalse) return f;

  NodeId r = cache_lookup(kOpIte, f, g, h);
  if (r != kInvalid) return r;

  const int lf = node_level(f), lg = node_level(g), lh = node_level(h);
  const int top = std::min(lf, std::min(lg, lh));
  const int v = level_to_var_[top];

  const NodeId f0 = lf == top ? nodes_[f].lo : f;
  const NodeId f1 = lf == top ? nodes_[f].hi : f;
  const NodeId g0 = lg == top ? nodes_[g].lo : g;
  const NodeId g1 = lg == top ? nodes_[g].hi : g;
  const NodeId h0 = lh == top ? nodes_[h].lo : h;
  const NodeId h1 = lh == top ? nodes_[h].hi : h;

  const NodeId r0 = ite_rec(f0, g0, h0);
  const NodeId r1 = ite_rec(f1, g1, h1);
  r = mk(v, r0, r1);
  cache_insert(kOpIte, f, g, h, r);
  return r;
}

NodeId Manager::apply_xor(NodeId f, NodeId g) { return xor_rec(f, g); }

NodeId Manager::xor_rec(NodeId f, NodeId g) {
  if (f == g) return kFalse;
  if (f == kFalse) return g;
  if (g == kFalse) return f;
  if (f == kTrue) return ite_rec(g, kFalse, kTrue);
  if (g == kTrue) return ite_rec(f, kFalse, kTrue);
  if (f > g) std::swap(f, g);  // commutative: canonicalize for the cache

  NodeId r = cache_lookup(kOpXor, f, g, 0);
  if (r != kInvalid) return r;

  const int lf = node_level(f), lg = node_level(g);
  const int top = std::min(lf, lg);
  const int v = level_to_var_[top];
  const NodeId f0 = lf == top ? nodes_[f].lo : f;
  const NodeId f1 = lf == top ? nodes_[f].hi : f;
  const NodeId g0 = lg == top ? nodes_[g].lo : g;
  const NodeId g1 = lg == top ? nodes_[g].hi : g;

  r = mk(v, xor_rec(f0, g0), xor_rec(f1, g1));
  cache_insert(kOpXor, f, g, 0, r);
  return r;
}

// ---------------------------------------------------------------------------
// Cofactors and quantification
// ---------------------------------------------------------------------------

NodeId Manager::cofactor(NodeId f, int var, bool value) {
  return cofactor_rec(f, var, value);
}

NodeId Manager::cofactor_rec(NodeId f, int var, bool value) {
  if (is_terminal(f)) return f;
  const int lv = var_to_level_[var];
  const int lf = node_level(f);
  if (lf > lv) return f;  // var sits above f's top: f does not depend on it
  if (lf == lv) return value ? nodes_[f].hi : nodes_[f].lo;

  const NodeId tag = static_cast<NodeId>(var) * 2 + (value ? 1 : 0);
  NodeId r = cache_lookup(kOpCofactor, f, tag, 0);
  if (r != kInvalid) return r;
  r = mk(static_cast<int>(nodes_[f].var), cofactor_rec(nodes_[f].lo, var, value),
         cofactor_rec(nodes_[f].hi, var, value));
  cache_insert(kOpCofactor, f, tag, 0, r);
  return r;
}

NodeId Manager::cofactor_cube(NodeId f, const std::vector<std::pair<int, bool>>& a) {
  NodeId r = f;
  for (const auto& [v, val] : a) r = cofactor_rec(r, v, val);
  return r;
}

NodeId Manager::quant_var_rec(NodeId f, int var, bool existential) {
  if (is_terminal(f)) return f;
  const int lv = var_to_level_[var];
  const int lf = node_level(f);
  if (lf > lv) return f;
  if (lf == lv)
    return existential ? ite_rec(nodes_[f].lo, kTrue, nodes_[f].hi)
                       : ite_rec(nodes_[f].lo, nodes_[f].hi, kFalse);

  const std::uint32_t op = existential ? kOpExists : kOpForall;
  NodeId r = cache_lookup(op, f, static_cast<NodeId>(var), 0);
  if (r != kInvalid) return r;
  r = mk(static_cast<int>(nodes_[f].var),
         quant_var_rec(nodes_[f].lo, var, existential),
         quant_var_rec(nodes_[f].hi, var, existential));
  cache_insert(op, f, static_cast<NodeId>(var), 0, r);
  return r;
}

NodeId Manager::exists(NodeId f, const std::vector<int>& vars) {
  NodeId r = f;
  for (int v : vars) r = quant_var_rec(r, v, /*existential=*/true);
  return r;
}

NodeId Manager::forall(NodeId f, const std::vector<int>& vars) {
  NodeId r = f;
  for (int v : vars) r = quant_var_rec(r, v, /*existential=*/false);
  return r;
}

// ---------------------------------------------------------------------------
// Composition, permutation
// ---------------------------------------------------------------------------

NodeId Manager::compose_rec(NodeId f, int var, NodeId g) {
  if (is_terminal(f)) return f;
  const int lv = var_to_level_[var];
  const int lf = node_level(f);
  if (lf > lv) return f;
  if (lf == lv) {
    // f = (var, lo, hi): substitute g for var.
    return ite_rec(g, nodes_[f].hi, nodes_[f].lo);
  }
  NodeId r = cache_lookup(kOpCompose, f, g, static_cast<NodeId>(var));
  if (r != kInvalid) return r;
  const NodeId r0 = compose_rec(nodes_[f].lo, var, g);
  const NodeId r1 = compose_rec(nodes_[f].hi, var, g);
  // g's support may reach above f's variable, so rebuild with ITE rather
  // than mk.
  const NodeId xv = mk(static_cast<int>(nodes_[f].var), kFalse, kTrue);
  r = ite_rec(xv, r1, r0);
  cache_insert(kOpCompose, f, g, static_cast<NodeId>(var), r);
  return r;
}

NodeId Manager::compose(NodeId f, int var, NodeId g) { return compose_rec(f, var, g); }

NodeId Manager::restrict_to(NodeId f, NodeId care) {
  assert(care != kFalse && "restrict needs a satisfiable care set");
  return restrict_rec(f, care);
}

NodeId Manager::restrict_rec(NodeId f, NodeId care) {
  if (care == kTrue || is_terminal(f)) return f;
  NodeId r = cache_lookup(kOpRestrict, f, care, 0);
  if (r != kInvalid) return r;

  const int lf = node_level(f), lc = node_level(care);
  if (lc < lf) {
    // The care set constrains a variable above f's support: merge its two
    // halves (the classic or-abstraction step) and continue.
    r = restrict_rec(f, ite_rec(nodes_[care].lo, kTrue, nodes_[care].hi));
  } else {
    const int top = std::min(lf, lc);
    const int v = level_to_var_[top];
    const NodeId f0 = lf == top ? nodes_[f].lo : f;
    const NodeId f1 = lf == top ? nodes_[f].hi : f;
    const NodeId c0 = lc == top ? nodes_[care].lo : care;
    const NodeId c1 = lc == top ? nodes_[care].hi : care;
    if (c0 == kFalse) {
      // Every v=0 input is a don't care: substitute the sibling entirely.
      r = restrict_rec(f1, c1);
    } else if (c1 == kFalse) {
      r = restrict_rec(f0, c0);
    } else {
      r = mk(v, restrict_rec(f0, c0), restrict_rec(f1, c1));
    }
  }
  cache_insert(kOpRestrict, f, care, 0, r);
  return r;
}

NodeId Manager::permute_rec(NodeId f, const std::vector<int>& perm,
                            std::unordered_map<NodeId, NodeId>& memo) {
  if (is_terminal(f)) return f;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const NodeId r0 = permute_rec(nodes_[f].lo, perm, memo);
  const NodeId r1 = permute_rec(nodes_[f].hi, perm, memo);
  const NodeId xv = mk(perm[nodes_[f].var], kFalse, kTrue);
  const NodeId r = ite_rec(xv, r1, r0);
  memo.emplace(f, r);
  return r;
}

NodeId Manager::permute(NodeId f, const std::vector<int>& perm) {
  assert(static_cast<int>(perm.size()) == num_vars());
  std::unordered_map<NodeId, NodeId> memo;
  return permute_rec(f, perm, memo);
}

NodeId Manager::swap_vars(NodeId f, int va, int vb) {
  std::vector<int> perm(static_cast<std::size_t>(num_vars()));
  for (int i = 0; i < num_vars(); ++i) perm[i] = i;
  perm[va] = vb;
  perm[vb] = va;
  return permute(f, perm);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool Manager::eval(NodeId f, const std::vector<bool>& assignment) const {
  while (!is_terminal(f)) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<int> Manager::support(NodeId f) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<bool> in_support(static_cast<std::size_t>(num_vars()), false);
  std::vector<NodeId> stack{f};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (is_terminal(n) || seen[n]) continue;
    seen[n] = true;
    in_support[nodes_[n].var] = true;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  std::vector<int> result;
  for (int v = 0; v < num_vars(); ++v)
    if (in_support[v]) result.push_back(v);
  return result;
}

double Manager::sat_count(NodeId f, int nv) const {
  std::unordered_map<NodeId, double> memo;
  const int total_levels = num_vars();
  // rec(n) = number of satisfying assignments over the variables at levels
  // [level(n), total_levels).
  auto rec = [&](auto&& self, NodeId n) -> double {
    if (n == kFalse) return 0.0;
    if (n == kTrue) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node& node = nodes_[n];
    const int level = var_to_level_[node.var];
    const double c0 = self(self, node.lo) * std::ldexp(1.0, node_level(node.lo) - level - 1);
    const double c1 = self(self, node.hi) * std::ldexp(1.0, node_level(node.hi) - level - 1);
    const double c = c0 + c1;
    memo.emplace(n, c);
    return c;
  };
  const double over_all = rec(rec, f) * std::ldexp(1.0, node_level(f));
  return over_all * std::ldexp(1.0, nv - total_levels);
}

std::vector<bool> Manager::pick_one(NodeId f) const {
  assert(f != kFalse);
  std::vector<bool> assignment(static_cast<std::size_t>(num_vars()), false);
  while (!is_terminal(f)) {
    const Node& n = nodes_[f];
    // Every non-false node is satisfiable in a reduced BDD.
    if (n.lo != kFalse) {
      assignment[n.var] = false;
      f = n.lo;
    } else {
      assignment[n.var] = true;
      f = n.hi;
    }
  }
  return assignment;
}

std::size_t Manager::dag_size(NodeId f) const { return dag_size(std::vector<NodeId>{f}); }

std::size_t Manager::dag_size(const std::vector<NodeId>& roots) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t count = 0;
  std::vector<NodeId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen[n]) continue;
    seen[n] = true;
    ++count;
    if (!is_terminal(n)) {
      stack.push_back(nodes_[n].lo);
      stack.push_back(nodes_[n].hi);
    }
  }
  return count;
}

}  // namespace mfd::bdd
