// Dynamic reordering is the most delicate part of the BDD substrate: every
// test here verifies *functional* preservation through the truth-table
// oracle, not just absence of crashes.
#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Manager;
using test::Table;

TEST(Reorder, SwapAdjacentPreservesFunction) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.range(2, 8);
    Manager m(n);
    const Table t = test::random_table(rng, n);
    const Bdd f = test::bdd_from_table(m, t, n);
    const int lev = rng.range(0, n - 2);
    m.swap_adjacent_levels(lev);
    EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t) << "n=" << n << " lev=" << lev;
    // Swap back restores the original order.
    m.swap_adjacent_levels(lev);
    EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t);
  }
}

TEST(Reorder, SwapUpdatesOrderBookkeeping) {
  Manager m(4);
  m.swap_adjacent_levels(1);
  EXPECT_EQ(m.var_at_level(1), 2);
  EXPECT_EQ(m.var_at_level(2), 1);
  EXPECT_EQ(m.level_of_var(1), 2);
  EXPECT_EQ(m.level_of_var(2), 1);
  EXPECT_EQ(m.current_order(), (std::vector<int>{0, 2, 1, 3}));
}

TEST(Reorder, SwapPreservesMultipleRoots) {
  Rng rng(2);
  const int n = 6;
  Manager m(n);
  std::vector<Table> tables;
  std::vector<Bdd> fns;
  for (int i = 0; i < 5; ++i) {
    tables.push_back(test::random_table(rng, n));
    fns.push_back(test::bdd_from_table(m, tables.back(), n));
  }
  for (int lev = 0; lev < n - 1; ++lev) m.swap_adjacent_levels(lev);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(test::table_from_bdd(m, fns[i].id(), n), tables[i]) << "root " << i;
}

TEST(Reorder, SetOrderReachesExactOrder) {
  Rng rng(3);
  const int n = 7;
  Manager m(n);
  const Table t = test::random_table(rng, n);
  const Bdd f = test::bdd_from_table(m, t, n);
  std::vector<int> order{6, 2, 5, 0, 3, 1, 4};
  m.set_order(order);
  EXPECT_EQ(m.current_order(), order);
  EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t);
}

TEST(Reorder, OperationsStayCorrectAfterReorder) {
  Rng rng(4);
  const int n = 6;
  Manager m(n);
  const Table ta = test::random_table(rng, n);
  const Table tb = test::random_table(rng, n);
  const Bdd a = test::bdd_from_table(m, ta, n);
  const Bdd b = test::bdd_from_table(m, tb, n);
  m.set_order({5, 4, 3, 2, 1, 0});
  const Table got = test::table_from_bdd(m, (a & b).id(), n);
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(got[i], ta[i] && tb[i]);
  const Table got_x = test::table_from_bdd(m, (a ^ b).id(), n);
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(got_x[i], ta[i] != tb[i]);
}

TEST(Reorder, SiftPreservesFunctions) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = rng.range(3, 9);
    Manager m(n);
    const Table t = test::random_table(rng, n);
    const Bdd f = test::bdd_from_table(m, t, n);
    m.sift();
    EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t) << "trial " << trial;
  }
}

TEST(Reorder, SiftShrinksOrderSensitiveFunction) {
  // f = x0&x3 | x1&x4 | x2&x5 in the interleaving-hostile order
  // x0<x1<x2<x3<x4<x5 has exponential width; sifting must find a pairing
  // order and shrink it decisively.
  Manager m(6);
  const Bdd f = (m.var(0) & m.var(3)) | (m.var(1) & m.var(4)) | (m.var(2) & m.var(5));
  Bdd keep = f;  // hold a reference
  const std::size_t before = m.dag_size(f.id());
  m.sift();
  const std::size_t after = m.dag_size(f.id());
  EXPECT_LT(after, before);
  EXPECT_LE(after, 10u);  // optimal order gives 8 nodes incl. terminals
}

TEST(Reorder, SiftReportsLiveCount) {
  Manager m(6);
  const Bdd f = (m.var(0) & m.var(3)) | (m.var(1) & m.var(4)) | (m.var(2) & m.var(5));
  const std::size_t reported = m.sift();
  EXPECT_EQ(reported, m.live_node_count());
}

TEST(Reorder, SymmetricSiftKeepsGroupsAdjacent) {
  Rng rng(6);
  const int n = 8;
  Manager m(n);
  const Table t = test::random_table(rng, n);
  const Bdd f = test::bdd_from_table(m, t, n);
  const std::vector<std::vector<int>> groups{{1, 4, 6}, {0, 7}};
  m.sift_symmetric(groups);
  EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t);
  for (const auto& g : groups) {
    int lo = n, hi = -1;
    for (int v : g) {
      lo = std::min(lo, m.level_of_var(v));
      hi = std::max(hi, m.level_of_var(v));
    }
    EXPECT_EQ(hi - lo + 1, static_cast<int>(g.size()))
        << "group not adjacent after symmetric sifting";
  }
}

TEST(Reorder, SymmetricSiftShrinksWithGroups) {
  // Same order-sensitive function; groups {0,3},{1,4},{2,5} must end up
  // adjacent, which is exactly the optimal interleaving.
  Manager m(6);
  const Bdd f = (m.var(0) & m.var(3)) | (m.var(1) & m.var(4)) | (m.var(2) & m.var(5));
  m.sift_symmetric({{0, 3}, {1, 4}, {2, 5}});
  EXPECT_LE(m.dag_size(f.id()), 10u);
}

TEST(Reorder, GcDuringSiftCyclesIsSafe) {
  Rng rng(7);
  const int n = 7;
  Manager m(n);
  std::vector<Table> tables;
  std::vector<Bdd> fns;
  for (int i = 0; i < 3; ++i) {
    tables.push_back(test::random_table(rng, n));
    fns.push_back(test::bdd_from_table(m, tables.back(), n));
  }
  for (int round = 0; round < 3; ++round) {
    m.sift();
    m.garbage_collect();
    const Bdd combined = (fns[0] & fns[1]) | fns[2];
    for (std::size_t i = 0; i < tables[0].size(); ++i) {
      std::vector<bool> a(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) a[v] = (i >> v) & 1;
      EXPECT_EQ(m.eval(combined.id(), a),
                (tables[0][i] && tables[1][i]) || tables[2][i]);
    }
  }
}

class ReorderRandom : public ::testing::TestWithParam<int> {};

TEST_P(ReorderRandom, RandomSwapSequencesPreserveFunctions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 19);
  const int n = rng.range(3, 9);
  Manager m(n);
  const Table t = test::random_table(rng, n);
  const Bdd f = test::bdd_from_table(m, t, n);
  for (int i = 0; i < 30; ++i) {
    m.swap_adjacent_levels(rng.range(0, n - 2));
    if (i % 10 == 9) m.garbage_collect();
  }
  EXPECT_EQ(test::table_from_bdd(m, f.id(), n), t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace mfd
