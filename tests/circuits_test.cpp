// Benchmark generators: functional correctness of the exact generators and
// well-formedness of the synthetic ones.
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd::circuits {
namespace {

using bdd::Bdd;
using bdd::Manager;

std::uint64_t eval_word(const Manager& m, const Word& w, std::uint64_t input_bits, int n_in) {
  std::vector<bool> a(static_cast<std::size_t>(m.num_vars()), false);
  for (int i = 0; i < n_in; ++i) a[static_cast<std::size_t>(i)] = (input_bits >> i) & 1;
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < w.size(); ++i)
    if (m.eval(w[i].id(), a)) out |= std::uint64_t{1} << i;
  return out;
}

TEST(WordOps, AddWords) {
  Manager m(8);
  const Word sum = add_words(input_word(m, 0, 4), input_word(m, 4, 4));
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      EXPECT_EQ(eval_word(m, sum, a | (b << 4), 8), a + b);
}

TEST(WordOps, AddWordsWithCarryAndWidthMismatch) {
  Manager m(6);
  const Word sum = add_words(input_word(m, 0, 3), input_word(m, 3, 2), m.var(5));
  for (std::uint64_t v = 0; v < 64; ++v) {
    const std::uint64_t a = v & 7, b = (v >> 3) & 3, cin = (v >> 5) & 1;
    EXPECT_EQ(eval_word(m, sum, v, 6), a + b + cin);
  }
}

TEST(WordOps, CountOnes) {
  Manager m(6);
  std::vector<Bdd> bits;
  for (int i = 0; i < 6; ++i) bits.push_back(m.var(i));
  const Word count = count_ones(m, bits);
  for (std::uint64_t v = 0; v < 64; ++v)
    EXPECT_EQ(eval_word(m, count, v, 6), static_cast<std::uint64_t>(__builtin_popcountll(v)));
}

TEST(WordOps, MultiplyWords) {
  Manager m(6);
  const Word prod = multiply_words(input_word(m, 0, 3), input_word(m, 3, 3));
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b)
      EXPECT_EQ(eval_word(m, prod, a | (b << 3), 6), a * b);
}

TEST(Generators, AdderMatchesArithmetic) {
  Manager m;
  const Benchmark bench = adder(m, 4);
  EXPECT_EQ(bench.num_inputs, 8);
  ASSERT_EQ(bench.outputs.size(), 5u);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      EXPECT_EQ(eval_word(m, bench.outputs, a | (b << 4), 8), a + b);
}

TEST(Generators, PartialMultiplierSumsMatrix) {
  Manager m;
  const Benchmark bench = partial_multiplier(m, 3);
  EXPECT_EQ(bench.num_inputs, 9);
  ASSERT_EQ(bench.outputs.size(), 6u);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t v = rng.below(512);
    std::uint64_t expected = 0;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        if ((v >> (i * 3 + j)) & 1) expected += std::uint64_t{1} << (i + j);
    EXPECT_EQ(eval_word(m, bench.outputs, v, 9), expected);
  }
}

TEST(Generators, PartialMultiplierOfOperandsEqualsMultiplier) {
  // Substituting p(i,j) = a_i & b_j into pm_n must give the n x n multiplier.
  Manager pm_m;
  const Benchmark pm = partial_multiplier(pm_m, 3);
  Manager mult_m;
  const Benchmark mult = multiplier(mult_m, 3);
  Rng rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t a = rng.below(8), b = rng.below(8);
    std::uint64_t pp = 0;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        if (((a >> i) & 1) && ((b >> j) & 1)) pp |= std::uint64_t{1} << (i * 3 + j);
    EXPECT_EQ(eval_word(pm_m, pm.outputs, pp, 9),
              eval_word(mult_m, mult.outputs, a | (b << 3), 6));
  }
}

TEST(Generators, Rd73CountsOnes) {
  Manager m;
  const Benchmark bench = build("rd73", m);
  EXPECT_EQ(bench.num_inputs, 7);
  EXPECT_EQ(bench.outputs.size(), 3u);
  for (std::uint64_t v = 0; v < 128; ++v)
    EXPECT_EQ(eval_word(m, bench.outputs, v, 7),
              static_cast<std::uint64_t>(__builtin_popcountll(v)));
}

TEST(Generators, NineSymIsSymmetricThreshold) {
  Manager m;
  const Benchmark bench = build("9sym", m);
  EXPECT_EQ(bench.num_inputs, 9);
  ASSERT_EQ(bench.outputs.size(), 1u);
  std::vector<bool> a(9);
  for (std::uint64_t v = 0; v < 512; ++v) {
    for (int i = 0; i < 9; ++i) a[static_cast<std::size_t>(i)] = (v >> i) & 1;
    const int ones = __builtin_popcountll(v);
    EXPECT_EQ(m.eval(bench.outputs[0].id(), a), ones >= 3 && ones <= 6);
  }
}

TEST(Generators, Z4mlAddsWithCarry) {
  Manager m;
  const Benchmark bench = build("z4ml", m);
  EXPECT_EQ(bench.num_inputs, 7);
  ASSERT_EQ(bench.outputs.size(), 4u);
  for (std::uint64_t v = 0; v < 128; ++v) {
    const std::uint64_t a = v & 7, b = (v >> 3) & 7, cin = (v >> 6) & 1;
    EXPECT_EQ(eval_word(m, bench.outputs, v, 7), a + b + cin);
  }
}

TEST(Generators, ClipSaturates) {
  Manager m;
  const Benchmark bench = build("clip", m);
  EXPECT_EQ(bench.num_inputs, 9);
  ASSERT_EQ(bench.outputs.size(), 5u);
  for (std::int64_t x = -256; x < 256; ++x) {
    const std::uint64_t bits = static_cast<std::uint64_t>(x) & 0x1FF;
    const std::int64_t clipped = x > 15 ? 15 : (x < -16 ? -16 : x);
    EXPECT_EQ(eval_word(m, bench.outputs, bits, 9),
              static_cast<std::uint64_t>(clipped) & 0x1F)
        << "x=" << x;
  }
}

TEST(Generators, CountIsASixteenBitAlu) {
  Manager m;
  const Benchmark bench = build("count", m);
  EXPECT_EQ(bench.num_inputs, 35);
  EXPECT_EQ(bench.outputs.size(), 16u);
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.below(1 << 16), b = rng.below(1 << 16);
    const std::uint64_t mode = rng.below(4), cin = rng.below(2);
    const std::uint64_t v = a | (b << 16) | (mode << 32) | (cin << 34);
    std::uint64_t expect = 0;
    switch (mode) {
      case 0: expect = (a + b + cin) & 0xFFFF; break;
      case 1: expect = a & b; break;
      case 2: expect = a | b; break;
      case 3: expect = a ^ b; break;
    }
    EXPECT_EQ(eval_word(m, bench.outputs, v, 35), expect);
  }
}

TEST(Generators, E64IsPriorityOneHot) {
  Manager m;
  const Benchmark bench = build("e64", m);
  EXPECT_EQ(bench.num_inputs, 65);
  EXPECT_EQ(bench.outputs.size(), 65u);
  std::vector<bool> a(65, false);
  a[7] = true;
  a[20] = true;
  for (int o = 0; o < 65; ++o)
    EXPECT_EQ(m.eval(bench.outputs[static_cast<std::size_t>(o)].id(), a), o == 7);
}

TEST(Generators, RotRotates) {
  Manager m;
  const Benchmark bench = build("rot", m);
  EXPECT_EQ(bench.num_inputs, 20);
  EXPECT_EQ(bench.outputs.size(), 16u);
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t data = rng.below(1 << 16);
    const std::uint64_t s = rng.below(16);
    const std::uint64_t v = data | (s << 16);
    const std::uint64_t rotated =
        ((data >> s) | (data << (16 - s))) & 0xFFFF;  // out_i = in_(i+s mod 16)
    EXPECT_EQ(eval_word(m, bench.outputs, v, 20), s == 0 ? data : rotated);
  }
}

TEST(Generators, C499CorrectsSingleBitErrors) {
  Manager m;
  const Benchmark bench = build("C499", m);
  EXPECT_EQ(bench.num_inputs, 22);
  EXPECT_EQ(bench.outputs.size(), 16u);
  // With enable = 1, consistent check bits, and a single flipped data bit,
  // the output must equal the original data word.
  auto pat = [](int i) {
    int v = 2;
    for (int remaining = i + 1; remaining > 0;) {
      ++v;
      if ((v & (v - 1)) != 0) --remaining;
    }
    return v;
  };
  Rng rng(19);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t data = rng.below(1 << 16);
    std::uint64_t checks = 0;
    for (int j = 0; j < 5; ++j) {
      int parity = 0;
      for (int i = 0; i < 16; ++i)
        if (((pat(i) >> j) & 1) && ((data >> i) & 1)) parity ^= 1;
      if (parity) checks |= std::uint64_t{1} << j;
    }
    const int flip = rng.range(0, 15);
    const std::uint64_t corrupted = data ^ (std::uint64_t{1} << flip);
    const std::uint64_t v = corrupted | (checks << 16) | (std::uint64_t{1} << 21);
    EXPECT_EQ(eval_word(m, bench.outputs, v, 22), data) << "flip=" << flip;
  }
}

TEST(Generators, SyntheticRowsAreDeterministicAndNontrivial) {
  for (const char* name : {"misex1", "misex2", "sao2", "vg2", "duke2", "apex7", "b9"}) {
    Manager m1, m2;
    const Benchmark a = build(name, m1);
    const Benchmark b = build(name, m2);
    ASSERT_EQ(a.outputs.size(), b.outputs.size()) << name;
    int nontrivial = 0;
    for (std::size_t o = 0; o < a.outputs.size(); ++o) {
      // Determinism across managers: same truth content.
      EXPECT_EQ(m2.transfer_from(m1, a.outputs[o].id()), b.outputs[o].id()) << name;
      if (!a.outputs[o].is_constant()) ++nontrivial;
    }
    EXPECT_GT(nontrivial, static_cast<int>(a.outputs.size()) / 2) << name;
  }
}

TEST(Generators, Alu4IsASixBitAlu) {
  Manager m;
  const Benchmark bench = build("alu4", m);
  EXPECT_EQ(bench.num_inputs, 14);
  EXPECT_EQ(bench.outputs.size(), 8u);
  Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t a = rng.below(64), b = rng.below(64);
    const std::uint64_t sel = rng.below(4);
    const std::uint64_t v = a | (b << 6) | (sel << 12);
    std::uint64_t expect = 0;
    switch (sel) {
      case 0: expect = (a + b) & 63; break;
      case 1: expect = (a - b) & 63; break;
      case 2: expect = a & b; break;
      case 3: expect = a ^ b; break;
    }
    std::uint64_t got = 0;
    std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);
    for (int i = 0; i < 14; ++i) assignment[static_cast<std::size_t>(i)] = (v >> i) & 1;
    for (int i = 0; i < 6; ++i)
      if (m.eval(bench.outputs[static_cast<std::size_t>(i)].id(), assignment))
        got |= std::uint64_t{1} << i;
    EXPECT_EQ(got, expect) << "sel=" << sel;
    // Zero flag.
    EXPECT_EQ(m.eval(bench.outputs[7].id(), assignment), expect == 0);
  }
}

TEST(Generators, ConvenienceRowsBuild) {
  for (const char* name : {"add4", "add8", "mult4", "pm3", "pm4", "alu4", "rd53"}) {
    Manager m;
    const Benchmark bench = build(name, m);
    EXPECT_FALSE(bench.outputs.empty()) << name;
  }
}

TEST(Generators, ComparatorOrdersCorrectly) {
  Manager m;
  const Benchmark bench = build("cmp8", m);
  EXPECT_EQ(bench.num_inputs, 16);
  ASSERT_EQ(bench.outputs.size(), 3u);
  Rng rng(37);
  std::vector<bool> assignment(static_cast<std::size_t>(m.num_vars()), false);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.below(256), b = rng.below(256);
    for (int i = 0; i < 8; ++i) {
      assignment[static_cast<std::size_t>(i)] = (a >> i) & 1;
      assignment[static_cast<std::size_t>(8 + i)] = (b >> i) & 1;
    }
    EXPECT_EQ(m.eval(bench.outputs[0].id(), assignment), a < b);
    EXPECT_EQ(m.eval(bench.outputs[1].id(), assignment), a == b);
    EXPECT_EQ(m.eval(bench.outputs[2].id(), assignment), a > b);
  }
}

TEST(Generators, GrayOfIncrement) {
  Manager m;
  const Benchmark bench = build("gray8", m);
  EXPECT_EQ(bench.num_inputs, 8);
  ASSERT_EQ(bench.outputs.size(), 8u);
  for (std::uint64_t x = 0; x < 256; ++x) {
    const std::uint64_t inc = (x + 1) & 0xFF;
    const std::uint64_t gray = inc ^ (inc >> 1);
    EXPECT_EQ(eval_word(m, bench.outputs, x, 8), gray) << x;
  }
}

TEST(Generators, MajorityThreshold) {
  Manager m;
  const Benchmark bench = build("maj11", m);
  EXPECT_EQ(bench.num_inputs, 11);
  std::vector<bool> assignment(11);
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    int ones = 0;
    for (int i = 0; i < 11; ++i) {
      assignment[static_cast<std::size_t>(i)] = rng.flip();
      ones += assignment[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(m.eval(bench.outputs[0].id(), assignment), ones >= 6);
  }
}

TEST(Generators, TableRowsAllBuild) {
  for (const std::string& name : table_rows()) {
    Manager m;
    const Benchmark bench = build(name, m);
    EXPECT_EQ(bench.name, name);
    EXPECT_GT(bench.num_inputs, 0);
    EXPECT_FALSE(bench.outputs.empty());
    EXPECT_LE(m.num_vars(), bench.num_inputs);
  }
}

}  // namespace
}  // namespace mfd::circuits
