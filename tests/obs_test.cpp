// Tests for the observability subsystem: phase timers, counters/gauges,
// JSON emission (validated by a minimal parser written here), and the
// report attached to SynthesisResult.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuits/circuits.h"
#include "core/synthesizer.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace {

using mfd::obs::PhaseNode;
using mfd::obs::Report;
using mfd::obs::ScopedPhase;

void spin_at_least_us(int us) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::microseconds(us)) {
  }
}

// --- minimal JSON parser (enough to round-trip what JsonWriter emits) ------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue null_value;
    return it == object.end() ? null_value : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing characters after JSON document";
    return v;
  }

  bool ok() const { return ok_; }

 private:
  void fail(const std::string& why) {
    ok_ = false;
    ADD_FAILURE() << "JSON parse error at offset " << pos_ << ": " << why;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end");
      return {};
    }
    const char c = s_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      pos_ += 4;
      return {};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    consume('{');
    if (consume('}')) return v;
    do {
      JsonValue key = parse_string();
      if (!consume(':')) fail("expected ':'");
      v.object[key.string] = parse_value();
    } while (consume(','));
    if (!consume('}')) fail("expected '}'");
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    consume('[');
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    if (!consume(']')) fail("expected ']'");
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    if (!consume('"')) {
      fail("expected '\"'");
      return v;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case '/': v.string.push_back('/'); break;
        case 'b': v.string.push_back('\b'); break;
        case 'f': v.string.push_back('\f'); break;
        case 'n': v.string.push_back('\n'); break;
        case 'r': v.string.push_back('\r'); break;
        case 't': v.string.push_back('\t'); break;
        case 'u': {
          // Only \u00XX is emitted by the writer (control characters).
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return v;
          }
          const std::string hex = s_.substr(pos_, 4);
          pos_ += 4;
          v.string.push_back(static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
          break;
        }
        default: fail("bad escape"); return v;
      }
    }
    if (!consume('"')) fail("unterminated string");
    return v;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    v.number = std::strtod(start, &end);
    if (end == start) fail("bad number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Restores a clean registry around every test so they don't see each other's
// counters (the registry is process-wide by design).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mfd::obs::set_enabled(true);
    mfd::obs::reset();
  }
  void TearDown() override {
    mfd::obs::set_enabled(true);
    mfd::obs::reset();
  }
};

// --- counters and gauges ----------------------------------------------------

TEST_F(ObsTest, CountersAreMonotonicAndNamed) {
  EXPECT_EQ(mfd::obs::counter_value("t.count"), 0u);
  mfd::obs::add("t.count");
  mfd::obs::add("t.count", 41);
  EXPECT_EQ(mfd::obs::counter_value("t.count"), 42u);
  mfd::obs::add("t.other", 7);
  EXPECT_EQ(mfd::obs::counter_value("t.other"), 7u);
  EXPECT_EQ(mfd::obs::counter_value("t.count"), 42u);

  const Report r = mfd::obs::collect();
  EXPECT_EQ(r.counters.at("t.count"), 42u);
  EXPECT_EQ(r.counters.at("t.other"), 7u);
}

TEST_F(ObsTest, GaugesSetAndMax) {
  mfd::obs::gauge_set("t.g", 2.5);
  mfd::obs::gauge_set("t.g", 1.5);
  EXPECT_DOUBLE_EQ(mfd::obs::gauge_value("t.g"), 1.5);  // set overwrites
  mfd::obs::gauge_max("t.m", 3.0);
  mfd::obs::gauge_max("t.m", 2.0);
  EXPECT_DOUBLE_EQ(mfd::obs::gauge_value("t.m"), 3.0);  // max keeps the peak
  mfd::obs::gauge_max("t.m", 5.0);
  EXPECT_DOUBLE_EQ(mfd::obs::gauge_value("t.m"), 5.0);
}

TEST_F(ObsTest, DisabledIsNoop) {
  mfd::obs::set_enabled(false);
  mfd::obs::add("t.off", 10);
  mfd::obs::gauge_set("t.off.g", 1.0);
  {
    ScopedPhase p("off_phase");
  }
  mfd::obs::set_enabled(true);
  EXPECT_EQ(mfd::obs::counter_value("t.off"), 0u);
  EXPECT_DOUBLE_EQ(mfd::obs::gauge_value("t.off.g"), 0.0);
  const Report r = mfd::obs::collect();
  EXPECT_EQ(r.phases.child("off_phase"), nullptr);
}

TEST_F(ObsTest, ResetClearsEverything) {
  mfd::obs::add("t.x");
  mfd::obs::gauge_set("t.y", 1.0);
  {
    ScopedPhase p("gone");
  }
  mfd::obs::reset();
  const Report r = mfd::obs::collect();
  EXPECT_TRUE(r.counters.empty());
  EXPECT_TRUE(r.gauges.empty());
  EXPECT_TRUE(r.phases.children.empty());
}

// --- phase timers -----------------------------------------------------------

TEST_F(ObsTest, NestedPhasesAccumulateIntoATree) {
  for (int i = 0; i < 3; ++i) {
    ScopedPhase outer("outer");
    spin_at_least_us(200);
    {
      ScopedPhase inner("inner");
      spin_at_least_us(200);
    }
    {
      ScopedPhase inner("inner");  // same name again: same node, calls += 1
      spin_at_least_us(200);
    }
  }
  const Report r = mfd::obs::collect();
  const PhaseNode* outer = r.phases.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 3u);
  const PhaseNode* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 6u);
  // A parent's time includes its children's.
  EXPECT_GE(outer->seconds, inner->seconds);
  EXPECT_GE(outer->seconds, outer->child_seconds());
  // 3 x (200us self + 2 x 200us children) on the outer, 6 x 200us inner.
  EXPECT_GE(outer->seconds, 1800e-6);
  EXPECT_GE(inner->seconds, 1200e-6);
}

TEST_F(ObsTest, OpenPhasesAreCreditedAtCollectTime) {
  ScopedPhase open("still_open");
  spin_at_least_us(500);
  const Report r = mfd::obs::collect();
  const PhaseNode* node = r.phases.child("still_open");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->calls, 1u);
  EXPECT_GE(node->seconds, 400e-6);  // elapsed-so-far, not zero
}

TEST_F(ObsTest, SelfNestingMergesIntoOneNode) {
  {
    ScopedPhase a("recurse");
    {
      ScopedPhase b("recurse");  // flattened into the open instance
      {
        ScopedPhase c("recurse");
        spin_at_least_us(100);
      }
    }
  }
  const Report r = mfd::obs::collect();
  const PhaseNode* node = r.phases.child("recurse");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->calls, 3u);
  EXPECT_TRUE(node->children.empty());  // no recurse-under-recurse chain
  // Time counted once (outermost scope only), so well under 3x the spin.
  EXPECT_LT(node->seconds, 0.05);
}

TEST_F(ObsTest, FindLocatesDeepNodes) {
  {
    ScopedPhase a("a");
    ScopedPhase b("b");
    ScopedPhase c("c");
  }
  const Report r = mfd::obs::collect();
  ASSERT_NE(r.phases.find("c"), nullptr);
  EXPECT_EQ(r.phases.find("nope"), nullptr);
  EXPECT_EQ(r.phases.find("c")->name, "c");
}

// --- JSON -------------------------------------------------------------------

TEST_F(ObsTest, JsonEscaping) {
  EXPECT_EQ(mfd::obs::JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(mfd::obs::JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(mfd::obs::JsonWriter::escape("\n\t\x01"), "\\n\\t\\u0001");
}

TEST_F(ObsTest, ReportJsonRoundTrips) {
  mfd::obs::add("rt.count", 12345678901234ull);
  mfd::obs::gauge_set("rt.gauge", 0.125);
  mfd::obs::gauge_set("rt.we\"ird\nname", 2.0);
  {
    ScopedPhase outer("phase_a");
    ScopedPhase inner("phase_b");
    spin_at_least_us(100);
  }
  const Report r = mfd::obs::collect();
  const std::string json = r.to_json();

  JsonParser parser(json);
  const JsonValue doc = parser.parse();
  ASSERT_TRUE(parser.ok()) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);

  EXPECT_DOUBLE_EQ(doc.at("counters").at("rt.count").number, 12345678901234.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.gauge").number, 0.125);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.we\"ird\nname").number, 2.0);

  const JsonValue& phases = doc.at("phases");
  EXPECT_EQ(phases.at("name").string, "total");
  bool found_b = false;
  for (const JsonValue& child : phases.at("children").array) {
    if (child.at("name").string != "phase_a") continue;
    EXPECT_DOUBLE_EQ(child.at("calls").number, 1.0);
    for (const JsonValue& grand : child.at("children").array)
      if (grand.at("name").string == "phase_b") {
        found_b = true;
        EXPECT_GE(grand.at("seconds").number, 0.0);
      }
  }
  EXPECT_TRUE(found_b) << json;
}

TEST_F(ObsTest, JsonWriterComposesNestedScopes) {
  mfd::obs::JsonWriter w;
  w.begin_object();
  w.key("a").begin_array();
  w.value(1).value(2.5).value(true).value("x");
  w.raw("{\"nested\":[]}");
  w.end_array();
  w.key("b").value(false);
  w.end_object();
  JsonParser parser(w.str());
  const JsonValue doc = parser.parse();
  ASSERT_TRUE(parser.ok()) << w.str();
  EXPECT_EQ(doc.at("a").array.size(), 5u);
  EXPECT_TRUE(doc.at("a").array[4].has("nested"));
  EXPECT_EQ(doc.at("b").kind, JsonValue::Kind::Bool);
}

// --- end to end through the synthesizer -------------------------------------

TEST_F(ObsTest, SynthesisResultCarriesAPopulatedReport) {
  mfd::bdd::Manager m;
  const auto bench = mfd::circuits::build("add4", m);
  mfd::Synthesizer synth(mfd::preset_mulop_dc(5));
  const mfd::SynthesisResult result = synth.run(bench);
  ASSERT_TRUE(result.verified);

  const Report& r = result.report;
  const PhaseNode* root = r.phases.child("synthesize");
  ASSERT_NE(root, nullptr);
  EXPECT_GT(root->seconds, 0.0);
  // The full per-level phase set appears under the decomposition driver.
  ASSERT_NE(r.phases.find("decompose"), nullptr);
  for (const char* phase : {"symmetrize", "share", "per_output", "encode"})
    EXPECT_NE(r.phases.find(phase), nullptr) << phase;
  ASSERT_NE(r.phases.find("verify"), nullptr);
  ASSERT_NE(r.phases.find("pack"), nullptr);

  EXPECT_GT(r.counters.at("decomp.steps"), 0u);
  EXPECT_GT(r.counters.at("decomp.levels"), 0u);

  const double hit_rate = r.gauges.at("bdd.cache_hit_rate");
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  EXPECT_GT(r.gauges.at("bdd.unique_table_size"), 0.0);
  EXPECT_GT(r.gauges.at("bdd.cache_size"), 0.0);
  EXPECT_GT(r.gauges.at("net.luts"), 0.0);

  // And the whole report survives a serialization round-trip.
  const std::string json = r.to_json();
  JsonParser parser(json);
  const JsonValue doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  EXPECT_EQ(doc.at("phases").at("children").array.size(), 1u);  // synthesize
}

TEST_F(ObsTest, BackToBackRunsGetIndependentReports) {
  mfd::bdd::Manager m;
  const auto bench = mfd::circuits::build("add4", m);
  mfd::Synthesizer synth(mfd::preset_mulop_dc(5));
  const auto first = synth.run(bench);
  const auto second = synth.run(bench);
  // Epoch semantics: the second report covers only the second run.
  EXPECT_EQ(first.report.counters.at("decomp.steps"),
            second.report.counters.at("decomp.steps"));
  const PhaseNode* p1 = first.report.phases.child("synthesize");
  const PhaseNode* p2 = second.report.phases.child("synthesize");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p1->calls, 1u);
  EXPECT_EQ(p2->calls, 1u);
}

}  // namespace
