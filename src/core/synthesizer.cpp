#include "core/synthesizer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "core/errors.h"
#include "core/passes.h"
#include "net/simulate.h"

namespace mfd {
namespace {

/// Value stored in the flow-result cache: the network after the pipeline's
/// *mutating* passes (decompose portfolio, simplify, odc_resubst, ...) plus
/// the decompose stats. Non-mutating passes (packing) and verification are
/// re-run live on a hit — they are cheap relative to decomposition and keep
/// the `verified` flag and CLB results honest.
struct FlowValue {
  net::LutNetwork network;
  DecomposeStats stats;
};

std::size_t flow_value_bytes(const FlowValue& v) {
  std::size_t bytes = sizeof(FlowValue);
  for (int i = 0; i < v.network.num_luts(); ++i) {
    const net::Lut& lut = v.network.lut(i);
    bytes += sizeof(net::Lut) + lut.inputs.size() * sizeof(int) +
             lut.table.size() / 8 + 1;
  }
  bytes += v.stats.output_degrade_level.size() * sizeof(int);
  return bytes;
}

void append_u64(std::vector<std::uint64_t>& key, std::uint64_t w) {
  key.push_back(w);
}

/// FNV-1a of a string, for fingerprinting the pipeline spec into the key.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Key of one whole-flow decompose result: spec signatures (on and care per
/// output, complement kept distinct — f and !f have different networks),
/// primary-input variables, the manager's current variable order (the search
/// is seeded from it), the pipeline spec (the cached network is the output
/// of the pipeline's mutating passes, so different pipelines must not share
/// entries), and a fingerprint of every option that can change the winning
/// network. --jobs and trace are deliberately excluded: the flow is
/// invariant under both (docs/PARALLELISM.md), so runs at different thread
/// counts share entries.
std::vector<std::uint64_t> flow_key(cache::SignatureComputer& sig,
                                    const std::vector<Isf>& spec,
                                    const std::vector<int>& pi_vars,
                                    const bdd::Manager& m,
                                    const SynthesisOptions& opts,
                                    const std::string& pipeline_spec) {
  std::vector<std::uint64_t> key;
  key.reserve(4 + spec.size() * 4 + pi_vars.size() + 28);
  append_u64(key, 3);  // key-space tag: flow results
  append_u64(key, spec.size());
  for (const Isf& f : spec) {
    const cache::FunctionSignature on = sig.of(f.on().id());
    const cache::FunctionSignature care = sig.of(f.care().id());
    append_u64(key, on.w0);
    append_u64(key, on.w1);
    append_u64(key, care.w0);
    append_u64(key, care.w1);
  }
  append_u64(key, pi_vars.size());
  for (int v : pi_vars) append_u64(key, static_cast<std::uint64_t>(v));
  append_u64(key, static_cast<std::uint64_t>(m.num_vars()));
  for (int v : m.current_order()) append_u64(key, static_cast<std::uint64_t>(v));
  const DecomposeOptions& d = opts.decomp;
  append_u64(key, static_cast<std::uint64_t>(d.lut_inputs));
  std::uint64_t flags = 0;
  flags |= d.exploit_dc ? 1u : 0u;
  flags |= d.dc_symmetrize ? 2u : 0u;
  flags |= d.dc_joint ? 4u : 0u;
  flags |= d.dc_per_output ? 8u : 0u;
  flags |= d.share_functions ? 16u : 0u;
  flags |= d.total_minimal_code ? 32u : 0u;
  flags |= d.symmetric_sift ? 64u : 0u;
  flags |= opts.portfolio_bound_extra ? 128u : 0u;
  append_u64(key, flags);
  append_u64(key, static_cast<std::uint64_t>(d.max_bound_extra));
  append_u64(key, static_cast<std::uint64_t>(d.boundset.improvement_passes));
  append_u64(key, static_cast<std::uint64_t>(d.boundset.max_evaluations));
  append_u64(key, d.boundset.seed);
  append_u64(key, d.seed);
  append_u64(key, static_cast<std::uint64_t>(d.symmetrize_max_vars));
  append_u64(key, static_cast<std::uint64_t>(d.sift_max_live_nodes));
  append_u64(key, static_cast<std::uint64_t>(d.shannon_support_limit));
  append_u64(key, fnv1a(pipeline_spec));
  append_u64(key, static_cast<std::uint64_t>(opts.odc.window_depth));
  append_u64(key, static_cast<std::uint64_t>(opts.odc.max_cone_luts));
  append_u64(key, static_cast<std::uint64_t>(opts.odc.max_iters));
  return key;
}

}  // namespace

SynthesisResult Synthesizer::run(std::vector<Isf> spec,
                                 const std::vector<int>& pi_vars,
                                 const std::string& circuit) const {
  const auto start = std::chrono::steady_clock::now();
  // One run == one observability epoch: the report in the result covers
  // exactly this synthesis (including both portfolio entries).
  obs::reset();
  obs::ScopedPhase phase("synthesize");
  SynthesisResult result;

  // One governor covers the whole run (both portfolio entries, verification,
  // packing); decompose() binds it to the BDD manager itself.
  ResourceGovernor gov(opts_.budget);
  ResourceGovernor::Scope gov_scope(gov);

  bdd::Manager* mgr = spec.empty() ? nullptr : spec.front().manager();
  const std::vector<Isf> original = spec;  // keep for verification
  spec.clear();

  // The flow is a pass pipeline over the LUT-network IR; an invalid
  // `--passes` spec throws mfd::Error here, before any work.
  net::PassPipeline pipeline = build_pipeline(opts_.passes, opts_);
  if (!opts_.dump_net.empty()) {
    const std::string base = opts_.dump_net;
    pipeline.set_dump_hook(
        [base](const net::LutNetwork& net, const net::Pass& pass, int index) {
          const std::string stem =
              base + "." + std::to_string(index) + "-" + pass.name();
          std::ofstream(stem + ".blif") << net.to_blif(pass.name());
          std::ofstream(stem + ".dot") << net.to_dot(pass.name());
        });
  }

  net::PassContext ctx;
  ctx.manager = mgr;
  ctx.spec = &original;
  ctx.pi_vars = &pi_vars;
  ctx.options = &opts_;
  ctx.governor = &gov;
  ctx.circuit = circuit;
  ctx.stats = &result.stats;
  ctx.clb_greedy = &result.clb_greedy;
  ctx.clb_matching = &result.clb_matching;

  // Flow-result cache: a repeat synthesis of the same spec under the same
  // options (including the pipeline spec) returns the memoized network of
  // the mutating passes. memo_safe() keeps the cache out of budgeted or
  // degraded runs (rule 2 of the determinism contract); a hit leaves the
  // manager untouched (no auxiliary variables are added — see
  // docs/CACHING.md for the caveat), while the non-mutating passes and
  // verification run live either way.
  const bool flow_memo =
      mgr != nullptr && cache::config().flow_results && cache::memo_safe(&gov);
  std::vector<std::uint64_t> key;
  std::shared_ptr<const FlowValue> hit;
  if (flow_memo) {
    cache::SignatureComputer sig(*mgr);
    key = flow_key(sig, original, pi_vars, *mgr, opts_, pipeline.spec());
    hit = std::static_pointer_cast<const FlowValue>(cache::flow_cache().lookup(key));
  }

  try {
    if (hit != nullptr) {
      if (cache::config().cross_check) {
        // Recompute the full pipeline into scratch slots and compare.
        net::LutNetwork live;
        DecomposeStats scratch_stats;
        map::ClbResult scratch_greedy, scratch_matching;
        net::PassContext check_ctx = ctx;
        check_ctx.stats = &scratch_stats;
        check_ctx.clb_greedy = &scratch_greedy;
        check_ctx.clb_matching = &scratch_matching;
        pipeline.run(live, check_ctx);
        if (live.to_string() != hit->network.to_string()) {
          std::fprintf(stderr,
                       "mfd: cache cross-check FAILED: flow-result hit differs "
                       "from recomputation (circuit=%s)\n",
                       circuit.c_str());
          std::abort();
        }
      }
      result.network = hit->network;
      result.stats = hit->stats;
      // Replay the non-mutating passes (packing, analysis) on the cached
      // network; mutating passes are skipped — their effect is the network.
      result.passes = pipeline.run(result.network, ctx, /*skip_mutating=*/true);
    } else {
      net::LutNetwork net;
      result.passes = pipeline.run(net, ctx);
      // Store only clean results: a degraded or deadline-expired run is
      // timing-dependent and must never be served to a later lookup.
      if (flow_memo && !gov.report().degraded() && !gov.deadline_expired()) {
        auto value = std::make_shared<const FlowValue>(FlowValue{net, result.stats});
        cache::flow_cache().insert(key, value, flow_value_bytes(*value));
      }
      result.network = std::move(net);
    }
  } catch (const std::bad_alloc&) {
    // Only an allocation fault injected into the ladder's suspended floor
    // can reach here; surface it typed so callers never see a raw bad_alloc.
    throw BddError("allocation failure escaped the degradation ladder" +
                   (circuit.empty() ? std::string() : " (circuit=" + circuit + ")"));
  }

  // The per-output levels of the *winning* network (the governor's snapshot
  // tracks the most recent decompose call, which may be the discarded one).
  gov.set_per_output_levels(result.stats.output_degrade_level);

  if (opts_.verify) {
    // Verification is exactness, not optimization: it runs with budget
    // enforcement suspended so a tight deadline can never abort it. It runs
    // after the whole pipeline, so it checks exactly the network the caller
    // receives — every pass, odc_resubst included, is covered.
    ResourceGovernor::SuspendScope suspend(gov);
    obs::ScopedPhase verify_phase("verify");
    std::string error;
    if (!net::check_exact(result.network, original, pi_vars, &error))
      throw VerifyError(circuit, "verify", gov.degrade_level(), error);
    result.verified = true;
  }

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.degradation = gov.report();

  obs::gauge_set("net.luts", result.network.count_luts());
  obs::gauge_set("net.gates", result.network.count_gates());
  obs::gauge_set("net.depth", result.network.depth());
  obs::gauge_set("synth.seconds", result.seconds);
  if (mgr != nullptr) mgr->publish_stats();
  cache::publish_stats();
  obs::gauge_set("cache.governor_bytes", static_cast<double>(gov.cache_bytes_charged()));
  result.report = obs::collect();
  return result;
}

SynthesisResult Synthesizer::run(const circuits::Benchmark& bench) const {
  std::vector<Isf> spec;
  spec.reserve(bench.outputs.size());
  for (const bdd::Bdd& f : bench.outputs) spec.push_back(Isf::completely_specified(f));
  std::vector<int> pi_vars(static_cast<std::size_t>(bench.num_inputs));
  for (int i = 0; i < bench.num_inputs; ++i) pi_vars[static_cast<std::size_t>(i)] = i;
  return run(std::move(spec), pi_vars, bench.name);
}

SynthesisOptions preset_mulop_dc(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  return opts;
}

SynthesisOptions preset_mulopII(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  opts.decomp.exploit_dc = false;
  return opts;
}

SynthesisOptions preset_noshare_nodc(int lut_inputs) {
  SynthesisOptions opts;
  opts.decomp.lut_inputs = lut_inputs;
  opts.decomp.exploit_dc = false;
  opts.decomp.share_functions = false;
  return opts;
}

}  // namespace mfd
