#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace mfd::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!comma_due_.empty()) {
    if (comma_due_.back()) out_ += ',';
    comma_due_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  comma_due_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  comma_due_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  comma_due_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  comma_due_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (comma_due_.back()) out_ += ',';
  comma_due_.back() = false;  // the upcoming value completes the pair
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

}  // namespace mfd::obs
