# Empty compiler generated dependencies file for dont_cares.
# This may be replaced when dependencies are built.
