// Table 2 of the paper: mulop-dcII vs FGMap / mis-pga(new) / IMODEC.
//
// mulop-dcII = mulop-dc with the LUT->CLB merge solved as a
// maximum-cardinality matching problem [13] (blossom algorithm) instead of
// first fit. The competitor tools are closed/unavailable; we substitute an
// in-house simpler mapper ("noshare-nodc": per-output decomposition, no
// common decomposition functions, all DCs := 0 — structurally similar to a
// single-function decomposition mapper) and report it next to our flow.
// The paper's claim to reproduce in *shape*: mulop-dcII produces the
// smallest CLB counts, and matching-based merge never loses to first fit.
#include <map>

#include "bench_common.h"

namespace {

using mfd::bench::FlowRun;
using mfd::bench::run_flow;

struct Row {
  FlowRun dcII;      // mulop-dcII (matching merge)
  FlowRun noshare;   // in-house competitor baseline
};

std::map<std::string, Row> g_rows;

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    Row row;
    row.dcII = run_flow(name, mfd::preset_mulop_dc(5), "mulop-dc");
    row.noshare = run_flow(name, mfd::preset_noshare_nodc(5), "noshare-nodc");
    g_rows[name] = row;
    state.counters["clb_mulop_dcII"] = row.dcII.clb_matching;
    state.counters["clb_noshare_nodc"] = row.noshare.clb_matching;
  }
}

void print_table() {
  std::printf("\nTable 2: CLB counts for the XC3000 device, matching-based\n");
  std::printf("LUT->CLB merge (mulop-dcII) vs an in-house simpler mapper\n");
  std::printf("(noshare-nodc: per-output, no sharing, no DC exploitation;\n");
  std::printf("stand-in for the unavailable FGMap / mis-pga(new) / IMODEC).\n\n");
  std::printf("%-8s | %11s %11s | %11s | %7s\n", "circuit", "mulop-dcII",
               "noshare", "dcII-greedy", "ratio");
  mfd::bench::print_rule(62);
  long total_dcII = 0, total_noshare = 0;
  for (const auto& [name, row] : g_rows) {
    total_dcII += row.dcII.clb_matching;
    total_noshare += row.noshare.clb_matching;
    std::printf("%-8s | %11d %11d | %11d | %6.2f%%\n", name.c_str(),
                 row.dcII.clb_matching, row.noshare.clb_matching, row.dcII.clb_greedy,
                 100.0 * row.dcII.clb_matching / std::max(1, row.noshare.clb_matching));
  }
  mfd::bench::print_rule(62);
  std::printf("%-8s | %11ld %11ld |\n", "total", total_dcII, total_noshare);
  std::printf("\nshape checks: (a) mulop-dcII total < noshare-nodc total;\n");
  std::printf("(b) matching merge (col 1) <= first-fit merge (col 3) per row.\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : mfd::circuits::table_rows())
    benchmark::RegisterBenchmark(("table2/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  // Register the whole sweep plan up front so a supervised run with
  // --sweep-jobs > 1 can overlap independent rows (no-op otherwise).
  for (const std::string& name : mfd::circuits::table_rows()) {
    mfd::bench::plan_flow(name, mfd::preset_mulop_dc(5), "mulop-dc");
    mfd::bench::plan_flow(name, mfd::preset_noshare_nodc(5), "noshare-nodc");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
