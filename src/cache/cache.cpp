#include "cache/cache.h"

#include <cstdlib>
#include <cstring>

#include "obs/obs.h"

namespace mfd::cache {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t digest_of(const std::vector<std::uint64_t>& key) {
  std::uint64_t d = 0x2545F4914F6CDD1Dull;
  for (std::uint64_t w : key) d = splitmix64(d ^ w);
  return d;
}

/// Fixed per-entry overhead estimate: list/map node bookkeeping plus the
/// shared_ptr control block. Precision is not the point — the bound is.
constexpr std::size_t kEntryOverhead = 96;

struct Globals {
  std::mutex mu;
  CacheConfig config;
  bool initialized = false;
};

Globals& globals() {
  static Globals g;
  return g;
}

void apply_capacity(const CacheConfig& c) {
  // The byte budget is split evenly between the two shared caches; the
  // alpha pool is call-scoped and entry-capped instead (docs/CACHING.md).
  multiplicity_cache().set_capacity(c.max_bytes / 2);
  flow_cache().set_capacity(c.max_bytes - c.max_bytes / 2);
}

void init_locked(Globals& g) {
  if (g.initialized) return;
  g.initialized = true;
  const char* check = std::getenv("MFD_CACHE_CHECK");
  if (check != nullptr && std::strcmp(check, "0") != 0) g.config.cross_check = true;
  apply_capacity(g.config);
}

}  // namespace

void configure(const CacheConfig& config) {
  Globals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  g.config = config;
  g.initialized = true;
  const char* check = std::getenv("MFD_CACHE_CHECK");
  if (check != nullptr && std::strcmp(check, "0") != 0) g.config.cross_check = true;
  apply_capacity(g.config);
  multiplicity_cache().clear_all();
  flow_cache().clear_all();
}

const CacheConfig& config() {
  Globals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  init_locked(g);
  return g.config;
}

void clear() {
  multiplicity_cache().clear_all();
  flow_cache().clear_all();
}

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

LruCache::LruCache(std::string counter_prefix, int shards)
    : prefix_(std::move(counter_prefix)) {
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

void LruCache::set_capacity(std::size_t bytes) {
  capacity_per_shard_ = bytes / shards_.size();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    evict_to_fit(*s);
  }
}

std::shared_ptr<const void> LruCache::lookup(
    const std::vector<std::uint64_t>& key) {
  const std::uint64_t digest = digest_of(key);
  Shard& s = shard_of(digest);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(digest);
  if (it == s.index.end() || it->second->key != key) {
    obs::add(prefix_ + ".misses");
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  obs::add(prefix_ + ".hits");
  return it->second->value;
}

void LruCache::insert(const std::vector<std::uint64_t>& key,
                      std::shared_ptr<const void> value,
                      std::size_t value_bytes) {
  const std::size_t total =
      value_bytes + key.size() * sizeof(std::uint64_t) + kEntryOverhead;
  if (capacity_per_shard_ != 0 && total > capacity_per_shard_) return;
  // Budget accounting (core/budget.h): a flow whose budget caps cache bytes
  // stops publishing once the ceiling is reached — it never evicts another
  // flow's entries to make room, and a full allowance degrades to
  // recomputation, not down the degradation ladder.
  ResourceGovernor* gov = ResourceGovernor::current();
  if (gov != nullptr && !gov->try_charge_cache(total)) {
    obs::add(prefix_ + ".budget_denied");
    return;
  }
  const std::uint64_t digest = digest_of(key);
  Shard& s = shard_of(digest);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(digest);
  if (it != s.index.end()) {
    // Replace (also the path for a true digest collision: last writer wins —
    // the full-key compare in lookup keeps collisions safe, merely lossy).
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  s.lru.push_front(Entry{digest, key, std::move(value), total});
  s.index.emplace(digest, s.lru.begin());
  s.bytes += total;
  evict_to_fit(s);
}

void LruCache::evict_to_fit(Shard& s) {
  if (capacity_per_shard_ == 0) return;
  while (s.bytes > capacity_per_shard_ && !s.lru.empty()) {
    const Entry& tail = s.lru.back();
    s.bytes -= tail.bytes;
    s.index.erase(tail.digest);
    s.lru.pop_back();
    obs::add(prefix_ + ".evictions");
  }
}

void LruCache::clear_all() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->lru.clear();
    s->index.clear();
    s->bytes = 0;
  }
}

std::size_t LruCache::bytes() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->bytes;
  }
  return total;
}

std::size_t LruCache::entries() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->lru.size();
  }
  return total;
}

LruCache& multiplicity_cache() {
  static LruCache c("cache.multiplicity", /*shards=*/16);
  return c;
}

LruCache& flow_cache() {
  static LruCache c("cache.flow", /*shards=*/4);
  return c;
}

// ---------------------------------------------------------------------------
// Typed helpers
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> multiplicity_key(
    SignatureComputer& sig,
    const std::vector<std::pair<bdd::Edge, bdd::Edge>>& fns,
    const std::vector<int>& bound, std::uint64_t seed) {
  std::vector<std::uint64_t> key;
  key.reserve(3 + fns.size() * 5 + bound.size());
  key.push_back(2);  // key-space tag: multiplicity / candidate evaluations
  key.push_back(seed);
  key.push_back(fns.size());
  for (const auto& f : fns) {
    if (f.second == bdd::kTrue) {
      // Completely specified: normalize polarity. Complementing f
      // complements every cofactor element-wise — a bijection that changes
      // no class count and no joint sharing count, so f and !f share the
      // entry.
      const FunctionSignature s = sig.of_normalized(f.first);
      key.push_back(1);
      key.push_back(s.w0);
      key.push_back(s.w1);
      key.push_back(0);
      key.push_back(0);
    } else {
      const FunctionSignature so = sig.of(f.first);
      const FunctionSignature sc = sig.of(f.second);
      key.push_back(0);
      key.push_back(so.w0);
      key.push_back(so.w1);
      key.push_back(sc.w0);
      key.push_back(sc.w1);
    }
  }
  for (int v : bound) key.push_back(static_cast<std::uint64_t>(v));
  return key;
}

void publish_stats() {
  obs::gauge_set("cache.bytes", static_cast<double>(multiplicity_cache().bytes() +
                                                    flow_cache().bytes()));
  obs::gauge_set("cache.entries",
                 static_cast<double>(multiplicity_cache().entries() +
                                     flow_cache().entries()));
}

}  // namespace mfd::cache
