#include "super/scheduler.h"

#include <poll.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "core/errors.h"
#include "core/faultinject.h"
#include "obs/obs.h"

namespace mfd::super {
namespace {

/// How often to re-check the RSS admission cap while a spawn is deferred:
/// children shrink as they finish phases, so waiting for an event would
/// stall admission until some child exits.
constexpr double kAdmissionRecheckMs = 50.0;

/// Latches every fault-rule firing a reaped child reported to its private
/// file (format, one per line: site@ordinal[:kind] — core/faultinject.cpp),
/// then removes the file. Lines are read whole regardless of length; a
/// record that does not parse is skipped with a stderr note rather than
/// misread as a different rule (a truncated read here would un-latch a
/// one-shot fault and re-fire it in the next child).
void latch_fired_file(const std::string& path) {
  if (path.empty()) return;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    if (line.empty()) continue;
    const std::size_t at = line.find('@');
    bool ok = at != std::string::npos && at > 0;
    std::uint64_t ordinal = 0;
    if (ok) {
      std::size_t colon = line.find(':', at);
      if (colon == std::string::npos) colon = line.size();
      const std::string digits = line.substr(at + 1, colon - at - 1);
      char* end = nullptr;
      ordinal = std::strtoull(digits.c_str(), &end, 10);
      ok = !digits.empty() && end == digits.c_str() + digits.size() && ordinal != 0;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "supervisor: skipping malformed fault-firing record "
                   "'%.120s%s'\n",
                   line.c_str(), line.size() > 120 ? "..." : "");
      continue;
    }
    fault::latch_fired(line.substr(0, at), ordinal);
  }
  in.close();
  std::remove(path.c_str());
}

double ms_until(std::chrono::steady_clock::time_point when) {
  return std::chrono::duration<double, std::milli>(
             when - std::chrono::steady_clock::now())
      .count();
}

}  // namespace

Scheduler::Scheduler(const SchedulerOptions& opts, Journal* journal)
    : opts_(opts), journal_(journal) {
  if (opts_.jobs < 1) opts_.jobs = 1;
}

Scheduler::~Scheduler() = default;  // ~Child SIGKILLs + reaps any stragglers

void Scheduler::enqueue(const std::string& key, RowFn fn) {
  if (!known_.emplace(key, true).second) return;  // first enqueue wins
  Task t;
  t.key = key;
  t.fn = std::move(fn);
  t.not_before = std::chrono::steady_clock::now();
  ready_.push_back(std::move(t));
}

bool Scheduler::known(const std::string& key) const {
  return known_.find(key) != known_.end();
}

bool Scheduler::admission_allows(Task& task) {
  // The cap defers, it never deadlocks: with nothing running the spawn is
  // always admitted (one over-cap child beats zero progress).
  if (opts_.rss_cap_mb <= 0.0 || running_.empty()) return true;
  std::size_t sum = 0;
  for (const Running& r : running_) sum += r.child.rss_bytes();
  if (static_cast<double>(sum) <= opts_.rss_cap_mb * 1048576.0) return true;
  if (!task.counted_admission_wait) {  // one count per deferral episode
    obs::add("super.admission_waits");
    task.counted_admission_wait = true;
  }
  admission_deferred_ = true;
  return false;
}

bool Scheduler::spawn_ready() {
  bool spawned = false;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = ready_.begin();
       it != ready_.end() && running_.size() < static_cast<std::size_t>(opts_.jobs);) {
    if (it->not_before > now) {  // backoff still pending: later rows may go
      ++it;
      continue;
    }
    if (!admission_allows(*it)) break;  // the cap binds every further spawn too
    Task t = std::move(*it);
    it = ready_.erase(it);
    t.counted_admission_wait = false;
    std::string fired;
    if (!opts_.fired_file_base.empty()) {
      fired = opts_.fired_file_base + "." + std::to_string(spawn_seq_++);
      std::remove(fired.c_str());
    }
    obs::add("super.spawned");
    const RowFn fn = t.fn;
    const RetryRung rung = t.rung;
    Running r;
    r.task = std::move(t);
    r.child = spawn_child([fn, rung] { return fn(rung); }, opts_.limits, fired);
    running_.push_back(std::move(r));
    obs::gauge_max("super.concurrent_peak",
                   static_cast<double>(running_.size()));
    spawned = true;
  }
  return spawned;
}

void Scheduler::finish(Running&& r) {
  const ChildOutcome child = r.child.reap();
  // Latch this child's firings before any future spawn: a one-shot rule a
  // reaped child tripped never re-fires in a child forked from here on.
  latch_fired_file(r.child.fired_file());
  Task t = std::move(r.task);
  t.attempts += 1;
  if (child.soft_timeout && child.status == ChildStatus::kOk)
    obs::add("super.soft_timeouts");

  RowOutcome out;
  out.key = t.key;
  out.attempts = t.attempts;
  out.last_status = child.status;
  if (child.status == ChildStatus::kOk) {
    out.status = "ok";
    out.payload = child.payload;
  } else if (child.status == ChildStatus::kError) {
    // Deterministic typed failure: journal it, don't burn retries on it.
    out.status = "failed";
    out.reason = child.payload.empty() ? child.detail : child.payload;
    obs::add("super.failed_rows");
  } else {
    switch (child.status) {
      case ChildStatus::kCrash: obs::add("super.crashes"); break;
      case ChildStatus::kTimeout: obs::add("super.timeouts"); break;
      case ChildStatus::kOom: obs::add("super.oom_kills"); break;
      default: break;
    }
    std::fprintf(stderr, "supervisor: %s attempt %d died (%s: %s)\n",
                 t.key.c_str(), t.attempts, child_status_name(child.status),
                 child.detail.c_str());
    const RetryDecision d = plan_retry(opts_.retry, child.status, t.attempts);
    if (d.retry) {
      obs::add("super.retries");
      t.rung = d.rung;
      t.not_before = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(
                         static_cast<long long>(d.delay_ms * 1000.0));
      t.counted_admission_wait = false;
      ready_.push_front(std::move(t));  // retries go before unstarted rows
      return;                           // not terminal yet
    }
    out.status = "failed";
    out.reason = std::string(child_status_name(child.status)) + ": " +
                 child.detail + " (after " + std::to_string(t.attempts) +
                 " attempts)";
    obs::add("super.failed_rows");
  }

  if (journal_ != nullptr) {
    JournalRecord rec;
    rec.key = out.key;
    rec.status = out.status;
    rec.attempts = out.attempts;
    rec.outcome = child_status_name(out.last_status);
    rec.reason = out.reason;
    rec.row_json = out.payload;
    journal_->append(rec);
  }
  done_.emplace(out.key, std::move(out));
}

void Scheduler::pump() {
  admission_deferred_ = false;
  spawn_ready();
  if (running_.empty()) {
    // Nothing in flight: every ready row is waiting out a backoff (or the
    // queue is empty). Sleep until the earliest deadline, bounded.
    double timeout_ms = kAdmissionRecheckMs;
    for (const Task& t : ready_) {
      const double until = ms_until(t.not_before);
      if (until > 0 && until < timeout_ms) timeout_ms = until;
    }
    // Retry EINTR: a signal (the fuzz job's children are signal-heavy) must
    // shorten the backoff sleep, not turn it into a busy spin.
    while (::poll(nullptr, 0,
                  static_cast<int>(timeout_ms < 1 ? 1 : timeout_ms + 0.5)) < 0 &&
           errno == EINTR) {
    }
    return;
  }

  double timeout_ms = -1.0;  // block
  const auto consider = [&timeout_ms](double t) {
    if (t < 0) return;
    if (timeout_ms < 0 || t < timeout_ms) timeout_ms = t;
  };
  for (const Running& r : running_) {
    const double d = r.child.next_deadline_ms();
    if (d >= 0) consider(d < 0 ? 0.0 : d);
  }
  if (running_.size() < static_cast<std::size_t>(opts_.jobs))
    for (const Task& t : ready_) {
      const double until = ms_until(t.not_before);
      if (until > 0) consider(until);
    }
  if (admission_deferred_) consider(kAdmissionRecheckMs);

  std::vector<struct pollfd> pfds;
  pfds.reserve(running_.size());
  for (const Running& r : running_)
    pfds.push_back({r.child.fd(), POLLIN, 0});
  const int timeout =
      timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms < 1 ? 1 : timeout_ms + 0.5);
  // On any poll failure (EINTR from a stray signal included) fall through
  // with rc < 0: no revents are consulted, but the watchdog pokes below still
  // run, so a child past its deadline is escalated instead of the error
  // silently stalling the sweep until the next successful poll.
  const int rc = ::poll(pfds.data(), pfds.size(), timeout);

  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (rc > 0 && (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      running_[i].child.pump();
    running_[i].child.poke_watchdog();
  }
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].child.eof()) {
      Running r = std::move(running_[i]);
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      finish(std::move(r));  // may re-queue a retry; next pump spawns it
    } else {
      ++i;
    }
  }
}

RowOutcome Scheduler::wait(const std::string& key) {
  if (!known(key))
    throw Error("scheduler: row '" + key + "' was never enqueued");
  for (;;) {
    const auto it = done_.find(key);
    if (it != done_.end()) return it->second;
    pump();
  }
}

void Scheduler::drain() {
  while (!ready_.empty() || !running_.empty()) pump();
}

}  // namespace mfd::super
