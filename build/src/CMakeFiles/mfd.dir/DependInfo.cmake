
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/io.cpp" "src/CMakeFiles/mfd.dir/bdd/io.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/bdd/io.cpp.o.d"
  "/root/repo/src/bdd/isop.cpp" "src/CMakeFiles/mfd.dir/bdd/isop.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/bdd/isop.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/mfd.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/ops.cpp" "src/CMakeFiles/mfd.dir/bdd/ops.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/bdd/ops.cpp.o.d"
  "/root/repo/src/bdd/reorder.cpp" "src/CMakeFiles/mfd.dir/bdd/reorder.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/bdd/reorder.cpp.o.d"
  "/root/repo/src/circuits/arith.cpp" "src/CMakeFiles/mfd.dir/circuits/arith.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/circuits/arith.cpp.o.d"
  "/root/repo/src/circuits/mcnc.cpp" "src/CMakeFiles/mfd.dir/circuits/mcnc.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/circuits/mcnc.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/CMakeFiles/mfd.dir/core/synthesizer.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/core/synthesizer.cpp.o.d"
  "/root/repo/src/decomp/boundset.cpp" "src/CMakeFiles/mfd.dir/decomp/boundset.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/decomp/boundset.cpp.o.d"
  "/root/repo/src/decomp/compat.cpp" "src/CMakeFiles/mfd.dir/decomp/compat.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/decomp/compat.cpp.o.d"
  "/root/repo/src/decomp/dc_assign.cpp" "src/CMakeFiles/mfd.dir/decomp/dc_assign.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/decomp/dc_assign.cpp.o.d"
  "/root/repo/src/decomp/decompose.cpp" "src/CMakeFiles/mfd.dir/decomp/decompose.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/decomp/decompose.cpp.o.d"
  "/root/repo/src/decomp/encoding.cpp" "src/CMakeFiles/mfd.dir/decomp/encoding.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/decomp/encoding.cpp.o.d"
  "/root/repo/src/io/blif.cpp" "src/CMakeFiles/mfd.dir/io/blif.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/io/blif.cpp.o.d"
  "/root/repo/src/io/pla.cpp" "src/CMakeFiles/mfd.dir/io/pla.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/io/pla.cpp.o.d"
  "/root/repo/src/isf/isf.cpp" "src/CMakeFiles/mfd.dir/isf/isf.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/isf/isf.cpp.o.d"
  "/root/repo/src/map/clb.cpp" "src/CMakeFiles/mfd.dir/map/clb.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/map/clb.cpp.o.d"
  "/root/repo/src/net/baselines.cpp" "src/CMakeFiles/mfd.dir/net/baselines.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/net/baselines.cpp.o.d"
  "/root/repo/src/net/lutnet.cpp" "src/CMakeFiles/mfd.dir/net/lutnet.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/net/lutnet.cpp.o.d"
  "/root/repo/src/net/simulate.cpp" "src/CMakeFiles/mfd.dir/net/simulate.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/net/simulate.cpp.o.d"
  "/root/repo/src/sym/minimize.cpp" "src/CMakeFiles/mfd.dir/sym/minimize.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/sym/minimize.cpp.o.d"
  "/root/repo/src/sym/sifting.cpp" "src/CMakeFiles/mfd.dir/sym/sifting.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/sym/sifting.cpp.o.d"
  "/root/repo/src/sym/symmetrize.cpp" "src/CMakeFiles/mfd.dir/sym/symmetrize.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/sym/symmetrize.cpp.o.d"
  "/root/repo/src/sym/symmetry.cpp" "src/CMakeFiles/mfd.dir/sym/symmetry.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/sym/symmetry.cpp.o.d"
  "/root/repo/src/util/coloring.cpp" "src/CMakeFiles/mfd.dir/util/coloring.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/util/coloring.cpp.o.d"
  "/root/repo/src/util/graph.cpp" "src/CMakeFiles/mfd.dir/util/graph.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/util/graph.cpp.o.d"
  "/root/repo/src/util/matching.cpp" "src/CMakeFiles/mfd.dir/util/matching.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/util/matching.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/mfd.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/mfd.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
