file(REMOVE_RECURSE
  "CMakeFiles/fig2_adder.dir/fig2_adder.cpp.o"
  "CMakeFiles/fig2_adder.dir/fig2_adder.cpp.o.d"
  "fig2_adder"
  "fig2_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
