// Delta-debugging shrinker for failing fuzz specs (docs/FUZZING.md).
//
// Given a spec on which some predicate fails (in practice: "the oracle
// reports a failure"), the shrinker greedily minimizes it through three
// reduction stages, repeated to a fixpoint:
//   1. drop outputs (keep at least one),
//   2. drop input variables (cofactor the tables at var = 0),
//   3. flip don't-care cells to cared-for values (chunked ddmin: halves,
//      then quarters, ... down to single cells) — a failure that survives
//      with fewer DCs is a tighter, more deterministic reproducer.
// Every candidate is re-validated by running the predicate on the reduced
// spec; reductions that make the failure disappear are rolled back. The
// total number of predicate runs is capped (each one re-runs the full
// oracle), so shrinking always terminates promptly.
#pragma once

#include <functional>

#include "verify/specgen.h"

namespace mfd::verify {

/// Returns true while the spec still exhibits the failure being minimized.
using FailPredicate = std::function<bool(const TableSpec&)>;

struct ShrinkOptions {
  /// Ceiling on predicate invocations across all stages.
  int max_checks = 400;
};

struct ShrinkResult {
  TableSpec spec;      ///< the minimized spec (still failing)
  int checks_run = 0;  ///< predicate invocations spent
  int rounds = 0;      ///< full stage-1..3 sweeps until fixpoint (or cap)
};

/// Minimizes `failing` under `still_fails`. `still_fails(failing)` is
/// assumed true and is not re-checked.
ShrinkResult shrink_spec(const TableSpec& failing, const FailPredicate& still_fails,
                         const ShrinkOptions& opts = {});

}  // namespace mfd::verify
