// Small worker pool for embarrassingly parallel candidate evaluation.
//
// The pool exposes exactly one primitive, `for_each`: run fn(i, slot) for
// every index i in [0, n), claiming indices in order from a shared cursor.
// The *slot* is a dense per-call thread id (0 = the calling thread, which
// always participates), so callers can pre-build one context per slot —
// the bound-set evaluator keeps one bdd::Manager per slot, workers never
// touch the caller's manager (see docs/PARALLELISM.md).
//
// Design notes
// ------------
// * Determinism is the caller's job, and index-addressed results make it
//   easy: fn writes results[i], the caller reduces over i in order, and the
//   outcome is independent of thread count and completion order.
// * Exceptions cancel cooperatively: the first task to throw flips a cancel
//   flag (claimed tasks finish, unclaimed indices are skipped), and after
//   the pool drains, the exception of the *lowest-index* failed task is
//   rethrown on the calling thread. A BudgetExceeded thrown by one worker
//   therefore surfaces exactly like its serial counterpart, and the
//   degradation ladder upstream engages unchanged.
// * `parallelism <= 1`, `n <= 1`, and calls from inside a pool task all run
//   inline on the calling thread (no self-deadlock, no thread churn), with
//   identical exception semantics.
// * Workers are lazy: the process-wide pool spawns threads the first time a
//   call needs them and grows up to the requested parallelism; idle workers
//   block on a condition variable.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace mfd::util {

class ThreadPool {
 public:
  /// Task signature: `index` in [0, n), `slot` in [0, parallelism) — slot 0
  /// is the calling thread; a given slot is used by one thread per call.
  using Task = std::function<void(std::size_t index, int slot)>;

  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i, slot) for every i in [0, n) on up to `parallelism` threads
  /// (the caller included) and blocks until every claimed task finished.
  /// Rethrows the lowest-index task exception, if any, after the drain.
  void for_each(std::size_t n, int parallelism, const Task& fn);

  /// Threads currently spawned (tests / introspection).
  int num_threads() const;

  /// The process-wide pool. Grows on demand; never shrinks.
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfd::util
