file(REMOVE_RECURSE
  "CMakeFiles/multiplier_pm4.dir/multiplier_pm4.cpp.o"
  "CMakeFiles/multiplier_pm4.dir/multiplier_pm4.cpp.o.d"
  "multiplier_pm4"
  "multiplier_pm4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplier_pm4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
