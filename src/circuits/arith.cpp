// Word-level construction helpers and arithmetic benchmark generators.
#include <cassert>

#include "circuits/circuits.h"

namespace mfd::circuits {

using bdd::Bdd;
using bdd::Manager;

void ensure_vars(Manager& m, int n) {
  while (m.num_vars() < n) m.add_var();
}

void interleave_order(Manager& m, const std::vector<std::vector<int>>& groups) {
  std::vector<int> order;
  std::vector<bool> placed(static_cast<std::size_t>(m.num_vars()), false);
  std::size_t longest = 0;
  for (const auto& g : groups) longest = std::max(longest, g.size());
  for (std::size_t i = 0; i < longest; ++i) {
    for (const auto& g : groups) {
      if (i < g.size() && !placed[static_cast<std::size_t>(g[i])]) {
        order.push_back(g[i]);
        placed[static_cast<std::size_t>(g[i])] = true;
      }
    }
  }
  for (int v = 0; v < m.num_vars(); ++v)
    if (!placed[static_cast<std::size_t>(v)]) order.push_back(v);
  m.set_order(order);
}

Word input_word(Manager& m, int first, int w) {
  Word word;
  word.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) word.push_back(m.var(first + i));
  return word;
}

Word add_words(const Word& a, const Word& b, Bdd cin) {
  assert(!a.empty());
  Manager& m = *a.front().manager();
  Bdd carry = cin.valid() ? cin : m.bdd_false();
  const std::size_t w = std::max(a.size(), b.size());
  Word sum;
  sum.reserve(w + 1);
  for (std::size_t i = 0; i < w; ++i) {
    const Bdd ai = i < a.size() ? a[i] : m.bdd_false();
    const Bdd bi = i < b.size() ? b[i] : m.bdd_false();
    sum.push_back(ai ^ bi ^ carry);
    carry = (ai & bi) | (carry & (ai ^ bi));
  }
  sum.push_back(carry);
  return sum;
}

Word count_ones(Manager& m, const std::vector<Bdd>& bits) {
  Word count{m.bdd_false()};
  for (const Bdd& x : bits) {
    // count += x, ripple style.
    Bdd carry = x;
    for (auto& c : count) {
      const Bdd s = c ^ carry;
      carry = c & carry;
      c = s;
    }
    count.push_back(carry);
  }
  // Trim leading constant-zero bits beyond ceil(log2(n+1)).
  while (count.size() > 1 && count.back().is_false()) count.pop_back();
  return count;
}

Word multiply_words(const Word& a, const Word& b) {
  assert(!a.empty() && !b.empty());
  Manager& m = *a.front().manager();
  Word acc(a.size() + b.size(), m.bdd_false());
  for (std::size_t j = 0; j < b.size(); ++j) {
    // acc += (a & b[j]) << j
    Bdd carry = m.bdd_false();
    for (std::size_t i = 0; i < a.size() + 1 && j + i < acc.size(); ++i) {
      const Bdd pp = i < a.size() ? (a[i] & b[j]) : m.bdd_false();
      Bdd& slot = acc[j + i];
      const Bdd s = slot ^ pp ^ carry;
      carry = (slot & pp) | (carry & (slot ^ pp));
      slot = s;
    }
  }
  return acc;
}

bdd::Bdd word_equals(const Word& a, std::uint64_t value) {
  Manager& m = *a.front().manager();
  Bdd r = m.bdd_true();
  for (std::size_t i = 0; i < a.size(); ++i)
    r &= ((value >> i) & 1) ? a[i] : !a[i];
  return r;
}

Benchmark adder(Manager& m, int n) {
  ensure_vars(m, 2 * n);
  {
    std::vector<int> a, b;
    for (int i = 0; i < n; ++i) a.push_back(i), b.push_back(n + i);
    interleave_order(m, {a, b});
  }
  Benchmark b;
  b.name = "add" + std::to_string(n);
  b.num_inputs = 2 * n;
  b.outputs = add_words(input_word(m, 0, n), input_word(m, n, n));
  return b;
}

Benchmark partial_multiplier(Manager& m, int n) {
  ensure_vars(m, n * n);
  Benchmark b;
  b.name = "pm" + std::to_string(n);
  b.num_inputs = n * n;
  // Sum of p(i,j) * 2^(i+j) over the multiplication matrix.
  Word acc(static_cast<std::size_t>(2 * n), m.bdd_false());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      Bdd carry = m.var(i * n + j);
      for (std::size_t k = static_cast<std::size_t>(i + j); k < acc.size(); ++k) {
        if (carry.is_false()) break;
        const Bdd s = acc[k] ^ carry;
        carry = acc[k] & carry;
        acc[k] = s;
      }
    }
  }
  b.outputs = std::move(acc);
  return b;
}

Benchmark multiplier(Manager& m, int n) {
  ensure_vars(m, 2 * n);
  {
    std::vector<int> a, b;
    for (int i = 0; i < n; ++i) a.push_back(i), b.push_back(n + i);
    interleave_order(m, {a, b});
  }
  Benchmark b;
  b.name = "mult" + std::to_string(n);
  b.num_inputs = 2 * n;
  b.outputs = multiply_words(input_word(m, 0, n), input_word(m, n, n));
  return b;
}

}  // namespace mfd::circuits
