file(REMOVE_RECURSE
  "CMakeFiles/mfd_synth.dir/mfd_synth.cpp.o"
  "CMakeFiles/mfd_synth.dir/mfd_synth.cpp.o.d"
  "mfd_synth"
  "mfd_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfd_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
