// Differential determinism tests: the parallel bound-set evaluator must be a
// pure speedup. For every --jobs value the search scores candidates in
// per-worker managers and reduces in generation order, so `jobs` may change
// *when* a candidate is scored but never *which* candidate wins. These tests
// pin that contract end to end: identical chosen bound sets from
// select_bound_set, and identical networks / CLB counts / decompose stats
// from full synthesis runs, for jobs in {1, 2, 8}.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "circuits/circuits.h"
#include "core/synthesizer.h"
#include "decomp/boundset.h"
#include "isf/isf.h"

namespace mfd {
namespace {

using bdd::Manager;

constexpr int kJobsVariants[] = {1, 2, 8};

std::vector<Isf> spec_of(const circuits::Benchmark& bench) {
  std::vector<Isf> fns;
  for (const bdd::Bdd& f : bench.outputs) fns.push_back(Isf::completely_specified(f));
  return fns;
}

std::string choice_key(const BoundSetChoice& c) {
  std::ostringstream os;
  os << "vars=[";
  for (int v : c.vars) os << v << ",";
  os << "] benefit=" << c.benefit << " gap=" << c.sharing_gap
     << " sum_r=" << c.sum_r << " r=[";
  for (int r : c.r_per_output) os << r << ",";
  os << "]";
  return os.str();
}

TEST(ParallelDeterminism, SelectBoundSetIsJobsInvariant) {
  // Several shapes (arithmetic, symmetric, random-ish control logic) so ties
  // in the score actually occur and the tie-break path is exercised.
  const struct {
    const char* name;
    int p;
  } cases[] = {{"rd53", 3}, {"rd73", 4}, {"misex1", 4}, {"z4ml", 4}};
  for (const auto& tc : cases) {
    Manager m;
    const circuits::Benchmark bench = circuits::build(tc.name, m);
    const std::vector<Isf> fns = spec_of(bench);
    std::vector<int> order(static_cast<std::size_t>(bench.num_inputs));
    for (int i = 0; i < bench.num_inputs; ++i) order[static_cast<std::size_t>(i)] = i;

    std::string serial_key;
    for (int jobs : kJobsVariants) {
      BoundSetOptions opts;
      opts.jobs = jobs;
      const std::string key = choice_key(select_bound_set(fns, order, tc.p, opts));
      if (jobs == 1)
        serial_key = key;
      else
        EXPECT_EQ(key, serial_key) << tc.name << " diverged at jobs=" << jobs;
    }
    EXPECT_FALSE(serial_key.empty());
  }
}

// One string capturing everything the table-1 experiment reports about a run:
// the full network (structure, not just counts), both CLB packings, and the
// decompose statistics. Two runs are "identical" iff these strings match.
std::string run_fingerprint(const std::string& circuit, const SynthesisOptions& base,
                            int jobs) {
  SynthesisOptions opts = base;
  opts.decomp.boundset.jobs = jobs;
  Manager m;
  const circuits::Benchmark bench = circuits::build(circuit, m);
  const SynthesisResult r = Synthesizer(opts).run(bench);
  EXPECT_TRUE(r.verified) << circuit << " jobs=" << jobs;
  std::ostringstream os;
  os << "luts=" << r.network.count_luts() << " gates=" << r.network.count_gates()
     << " depth=" << r.network.depth() << " clb_greedy=" << r.clb_greedy.num_clbs
     << " clb_matching=" << r.clb_matching.num_clbs
     << " steps=" << r.stats.decomposition_steps
     << " shannon=" << r.stats.shannon_fallbacks
     << " functions=" << r.stats.total_decomposition_functions
     << " sum_r=" << r.stats.sum_r << " sym_pairs=" << r.stats.symmetrized_pairs
     << " max_depth=" << r.stats.max_depth
     << " mux_fallbacks=" << r.stats.bdd_mux_fallbacks << "\n"
     << r.network.to_string();
  return os.str();
}

void expect_flow_jobs_invariant(const std::string& circuit,
                                const SynthesisOptions& base, const char* flow) {
  const std::string serial = run_fingerprint(circuit, base, 1);
  for (int jobs : {2, 8}) {
    EXPECT_EQ(run_fingerprint(circuit, base, jobs), serial)
        << circuit << " (" << flow << ") diverged at jobs=" << jobs;
  }
}

// Table-1 circuits small enough to run three times per preset within the
// test timeout; the full-table sweep (including the slow C499/apex7/rot) is
// asserted bit-identical by the CI --jobs sweep on the bench binary.
const char* const kCircuits[] = {"rd53", "rd73", "misex1", "z4ml",
                                 "5xp1", "b9",   "count",  "f51m"};

TEST(ParallelDeterminism, FullFlowMulopDcIsJobsInvariant) {
  for (const char* circuit : kCircuits)
    expect_flow_jobs_invariant(circuit, preset_mulop_dc(5), "mulop-dc");
}

TEST(ParallelDeterminism, FullFlowMulopIIIsJobsInvariant) {
  for (const char* circuit : kCircuits)
    expect_flow_jobs_invariant(circuit, preset_mulopII(5), "mulopII");
}

}  // namespace
}  // namespace mfd
