// Figure 3 of the paper: the partial multiplier pm_n (the n*n partial
// products are inputs; outputs are the 2n product bits) synthesized into
// two-input gates — the "columnwise addition" scheme the tool discovers.
//
// Two claims to reproduce:
//  (a) the don't-care assignment is *essential*: without it the pm_4
//      realization needs ~75% more gates;
//  (b) the synthesized network is competitive with the Wallace-tree
//      reduction [23] (~10n^2 - 20n gates counting the operand ANDs, i.e.
//      ~10n^2 - 20n - n^2 over partial-product inputs).
#include "bench_common.h"
#include "net/baselines.h"

namespace {

struct PmRow {
  int n = 0;
  int dc_gates = 0, dc_depth = 0;
  int nodc_gates = 0, nodc_depth = 0;
  int wallace_gates = 0, wallace_depth = 0;
  bool verified = false;
};

std::vector<PmRow> g_rows;

void run_pm(benchmark::State& state, int n) {
  for (auto _ : state) {
    PmRow row;
    row.n = n;
    {
      mfd::bdd::Manager m;
      const auto bench = mfd::circuits::partial_multiplier(m, n);
      const auto r = mfd::Synthesizer(mfd::preset_mulop_dc(2)).run(bench);
      row.dc_gates = r.network.count_gates();
      row.dc_depth = r.network.depth();
      row.verified = r.verified;
    }
    {
      mfd::bdd::Manager m;
      const auto bench = mfd::circuits::partial_multiplier(m, n);
      const auto r = mfd::Synthesizer(mfd::preset_mulopII(2)).run(bench);
      row.nodc_gates = r.network.count_gates();
      row.nodc_depth = r.network.depth();
    }
    const auto wallace = mfd::net::wallace_tree_pp(n);
    row.wallace_gates = wallace.count_gates();
    row.wallace_depth = wallace.depth();
    g_rows.push_back(row);
    state.counters["dc_gates"] = row.dc_gates;
    state.counters["nodc_gates"] = row.nodc_gates;
    state.counters["wallace_gates"] = row.wallace_gates;
  }
}

void print_table() {
  std::printf("\nFigure 3: partial multipliers pm_n as two-input gate networks.\n");
  std::printf("paper: without DC assignment, pm_4 needs ~75%% more gates;\n");
  std::printf("Wallace-tree comparison ~ 10n^2 - 20n gates (incl. operand ANDs).\n\n");
  std::printf("%3s | %9s %6s | %9s %6s | %8s | %9s %6s | %s\n", "n", "mulop-dc",
               "depth", "no-DC", "depth", "overhead", "wallace", "depth", "verified");
  mfd::bench::print_rule(84);
  for (const PmRow& row : g_rows)
    std::printf("%3d | %9d %6d | %9d %6d | %+7.0f%% | %9d %6d | %s\n", row.n,
                 row.dc_gates, row.dc_depth, row.nodc_gates, row.nodc_depth,
                 100.0 * (row.nodc_gates - row.dc_gates) / std::max(1, row.dc_gates),
                 row.wallace_gates, row.wallace_depth, row.verified ? "yes" : "NO");
  std::printf("\nshape checks: (a) the no-DC flow needs substantially more gates\n");
  std::printf("(paper: +75%% at n = 4); (b) mulop-dc is in the same class as the\n");
  std::printf("Wallace reduction.\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const int n : {2, 3, 4})
    benchmark::RegisterBenchmark(("fig3/pm" + std::to_string(n)).c_str(),
                                 [n](benchmark::State& s) { run_pm(s, n); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
