// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomized components of the library (synthetic benchmark generation,
// coloring tie-breaks, property tests) draw from this generator so that every
// run of the experiment harness is bit-reproducible. The implementation is
// xoshiro256** seeded through SplitMix64, which has no measurable bias for the
// small-range draws we perform.
#pragma once

#include <cstdint>
#include <vector>

namespace mfd {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience helpers.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int range(int lo, int hi);

  /// Bernoulli draw with probability `num/den`.
  bool chance(std::uint32_t num, std::uint32_t den);

  /// Fair coin.
  bool flip() { return (next() >> 63) != 0; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mfd
