// Symmetric sifting: the variable-ordering seed of the bound-set search.
//
// Following [12,15], variables that are pairwise NE-symmetric in every output
// are kept adjacent and sifted as a block; the resulting order groups
// "interchangeable" variables, which is exactly the neighborhood structure
// the bound-set search of the decomposition flow wants to scan.
#pragma once

#include <vector>

#include "isf/isf.h"

namespace mfd {

/// Detects common NE-symmetry groups of `fns` over `vars`, then runs group
/// sifting with them. Returns the groups (singletons included), each sorted
/// by the variable's level after sifting.
std::vector<std::vector<int>> symmetric_sift(bdd::Manager& m,
                                             const std::vector<Isf>& fns,
                                             const std::vector<int>& vars);

}  // namespace mfd
