// Canonical function signatures for the memoization layer (docs/CACHING.md).
//
// A FunctionSignature identifies a Boolean function *semantically*: it is the
// function's multilinear extension evaluated at a fixed pseudo-random point,
// modulo the Mersenne prime 2^61 - 1, under two independent salts (~122 bits
// of identity). Because the multilinear extension is a canonical object of
// the function itself, the signature is
//   * variable-order independent — re-sifting the manager does not change it,
//     so the portfolio's second entry hits entries produced by the first;
//   * manager independent — per-worker managers (docs/PARALLELISM.md) and
//     fresh managers across Synthesizer runs produce the same signature for
//     the same function, which is what makes a cross-call flow cache possible
//     where raw edge bits (recycled by GC, private per manager) could not;
//   * complement-friendly — H(!f) = 1 - H(f) (mod p), so negating a function
//     is an O(1) signature operation and complement-normalized keys
//     ("f and !f collide") need no second traversal.
//
// The evaluation recurses over the BDD: H(ONE) = 1, H(node v) =
// r_v * H(hi) + (1 - r_v) * H(lo), with r_v a fixed per-variable constant.
// Two distinct functions of n variables collide with probability <= (n/p)^2
// by Schwartz-Zippel — negligible against the flow's problem sizes, and the
// cache's debug cross-check mode (MFD_CACHE_CHECK=1) recomputes every hit to
// flush out the impossible.
//
// A SignatureComputer memoizes per-node hashes for one manager. The memo is
// keyed by node index and cleared whenever the manager's gc_runs counter
// advances (garbage collection is the only event that recycles indices;
// in-place reordering preserves the index -> function mapping, and the hash
// is order independent, so reorders do *not* invalidate).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "bdd/bdd.h"

namespace mfd::cache {

/// Semantic identity of one Boolean function (see header notes). Value type;
/// suitable as (part of) a cache key.
struct FunctionSignature {
  std::uint64_t w0 = 0;  ///< H(f) under salt 0, in [0, 2^61 - 1)
  std::uint64_t w1 = 0;  ///< H(f) under salt 1

  friend bool operator==(const FunctionSignature& a, const FunctionSignature& b) {
    return a.w0 == b.w0 && a.w1 == b.w1;
  }
  friend bool operator!=(const FunctionSignature& a, const FunctionSignature& b) {
    return !(a == b);
  }
  /// Arbitrary-but-canonical order (used to pick a complement representative).
  friend bool operator<(const FunctionSignature& a, const FunctionSignature& b) {
    return a.w0 != b.w0 ? a.w0 < b.w0 : a.w1 < b.w1;
  }
};

/// Signature evaluator bound to one manager, with a per-node memo.
/// Not thread safe: each thread (flow thread, every pool worker) owns its own
/// computer over its own manager — signatures agree across them by
/// construction, so the *caches* they feed still share entries.
class SignatureComputer {
 public:
  explicit SignatureComputer(const bdd::Manager& m) : m_(&m) {}

  /// Signature of the function rooted at `e` (complement honoured: `of(e)`
  /// and `of(!e)` differ, and are mutual complements mod p).
  FunctionSignature of(bdd::Edge e);

  /// Complement-normalized signature: the smaller of `of(e)` and `of(!e)`.
  /// `flipped`, when given, receives true iff the complement was chosen —
  /// the bit a caller needs to normalize a whole cofactor *vector*
  /// consistently (flip every entry by entry 0's choice, not per entry).
  FunctionSignature of_normalized(bdd::Edge e, bool* flipped = nullptr);

  /// Nodes currently memoized (for tests and the cache.entries gauge).
  std::size_t memo_size() const { return memo_.size(); }

 private:
  void refresh_epoch();
  std::pair<std::uint64_t, std::uint64_t> hash_regular(bdd::Edge regular);

  const bdd::Manager* m_;
  std::uint64_t seen_gc_runs_ = ~std::uint64_t{0};
  /// regular-edge node index -> (h0, h1) of the *regular* function.
  std::unordered_map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> memo_;
};

}  // namespace mfd::cache
