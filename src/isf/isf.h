// Incompletely specified Boolean functions (ISFs).
//
// An ISF is the interval [on, on | !care]: inputs in `care & !on` are OFF,
// inputs in `!care` are don't-cares that any extension may set freely.
// ISFs are the working representation of the whole decomposition flow: even
// for completely specified benchmark functions, the recursive step introduces
// don't cares (composition-function codes that no bound vertex maps to),
// which is exactly the degree of freedom the paper's three-step assignment
// exploits.
#pragma once

#include <vector>

#include "bdd/bdd.h"

namespace mfd {

class Isf {
 public:
  Isf() = default;

  /// ISF with the given on-set and care-set; `on` is clipped to `care` so the
  /// invariant on <= care always holds.
  Isf(bdd::Bdd on, bdd::Bdd care);

  /// Completely specified function (care = 1).
  static Isf completely_specified(bdd::Bdd f);

  /// From explicit on-set and don't-care set.
  static Isf from_on_dc(const bdd::Bdd& on, const bdd::Bdd& dc);

  const bdd::Bdd& on() const { return on_; }
  const bdd::Bdd& care() const { return care_; }
  bdd::Bdd off() const { return care_ & !on_; }
  bdd::Bdd dc() const { return !care_; }

  bdd::Manager* manager() const { return on_.manager(); }
  bool valid() const { return on_.valid(); }
  bool is_completely_specified() const { return care_.is_true(); }
  /// True if the care set is empty (every extension is admissible).
  bool is_vacuous() const { return care_.is_false(); }

  Isf cofactor(int var, bool value) const;

  /// True iff `f` is a valid extension: on <= f and f <= on | dc.
  bool admits(const bdd::Bdd& f) const;

  /// True iff the two ISFs agree wherever both care.
  bool compatible_with(const Isf& other) const;

  /// Information union of two compatible ISFs (least common "refinement"):
  /// the result cares wherever either cares. Requires compatible_with(other).
  Isf merge(const Isf& other) const;

  /// The extension that maps every don't care to 0 (the paper's mulopII
  /// reference assignment).
  bdd::Bdd extension_zero() const { return on_; }
  /// The extension mapping every don't care to 1.
  bdd::Bdd extension_one() const { return on_ | !care_; }

  /// An extension chosen for small representation: the Coudert-Madre
  /// restrict of the on-set w.r.t. the care set, unless plain extension-zero
  /// is smaller (restrict occasionally enlarges the support).
  bdd::Bdd extension_small() const;

  /// Variables on which either the on-set or the care-set depends.
  std::vector<int> support() const;

  /// Two ISFs are equal as *specifications* (same on and care sets).
  friend bool operator==(const Isf& a, const Isf& b) {
    return a.on_ == b.on_ && a.care_ == b.care_;
  }
  friend bool operator!=(const Isf& a, const Isf& b) { return !(a == b); }

 private:
  bdd::Bdd on_;
  bdd::Bdd care_;
};

}  // namespace mfd
