// ROBDD-size minimization of incompletely specified functions by don't-care
// assignment — the method of [20] (Scholl/Melchior/Hotz/Molitor, ED&TC'97)
// that the paper's step 1 builds on, packaged as a standalone utility.
//
// Pipeline: (1) greedily assign don't cares to create NE/E pair symmetries
// (symmetric functions have provably narrow BDD levels), then (2) spend the
// remaining don't cares with the Coudert-Madre restrict operator, and
// (3) group-sift the result. Returns a completely specified extension.
#pragma once

#include "isf/isf.h"

namespace mfd {

struct MinimizeResult {
  bdd::Bdd function;     ///< a completely specified extension of the input
  std::size_t size_before = 0;  ///< DAG size of the extension-zero baseline
  std::size_t size_after = 0;   ///< DAG size of the returned function
  int symmetries_created = 0;
};

/// Minimizes the ROBDD size of an extension of `f` over the given variables
/// (default: f's support). Also reorders the manager (group sifting).
MinimizeResult minimize_robdd_size(const Isf& f, std::vector<int> vars = {});

}  // namespace mfd
