// Graph coloring == minimum clique cover of the complement graph.
//
// The decomposition core needs minimum clique covers of *compatibility*
// graphs over bound-set vertices (Chang & Marek-Sadowska step, and the
// sharing-driven joint don't-care assignment). Compatibility of incompletely
// specified cofactors is reflexive and symmetric but not transitive, so the
// class structure is a clique cover, not a partition refinement. We compute
// it as a proper coloring of the *incompatibility* graph: vertices with the
// same color are pairwise compatible.
//
// Strategy: exact branch-and-bound for small graphs (the common case:
// 2^p <= threshold vertices), DSATUR with iterated random restarts otherwise.
#pragma once

#include <vector>

#include "util/graph.h"
#include "util/rng.h"

namespace mfd {

struct ColoringOptions {
  /// Graphs with at most this many vertices are colored exactly.
  int exact_vertex_limit = 20;
  /// Number of randomized DSATUR restarts for larger graphs.
  int restarts = 8;
  /// Seed for tie-breaking.
  std::uint64_t seed = 1;
};

struct Coloring {
  std::vector<int> color;  ///< color[v] in [0, num_colors)
  int num_colors = 0;
};

/// Properly colors `g` (adjacent vertices receive distinct colors) with a
/// heuristically (or, for small graphs, provably) minimal number of colors.
Coloring color_graph(const Graph& g, const ColoringOptions& opts = {});

/// True iff `c` is a proper coloring of `g`.
bool coloring_is_proper(const Graph& g, const Coloring& c);

}  // namespace mfd
