#include "util/coloring.h"

#include <algorithm>
#include <limits>

#include "core/budget.h"
#include "core/faultinject.h"
#include "obs/obs.h"

namespace mfd {
namespace {

/// DSATUR: repeatedly color the vertex with the highest saturation degree
/// (number of distinct neighbor colors), breaking ties by degree and then by
/// a random permutation so that restarts explore different solutions.
Coloring dsatur(const Graph& g, Rng& rng) {
  const int n = g.num_vertices();
  Coloring result;
  result.color.assign(n, -1);
  if (n == 0) return result;

  std::vector<int> tiebreak(n);
  for (int v = 0; v < n; ++v) tiebreak[v] = v;
  rng.shuffle(tiebreak);

  // sat_mask[v]: bitset of neighbor colors (grown on demand).
  std::vector<std::vector<bool>> sat(n);
  std::vector<int> sat_deg(n, 0);

  for (int step = 0; step < n; ++step) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (result.color[v] != -1) continue;
      if (best == -1 || sat_deg[v] > sat_deg[best] ||
          (sat_deg[v] == sat_deg[best] &&
           (g.degree(v) > g.degree(best) ||
            (g.degree(v) == g.degree(best) && tiebreak[v] < tiebreak[best]))))
        best = v;
    }
    // Smallest color not used by a neighbor.
    int c = 0;
    while (c < static_cast<int>(sat[best].size()) && sat[best][c]) ++c;
    result.color[best] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
    for (int u : g.neighbors(best)) {
      if (result.color[u] != -1) continue;
      if (static_cast<int>(sat[u].size()) <= c) sat[u].resize(c + 1, false);
      if (!sat[u][c]) {
        sat[u][c] = true;
        ++sat_deg[u];
      }
    }
  }
  return result;
}

/// Exact coloring by branch and bound over vertices in decreasing-degree
/// order. Feasible because the decomposition core only calls it for graphs
/// with at most ~20 vertices (bound sets with 2^p small).
class ExactColorer {
 public:
  explicit ExactColorer(const Graph& g) : g_(g), n_(g.num_vertices()) {
    order_.resize(n_);
    for (int v = 0; v < n_; ++v) order_[v] = v;
    std::sort(order_.begin(), order_.end(), [&](int a, int b) {
      return g_.degree(a) > g_.degree(b);
    });
  }

  Coloring solve(const Coloring& initial) {
    best_ = initial;
    color_.assign(n_, -1);
    branch(0, 0);
    obs::add("coloring.exact_nodes", static_cast<std::uint64_t>(kBudget - budget_));
    return best_;
  }

 private:
  void branch(int pos, int used) {
    if (budget_-- <= 0) return;  // keep worst-case cost bounded
    if (used >= best_.num_colors) return;  // can't beat incumbent
    if (pos == n_) {
      best_.num_colors = used;
      best_.color = color_;
      // Re-index colors by vertex id (color_ is indexed by vertex already).
      return;
    }
    const int v = order_[pos];
    bool forbidden_storage[64] = {};
    for (int u : g_.neighbors(v)) {
      const int cu = color_[u];
      if (cu >= 0 && cu < 64) forbidden_storage[cu] = true;
    }
    const int limit = std::min(used + 1, best_.num_colors - 1);
    for (int c = 0; c < limit; ++c) {
      if (c < 64 && forbidden_storage[c]) continue;
      color_[v] = c;
      branch(pos + 1, std::max(used, c + 1));
      color_[v] = -1;
    }
  }

  static constexpr long kBudget = 500000;

  const Graph& g_;
  int n_;
  long budget_ = kBudget;
  std::vector<int> order_;
  std::vector<int> color_;
  Coloring best_;
};

}  // namespace

Coloring color_graph(const Graph& g, const ColoringOptions& opts) {
  obs::add("coloring.calls");
  if (fault::armed()) fault::point("util.coloring");
  // Deadline/ladder awareness: under an installed governor, restarts stop as
  // soon as the deadline passes, and the exact branch-and-bound is skipped
  // entirely once the flow has degraded to greedy-only coloring (level >= 1)
  // or the deadline has already expired. The first DSATUR pass always runs —
  // a proper coloring is required for correctness, only optimality is traded.
  ResourceGovernor* gov = ResourceGovernor::current();
  Rng rng(opts.seed);
  Coloring best = dsatur(g, rng);
  std::uint64_t dsatur_runs = 1;
  for (int r = 1; r < opts.restarts; ++r) {
    if (gov != nullptr && gov->deadline_expired()) {
      obs::add("coloring.restarts_skipped", static_cast<std::uint64_t>(opts.restarts - r));
      break;
    }
    Coloring c = dsatur(g, rng);
    ++dsatur_runs;
    if (c.num_colors < best.num_colors) best = c;
  }
  obs::add("coloring.dsatur_runs", dsatur_runs);
  if (g.num_vertices() <= opts.exact_vertex_limit && g.num_vertices() > 0) {
    if (gov != nullptr &&
        (gov->degrade_level() >= kDegradeGreedyColoring || gov->deadline_expired())) {
      obs::add("coloring.exact_skipped");
    } else {
      obs::add("coloring.exact_runs");
      ExactColorer exact(g);
      Coloring c = exact.solve(best);
      if (c.num_colors < best.num_colors) best = c;
    }
  }
  return best;
}

bool coloring_is_proper(const Graph& g, const Coloring& c) {
  const int n = g.num_vertices();
  if (static_cast<int>(c.color.size()) != n) return false;
  for (int v = 0; v < n; ++v) {
    if (c.color[v] < 0 || c.color[v] >= c.num_colors) return false;
    for (int u : g.neighbors(v))
      if (c.color[u] == c.color[v]) return false;
  }
  return true;
}

}  // namespace mfd
