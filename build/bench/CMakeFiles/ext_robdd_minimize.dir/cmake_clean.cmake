file(REMOVE_RECURSE
  "CMakeFiles/ext_robdd_minimize.dir/ext_robdd_minimize.cpp.o"
  "CMakeFiles/ext_robdd_minimize.dir/ext_robdd_minimize.cpp.o.d"
  "ext_robdd_minimize"
  "ext_robdd_minimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_robdd_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
