// Ablation D: the paper's Section 3 design argument.
//
// [10] (Lai/Pedram/Vrudhula) minimizes the *total* number of decomposition
// functions by encoding the joint partition once for all outputs; the paper
// instead keeps every r_i minimal (r_i = ceil(log2 ncc_i)) and shares what
// can be shared, because with a joint code "the number of inputs of g_i can
// be (much) larger" and composition functions stop fitting LUTs. This
// benchmark runs both encodings through the identical rest of the flow.
#include <map>

#include "bench_common.h"

namespace {

using mfd::bench::FlowRun;
using mfd::bench::run_flow;

const std::vector<std::string> kCircuits{"5xp1", "rd73", "rd84", "z4ml",
                                         "alu2", "clip", "misex1", "count"};

std::map<std::string, std::pair<FlowRun, FlowRun>> g_rows;

void run_circuit(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const FlowRun ours = run_flow(name, mfd::preset_mulop_dc(5), "mulop-dc");
    mfd::SynthesisOptions total = mfd::preset_mulop_dc(5);
    total.decomp.total_minimal_code = true;
    const FlowRun theirs = run_flow(name, total, "total-code");
    g_rows[name] = {ours, theirs};
    state.counters["clb_per_output_minimal"] = ours.clb_greedy;
    state.counters["clb_total_minimal"] = theirs.clb_greedy;
  }
}

void print_table() {
  std::printf("\nAblation D: per-output-minimal codes (this paper) vs the\n");
  std::printf("total-minimal joint code of [10], identical flow otherwise.\n\n");
  std::printf("%-8s | %10s %7s | %10s %7s\n", "circuit", "per-output", "alpha",
               "total-min", "alpha");
  mfd::bench::print_rule(52);
  long t_ours = 0, t_theirs = 0;
  for (const auto& [name, rows] : g_rows) {
    const auto& [ours, theirs] = rows;
    t_ours += ours.clb_greedy;
    t_theirs += theirs.clb_greedy;
    std::printf("%-8s | %10d %7ld | %10d %7ld\n", name.c_str(), ours.clb_greedy,
                 ours.stats.total_decomposition_functions, theirs.clb_greedy,
                 theirs.stats.total_decomposition_functions);
  }
  mfd::bench::print_rule(52);
  std::printf("%-8s | %10ld %9s | %10ld\n", "total", t_ours, "", t_theirs);
  std::printf("\nshape check: the joint code may emit fewer alpha functions but\n");
  std::printf("costs CLBs overall — the paper's reason for per-output minima.\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : kCircuits)
    benchmark::RegisterBenchmark(("ablationD/" + name).c_str(),
                                 [name](benchmark::State& s) { run_circuit(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  mfd::bench::init_stats(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  mfd::bench::write_stats_json();
  return 0;
}
