file(REMOVE_RECURSE
  "CMakeFiles/ablation_boundset.dir/ablation_boundset.cpp.o"
  "CMakeFiles/ablation_boundset.dir/ablation_boundset.cpp.o.d"
  "ablation_boundset"
  "ablation_boundset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boundset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
