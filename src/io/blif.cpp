#include "io/blif.h"

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "circuits/circuits.h"
#include "core/errors.h"

namespace mfd::io {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// One logical line: its tokens plus the 1-based physical line where it
/// starts ('\' continuations glue onto the line that opened them), so parse
/// errors point at real file positions.
struct LogicalLine {
  std::vector<std::string> tokens;
  int line_no = 0;
};

/// Reads logical lines, gluing '\' continuations and stripping comments.
std::vector<LogicalLine> logical_lines(const std::string& text) {
  std::vector<LogicalLine> lines;
  std::istringstream is(text);
  std::string line, joined;
  int line_no = 0;
  int start_line = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const bool cont = !line.empty() && line.back() == '\\';
    if (cont) line.pop_back();
    if (joined.empty()) start_line = line_no;
    joined += line + " ";
    if (cont) continue;
    std::vector<std::string> tokens = tokenize(joined);
    joined.clear();
    if (!tokens.empty()) lines.push_back(LogicalLine{std::move(tokens), start_line});
  }
  return lines;
}

}  // namespace

BlifModel parse_blif(const std::string& text, bdd::Manager& m,
                     const std::string& filename) {
  BlifModel model;
  const auto lines = logical_lines(text);

  std::map<std::string, bdd::Bdd> signal;
  std::size_t li = 0;

  auto read_names_block = [&](const LogicalLine& header, std::size_t& pos) {
    const std::vector<std::string> ios(header.tokens.begin() + 1, header.tokens.end());
    if (ios.empty()) throw ParseError(filename, header.line_no, "blif: empty .names");
    const std::string target = ios.back();
    const int k = static_cast<int>(ios.size()) - 1;
    std::vector<bdd::Bdd> fanin;
    for (int i = 0; i < k; ++i) {
      const auto it = signal.find(ios[static_cast<std::size_t>(i)]);
      if (it == signal.end())
        throw ParseError(filename, header.line_no,
                         "blif: use of undefined signal " + ios[static_cast<std::size_t>(i)] +
                             " (non-topological order is unsupported)");
      fanin.push_back(it->second);
    }
    bdd::Bdd on = m.bdd_false();
    bool complemented = false;
    while (pos < lines.size() && lines[pos].tokens.front()[0] != '.') {
      const LogicalLine& cube_line = lines[pos++];
      std::string in, out;
      if (k == 0) {
        if (cube_line.tokens.size() != 1)
          throw ParseError(filename, cube_line.line_no, "blif: bad constant cover");
        out = cube_line.tokens[0];
      } else {
        if (cube_line.tokens.size() != 2)
          throw ParseError(filename, cube_line.line_no, "blif: bad cover line");
        in = cube_line.tokens[0];
        out = cube_line.tokens[1];
        if (static_cast<int>(in.size()) != k)
          throw ParseError(filename, cube_line.line_no, "blif: cover width mismatch");
      }
      if (out != "1" && out != "0")
        throw ParseError(filename, cube_line.line_no, "blif: bad output plane");
      complemented = (out == "0");
      bdd::Bdd cube = m.bdd_true();
      for (int i = 0; i < k; ++i) {
        const char ch = in[static_cast<std::size_t>(i)];
        if (ch == '-') continue;
        if (ch != '0' && ch != '1')
          throw ParseError(filename, cube_line.line_no, "blif: bad cover character");
        cube &= (ch == '1') ? fanin[static_cast<std::size_t>(i)]
                            : !fanin[static_cast<std::size_t>(i)];
      }
      on |= cube;
    }
    signal[target] = complemented ? !on : on;
  };

  bool in_model = false;
  while (li < lines.size()) {
    const LogicalLine header = lines[li++];
    const std::string& head = header.tokens.front();
    if (head == ".model") {
      if (in_model)
        throw ParseError(filename, header.line_no, "blif: multiple models unsupported");
      in_model = true;
      if (header.tokens.size() > 1) model.name = header.tokens[1];
    } else if (head == ".inputs") {
      for (std::size_t i = 1; i < header.tokens.size(); ++i) {
        circuits::ensure_vars(m, static_cast<int>(model.inputs.size()) + 1);
        signal[header.tokens[i]] = m.var(static_cast<int>(model.inputs.size()));
        model.inputs.push_back(header.tokens[i]);
      }
    } else if (head == ".outputs") {
      // Append: the output list may span several .outputs lines, same as
      // .inputs (assign would silently drop all but the last block).
      model.outputs.insert(model.outputs.end(), header.tokens.begin() + 1,
                           header.tokens.end());
    } else if (head == ".names") {
      read_names_block(header, li);
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      throw ParseError(filename, header.line_no, "blif: unsupported directive " + head);
    } else {
      throw ParseError(filename, header.line_no, "blif: stray line starting with " + head);
    }
  }

  for (const std::string& out : model.outputs) {
    const auto it = signal.find(out);
    // Line 0: a whole-model error with no single offending line.
    if (it == signal.end())
      throw ParseError(filename, 0, "blif: undriven output " + out);
    model.functions.push_back(it->second);
  }
  return model;
}

namespace {

/// Makes `candidate` safe to emit in a BLIF token position: non-empty, no
/// whitespace (token separator), no '#' (comment start), no '\\' (line
/// continuation), no leading '.' (directive). Unusable characters become '_';
/// an empty or directive-like name falls back to `fallback`.
std::string sanitize_blif_name(std::string candidate, const std::string& fallback) {
  for (char& ch : candidate)
    if (ch == '#' || ch == '\\' || std::isspace(static_cast<unsigned char>(ch)))
      ch = '_';
  if (candidate.empty() || candidate[0] == '.') return fallback;
  return candidate;
}

}  // namespace

std::string write_blif(const net::LutNetwork& net, const std::string& model_name,
                       const std::vector<std::string>& input_names,
                       const std::vector<std::string>& output_names) {
  std::ostringstream os;

  // Every emitted name goes through this table: requested names are
  // sanitized, then deduplicated against everything already assigned (user
  // names colliding with each other or with generated pi<N>/po<N>/n<N>/
  // const0/const1 names would silently merge distinct signals on re-read).
  std::set<std::string> used;
  auto claim = [&](const std::string& requested, const std::string& fallback) {
    std::string name = sanitize_blif_name(requested, fallback);
    if (used.insert(name).second) return name;
    for (int suffix = 2;; ++suffix) {
      const std::string retry = name + "_" + std::to_string(suffix);
      if (used.insert(retry).second) return retry;
    }
  };

  std::map<int, std::string> pi_name;
  for (int i = 0; i < net.num_primary_inputs(); ++i) {
    const std::string fallback = "pi" + std::to_string(i);
    pi_name[i] = claim(
        i < static_cast<int>(input_names.size()) ? input_names[static_cast<std::size_t>(i)]
                                                 : fallback,
        fallback);
  }
  std::vector<std::string> po_name(static_cast<std::size_t>(net.num_outputs()));
  for (int o = 0; o < net.num_outputs(); ++o) {
    const std::string fallback = "po" + std::to_string(o);
    po_name[static_cast<std::size_t>(o)] = claim(
        o < static_cast<int>(output_names.size()) ? output_names[static_cast<std::size_t>(o)]
                                                  : fallback,
        fallback);
  }
  const std::string const0_name = claim("const0", "const0");
  const std::string const1_name = claim("const1", "const1");
  std::map<int, std::string> lut_name;
  for (int i = 0; i < net.num_luts(); ++i) {
    const int s = net.lut_signal(i);
    std::string fallback = "n";
    fallback += std::to_string(s);
    lut_name[s] = claim(fallback, fallback);
  }

  auto signal_name = [&](int s) -> std::string {
    if (s == net::kConst0) return const0_name;
    if (s == net::kConst1) return const1_name;
    if (net.is_primary_input(s)) return pi_name.at(s);
    return lut_name.at(s);
  };

  os << ".model " << model_name << "\n.inputs";
  for (int i = 0; i < net.num_primary_inputs(); ++i) os << ' ' << signal_name(i);
  os << "\n.outputs";
  for (int o = 0; o < net.num_outputs(); ++o) os << ' ' << po_name[static_cast<std::size_t>(o)];
  os << "\n";

  bool used_const0 = false, used_const1 = false;
  for (int i = 0; i < net.num_luts(); ++i)
    for (int in : net.lut(i).inputs) {
      used_const0 |= in == net::kConst0;
      used_const1 |= in == net::kConst1;
    }
  for (int s : net.outputs()) {
    used_const0 |= s == net::kConst0;
    used_const1 |= s == net::kConst1;
  }
  if (used_const0) os << ".names " << const0_name << "\n";
  if (used_const1) os << ".names " << const1_name << "\n1\n";

  for (int i = 0; i < net.num_luts(); ++i) {
    const net::Lut& lut = net.lut(i);
    os << ".names";
    for (int in : lut.inputs) os << ' ' << signal_name(in);
    os << ' ' << signal_name(net.lut_signal(i)) << "\n";
    for (std::size_t idx = 0; idx < lut.table.size(); ++idx) {
      if (!lut.table[idx]) continue;
      std::string cube(lut.inputs.size(), '0');
      for (std::size_t j = 0; j < lut.inputs.size(); ++j)
        if ((idx >> j) & 1) cube[j] = '1';
      os << cube << (cube.empty() ? "" : " ") << "1\n";
    }
  }

  // Output drivers: buffers from internal names to output names.
  for (int o = 0; o < net.num_outputs(); ++o) {
    os << ".names " << signal_name(net.outputs()[static_cast<std::size_t>(o)]) << ' '
       << po_name[static_cast<std::size_t>(o)] << "\n1 1\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace mfd::io
