// Compatible classes of bound-set vertices (Roth/Karp [16]).
//
// For a bound set B = {x_b1..x_bp}, the 2^p "bound vertices" are the
// assignments to B; two vertices are compatible when the corresponding
// cofactors agree wherever both care. For completely specified functions
// compatibility is an equivalence and the minimum decomposition-function
// count is ceil(log2(#classes)); for ISFs it is merely reflexive/symmetric,
// and minimizing the class count is a minimum clique cover, i.e. a coloring
// of the incompatibility graph (Chang & Marek-Sadowska [3,2]).
//
// Bound sets in this flow are small (p <= n_LUT + a few), so we enumerate
// all 2^p cofactors explicitly; BDD canonicity makes the pairwise tests and
// the complete-specification class count O(1) hash operations.
#pragma once

#include <vector>

#include "isf/isf.h"
#include "util/graph.h"

namespace mfd {

/// Cofactors of one output w.r.t. a bound set; entry v (bit k of v = value
/// of bound[k]) is the ISF cofactor of f at that bound vertex.
struct CofactorTable {
  std::vector<Isf> entries;
  int num_bound_vars() const;
};

CofactorTable cofactor_table(const Isf& f, const std::vector<int>& bound);

/// True iff the two vertex cofactors agree wherever both care.
bool vertices_compatible(const Isf& a, const Isf& b);

/// Number of compatible classes of a *completely specified* function
/// (distinct cofactors) — the classic ncc(f, B).
int ncc_complete(bdd::Manager& m, bdd::Edge f, const std::vector<int>& bound);

/// Incompatibility graph over the 2^p vertices of one output.
Graph incompatibility_graph(const CofactorTable& table);

/// Joint incompatibility over all outputs: an edge as soon as any output
/// finds the two vertices incompatible (Section 5, step 2 of the paper).
Graph joint_incompatibility_graph(const std::vector<CofactorTable>& tables);

/// Partition of vertices by *structural equality* of their (on, care) pair:
/// the compatible classes after merging has made class members identical.
/// Returns class id per vertex; ids are dense, in first-seen order.
std::vector<int> partition_by_equality(const CofactorTable& table);

/// ceil(log2(k)) for k >= 1; the number of decomposition functions needed to
/// distinguish k classes.
int code_length(int k);

}  // namespace mfd
