// BLIF reader/writer (combinational subset: .model/.inputs/.outputs/.names).
//
// The reader turns a combinational BLIF model into BDD outputs (the form the
// synthesizer consumes); the writer serializes a LutNetwork, so synthesized
// results can be handed to any downstream FPGA tool chain.
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "net/lutnet.h"

namespace mfd::io {

struct BlifModel {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  /// Output functions as BDDs over manager variables 0..inputs.size()-1 in
  /// declaration order.
  std::vector<bdd::Bdd> functions;
};

/// Parses a combinational BLIF model (single .model; .names covers with
/// {0,1,-} input plane and a constant output plane character).
/// Throws mfd::ParseError — carrying `filename` and the 1-based physical
/// line number where the offending logical line starts ('\\' continuations
/// report the first line) — on malformed or unsupported input.
BlifModel parse_blif(const std::string& text, bdd::Manager& m,
                     const std::string& filename = "<blif>");

/// Serializes a LUT network as BLIF. Signal names are synthesized as
/// pi<i> / n<i> unless names are provided.
std::string write_blif(const net::LutNetwork& net, const std::string& model_name,
                       const std::vector<std::string>& input_names = {},
                       const std::vector<std::string>& output_names = {});

}  // namespace mfd::io
