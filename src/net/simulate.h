// Verification of LUT networks against BDD/ISF specifications.
//
// Two independent paths:
//  * exact: rebuild every network output as a BDD and check that it is an
//    admissible extension of the specification ISF;
//  * simulation: drive `evaluate()` with exhaustive or random vectors.
// The exact path validates the decomposition algebra; the simulation path
// additionally validates the network evaluation machinery itself.
#pragma once

#include <string>
#include <vector>

#include "isf/isf.h"
#include "net/lutnet.h"

namespace mfd::net {

/// BDD of every primary output of `net`. `pi_vars[i]` is the manager
/// variable standing for primary input i.
std::vector<bdd::Bdd> output_bdds(const LutNetwork& net, bdd::Manager& m,
                                  const std::vector<int>& pi_vars);

/// Exact check: every network output is an admissible extension of the
/// corresponding specification ISF. On failure, `error` (if given) receives
/// a description including a counterexample.
bool check_exact(const LutNetwork& net, const std::vector<Isf>& spec,
                 const std::vector<int>& pi_vars, std::string* error = nullptr);

/// Simulation check of the same property; exhaustive if the network has at
/// most `exhaustive_limit` inputs, otherwise `samples` random vectors.
bool check_by_simulation(const LutNetwork& net, const std::vector<Isf>& spec,
                         const std::vector<int>& pi_vars, int exhaustive_limit = 12,
                         int samples = 2000, std::uint64_t seed = 7,
                         std::string* error = nullptr);

}  // namespace mfd::net
