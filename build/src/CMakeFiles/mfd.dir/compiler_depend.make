# Empty compiler generated dependencies file for mfd.
# This may be replaced when dependencies are built.
