#include "verify/repro.h"

#include <fstream>
#include <sstream>

#include "core/errors.h"
#include "io/pla.h"

namespace mfd::verify {
namespace {

constexpr int kFormatVersion = 1;

}  // namespace

std::string write_repro(const Repro& repro) {
  std::ostringstream os;
  os << "# mfd_fuzz reproducer (docs/FUZZING.md). Replay with:\n";
  os << "#   mfd_fuzz --repro <this-file>\n";
  os << ".mfdrepro " << kFormatVersion << "\n";
  os << ".seed " << repro.oracle_seed << "\n";
  if (!repro.note.empty()) {
    std::string note = repro.note;
    for (char& ch : note)
      if (ch == '\n' || ch == '\r') ch = ' ';
    os << ".note " << note << "\n";
  }
  bdd::Manager m;
  const std::vector<Isf> fns = to_isfs(repro.spec, m);
  os << io::write_pla(io::pla_from_isfs_exact(fns, repro.spec.num_inputs));
  return os.str();
}

Repro parse_repro(const std::string& text, const std::string& filename) {
  Repro repro;
  bool saw_version = false, saw_seed = false;
  std::string pla_text;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head == ".mfdrepro") {
      int version = 0;
      if (!(ls >> version) || version != kFormatVersion)
        throw ParseError(filename, line_no,
                         "repro: unsupported format version (expected .mfdrepro " +
                             std::to_string(kFormatVersion) + ")");
      saw_version = true;
    } else if (head == ".seed") {
      unsigned long long seed = 0;
      if (!(ls >> seed))
        throw ParseError(filename, line_no, "repro: malformed .seed");
      repro.oracle_seed = seed;
      saw_seed = true;
    } else if (head == ".note") {
      std::getline(ls, repro.note);
      while (!repro.note.empty() && repro.note.front() == ' ')
        repro.note.erase(repro.note.begin());
    } else {
      pla_text += line;
    }
    // Consumed directives still contribute an empty line so that ParseError
    // line numbers from the PLA body match the reproducer file.
    pla_text += '\n';
  }
  if (!saw_version)
    throw ParseError(filename, 0, "repro: missing .mfdrepro directive");
  if (!saw_seed) throw ParseError(filename, 0, "repro: missing .seed directive");

  const io::PlaFile pla = io::parse_pla(pla_text, filename);
  bdd::Manager m;
  const std::vector<Isf> fns = io::pla_to_isfs(pla, m);
  repro.spec = from_isfs(fns, pla.num_inputs);
  return repro;
}

OracleResult replay_repro(const Repro& repro, const OracleOptions& opts) {
  return run_oracle(repro.spec, repro.oracle_seed, opts);
}

OracleResult replay_repro_file(const std::string& path, const OracleOptions& opts) {
  std::ifstream in(path);
  if (!in) throw Error("repro: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return replay_repro(parse_repro(buffer.str(), path), opts);
}

}  // namespace mfd::verify
