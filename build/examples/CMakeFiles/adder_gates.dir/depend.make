# Empty dependencies file for adder_gates.
# This may be replaced when dependencies are built.
