#include "core/faultinject.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "core/budget.h"
#include "core/errors.h"
#include "obs/obs.h"

namespace mfd::fault {
namespace {

enum class Kind { kBudget, kAlloc, kTimeout };

struct Rule {
  std::string site;
  std::uint64_t at = 0;  // 1-based hit count
  Kind kind = Kind::kBudget;
  bool fired = false;
};

struct SiteCount {
  std::string site;
  std::uint64_t hits = 0;
};

// All mutable state behind one mutex; the hot path never takes it because
// point() is gated on the armed flag.
std::mutex g_mutex;
std::vector<Rule> g_rules;
std::vector<SiteCount> g_counts;

Kind parse_kind(const std::string& s, int rule_index) {
  if (s == "budget") return Kind::kBudget;
  if (s == "alloc") return Kind::kAlloc;
  if (s == "timeout") return Kind::kTimeout;
  throw ParseError("<fault-spec>", rule_index,
                   "unknown fault kind '" + s + "' (expected budget|alloc|timeout)");
}

std::vector<Rule> parse_spec(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  int index = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) {
      if (comma == spec.size()) break;
      continue;
    }
    ++index;
    const std::size_t at = part.find('@');
    if (at == std::string::npos || at == 0)
      throw ParseError("<fault-spec>", index,
                       "rule '" + part + "' is missing 'site@k' (e.g. bdd.mk@10)");
    Rule r;
    r.site = part.substr(0, at);
    std::string rest = part.substr(at + 1);
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      r.kind = parse_kind(rest.substr(colon + 1), index);
      rest.resize(colon);
    }
    if (rest.empty() || rest.find_first_not_of("0123456789") != std::string::npos)
      throw ParseError("<fault-spec>", index,
                       "rule '" + part + "' has a non-numeric hit count '" + rest + "'");
    r.at = std::strtoull(rest.c_str(), nullptr, 10);
    if (r.at == 0)
      throw ParseError("<fault-spec>", index,
                       "rule '" + part + "' has hit count 0 (counts are 1-based)");
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void init_from_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("MFD_FAULT_INJECT");
    if (env == nullptr || env[0] == '\0') return;
    // The env path must never throw: armed() is consulted from BDD hot
    // paths, and a malformed variable should not take the process down.
    try {
      configure(env);
    } catch (const ParseError& e) {
      std::fprintf(stderr, "MFD_FAULT_INJECT ignored: %s\n", e.what());
    }
  });
}

void point_slow(const char* site) {
  Kind fire = Kind::kBudget;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    SiteCount* count = nullptr;
    for (SiteCount& c : g_counts)
      if (c.site == site) {
        count = &c;
        break;
      }
    if (count == nullptr) {
      g_counts.push_back(SiteCount{site, 0});
      count = &g_counts.back();
    }
    ++count->hits;
    for (Rule& r : g_rules) {
      if (r.fired || r.site != site || r.at != count->hits) continue;
      r.fired = true;
      fire = r.kind;
      fired = true;
      break;
    }
  }
  if (!fired) return;
  obs::add("fault.fired");
  obs::add(std::string("fault.fired.") + site);
  switch (fire) {
    case Kind::kBudget:
      throw BudgetExceeded(BudgetExceeded::Resource::kInjected, site,
                           "fault injection (kind=budget)");
    case Kind::kAlloc:
      throw std::bad_alloc();
    case Kind::kTimeout:
      if (ResourceGovernor* g = ResourceGovernor::current()) {
        g->force_expire();
        return;  // the next deadline check fires; this site continues
      }
      throw BudgetExceeded(BudgetExceeded::Resource::kInjected, site,
                           "fault injection (kind=timeout, no governor installed)");
  }
}

}  // namespace detail

void configure(const std::string& spec) {
  std::vector<Rule> rules = parse_spec(spec);  // may throw; old spec stays armed
  std::lock_guard<std::mutex> lock(g_mutex);
  g_rules = std::move(rules);
  g_counts.clear();
  detail::g_armed.store(!g_rules.empty(), std::memory_order_relaxed);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_rules.clear();
  g_counts.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

}  // namespace mfd::fault
