// The flow-wide memoization layer (src/cache/, docs/CACHING.md): canonical
// signatures, the sharded LRU store, the multiplicity cache, and the
// determinism contract — cached and uncached runs must be bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/signature.h"
#include "circuits/circuits.h"
#include "core/synthesizer.h"
#include "decomp/boundset.h"
#include "obs/obs.h"
#include "testlib.h"
#include "util/rng.h"

namespace mfd {
namespace {

using bdd::Bdd;
using bdd::Edge;
using bdd::Manager;

/// Every test starts from a fresh default configuration and leaves the
/// process-wide caches empty (they are shared across the whole binary).
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override { cache::configure(cache::CacheConfig{}); }
  void TearDown() override { cache::configure(cache::CacheConfig{}); }
};

// ---------------------------------------------------------------------------
// Signatures
// ---------------------------------------------------------------------------

TEST_F(CacheTest, SignatureComplementPairsCollideOnlyUnderNormalization) {
  Manager m(4);
  Rng rng(7);
  cache::SignatureComputer sig(m);
  for (int round = 0; round < 20; ++round) {
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, 4), 4);
    if (f.is_true() || f.is_false()) continue;
    const Edge e = f.id();
    // Raw signatures distinguish f from !f ...
    EXPECT_NE(sig.of(e), sig.of(!e));
    // ... normalized ones collide, and report the flip consistently.
    bool flip_pos = false;
    bool flip_neg = false;
    EXPECT_EQ(sig.of_normalized(e, &flip_pos), sig.of_normalized(!e, &flip_neg));
    EXPECT_NE(flip_pos, flip_neg);
  }
}

TEST_F(CacheTest, SignatureIsInvariantUnderReordering) {
  Manager m(5);
  Rng rng(11);
  const Bdd f = test::bdd_from_table(m, test::random_table(rng, 5), 5);
  cache::SignatureComputer before(m);
  const cache::FunctionSignature sb = before.of(f.id());

  m.set_order({4, 2, 0, 3, 1});
  cache::SignatureComputer after(m);
  EXPECT_EQ(sb, after.of(f.id()));
}

TEST_F(CacheTest, SignatureIsManagerIndependent) {
  Rng rng_a(3);
  Manager ma(4);
  Manager mb(4);
  // Same function built in two managers (and some noise in mb first, so the
  // node indices genuinely differ).
  const test::Table t = test::random_table(rng_a, 4);
  Rng rng_noise(99);
  (void)test::bdd_from_table(mb, test::random_table(rng_noise, 4), 4);
  const Bdd fa = test::bdd_from_table(ma, t, 4);
  const Bdd fb = test::bdd_from_table(mb, t, 4);

  cache::SignatureComputer sa(ma);
  cache::SignatureComputer sb(mb);
  EXPECT_EQ(sa.of(fa.id()), sb.of(fb.id()));
}

TEST_F(CacheTest, DistinctFunctionsGetDistinctSignatures) {
  Manager m(5);
  Rng rng(13);
  cache::SignatureComputer sig(m);
  std::vector<cache::FunctionSignature> seen;
  for (int round = 0; round < 50; ++round) {
    const Bdd f = test::bdd_from_table(m, test::random_table(rng, 5), 5);
    seen.push_back(sig.of(f.id()));
  }
  // Some tables repeat by chance; dedupe by table first.
  // (Simply: pairwise distinct signatures whenever the edges are distinct.)
  std::vector<Edge> edges;
  Rng rng2(13);
  for (int round = 0; round < 50; ++round)
    edges.push_back(test::bdd_from_table(m, test::random_table(rng2, 5), 5).id());
  for (std::size_t i = 0; i < edges.size(); ++i)
    for (std::size_t j = i + 1; j < edges.size(); ++j)
      if (edges[i] != edges[j]) {
        EXPECT_NE(seen[i], seen[j]) << i << "," << j;
      }
}

// ---------------------------------------------------------------------------
// Multiplicity keys
// ---------------------------------------------------------------------------

TEST_F(CacheTest, MultiplicityKeysNormalizeCompleteFunctionPolarity) {
  Manager m(4);
  Rng rng(17);
  cache::SignatureComputer sig(m);
  const Bdd f0 = test::bdd_from_table(m, test::random_table(rng, 4), 4);
  const Bdd f1 = test::bdd_from_table(m, test::random_table(rng, 4), 4);
  const Edge t = bdd::kTrue;
  const std::vector<int> bound = {0, 1, 2};

  // Complementing a completely specified function complements its cofactors
  // element-wise — class counts and sharing counts are unchanged, so f and
  // !f (per function, independently) share the key.
  const std::vector<std::pair<Edge, Edge>> pos = {{f0.id(), t}, {f1.id(), t}};
  const std::vector<std::pair<Edge, Edge>> neg = {{!f0.id(), t}, {!f1.id(), t}};
  const std::vector<std::pair<Edge, Edge>> mixed = {{!f0.id(), t}, {f1.id(), t}};
  EXPECT_EQ(cache::multiplicity_key(sig, pos, bound, 1),
            cache::multiplicity_key(sig, neg, bound, 1));
  EXPECT_EQ(cache::multiplicity_key(sig, pos, bound, 1),
            cache::multiplicity_key(sig, mixed, bound, 1));

  // Distinct functions and distinct bound sets keep distinct keys.
  if (f0 != f1 && f0 != !f1) {
    const std::vector<std::pair<Edge, Edge>> swapped = {{f1.id(), t}, {f0.id(), t}};
    EXPECT_NE(cache::multiplicity_key(sig, pos, bound, 1),
              cache::multiplicity_key(sig, swapped, bound, 1));
  }
  EXPECT_NE(cache::multiplicity_key(sig, pos, bound, 1),
            cache::multiplicity_key(sig, pos, {0, 1, 3}, 1));
  EXPECT_NE(cache::multiplicity_key(sig, pos, bound, 1),
            cache::multiplicity_key(sig, pos, {2, 1, 0}, 1));
}

TEST_F(CacheTest, IsfKeysKeepSeedAndPolarity) {
  Manager m(4);
  Rng rng(23);
  cache::SignatureComputer sig(m);
  const Bdd on = test::bdd_from_table(m, test::random_table(rng, 4), 4);
  const Bdd care = on | test::bdd_from_table(m, test::random_table(rng, 4), 4);
  const std::vector<int> bound = {0, 1};
  const std::vector<std::pair<Edge, Edge>> isf = {{(on & care).id(), care.id()}};

  // ISF coloring uses the seed: it is part of the key.
  EXPECT_NE(cache::multiplicity_key(sig, isf, bound, 1),
            cache::multiplicity_key(sig, isf, bound, 2));
  // And ISF keys are not edge-complement normalized (the complement of an
  // ISF is off = care & !on, not an edge flip).
  const std::vector<std::pair<Edge, Edge>> flipped = {{(!(on & care)).id(), care.id()}};
  EXPECT_NE(cache::multiplicity_key(sig, isf, bound, 1),
            cache::multiplicity_key(sig, flipped, bound, 1));
}

// ---------------------------------------------------------------------------
// The LRU store
// ---------------------------------------------------------------------------

TEST_F(CacheTest, LruEvictsOldestFirstAndKeepsRecentlyUsed) {
  cache::LruCache c("cache.test", /*shards=*/1);
  auto val = [](int x) {
    return std::shared_ptr<const void>(std::make_shared<int>(x));
  };
  auto key = [](std::uint64_t x) { return std::vector<std::uint64_t>{x}; };

  // Capacity for roughly 3 entries (keys are charged too).
  c.set_capacity(3 * (96 + 8 + 64));
  c.insert(key(1), val(1), 64);
  c.insert(key(2), val(2), 64);
  c.insert(key(3), val(3), 64);
  EXPECT_EQ(c.entries(), 3u);

  // Touch 1 so 2 becomes the LRU entry, then overflow.
  EXPECT_NE(c.lookup(key(1)), nullptr);
  c.insert(key(4), val(4), 64);
  EXPECT_EQ(c.lookup(key(2)), nullptr);  // evicted
  EXPECT_NE(c.lookup(key(1)), nullptr);  // survived (recently used)
  EXPECT_NE(c.lookup(key(4)), nullptr);

  // A value larger than the whole budget is never stored.
  c.insert(key(5), val(5), 1 << 20);
  EXPECT_EQ(c.lookup(key(5)), nullptr);
}

TEST_F(CacheTest, TinyCapacityFlowStillBitIdentical) {
  // A 0-MiB cache budget stores nothing but must not change results.
  cache::CacheConfig tiny;
  tiny.max_bytes = 0;
  cache::configure(tiny);
  Manager m1(8);
  const SynthesisResult a = Synthesizer().run(circuits::build("rd73", m1));

  cache::configure(cache::CacheConfig::disabled());
  Manager m2(8);
  const SynthesisResult b = Synthesizer().run(circuits::build("rd73", m2));
  EXPECT_EQ(a.network.to_string(), b.network.to_string());
}

// ---------------------------------------------------------------------------
// Multiplicity cache: hits equal recomputation
// ---------------------------------------------------------------------------

TEST_F(CacheTest, CachedBoundSetScoresEqualUncachedOnes) {
  Manager m(6);
  const circuits::Benchmark bench = circuits::build("rd53", m);
  std::vector<Isf> fns;
  for (const Bdd& f : bench.outputs) fns.push_back(Isf::completely_specified(f));
  std::vector<std::vector<int>> supports;
  for (const Isf& f : fns) supports.push_back(f.support());
  const std::vector<int> bound = {0, 1, 2};

  const BoundSetChoice plain = evaluate_bound_set(fns, supports, bound, 1, nullptr);

  obs::reset();
  cache::SignatureComputer sig(m);
  const BoundSetChoice first = evaluate_bound_set(fns, supports, bound, 1, &sig);
  const BoundSetChoice again = evaluate_bound_set(fns, supports, bound, 1, &sig);
  const obs::Report report = obs::collect();

  for (const BoundSetChoice* c : {&first, &again}) {
    EXPECT_EQ(plain.benefit, c->benefit);
    EXPECT_EQ(plain.sharing_gap, c->sharing_gap);
    EXPECT_EQ(plain.sum_r, c->sum_r);
    EXPECT_EQ(plain.r_per_output, c->r_per_output);
  }
  // The repeat evaluation is one whole-candidate hit.
  ASSERT_NE(report.counters.count("cache.multiplicity.hits"), 0u);
  EXPECT_GE(report.counters.at("cache.multiplicity.hits"), 1u);
}

TEST_F(CacheTest, MemoSafeRefusesBudgetedDegradedOrFaultyRuns) {
  EXPECT_TRUE(cache::memo_safe(nullptr));
  {
    ResourceGovernor unlimited;
    EXPECT_TRUE(cache::memo_safe(&unlimited));
  }
  {
    ResourceBudget budget;
    budget.node_ceiling = 1000;
    ResourceGovernor gov(budget);
    EXPECT_FALSE(cache::memo_safe(&gov));
  }
  {
    ResourceGovernor gov;
    gov.raise_degrade(kDegradeFull + 1, "test", "test");
    EXPECT_FALSE(cache::memo_safe(&gov));
  }
}

// ---------------------------------------------------------------------------
// Differential: cached vs --no-cache bit-identity, and flow-cache hits
// ---------------------------------------------------------------------------

struct FlowOutcome {
  std::string network;
  int clb_greedy = 0;
  int clb_matching = 0;
  bool verified = false;
  std::uint64_t flow_hits = 0;
};

FlowOutcome run_once(const std::string& circuit, int jobs,
                     std::uint64_t seed = 1) {
  SynthesisOptions opts;
  opts.decomp.boundset.jobs = jobs;
  opts.decomp.seed = seed;
  Manager m;
  const circuits::Benchmark bench = circuits::build(circuit, m);
  const SynthesisResult r = Synthesizer(opts).run(bench);
  FlowOutcome out;
  out.network = r.network.to_string();
  out.clb_greedy = r.clb_greedy.num_clbs;
  out.clb_matching = r.clb_matching.num_clbs;
  out.verified = r.verified;
  const auto it = r.report.counters.find("cache.flow.hits");
  out.flow_hits = it == r.report.counters.end() ? 0 : it->second;
  return out;
}

TEST_F(CacheTest, CachedRunsAreBitIdenticalToUncachedAtAnyJobs) {
  for (const char* circuit : {"rd53", "rd73", "z4ml"}) {
    for (const int jobs : {1, 4}) {
      cache::configure(cache::CacheConfig::disabled());
      const FlowOutcome baseline = run_once(circuit, jobs);
      ASSERT_TRUE(baseline.verified) << circuit;

      cache::configure(cache::CacheConfig{});
      const FlowOutcome cold = run_once(circuit, jobs);
      const FlowOutcome warm = run_once(circuit, jobs);  // flow-cache hit

      EXPECT_EQ(baseline.network, cold.network) << circuit << " jobs=" << jobs;
      EXPECT_EQ(baseline.network, warm.network) << circuit << " jobs=" << jobs;
      EXPECT_EQ(baseline.clb_greedy, cold.clb_greedy);
      EXPECT_EQ(baseline.clb_matching, cold.clb_matching);
      EXPECT_EQ(baseline.clb_greedy, warm.clb_greedy);
      EXPECT_EQ(baseline.clb_matching, warm.clb_matching);
      EXPECT_TRUE(cold.verified);
      EXPECT_TRUE(warm.verified);
      EXPECT_EQ(cold.flow_hits, 0u);
      EXPECT_GE(warm.flow_hits, 1u) << circuit << " jobs=" << jobs;
    }
  }
}

TEST_F(CacheTest, FlowCacheSharesEntriesAcrossJobsCounts) {
  // --jobs is excluded from the options fingerprint (the flow is invariant
  // under it), so a jobs=4 run hits the entry a jobs=1 run stored.
  (void)run_once("rd53", 1);
  const FlowOutcome warm = run_once("rd53", 4);
  EXPECT_GE(warm.flow_hits, 1u);
}

TEST_F(CacheTest, OptionsFingerprintSeparatesFlowEntries) {
  (void)run_once("rd53", 1, /*seed=*/1);
  const FlowOutcome other_seed = run_once("rd53", 1, /*seed=*/2);
  EXPECT_EQ(other_seed.flow_hits, 0u);  // different seed, different key
}

// ---------------------------------------------------------------------------
// Degenerate specs: constants, zero-variable managers, all-DC ISFs, and
// duplicate outputs — the shapes the fuzz generator (src/verify/) skews
// toward. Each must key distinctly; a collision here would silently hand one
// spec another spec's cached decomposition.
// ---------------------------------------------------------------------------

TEST_F(CacheTest, SignatureSeparatesConstantsOnZeroVarManager) {
  Manager m(0);  // no variables: only the two constant functions exist
  cache::SignatureComputer sig(m);
  const cache::FunctionSignature one = sig.of(m.constant(true).id());
  const cache::FunctionSignature zero = sig.of(m.constant(false).id());
  EXPECT_EQ(one, (cache::FunctionSignature{1, 1}));
  EXPECT_EQ(zero, (cache::FunctionSignature{0, 0}));
  EXPECT_NE(one, zero);
  // Normalization folds the pair onto one representative; the flip bit is
  // what still tells them apart.
  bool flip_one = false;
  bool flip_zero = false;
  EXPECT_EQ(sig.of_normalized(m.constant(true).id(), &flip_one),
            sig.of_normalized(m.constant(false).id(), &flip_zero));
  EXPECT_NE(flip_one, flip_zero);
}

TEST_F(CacheTest, MultiplicityKeySeparatesDegenerateCarePlanes) {
  Manager m(3);
  cache::SignatureComputer sig(m);
  const Edge t = m.constant(true).id();
  const Edge f = m.constant(false).id();
  const Edge x0 = m.var(0).id();
  const std::vector<int> bound = {0, 1};

  // Complete constants are complement-normalized by design — const-0 and
  // const-1 *share* an entry (class counts are complement-invariant) — but
  // the all-DC ISF (care == 0) is a different problem and must key apart
  // from both even though every plane involved is a constant.
  const auto k_one = cache::multiplicity_key(sig, {{t, t}}, bound, 5);
  const auto k_zero = cache::multiplicity_key(sig, {{f, t}}, bound, 5);
  const auto k_alldc = cache::multiplicity_key(sig, {{f, f}}, bound, 5);
  EXPECT_EQ(k_one, k_zero);  // intentional complement sharing
  EXPECT_NE(k_one, k_alldc);
  EXPECT_NE(k_zero, k_alldc);

  // A completely specified x0 and the ISF whose care set happens to be x0
  // describe different problems; the complete/ISF marker must separate them
  // even when the raw edges involved coincide.
  const auto k_complete = cache::multiplicity_key(sig, {{x0, t}}, bound, 5);
  const auto k_isf = cache::multiplicity_key(sig, {{x0, x0}}, bound, 5);
  EXPECT_NE(k_complete, k_isf);
}

TEST_F(CacheTest, MultiplicityKeyDuplicateOutputsAndArityAreDistinct) {
  Manager m(3);
  cache::SignatureComputer sig(m);
  const Edge t = m.constant(true).id();
  const Edge x0 = m.var(0).id();
  const std::vector<int> bound = {0, 1};

  // One output vs the same output listed twice (duplicate-output specs are a
  // generator staple): the key must encode the multiplicity, not a set.
  const auto k_single = cache::multiplicity_key(sig, {{x0, t}}, bound, 5);
  const auto k_double = cache::multiplicity_key(sig, {{x0, t}, {x0, t}}, bound, 5);
  EXPECT_NE(k_single, k_double);

  // Same functions, different bound set or seed -> different entries.
  const auto k_bound = cache::multiplicity_key(sig, {{x0, t}}, {0, 2}, 5);
  EXPECT_NE(k_single, k_bound);
  const auto k_seed = cache::multiplicity_key(sig, {{t, t}}, bound, 6);
  const auto k_seed5 = cache::multiplicity_key(sig, {{t, t}}, bound, 5);
  EXPECT_NE(k_seed, k_seed5);
}

TEST_F(CacheTest, SignatureOfDuplicateFunctionsAgreesAcrossManagers) {
  // Duplicate outputs in a spec hash to the same signature even when built
  // in different managers — that sharing is what the flow cache relies on.
  Manager ma(4);
  Manager mb(4);
  Rng rng(23);
  const test::Table table = test::random_table(rng, 4);
  const Bdd fa = test::bdd_from_table(ma, table, 4);
  const Bdd fb = test::bdd_from_table(mb, table, 4);
  cache::SignatureComputer sa(ma);
  cache::SignatureComputer sb(mb);
  EXPECT_EQ(sa.of(fa.id()), sb.of(fb.id()));
  EXPECT_EQ(sa.of(fa.id()), sa.of(fa.id()));  // memoized path agrees
}

}  // namespace
}  // namespace mfd
