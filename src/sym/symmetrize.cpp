#include "sym/symmetrize.h"

#include <algorithm>
#include <tuple>

#include "core/budget.h"
#include "core/faultinject.h"
#include "obs/obs.h"

namespace mfd {
namespace {

struct Candidate {
  int a = -1, b = -1;
  SymmetryKind kind = SymmetryKind::kNonequivalence;
  std::vector<int> applicable;  // outputs that can newly gain the symmetry
  int already = 0;              // outputs that have it already
  int blocked = 0;              // outputs where it is unachievable
};

/// Lexicographic value of a candidate:
/// (no output blocked) > (NE over E) > more outputs gaining or having it.
bool better(const Candidate& x, const Candidate& y) {
  const auto key = [](const Candidate& c) {
    return std::tuple(c.blocked == 0,
                      c.kind == SymmetryKind::kNonequivalence,
                      static_cast<int>(c.applicable.size()) + c.already,
                      -(c.a * 1000 + c.b));  // deterministic tie break
  };
  return key(x) > key(y);
}

}  // namespace

SymmetrizeStats symmetrize(std::vector<Isf>& fns, const std::vector<int>& vars,
                           const SymmetrizeOptions& opts) {
  SymmetrizeStats stats;
  if (fault::armed()) fault::point("sym.symmetrize");
  const int limit = opts.max_applications > 0
                        ? opts.max_applications
                        : 3 * static_cast<int>(vars.size()) + 8;

  std::vector<SymmetryKind> kinds;
  if (opts.enable_nonequivalence) kinds.push_back(SymmetryKind::kNonequivalence);
  if (opts.enable_equivalence) kinds.push_back(SymmetryKind::kEquivalence);

  // Each round performs one full pair scan, then applies a whole batch of
  // candidates with disjoint variable pairs (best first). Applying one pair
  // can invalidate another pair's achievability, so each application
  // re-checks symmetrizability on the current state; the full rescan at the
  // start of the next round picks up the remaining interactions. Batching
  // keeps the number of expensive scans proportional to the number of
  // "waves" instead of the number of applied pairs.
  // Symmetrization is a pure optimization (step 1 of the DC assignment), so
  // under an installed governor each round yields to an expired deadline:
  // the pairs applied so far stand, the remaining waves are abandoned.
  ResourceGovernor* gov = ResourceGovernor::current();
  int applied_total = 0;
  while (applied_total < limit) {
    if (gov != nullptr && gov->deadline_expired()) {
      obs::add("sym.symmetrize.rounds_abandoned");
      break;
    }
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      for (std::size_t j = i + 1; j < vars.size(); ++j) {
        for (const SymmetryKind kind : kinds) {
          Candidate c;
          c.a = vars[i];
          c.b = vars[j];
          c.kind = kind;
          for (int out = 0; out < static_cast<int>(fns.size()); ++out) {
            if (isf_is_symmetric(fns[out], c.a, c.b, kind)) {
              ++c.already;
            } else if (symmetrizable(fns[out], c.a, c.b, kind)) {
              c.applicable.push_back(out);
            } else {
              ++c.blocked;
            }
          }
          if (!c.applicable.empty()) candidates.push_back(std::move(c));
        }
      }
    }
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end(), better);

    ++stats.rounds;
    bool applied_any = false;
    std::vector<bool> used(static_cast<std::size_t>(
                               1 + *std::max_element(vars.begin(), vars.end())),
                           false);
    for (const Candidate& c : candidates) {
      if (applied_total >= limit) break;
      if (used[static_cast<std::size_t>(c.a)] || used[static_cast<std::size_t>(c.b)])
        continue;
      bool applied_here = false;
      for (int out : c.applicable) {
        // Earlier batch members may have changed the function: re-verify.
        if (isf_is_symmetric(fns[out], c.a, c.b, c.kind)) continue;
        if (!symmetrizable(fns[out], c.a, c.b, c.kind)) continue;
        fns[out] = make_symmetric(fns[out], c.a, c.b, c.kind);
        applied_here = true;
        if (c.kind == SymmetryKind::kNonequivalence)
          ++stats.ne_applied;
        else
          ++stats.e_applied;
      }
      if (applied_here) {
        used[static_cast<std::size_t>(c.a)] = used[static_cast<std::size_t>(c.b)] = true;
        applied_any = true;
        ++applied_total;
      }
    }
    if (!applied_any) break;
  }
  // Step-1 observability: how many pair symmetries the don't cares bought.
  obs::add("sym.symmetrize.calls");
  obs::add("sym.symmetrize.pairs_ne", static_cast<std::uint64_t>(stats.ne_applied));
  obs::add("sym.symmetrize.pairs_e", static_cast<std::uint64_t>(stats.e_applied));
  obs::add("sym.symmetrize.rounds", static_cast<std::uint64_t>(stats.rounds));
  return stats;
}

}  // namespace mfd
