// Step 1 of the paper's don't-care assignment: make as many variable pairs
// symmetric as the don't cares allow ([20], heuristic).
//
// Assigning a pair can destroy the achievability of another pair, so the
// order matters; we use a greedy loop that always applies the currently
// most valuable pair and then re-evaluates. "Valuable" prefers pairs that
// can be made symmetric in *every* output (those enlarge the common symmetry
// groups that the bound-set search keeps together) and nonequivalence over
// equivalence symmetry (only NE symmetry feeds the grouping).
#pragma once

#include <vector>

#include "isf/isf.h"
#include "sym/symmetry.h"

namespace mfd {

struct SymmetrizeOptions {
  bool enable_nonequivalence = true;
  bool enable_equivalence = true;
  /// Upper bound on greedy applications (safety valve; the loop otherwise
  /// stops when no pair is applicable).
  int max_applications = 0;  // 0 = 3 * |vars| + 8
};

struct SymmetrizeStats {
  int ne_applied = 0;
  int e_applied = 0;
  int rounds = 0;
};

/// Assigns don't cares of the outputs in `fns` (in place) to create pair
/// symmetries over `vars`. Every assignment only *adds* care points, so the
/// result of each output still admits every extension it admitted that is
/// symmetric in the applied pairs; in particular care-set containment
/// f_before.care() <= f_after.care() holds.
SymmetrizeStats symmetrize(std::vector<Isf>& fns, const std::vector<int>& vars,
                           const SymmetrizeOptions& opts = {});

}  // namespace mfd
