#include "core/passes.h"

#include <memory>
#include <utility>

#include "core/budget.h"
#include "core/errors.h"
#include "core/synthesizer.h"
#include "decomp/decompose.h"
#include "map/clb.h"
#include "net/lutnet.h"
#include "net/odc_resubst.h"
#include "obs/obs.h"

namespace mfd {

bool DecomposePass::run(net::LutNetwork& net, net::PassContext& ctx) {
  const SynthesisOptions& opts = *ctx.options;
  ResourceGovernor& gov = *ctx.governor;
  DecomposeStats stats;
  net = decompose(*ctx.spec, *ctx.pi_vars, opts.decomp, &stats);

  // The portfolio's second entry is pure optimization: skip it when the
  // budget already forced degradation or the deadline has passed — it would
  // only walk the ladder again and discard the work.
  if (opts.decomp.max_bound_extra > 0 && opts.portfolio_bound_extra &&
      !gov.report().degraded() && !gov.deadline_expired()) {
    DecomposeOptions conservative = opts.decomp;
    conservative.max_bound_extra = 0;
    DecomposeStats alt_stats;
    net::LutNetwork alt = decompose(*ctx.spec, *ctx.pi_vars, conservative, &alt_stats);
    obs::add("synth.portfolio_runs");
    if (alt.count_luts() < net.count_luts()) {
      net = std::move(alt);
      stats = alt_stats;
      obs::add("synth.portfolio_conservative_won");
    }
  } else if (opts.decomp.max_bound_extra > 0 && opts.portfolio_bound_extra) {
    obs::add("synth.portfolio_skipped_budget");
  }

  if (ctx.stats != nullptr) *ctx.stats = std::move(stats);
  return true;
}

bool PackPass::run(net::LutNetwork& net, net::PassContext& ctx) {
  obs::ScopedPhase pack_phase("pack");
  if (ctx.clb_greedy != nullptr)
    *ctx.clb_greedy = map::pack_greedy(net, ctx.options->clb);
  if (ctx.clb_matching != nullptr)
    *ctx.clb_matching = map::pack_matching(net, ctx.options->clb);
  return false;  // analysis only, the network is untouched
}

std::string default_pipeline_spec() { return "decompose,simplify,odc_resubst,pack"; }

net::PassPipeline build_pipeline(const std::string& spec,
                                 const SynthesisOptions& opts) {
  const std::string& s = spec.empty() ? default_pipeline_spec() : spec;
  net::PassPipeline pipeline;
  for (const std::string& name : net::parse_pipeline_spec(s)) {
    if (name == "decompose") {
      pipeline.add(std::make_unique<DecomposePass>());
    } else if (name == "simplify") {
      pipeline.add(std::make_unique<net::SimplifyPass>(opts.decomp.lut_inputs));
    } else if (name == "odc_resubst") {
      net::OdcOptions odc = opts.odc;
      odc.lut_inputs = opts.decomp.lut_inputs;
      pipeline.add(std::make_unique<net::OdcResubstPass>(odc));
    } else if (name == "pack") {
      pipeline.add(std::make_unique<PackPass>());
    } else {
      throw Error("unknown pass '" + name + "' in pipeline spec '" + s +
                  "' (known: decompose, simplify, odc_resubst, pack)");
    }
  }
  return pipeline;
}

}  // namespace mfd
