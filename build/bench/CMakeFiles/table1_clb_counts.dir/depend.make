# Empty dependencies file for table1_clb_counts.
# This may be replaced when dependencies are built.
