// Resource-governed synthesis: budgets and the graceful-degradation ladder.
//
// The flow's expensive steps (BDD construction, clique-cover coloring,
// symmetrization, the decomposition recursion itself) are exponential in the
// worst case. Following standard industrial practice (cf. Mishchenko &
// Brayton's budgeted SAT-based don't-care computation), every such step runs
// under an explicit `ResourceGovernor`: a wall-clock deadline, a BDD
// node-population ceiling, an operation count, and a recursion-depth bound.
// Tripping a budget raises a typed `BudgetExceeded`; the decomposition
// driver catches it and walks the *degradation ladder*
//
//   0 full flow  ->  1 greedy-only coloring  ->  2 skip DC steps 1/3
//     ->  3 structural (Shannon / BDD-mux) fallback,
//
// recording each downgrade, so the flow always returns a *verified* network
// plus a `DegradationReport` instead of crashing (see docs/ROBUSTNESS.md).
//
// Design notes
// ------------
// * The governor is installed per-flow via the thread-local `Scope`;
//   subsystems without an explicit context parameter (coloring, symmetrize)
//   consult `ResourceGovernor::current()`. `bdd::Manager` additionally keeps
//   a direct pointer (set by the flow) so the `mk` hot path pays one branch,
//   not a TLS load, when no governor is active.
// * Budgets are *soft*: they bound optimization effort, never correctness.
//   The ladder's floor (level 3) and exact verification run under a
//   `SuspendScope` — once every cheaper rung has been tried, the final
//   emission must complete, and that is recorded in the report.
// * Deadline checks in the `mk` hot path are strided (one clock read per
//   ~2048 operations) so governed runs stay within noise of ungoverned ones.
// * One governor may be shared by several threads (the bound-set worker
//   pool installs the flow's governor in each worker's TLS `Scope` and binds
//   it to each per-worker bdd::Manager): the op counter, the deadline, and
//   the suspension count are atomics, so concurrent `charge_mk` calls all
//   draw from the same budget and any worker can trip it. Which worker trips
//   first depends on scheduling — budgets bound *effort*, never results, so
//   this is deliberate (see docs/PARALLELISM.md). The degradation ladder
//   (`raise_degrade`, `report()`) is only ever driven from the flow thread,
//   after the pool has drained; workers read `degrade_level()` through a
//   relaxed atomic.
// * This header depends only on core/errors.h and the standard library, so
//   the low-level modules (bdd, util, sym) can include it without cycles.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "core/errors.h"

namespace mfd {

/// Per-flow resource budget. Zero means "unlimited" for every field.
struct ResourceBudget {
  /// Whole-flow wall-clock deadline in milliseconds.
  double time_ms = 0.0;
  /// Ceiling on the BDD manager's node population (live + dead).
  std::size_t node_ceiling = 0;
  /// Ceiling on counted BDD operations (mk calls).
  std::uint64_t op_ceiling = 0;
  /// Ceiling on the decomposition recursion depth.
  int max_depth = 0;
  /// Ceiling on bytes this flow may publish into the memoization layer
  /// (src/cache, docs/CACHING.md). Deliberately *not* part of unlimited():
  /// the effort budgets above make results timing-dependent (which disables
  /// memoization, see cache::memo_safe), while bounding the cache merely
  /// forces recomputation — it can never change a result.
  std::size_t cache_bytes = 0;

  bool unlimited() const {
    return time_ms <= 0.0 && node_ceiling == 0 && op_ceiling == 0 && max_depth == 0;
  }
};

/// The degradation ladder's rungs (monotone per flow).
enum DegradeLevel : int {
  kDegradeFull = 0,           ///< full flow (exact coloring, all DC steps)
  kDegradeGreedyColoring = 1, ///< DSATUR only, no exact branch-and-bound
  kDegradeNoDcSteps = 2,      ///< additionally skip DC steps 1 (symmetrize) and 3
  kDegradeStructural = 3,     ///< Shannon / BDD-mux fallback only (ladder floor)
};

const char* degrade_level_name(int level);

// ---------------------------------------------------------------------------
// Global wind-down request (SIGTERM handling in supervised children)
// ---------------------------------------------------------------------------
// A signal handler cannot reach "the" current governor (thread-local, and
// the signal may land on any thread), so the supervisor's SIGTERM handler
// sets one process-wide flag instead. Every governor's deadline checks
// consult it: the next check throws BudgetExceeded(kTime), the flow walks
// the degradation ladder to its (enforcement-suspended) floor, and the run
// finishes — verified, degraded — before the supervisor's SIGKILL
// escalation fires. `request_global_expire` is one relaxed atomic store and
// is async-signal-safe; governors created after the request see it too.

/// Async-signal-safe: makes every governor's deadline checks fire from now
/// on (the SIGTERM wind-down path, see src/super/proc.cpp).
void request_global_expire() noexcept;
/// Clears the flag (tests; a fresh supervisor child inherits a clear flag).
void clear_global_expire() noexcept;
bool global_expire_requested() noexcept;

/// One downgrade, as recorded by ResourceGovernor::raise_degrade.
struct DegradeEvent {
  int from_level = 0;
  int to_level = 0;
  std::string phase;   ///< where the ladder moved (e.g. "decomp.synth@d=2")
  std::string reason;  ///< the triggering error's message
};

/// What the flow reports next to its (always verified) network: which rung
/// it finished on, which downgrades happened, and the rung each primary
/// output was synthesized at.
struct DegradationReport {
  int final_level = kDegradeFull;
  /// Ladder level active when each primary output's subtree completed.
  std::vector<int> per_output_level;
  std::vector<DegradeEvent> events;
  /// Sections that ran with enforcement suspended (ladder floor, verify).
  std::uint64_t suspended_sections = 0;

  bool degraded() const { return final_level > kDegradeFull; }
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(const ResourceBudget& budget = {});
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  // ---- hot path ---------------------------------------------------------
  /// One counted BDD operation (called from bdd::Manager::mk with the
  /// current node population). Throws BudgetExceeded on any tripped budget;
  /// a no-op while suspended. Safe to call concurrently from pool workers:
  /// all threads draw from the one shared op counter, and the deadline is
  /// probed once every kDeadlineStride *global* operations.
  void charge_mk(std::size_t node_population) {
    if (suspend_.load(std::memory_order_relaxed) != 0) return;
    const std::uint64_t ops = ops_used_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (op_ceiling_ != 0 && ops > op_ceiling_) overrun_ops();
    if (node_ceiling_ != 0 && node_population > node_ceiling_)
      overrun_nodes(node_population);
    if ((ops & (kDeadlineStride - 1)) == 0) check_deadline("bdd");
  }

  // ---- explicit checkpoints --------------------------------------------
  /// Throws BudgetExceeded(kTime) when the deadline has passed (no-op while
  /// suspended). Call at phase boundaries.
  void check_deadline(const char* where);
  /// Throws BudgetExceeded(kDepth) when `depth` exceeds the recursion
  /// budget (no-op while suspended).
  void check_depth(int depth, const char* where);
  /// Non-throwing deadline query for cooperative early-exit loops
  /// (coloring restarts, symmetrize rounds). False while suspended.
  bool deadline_expired() const noexcept;

  /// Fault injection: moves the deadline into the past, so every subsequent
  /// deadline check fires (the "induced timeout" fault).
  void force_expire() noexcept;

  // ---- degradation ladder ----------------------------------------------
  int degrade_level() const { return degrade_level_.load(std::memory_order_relaxed); }
  /// Monotonically raises the ladder level, recording the event (and obs
  /// counters). Lower-or-equal levels are ignored.
  void raise_degrade(int to_level, const std::string& phase, const std::string& reason);

  // ---- enforcement suspension ------------------------------------------
  /// While at least one SuspendScope is alive, every check is a no-op: used
  /// by the ladder floor and exact verification, which must complete.
  class SuspendScope {
   public:
    explicit SuspendScope(ResourceGovernor& g) : g_(g) {
      g_.suspend_.fetch_add(1, std::memory_order_relaxed);
      g_.suspended_sections_.fetch_add(1, std::memory_order_relaxed);
    }
    ~SuspendScope() { g_.suspend_.fetch_sub(1, std::memory_order_relaxed); }
    SuspendScope(const SuspendScope&) = delete;
    SuspendScope& operator=(const SuspendScope&) = delete;

   private:
    ResourceGovernor& g_;
  };
  bool suspended() const { return suspend_.load(std::memory_order_relaxed) != 0; }

  // ---- cache accounting -------------------------------------------------
  /// Charges `bytes` against the budget's cache_bytes ceiling (src/cache
  /// calls this for every insert performed while this governor is current).
  /// Returns false once the ceiling would be exceeded — the caller then
  /// skips the insert, so a spent allowance degrades to recomputation, never
  /// to a throw or a ladder step. Eviction does not refund: the ceiling
  /// bounds the total bytes one flow may publish. Thread safe (workers
  /// insert concurrently).
  bool try_charge_cache(std::size_t bytes) noexcept {
    const std::uint64_t used =
        cache_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    return budget_.cache_bytes == 0 || used <= budget_.cache_bytes;
  }
  /// Total cache bytes charged to this governor (surfaced as the
  /// cache.governor_bytes gauge by the Synthesizer).
  std::uint64_t cache_bytes_charged() const {
    return cache_bytes_.load(std::memory_order_relaxed);
  }

  // ---- queries ----------------------------------------------------------
  // Ladder/report accessors are flow-thread-only by contract: they are
  // called before the pool starts or after it has drained.
  const ResourceBudget& budget() const { return budget_; }
  std::uint64_t ops_used() const { return ops_used_.load(std::memory_order_relaxed); }
  double elapsed_ms() const;
  /// Snapshot of the ladder state (per_output_level is filled by the flow).
  const DegradationReport& report() const {
    report_.suspended_sections = suspended_sections_.load(std::memory_order_relaxed);
    return report_;
  }
  void set_per_output_levels(std::vector<int> levels) {
    report_.per_output_level = std::move(levels);
  }

  // ---- thread-local installation ---------------------------------------
  /// Installs the governor as `current()` for this thread; restores the
  /// previous one on destruction (scopes nest).
  class Scope {
   public:
    explicit Scope(ResourceGovernor& g);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ResourceGovernor* prev_;
  };
  /// The innermost installed governor of this thread, or nullptr.
  static ResourceGovernor* current() noexcept;

 private:
  [[noreturn]] void overrun_ops();
  [[noreturn]] void overrun_nodes(std::size_t population);
  /// Steady-clock now as ns-since-epoch (the representation deadline_ns_ uses).
  static std::int64_t now_ns() noexcept;

  // Must stay a power of two: the hot path masks the global op count with it.
  static constexpr std::uint64_t kDeadlineStride = 2048;
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  ResourceBudget budget_;
  std::chrono::steady_clock::time_point start_;
  /// Deadline as steady-clock ns-since-epoch; kNoDeadline when unlimited.
  /// Atomic so force_expire (fault injection) can move it under running
  /// workers without a data race.
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  /// Set by force_expire: the next deadline check throws with a message
  /// attributing the trip to fault injection instead of the real budget.
  std::atomic<bool> forced_expire_{false};
  std::uint64_t op_ceiling_ = 0;   // immutable after construction
  std::size_t node_ceiling_ = 0;   // immutable after construction
  std::atomic<std::uint64_t> ops_used_{0};
  std::atomic<std::uint64_t> cache_bytes_{0};
  std::atomic<int> suspend_{0};
  std::atomic<std::uint64_t> suspended_sections_{0};
  /// Relaxed mirror of report_.final_level, readable from workers.
  std::atomic<int> degrade_level_{kDegradeFull};
  std::mutex degrade_mu_;  // serializes raise_degrade (defensive; flow-only today)
  mutable DegradationReport report_;
};

}  // namespace mfd
