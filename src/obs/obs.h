// Flow-wide observability: hierarchical phase timers, named counters and
// gauges, and a JSON report — the instrumentation layer every perf PR
// regresses against (see docs/OBSERVABILITY.md for the naming scheme and
// the emitted schema).
//
// Design notes
// ------------
// * One process-wide registry. The synthesis flow is a single logical
//   pipeline per run; `Synthesizer::run` resets the registry at entry and
//   snapshots it into the `SynthesisResult` at exit, so callers get a
//   per-run report without threading a context object through every layer.
// * Phase timing is RAII (`ScopedPhase`) and nestable. Each thread keeps its
//   own stack of open phases writing into its own tree; `collect()` merges
//   the per-thread trees by name under a mutex, so the hot path never
//   contends across threads and a snapshot sees every thread's completed
//   (plus in-flight, partially elapsed) phases.
// * Re-entering the phase that is already open ("self-nesting", e.g. the
//   recursive `recurse` phase of the decomposition driver) merges into the
//   open instance: the entry count grows, but time is only measured by the
//   outermost scope — nested wall-clock is never double counted.
// * Counters are monotonic (add-only); gauges are set/max-updated doubles.
//   Ultra-hot per-operation counts (BDD cache hits etc.) stay in their
//   subsystem's local structs and are *published* into the registry at flow
//   flush points — the per-call cost of the registry (a mutex + map lookup)
//   is only paid at per-phase granularity.
// * `set_enabled(false)` turns every hook into an early-out, which is how
//   the instrumentation-overhead acceptance test measures the delta.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mfd::obs {

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

/// True by default; when false every hook (counters, gauges, phases) is a
/// cheap no-op and `collect()` returns an empty report.
bool enabled();
void set_enabled(bool on);

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Increments the named monotonic counter.
void add(std::string_view name, std::uint64_t delta = 1);

/// Sets the named gauge to `value`.
void gauge_set(std::string_view name, double value);

/// Raises the named gauge to `value` if larger (high-watermark semantics).
void gauge_max(std::string_view name, double value);

/// Current value of a counter (0 if never incremented).
std::uint64_t counter_value(std::string_view name);

/// Current value of a gauge (0.0 if never set).
double gauge_value(std::string_view name);

// ---------------------------------------------------------------------------
// Phase timers
// ---------------------------------------------------------------------------

/// One node of the merged phase tree. `seconds` is wall-clock time spent in
/// the phase *including* children; `calls` counts scope entries (self-nested
/// entries included).
struct PhaseNode {
  std::string name;
  std::uint64_t calls = 0;
  double seconds = 0.0;
  std::vector<PhaseNode> children;

  /// Child with the given name, or nullptr.
  const PhaseNode* child(std::string_view child_name) const;
  /// Recursive lookup (depth-first), or nullptr.
  const PhaseNode* find(std::string_view node_name) const;
  /// Sum of direct children's seconds (self time = seconds - this).
  double child_seconds() const;
};

/// RAII scope: opens the named phase as a child of the innermost open phase
/// on this thread (merging with an existing same-named sibling), closes and
/// accumulates elapsed wall-clock on destruction.
///
/// `timed = false` opens the phase *placement-only*: it nests subsequent
/// scopes under the node but attributes no time and no call to it. Worker
/// threads use this (via ScopedPhaseChain) to re-create the submitting
/// thread's ancestor chain without double counting: ancestor seconds stay
/// pure wall-clock as measured by the flow thread, while the workers' own
/// leaf phase accumulates thread-seconds (and may therefore legitimately
/// exceed its parent under parallel execution).
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name, bool timed = true);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  bool active_ = false;
};

/// Names of this thread's open phases, outermost first (e.g. {"decompose",
/// "recurse", "boundset"}). Pool workers pass this to a ScopedPhaseChain so
/// their time lands under the caller's position in the merged tree instead
/// of dangling off a fresh per-thread root.
std::vector<std::string> current_phase_path();

/// RAII: opens the given phases in order on *this* thread (each nested in
/// the previous), closing them in reverse on destruction. All but the last
/// element are opened placement-only (untimed); the final element is a
/// normal timed phase. A worker thread re-creates the submitting thread's
/// phase context with `ScopedPhaseChain chain(path)` where `path` was
/// captured on the submitting thread via current_phase_path() plus a
/// worker-specific leaf appended (e.g. "eval_workers") — the leaf then
/// accumulates worker thread-seconds at the right spot in the merged tree
/// while the ancestors keep their flow-thread wall-clock meaning.
class ScopedPhaseChain {
 public:
  explicit ScopedPhaseChain(const std::vector<std::string>& path);
  ~ScopedPhaseChain();
  ScopedPhaseChain(const ScopedPhaseChain&) = delete;
  ScopedPhaseChain& operator=(const ScopedPhaseChain&) = delete;

 private:
  // unique_ptrs so destruction order is explicit: the destructor pops
  // back-to-front (innermost phase closes first), which a plain vector of
  // ScopedPhase values would not guarantee.
  std::vector<std::unique_ptr<ScopedPhase>> scopes_;
};

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Snapshot of the registry: merged phase tree (root "total") + counters +
/// gauges. Value type — safe to keep after the registry is reset.
struct Report {
  PhaseNode phases{"total", 0, 0.0, {}};
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;

  /// The report as a JSON document (schema in docs/OBSERVABILITY.md).
  std::string to_json() const;
};

/// Merged snapshot of all threads' phases and the counter/gauge tables.
/// Open phases contribute their partially elapsed time.
Report collect();

/// Clears counters, gauges, and phase trees. Phases currently open survive
/// as freshly zeroed nodes and keep accumulating into the new epoch.
void reset();

}  // namespace mfd::obs
