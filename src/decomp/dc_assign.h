// Steps 2 and 3 of the paper's don't-care assignment (Section 5).
//
// Step 2 ("sharing-driven"): color the *joint* incompatibility graph over
// bound vertices — vertices incompatible as soon as any output sees a care
// conflict — and merge every color class in all outputs simultaneously. The
// number of classes is a lower bound on the total number of decomposition
// functions of the multi-output decomposition; minimizing it maximizes the
// potential to share decomposition functions.
//
// Step 3 (Chang & Marek-Sadowska [3,2]): per output, color that output's own
// incompatibility graph over the remaining don't cares and merge within
// color classes, minimizing each ncc(f_i, B) individually. Because step 3
// only merges vertices that step 2 left jointly compatible per output, it
// cannot split a step-2 class apart, i.e. it cannot increase the joint lower
// bound.
//
// Merging assigns don't cares: every vertex of a class receives the class's
// information union (on = OR of member on-sets, care = OR of member cares),
// which agrees with each member wherever the member cared.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/compat.h"

namespace mfd {

/// Step 2. Returns the number of joint classes (the lower bound
/// ceil(log2(.)) refers to). Entries of `tables` are updated in place.
int assign_joint(std::vector<CofactorTable>& tables, std::uint64_t seed = 1);

/// Step 3. Merges per output and returns each output's final vertex
/// partition (dense class ids; vertices with identical cofactors share a
/// class). Entries of `tables` are updated in place.
std::vector<std::vector<int>> assign_per_output(std::vector<CofactorTable>& tables,
                                                std::uint64_t seed = 1);

/// Number of classes in a dense partition (max id + 1).
int num_classes(const std::vector<int>& partition);

}  // namespace mfd
