#include "map/clb.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"
#include "util/matching.h"

namespace mfd::map {
namespace {

std::vector<int> live_lut_indices(const net::LutNetwork& net) {
  const auto live = net.live_luts();
  std::vector<int> idx;
  for (int i = 0; i < net.num_luts(); ++i)
    if (live[static_cast<std::size_t>(i)]) idx.push_back(i);
  return idx;
}

}  // namespace

bool mergeable(const net::Lut& a, const net::Lut& b, const ClbOptions& opts) {
  if (static_cast<int>(a.inputs.size()) > opts.pair_max_inputs ||
      static_cast<int>(b.inputs.size()) > opts.pair_max_inputs)
    return false;
  std::vector<int> u = a.inputs;
  for (int in : b.inputs)
    if (std::find(u.begin(), u.end(), in) == u.end()) u.push_back(in);
  return static_cast<int>(u.size()) <= opts.pair_total_inputs;
}

Graph merge_graph(const net::LutNetwork& net, const ClbOptions& opts) {
  const std::vector<int> idx = live_lut_indices(net);
  Graph g(static_cast<int>(idx.size()));
  for (int a = 0; a < g.num_vertices(); ++a)
    for (int b = a + 1; b < g.num_vertices(); ++b)
      if (mergeable(net.lut(idx[static_cast<std::size_t>(a)]),
                    net.lut(idx[static_cast<std::size_t>(b)]), opts))
        g.add_edge(a, b);
  return g;
}

ClbResult pack_matching(const net::LutNetwork& net, const ClbOptions& opts) {
  const Graph g = merge_graph(net, opts);
  const std::vector<int> mate = maximum_matching(g);
  ClbResult r;
  r.num_luts = g.num_vertices();
  r.merged_pairs = matching_size(mate);
  r.num_clbs = r.num_luts - r.merged_pairs;
  obs::add("clb.matching.luts", static_cast<std::uint64_t>(r.num_luts));
  obs::add("clb.matching.mergeable_edges", static_cast<std::uint64_t>(g.num_edges()));
  obs::add("clb.matching.pairs", static_cast<std::uint64_t>(r.merged_pairs));
  obs::add("clb.matching.clbs", static_cast<std::uint64_t>(r.num_clbs));
  return r;
}

ClbResult pack_greedy(const net::LutNetwork& net, const ClbOptions& opts) {
  const std::vector<int> idx = live_lut_indices(net);
  const int n = static_cast<int>(idx.size());
  std::vector<bool> paired(static_cast<std::size_t>(n), false);
  ClbResult r;
  r.num_luts = n;
  for (int a = 0; a < n; ++a) {
    if (paired[static_cast<std::size_t>(a)]) continue;
    for (int b = a + 1; b < n; ++b) {
      if (paired[static_cast<std::size_t>(b)]) continue;
      if (mergeable(net.lut(idx[static_cast<std::size_t>(a)]),
                    net.lut(idx[static_cast<std::size_t>(b)]), opts)) {
        paired[static_cast<std::size_t>(a)] = paired[static_cast<std::size_t>(b)] = true;
        ++r.merged_pairs;
        break;
      }
    }
  }
  r.num_clbs = r.num_luts - r.merged_pairs;
  obs::add("clb.greedy.luts", static_cast<std::uint64_t>(r.num_luts));
  obs::add("clb.greedy.pairs", static_cast<std::uint64_t>(r.merged_pairs));
  obs::add("clb.greedy.clbs", static_cast<std::uint64_t>(r.num_clbs));
  return r;
}

Xc4000Result pack_xc4000(const net::LutNetwork& net) {
  const auto live = net.live_luts();
  const std::vector<int> idx = live_lut_indices(net);
  Xc4000Result r;
  r.num_luts = static_cast<int>(idx.size());

  // Fanout counts and output-usage over live LUTs.
  std::vector<int> fanout(static_cast<std::size_t>(net.num_luts()), 0);
  for (int i : idx)
    for (int in : net.lut(i).inputs)
      if (!net.is_constant(in) && !net.is_primary_input(in))
        ++fanout[static_cast<std::size_t>(net.lut_index(in))];
  std::vector<bool> is_output(static_cast<std::size_t>(net.num_luts()), false);
  for (int s : net.outputs())
    if (!net.is_constant(s) && !net.is_primary_input(s))
      is_output[static_cast<std::size_t>(net.lut_index(s))] = true;

  std::vector<bool> packed(static_cast<std::size_t>(net.num_luts()), false);

  // H-absorption: combiner with <= 3 inputs, at least two of which are
  // single-fanout internal LUTs with <= 4 inputs (they become F and G; their
  // outputs must not also be primary outputs, because the CLB exposes only
  // the H result in this mode).
  auto absorbable = [&](int feeder) {
    return feeder >= 0 && !packed[static_cast<std::size_t>(feeder)] &&
           fanout[static_cast<std::size_t>(feeder)] == 1 &&
           !is_output[static_cast<std::size_t>(feeder)] &&
           net.lut(feeder).inputs.size() <= 4;
  };
  for (int i : idx) {
    if (packed[static_cast<std::size_t>(i)]) continue;
    const net::Lut& lut = net.lut(i);
    if (lut.inputs.size() > 3) continue;
    std::vector<int> feeders;
    for (int in : lut.inputs) {
      if (net.is_constant(in) || net.is_primary_input(in)) continue;
      const int feeder = net.lut_index(in);
      if (absorbable(feeder) &&
          std::find(feeders.begin(), feeders.end(), feeder) == feeders.end())
        feeders.push_back(feeder);
    }
    if (feeders.size() < 2) continue;
    packed[static_cast<std::size_t>(i)] = true;
    packed[static_cast<std::size_t>(feeders[0])] = true;
    packed[static_cast<std::size_t>(feeders[1])] = true;
    ++r.h_triples;
  }

  // The rest: F/G are independent on the XC4000, so any two remaining LUTs
  // (each <= 4 inputs) share a CLB.
  int remaining = 0;
  for (int i : idx) {
    if (packed[static_cast<std::size_t>(i)]) continue;
    assert(net.lut(i).inputs.size() <= 4 && "XC4000 packing needs a 4-feasible network");
    ++remaining;
  }
  r.pairs = remaining / 2;
  r.singles = remaining % 2;
  r.num_clbs = r.h_triples + r.pairs + r.singles;
  obs::add("clb.xc4000.luts", static_cast<std::uint64_t>(r.num_luts));
  obs::add("clb.xc4000.h_triples", static_cast<std::uint64_t>(r.h_triples));
  obs::add("clb.xc4000.clbs", static_cast<std::uint64_t>(r.num_clbs));
  (void)live;
  return r;
}

}  // namespace mfd::map
