// mfd_fuzz: the differential fuzz driver (docs/FUZZING.md).
//
// Modes:
//   mfd_fuzz --seeds N [--seed-base B] [--out DIR] ...   fuzzing sweep
//   mfd_fuzz --repro FILE [--jobs J]                     replay a reproducer
//
// The sweep generates one random multi-output ISF spec per seed
// (verify::generate_spec), runs the differential oracle over its option
// points (verify::run_oracle), and on failure delta-debugs the spec down to
// a minimal reproducer (verify::shrink_spec) written under --out. Exit code
// is 0 iff every seed passed (and, in --repro mode, iff the failure no
// longer reproduces).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "verify/oracle.h"
#include "verify/repro.h"
#include "verify/shrink.h"
#include "verify/specgen.h"

namespace {

struct Args {
  int seeds = 0;
  unsigned long long seed_base = 1;
  int max_inputs = 7;
  int max_outputs = 4;
  int min_inputs = 1;
  std::string out_dir = ".";
  std::string repro_file;
  int jobs = -1;  // only meaningful with --repro
  bool shrink = true;
  bool verbose = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --seeds N [options]\n"
               "       %s --repro FILE [--jobs J]\n"
               "options:\n"
               "  --seeds N        number of random specs to fuzz\n"
               "  --seed-base B    first seed (default 1); seeds are B..B+N-1\n"
               "  --min-inputs K   minimum spec inputs (default 1)\n"
               "  --max-inputs K   maximum spec inputs (default 7)\n"
               "  --max-outputs K  maximum spec outputs (default 4)\n"
               "  --out DIR        where shrunk reproducers are written (default .)\n"
               "  --no-shrink      write the unshrunk failing spec instead\n"
               "  --repro FILE     replay one reproducer file and exit\n"
               "  --jobs J         with --repro: override jobs at every option point\n"
               "  -v               per-seed progress output\n",
               argv0, argv0);
}

bool parse_int(const char* s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mfd_fuzz: %s expects a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seeds") {
      if (!parse_int(value(), &args.seeds)) { usage(argv[0]); return 2; }
    } else if (a == "--seed-base") {
      args.seed_base = std::strtoull(value(), nullptr, 10);
    } else if (a == "--min-inputs") {
      if (!parse_int(value(), &args.min_inputs)) { usage(argv[0]); return 2; }
    } else if (a == "--max-inputs") {
      if (!parse_int(value(), &args.max_inputs)) { usage(argv[0]); return 2; }
    } else if (a == "--max-outputs") {
      if (!parse_int(value(), &args.max_outputs)) { usage(argv[0]); return 2; }
    } else if (a == "--out") {
      args.out_dir = value();
    } else if (a == "--repro") {
      args.repro_file = value();
    } else if (a == "--jobs") {
      if (!parse_int(value(), &args.jobs)) { usage(argv[0]); return 2; }
    } else if (a == "--no-shrink") {
      args.shrink = false;
    } else if (a == "-v" || a == "--verbose") {
      args.verbose = true;
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "mfd_fuzz: unknown option %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  using namespace mfd;

  if (!args.repro_file.empty()) {
    verify::OracleOptions opts;
    opts.jobs_override = args.jobs;
    try {
      const verify::OracleResult r = verify::replay_repro_file(args.repro_file, opts);
      if (r.ok) {
        std::printf("repro %s: PASS (%d points, %d checks — failure does not reproduce)\n",
                    args.repro_file.c_str(), r.points_run, r.checks_run);
        return 0;
      }
      std::printf("repro %s: FAIL at %s: %s\n", args.repro_file.c_str(),
                  r.failing_point.c_str(), r.failure.c_str());
      return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mfd_fuzz: %s\n", e.what());
      return 2;
    }
  }

  if (args.seeds <= 0) {
    usage(argv[0]);
    return 2;
  }

  verify::SpecGenOptions gen;
  gen.min_inputs = args.min_inputs;
  gen.max_inputs = args.max_inputs;
  gen.max_outputs = args.max_outputs;

  int failures = 0;
  for (int i = 0; i < args.seeds; ++i) {
    const std::uint64_t seed = args.seed_base + static_cast<std::uint64_t>(i);
    const verify::TableSpec spec = verify::generate_spec(seed, gen);
    const verify::OracleResult r = verify::run_oracle(spec, seed);
    if (args.verbose)
      std::printf("seed %llu: %s — %s\n", static_cast<unsigned long long>(seed),
                  verify::describe(spec).c_str(), r.ok ? "ok" : "FAIL");
    if (r.ok) continue;

    ++failures;
    std::printf("seed %llu FAILED at %s: %s\n", static_cast<unsigned long long>(seed),
                r.failing_point.c_str(), r.failure.c_str());

    verify::TableSpec minimal = spec;
    if (args.shrink) {
      const verify::ShrinkResult shrunk = verify::shrink_spec(
          spec, [&](const verify::TableSpec& candidate) {
            return !verify::run_oracle(candidate, seed).ok;
          });
      minimal = shrunk.spec;
      std::printf("  shrunk %s -> %s in %d checks\n", verify::describe(spec).c_str(),
                  verify::describe(minimal).c_str(), shrunk.checks_run);
    }

    verify::Repro repro;
    repro.spec = minimal;
    repro.oracle_seed = seed;
    const verify::OracleResult final = verify::run_oracle(minimal, seed);
    repro.note = "seed " + std::to_string(seed) + ": " +
                 (final.ok ? r.failure : final.failure);
    const std::string path = args.out_dir + "/seed" + std::to_string(seed) + ".repro";
    std::ofstream out(path);
    out << verify::write_repro(repro);
    out.close();
    std::printf("  reproducer written to %s\n", path.c_str());
  }

  std::printf("mfd_fuzz: %d/%d seeds passed\n", args.seeds - failures, args.seeds);
  return failures == 0 ? 0 : 1;
}
