#include "decomp/boundset.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "cache/cache.h"
#include "core/budget.h"
#include "core/faultinject.h"
#include "decomp/compat.h"
#include "obs/obs.h"
#include "util/coloring.h"
#include "util/threadpool.h"

namespace mfd {
namespace {

/// Class count of one output's cofactor table using a quick ISF coloring
/// (dedupe identical vertices, DSATUR, exact only for tiny graphs).
int quick_class_count(const CofactorTable& table, std::uint64_t seed) {
  // Completely specified fast path: classes = distinct cofactors.
  bool complete = true;
  for (const Isf& e : table.entries)
    if (!e.is_completely_specified()) {
      complete = false;
      break;
    }
  if (complete) {
    std::unordered_set<bdd::Edge> distinct;
    distinct.reserve(table.entries.size());
    for (const Isf& e : table.entries) distinct.insert(e.on().id());
    return static_cast<int>(distinct.size());
  }
  // Dedupe by (on, care) identity first. Dense class ids are handed out in
  // first-seen vertex order — a structural order (cofactor enumeration is
  // fixed by the bound set), so the incompatibility graph below and hence
  // the coloring are identical across managers and runs.
  std::map<std::pair<bdd::Edge, bdd::Edge>, int> key_to_id;
  std::vector<int> rep_vertex;
  for (std::size_t v = 0; v < table.entries.size(); ++v) {
    const auto key =
        std::make_pair(table.entries[v].on().id(), table.entries[v].care().id());
    const auto [it, inserted] =
        key_to_id.emplace(key, static_cast<int>(rep_vertex.size()));
    if (inserted) rep_vertex.push_back(static_cast<int>(v));
  }
  Graph g(static_cast<int>(rep_vertex.size()));
  for (int a = 0; a < g.num_vertices(); ++a)
    for (int b = a + 1; b < g.num_vertices(); ++b)
      if (!vertices_compatible(
              table.entries[static_cast<std::size_t>(rep_vertex[static_cast<std::size_t>(a)])],
              table.entries[static_cast<std::size_t>(rep_vertex[static_cast<std::size_t>(b)])]))
        g.add_edge(a, b);
  ColoringOptions copts;
  copts.seed = seed;
  copts.restarts = 2;
  copts.exact_vertex_limit = 14;
  return color_graph(g, copts).num_colors;
}


/// Strict order on choices; `false` on a full score tie, so in the ordered
/// reduction the earliest-generated candidate wins ties. Generation position
/// is the canonical tie key: it is a structural property of the candidate
/// sequence (window start, then move index), independent of managers,
/// allocation order, completion order, and thread count — and unlike a
/// lexicographic variable-set key it preserves the sifted order's locality
/// prior among equals (a sorted-vars tie key was measured ~15% worse on the
/// table1 CLB totals).
bool better(const BoundSetChoice& a, const BoundSetChoice& b) {
  if (a.benefit != b.benefit) return a.benefit > b.benefit;
  if (a.sharing_gap != b.sharing_gap) return a.sharing_gap > b.sharing_gap;
  return a.sum_r < b.sum_r;
}

/// Scores batches of candidates, optionally on the process-wide worker pool.
///
/// Ownership protocol (docs/PARALLELISM.md): each worker slot owns a private
/// bdd::Manager seeded once — serially, before any parallel work — with the
/// target functions via `transfer_from`; slot 0 is the calling thread and
/// uses the original functions/manager. Workers install the caller's
/// ResourceGovernor in their TLS scope (shared atomic budget: any worker can
/// trip it, the pool cancels cooperatively, and the lowest-index
/// BudgetExceeded resurfaces on the caller exactly like a serial throw) and
/// a ScopedPhaseChain so their time lands under ".../boundset/eval_workers"
/// in the merged phase tree.
class CandidateEvaluator {
 public:
  CandidateEvaluator(const std::vector<Isf>& fns,
                     const std::vector<std::vector<int>>& supports,
                     std::uint64_t seed, int jobs, ResourceGovernor* gov)
      : fns_(fns), supports_(supports), seed_(seed),
        jobs_(std::max(1, jobs)), gov_(gov),
        caller_sig_(*fns.front().manager()) {}

  /// Evaluates every candidate; results[i] is empty iff candidate i was
  /// skipped because the deadline expired mid-batch (in which case
  /// *deadline_stop is set). Throws whatever the evaluation threw (pool
  /// semantics: the lowest-index task's exception).
  std::vector<std::optional<BoundSetChoice>> run(
      const std::vector<std::vector<int>>& candidates, bool* deadline_stop) {
    const std::size_t m = candidates.size();
    std::vector<std::optional<BoundSetChoice>> results(m);
    const int par = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), m));
    if (par > 1) ensure_workers(par - 1);
    // Captured on the calling thread: the workers' phase attribution point.
    std::vector<std::string> worker_path = obs::current_phase_path();
    worker_path.push_back("eval_workers");

    std::atomic<bool> stopped{false};
    util::ThreadPool::global().for_each(
        m, par, [&](std::size_t i, int slot) {
          if (stopped.load(std::memory_order_relaxed)) return;
          if (gov_ != nullptr && gov_->deadline_expired()) {
            stopped.store(true, std::memory_order_relaxed);
            return;
          }
          if (slot == 0) {
            // The calling thread: governor scope and phases already open.
            results[i].emplace(evaluate_bound_set(fns_, supports_,
                                                  candidates[i], seed_,
                                                  &caller_sig_));
            return;
          }
          WorkerCtx& ctx = *workers_[static_cast<std::size_t>(slot - 1)];
          std::optional<ResourceGovernor::Scope> scope;
          if (gov_ != nullptr) scope.emplace(*gov_);
          obs::ScopedPhaseChain phases(worker_path);
          results[i].emplace(evaluate_bound_set(ctx.fns, supports_,
                                                candidates[i], seed_,
                                                ctx.sig.get()));
        });
    if (stopped.load(std::memory_order_relaxed)) *deadline_stop = true;
    return results;
  }

 private:
  struct WorkerCtx {
    std::unique_ptr<bdd::Manager> mgr;
    std::vector<Isf> fns;
    /// Per-worker signature computer over the private manager. Signatures
    /// are manager independent, so all workers still feed (and hit) the one
    /// shared multiplicity cache.
    std::unique_ptr<cache::SignatureComputer> sig;
  };

  /// Builds worker contexts up front on the calling thread. `transfer_from`
  /// reads the source manager, so this must complete before slot 0 starts
  /// mutating it from inside the batch — which is exactly why it is called
  /// before for_each, never from a task.
  void ensure_workers(int want) {
    const bdd::Manager& src = *fns_.front().manager();
    while (static_cast<int>(workers_.size()) < want) {
      auto ctx = std::make_unique<WorkerCtx>();
      ctx->mgr = std::make_unique<bdd::Manager>(src.num_vars());
      ctx->mgr->set_order(src.current_order());
      ctx->mgr->set_governor(gov_);
      ctx->fns.reserve(fns_.size());
      for (const Isf& f : fns_) {
        // Wrap each root before the next transfer so reactive GC in the
        // fresh manager can never reclaim it.
        bdd::Bdd on = ctx->mgr->wrap(ctx->mgr->transfer_from(src, f.on().id()));
        bdd::Bdd care = ctx->mgr->wrap(ctx->mgr->transfer_from(src, f.care().id()));
        ctx->fns.emplace_back(std::move(on), std::move(care));
      }
      ctx->sig = std::make_unique<cache::SignatureComputer>(*ctx->mgr);
      workers_.push_back(std::move(ctx));
    }
  }

  const std::vector<Isf>& fns_;
  const std::vector<std::vector<int>>& supports_;
  const std::uint64_t seed_;
  const int jobs_;
  ResourceGovernor* const gov_;
  /// Signature computer for slot 0 (the calling thread's manager).
  cache::SignatureComputer caller_sig_;
  std::vector<std::unique_ptr<WorkerCtx>> workers_;
};

}  // namespace

namespace {

BoundSetChoice evaluate_bound_set_fresh(
    const std::vector<Isf>& fns, const std::vector<std::vector<int>>& supports,
    const std::vector<int>& bound, std::uint64_t seed) {
  BoundSetChoice choice;
  choice.vars = bound;
  choice.benefit = 0;

  std::vector<CofactorTable> tables;
  std::vector<int> with_cut;  // outputs whose support meets the bound set
  for (std::size_t i = 0; i < fns.size(); ++i) {
    int cut = 0;
    for (int v : supports[i])
      if (std::find(bound.begin(), bound.end(), v) != bound.end()) ++cut;
    if (cut == 0) {
      choice.r_per_output.push_back(0);
      continue;
    }
    CofactorTable t = cofactor_table(fns[i], bound);
    const int k = quick_class_count(t, seed);
    const int r = code_length(k);
    choice.r_per_output.push_back(r);
    choice.benefit += cut - r;
    choice.sum_r += r;
    tables.push_back(std::move(t));
    with_cut.push_back(static_cast<int>(i));
  }

  if (tables.size() > 1) {
    // Sharing potential: joint class count vs sum of individual code
    // lengths. A cheap equality-based joint count (no coloring) suffices to
    // rank candidates.
    std::map<std::vector<std::pair<bdd::Edge, bdd::Edge>>, int> joint;
    for (std::size_t v = 0; v < tables.front().entries.size(); ++v) {
      std::vector<std::pair<bdd::Edge, bdd::Edge>> key;
      for (const CofactorTable& t : tables)
        key.emplace_back(t.entries[v].on().id(), t.entries[v].care().id());
      joint.emplace(std::move(key), 0);
    }
    choice.sharing_gap =
        static_cast<int>(choice.sum_r) - code_length(static_cast<int>(joint.size()));
  }
  return choice;
}

}  // namespace

BoundSetChoice evaluate_bound_set(const std::vector<Isf>& fns,
                                  const std::vector<std::vector<int>>& supports,
                                  const std::vector<int>& bound,
                                  std::uint64_t seed,
                                  cache::SignatureComputer* sig) {
  // Whole-evaluation memoization (docs/CACHING.md): the choice is a pure
  // function of the candidate's (function semantics, bound variables, seed),
  // so a hit skips the cofactor-table construction and the ISF colorings
  // outright. Signatures are manager and order independent, so the entry is
  // shared across pool workers and both portfolio runs. Skipped whenever
  // memoization could observe timing (armed budget, degradation, expired
  // deadline, injected faults): the coloring's early-exits make the scores
  // timing-dependent there, and caching would leak one run's schedule into
  // the next (rule 2 of the determinism contract).
  if (sig == nullptr || !cache::config().multiplicity ||
      !cache::memo_safe(ResourceGovernor::current()))
    return evaluate_bound_set_fresh(fns, supports, bound, seed);

  std::vector<std::pair<bdd::Edge, bdd::Edge>> fn_edges;
  fn_edges.reserve(fns.size());
  for (const Isf& f : fns) fn_edges.emplace_back(f.on().id(), f.care().id());
  const std::vector<std::uint64_t> key =
      cache::multiplicity_key(*sig, fn_edges, bound, seed);

  if (const auto hit = std::static_pointer_cast<const BoundSetChoice>(
          cache::multiplicity_cache().lookup(key))) {
    if (cache::config().cross_check) {
      const BoundSetChoice fresh =
          evaluate_bound_set_fresh(fns, supports, bound, seed);
      if (fresh.benefit != hit->benefit ||
          fresh.sharing_gap != hit->sharing_gap || fresh.sum_r != hit->sum_r ||
          fresh.r_per_output != hit->r_per_output) {
        std::fprintf(stderr,
                     "cache cross-check failed: multiplicity hit (benefit %ld,"
                     " gap %d) != recomputed (benefit %ld, gap %d)\n",
                     hit->benefit, hit->sharing_gap, fresh.benefit,
                     fresh.sharing_gap);
        std::abort();
      }
    }
    BoundSetChoice choice = *hit;
    choice.vars = bound;  // identical by key, but keep the caller's storage
    return choice;
  }

  BoundSetChoice choice = evaluate_bound_set_fresh(fns, supports, bound, seed);
  cache::multiplicity_cache().insert(
      key, std::make_shared<const BoundSetChoice>(choice),
      sizeof(BoundSetChoice) +
          (choice.vars.size() + choice.r_per_output.size()) * sizeof(int));
  return choice;
}

BoundSetChoice select_bound_set(const std::vector<Isf>& fns,
                                const std::vector<int>& order, int p,
                                const BoundSetOptions& opts) {
  const int n = static_cast<int>(order.size());
  std::vector<std::vector<int>> supports;
  supports.reserve(fns.size());
  for (const Isf& f : fns) supports.push_back(f.support());

  if (fault::armed()) fault::point("decomp.boundset");

  // Candidate evaluation is the search's unit of cost; under an installed
  // governor an expired deadline stops the search at the best bound set found
  // so far (possibly none, which sends the caller to the fallback path).
  ResourceGovernor* gov = ResourceGovernor::current();
  CandidateEvaluator evaluator(fns, supports, opts.seed, opts.jobs, gov);

  BoundSetChoice best;
  int budget_left = std::max(0, opts.max_evaluations);
  int evaluations = 0;
  bool deadline_stop = false;

  // Generate -> evaluate -> reduce for one batch. The evaluation budget is
  // applied by *deterministic truncation* before dispatch (same candidates
  // evaluated at any jobs value), and the reduction scans in generation
  // order, so the running best never depends on completion order.
  auto run_batch = [&](std::vector<std::vector<int>> batch) {
    if (batch.empty() || budget_left <= 0 || deadline_stop) return false;
    if (static_cast<int>(batch.size()) > budget_left)
      batch.resize(static_cast<std::size_t>(budget_left));
    if (gov != nullptr && gov->deadline_expired()) {
      deadline_stop = true;
      return false;
    }
    std::vector<std::optional<BoundSetChoice>> results =
        evaluator.run(batch, &deadline_stop);
    budget_left -= static_cast<int>(batch.size());
    bool improved = false;
    for (std::optional<BoundSetChoice>& r : results) {
      if (!r.has_value()) continue;  // skipped after the deadline expired
      ++evaluations;
      if (best.vars.empty() || better(*r, best)) {
        best = std::move(*r);
        improved = true;
      }
    }
    return improved;
  };

  // Sliding windows over the sifted order.
  std::vector<std::vector<int>> windows;
  for (int start = 0; start + p <= n; ++start)
    windows.emplace_back(order.begin() + start, order.begin() + start + p);
  run_batch(std::move(windows));

  // Local exchange refinement: swap one bound variable against one outside
  // variable. One batch scores every swap of one bound *position* against
  // the current best; the reduction takes the batch's best improving member
  // (if any) before the next position's batch is generated — so improvements
  // chain across positions within a pass, like the serial search, while each
  // batch is a deterministic parallel unit.
  for (int pass = 0; pass < opts.improvement_passes; ++pass) {
    bool improved = false;
    for (std::size_t bi = 0;
         bi < best.vars.size() && budget_left > 0 && !deadline_stop; ++bi) {
      std::vector<std::vector<int>> moves;
      for (int v : order) {
        if (std::find(best.vars.begin(), best.vars.end(), v) != best.vars.end())
          continue;
        std::vector<int> bound = best.vars;
        bound[bi] = v;
        std::sort(bound.begin(), bound.end());
        moves.push_back(std::move(bound));
      }
      if (run_batch(std::move(moves))) improved = true;
    }
    if (!improved || best.vars.empty() || budget_left <= 0 || deadline_stop) break;
  }

  if (deadline_stop) obs::add("boundset.deadline_stops");
  obs::add("boundset.searches");
  obs::add("boundset.candidates_evaluated", static_cast<std::uint64_t>(evaluations));
  if (!best.vars.empty()) obs::add("boundset.found");
  return best;
}

}  // namespace mfd
