// Inter-manager transfer and debug output.
#include <sstream>
#include <unordered_map>

#include "bdd/bdd.h"

namespace mfd::bdd {

NodeId Manager::transfer_from(const Manager& src, NodeId f) {
  std::unordered_map<NodeId, NodeId> memo;
  auto rec = [&](auto&& self, NodeId n) -> NodeId {
    if (src.is_terminal(n)) return n;  // terminal ids coincide by construction
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const NodeId lo = self(self, src.node_lo(n));
    const NodeId hi = self(self, src.node_hi(n));
    // The destination order may differ, so rebuild with ITE.
    const NodeId xv = mk(static_cast<int>(src.node_var(n)), kFalse, kTrue);
    const NodeId r = ite_rec(xv, hi, lo);
    memo.emplace(n, r);
    return r;
  };
  return rec(rec, f);
}

std::string Manager::to_dot(const std::vector<NodeId>& roots,
                            const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  n0 [label=\"0\", shape=box];\n  n1 [label=\"1\", shape=box];\n";
  std::unordered_map<NodeId, bool> seen;
  std::vector<NodeId> stack;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const std::string name = i < names.size() ? names[i] : "f" + std::to_string(i);
    os << "  r" << i << " [label=\"" << name << "\", shape=plaintext];\n";
    os << "  r" << i << " -> n" << roots[i] << ";\n";
    stack.push_back(roots[i]);
  }
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (is_terminal(n) || seen[n]) continue;
    seen[n] = true;
    os << "  n" << n << " [label=\"x" << nodes_[n].var << "\"];\n";
    os << "  n" << n << " -> n" << nodes_[n].lo << " [style=dashed];\n";
    os << "  n" << n << " -> n" << nodes_[n].hi << ";\n";
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace mfd::bdd
