# Empty compiler generated dependencies file for mfd_synth.
# This may be replaced when dependencies are built.
