// The recursive multi-output decomposition flow (the paper's mulop-dc).
//
// Per recursion level:
//   1. outputs whose (extension-zero) support fits one LUT are emitted;
//   2. remaining don't cares are assigned to create symmetries (step 1,
//      [20]) — this helps both this level and all deeper ones, because
//      strict decomposition functions inherit symmetries;
//   3. symmetric sifting seeds the variable order; a window + exchange
//      search picks the bound set;
//   4. don't cares are assigned for sharing (step 2) and per-output
//      minimality (step 3, Chang & Marek-Sadowska);
//   5. shared strict decomposition functions are encoded [21] and emitted as
//      LUTs; fresh manager variables stand for their outputs;
//   6. the composition functions — incompletely specified, because unused
//      codes are don't cares — are decomposed recursively.
// When no bound set yields support reduction, a Shannon (mux) step
// guarantees progress.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/boundset.h"
#include "isf/isf.h"
#include "net/lutnet.h"

namespace mfd {

struct DecomposeOptions {
  /// LUT fanin bound: 5 = XC3000 lookup tables, 2 = two-input gate netlists.
  int lut_inputs = 5;
  /// Master switch: false reproduces the mulopII baseline (all don't cares
  /// assigned 0 before every decomposition step; no DC exploitation at all).
  bool exploit_dc = true;
  bool dc_symmetrize = true;   ///< step 1 (symmetries)
  bool dc_joint = true;        ///< step 2 (sharing-driven)
  bool dc_per_output = true;   ///< step 3 (Chang & Marek-Sadowska)
  /// Compute common decomposition functions across outputs [21].
  bool share_functions = true;
  /// Encode the *joint* partition with one code shared by every output,
  /// which minimizes the total number of decomposition functions — the
  /// strategy of Lai/Pedram/Vrudhula [10]. The paper argues against it
  /// (Section 3): every composition function then sees all
  /// ceil(log2(ncc_joint)) code inputs instead of its own minimal r_i.
  /// Off by default; used by the ablation benchmark reproducing that
  /// comparison.
  bool total_minimal_code = false;
  /// Seed the bound-set search with symmetric sifting [12,15].
  bool symmetric_sift = true;
  /// Also consider bound sets up to `lut_inputs + max_bound_extra` wide;
  /// oversized decomposition functions are synthesized recursively ("if the
  /// number of inputs of alpha is still too large, decomposition has to be
  /// applied recursively to alpha", Section 2). Their extra LUT cost is
  /// charged against the candidate's benefit during the search.
  int max_bound_extra = 1;
  BoundSetOptions boundset;
  std::uint64_t seed = 1;
  /// Skip step 1 above this many active variables (it scans all pairs).
  int symmetrize_max_vars = 24;
  /// Run the top-level symmetric sifting pass only while the manager holds
  /// at most this many live nodes (reordering cost grows with the tables).
  int sift_max_live_nodes = 20000;
  /// In the no-profitable-bound-set fallback, Shannon-split only outputs
  /// with at most this many support variables; wider outputs are emitted as
  /// direct BDD mux networks (a Shannon cascade over a wide support can fan
  /// out exponentially).
  int shannon_support_limit = 12;
  /// Print per-level progress to stderr (debugging aid).
  bool trace = false;
};

struct DecomposeStats {
  int decomposition_steps = 0;
  int shannon_fallbacks = 0;
  /// Total decomposition functions emitted (after sharing).
  long total_decomposition_functions = 0;
  /// Sum over steps and outputs of r_i (before sharing); the difference to
  /// total_decomposition_functions is what sharing saved.
  long sum_r = 0;
  int symmetrized_pairs = 0;
  int max_depth = 0;
  /// Encoder pool reuses across every step of *this* call (the obs counter
  /// encoding.pool_hits keeps accumulating flow-wide; this field makes the
  /// per-decomposition attribution honest when one flow runs many calls).
  long encoding_pool_hits = 0;
  /// Emitted-LUT reuses by the call-scoped alpha pool (docs/CACHING.md): a
  /// decomposition function whose (inputs, table) matched one already emitted
  /// at an earlier step or for another output of this call.
  long alpha_pool_hits = 0;
  /// Outputs emitted as direct BDD mux networks (bounded last resort).
  int bdd_mux_fallbacks = 0;
  /// Degradation-ladder level (core/budget.h) active when each primary
  /// output's signal was emitted; all zeros on an undegraded run.
  std::vector<int> output_degrade_level;
};

/// Decomposes the multi-output ISF `fns` into a LUT network.
/// `pi_vars[i]` is the BDD variable standing for network primary input i;
/// every function's support must lie within `pi_vars`. The manager gains
/// auxiliary variables (decomposition-function outputs) during the run.
net::LutNetwork decompose(std::vector<Isf> fns, const std::vector<int>& pi_vars,
                          const DecomposeOptions& opts = {},
                          DecomposeStats* stats = nullptr);

}  // namespace mfd
